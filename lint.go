package sideeffect

import (
	"sideeffect/internal/lint"
)

// Lint runs the interprocedural diagnostics engine over a completed
// analysis: every fact the pipeline computed — GMOD/GUSE summaries,
// RMOD, alias pairs, per-call-site MOD/USE, and the Section-6 loop
// verdicts — is turned into positioned findings (pass-by-value
// candidates, pure procedures, alias hazards, dead globals, ignorable
// calls, and loop parallelizability). The zero Config runs every rule
// at its default severity.
//
// The returned report is deterministic: repeated calls on the same
// analysis, and calls on an independently recomputed analysis of the
// same source, produce identical diagnostics in identical order. An
// error reports a configuration mistake (unknown rule name), never a
// property of the program.
//
// Rendering (text, JSON, SARIF 2.1.0) is the lint package's job; see
// cmd/modlint for the command-line driver and internal/server for the
// /lint endpoint.
//
// When the analysis was built with Options.Profile and cfg carries no
// profile of its own, per-rule timings join Analysis.Stages under
// "lint.<rule-id>" names.
func (a *Analysis) Lint(cfg lint.Config) (*lint.Report, error) {
	if cfg.Prof == nil {
		cfg.Prof = a.Stages
	}
	in := &lint.Input{
		Prog:    a.Prog,
		Mod:     a.Mod,
		Use:     a.Use,
		Aliases: a.Aliases,
		ModSets: a.ModSets,
		UseSets: a.UseSets,
	}
	for _, l := range a.Prog.Loops {
		v := a.loopVerdict(l.Index, l.Sites)
		in.Loops = append(in.Loops, lint.LoopInfo{
			Proc:      l.Proc.Name,
			Index:     l.Index.Name,
			Pos:       l.Pos,
			Parallel:  v.Parallel,
			Conflicts: v.Conflicts,
			Sections:  v.Sections,
		})
	}
	return lint.Run(in, cfg)
}
