package sideeffect

import (
	"strings"
	"testing"
)

const loopSrc = `
program loops;
global A[64, 64], B[64, 64], hist[64], acc, n, i;

proc colop(ref c[*], val m)
  var r;
begin
  for r := 1 to m do c[r] := c[r] + 1 end
end;

proc rowop(ref w[*], val m)
  var r;
begin
  for r := 1 to m do w[r] := w[r] / 2 end
end;

proc scatter(ref h[*], val v)
begin
  h[1] := h[1] + v
end;

proc tally(val v)
begin
  acc := acc + v
end;

begin
  for i := 1 to n do
    call colop(A[*, i], 64);    { site 0: parallel (column i)   }
    call rowop(B[i, *], 64);    { site 1: parallel (row i)      }
    call scatter(hist, i);      { site 2: serial (shared elem)  }
    call tally(i)               { site 3: serial (shared scalar)}
  end
end.
`

func analyzeLoops(t *testing.T) *Analysis {
	t.Helper()
	a, err := Analyze(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLoopParallelColumn(t *testing.T) {
	a := analyzeLoops(t)
	v, err := a.LoopParallelizable("i", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Parallel {
		t.Errorf("column loop not parallel: %v", v.Conflicts)
	}
	joined := strings.Join(v.Sections, "; ")
	if !strings.Contains(joined, "A(*, i)") {
		t.Errorf("evidence missing column section: %v", v.Sections)
	}
}

func TestLoopParallelRow(t *testing.T) {
	a := analyzeLoops(t)
	v, err := a.LoopParallelizable("i", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Parallel {
		t.Errorf("row loop not parallel: %v", v.Conflicts)
	}
}

func TestLoopSerialScatter(t *testing.T) {
	a := analyzeLoops(t)
	v, err := a.LoopParallelizable("i", 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallel {
		t.Error("scatter loop wrongly parallelized")
	}
	if len(v.Conflicts) == 0 || !strings.Contains(strings.Join(v.Conflicts, " "), "hist") {
		t.Errorf("conflicts = %v", v.Conflicts)
	}
}

func TestLoopSerialScalar(t *testing.T) {
	a := analyzeLoops(t)
	v, err := a.LoopParallelizable("i", 3)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallel {
		t.Error("scalar-accumulating loop wrongly parallelized")
	}
	if !strings.Contains(strings.Join(v.Conflicts, " "), "acc") {
		t.Errorf("conflicts = %v", v.Conflicts)
	}
}

func TestLoopCombinedBody(t *testing.T) {
	a := analyzeLoops(t)
	// Two parallel calls together: still parallel (different arrays).
	v, err := a.LoopParallelizable("i", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Parallel {
		t.Errorf("combined parallel body serialized: %v", v.Conflicts)
	}
	// Adding the scatter call poisons it.
	v, err = a.LoopParallelizable("i", 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallel {
		t.Error("poisoned body wrongly parallel")
	}
}

func TestLoopReadWriteConflict(t *testing.T) {
	// One call writes column i while another reads the WHOLE array:
	// read/write conflict across iterations.
	a, err := Analyze(`
program rw;
global A[8, 8], s, n, i;
proc colset(ref c[*], val m)
  var r;
begin
  for r := 1 to m do c[r] := 0 end
end;
proc sumall(ref M[*, *], val m)
  var r;
begin
  for r := 1 to m do s := s + M[r, r] end
end;
begin
  for i := 1 to n do
    call colset(A[*, i], 8);
    call sumall(A, 8)
  end
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := a.LoopParallelizable("i", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Parallel {
		t.Error("read/write overlap wrongly parallel")
	}
	// (s also conflicts; make sure at least the array conflict shows.)
	if !strings.Contains(strings.Join(v.Conflicts, " "), "A(") {
		t.Errorf("conflicts = %v", v.Conflicts)
	}
}

func TestLoopErrors(t *testing.T) {
	a := analyzeLoops(t)
	if _, err := a.LoopParallelizable("nosuch", 0); err == nil {
		t.Error("unknown loop variable accepted")
	}
	if _, err := a.LoopParallelizable("i", 99); err == nil {
		t.Error("unknown site accepted")
	}
}
