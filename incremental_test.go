package sideeffect

import (
	"math/rand"
	"strings"
	"testing"

	"sideeffect/internal/ir"
	"sideeffect/internal/report"
	"sideeffect/internal/workload"
)

// incrSrc has a call chain and a nested procedure, enough structure
// for every incremental path to be exercised by name.
const incrSrc = `
program incr;
global g, h;

proc leaf(ref x)
begin
  x := 1
end;

proc mid(ref y)
begin
  call leaf(y)
end;

begin
  call mid(g)
end.
`

func TestIncrementalAddLocalEffect(t *testing.T) {
	a, err := Analyze(incrSrc)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(a)
	changed, err := inc.AddLocalEffect("leaf", "h", ModEffect)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("no procedures changed")
	}
	for _, p := range []string{"leaf", "mid", "$main"} {
		mod, err := a.MOD(p)
		if err != nil {
			t.Fatal(err)
		}
		if !contains(mod, "h") {
			t.Errorf("MOD(%s) = %v, missing h", p, mod)
		}
	}
	// The maintained analysis must agree with a fresh analysis of an
	// equivalent source (same program with the new statement present).
	fresh, err := Analyze(strings.Replace(incrSrc, "x := 1", "x := 1; h := 2", 1))
	if err != nil {
		t.Fatal(err)
	}
	if gotMod, _ := a.MOD("mid"); !equalStrings(gotMod, must(fresh.MOD("mid"))) {
		t.Errorf("MOD(mid): inc %v, fresh %v", gotMod, must(fresh.MOD("mid")))
	}
}

func TestAnalysisAddLocalEffectConvenience(t *testing.T) {
	a, err := Analyze(incrSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AddLocalEffect("mid", "g", UseEffect); err != nil {
		t.Fatal(err)
	}
	use, err := a.USE("$main")
	if err != nil {
		t.Fatal(err)
	}
	if !contains(use, "g") {
		t.Errorf("USE($main) = %v, missing g", use)
	}
}

func TestIncrementalErrors(t *testing.T) {
	a, err := Analyze(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	inc := NewIncremental(a)
	if _, err := inc.AddLocalEffect("nosuch", "g", ModEffect); err == nil {
		t.Error("unknown procedure accepted")
	}
	if _, err := inc.AddLocalEffect("swap", "nosuch", ModEffect); err == nil {
		t.Error("unknown variable accepted")
	}
	if _, err := inc.AddLocalEffect("swap", "A", ModEffect); err == nil {
		t.Error("array variable accepted as scalar effect")
	}
	if _, err := inc.AddLocalEffect("swap", "colset.i", ModEffect); err == nil {
		t.Error("invisible variable accepted")
	}
}

func TestSessionAdditiveAndFullEdits(t *testing.T) {
	s, err := NewSession(incrSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Additive: a new assignment in leaf only adds local facts.
	add := strings.Replace(incrSrc, "x := 1", "x := 1; h := g", 1)
	mode, err := s.Edit(add)
	if err != nil {
		t.Fatal(err)
	}
	if mode != EditIncremental {
		t.Errorf("additive edit took mode %v", mode)
	}
	fresh, err := Analyze(add)
	if err != nil {
		t.Fatal(err)
	}
	if s.Analysis().Report() != fresh.Report() {
		t.Error("incremental session report differs from fresh analysis")
	}
	// Non-additive: a new call site forces full reanalysis.
	full := strings.Replace(add, "call mid(g)", "call mid(g); call leaf(h)", 1)
	mode, err = s.Edit(full)
	if err != nil {
		t.Fatal(err)
	}
	if mode != EditFull {
		t.Errorf("structural edit took mode %v", mode)
	}
	fresh, err = Analyze(full)
	if err != nil {
		t.Fatal(err)
	}
	if s.Analysis().Report() != fresh.Report() {
		t.Error("full-reanalysis session report differs from fresh analysis")
	}
	if s.Source() != full {
		t.Error("session source not updated")
	}
	// A bad edit leaves the session untouched.
	if _, err := s.Edit("program broken;"); err == nil {
		t.Fatal("syntax error accepted")
	}
	if s.Source() != full || s.Analysis().Report() != fresh.Report() {
		t.Error("failed edit changed session state")
	}
}

// scalarVisiblePairs enumerates the (procedure, variable) pairs whose
// addition as a local fact keeps an edit additive.
func scalarVisiblePairs(prog *ir.Program) [][2]int {
	var out [][2]int
	for _, p := range prog.Procs {
		for _, v := range prog.Vars {
			if p.Visible(v) && v.Rank() == 0 {
				out = append(out, [2]int{p.ID, v.ID})
			}
		}
	}
	return out
}

// TestSessionDifferentialRandomEdits is the acceptance differential:
// random additive edit sequences applied through a Session must yield
// byte-identical reports (text and JSON) to a fresh Analyze of the
// edited source, under both the sequential and the parallel schedule.
func TestSessionDifferentialRandomEdits(t *testing.T) {
	seeds := int64(8)
	steps := 8
	if testing.Short() {
		seeds, steps = 3, 4
	}
	for seed := int64(0); seed < seeds; seed++ {
		cfg := workload.DefaultConfig(20, seed)
		if seed%2 == 1 {
			cfg.MaxDepth = 3
			cfg.NestFraction = 0.5
		}
		model := workload.Random(cfg).Prune()
		src := workload.Emit(model)
		sessions := map[string]*Session{}
		for name, opts := range map[string]Options{
			"sequential": {Sequential: true},
			"parallel":   {Workers: 4},
		} {
			s, err := NewSession(src, opts)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			sessions[name] = s
		}
		pairs := scalarVisiblePairs(model)
		r := rand.New(rand.NewSource(seed*17 + 1))
		for step := 0; step < steps; step++ {
			pick := pairs[r.Intn(len(pairs))]
			p, v := model.Procs[pick[0]], model.Vars[pick[1]]
			if r.Intn(2) == 0 {
				p.IMOD.Add(v.ID)
			} else {
				p.IUSE.Add(v.ID)
			}
			newSrc := workload.Emit(model)
			fresh, err := Analyze(newSrc)
			if err != nil {
				t.Fatalf("seed %d step %d: fresh analyze: %v", seed, step, err)
			}
			wantText := fresh.Report()
			wantJSON, err := report.JSON(fresh.Mod, fresh.Use, fresh.Aliases, fresh.SecMod)
			if err != nil {
				t.Fatal(err)
			}
			for name, s := range sessions {
				mode, err := s.Edit(newSrc)
				if err != nil {
					t.Fatalf("seed %d step %d %s: %v", seed, step, name, err)
				}
				if mode != EditIncremental {
					t.Fatalf("seed %d step %d %s: additive edit took mode %v", seed, step, name, mode)
				}
				a := s.Analysis()
				if got := a.Report(); got != wantText {
					t.Fatalf("seed %d step %d %s: session text report diverged from fresh analysis", seed, step, name)
				}
				got, err := report.JSON(a.Mod, a.Use, a.Aliases, a.SecMod)
				if err != nil {
					t.Fatal(err)
				}
				if got != wantJSON {
					t.Fatalf("seed %d step %d %s: session JSON report diverged from fresh analysis", seed, step, name)
				}
			}
		}
		// Replacing the program wholesale must fall back to full
		// reanalysis and still match.
		other := workload.Emit(workload.Random(workload.DefaultConfig(12, seed+1000)).Prune())
		fresh, err := Analyze(other)
		if err != nil {
			t.Fatal(err)
		}
		for name, s := range sessions {
			mode, err := s.Edit(other)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, name, err)
			}
			if mode != EditFull {
				t.Errorf("seed %d %s: program replacement took mode %v", seed, name, mode)
			}
			if s.Analysis().Report() != fresh.Report() {
				t.Errorf("seed %d %s: post-replacement report diverged", seed, name)
			}
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func must(xs []string, err error) []string {
	if err != nil {
		panic(err)
	}
	return xs
}
