package sideeffect

import (
	"fmt"
	"reflect"
	"testing"

	"sideeffect/internal/binding"
	"sideeffect/internal/report"
	"sideeffect/internal/workload"
)

// Determinism tests: two runs of the pipeline over the same source
// must render byte-identical output in every emitted format, and
// repeated queries on one result must return identical values. Map
// iteration order, goroutine scheduling, and pooled-scratch reuse are
// the usual ways this breaks; these tests pin it.

func determinismSources() map[string]string {
	srcs := map[string]string{
		"paper":  workload.Emit(workload.PaperExample()),
		"divide": workload.Emit(workload.DivideConquer()),
		"tower":  workload.Emit(workload.NestedTower(4)),
	}
	for seed := int64(0); seed < 6; seed++ {
		srcs[fmt.Sprintf("rand%d", seed)] = workload.Emit(workload.Random(workload.DefaultConfig(25, 40+seed)))
	}
	return srcs
}

func TestReportersDeterministic(t *testing.T) {
	for name, src := range determinismSources() {
		a1, err := Analyze(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a2, err := Analyze(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if r1, r2 := a1.Report(), a2.Report(); r1 != r2 {
			t.Errorf("%s: Report not deterministic across runs", name)
		}
		// Each renderer run twice on each result: all four byte-equal.
		j11, err := report.JSON(a1.Mod, a1.Use, a1.Aliases, a1.SecMod)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		j12, _ := report.JSON(a1.Mod, a1.Use, a1.Aliases, a1.SecMod)
		j21, _ := report.JSON(a2.Mod, a2.Use, a2.Aliases, a2.SecMod)
		if j11 != j12 {
			t.Errorf("%s: JSON differs between two renders of one result", name)
		}
		if j11 != j21 {
			t.Errorf("%s: JSON differs between two analysis runs", name)
		}
		if d1, d2 := report.DotCallGraph(a1.Prog), report.DotCallGraph(a2.Prog); d1 != d2 {
			t.Errorf("%s: DOT call graph not deterministic", name)
		}
		b1, b2 := binding.Build(a1.Prog), binding.Build(a2.Prog)
		if report.DotBinding(b1) != report.DotBinding(b2) {
			t.Errorf("%s: DOT binding graph not deterministic", name)
		}
		for i := range a1.Prog.Sites {
			s1 := a1.CallSites()[i]
			s2 := a2.CallSites()[i]
			if !reflect.DeepEqual(s1, s2) {
				t.Errorf("%s: call site %d differs across runs:\n%+v\n%+v", name, i, s1, s2)
			}
		}
	}
}

// TestLoopVerdictDeterministic pins the ordering of
// LoopVerdict.Conflicts and Sections: the same query on the same
// program, and on an independently recomputed result, must give
// identical slices (both are sorted by variable ID internally).
func TestLoopVerdictDeterministic(t *testing.T) {
	src := `
program lv;
global A[8, 8], B[8], hist[8];
global i, g;
proc touch(val k)
begin
  A[k, 2] := k;
  B[k] := g;
  hist[B[k]] := hist[B[k]] + 1
end;
begin
  for i := 1 to 8 do
    call touch(i)
  end
end.
`
	a1, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := a1.LoopParallelizable("i", 0)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 5; rep++ {
		vr, err := a1.LoopParallelizable("i", 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(v1, vr) {
			t.Fatalf("repeat %d: verdict changed on the same result:\n%+v\n%+v", rep, v1, vr)
		}
	}
	v2, err := a2.LoopParallelizable("i", 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatalf("verdict differs across analysis runs:\n%+v\n%+v", v1, v2)
	}
}
