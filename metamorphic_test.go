package sideeffect

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/lang/token"
	"sideeffect/internal/workload"
)

// The metamorphic suite checks the pipeline against semantics-preserving
// program transformations: renaming every identifier, adding an
// unreachable procedure, duplicating call sites, and permuting formal
// parameter lists with consistently permuted arguments. Each transform
// has a known effect on the analysis (usually none, modulo renaming),
// so any drift exposes a dependence on accidental program features —
// declaration order, identifier spelling, call-site multiplicity — that
// the flow equations must not have.

// metaPrograms is the corpus size; metaShort is the -short reduction.
const (
	metaPrograms = 200
	metaShort    = 24
)

func metaCorpusSize(t *testing.T) int {
	t.Helper()
	if testing.Short() {
		return metaShort
	}
	return metaPrograms
}

// metaSrc generates the i-th corpus program. Sizes cycle so the corpus
// spans small and mid-sized call graphs.
func metaSrc(i int) string {
	cfg := workload.DefaultConfig(4+(i%4)*4, int64(1000+i))
	return workload.Emit(workload.Random(cfg))
}

// metaPolicy rotates the allocation policy across the corpus so every
// transform is exercised under all three disciplines.
func metaPolicy(i int) core.AllocPolicy {
	return []core.AllocPolicy{core.AllocAuto, core.AllocHybrid, core.AllocDense}[i%3]
}

// procSig is one procedure's summary signature: the qualified GMOD and
// GUSE member names plus the RMOD formal names, each sorted.
type procSig struct {
	MOD, USE, RMOD []string
}

// metaSig analyzes src under the policy and extracts the per-procedure
// signature map. The Analysis is released before returning so the
// corpus sweep recycles arenas instead of growing the heap.
func metaSig(t *testing.T, src string, pol core.AllocPolicy) map[string]procSig {
	t.Helper()
	a, err := AnalyzeWith(src, Options{Sequential: true, Alloc: pol})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	defer a.Release()
	out := make(map[string]procSig, len(a.Procedures()))
	for _, p := range a.Procedures() {
		mod, _ := a.MOD(p)
		use, _ := a.USE(p)
		rmod, _ := a.RMOD(p)
		sort.Strings(rmod)
		out[p] = procSig{MOD: mod, USE: use, RMOD: rmod}
	}
	return out
}

// mapNames applies rn to every name in a signature, re-sorting, so a
// baseline signature can be compared against a renamed program's.
func (s procSig) mapNames(rn func(string) string) procSig {
	m := func(in []string) []string {
		out := make([]string, len(in))
		for i, n := range in {
			out[i] = rn(n)
		}
		sort.Strings(out)
		return out
	}
	return procSig{MOD: m(s.MOD), USE: m(s.USE), RMOD: m(s.RMOD)}
}

func sigsEqual(a, b procSig) bool {
	eq := func(x, y []string) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	return eq(a.MOD, b.MOD) && eq(a.USE, b.USE) && eq(a.RMOD, b.RMOD)
}

func diffSigs(t *testing.T, label string, want, got map[string]procSig) {
	t.Helper()
	for p, w := range want {
		g, ok := got[p]
		if !ok {
			t.Errorf("%s: procedure %s disappeared", label, p)
			continue
		}
		if !sigsEqual(w, g) {
			t.Errorf("%s: %s signature drifted\nwant %+v\ngot  %+v", label, p, w, g)
		}
	}
}

var metaIdent = regexp.MustCompile(`[A-Za-z_][A-Za-z0-9_]*`)

// renameIdents rewrites every non-keyword identifier token to rn_<id>
// and returns the rewritten source plus the name map it used.
func renameIdents(src string) (string, map[string]string) {
	names := make(map[string]string)
	out := metaIdent.ReplaceAllStringFunc(src, func(id string) string {
		if _, kw := token.Keywords[id]; kw {
			return id
		}
		r, ok := names[id]
		if !ok {
			r = "rn_" + id
			names[id] = r
		}
		return r
	})
	return out, names
}

// TestMetamorphicRename renames every identifier consistently: the
// analysis must be the same program up to the renaming — every summary
// set maps name-for-name through the rename table.
func TestMetamorphicRename(t *testing.T) {
	n := metaCorpusSize(t)
	for i := 0; i < n; i++ {
		src := metaSrc(i)
		renamed, names := renameIdents(src)
		// Qualified member names are owner.name; both halves rename.
		rn := func(q string) string {
			parts := strings.SplitN(q, ".", 2)
			for j, p := range parts {
				if r, ok := names[p]; ok {
					parts[j] = r
				}
			}
			return strings.Join(parts, ".")
		}
		pol := metaPolicy(i)
		base := metaSig(t, src, pol)
		got := metaSig(t, renamed, pol)
		want := make(map[string]procSig, len(base))
		for p, s := range base {
			want[rn(p)] = s.mapNames(rn)
		}
		if len(want) != len(got) {
			t.Fatalf("program %d: procedure count changed: %d -> %d", i, len(want), len(got))
		}
		diffSigs(t, fmt.Sprintf("program %d (%v)", i, pol), want, got)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// addDeadProc declares a fresh global and an unreachable procedure that
// modifies it, inserted between the last procedure and the main body.
func addDeadProc(src string) string {
	i := strings.Index(src, "\n")
	src = src[:i+1] + "global dead_g;\n" + src[i+1:]
	j := strings.LastIndex(src, "\nbegin\n")
	dead := "proc dead_p(ref dead_x)\nbegin\n  dead_x := 0;\n  dead_g := 0;\n  write dead_g\nend;\n"
	return src[:j+1] + dead + src[j+1:]
}

// TestMetamorphicDeadProc adds an uncalled procedure (touching a fresh
// global): the prune stage must drop it — it never reaches the solvers
// — and no reachable procedure's summary may change. GMOD/GUSE are
// driven by the call multi-graph, not by what is merely declared.
func TestMetamorphicDeadProc(t *testing.T) {
	n := metaCorpusSize(t)
	for i := 0; i < n; i++ {
		src := metaSrc(i)
		pol := metaPolicy(i)
		base := metaSig(t, src, pol)
		got := metaSig(t, addDeadProc(src), pol)
		if len(got) != len(base) {
			t.Fatalf("program %d: procedure count changed: %d -> %d", i, len(base), len(got))
		}
		if _, ok := got["dead_p"]; ok {
			t.Fatalf("program %d: unreachable dead_p survived pruning", i)
		}
		diffSigs(t, fmt.Sprintf("program %d (%v)", i, pol), base, got)
		if t.Failed() {
			t.FailNow()
		}
	}
}

var metaCall = regexp.MustCompile(`^(\s*)call\s+(\w+)\((.*)\);?$`)

// duplicateCalls repeats every call statement: MOD/USE are may-facts
// closed under union, so call-site multiplicity must not matter.
func duplicateCalls(src string) string {
	lines := strings.Split(src, "\n")
	out := make([]string, 0, 2*len(lines))
	for _, l := range lines {
		out = append(out, l)
		if metaCall.MatchString(l) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestMetamorphicCallDup duplicates every call site and checks the
// summary sets are byte-identical.
func TestMetamorphicCallDup(t *testing.T) {
	n := metaCorpusSize(t)
	for i := 0; i < n; i++ {
		src := metaSrc(i)
		pol := metaPolicy(i)
		base := metaSig(t, src, pol)
		got := metaSig(t, duplicateCalls(src), pol)
		if len(got) != len(base) {
			t.Fatalf("program %d: procedure count changed", i)
		}
		diffSigs(t, fmt.Sprintf("program %d (%v)", i, pol), base, got)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// splitTopLevel splits s on commas outside any bracket nesting, so an
// array formal "ref a[*, *]" or a subscripted actual "ga0[1, 2]" stays
// one piece.
func splitTopLevel(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func reverseStrings(in []string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[len(in)-1-i] = s
	}
	return out
}

var metaProcHeader = regexp.MustCompile(`^(\s*)proc\s+(\w+)\((.*)\)\s*$`)

// permuteFormals reverses every procedure's formal list and every call's
// argument list in lockstep. The rebinding is consistent, so only the
// declaration order changes — never which actual reaches which formal.
func permuteFormals(src string) string {
	lines := strings.Split(src, "\n")
	for i, l := range lines {
		if m := metaProcHeader.FindStringSubmatch(l); m != nil {
			lines[i] = fmt.Sprintf("%sproc %s(%s)", m[1], m[2], strings.Join(reverseStrings(splitTopLevel(m[3])), ", "))
			continue
		}
		if m := metaCall.FindStringSubmatch(l); m != nil {
			lines[i] = fmt.Sprintf("%scall %s(%s);", m[1], m[2], strings.Join(reverseStrings(splitTopLevel(m[3])), ", "))
		}
	}
	return strings.Join(lines, "\n")
}

// TestMetamorphicParamPermute reverses each formal list with matching
// argument reversal at every call: the binding graph is isomorphic, so
// every summary set must be unchanged.
func TestMetamorphicParamPermute(t *testing.T) {
	n := metaCorpusSize(t)
	for i := 0; i < n; i++ {
		src := metaSrc(i)
		pol := metaPolicy(i)
		base := metaSig(t, src, pol)
		got := metaSig(t, permuteFormals(src), pol)
		if len(got) != len(base) {
			t.Fatalf("program %d: procedure count changed", i)
		}
		diffSigs(t, fmt.Sprintf("program %d (%v)", i, pol), base, got)
		if t.Failed() {
			t.FailNow()
		}
	}
}

// TestMetamorphicPoliciesAgree pins a corpus subset under all three
// allocation policies at once: the transform invariants above rotate
// policies, and this closes the loop by checking the policies against
// each other on the transformed sources too.
func TestMetamorphicPoliciesAgree(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	transforms := map[string]func(string) string{
		"identity": func(s string) string { return s },
		"dup":      duplicateCalls,
		"permute":  permuteFormals,
	}
	for i := 0; i < n; i++ {
		src := metaSrc(i)
		for name, tr := range transforms {
			tsrc := tr(src)
			dense := metaSig(t, tsrc, core.AllocDense)
			for _, pol := range []core.AllocPolicy{core.AllocAuto, core.AllocHybrid} {
				diffSigs(t, fmt.Sprintf("program %d %s (%v vs dense)", i, name, pol), dense, metaSig(t, tsrc, pol))
			}
			if t.Failed() {
				t.FailNow()
			}
		}
	}
}
