package sideeffect

import (
	"fmt"

	"sideeffect/internal/gofront"
	"sideeffect/internal/ir"
)

// GoResult pairs one lowered Go package with its completed analysis.
type GoResult struct {
	Pkg      *gofront.Package
	Analysis *Analysis
}

// AnalyzeGoPackages loads real Go packages (patterns: "./..."-style
// walks, directories, or single .go files), lowers each onto the ir
// with the conservative Banning-compatible cut (see internal/gofront),
// and analyzes them as a batch with the same worker-pool and
// allocation options as MiniPL batches. Results are sorted by package
// path and deterministic for a fixed file tree.
func AnalyzeGoPackages(patterns []string, opts Options) ([]GoResult, error) {
	pkgs, err := gofront.Load(patterns)
	if err != nil {
		return nil, err
	}
	progs := make([]*ir.Program, len(pkgs))
	for i, p := range pkgs {
		progs[i] = p.Prog
	}
	analyses := AnalyzeAllPrograms(progs, opts)
	out := make([]GoResult, len(pkgs))
	for i := range pkgs {
		out[i] = GoResult{Pkg: pkgs[i], Analysis: analyses[i]}
	}
	return out, nil
}

// AnalyzeGoSource lowers and analyzes a single in-memory Go file as
// its own package. name is the display name used in reports.
func AnalyzeGoSource(name, src string, opts Options) (GoResult, error) {
	pkg, err := gofront.AnalyzeSource(name, src)
	if err != nil {
		return GoResult{}, err
	}
	return GoResult{Pkg: pkg, Analysis: AnalyzeProgramWith(pkg.Prog, opts)}, nil
}

// GoReport renders the standard analysis report for a Go package,
// followed by the per-function lowering-confidence table (the sound
// degradations the frontend applied).
func (r GoResult) GoReport() string {
	if r.Analysis == nil || r.Pkg == nil {
		return ""
	}
	return r.Analysis.Report() + "\n" + r.Pkg.ConfidenceReport()
}

// Release recycles the analysis scratch state (see Analysis.Release).
func (r GoResult) Release() {
	if r.Analysis != nil {
		r.Analysis.Release()
	}
}

// String identifies the result by package path and hash prefix.
func (r GoResult) String() string {
	if r.Pkg == nil {
		return "<nil>"
	}
	h := r.Pkg.Hash
	if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("%s@%s", r.Pkg.Path, h)
}
