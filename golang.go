package sideeffect

import (
	"fmt"
	"path/filepath"
	"strings"

	"sideeffect/internal/gofront"
	"sideeffect/internal/ir"
)

// GoResult pairs one lowered Go package with its completed analysis.
type GoResult struct {
	Pkg      *gofront.Package
	Analysis *Analysis
}

// AnalyzeGoPackages loads real Go packages (patterns: "./..."-style
// walks, directories, or single .go files), lowers each onto the ir
// with the conservative Banning-compatible cut (see internal/gofront),
// and analyzes them as a batch with the same worker-pool and
// allocation options as MiniPL batches. Results are sorted by package
// path and deterministic for a fixed file tree.
func AnalyzeGoPackages(patterns []string, opts Options) ([]GoResult, error) {
	if opts.GoModule {
		r, err := AnalyzeGoModule(moduleRootHint(patterns), patterns, opts)
		if err != nil {
			return nil, err
		}
		return []GoResult{r}, nil
	}
	pkgs, err := gofront.Load(patterns)
	if err != nil {
		return nil, err
	}
	progs := make([]*ir.Program, len(pkgs))
	for i, p := range pkgs {
		progs[i] = p.Prog
	}
	analyses := AnalyzeAllPrograms(progs, opts)
	out := make([]GoResult, len(pkgs))
	for i := range pkgs {
		out[i] = GoResult{Pkg: pkgs[i], Analysis: analyses[i]}
	}
	return out, nil
}

// AnalyzeGoModule analyzes a whole Go module as one shared program:
// the patterns' packages plus their module-local import closure lower
// together (the go.mod is found at or above root), so cross-package
// calls bind to real procedures and interface calls on module-defined
// interfaces devirtualize to the closed implementation set.
func AnalyzeGoModule(root string, patterns []string, opts Options) (GoResult, error) {
	pkg, err := gofront.LoadModule(root, patterns)
	if err != nil {
		return GoResult{}, err
	}
	return GoResult{Pkg: pkg, Analysis: AnalyzeProgramWith(pkg.Prog, opts)}, nil
}

// moduleRootHint picks the directory LoadModule starts its go.mod
// search from, given CLI-style package patterns.
func moduleRootHint(patterns []string) string {
	if len(patterns) == 0 {
		return "."
	}
	p := strings.TrimSuffix(patterns[0], "...")
	p = strings.TrimSuffix(p, "/")
	if p == "" {
		return "."
	}
	if strings.HasSuffix(p, ".go") {
		return filepath.Dir(p)
	}
	return p
}

// AnalyzeGoSource lowers and analyzes a single in-memory Go file as
// its own package. name is the display name used in reports.
func AnalyzeGoSource(name, src string, opts Options) (GoResult, error) {
	pkg, err := gofront.AnalyzeSource(name, src)
	if err != nil {
		return GoResult{}, err
	}
	return GoResult{Pkg: pkg, Analysis: AnalyzeProgramWith(pkg.Prog, opts)}, nil
}

// GoReport renders the standard analysis report for a Go package,
// followed by the per-function lowering-confidence table (the sound
// degradations the frontend applied).
func (r GoResult) GoReport() string {
	if r.Analysis == nil || r.Pkg == nil {
		return ""
	}
	return r.Analysis.Report() + "\n" + r.Pkg.ConfidenceReport()
}

// Release recycles the analysis scratch state (see Analysis.Release).
func (r GoResult) Release() {
	if r.Analysis != nil {
		r.Analysis.Release()
	}
}

// String identifies the result by package path and hash prefix.
func (r GoResult) String() string {
	if r.Pkg == nil {
		return "<nil>"
	}
	h := r.Pkg.Hash
	if len(h) > 12 {
		h = h[:12]
	}
	return fmt.Sprintf("%s@%s", r.Pkg.Path, h)
}
