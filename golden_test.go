package sideeffect

import (
	"testing"

	"sideeffect/internal/workload"
)

// TestGoldenReport pins the complete formatted report for a fixed
// program against testdata/golden/report.txt. It exists to catch
// unintended changes in any layer — a solver regression, a precision
// change, or a formatting drift all show up as a diff here. Update
// deliberately with `go test -run TestGoldenReport -update` when
// behaviour is meant to change (the same flag refreshes the Go
// frontend corpus goldens; see gofront_corpus_test.go).
func TestGoldenReport(t *testing.T) {
	a, err := Analyze(`
program golden;
global g, h;
global A[4, 4];
proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;
proc colset(ref c[*], val v)
  var i;
begin
  for i := 1 to 4 do c[i] := v end
end;
begin
  call swap(g, h);
  call colset(A[*, 2], g)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "testdata/golden/report.txt", a.Report())
}

// TestLargeProgramRobustness exercises the full pipeline on a
// 20k-procedure program — the scale where quadratic missteps and
// recursion-depth bugs would surface. Skipped with -short.
func TestLargeProgramRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test skipped in -short mode")
	}
	cfg := workload.DefaultConfig(20_000, 1)
	cfg.Globals = 2_000 // keep the bit vectors big but the run under a minute
	prog := workload.Random(cfg)
	a := AnalyzeProgram(prog)
	if a.Prog.NumProcs() < 20_000 {
		t.Fatalf("procs = %d", a.Prog.NumProcs())
	}
	// Sanity: main must reach effects.
	if a.Mod.GMOD[a.Prog.Main.ID].Len() == 0 {
		t.Error("GMOD(main) empty on large program")
	}
}
