package sideeffect

import (
	"strings"
	"testing"

	"sideeffect/internal/workload"
)

// TestGoldenReport pins the complete formatted report for a fixed
// program. It exists to catch unintended changes in any layer — a
// solver regression, a precision change, or a formatting drift all
// show up as a diff here. Update deliberately when behaviour is meant
// to change.
func TestGoldenReport(t *testing.T) {
	a, err := Analyze(`
program golden;
global g, h;
global A[4, 4];
proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;
proc colset(ref c[*], val v)
  var i;
begin
  for i := 1 to 4 do c[i] := v end
end;
begin
  call swap(g, h);
  call colset(A[*, 2], g)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	got := a.Report()
	want := `program golden: 3 procedures, 2 call sites, 9 variables (3 global)

== Interprocedural summaries ==
procedure  GMOD                      GUSE
---------  ------------------------  ------------------------
$main      {A, g, h}                 {g, h}
swap       {swap.a, swap.b, swap.t}  {swap.a, swap.b, swap.t}
colset     {colset.c, colset.i}      {colset.i, colset.v}

== Reference formal parameters (RMOD) ==
procedure  RMOD
---------  ------
swap       {a, b}
colset     {c}

== Alias pairs ==
procedure  alias pairs
---------  -----------------------
swap       ⟨g, swap.a⟩ ⟨h, swap.b⟩
colset     ⟨A, colset.c⟩

== Call sites ==
call site       at    MOD     USE
--------------  ----  ------  ------
$main → swap    16:3  {g, h}  {g, h}
$main → colset  17:3  {A}     {g}

== Regular sections (MOD) ==
call site       array sections (MOD)
--------------  --------------------
$main → colset  A(*, 2)
`
	if got != want {
		t.Errorf("golden report drifted:\n--- got\n%s\n--- want\n%s", got, want)
		// Show the first differing line to ease updating.
		gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
		for i := 0; i < len(gl) && i < len(wl); i++ {
			if gl[i] != wl[i] {
				t.Logf("first diff at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
				break
			}
		}
	}
}

// TestLargeProgramRobustness exercises the full pipeline on a
// 20k-procedure program — the scale where quadratic missteps and
// recursion-depth bugs would surface. Skipped with -short.
func TestLargeProgramRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale test skipped in -short mode")
	}
	cfg := workload.DefaultConfig(20_000, 1)
	cfg.Globals = 2_000 // keep the bit vectors big but the run under a minute
	prog := workload.Random(cfg)
	a := AnalyzeProgram(prog)
	if a.Prog.NumProcs() < 20_000 {
		t.Fatalf("procs = %d", a.Prog.NumProcs())
	}
	// Sanity: main must reach effects.
	if a.Mod.GMOD[a.Prog.Main.ID].Len() == 0 {
		t.Error("GMOD(main) empty on large program")
	}
}
