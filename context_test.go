package sideeffect

import (
	"context"
	"errors"
	"strings"
	"testing"

	"sideeffect/internal/arena"
	"sideeffect/internal/batch"
	"sideeffect/internal/faultinject"
	"sideeffect/internal/workload"
)

func chaosSrc(t *testing.T, seed int64) string {
	t.Helper()
	return workload.Emit(workload.Random(workload.DefaultConfig(15, seed)))
}

func TestAnalyzeContextIdentity(t *testing.T) {
	src := chaosSrc(t, 42)
	want, err := Analyze(src)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeContext(context.Background(), src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Report() != want.Report() {
		t.Fatal("AnalyzeContext report differs from Analyze")
	}
	got.Release()
	want.Release()
}

func TestAnalyzeContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := arena.Stats()
	a, err := AnalyzeContext(ctx, chaosSrc(t, 1), Options{Sequential: true})
	if a != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AnalyzeContext = %v, %v", a, err)
	}
	after := arena.Stats()
	if leaked := (after.Gets - before.Gets) - (after.Puts - before.Puts) - (after.PoisonDropped - before.PoisonDropped); leaked != 0 {
		t.Fatalf("cancelled analysis leaked %d arenas", leaked)
	}
}

func TestAnalyzeContextPanicBecomesError(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Rate: 1, Seed: 7, Kinds: []faultinject.Kind{faultinject.KindPanic},
	})
	a, err := AnalyzeContext(context.Background(), chaosSrc(t, 2), Options{Sequential: true, Faults: inj})
	if a != nil || err == nil {
		t.Fatalf("faulted AnalyzeContext = %v, %v", a, err)
	}
	var pe *batch.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v does not wrap *batch.PanicError", err)
	}
	if arena.Stats().PoisonedReuse != 0 {
		t.Fatal("a poisoned arena re-entered circulation")
	}
}

// TestAnalyzeContextPanicMidPipelinePoisons drives a panic-only
// injector at a rate low enough that the analysis usually checks out an
// arena before the fault lands, and asserts the pool accounting closes:
// every Get is matched by a Put or a poison-drop, and nothing poisoned
// is ever reused.
func TestAnalyzeContextPanicMidPipelinePoisons(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Rate: 0.08, Seed: 3, Kinds: []faultinject.Kind{faultinject.KindPanic},
	})
	before := arena.Stats()
	var failures int
	for seed := int64(0); seed < 30; seed++ {
		a, err := AnalyzeContext(context.Background(), chaosSrc(t, 50+seed), Options{Sequential: true, Faults: inj})
		if err != nil {
			failures++
			continue
		}
		a.Release()
	}
	if failures == 0 {
		t.Fatal("fault rate 0.08 over 30 analyses produced no failures; injector dead?")
	}
	after := arena.Stats()
	if leaked := (after.Gets - before.Gets) - (after.Puts - before.Puts) - (after.PoisonDropped - before.PoisonDropped); leaked != 0 {
		t.Fatalf("panicking analyses leaked %d arenas", leaked)
	}
	if after.PoisonedReuse != 0 {
		t.Fatal("a poisoned arena re-entered circulation")
	}
}

func TestAnalyzeAllContextDegradedRetry(t *testing.T) {
	srcs := make([]string, 60)
	for i := range srcs {
		srcs[i] = chaosSrc(t, 100+int64(i))
	}
	want := AnalyzeAll(srcs, Options{Sequential: true})
	inj := faultinject.New(faultinject.Config{
		Rate: 0.05, Seed: 11, Kinds: []faultinject.Kind{faultinject.KindPanic},
	})
	got := AnalyzeAllContext(context.Background(), srcs, Options{Sequential: true, Faults: inj})
	if len(got) != len(srcs) {
		t.Fatalf("got %d results for %d inputs", len(got), len(srcs))
	}
	var degraded, failed int
	for i, r := range got {
		switch {
		case r.Analysis == nil && r.Err == nil:
			t.Fatalf("result %d has neither analysis nor error", i)
		case r.Err != nil:
			failed++
		default:
			if r.Degraded {
				degraded++
			}
			// Chaos invariant: a response that is not an error is
			// byte-identical to the faultless answer.
			if r.Analysis.Report() != want[i].Analysis.Report() {
				t.Fatalf("result %d (degraded=%v) differs from faultless analysis", i, r.Degraded)
			}
		}
	}
	if degraded == 0 {
		t.Fatal("no degraded retry succeeded; expected some at rate 0.05 over 60 programs")
	}
	t.Logf("degraded=%d failed=%d of %d", degraded, failed, len(srcs))
}

func TestAnalyzeAllContextCancelStampsSkipped(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	srcs := []string{chaosSrc(t, 1), chaosSrc(t, 2), chaosSrc(t, 3)}
	out := AnalyzeAllContext(ctx, srcs, Options{Sequential: true})
	for i, r := range out {
		if r.Analysis != nil || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("slot %d after pre-cancel = %+v", i, r)
		}
	}
}

func TestSessionEditContextTransactional(t *testing.T) {
	base := chaosSrc(t, 200)
	s, err := NewSessionContext(context.Background(), base, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	wantReport := s.Analysis().Report()

	// Parse error: session untouched.
	if _, err := s.EditContext(context.Background(), "begin bogus"); err == nil {
		t.Fatal("parse error not reported")
	}
	if s.Source() != base || s.Analysis().Report() != wantReport {
		t.Fatal("failed parse mutated the session")
	}

	// Non-additive edit under a cancelled context: the full path fails
	// off to the side, session untouched and NOT broken.
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	other := chaosSrc(t, 201)
	if _, err := s.EditContext(cancelled, other); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled full edit: %v", err)
	}
	if s.Broken() || s.Source() != base || s.Analysis().Report() != wantReport {
		t.Fatal("cancelled full edit mutated the session")
	}

	// A healthy edit still works after the failures above.
	if _, err := s.EditContext(context.Background(), other); err != nil {
		t.Fatal(err)
	}
	if s.Source() != other {
		t.Fatal("healthy edit did not land")
	}
}

// TestSessionEditContextPanicMidMutation is the regression test for a
// chaos-soak find: a fault point that panics on the edit's own
// goroutine (rather than inside a panic-capturing worker pool) used to
// escape EditContext mid-mutation. The serving layer's recover turned
// it into a 500, but the session was never marked broken, so later
// reads served the half-updated solution — an edit that "failed" had
// partially landed. EditContext must instead absorb the panic: either
// the full-reanalysis fallback lands the edit, or the session comes
// out broken, or the solution is exactly the pre-edit one.
func TestSessionEditContextPanicMidMutation(t *testing.T) {
	base := incrSrc
	edited := strings.Replace(incrSrc, "x := 1", "x := 1; h := 2", 1)
	before := arena.Stats()
	s, err := NewSessionContext(context.Background(), base, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	baseReport := s.Analysis().Report()
	// Arm panic-only injection after creation so the session builds
	// cleanly; from here every fault point panics on whatever
	// goroutine reaches it.
	s.opts.Faults = faultinject.New(faultinject.Config{
		Rate: 1, Seed: 3, Kinds: []faultinject.Kind{faultinject.KindPanic},
	})
	_, err = s.EditContext(context.Background(), edited)
	switch {
	case err == nil:
		if s.Source() != edited {
			t.Fatal("edit reported success without landing")
		}
	case s.Broken():
		if !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("breaking edit error %v does not wrap ErrSessionBroken", err)
		}
		if _, err := s.EditContext(context.Background(), base); !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("broken session accepted an edit: %v", err)
		}
	default:
		if s.Source() != base || s.Analysis().Report() != baseReport {
			t.Fatal("failed edit left a half-mutated session readable")
		}
	}
	s.opts.Faults = nil
	s.Close()
	after := arena.Stats()
	held := (after.Gets - before.Gets) - (after.Puts - before.Puts) -
		(after.PoisonDropped - before.PoisonDropped)
	if held != 0 {
		t.Fatalf("arena accounting open after close: %d unreturned", held)
	}
	if after.PoisonedReuse != before.PoisonedReuse {
		t.Fatal("a poisoned arena re-entered circulation")
	}
}

func TestSessionEditContextBreaks(t *testing.T) {
	// An additive edit (same structure, one new assignment to a global
	// inside an existing procedure) under a cancelled context: the
	// incremental path mutates in place, the derived refresh hits the
	// cancelled context, and the full-reanalysis fallback fails too —
	// the session must come out broken, refusing further edits.
	base := incrSrc
	edited := strings.Replace(incrSrc, "x := 1", "x := 1; h := 2", 1)
	s, err := NewSessionContext(context.Background(), base, Options{Sequential: true})
	if err != nil {
		t.Fatal(err)
	}
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	_, err = s.EditContext(cancelled, edited)
	if err == nil {
		t.Fatal("cancelled incremental edit reported success")
	}
	if !s.Broken() {
		t.Skip("edit was absorbed before mutation began; cannot force broken state here")
	}
	if !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("breaking edit error %v does not wrap ErrSessionBroken", err)
	}
	if _, err := s.EditContext(context.Background(), base); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("broken session accepted an edit: %v", err)
	}
	if _, err := s.Edit(base); !errors.Is(err, ErrSessionBroken) {
		t.Fatalf("broken session accepted a legacy Edit: %v", err)
	}
	s.Close()
}
