// Package sideeffect is a Go implementation of Cooper & Kennedy's
// linear-time interprocedural side-effect analysis (PLDI 1988),
// together with the full pipeline the paper builds on: a small
// imperative source language (MiniPL) with by-reference parameters,
// globals, and nested procedures; the binding multi-graph RMOD
// algorithm (Figure 1 of the paper); the Tarjan-based findgmod
// algorithm for global effects (Figure 2) with the multi-level nesting
// extension (Section 4); alias factoring (Section 5); and regular
// section analysis for array subregions (Section 6).
//
// The one-call entry point analyzes MiniPL source text:
//
//	a, err := sideeffect.Analyze(src)
//	a.MOD("p")              // GMOD(p): names modified by invoking p
//	a.CallSites()           // per-call-site MOD/USE sets
//	fmt.Print(a.Report())   // complete formatted report
//
// In-module tools (cmd/, examples/) may reach the richer intermediate
// results through the exported fields, which expose the internal
// packages directly.
package sideeffect

import (
	"fmt"
	"sort"

	"sideeffect/internal/alias"
	"sideeffect/internal/batch"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/faultinject"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
	"sideeffect/internal/prof"
	"sideeffect/internal/report"
	"sideeffect/internal/section"
)

// Options controls how the analysis pipeline is scheduled. The zero
// value runs independent stages concurrently with GOMAXPROCS workers,
// which is the default used by Analyze and AnalyzeProgram.
type Options struct {
	// Workers bounds the number of concurrently executing stages (in
	// AnalyzeProgramWith) or programs (in AnalyzeAll). Zero or negative
	// means GOMAXPROCS.
	Workers int
	// Sequential forces the classic single-goroutine pipeline: every
	// stage runs in order on the calling goroutine. The result is
	// identical either way — only the schedule changes.
	Sequential bool
	// Alloc selects the bit-vector allocation discipline for the core
	// solvers. The zero value (core.AllocAuto) is the arena+hybrid
	// production default; core.AllocDense is the pre-arena baseline
	// kept for benchmarking and differential testing.
	Alloc core.AllocPolicy
	// Profile, when true, records per-stage wall time (and, on a
	// sequential run, allocation counts) in Analysis.Stages and tags
	// each stage's execution with a pprof "stage" label.
	Profile bool
	// DisableCondensation forces the per-node Figure-2 GMOD search
	// instead of the SCC-condensed storage layer (see
	// core.Options.DisableCondensation). Results are identical; this is
	// the differential baseline for tests and experiments.
	DisableCondensation bool
	// GoModule, when true, makes AnalyzeGoPackages treat its patterns
	// as one whole Go module: every matched package plus its
	// module-local import closure lowers into a single shared program
	// with cross-package calls resolved and closed interface calls
	// devirtualized (see gofront.LoadModule). MiniPL inputs ignore it.
	GoModule bool
	// Faults, when non-nil, injects deterministic seed-driven faults at
	// the pipeline's stage boundaries for chaos testing (see
	// internal/faultinject). Only the context-aware entry points
	// (AnalyzeContext and friends) honor it: they convert injected
	// panics into errors after poisoning any affected arena, so a
	// faulted run never corrupts pooled storage. Production runs leave
	// this nil.
	Faults *faultinject.Injector
}

// workers resolves the options to a concrete positive worker count.
// This is the single normalization point for the whole public API:
// Sequential forces 1, a positive Workers is taken as-is, and zero or
// negative Workers fall back to GOMAXPROCS — a negative value is
// treated as "unset" here and never reaches the pools.
func (o Options) workers() int {
	switch {
	case o.Sequential:
		return 1
	case o.Workers > 0:
		return o.Workers
	default:
		return batch.Workers(0)
	}
}

// Analysis bundles the complete side-effect solution for one program.
type Analysis struct {
	// Prog is the analyzed program model.
	Prog *ir.Program
	// Mod and Use are the two flow-insensitive problems' full results
	// (RMOD/IMOD+/GMOD/DMOD and the USE-side analogs).
	Mod, Use *core.Result
	// Aliases is the Section 5 alias-pair analysis.
	Aliases *alias.Analysis
	// SecMod and SecUse are the Section 6 regular-section results.
	SecMod, SecUse *section.Result
	// ModSets and UseSets are the final per-call-site answers,
	// DMOD/DUSE extended with aliases (equation (2) + Section 5).
	ModSets, UseSets []*bitset.Set
	// Stages holds the per-stage profile when the analysis ran with
	// Options.Profile; nil otherwise. Stage names are hierarchical:
	// "mod.gmod", "use.rmod", "sections.mod.formals", "factor.mod", …
	Stages *prof.Profile
}

// GMODWork sums the findgmod work counters of both problems across
// every nesting level: the Theorem-2 step counts plus the
// condensed-storage counters (CondensedRows materialized, zero-copy
// SharedRowHits). modan -profile and the modand metrics read it.
func (a *Analysis) GMODWork() core.GMODStats {
	var t core.GMODStats
	for _, r := range []*core.Result{a.Mod, a.Use} {
		if r == nil {
			continue
		}
		for _, s := range r.GMODStats {
			t.Accumulate(s)
		}
	}
	return t
}

// Analyze parses, checks, and analyzes MiniPL source text, running
// both the MOD and USE problems, alias factoring, and regular section
// analysis. Procedures unreachable from the main program are pruned
// first, as the paper assumes.
func Analyze(src string) (*Analysis, error) {
	return AnalyzeWith(src, Options{})
}

// AnalyzeWith is Analyze with explicit scheduling options.
func AnalyzeWith(src string, opts Options) (*Analysis, error) {
	prog, err := sem.AnalyzeSource(src)
	if err != nil {
		return nil, fmt.Errorf("sideeffect: %w", err)
	}
	return AnalyzeProgramWith(prog.Prune(), opts), nil
}

// AnalyzeProgram analyzes an already-built program model without
// pruning.
func AnalyzeProgram(prog *ir.Program) *Analysis {
	return AnalyzeProgramWith(prog, Options{})
}

// AnalyzeProgramWith analyzes an already-built program model without
// pruning, scheduling independent stages according to opts.
//
// The stage dependency graph has two layers. Mod, Use, and alias
// factoring read only the immutable program model, so they run
// concurrently first. The four derived stages each depend on one or
// two of those results and on nothing else: SecMod and SecUse consume
// the Mod result (both section problems are driven by Mod's GMOD sets,
// which fix symbol invariance), and the final per-call-site sets
// factor each core result through the alias analysis. All reads of
// the shared inputs are read-only, so the layer runs with no locking.
func AnalyzeProgramWith(prog *ir.Program, opts Options) *Analysis {
	a := &Analysis{Prog: prog}
	if opts.Profile {
		popts := []prof.Option{prof.WithLabels()}
		if opts.workers() == 1 {
			// Allocation deltas come from runtime.ReadMemStats and are
			// only attributable to a stage when stages run one at a
			// time.
			popts = append(popts, prof.CountAllocs())
		}
		a.Stages = prof.New(popts...)
	}
	w := opts.workers()
	// The binding graph, its components, the call graph, and the
	// per-level subgraphs are identical for the Mod and Use problems;
	// build them once and let both analyses (running concurrently —
	// the Structure is read-only) share the skeleton.
	var st *core.Structure
	a.Stages.Do("structure", func() { st = core.BuildStructure(prog) })
	co := core.Options{Alloc: opts.Alloc, Prof: a.Stages, Structure: st, DisableCondensation: opts.DisableCondensation}
	batch.Run(w, []func(){
		func() { a.Mod = core.Analyze(prog, core.Mod, co) },
		func() { a.Use = core.Analyze(prog, core.Use, co) },
		func() { a.Stages.Do("aliases", func() { a.Aliases = alias.Compute(prog) }) },
	})
	a.refreshDerived(opts)
	return a
}

// refreshDerived recomputes the second stage layer — both section
// problems and the alias-factored per-call-site sets — from the
// current Mod/Use results and alias analysis. Used by the pipeline and
// by the incremental updater after the core results change.
func (a *Analysis) refreshDerived(opts Options) {
	batch.Run(opts.workers(), []func(){
		func() { a.SecMod = section.AnalyzeProf(a.Mod, core.Mod, section.SimpleSections, a.Stages) },
		func() { a.SecUse = section.AnalyzeProf(a.Mod, core.Use, section.SimpleSections, a.Stages) },
		// Factored sets share their core Result's lifetime, so they are
		// drawn from its arena; each arena is touched by exactly one of
		// these goroutines.
		func() {
			a.Stages.Do("factor.mod", func() { a.ModSets = a.Aliases.FactorArena(a.Mod.DMOD, a.Mod.Arena) })
		},
		func() {
			a.Stages.Do("factor.use", func() { a.UseSets = a.Aliases.FactorArena(a.Use.DMOD, a.Use.Arena) })
		},
	})
}

// Release returns the analysis's arena-backed set storage to a
// process-wide pool for reuse by a later analysis. It is optional —
// dropping the Analysis frees everything through the collector — but a
// loop that analyzes many programs and fully consumes each result
// before the next (the batch engine's steady state) recycles warm
// slabs this way instead of growing fresh ones per program. After
// Release no set previously obtained from the Analysis may be used;
// the set-valued fields are nilled to fail fast. Under AllocHybrid or
// AllocDense there is nothing pooled and Release is a no-op.
func (a *Analysis) Release() {
	if a == nil {
		return
	}
	a.ModSets, a.UseSets = nil, nil
	a.SecMod, a.SecUse = nil, nil
	a.Mod.Release()
	a.Use.Release()
}

// BatchResult is one program's outcome from AnalyzeAll: either a
// completed Analysis or the parse/semantic error that stopped it.
type BatchResult struct {
	Analysis *Analysis
	Err      error
	// Degraded reports that the first attempt failed with a captured
	// panic and the Analysis came from AnalyzeAllContext's fallback
	// retry (sequential, dense allocation, no pooled storage).
	Degraded bool
}

// AnalyzeAll analyzes many source texts concurrently on a bounded
// worker pool and returns one result per input, in input order. Each
// program's own stage pipeline runs sequentially — with many programs
// in flight, program-level parallelism already saturates the workers,
// and nesting stage-level goroutines underneath would only oversubscribe
// the pool. A failed parse disables only that entry; the others are
// unaffected.
func AnalyzeAll(srcs []string, opts Options) []BatchResult {
	return batch.Map(opts.workers(), srcs, func(_ int, src string) BatchResult {
		a, err := AnalyzeWith(src, Options{Sequential: true, Alloc: opts.Alloc})
		return BatchResult{Analysis: a, Err: err}
	})
}

// AnalyzeAllPrograms is AnalyzeAll for callers that already hold
// program models: the same bounded worker pool and per-program
// sequential pipeline, without the parser in front. Programs are
// analyzed as given (prune first if needed).
func AnalyzeAllPrograms(progs []*ir.Program, opts Options) []*Analysis {
	return batch.Map(opts.workers(), progs, func(_ int, p *ir.Program) *Analysis {
		return AnalyzeProgramWith(p, Options{Sequential: true, Alloc: opts.Alloc})
	})
}

// Procedures returns the procedure names in declaration order (main
// first, as "$main").
func (a *Analysis) Procedures() []string {
	out := make([]string, 0, a.Prog.NumProcs())
	for _, p := range a.Prog.Procs {
		out = append(out, p.Name)
	}
	return out
}

func (a *Analysis) proc(name string) (*ir.Procedure, error) {
	p := a.Prog.Proc(name)
	if p == nil {
		return nil, fmt.Errorf("sideeffect: no procedure %q", name)
	}
	return p, nil
}

// MOD returns GMOD(proc): the qualified names of variables whose
// values an invocation of proc may modify.
func (a *Analysis) MOD(proc string) ([]string, error) {
	p, err := a.proc(proc)
	if err != nil {
		return nil, err
	}
	return report.VarNames(a.Prog, a.Mod.GMOD[p.ID]), nil
}

// USE returns GUSE(proc): the qualified names of variables whose
// values an invocation of proc may use.
func (a *Analysis) USE(proc string) ([]string, error) {
	p, err := a.proc(proc)
	if err != nil {
		return nil, err
	}
	return report.VarNames(a.Prog, a.Use.GMOD[p.ID]), nil
}

// RMOD returns the names of proc's by-reference formal parameters that
// an invocation may modify.
func (a *Analysis) RMOD(proc string) ([]string, error) {
	p, err := a.proc(proc)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, f := range p.Formals {
		if a.Mod.RMOD.Of(f) {
			out = append(out, f.Name)
		}
	}
	return out, nil
}

// CallSite describes one call site's final analysis results.
type CallSite struct {
	// Caller and Callee are procedure names; Pos is the source
	// position ("line:col") when the program came from source.
	Caller, Callee, Pos string
	// MOD and USE are the per-call-site sets after alias factoring.
	MOD, USE []string
	// Sections lists the array-subregion refinements for MOD, e.g.
	// "A(*, j)".
	Sections []string
}

// CallSites returns the final per-call-site results in program order.
func (a *Analysis) CallSites() []CallSite {
	out := make([]CallSite, 0, a.Prog.NumSites())
	for _, cs := range a.Prog.Sites {
		c := CallSite{
			Caller: cs.Caller.Name,
			Callee: cs.Callee.Name,
			Pos:    cs.Pos.String(),
			MOD:    report.VarNames(a.Prog, a.ModSets[cs.ID]),
			USE:    report.VarNames(a.Prog, a.UseSets[cs.ID]),
		}
		at := a.SecMod.AtCall(cs)
		ids := make([]int, 0, len(at))
		for id := range at {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			c.Sections = append(c.Sections, at[id].Format(a.Prog.Vars[id].Name, a.Prog.Vars))
		}
		out = append(out, c)
	}
	return out
}

// Report renders the complete human-readable analysis report.
func (a *Analysis) Report() string {
	return report.Full(a.Mod, a.Use, a.Aliases, a.SecMod)
}
