package sideeffect

import (
	"testing"

	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/printer"
	"sideeffect/internal/report"
	"sideeffect/internal/workload"
)

// fuzzSeeds is the in-code seed corpus shared by both fuzz targets;
// testdata/fuzz/ holds the same programs (plus regression inputs) in
// the native corpus format so `go test` exercises them even without
// -fuzz.
func fuzzSeeds() []string {
	seeds := []string{
		"",
		"program t; begin end.",
		"program t; global g; proc p(ref x) begin x := g end; begin call p(g) end.",
		// Arrays, sections, and a loop — reaches the Section 6 lattice.
		`program s;
global A[8, 8];
global i, n;
proc row(ref j)
begin
  A[j, 3] := j
end;
begin
  for i := 1 to n do
    call row(i)
  end
end.`,
		// Nested procedures reach the multi-level GMOD driver.
		`program n;
global g;
proc outer(ref x)
  var t;
  proc inner(ref y)
  begin
    y := g;
    g := t
  end;
begin
  call inner(x);
  t := x
end;
begin
  call outer(g)
end.`,
		// Recursion through two mutually-calling procedures.
		`program r;
global g;
proc a(ref x)
begin
  if x < 10 then call b(x) end
end;
proc b(ref y)
begin
  y := y + 1;
  call a(y)
end;
begin
  call a(g)
end.`,
	}
	seeds = append(seeds,
		workload.Emit(workload.PaperExample()),
		workload.Emit(workload.DivideConquer()),
		workload.Emit(workload.Random(workload.DefaultConfig(6, 3))),
	)
	return seeds
}

// FuzzAnalyze feeds arbitrary text through the entire pipeline —
// parse, semantic analysis, pruning, both core problems, aliases,
// sections, and every report renderer — asserting it never panics,
// and that the sequential and parallel schedules agree on every input
// the pipeline accepts.
func FuzzAnalyze(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		seq, err := AnalyzeWith(src, Options{Sequential: true})
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		_ = seq.Report()
		_ = seq.CallSites()
		if _, err := report.JSON(seq.Mod, seq.Use, seq.Aliases, seq.SecMod); err != nil {
			t.Fatalf("JSON rendering failed: %v", err)
		}
		par, err := AnalyzeWith(src, Options{Workers: 4})
		if err != nil {
			t.Fatalf("parallel schedule rejected an accepted input: %v", err)
		}
		if seq.Report() != par.Report() {
			t.Errorf("sequential and parallel reports differ for:\n%s", src)
		}
	})
}

// FuzzRoundTrip checks the printer against the parser: any program
// that parses must print to text that re-parses, printing must be
// idempotent, and the printed form must analyze to the same
// position-free results as the original.
func FuzzRoundTrip(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		out1 := printer.Print(prog)
		reparsed, err := parser.Parse(out1)
		if err != nil {
			t.Fatalf("printed program fails to re-parse: %v\n%s", err, out1)
		}
		if out2 := printer.Print(reparsed); out1 != out2 {
			t.Errorf("printer not idempotent:\n--- first\n%s\n--- second\n%s", out1, out2)
		}
		// The printed form must be semantically equivalent: identical
		// acceptance, and identical summaries (positions excluded —
		// formatting legitimately moves statements).
		a1, err1 := AnalyzeWith(src, Options{Sequential: true})
		a2, err2 := AnalyzeWith(out1, Options{Sequential: true})
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("acceptance changed by printing: original err %v, printed err %v\n%s", err1, err2, out1)
		}
		if err1 != nil {
			return
		}
		s1 := report.Summaries(a1.Mod, a1.Use) + report.RMODTable(a1.Mod)
		s2 := report.Summaries(a2.Mod, a2.Use) + report.RMODTable(a2.Mod)
		if s1 != s2 {
			t.Errorf("summaries changed by printing:\n--- original\n%s\n--- printed\n%s", s1, s2)
		}
	})
}
