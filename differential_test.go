package sideeffect

import (
	"fmt"
	"testing"

	"sideeffect/internal/baseline"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/report"
	"sideeffect/internal/workload"
)

// differentialConfigs enumerates the random-program population for the
// differential harness: flat and nested shapes across several sizes,
// many seeds each — about 200 programs in total.
func differentialConfigs() []workload.Config {
	var cfgs []workload.Config
	for _, size := range []int{8, 20, 40} {
		for seed := int64(0); seed < 50; seed++ {
			cfgs = append(cfgs, workload.DefaultConfig(size, seed))
		}
	}
	// Nested programs exercise the multi-level GMOD driver.
	for seed := int64(0); seed < 50; seed++ {
		cfg := workload.DefaultConfig(25, 1000+seed)
		cfg.MaxDepth = 3
		cfg.NestFraction = 0.4
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestDifferentialAgainstBaselines runs the fast pipeline and the
// independent iterative baselines over ~200 generated programs and
// requires bit-identical RMOD and GMOD solutions. The swift-style
// decomposed solver and Banning's direct equation-(1) fixpoint share
// no code with the paper's algorithms, so agreement here is strong
// evidence that Figure 1 / Figure 2 (and the multi-level extension)
// are implemented correctly.
func TestDifferentialAgainstBaselines(t *testing.T) {
	for _, cfg := range differentialConfigs() {
		prog := workload.Random(cfg)
		for _, kind := range []core.Kind{core.Mod, core.Use} {
			tag := fmt.Sprintf("size=%d seed=%d depth=%d kind=%v", cfg.Procs, cfg.Seed, cfg.MaxDepth, kind)
			res := core.Analyze(prog, kind, core.Options{})
			sw := baseline.SwiftDecomposed(res.Prog, res.Facts)
			for _, v := range res.Beta.Nodes {
				if res.RMOD.Of(v) != sw.RMODOf(v) {
					t.Fatalf("%s: RMOD(%s) = %v, swift says %v", tag, v, res.RMOD.Of(v), sw.RMODOf(v))
				}
			}
			ban := baseline.BanningIterative(res.Prog, res.Facts)
			for _, p := range res.Prog.Procs {
				if !res.GMOD[p.ID].Equal(sw.GMOD[p.ID]) {
					t.Fatalf("%s: GMOD(%s) disagrees with swift:\n fast %v\n swift %v",
						tag, p.Name, res.GMOD[p.ID], sw.GMOD[p.ID])
				}
				if !res.GMOD[p.ID].Equal(ban.GMOD[p.ID]) {
					t.Fatalf("%s: GMOD(%s) disagrees with banning:\n fast    %v\n banning %v",
						tag, p.Name, res.GMOD[p.ID], ban.GMOD[p.ID])
				}
			}
		}
	}
}

// TestSequentialParallelIdentical proves the concurrent stage engine
// is an observational no-op: for a spread of programs, the sequential
// pipeline and the parallel one must render byte-identical reports (in
// every format) and identical per-call-site sets.
func TestSequentialParallelIdentical(t *testing.T) {
	progs := map[string]*ir.Program{
		"paper":  workload.PaperExample(),
		"divide": workload.DivideConquer(),
		"chain":  workload.Chain(12),
		"cycle":  workload.Cycle(9),
		"fanout": workload.Fanout(16),
		"tower":  workload.NestedTower(4),
	}
	for seed := int64(0); seed < 10; seed++ {
		progs[fmt.Sprintf("rand%d", seed)] = workload.Random(workload.DefaultConfig(30, seed))
		cfg := workload.DefaultConfig(20, 100+seed)
		cfg.MaxDepth = 2
		cfg.NestFraction = 0.35
		progs[fmt.Sprintf("nest%d", seed)] = workload.Random(cfg)
	}
	for name, prog := range progs {
		src := workload.Emit(prog)
		seq, err := AnalyzeWith(src, Options{Sequential: true})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		par, err := AnalyzeWith(src, Options{Workers: 8})
		if err != nil {
			t.Fatalf("%s: parallel: %v", name, err)
		}
		if s, p := seq.Report(), par.Report(); s != p {
			t.Errorf("%s: sequential and parallel reports differ:\n--- seq\n%s\n--- par\n%s", name, s, p)
		}
		sj, err := report.JSON(seq.Mod, seq.Use, seq.Aliases, seq.SecMod)
		if err != nil {
			t.Fatalf("%s: json: %v", name, err)
		}
		pj, err := report.JSON(par.Mod, par.Use, par.Aliases, par.SecMod)
		if err != nil {
			t.Fatalf("%s: json: %v", name, err)
		}
		if string(sj) != string(pj) {
			t.Errorf("%s: sequential and parallel JSON differ", name)
		}
		for i := range seq.ModSets {
			if !seq.ModSets[i].Equal(par.ModSets[i]) || !seq.UseSets[i].Equal(par.UseSets[i]) {
				t.Errorf("%s: call site %d sets differ between schedules", name, i)
			}
		}
	}
}

// TestAnalyzeAllMatchesAnalyze checks the batch API against one-at-a-
// time analysis: same order, same reports, and per-entry error
// isolation.
func TestAnalyzeAllMatchesAnalyze(t *testing.T) {
	var srcs []string
	for seed := int64(0); seed < 12; seed++ {
		srcs = append(srcs, workload.Emit(workload.Random(workload.DefaultConfig(15, seed))))
	}
	srcs = append(srcs, "program broken; begin x := 1 end.") // undeclared: must fail alone
	srcs = append(srcs, workload.Emit(workload.PaperExample()))

	got := AnalyzeAll(srcs, Options{Workers: 4})
	if len(got) != len(srcs) {
		t.Fatalf("AnalyzeAll returned %d results for %d inputs", len(got), len(srcs))
	}
	for i, src := range srcs {
		want, wantErr := Analyze(src)
		if (got[i].Err != nil) != (wantErr != nil) {
			t.Fatalf("entry %d: batch err = %v, direct err = %v", i, got[i].Err, wantErr)
		}
		if wantErr != nil {
			continue
		}
		if got[i].Analysis.Report() != want.Report() {
			t.Errorf("entry %d: batch report differs from direct analysis", i)
		}
	}
}
