package sideeffect

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/printer"
	"sideeffect/internal/lint"
)

// lintFixtures returns the analyzable fixture basenames under
// testdata/lint (broken.mpl, the deliberate parse failure, excluded).
func lintFixtures(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("testdata/lint/*.mpl")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, p := range paths {
		if base := strings.TrimSuffix(filepath.Base(p), ".mpl"); base != "broken" {
			out = append(out, base)
		}
	}
	if len(out) < 7 {
		t.Fatalf("expected at least 7 lint fixtures, found %d", len(out))
	}
	return out
}

func lintFixture(t *testing.T, base string, opts Options) (string, *lint.Report) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("testdata", "lint", base+".mpl"))
	if err != nil {
		t.Fatal(err)
	}
	a, err := AnalyzeWith(string(src), opts)
	if err != nil {
		t.Fatalf("%s: %v", base, err)
	}
	rep, err := a.Lint(lint.Config{})
	if err != nil {
		t.Fatalf("%s: %v", base, err)
	}
	return string(src), rep
}

// TestLintGolden pins all three writers' output for every fixture,
// under both the sequential and the parallel analysis schedule. The
// goldens double as the format-stability contract for SARIF consumers.
func TestLintGolden(t *testing.T) {
	for _, base := range lintFixtures(t) {
		for _, opts := range []Options{{Sequential: true}, {Workers: 4}} {
			_, rep := lintFixture(t, base, opts)
			files := []lint.FileReport{{File: "testdata/lint/" + base + ".mpl", Report: rep}}
			renders := map[string]func() (string, error){
				"txt":   func() (string, error) { return lint.Text(files), nil },
				"json":  func() (string, error) { return lint.JSON(files) },
				"sarif": func() (string, error) { return lint.SARIF(files) },
			}
			for ext, render := range renders {
				got, err := render()
				if err != nil {
					t.Fatalf("%s.%s: %v", base, ext, err)
				}
				goldenPath := filepath.Join("testdata", "lint", base+".golden."+ext)
				want, err := os.ReadFile(goldenPath)
				if err != nil {
					t.Fatalf("%s: %v", base, err)
				}
				if got != string(want) {
					t.Errorf("%s.%s drifted (opts %+v):\n--- got\n%s\n--- want\n%s",
						base, ext, opts, got, want)
				}
			}
		}
	}
}

// TestLintRulesFire asserts each fixture is a true positive for exactly
// the rules it was written to trigger — and nothing else.
func TestLintRulesFire(t *testing.T) {
	want := map[string][]string{
		"se001_refval":     {"SE001"},
		"se002_pure":       {"SE002"},
		"se003_alias":      {"SE003"},
		"se004_deadglobal": {"SE004"},
		"se005_ignorable":  {"SE005"},
		"se006_loops":      {"SE006", "SE007"},
		"clean":            {},
	}
	for base, rules := range want {
		_, rep := lintFixture(t, base, Options{})
		var got []string
		for _, d := range rep.Diags {
			got = append(got, d.Rule)
		}
		if len(got) == 0 && len(rules) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, rules) {
			t.Errorf("%s: fired %v, want %v", base, got, rules)
		}
	}
}

// TestLintDeterministic mirrors TestReportersDeterministic for the
// diagnostics engine: two independent analyses of the same source, and
// repeated renders of one report, must be byte-identical in every
// format — including on the randomized determinism workloads, which
// exercise the rules far beyond the hand-written fixtures.
func TestLintDeterministic(t *testing.T) {
	srcs := determinismSources()
	for _, base := range []string{"se006_loops", "se003_alias"} {
		b, err := os.ReadFile(filepath.Join("testdata", "lint", base+".mpl"))
		if err != nil {
			t.Fatal(err)
		}
		srcs[base] = string(b)
	}
	for name, src := range srcs {
		a1, err := AnalyzeWith(src, Options{Sequential: true})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		a2, err := AnalyzeWith(src, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r1, err := a1.Lint(lint.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r2, err := a2.Lint(lint.Config{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Errorf("%s: lint reports differ between sequential and parallel runs", name)
		}
		f1 := []lint.FileReport{{File: name, Report: r1}}
		f2 := []lint.FileReport{{File: name, Report: r2}}
		j1, err := lint.JSON(f1)
		if err != nil {
			t.Fatal(err)
		}
		j2, _ := lint.JSON(f2)
		if j1 != j2 {
			t.Errorf("%s: JSON lint output differs across runs", name)
		}
		s1, err := lint.SARIF(f1)
		if err != nil {
			t.Fatal(err)
		}
		s2, _ := lint.SARIF(f2)
		if s1 != s2 {
			t.Errorf("%s: SARIF lint output differs across runs", name)
		}
		if lint.Text(f1) != lint.Text(f2) {
			t.Errorf("%s: text lint output differs across runs", name)
		}
		// Repeated renders of one report are identical too.
		if j11, _ := lint.JSON(f1); j11 != j1 {
			t.Errorf("%s: JSON differs between two renders of one report", name)
		}
	}
}

// TestLintConfig exercises rule selection, severity overrides, the
// minimum-severity filter, and configuration error reporting.
func TestLintConfig(t *testing.T) {
	src, err := os.ReadFile("testdata/lint/se004_deadglobal.mpl")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(string(src))
	if err != nil {
		t.Fatal(err)
	}

	// Enable narrows to exactly the named rules (by ID or slug).
	rep, err := a.Lint(lint.Config{Enable: []string{"dead-global"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) != 1 || rep.Diags[0].Rule != "SE004" {
		t.Fatalf("Enable: got %+v", rep.Diags)
	}
	if len(rep.Counts) != 1 {
		t.Fatalf("Enable: counts should list only the selected rule: %v", rep.Counts)
	}

	// Disable removes a rule; the rest keep running.
	rep, err = a.Lint(lint.Config{Disable: []string{"SE004"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range rep.Diags {
		if d.Rule == "SE004" {
			t.Fatalf("Disable: SE004 still fired")
		}
	}
	if _, ok := rep.Counts["SE004"]; ok {
		t.Fatalf("Disable: SE004 still counted")
	}

	// Severity overrides re-level findings; MinSeverity filters but
	// keeps the rule's zero count visible.
	rep, err = a.Lint(lint.Config{
		Severity:    map[string]lint.Severity{"SE004": lint.Error},
		MinSeverity: lint.Error,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Diags) != 1 || rep.Diags[0].Severity != lint.Error {
		t.Fatalf("Severity override: got %+v", rep.Diags)
	}
	if n, ok := rep.Counts["SE001"]; !ok || n != 0 {
		t.Fatalf("MinSeverity: filtered rule should count 0, got %v", rep.Counts)
	}

	// Unknown rule names are configuration errors.
	if _, err := a.Lint(lint.Config{Enable: []string{"SE999"}}); err == nil {
		t.Fatal("unknown rule accepted")
	}
	if _, err := a.Lint(lint.Config{Disable: []string{"nope"}}); err == nil {
		t.Fatal("unknown disable accepted")
	}
}

// wordAt returns the identifier or keyword starting at a 1-based
// (line, col) position in src — what a diagnostic position points at.
func wordAt(t *testing.T, src string, line, col int) string {
	t.Helper()
	lines := strings.Split(src, "\n")
	if line < 1 || line > len(lines) {
		t.Fatalf("position line %d out of range (%d lines)", line, len(lines))
	}
	l := lines[line-1]
	if col < 1 || col > len(l) {
		t.Fatalf("position col %d out of range on line %d: %q", col, line, l)
	}
	rest := l[col-1:]
	end := 0
	for end < len(rest) {
		c := rest[end]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			end++
		} else {
			break
		}
	}
	return rest[:end]
}

// checkLintPositions asserts every diagnostic's position points at the
// token it claims to be about: the subject identifier for
// variable-anchored rules, the introducing keyword otherwise.
func checkLintPositions(t *testing.T, src string, rep *lint.Report) {
	t.Helper()
	for _, d := range rep.Diags {
		var want string
		switch d.Rule {
		case "SE001", "SE004": // anchored at the variable's declaration
			want = d.Subject
		case "SE002":
			want = "proc"
		case "SE003", "SE005":
			want = "call"
		case "SE006", "SE007":
			want = "for"
		default:
			t.Fatalf("unknown rule %s in position check", d.Rule)
		}
		if got := wordAt(t, src, d.Pos.Line, d.Pos.Col); got != want {
			t.Errorf("%s at %s points at %q, want %q", d.Rule, d.Pos, got, want)
		}
	}
}

// TestLintPositionRoundTrip verifies diagnostic positions against the
// source text, then round-trips the program through the canonical
// printer and verifies them again on the printed text: positions must
// survive reformatting, not just the original layout. Every rule is
// covered (the fixture set fires all seven).
func TestLintPositionRoundTrip(t *testing.T) {
	total := 0
	for _, base := range lintFixtures(t) {
		src, rep := lintFixture(t, base, Options{})
		checkLintPositions(t, src, rep)
		total += len(rep.Diags)

		tree, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", base, err)
		}
		printed := printer.Print(tree)
		a, err := Analyze(printed)
		if err != nil {
			t.Fatalf("%s (printed): %v", base, err)
		}
		rep2, err := a.Lint(lint.Config{})
		if err != nil {
			t.Fatal(err)
		}
		checkLintPositions(t, printed, rep2)

		// Printing must not change what fires, only where.
		if len(rep2.Diags) != len(rep.Diags) {
			t.Fatalf("%s: printing changed findings: %d vs %d", base, len(rep.Diags), len(rep2.Diags))
		}
		for i := range rep.Diags {
			if rep.Diags[i].Rule != rep2.Diags[i].Rule || rep.Diags[i].Subject != rep2.Diags[i].Subject {
				t.Errorf("%s: finding %d changed identity after printing", base, i)
			}
		}
	}
	if total == 0 {
		t.Fatal("no diagnostics checked")
	}
}

// FuzzLint feeds arbitrary text through analysis plus the diagnostics
// engine and all three writers, asserting the engine never panics,
// accepts every analyzable input, and is deterministic on repeated
// runs over independently recomputed results.
func FuzzLint(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	for _, base := range []string{"se003_alias", "se005_ignorable", "se006_loops"} {
		b, err := os.ReadFile(filepath.Join("testdata", "lint", base+".mpl"))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(b))
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		a1, err := AnalyzeWith(src, Options{Sequential: true})
		if err != nil {
			return // rejected inputs only need to fail cleanly
		}
		r1, err := a1.Lint(lint.Config{})
		if err != nil {
			t.Fatalf("lint rejected an analyzable input: %v", err)
		}
		files := []lint.FileReport{{File: "fuzz.mpl", Report: r1}}
		if _, err := lint.JSON(files); err != nil {
			t.Fatalf("JSON writer failed: %v", err)
		}
		sarif1, err := lint.SARIF(files)
		if err != nil {
			t.Fatalf("SARIF writer failed: %v", err)
		}
		_ = lint.Text(files)

		a2, err := AnalyzeWith(src, Options{Workers: 4})
		if err != nil {
			t.Fatalf("parallel schedule rejected an accepted input: %v", err)
		}
		r2, err := a2.Lint(lint.Config{})
		if err != nil {
			t.Fatal(err)
		}
		sarif2, err := lint.SARIF([]lint.FileReport{{File: "fuzz.mpl", Report: r2}})
		if err != nil {
			t.Fatal(err)
		}
		if sarif1 != sarif2 {
			t.Errorf("lint output differs across analysis runs for:\n%s", src)
		}
	})
}
