package sideeffect_test

// E14 — serving benchmarks. These drive the analysis server over real
// HTTP (httptest) and record queries/sec, client-observed p50/p99
// latency, and the cache hit ratio into BENCH_server.json, the artifact
// behind EXPERIMENTS.md's E14 table. The file lives in the external
// test package: internal/server imports the root package, so the root
// package's own tests cannot import it back.
//
// Run with:
//
//	go test -bench=BenchmarkServer -benchtime=2s .

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"sideeffect/internal/server"
	"sideeffect/internal/workload"
)

// benchServerRecord is one row of BENCH_server.json, shared with
// cmd/experiments/exp_server.go (E14): both producers merge into the
// same file by name.
type benchServerRecord struct {
	Name          string  `json:"name"`
	Cores         int     `json:"cores"`
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"`
	QPS           float64 `json:"qps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
}

// mergeBenchServer folds one record into BENCH_server.json, replacing
// any previous row with the same name. Benchmarks only run under
// -bench, so plain `go test` never touches the file.
func mergeBenchServer(tb testing.TB, rec benchServerRecord) {
	tb.Helper()
	var doc struct {
		Cores          int                 `json:"cores"`
		NumCPU         int                 `json:"num_cpu"`
		Oversubscribed bool                `json:"oversubscribed"`
		Records        []benchServerRecord `json:"records"`
	}
	if data, err := os.ReadFile("BENCH_server.json"); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	doc.Cores = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	doc.Oversubscribed = doc.Cores > doc.NumCPU
	for _, r := range doc.Records {
		if r.Workers > doc.NumCPU {
			doc.Oversubscribed = true
		}
	}
	kept := doc.Records[:0]
	for _, r := range doc.Records {
		if r.Name != rec.Name {
			kept = append(kept, r)
		}
	}
	doc.Records = append(kept, rec)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		tb.Fatalf("marshal BENCH_server.json: %v", err)
	}
	if err := os.WriteFile("BENCH_server.json", append(out, '\n'), 0o644); err != nil {
		tb.Fatalf("write BENCH_server.json: %v", err)
	}
}

// latencyStats reduces per-request wall times to the record fields.
func latencyStats(lat []time.Duration) (p50, p99 float64) {
	if len(lat) == 0 {
		return 0, 0
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	at := func(q float64) float64 {
		i := int(q * float64(len(lat)-1))
		return float64(lat[i].Nanoseconds()) / 1e6
	}
	return at(0.50), at(0.99)
}

// postJSON is the minimal bench client; it fails the benchmark on any
// non-2xx status.
func postJSON(tb testing.TB, url string, body any, out any) {
	tb.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		tb.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		tb.Fatalf("POST %s: status %d: %s", url, resp.StatusCode, buf.String())
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkServerAnalyzeWarm measures the steady state of a programming
// environment re-querying unchanged modules: every request after the
// first is a cache hit.
func BenchmarkServerAnalyzeWarm(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	src := workload.Emit(workload.Random(workload.DefaultConfig(32, 14)))
	req := map[string]string{"source": src}
	var resp struct {
		Cached bool `json:"cached"`
	}
	postJSON(b, ts.URL+"/analyze", req, &resp) // prime the cache
	hits := 0
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		postJSON(b, ts.URL+"/analyze", req, &resp)
		lat = append(lat, time.Since(start))
		if resp.Cached {
			hits++
		}
	}
	b.StopTimer()
	p50, p99 := latencyStats(lat)
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(p99, "p99-ms")
	mergeBenchServer(b, benchServerRecord{
		Name: "ServerAnalyzeWarm", Cores: runtime.GOMAXPROCS(0), Workers: runtime.GOMAXPROCS(0), Requests: b.N,
		QPS: qps, P50Ms: p50, P99Ms: p99, CacheHitRatio: float64(hits) / float64(b.N),
	})
}

// BenchmarkServerAnalyzeCold measures the miss path: every request
// carries a texturally distinct source (same program, one more trailing
// newline), so each one parses and analyzes from scratch.
func BenchmarkServerAnalyzeCold(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{CacheEntries: 64}).Handler())
	defer ts.Close()
	src := workload.Emit(workload.Random(workload.DefaultConfig(32, 14)))
	var resp struct {
		Cached bool `json:"cached"`
	}
	hits := 0
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := map[string]string{"source": src + strings.Repeat("\n", i+1)}
		start := time.Now()
		postJSON(b, ts.URL+"/analyze", req, &resp)
		lat = append(lat, time.Since(start))
		if resp.Cached {
			hits++
		}
	}
	b.StopTimer()
	p50, p99 := latencyStats(lat)
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(p99, "p99-ms")
	mergeBenchServer(b, benchServerRecord{
		Name: "ServerAnalyzeCold", Cores: runtime.GOMAXPROCS(0), Workers: runtime.GOMAXPROCS(0), Requests: b.N,
		QPS: qps, P50Ms: p50, P99Ms: p99, CacheHitRatio: float64(hits) / float64(b.N),
	})
}

// BenchmarkServerSessionEdit measures the incremental session path:
// each request is an additive edit absorbed by delta propagation, the
// paper's recompilation scenario served over HTTP.
func BenchmarkServerSessionEdit(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()
	src := workload.Emit(workload.Random(workload.DefaultConfig(32, 14)))
	var sess struct {
		ID string `json:"id"`
	}
	postJSON(b, ts.URL+"/session", map[string]string{"source": src}, &sess)
	editURL := ts.URL + "/session/" + sess.ID + "/edit"
	var resp struct {
		Mode string `json:"mode"`
	}
	incremental := 0
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate between two whitespace-distinct spellings of the
		// same program; both directions are additive (empty delta).
		req := map[string]string{"source": src + strings.Repeat("\n", i%2+1)}
		start := time.Now()
		postJSON(b, editURL, req, &resp)
		lat = append(lat, time.Since(start))
		if resp.Mode == "incremental" {
			incremental++
		}
	}
	b.StopTimer()
	if incremental != b.N {
		b.Fatalf("%d of %d edits were incremental", incremental, b.N)
	}
	p50, p99 := latencyStats(lat)
	qps := float64(b.N) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "qps")
	b.ReportMetric(p99, "p99-ms")
	mergeBenchServer(b, benchServerRecord{
		Name: "ServerSessionEdit", Cores: runtime.GOMAXPROCS(0), Workers: runtime.GOMAXPROCS(0), Requests: b.N,
		QPS: qps, P50Ms: p50, P99Ms: p99, CacheHitRatio: 0,
	})
}

// BenchmarkServerBatch measures /batch throughput over a small corpus,
// amortizing HTTP and JSON overhead across the worker pool.
func BenchmarkServerBatch(b *testing.B) {
	ts := httptest.NewServer(server.New(server.Config{CacheEntries: 4}).Handler())
	defer ts.Close()
	srcs := make([]string, 8)
	for i := range srcs {
		srcs[i] = workload.Emit(workload.Random(workload.DefaultConfig(24, int64(900+i))))
	}
	var resp struct {
		Results []struct {
			Cached bool   `json:"cached"`
			Error  string `json:"error"`
		} `json:"results"`
	}
	lat := make([]time.Duration, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		postJSON(b, ts.URL+"/batch", map[string][]string{"sources": srcs}, &resp)
		lat = append(lat, time.Since(start))
		for _, r := range resp.Results {
			if r.Error != "" {
				b.Fatal(r.Error)
			}
		}
	}
	b.StopTimer()
	p50, p99 := latencyStats(lat)
	n := b.N * len(srcs)
	qps := float64(n) / b.Elapsed().Seconds()
	b.ReportMetric(qps, "programs/s")
	mergeBenchServer(b, benchServerRecord{
		Name: fmt.Sprintf("ServerBatch/%dsrcs", len(srcs)), Cores: runtime.GOMAXPROCS(0),
		Workers: runtime.GOMAXPROCS(0), Requests: n, QPS: qps, P50Ms: p50, P99Ms: p99, CacheHitRatio: 0,
	})
}
