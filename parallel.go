package sideeffect

import (
	"fmt"
	"sort"

	"sideeffect/internal/ir"
	"sideeffect/internal/section"
)

// LoopVerdict is the scheduling decision for one loop whose body
// contains calls, together with the evidence.
type LoopVerdict struct {
	// Parallel reports that distinct iterations are independent:
	// no write/write or read/write conflict on any variable between
	// iterations is possible.
	Parallel bool
	// Conflicts lists the reasons serialization is required, e.g.
	// "write/write on hist(*)" — empty when Parallel.
	Conflicts []string
	// Sections lists the per-array evidence, formatted, e.g.
	// "A: writes A(*, i), reads A(*, i)".
	Sections []string
}

// LoopParallelizable decides whether a loop over index loopVar (a
// variable name visible where the loop runs) whose body consists of
// the given call sites can run its iterations in parallel, using the
// regular-section MOD and USE summaries (Section 6 of the paper — the
// data-decomposition test that whole-array summaries cannot pass).
//
// The test is conservative in both directions it must be:
//
//   - scalar conflicts: any scalar (or whole variable) written by an
//     iteration and also written or read by another serializes the
//     loop, except the loop index itself;
//   - array conflicts: per array, the iteration-local written section
//     must be disjoint across iterations from both the written and the
//     read sections (a dimension pinned to the loop index separates
//     iterations; provably disjoint constant spans do too).
//
// Call sites are identified by their index in CallSites() /
// Prog.Sites.
func (a *Analysis) LoopParallelizable(loopVar string, siteIDs ...int) (LoopVerdict, error) {
	v := a.Prog.Var(loopVar)
	if v == nil {
		return LoopVerdict{}, fmt.Errorf("sideeffect: no variable %q", loopVar)
	}
	sites := make([]*ir.CallSite, 0, len(siteIDs))
	for _, id := range siteIDs {
		if id < 0 || id >= a.Prog.NumSites() {
			return LoopVerdict{}, fmt.Errorf("sideeffect: no call site %d", id)
		}
		sites = append(sites, a.Prog.Sites[id])
	}
	return a.loopVerdict(v, sites), nil
}

// loopVerdict is the core of LoopParallelizable over resolved sites;
// the lint layer calls it once per recorded ir.Loop.
func (a *Analysis) loopVerdict(v *ir.Variable, sites []*ir.CallSite) LoopVerdict {
	verdict := LoopVerdict{Parallel: true}

	// Aggregate per-iteration effects over all body calls.
	writes := map[int]section.RSD{} // array var ID → written section
	reads := map[int]section.RSD{}
	scalarW := map[int]bool{}
	scalarR := map[int]bool{}
	for _, cs := range sites {
		for vid, rsd := range a.SecMod.AtCallWithin(cs, v) {
			merge(writes, vid, rsd)
		}
		for vid, rsd := range a.SecUse.AtCallWithin(cs, v) {
			merge(reads, vid, rsd)
		}
		a.ModSets[cs.ID].ForEach(func(vid int) {
			if a.Prog.Vars[vid].Rank() == 0 {
				scalarW[vid] = true
			}
		})
		a.UseSets[cs.ID].ForEach(func(vid int) {
			if a.Prog.Vars[vid].Rank() == 0 {
				scalarR[vid] = true
			}
		})
	}

	// Scalar conflicts: written-and-shared scalars serialize (the
	// loop index itself is private to the iteration scheme).
	var scalarIDs []int
	for vid := range scalarW {
		scalarIDs = append(scalarIDs, vid)
	}
	sort.Ints(scalarIDs)
	for _, vid := range scalarIDs {
		if vid == v.ID {
			continue
		}
		kind := "write/write"
		if !scalarR[vid] {
			// A variable only ever overwritten by iterations still
			// races on the final value; flow-insensitive analysis
			// cannot prove idempotence, so stay conservative.
			kind = "write"
		}
		verdict.Parallel = false
		verdict.Conflicts = append(verdict.Conflicts,
			fmt.Sprintf("%s on scalar %s", kind, a.Prog.Vars[vid]))
	}

	// Array conflicts.
	var arrIDs []int
	for vid := range writes {
		arrIDs = append(arrIDs, vid)
	}
	sort.Ints(arrIDs)
	for _, vid := range arrIDs {
		w := writes[vid]
		name := a.Prog.Vars[vid].Name
		ev := fmt.Sprintf("%s: writes %s", name, w.Format(name, a.Prog.Vars))
		if r, ok := reads[vid]; ok {
			ev += fmt.Sprintf(", reads %s", r.Format(name, a.Prog.Vars))
		}
		verdict.Sections = append(verdict.Sections, ev)
		if !section.DisjointAcrossIterations(w, w, v) {
			verdict.Parallel = false
			verdict.Conflicts = append(verdict.Conflicts,
				fmt.Sprintf("write/write on %s", w.Format(name, a.Prog.Vars)))
		}
		if r, ok := reads[vid]; ok && !section.DisjointAcrossIterations(w, r, v) {
			verdict.Parallel = false
			verdict.Conflicts = append(verdict.Conflicts,
				fmt.Sprintf("read/write on %s", r.Format(name, a.Prog.Vars)))
		}
	}
	return verdict
}

func merge(m map[int]section.RSD, vid int, r section.RSD) {
	if cur, ok := m[vid]; ok {
		m[vid] = section.Meet(cur, r)
	} else {
		m[vid] = r
	}
}
