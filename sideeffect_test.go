package sideeffect

import (
	"strings"
	"testing"
)

const demoSrc = `
program demo;
global g, h;
global A[10, 10];

proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;

proc colset(ref c[*], val v)
  var i;
begin
  for i := 1 to 10 do c[i] := v end
end;

proc driver(ref x)
begin
  call swap(x, g);
  call colset(A[*, 2], h)
end;

begin
  call driver(h)
end.
`

func analyzeDemo(t *testing.T) *Analysis {
	t.Helper()
	a, err := Analyze(demoSrc)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return a
}

func TestAnalyzeMOD(t *testing.T) {
	a := analyzeDemo(t)
	mod, err := a.MOD("swap")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"swap.a", "swap.b", "swap.t"}
	if strings.Join(mod, " ") != strings.Join(want, " ") {
		t.Errorf("MOD(swap) = %v, want %v", mod, want)
	}
	mod, _ = a.MOD("driver")
	// driver swaps x↔g and sets column 2 of A.
	for _, w := range []string{"A", "driver.x", "g"} {
		if !contains(mod, w) {
			t.Errorf("MOD(driver) = %v, missing %s", mod, w)
		}
	}
	mod, _ = a.MOD("$main")
	for _, w := range []string{"A", "g", "h"} {
		if !contains(mod, w) {
			t.Errorf("MOD(main) = %v, missing %s", mod, w)
		}
	}
}

func TestAnalyzeUSE(t *testing.T) {
	a := analyzeDemo(t)
	use, err := a.USE("swap")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{"swap.a", "swap.b", "swap.t"} {
		if !contains(use, w) {
			t.Errorf("USE(swap) = %v, missing %s", use, w)
		}
	}
	use, _ = a.USE("driver")
	// driver uses g (swapped) and h (val argument) and x.
	for _, w := range []string{"g", "h", "driver.x"} {
		if !contains(use, w) {
			t.Errorf("USE(driver) = %v, missing %s", use, w)
		}
	}
}

func TestAnalyzeRMOD(t *testing.T) {
	a := analyzeDemo(t)
	r, err := a.RMOD("swap")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(r, " ") != "a b" {
		t.Errorf("RMOD(swap) = %v", r)
	}
	r, _ = a.RMOD("driver")
	if strings.Join(r, " ") != "x" {
		t.Errorf("RMOD(driver) = %v", r)
	}
	r, _ = a.RMOD("colset")
	if strings.Join(r, " ") != "c" {
		t.Errorf("RMOD(colset) = %v", r)
	}
}

func TestAnalyzeCallSites(t *testing.T) {
	a := analyzeDemo(t)
	sites := a.CallSites()
	if len(sites) != 3 {
		t.Fatalf("sites = %d", len(sites))
	}
	var colsetSite *CallSite
	for i := range sites {
		if sites[i].Callee == "colset" {
			colsetSite = &sites[i]
		}
	}
	if colsetSite == nil {
		t.Fatal("no colset site")
	}
	if !contains(colsetSite.MOD, "A") {
		t.Errorf("MOD at colset site = %v", colsetSite.MOD)
	}
	if !contains(colsetSite.USE, "h") {
		t.Errorf("USE at colset site = %v", colsetSite.USE)
	}
	// The section must refine A to column 2.
	found := false
	for _, s := range colsetSite.Sections {
		if s == "A(*, 2)" {
			found = true
		}
	}
	if !found {
		t.Errorf("Sections = %v, want A(*, 2)", colsetSite.Sections)
	}
	// Alias factoring at the swap site: x and h are aliased in driver
	// (h passed by reference), so MOD includes h... x is bound to h at
	// main's call; ALIAS(driver) = ⟨x, h⟩ wait — h is passed TO x, so
	// inside driver ⟨x, h⟩ holds; swap(x, g) modifies x and g; alias
	// adds h.
	var swapSite *CallSite
	for i := range sites {
		if sites[i].Callee == "swap" {
			swapSite = &sites[i]
		}
	}
	for _, w := range []string{"driver.x", "g", "h"} {
		if !contains(swapSite.MOD, w) {
			t.Errorf("MOD at swap site = %v, missing %s", swapSite.MOD, w)
		}
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze("program p; begin x := 1 end."); err == nil {
		t.Error("bad program accepted")
	}
	a := analyzeDemo(t)
	if _, err := a.MOD("nosuch"); err == nil {
		t.Error("MOD of unknown procedure accepted")
	}
	if _, err := a.USE("nosuch"); err == nil {
		t.Error("USE of unknown procedure accepted")
	}
	if _, err := a.RMOD("nosuch"); err == nil {
		t.Error("RMOD of unknown procedure accepted")
	}
}

func TestAnalyzePrunes(t *testing.T) {
	a, err := Analyze(`
program p;
global g;
proc dead() begin g := 1 end;
begin end.
`)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range a.Procedures() {
		if name == "dead" {
			t.Error("unreachable procedure not pruned")
		}
	}
}

func TestReportRenders(t *testing.T) {
	a := analyzeDemo(t)
	r := a.Report()
	for _, want := range []string{
		"== Interprocedural summaries ==",
		"== Reference formal parameters (RMOD) ==",
		"== Alias pairs ==",
		"== Call sites ==",
		"== Regular sections (MOD) ==",
		"A(*, 2)",
		"swap",
		"GMOD",
	} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}

func TestProcedures(t *testing.T) {
	a := analyzeDemo(t)
	ps := a.Procedures()
	if ps[0] != "$main" || len(ps) != 4 {
		t.Errorf("Procedures = %v", ps)
	}
}

func contains(xs []string, w string) bool {
	for _, x := range xs {
		if x == w {
			return true
		}
	}
	return false
}
