package sideeffect

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sideeffect/internal/gofront"
	"sideeffect/internal/lint"
)

// update regenerates every file-based golden in place of comparing.
// Run `go test -run Golden -update ./...` after a deliberate
// behaviour or formatting change, then review the diff.
var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// checkGolden compares got against the golden file at path, or
// rewrites the file under -update. Differences report the first
// drifting line so updates are easy to review.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantB, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	want := string(wantB)
	if got == want {
		return
	}
	t.Errorf("output drifted from %s (rerun with -update if intended)", path)
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Logf("first diff at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			return
		}
	}
	t.Logf("outputs diverge in length: got %d lines, want %d", len(gl), len(wl))
}

// corpusDirs lists the fixture packages under testdata/gofront in
// name order, skipping the golden directory itself.
func corpusDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "gofront"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		// "golden" holds expectations, "mod" whole-module fixtures with
		// their own golden test below.
		if e.IsDir() && e.Name() != "golden" && e.Name() != "mod" {
			dirs = append(dirs, filepath.Join("testdata", "gofront", e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) < 12 {
		t.Fatalf("fixture corpus has %d packages, want >= 12", len(dirs))
	}
	return dirs
}

// TestGoFrontCorpusGolden pins the full analysis report (with the
// lowering-confidence table) and the modlint output in all three
// formats for every fixture package. Any change to the frontend's
// lowering decisions, the solver, the lint rules, or the writers
// shows up as a diff here.
func TestGoFrontCorpusGolden(t *testing.T) {
	for _, dir := range corpusDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			results, err := AnalyzeGoPackages([]string{dir}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 1 {
				t.Fatalf("got %d packages for %s, want 1", len(results), dir)
			}
			r := results[0]
			defer r.Release()

			golden := func(ext string) string {
				return filepath.Join("testdata", "gofront", "golden", name+"."+ext)
			}
			checkGolden(t, golden("report.txt"), r.GoReport())

			rep, err := r.Analysis.Lint(lint.Config{})
			if err != nil {
				t.Fatal(err)
			}
			files := []lint.FileReport{{File: r.Pkg.Path, Report: rep}}
			checkGolden(t, golden("lint.txt"), lint.Text(files))
			jsonOut, err := lint.JSON(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.json"), jsonOut)
			sarifOut, err := lint.SARIF(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.sarif"), sarifOut)
		})
	}
}

// moduleDirs lists the whole-module fixtures under testdata/gofront/mod
// in name order. Each is a self-contained module with its own go.mod.
func moduleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "gofront", "mod"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("testdata", "gofront", "mod", e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) < 4 {
		t.Fatalf("module corpus has %d modules, want >= 4", len(dirs))
	}
	return dirs
}

// TestGoFrontModuleGolden pins the whole-module analysis report and
// lint output for every fixture module: cross-package resolution,
// closed- and open-world interface dispatch, and field-sensitive
// struct effects all show up in these goldens.
func TestGoFrontModuleGolden(t *testing.T) {
	for _, dir := range moduleDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			r, err := AnalyzeGoModule(dir, nil, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer r.Release()

			golden := func(ext string) string {
				return filepath.Join("testdata", "gofront", "golden", "mod_"+name+"."+ext)
			}
			checkGolden(t, golden("report.txt"), r.GoReport())

			rep, err := r.Analysis.Lint(lint.Config{})
			if err != nil {
				t.Fatal(err)
			}
			files := []lint.FileReport{{File: r.Pkg.Path, Report: rep}}
			checkGolden(t, golden("lint.txt"), lint.Text(files))
			jsonOut, err := lint.JSON(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.json"), jsonOut)
			sarifOut, err := lint.SARIF(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.sarif"), sarifOut)
		})
	}
}

// TestGoFrontModuleFacts asserts the behaviours the module fixtures
// exist to demonstrate, independent of golden formatting.
func TestGoFrontModuleFacts(t *testing.T) {
	byName := map[string]GoResult{}
	for _, dir := range moduleDirs(t) {
		r, err := AnalyzeGoModule(dir, nil, Options{})
		if err != nil {
			t.Fatal(err)
		}
		byName[filepath.Base(dir)] = r
		defer r.Release()
	}

	// Cross-package calls resolve: nothing in crosspkg degrades, and
	// the cross-package method call still reaches RMOD of the callee.
	if d := byName["crosspkg"].Pkg.Degraded(); len(d) > 0 {
		t.Errorf("crosspkg: unexpectedly degraded: %v", d)
	}

	// Closed-world dispatch devirtualizes (Area and Grow sites) and
	// leaves the module fully analyzed.
	if got := byName["ifaceclosed"].Pkg.Devirtualized; got < 2 {
		t.Errorf("ifaceclosed: Devirtualized = %d, want >= 2", got)
	}
	if d := byName["ifaceclosed"].Pkg.Degraded(); len(d) > 0 {
		t.Errorf("ifaceclosed: unexpectedly degraded: %v", d)
	}

	// Open dispatch degrades with its own distinct reason for both the
	// foreign interface and the implementation-free local one.
	open := byName["ifaceopen"].Pkg
	for _, proc := range []string{"sink.Drain", "sink.Notify"} {
		n := open.Note(proc)
		if n == nil || n.Confidence != gofront.Degraded {
			t.Fatalf("ifaceopen: %s not degraded", proc)
		}
		found := false
		for _, reason := range n.Reasons {
			if strings.Contains(reason, "open interface dispatch") {
				found = true
			}
		}
		if !found {
			t.Errorf("ifaceopen: %s reasons %v lack open-interface reason", proc, n.Reasons)
		}
	}
	if open.Devirtualized != 0 {
		t.Errorf("ifaceopen: Devirtualized = %d, want 0", open.Devirtualized)
	}

	// Field sensitivity: Widen mods its ref formal, Area does not, and
	// the cross-package field write lands on the state global.
	fields := byName["fields"].Analysis
	rmod := func(proc, formal string) bool {
		t.Helper()
		for _, p := range fields.Prog.Procs {
			if p.Name != proc {
				continue
			}
			for _, fm := range p.Formals {
				if fm.Name == formal {
					return fields.Mod.RMOD.Of(fm)
				}
			}
			t.Fatalf("%s: no formal %q", proc, formal)
		}
		t.Fatalf("no procedure %q", proc)
		return false
	}
	if !rmod("app.Widen", "b") {
		t.Error("fields: RMOD(app.Widen.b) = false, want true")
	}
	if rmod("app.Area", "b") {
		t.Error("fields: RMOD(app.Area.b) = true, want false")
	}
	if d := byName["fields"].Pkg.Degraded(); len(d) > 0 {
		t.Errorf("fields: unexpectedly degraded: %v", d)
	}
}

// TestGoFrontCorpusFacts spot-checks load-bearing facts the goldens
// alone would not explain: the corpus must actually demonstrate the
// behaviours its packages are named for.
func TestGoFrontCorpusFacts(t *testing.T) {
	results, err := AnalyzeGoPackages(corpusDirs(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]GoResult{}
	for _, r := range results {
		byPath[filepath.Base(r.Pkg.Path)] = r
		defer r.Release()
	}

	// rmod reports whether proc's formal named f is in RMOD.
	rmod := func(t *testing.T, r GoResult, proc, formal string) bool {
		t.Helper()
		for _, p := range r.Analysis.Prog.Procs {
			if p.Name != proc {
				continue
			}
			for _, fm := range p.Formals {
				if fm.Name == formal {
					return r.Analysis.Mod.RMOD.Of(fm)
				}
			}
			t.Fatalf("%s: no formal %q", proc, formal)
		}
		t.Fatalf("no procedure %q", proc)
		return false
	}

	cases := []struct {
		pkg, proc, formal string
		want              bool
	}{
		{"ptrwrite", "Set", "p", true},
		{"ptrwrite", "Peek", "p", false},
		{"slicewrite", "Fill", "s", true},
		{"slicewrite", "First", "s", false},
		{"slicewrite", "Rebind", "s", false},
		{"mapwrite", "Put", "m", true},
		{"mapwrite", "Get", "m", false},
		{"appendinplace", "Grow", "s", true},
		{"appendinplace", "Appended", "s", false},
		{"closures", "FillVia", "s", true},
		{"methods", "Counter.Inc", "c", true},
		{"methods", "Counter.Get", "c", false},
		{"methods", "Touch", "w", true},
		{"methodvalues", "Bound", "g", true},
		{"methodvalues", "Observer", "g", false},
		{"structfields", "MovePoint", "p", true},
		{"structfields", "Widen", "b", true},
		{"structfields", "Area", "b", false},
	}
	for _, c := range cases {
		r, ok := byPath[c.pkg]
		if !ok {
			t.Fatalf("missing corpus package %q", c.pkg)
		}
		if got := rmod(t, r, c.proc, c.formal); got != c.want {
			t.Errorf("%s: RMOD(%s.%s) = %v, want %v", c.pkg, c.proc, c.formal, got, c.want)
		}
	}

	// Degraded confidence appears exactly where unanalyzed code is
	// called, and nowhere in the self-contained packages.
	if d := byPath["unknowncalls"].Pkg.Degraded(); len(d) == 0 {
		t.Error("unknowncalls: no degraded procedures, want Log degraded")
	}
	for _, pkg := range []string{"pure", "ptrwrite", "slicewrite", "mapwrite", "globals"} {
		if d := byPath[pkg].Pkg.Degraded(); len(d) > 0 {
			t.Errorf("%s: unexpectedly degraded: %v", pkg, d)
		}
	}
}
