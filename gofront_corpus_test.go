package sideeffect

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sideeffect/internal/lint"
)

// update regenerates every file-based golden in place of comparing.
// Run `go test -run Golden -update ./...` after a deliberate
// behaviour or formatting change, then review the diff.
var update = flag.Bool("update", false, "rewrite golden files instead of comparing")

// checkGolden compares got against the golden file at path, or
// rewrites the file under -update. Differences report the first
// drifting line so updates are easy to review.
func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	wantB, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update to create): %v", err)
	}
	want := string(wantB)
	if got == want {
		return
	}
	t.Errorf("output drifted from %s (rerun with -update if intended)", path)
	gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(gl) && i < len(wl); i++ {
		if gl[i] != wl[i] {
			t.Logf("first diff at line %d:\n got: %q\nwant: %q", i+1, gl[i], wl[i])
			return
		}
	}
	t.Logf("outputs diverge in length: got %d lines, want %d", len(gl), len(wl))
}

// corpusDirs lists the fixture packages under testdata/gofront in
// name order, skipping the golden directory itself.
func corpusDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "gofront"))
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() && e.Name() != "golden" {
			dirs = append(dirs, filepath.Join("testdata", "gofront", e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) < 12 {
		t.Fatalf("fixture corpus has %d packages, want >= 12", len(dirs))
	}
	return dirs
}

// TestGoFrontCorpusGolden pins the full analysis report (with the
// lowering-confidence table) and the modlint output in all three
// formats for every fixture package. Any change to the frontend's
// lowering decisions, the solver, the lint rules, or the writers
// shows up as a diff here.
func TestGoFrontCorpusGolden(t *testing.T) {
	for _, dir := range corpusDirs(t) {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			results, err := AnalyzeGoPackages([]string{dir}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 1 {
				t.Fatalf("got %d packages for %s, want 1", len(results), dir)
			}
			r := results[0]
			defer r.Release()

			golden := func(ext string) string {
				return filepath.Join("testdata", "gofront", "golden", name+"."+ext)
			}
			checkGolden(t, golden("report.txt"), r.GoReport())

			rep, err := r.Analysis.Lint(lint.Config{})
			if err != nil {
				t.Fatal(err)
			}
			files := []lint.FileReport{{File: r.Pkg.Path, Report: rep}}
			checkGolden(t, golden("lint.txt"), lint.Text(files))
			jsonOut, err := lint.JSON(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.json"), jsonOut)
			sarifOut, err := lint.SARIF(files)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, golden("lint.sarif"), sarifOut)
		})
	}
}

// TestGoFrontCorpusFacts spot-checks load-bearing facts the goldens
// alone would not explain: the corpus must actually demonstrate the
// behaviours its packages are named for.
func TestGoFrontCorpusFacts(t *testing.T) {
	results, err := AnalyzeGoPackages(corpusDirs(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]GoResult{}
	for _, r := range results {
		byPath[filepath.Base(r.Pkg.Path)] = r
		defer r.Release()
	}

	// rmod reports whether proc's formal named f is in RMOD.
	rmod := func(t *testing.T, r GoResult, proc, formal string) bool {
		t.Helper()
		for _, p := range r.Analysis.Prog.Procs {
			if p.Name != proc {
				continue
			}
			for _, fm := range p.Formals {
				if fm.Name == formal {
					return r.Analysis.Mod.RMOD.Of(fm)
				}
			}
			t.Fatalf("%s: no formal %q", proc, formal)
		}
		t.Fatalf("no procedure %q", proc)
		return false
	}

	cases := []struct {
		pkg, proc, formal string
		want              bool
	}{
		{"ptrwrite", "Set", "p", true},
		{"ptrwrite", "Peek", "p", false},
		{"slicewrite", "Fill", "s", true},
		{"slicewrite", "First", "s", false},
		{"slicewrite", "Rebind", "s", false},
		{"mapwrite", "Put", "m", true},
		{"mapwrite", "Get", "m", false},
		{"appendinplace", "Grow", "s", true},
		{"appendinplace", "Appended", "s", false},
		{"closures", "FillVia", "s", true},
		{"methods", "Counter.Inc", "c", true},
		{"methods", "Counter.Get", "c", false},
		{"methods", "Touch", "w", true},
		{"methodvalues", "Bound", "g", true},
		{"methodvalues", "Observer", "g", false},
		{"structfields", "MovePoint", "p", true},
		{"structfields", "Widen", "b", true},
		{"structfields", "Area", "b", false},
	}
	for _, c := range cases {
		r, ok := byPath[c.pkg]
		if !ok {
			t.Fatalf("missing corpus package %q", c.pkg)
		}
		if got := rmod(t, r, c.proc, c.formal); got != c.want {
			t.Errorf("%s: RMOD(%s.%s) = %v, want %v", c.pkg, c.proc, c.formal, got, c.want)
		}
	}

	// Degraded confidence appears exactly where unanalyzed code is
	// called, and nowhere in the self-contained packages.
	if d := byPath["unknowncalls"].Pkg.Degraded(); len(d) == 0 {
		t.Error("unknowncalls: no degraded procedures, want Log degraded")
	}
	for _, pkg := range []string{"pure", "ptrwrite", "slicewrite", "mapwrite", "globals"} {
		if d := byPath[pkg].Pkg.Degraded(); len(d) > 0 {
			t.Errorf("%s: unexpectedly degraded: %v", pkg, d)
		}
	}
}
