package sideeffect

import (
	"fmt"
	"strings"
	"testing"

	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/report"
	"sideeffect/internal/workload"
)

// TestCondensedPerNodeIdentical is the differential gate of the
// SCC-condensed solver: over the full differential corpus, under every
// allocation policy, sequentially and with a 4-worker schedule, the
// condensed storage layer and the per-node Figure-2 search must render
// byte-identical reports and bit-identical per-call-site sets.
func TestCondensedPerNodeIdentical(t *testing.T) {
	policies := []core.AllocPolicy{core.AllocAuto, core.AllocHybrid, core.AllocDense}
	schedules := []Options{{Sequential: true}, {Workers: 4}}
	for _, cfg := range differentialConfigs() {
		src := workload.Emit(workload.Random(cfg))
		for _, pol := range policies {
			for _, sched := range schedules {
				tag := fmt.Sprintf("size=%d seed=%d depth=%d alloc=%d workers=%d",
					cfg.Procs, cfg.Seed, cfg.MaxDepth, pol, sched.Workers)
				con := sched
				con.Alloc = pol
				base := con
				base.DisableCondensation = true
				ca, err := AnalyzeWith(src, con)
				if err != nil {
					t.Fatalf("%s: condensed: %v", tag, err)
				}
				ba, err := AnalyzeWith(src, base)
				if err != nil {
					t.Fatalf("%s: baseline: %v", tag, err)
				}
				if c, b := ca.Report(), ba.Report(); c != b {
					t.Fatalf("%s: reports differ:\n--- condensed\n%s\n--- per-node\n%s", tag, c, b)
				}
				cj, err := report.JSON(ca.Mod, ca.Use, ca.Aliases, ca.SecMod)
				if err != nil {
					t.Fatalf("%s: json: %v", tag, err)
				}
				bj, err := report.JSON(ba.Mod, ba.Use, ba.Aliases, ba.SecMod)
				if err != nil {
					t.Fatalf("%s: json: %v", tag, err)
				}
				if cj != bj {
					t.Fatalf("%s: JSON reports differ", tag)
				}
				for _, p := range ca.Prog.Procs {
					if !ca.Mod.GMOD[p.ID].Equal(ba.Mod.GMOD[p.ID]) || !ca.Use.GMOD[p.ID].Equal(ba.Use.GMOD[p.ID]) {
						t.Fatalf("%s: GMOD/GUSE(%s) differ between solvers", tag, p.Name)
					}
				}
				for i := range ca.ModSets {
					if !ca.ModSets[i].Equal(ba.ModSets[i]) || !ca.UseSets[i].Equal(ba.UseSets[i]) {
						t.Fatalf("%s: call site %d sets differ between solvers", tag, i)
					}
				}
			}
		}
	}
}

// TestCondensedSCCInvariant checks the storage layer's licence
// (Theorem 1) on the solved results: every member of a
// strongly-connected component must report the same escaping set
// GMOD(u) ∖ LOCAL(u), since the condensed solver stores exactly one
// such row per component.
func TestCondensedSCCInvariant(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		cfg := workload.DefaultConfig(40, 500+seed)
		cfg.CycleFraction = 0.6 // bias toward non-trivial components
		prog := workload.Random(cfg)
		st := core.BuildStructure(prog)
		scc := st.CG.G.SCC()
		for _, kind := range []core.Kind{core.Mod, core.Use} {
			r := core.Analyze(prog, kind, core.Options{Structure: st})
			esc := make([]*bitset.Set, prog.NumProcs())
			for _, p := range prog.Procs {
				e := bitset.New(prog.NumVars())
				e.UnionDiffWith(r.GMOD[p.ID], r.Facts.Local[p.ID])
				esc[p.ID] = e
			}
			for c, members := range scc.Members {
				if len(members) < 2 {
					continue
				}
				first := members[0]
				for _, u := range members[1:] {
					if !esc[u].Equal(esc[first]) {
						t.Fatalf("seed=%d kind=%v: SCC %d members %s and %s disagree:\n %v\n %v",
							seed, kind, c, prog.Procs[first].Name, prog.Procs[u].Name, esc[first], esc[u])
					}
				}
			}
		}
	}
}

// TestAnalyzeCondensedMatchesAnalyze checks the giant-graph entry
// point row for row against the materializing pipeline: GMOD rows,
// sizes, and DMOD rows reconstructed from the condensed store must be
// bit-identical, on flat and nested programs of both kinds.
func TestAnalyzeCondensedMatchesAnalyze(t *testing.T) {
	cfgs := []workload.Config{
		workload.DefaultConfig(60, 7),
		workload.DefaultConfig(300, 8),
	}
	for seed := int64(0); seed < 5; seed++ {
		cfg := workload.DefaultConfig(30, 200+seed)
		cfg.MaxDepth = 3
		cfg.NestFraction = 0.4
		cfgs = append(cfgs, cfg)
	}
	for _, cfg := range cfgs {
		prog := workload.Random(cfg)
		for _, kind := range []core.Kind{core.Mod, core.Use} {
			tag := fmt.Sprintf("size=%d seed=%d depth=%d kind=%v", cfg.Procs, cfg.Seed, cfg.MaxDepth, kind)
			r := core.Analyze(prog, kind, core.Options{})
			cr := core.AnalyzeCondensed(prog, kind, core.Options{})
			sc := bitset.New(prog.NumVars())
			for _, p := range prog.Procs {
				sc.Clear()
				if !cr.GMODInto(p.ID, sc).Equal(r.GMOD[p.ID]) {
					t.Fatalf("%s: GMOD(%s) differs:\n condensed %v\n full      %v", tag, p.Name, sc, r.GMOD[p.ID])
				}
				if got, want := cr.GMODSize(p.ID), r.GMOD[p.ID].Len(); got != want {
					t.Fatalf("%s: GMODSize(%s) = %d, want %d", tag, p.Name, got, want)
				}
			}
			for _, cs := range prog.Sites {
				sc.Clear()
				if !cr.DMODInto(cs.ID, sc).Equal(r.DMOD[cs.ID]) {
					t.Fatalf("%s: DMOD(site %d) differs:\n condensed %v\n full      %v", tag, cs.ID, sc, r.DMOD[cs.ID])
				}
			}
			// The condensed path must do no more bit-vector work than
			// Theorem 2 allows the per-node search.
			for lvl, s := range cr.GMODStats {
				if s.Visits != prog.NumProcs() {
					t.Fatalf("%s: level %d visited %d of %d procedures", tag, lvl, s.Visits, prog.NumProcs())
				}
				if s.EdgeUnions > prog.NumSites() {
					t.Fatalf("%s: level %d edge unions %d exceed %d call sites", tag, lvl, s.EdgeUnions, prog.NumSites())
				}
			}
		}
	}
}

// TestWriteJSONMatchesRender pins the streaming JSON writer to the
// monolithic encoder byte for byte, including the envelope edge cases
// (empty vs absent arrays, stages present and absent).
func TestWriteJSONMatchesRender(t *testing.T) {
	progs := []string{
		workload.Emit(workload.PaperExample()),
		workload.Emit(workload.Random(workload.DefaultConfig(25, 4))),
	}
	for i, src := range progs {
		for _, profile := range []bool{false, true} {
			a, err := AnalyzeWith(src, Options{Sequential: true, Profile: profile})
			if err != nil {
				t.Fatalf("prog %d: %v", i, err)
			}
			jr := report.BuildJSON(a.Mod, a.Use, a.Aliases, a.SecMod)
			if profile && a.Stages != nil {
				jr.Stages = a.Stages.Snapshot()
			}
			want, err := jr.Render()
			if err != nil {
				t.Fatalf("prog %d: render: %v", i, err)
			}
			var b strings.Builder
			if err := report.WriteJSON(&b, jr); err != nil {
				t.Fatalf("prog %d: write: %v", i, err)
			}
			if b.String() != want {
				t.Fatalf("prog %d profile=%v: WriteJSON differs from Render:\n--- stream\n%s\n--- render\n%s",
					i, profile, b.String(), want)
			}
		}
	}
	// Envelope edge cases without a full analysis.
	for _, jr := range []*report.JSONReport{
		{Program: "empty"},
		{Program: "empty-nonnil", Procedures: []report.JSONProcedure{}, CallSites: []report.JSONCallSite{}},
	} {
		want, err := jr.Render()
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		if err := report.WriteJSON(&b, jr); err != nil {
			t.Fatal(err)
		}
		if b.String() != want {
			t.Fatalf("%s: WriteJSON differs from Render:\n--- stream\n%q\n--- render\n%q", jr.Program, b.String(), want)
		}
	}
}

// TestEmitToMatchesEmit pins the streaming source emitter to the
// string emitter byte for byte across flat, nested, and structured
// workloads.
func TestEmitToMatchesEmit(t *testing.T) {
	nest := workload.DefaultConfig(25, 12)
	nest.MaxDepth = 3
	nest.NestFraction = 0.4
	progs := map[string]*ir.Program{
		"paper":  workload.PaperExample(),
		"tower":  workload.NestedTower(4),
		"flat":   workload.Random(workload.DefaultConfig(40, 11)),
		"nested": workload.Random(nest),
	}
	for name, prog := range progs {
		want := workload.Emit(prog)
		var b strings.Builder
		if err := workload.EmitTo(&b, prog); err != nil {
			t.Fatalf("%s: EmitTo: %v", name, err)
		}
		if b.String() != want {
			t.Fatalf("%s: EmitTo differs from Emit", name)
		}
	}
}
