package sideeffect

import (
	"runtime"
	"testing"
)

// The satellite regression for Options normalization: workers() is the
// single place scheduling options become a concrete pool size, and no
// negative or zero value may escape it.
func TestOptionsWorkersClamp(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		opts Options
		want int
	}{
		{Options{}, maxprocs},
		{Options{Workers: 0}, maxprocs},
		{Options{Workers: -1}, maxprocs},
		{Options{Workers: -1 << 20}, maxprocs},
		{Options{Workers: 3}, 3},
		{Options{Sequential: true}, 1},
		{Options{Sequential: true, Workers: -7}, 1},
		{Options{Sequential: true, Workers: 8}, 1},
	}
	for _, tc := range cases {
		if got := tc.opts.workers(); got != tc.want {
			t.Errorf("%+v.workers() = %d, want %d", tc.opts, got, tc.want)
		}
		if got := tc.opts.workers(); got < 1 {
			t.Errorf("%+v.workers() = %d: non-positive value escaped normalization", tc.opts, got)
		}
	}
}

// Negative worker counts must behave exactly like the default, all the
// way through the public entry points.
func TestNegativeWorkersAnalyze(t *testing.T) {
	want, err := Analyze(demoSrc)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AnalyzeWith(demoSrc, Options{Workers: -12})
	if err != nil {
		t.Fatal(err)
	}
	if got.Report() != want.Report() {
		t.Error("Workers: -12 changed the analysis report")
	}
	srcs := []string{demoSrc, demoSrc, "program bad;"}
	for i, r := range AnalyzeAll(srcs, Options{Workers: -3}) {
		if i < 2 {
			if r.Err != nil {
				t.Fatalf("entry %d: %v", i, r.Err)
			}
			if r.Analysis.Report() != want.Report() {
				t.Errorf("entry %d report differs under negative workers", i)
			}
		} else if r.Err == nil {
			t.Error("bad entry unexpectedly analyzed")
		}
	}
}
