package sideeffect

// One benchmark per experiment of EXPERIMENTS.md (E1–E10). Run with
//
//	go test -bench=. -benchmem
//
// The experiment harness (cmd/experiments) prints the analytic tables;
// these benches provide the wall-clock/allocation view under the Go
// benchmark methodology.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"sideeffect/internal/alias"
	"sideeffect/internal/baseline"
	"sideeffect/internal/binding"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lint"
	"sideeffect/internal/section"
	"sideeffect/internal/workload"
)

var benchSizes = []int{64, 256, 1024, 4096}

// E1 — Figure 1: RMOD on the binding multi-graph.
func BenchmarkRMOD(b *testing.B) {
	for _, n := range benchSizes {
		prog := workload.Random(workload.DefaultConfig(n, int64(n)))
		facts := core.ComputeFacts(prog, core.Mod)
		beta := binding.Build(prog)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SolveRMOD(beta, facts)
			}
		})
	}
}

// E2 — Figure 2: findgmod with globals growing linearly in N.
func BenchmarkFindGMOD(b *testing.B) {
	for _, n := range benchSizes {
		prog := workload.Random(workload.DefaultConfig(n, int64(n)))
		facts := core.ComputeFacts(prog, core.Mod)
		beta := binding.Build(prog)
		rmod := core.SolveRMOD(beta, facts)
		imodPlus := core.ComputeIMODPlus(facts, rmod)
		cg := callgraph.Build(prog)
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.FindGMOD(cg.G, imodPlus, facts.Local, prog.Main.ID)
			}
		})
	}
}

// E3 — Figure 3: the regular-section meet operation.
func BenchmarkSectionMeet(b *testing.B) {
	bld := ir.NewBuilder("m")
	i := bld.Global("I")
	j := bld.Global("J")
	k := bld.Global("K")
	a1 := section.NewRSD(section.SymAtom(i), section.SymAtom(j))
	a2 := section.NewRSD(section.SymAtom(k), section.SymAtom(j))
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		section.Meet(a1, a2)
	}
}

// E4 — RMOD head-to-head: Figure 1 vs swift-style iterative vs
// Banning on the chain family (the iterative worst case).
func BenchmarkRMODVersus(b *testing.B) {
	for _, n := range []int{256, 2048} {
		chain := workload.Chain(n)
		random := workload.Random(workload.DefaultConfig(n, int64(n)))
		for _, w := range []struct {
			tag  string
			prog *ir.Program
		}{{"chain", chain}, {"random", random}} {
			facts := core.ComputeFacts(w.prog, core.Mod)
			beta := binding.Build(w.prog)
			b.Run(fmt.Sprintf("%s/N=%d/fig1", w.tag, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					core.SolveRMOD(beta, facts)
				}
			})
			b.Run(fmt.Sprintf("%s/N=%d/swift", w.tag, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseline.SwiftDecomposed(w.prog, facts)
				}
			})
			b.Run(fmt.Sprintf("%s/N=%d/banning", w.tag, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					baseline.BanningIterative(w.prog, facts)
				}
			})
		}
	}
}

// E5 — multi-level nesting: one findgmod family per nesting depth.
func BenchmarkMultiLevel(b *testing.B) {
	for _, d := range []int{0, 2, 4, 8} {
		cfg := workload.DefaultConfig(600, int64(77+d))
		cfg.MaxDepth = d
		if d > 0 {
			cfg.NestFraction = 0.7
		}
		prog := workload.Random(cfg).Prune()
		facts := core.ComputeFacts(prog, core.Mod)
		beta := binding.Build(prog)
		rmod := core.SolveRMOD(beta, facts)
		imodPlus := core.ComputeIMODPlus(facts, rmod)
		cg := callgraph.Build(prog)
		b.Run(fmt.Sprintf("dP=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SolveGMODMultiLevel(cg, facts, imodPlus)
			}
		})
	}
}

// E6 — β construction is a single linear scan of the call sites.
func BenchmarkBetaConstruction(b *testing.B) {
	for _, mu := range []float64{2, 8} {
		cfg := workload.DefaultConfig(1000, int64(mu))
		cfg.AvgFormals = mu
		prog := workload.Random(cfg)
		b.Run(fmt.Sprintf("muF=%v", mu), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				binding.Build(prog)
			}
		})
	}
}

// E7 — Section 5: alias pairs and MOD factoring.
func BenchmarkComputeMOD(b *testing.B) {
	for _, n := range []int{256, 1024} {
		prog := workload.Random(workload.DefaultConfig(n, int64(n+5)))
		res := core.Analyze(prog, core.Mod, core.Options{})
		b.Run(fmt.Sprintf("N=%d/aliases", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				alias.Compute(prog)
			}
		})
		an := alias.Compute(prog)
		b.Run(fmt.Sprintf("N=%d/factor", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an.Factor(res.DMOD)
			}
		})
	}
}

// E8 — Section 6: regular section analysis on the divide-and-conquer
// family and on random array-heavy programs.
func BenchmarkSections(b *testing.B) {
	divide := workload.DivideConquer()
	divideRes := core.Analyze(divide, core.Mod, core.Options{})
	b.Run("divide", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			section.Analyze(divideRes, core.Mod)
		}
	})
	cfg := workload.DefaultConfig(512, 9)
	cfg.ArrayFormalFraction = 0.5
	cfg.GlobalArrays = 16
	prog := workload.Random(cfg)
	res := core.Analyze(prog, core.Mod, core.Options{})
	b.Run("random-arrays", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			section.Analyze(res, core.Mod)
		}
	})
}

// E9 — full pipeline end to end, from IR to per-call-site MOD sets.
func BenchmarkEndToEnd(b *testing.B) {
	for _, n := range benchSizes {
		prog := workload.Random(workload.DefaultConfig(n, int64(3*n)))
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				AnalyzeProgram(prog)
			}
		})
	}
}

// E10 — the parallelization decision per call site.
func BenchmarkParallelizeDecision(b *testing.B) {
	a, err := Analyze(`
program par;
global A[100, 100], n, i;
proc colop(ref c[*], val m)
  var r;
begin
  for r := 1 to m do c[r] := c[r] + 1 end
end;
begin
  for i := 1 to n do call colop(A[*, i], n) end
end.
`)
	if err != nil {
		b.Fatal(err)
	}
	cs := a.Prog.Sites[0]
	loopVar := a.Prog.Var("i")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		at := a.SecMod.AtCallWithin(cs, loopVar)
		for _, rsd := range at {
			section.DisjointAcrossIterations(rsd, rsd, loopVar)
		}
	}
}

// BenchmarkParseAnalyze measures the front end plus analysis on
// emitted synthetic source — the "compiler integration" cost.
func BenchmarkParseAnalyze(b *testing.B) {
	src := workload.Emit(workload.Random(workload.DefaultConfig(200, 4)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(src); err != nil {
			b.Fatal(err)
		}
	}
}

// E5 ablation — the sparse multi-level variant restricts each level's
// problem to the subgraph that can carry its variables.
func BenchmarkMultiLevelSparse(b *testing.B) {
	for _, d := range []int{2, 4, 8} {
		cfg := workload.DefaultConfig(600, int64(77+d))
		cfg.MaxDepth = d
		cfg.NestFraction = 0.7
		prog := workload.Random(cfg).Prune()
		facts := core.ComputeFacts(prog, core.Mod)
		beta := binding.Build(prog)
		rmod := core.SolveRMOD(beta, facts)
		imodPlus := core.ComputeIMODPlus(facts, rmod)
		cg := callgraph.Build(prog)
		b.Run(fmt.Sprintf("dP=%d", d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.SolveGMODMultiLevelSparse(cg, facts, imodPlus)
			}
		})
	}
}

// benchBatchRecord mirrors the row shape cmd/experiments/exp_batch.go
// writes, so both producers feed the same BENCH_batch.json.
type benchBatchRecord struct {
	Name       string  `json:"name"`
	Cores      int     `json:"cores"`
	Workers    int     `json:"workers"`
	Programs   int     `json:"programs"`
	ProcsEach  int     `json:"procs_each"`
	SeqNsPerOp int64   `json:"seq_ns_per_op"`
	ParNsPerOp int64   `json:"par_ns_per_op"`
	Speedup    float64 `json:"speedup"`
}

// benchSchedule runs f as a named sub-benchmark and returns the
// measured ns/op, so a top-level benchmark can compare two schedules.
func benchSchedule(b *testing.B, name string, f func()) int64 {
	var ns int64
	b.Run(name, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f()
		}
		if b.N > 0 {
			ns = b.Elapsed().Nanoseconds() / int64(b.N)
		}
	})
	return ns
}

// mergeBenchBatch folds one record into BENCH_batch.json next to the
// rows written by `experiments -run E13`, replacing any previous row
// with the same name. Benchmarks only run under -bench, so plain
// `go test` never touches the file.
func mergeBenchBatch(b *testing.B, rec benchBatchRecord) {
	b.Helper()
	var doc struct {
		Cores   int                `json:"cores"`
		NumCPU  int                `json:"num_cpu"`
		Records []benchBatchRecord `json:"records"`
	}
	if data, err := os.ReadFile("BENCH_batch.json"); err == nil {
		_ = json.Unmarshal(data, &doc)
	}
	doc.Cores = runtime.GOMAXPROCS(0)
	doc.NumCPU = runtime.NumCPU()
	kept := doc.Records[:0]
	for _, r := range doc.Records {
		if r.Name != rec.Name {
			kept = append(kept, r)
		}
	}
	doc.Records = append(kept, rec)
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		b.Fatalf("marshal BENCH_batch.json: %v", err)
	}
	if err := os.WriteFile("BENCH_batch.json", append(out, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_batch.json: %v", err)
	}
}

// E13 — batch throughput: a corpus of programs through AnalyzeAll on
// the worker pool vs the fully sequential schedule. The speedup row is
// recorded in BENCH_batch.json together with the core count, since on
// a single core the two schedules are expected to tie.
func BenchmarkAnalyzeAll(b *testing.B) {
	const nProgs, procsEach = 12, 64
	srcs := make([]string, nProgs)
	for i := range srcs {
		srcs[i] = workload.Emit(workload.Random(workload.DefaultConfig(procsEach, int64(500+i))))
	}
	check := func(rs []BatchResult) {
		for _, r := range rs {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
	seq := benchSchedule(b, "seq", func() { check(AnalyzeAll(srcs, Options{Sequential: true})) })
	par := benchSchedule(b, "par", func() { check(AnalyzeAll(srcs, Options{})) })
	if seq > 0 && par > 0 {
		mergeBenchBatch(b, benchBatchRecord{
			Name: fmt.Sprintf("BenchmarkAnalyzeAll/N=%d", procsEach), Cores: runtime.GOMAXPROCS(0),
			Workers: runtime.GOMAXPROCS(0), Programs: nProgs, ProcsEach: procsEach,
			SeqNsPerOp: seq, ParNsPerOp: par, Speedup: float64(seq) / float64(par),
		})
	}
}

// E13 — stage-level parallelism inside a single Analyze: the
// {Mod, Use, Aliases} and {SecMod, SecUse, ModSets, UseSets} stage
// groups run concurrently vs strictly in order on one large program.
func BenchmarkAnalyzeParallelStages(b *testing.B) {
	const procs = 1024
	prog := workload.Random(workload.DefaultConfig(procs, 7)).Prune()
	seq := benchSchedule(b, "seq", func() { AnalyzeProgramWith(prog, Options{Sequential: true}) })
	par := benchSchedule(b, "par", func() { AnalyzeProgramWith(prog, Options{}) })
	if seq > 0 && par > 0 {
		mergeBenchBatch(b, benchBatchRecord{
			Name: fmt.Sprintf("BenchmarkAnalyzeParallelStages/N=%d", procs), Cores: runtime.GOMAXPROCS(0),
			Workers: runtime.GOMAXPROCS(0), Programs: 1, ProcsEach: procs,
			SeqNsPerOp: seq, ParNsPerOp: par, Speedup: float64(seq) / float64(par),
		})
	}
}

// E15 — the diagnostics engine over a finished analysis. The rules
// only re-read summary bit sets and precomputed loop verdicts; cost
// tracks the findings emitted, not the procedure count (the per-op
// times here divided by the finding counts E15 reports stay flat).
func BenchmarkLint(b *testing.B) {
	for _, n := range []int{64, 512} {
		src := workload.Emit(workload.Random(workload.DefaultConfig(n, int64(300+n))))
		a, err := AnalyzeWith(src, Options{Sequential: true})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := a.Lint(lint.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E12 — incremental maintenance vs full recomputation.
func BenchmarkIncremental(b *testing.B) {
	for _, n := range []int{256, 2048} {
		prog := workload.Random(workload.DefaultConfig(n, int64(n)))
		target := prog.Procs[prog.NumProcs()-1]
		g := prog.Globals()[0]
		b.Run(fmt.Sprintf("N=%d/full", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Analyze(prog, core.Mod, core.Options{})
			}
		})
		res := core.Analyze(prog, core.Mod, core.Options{})
		inc := core.NewIncremental(res)
		b.Run(fmt.Sprintf("N=%d/incremental", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := inc.AddLocalEffect(target, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
