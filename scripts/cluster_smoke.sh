#!/usr/bin/env bash
# Smoke-test the sharded cluster end to end with real processes: three
# shard daemons (one joining late via -join), a coordinator routing by
# content hash, and a standalone reference daemon. Routed answers must
# be byte-identical to direct ones, the async job tier must complete a
# submitted job, and killing a shard must not produce a single wrong
# or failed answer. CI runs this as the cluster-smoke job; it needs
# only curl and python3.
set -euo pipefail

cd "$(dirname "$0")/.."

COORD="127.0.0.1:7830"
S1="127.0.0.1:7831"
S2="127.0.0.1:7832"
S3="127.0.0.1:7833"
REF="127.0.0.1:7834"
BASE="http://$COORD"
LOG="$(mktemp -d)"
SRC='program smoke;
global g, h;

proc leaf(ref x)
begin
  x := h
end;

begin
  call leaf(g)
end.
'

fail() {
  echo "cluster_smoke: FAIL: $*" >&2
  for f in "$LOG"/*.log; do
    echo "--- $f" >&2
    tail -5 "$f" >&2 || true
  done
  exit 1
}

go build -o /tmp/modand ./cmd/modand

/tmp/modand -addr "$S1" -shard-id s1 >"$LOG/s1.log" 2>&1 &
PID_S1=$!
/tmp/modand -addr "$S2" -shard-id s2 >"$LOG/s2.log" 2>&1 &
PID_S2=$!
/tmp/modand -addr "$REF" >"$LOG/ref.log" 2>&1 &
PID_REF=$!
/tmp/modand -coordinator -addr "$COORD" -shards "s1=$S1,s2=$S2" >"$LOG/coord.log" 2>&1 &
PID_COORD=$!
# The third shard registers itself through POST /cluster/join.
/tmp/modand -addr "$S3" -shard-id s3 -join "$BASE" >"$LOG/s3.log" 2>&1 &
PID_S3=$!
trap 'kill "$PID_S1" "$PID_S2" "$PID_S3" "$PID_REF" "$PID_COORD" 2>/dev/null || true' EXIT

json() { python3 -c "import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {}, {'d': d}))" "$1"; }

# Wait for the full membership: three healthy shards.
for i in $(seq 1 100); do
  N="$(curl -fsS "$BASE/cluster/status" 2>/dev/null | json "d['healthyShards']" || echo 0)"
  [ "$N" = 3 ] && break
  [ "$i" = 100 ] && fail "coordinator never saw 3 healthy shards (got ${N:-0})"
  sleep 0.1
done

# Differential: every request is issued twice against the reference
# and twice against the cluster; cold must match cold and warm must
# match warm, byte for byte.
REQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read()}))" <<<"$SRC")"
QREQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read(), 'query': {'kind': 'gmod', 'proc': 'leaf'}}))" <<<"$SRC")"
LREQ="$REQ"
for name in analyze query lint; do
  case "$name" in
    analyze) path="/analyze"; body="$REQ" ;;
    query)   path="/analyze"; body="$QREQ" ;;
    lint)    path="/lint";    body="$LREQ" ;;
  esac
  for temp in cold warm; do
    curl -fsS -X POST -d "$body" "http://$REF$path" >"$LOG/want.$name.$temp" \
      || fail "direct $path ($temp) failed"
    curl -fsS -X POST -d "$body" "$BASE$path" >"$LOG/got.$name.$temp" \
      || fail "routed $path ($temp) failed"
    cmp -s "$LOG/want.$name.$temp" "$LOG/got.$name.$temp" \
      || fail "routed $path ($name, $temp) body differs from direct: $(diff "$LOG/want.$name.$temp" "$LOG/got.$name.$temp" | head -3)"
  done
done

# The async job tier: submit, poll to completion, no unit errors.
JREQ="$(python3 -c "import json,sys; s=sys.stdin.read(); print(json.dumps({'sources': [s, s + '\n', s + '\n\n']}))" <<<"$SRC")"
JOB="$(curl -fsS -X POST -d "$JREQ" "$BASE/jobs" | json "d['id']")"
[ -n "$JOB" ] || fail "job submit returned no id"
for i in $(seq 1 100); do
  DONE="$(curl -fsS "$BASE/jobs/$JOB?units=0" | json "int(d['complete']) * 10 + d['errors']")"
  [ "$DONE" = 10 ] && break
  [ "${DONE:-0}" -gt 10 ] && fail "job completed with errors"
  [ "$i" = 100 ] && fail "job never completed"
  sleep 0.1
done

# Failover: kill one shard and hammer the synchronous path; with
# retries and rerouting every request must still answer 200 with the
# correct (reference) body.
kill "$PID_S2"
for i in $(seq 1 20); do
  curl -fsS -X POST -d "$REQ" "$BASE/analyze" >"$LOG/failover.$i" \
    || fail "request $i failed after shard kill"
  cmp -s "$LOG/want.analyze.warm" "$LOG/failover.$i" \
    || cmp -s "$LOG/want.analyze.cold" "$LOG/failover.$i" \
    || fail "request $i returned a wrong body after shard kill"
done
for i in $(seq 1 100); do
  N="$(curl -fsS "$BASE/cluster/status" | json "d['healthyShards']")"
  [ "$N" = 2 ] && break
  [ "$i" = 100 ] && fail "health probes never noticed the dead shard"
  sleep 0.1
done

# Cluster metrics are exported.
curl -fsS "$BASE/metrics" | grep -q "modand_cluster_routed_total" \
  || fail "coordinator /metrics missing modand_cluster_routed_total"

# Graceful shutdown all around.
kill -TERM "$PID_COORD"; wait "$PID_COORD" || fail "coordinator exited non-zero on SIGTERM"
kill -TERM "$PID_S1" "$PID_S3" "$PID_REF"
wait "$PID_S1" "$PID_S3" "$PID_REF" || fail "a shard exited non-zero on SIGTERM"

echo "cluster_smoke: OK"
