#!/usr/bin/env bash
# Smoke-test watch mode and persistence end to end: build the daemon,
# point it at a directory tree with -watch and -state-dir, check the
# indexer pre-warms /analyze, edit the file and watch the index absorb
# it, SIGTERM the daemon and verify the checkpoint flush, then restart
# and demand the first query is served warm from the persisted store —
# byte-identical to the pre-restart answer. CI runs this as the index
# job; it needs only curl and python3.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:7831"
BASE="http://$ADDR"
LOG="$(mktemp)"
LOG2="$(mktemp)"
WATCH="$(mktemp -d)"
STATE="$(mktemp -d)"
SRC='program smoke;
global g, h;

proc leaf(ref x)
begin
  x := h
end;

begin
  call leaf(g)
end.
'

fail() {
  echo "index_smoke: FAIL: $*" >&2
  [ -s "$LOG" ] && sed 's/^/  daemon1: /' "$LOG" >&2
  [ -s "$LOG2" ] && sed 's/^/  daemon2: /' "$LOG2" >&2
  exit 1
}
cleanup() {
  kill "$DAEMON" 2>/dev/null || true
  rm -rf "$WATCH" "$STATE"
}

go build -o /tmp/modand ./cmd/modand

printf '%s\n' "$SRC" >"$WATCH/prog.mpl"

/tmp/modand -addr "$ADDR" -watch "$WATCH" -state-dir "$STATE" \
  -poll 25ms -debounce 50ms -checkpoint 1h >"$LOG" 2>&1 &
DAEMON=$!
trap cleanup EXIT

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && fail "daemon did not come up"
  sleep 0.1
done

json() { python3 -c "import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {}, {'d': d}))" "$1"; }

# The indexer analyzes the file on its first scan.
for i in $(seq 1 100); do
  N="$(curl -fsS "$BASE/index/status" | json "d['analyses']")"
  [ "${N:-0}" -ge 1 ] && break
  [ "$i" = 100 ] && fail "indexer never analyzed $WATCH/prog.mpl"
  sleep 0.1
done

# The first /analyze for the watched content is already a cache hit.
REQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read()}))" <<<"$SRC")"
BEFORE="$(mktemp)"
curl -fsS -X POST -d "$REQ" "$BASE/analyze" >"$BEFORE"
json "d['cached']" <"$BEFORE" | grep -q True \
  || fail "first /analyze of a watched file was not pre-warmed by the indexer"
WARM="$(curl -fsS "$BASE/metrics" | awk '$1 == "modand_warm_hits_total" {print $2}')"
[ "${WARM:-0}" -ge 1 ] || fail "modand_warm_hits_total = ${WARM:-missing}, want >= 1"

# An additive edit is absorbed incrementally by the watcher.
printf '%s\n' "${SRC/x := h/x := h; h := 2}" >"$WATCH/prog.mpl"
for i in $(seq 1 100); do
  N="$(curl -fsS "$BASE/index/status" | json "d['incrementalEdits']")"
  [ "${N:-0}" -ge 1 ] && break
  [ "$i" = 100 ] && fail "edit did not take the incremental path"
  sleep 0.1
done
curl -fsS "$BASE/index/files" | json "d[0]['mode']" | grep -q incremental \
  || fail "/index/files does not show the incremental edit"

# Put the original content back so the restart check below queries what
# is on disk, then flush via SIGTERM.
printf '%s\n' "$SRC" >"$WATCH/prog.mpl"
sleep 0.5
kill -TERM "$DAEMON"
wait "$DAEMON" || fail "daemon exited non-zero on SIGTERM"
grep -q "modand: checkpoint:" "$LOG" || fail "SIGTERM did not flush a checkpoint"
[ -f "$STATE/checkpoint.bin" ] || fail "no checkpoint file in $STATE"

# Restart over the same state: the very first query must be warm and
# byte-identical to the pre-restart answer.
/tmp/modand -addr "$ADDR" -watch "$WATCH" -state-dir "$STATE" \
  -poll 25ms -debounce 50ms -checkpoint 1h >"$LOG2" 2>&1 &
DAEMON=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && fail "restarted daemon did not come up"
  sleep 0.1
done
grep -q "modand: state: restored" "$LOG2" || fail "restart did not restore the checkpoint"

AFTER="$(mktemp)"
curl -fsS -X POST -d "$REQ" "$BASE/analyze" >"$AFTER"
json "d['cached']" <"$AFTER" | grep -q True \
  || fail "first query after restart was not served from the persisted store"
cmp -s "$BEFORE" "$AFTER" || fail "warm restart answer differs from the pre-restart answer"
WARM="$(curl -fsS "$BASE/metrics" | awk '$1 == "modand_warm_hits_total" {print $2}')"
[ "${WARM:-0}" -ge 1 ] || fail "restarted daemon: modand_warm_hits_total = ${WARM:-missing}, want >= 1"

# Deleting the file removes it from the index — no ghost results.
rm "$WATCH/prog.mpl"
for i in $(seq 1 100); do
  N="$(curl -fsS "$BASE/index/status" | json "d['files']")"
  [ "${N:-1}" = 0 ] && break
  [ "$i" = 100 ] && fail "deleted file still listed in the index"
  sleep 0.1
done

kill -TERM "$DAEMON"
wait "$DAEMON" || fail "restarted daemon exited non-zero on SIGTERM"
grep -q "bye" "$LOG2" || fail "restarted daemon did not log graceful shutdown"

echo "index_smoke: OK"
