#!/usr/bin/env bash
# Smoke-test whole-module Go analysis end to end: run the module
# self-analysis over internal/{core,bitset,arena} via modan, and fail
# if internal/core's degraded count regresses above the pinned bound.
# Single-package mode leaves core with 46 degraded functions; module
# mode must keep it at <= 10 (currently 8: irreducible stdlib calls,
# function values, and one open interface dispatch). CI runs this as
# part of the gofront-module job; it needs only python3.
set -euo pipefail

cd "$(dirname "$0")/.."

fail() { echo "gofront_module_smoke: FAIL: $*" >&2; exit 1; }

# Pinned bound for internal/core's module-mode degraded count. Raise
# only with a precision-regression justification in the PR.
CORE_BOUND=10

go build -o /tmp/modan ./cmd/modan

# The JSON degraded report over the module closure (on stdout).
out="$(/tmp/modan -lang=go -module -degraded=json \
  ./internal/core ./internal/bitset ./internal/arena 2>/dev/null)" ||
  fail "modan -module exited non-zero: $out"

core_count="$(python3 -c '
import json, sys
doc = json.load(sys.stdin)
count = sum(1 for pkg in doc["degraded"]
            for fn in pkg.get("functions", [])
            if fn.get("pkg") == "internal/core")
print(count)
' <<<"$out")" || fail "degraded output is not valid JSON: $out"

[ "$core_count" -gt 0 ] ||
  fail "internal/core degraded count is 0 — stdlib calls cannot all resolve; the reader is broken"
[ "$core_count" -le "$CORE_BOUND" ] ||
  fail "internal/core degraded count $core_count exceeds pinned bound $CORE_BOUND"

# The open-interface reason must be distinct from plain dynamic-call
# degradation (closed-world devirtualization's visible limit).
grep -q "open interface dispatch" <<<"$out" ||
  fail "no 'open interface dispatch' reason in module degraded output"

# -module and -degraded are go-frontend flags: MiniPL mode must reject
# them with a usage error (exit 2).
/tmp/modan -module testdata/lint/clean.mpl >/dev/null 2>&1 && code=0 || code=$?
[ "$code" = 2 ] || fail "-module without -lang=go exited $code, want 2"

echo "gofront_module_smoke: OK (internal/core degraded: $core_count <= $CORE_BOUND)"
