#!/usr/bin/env bash
# Smoke-test the analysis daemon end to end: build it, start it on an
# ephemeral port, drive every endpoint family with curl, check the
# cache-hit counter moves, and shut it down gracefully. CI runs this as
# the server-smoke job; it needs only curl and python3.
set -euo pipefail

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:7821"
BASE="http://$ADDR"
LOG="$(mktemp)"
SRC='program smoke;
global g, h;

proc leaf(ref x)
begin
  x := h
end;

begin
  call leaf(g)
end.
'

fail() { echo "server_smoke: FAIL: $*" >&2; [ -s "$LOG" ] && sed 's/^/  daemon: /' "$LOG" >&2; exit 1; }

go build -o /tmp/modand ./cmd/modand

/tmp/modand -addr "$ADDR" >"$LOG" 2>&1 &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  [ "$i" = 50 ] && fail "daemon did not come up"
  sleep 0.1
done

json() { python3 -c "import json,sys; d=json.load(sys.stdin); print(eval(sys.argv[1], {}, {'d': d}))" "$1"; }

# /analyze: first request computes, second is a cache hit.
REQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read()}))" <<<"$SRC")"
curl -fsS -X POST -d "$REQ" "$BASE/analyze" | json "d['cached']" | grep -q False \
  || fail "first /analyze claims to be cached"
curl -fsS -X POST -d "$REQ" "$BASE/analyze" | json "d['cached']" | grep -q True \
  || fail "second /analyze not served from cache"

# The hit is observable on the metrics endpoint.
HITS="$(curl -fsS "$BASE/metrics" | awk '$1 == "modand_cache_hits_total" {print $2}')"
[ "${HITS:-0}" -ge 1 ] || fail "modand_cache_hits_total = ${HITS:-missing}, want >= 1"

# CPU context gauges: benchmarks lean on these to tell real parallel
# speedup apart from oversubscribed scheduling, so the daemon must
# export them and they must be sane.
METRICS="$(curl -fsS "$BASE/metrics")"
NUM_CPU="$(awk '$1 == "modand_num_cpu" {print $2}' <<<"$METRICS")"
GOMAXPROCS="$(awk '$1 == "modand_gomaxprocs" {print $2}' <<<"$METRICS")"
[ "${NUM_CPU:-0}" -ge 1 ] || fail "modand_num_cpu = ${NUM_CPU:-missing}, want >= 1"
[ "${GOMAXPROCS:-0}" -ge 1 ] || fail "modand_gomaxprocs = ${GOMAXPROCS:-missing}, want >= 1"
if [ "$GOMAXPROCS" -gt "$NUM_CPU" ]; then
  echo "server_smoke: WARNING: oversubscribed (GOMAXPROCS=$GOMAXPROCS > num_cpu=$NUM_CPU);" \
    "throughput numbers from this host measure scheduling, not cores" >&2
fi

# A per-query answer.
QREQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read(), 'query': {'kind': 'gmod', 'proc': 'leaf'}}))" <<<"$SRC")"
curl -fsS -X POST -d "$QREQ" "$BASE/analyze" | json "d['names']" | grep -q "leaf.x" \
  || fail "GMOD(leaf) missing leaf.x"

# /batch over the same source twice: both entries share one hash.
BREQ="$(python3 -c "import json,sys; s=sys.stdin.read(); print(json.dumps({'sources': [s, s]}))" <<<"$SRC")"
curl -fsS -X POST -d "$BREQ" "$BASE/batch" | json "d['results'][0]['hash'] == d['results'][1]['hash']" | grep -q True \
  || fail "identical batch sources got different hashes"

# /session: open, apply an additive edit, check it rode the
# incremental engine, then close.
SID="$(curl -fsS -X POST -d "$REQ" "$BASE/session" | json "d['id']")"
[ -n "$SID" ] || fail "no session id"
EREQ="$(python3 -c "import json,sys; print(json.dumps({'source': sys.stdin.read().replace('x := h', 'x := h; h := 2')}))" <<<"$SRC")"
curl -fsS -X POST -d "$EREQ" "$BASE/session/$SID/edit" | json "d['mode']" | grep -q incremental \
  || fail "additive edit did not take the incremental path"
curl -fsS -X DELETE "$BASE/session/$SID" >/dev/null || fail "session delete failed"

# /lint: the source writes g through the call chain but nothing ever
# reads it, so SE005 fires; the per-rule counter shows on /metrics.
curl -fsS -X POST -d "$REQ" "$BASE/lint" | json "d['counts']['SE005']" | grep -q 1 \
  || fail "/lint did not report the dead call effect (SE005)"
LINTED="$(curl -fsS "$BASE/metrics" | awk -F' ' '$1 == "modand_lint_findings_total{rule=\"SE005\"}" {print $2}')"
[ "${LINTED:-0}" -ge 1 ] || fail "modand_lint_findings_total{rule=SE005} = ${LINTED:-missing}, want >= 1"

# Structured errors carry machine-readable codes.
curl -sS -o /dev/null -w '%{http_code}' -X POST -d '{"source": "program broken;"}' "$BASE/analyze" | grep -q 422 \
  || fail "syntax error did not return 422"

# Graceful shutdown.
kill -TERM "$DAEMON"
wait "$DAEMON" || fail "daemon exited non-zero on SIGTERM"
grep -q "bye" "$LOG" || fail "daemon did not log graceful shutdown"

echo "server_smoke: OK"
