#!/usr/bin/env bash
# Smoke-test giant-graph scalability: run experiment E20 in quick mode
# (N up to 4096) against the checked-in BENCH_scale.json baseline and
# fail on a >2x ns/proc regression at any common size. E20 itself
# verifies the condensed solver byte-for-byte against the per-node
# solver at every quick size, so this also gates correctness. The
# baseline is copied aside first because the run rewrites
# BENCH_scale.json, and the checked-in file is restored afterward so
# the working tree stays clean. CI runs this as the scale-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."

fail() { echo "scale_smoke: FAIL: $*" >&2; exit 1; }

[ -f BENCH_scale.json ] || fail "checked-in BENCH_scale.json baseline missing"

tmpdir="$(mktemp -d)"
cp BENCH_scale.json "$tmpdir/baseline.json"
restore() { cp "$tmpdir/baseline.json" BENCH_scale.json; rm -rf "$tmpdir"; }
trap restore EXIT

go run ./cmd/experiments -run E20 -quick -scale-baseline "$tmpdir/baseline.json" ||
	fail "E20 quick run failed (regression >2x ns/proc vs baseline, or condensed/per-node mismatch)"

echo "scale_smoke: PASS"
