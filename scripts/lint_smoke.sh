#!/usr/bin/env bash
# Smoke-test the modlint CLI end to end: build it, run it over the
# testdata/lint fixtures, and assert the documented contract — exit
# codes 0/1/2, golden-identical output in all three formats, valid
# SARIF 2.1.0 structure, and byte-identical repeated and parallel
# batch runs. CI runs this as the lint-smoke job; it needs only
# python3.
set -euo pipefail

cd "$(dirname "$0")/.."

fail() { echo "lint_smoke: FAIL: $*" >&2; exit 1; }

go build -o /tmp/modlint ./cmd/modlint

FIXTURES=(se001_refval se002_pure se003_alias se004_deadglobal se005_ignorable se006_loops)

# Exit code 0 on a clean program, with no output.
out="$(/tmp/modlint testdata/lint/clean.mpl)" && code=0 || code=$?
[ "$code" = 0 ] || fail "clean.mpl exited $code, want 0"
[ -z "$out" ] || fail "clean.mpl produced output: $out"

# Exit code 1 with the expected rule on each dirty fixture, and all
# three formats byte-identical to their goldens.
for base in "${FIXTURES[@]}"; do
  mpl="testdata/lint/$base.mpl"
  /tmp/modlint "$mpl" >/dev/null && fail "$base exited 0, want 1" || code=$?
  [ "$code" = 1 ] || fail "$base exited $code, want 1"
  for fmt in txt json sarif; do
    flag="$fmt"; [ "$fmt" = txt ] && flag=text
    /tmp/modlint -format "$flag" "$mpl" >"/tmp/lint_smoke.$fmt" || true
    cmp -s "/tmp/lint_smoke.$fmt" "testdata/lint/$base.golden.$fmt" \
      || fail "$base $fmt output drifted from golden"
  done
done

# Exit code 2 on a parse failure, with a diagnostic on stderr.
/tmp/modlint testdata/lint/broken.mpl >/dev/null 2>/tmp/lint_smoke.err && fail "broken.mpl exited 0" || code=$?
[ "$code" = 2 ] || fail "broken.mpl exited $code, want 2"
[ -s /tmp/lint_smoke.err ] || fail "broken.mpl produced no stderr"

# SARIF structural validity: schema fields, full rule metadata, and a
# physical location on every result.
/tmp/modlint -format sarif testdata/lint/se006_loops.mpl >/tmp/lint_smoke.sarif || true
python3 - /tmp/lint_smoke.sarif <<'EOF' || fail "SARIF validation failed"
import json, sys
d = json.load(open(sys.argv[1]))
assert d["version"] == "2.1.0", d["version"]
assert "sarif-2.1.0" in d["$schema"], d["$schema"]
run = d["runs"][0]
rules = run["tool"]["driver"]["rules"]
assert [r["id"] for r in rules] == ["SE001", "SE002", "SE003", "SE004", "SE005", "SE006", "SE007"], rules
for res in run["results"]:
    assert res["ruleId"] == rules[res["ruleIndex"]]["id"]
    region = res["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] >= 1 and region["startColumn"] >= 1
assert {r["ruleId"] for r in run["results"]} == {"SE006", "SE007"}
EOF

# Determinism: a multi-file batch renders byte-identically whether run
# sequentially or on a four-worker pool, repeatedly.
ALL=(testdata/lint/se00*.mpl testdata/lint/clean.mpl)
/tmp/modlint -format sarif -j 1 "${ALL[@]}" >/tmp/lint_smoke.batch1 || true
for rep in 1 2 3; do
  /tmp/modlint -format sarif -j 4 "${ALL[@]}" >/tmp/lint_smoke.batch2 || true
  cmp -s /tmp/lint_smoke.batch1 /tmp/lint_smoke.batch2 \
    || fail "parallel batch output differs from sequential (rep $rep)"
done

# -list names every rule.
/tmp/modlint -list | grep -q SE007 || fail "-list missing SE007"

# --- Go frontend (-lang=go) ---------------------------------------------
# The fixture corpus pins modlint's Go output with the same golden
# files the in-process test uses (testdata/gofront/golden, refreshed
# by `go test -run TestGoFrontCorpus -update .`).
GOPKGS=(pure aliashaz deadglobal loops unknowncalls)

for base in "${GOPKGS[@]}"; do
  dir="testdata/gofront/$base"
  for fmt in txt json sarif; do
    flag="$fmt"; [ "$fmt" = txt ] && flag=text
    /tmp/modlint -lang=go -format "$flag" "$dir" >"/tmp/lint_smoke_go.$fmt" 2>/dev/null || true
    cmp -s "/tmp/lint_smoke_go.$fmt" "testdata/gofront/golden/$base.lint.$fmt" \
      || fail "go $base $fmt output drifted from golden"
  done
done

# Degraded-confidence attribution lands on stderr, not in the report.
/tmp/modlint -lang=go testdata/gofront/unknowncalls >/dev/null 2>/tmp/lint_smoke_go.err || true
grep -q "degraded confidence" /tmp/lint_smoke_go.err \
  || fail "no degraded-confidence notice for unknowncalls"

# A bad language is a usage error.
/tmp/modlint -lang=cobol testdata/gofront/pure >/dev/null 2>&1 && fail "-lang=cobol accepted" || code=$?
[ "$code" = 2 ] || fail "-lang=cobol exited $code, want 2"

# Go batches render byte-identically sequentially and on a pool.
ALLGO=()
for base in "${GOPKGS[@]}"; do ALLGO+=("testdata/gofront/$base"); done
/tmp/modlint -lang=go -format sarif -j 1 "${ALLGO[@]}" >/tmp/lint_smoke_go.batch1 2>/dev/null || true
for rep in 1 2 3; do
  /tmp/modlint -lang=go -format sarif -j 4 "${ALLGO[@]}" >/tmp/lint_smoke_go.batch2 2>/dev/null || true
  cmp -s /tmp/lint_smoke_go.batch1 /tmp/lint_smoke_go.batch2 \
    || fail "go parallel batch output differs from sequential (rep $rep)"
done

echo "lint_smoke: OK"
