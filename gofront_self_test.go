package sideeffect

import (
	"path/filepath"
	"testing"

	"sideeffect/internal/ir"
)

// findFormal locates proc's formal named f in the analyzed program.
func findFormal(t *testing.T, r GoResult, proc, formal string) *ir.Variable {
	t.Helper()
	for _, p := range r.Analysis.Prog.Procs {
		if p.Name != proc {
			continue
		}
		for _, fm := range p.Formals {
			if fm.Name == formal {
				return fm
			}
		}
		t.Fatalf("%s: no formal %q", proc, formal)
	}
	t.Fatalf("no procedure %q in %s", proc, r.Pkg.Path)
	return nil
}

// TestGoFrontSelfAnalysis turns the frontend on the repository's own
// packages — the strongest available fixture, since these sources
// evolve with the codebase and exercise real idioms (receiver
// mutation, sparse/dense promotion, pooled arenas). The asserted
// facts are deliberately coarse and stable: mutators modify their
// receiver, accessors do not.
func TestGoFrontSelfAnalysis(t *testing.T) {
	results, err := AnalyzeGoPackages([]string{
		filepath.Join("internal", "bitset"),
		filepath.Join("internal", "arena"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byBase := map[string]GoResult{}
	for _, r := range results {
		byBase[filepath.Base(r.Pkg.Path)] = r
		defer r.Release()
	}
	bs, ok := byBase["bitset"]
	if !ok {
		t.Fatal("bitset package not analyzed")
	}
	ar, ok := byBase["arena"]
	if !ok {
		t.Fatal("arena package not analyzed")
	}
	if n := bs.Analysis.Prog.NumProcs(); n < 20 {
		t.Errorf("bitset lowered to %d procedures, want a few dozen", n)
	}
	if bs.Pkg.TypeErrors > 0 {
		t.Errorf("bitset type-checked with %d errors, want 0", bs.Pkg.TypeErrors)
	}

	// Mutators must put their receiver in RMOD; pure accessors must
	// not. A frontend regression in hop-write or call lowering flips
	// one of these.
	cases := []struct {
		r            GoResult
		proc, formal string
		want         bool
	}{
		{bs, "Set.Add", "s", true},
		{bs, "Set.Remove", "s", true},
		{bs, "Set.Clear", "s", true},
		{bs, "Set.Densify", "s", true},
		{bs, "Set.IsSparse", "s", false},
		{ar, "Arena.Reset", "a", true},
		{ar, "Arena.Poisoned", "a", false},
	}
	for _, c := range cases {
		fm := findFormal(t, c.r, c.proc, c.formal)
		if got := c.r.Analysis.Mod.RMOD.Of(fm); got != c.want {
			t.Errorf("%s: RMOD(%s.%s) = %v, want %v",
				c.r.Pkg.Path, c.proc, c.formal, got, c.want)
		}
	}

	// Cross-package calls (arena → bitset) are unanalyzed from arena's
	// point of view, so some arena procedures must be degraded — and
	// the degradation must be visible in the confidence report.
	if d := ar.Pkg.Degraded(); len(d) == 0 {
		t.Error("arena: no degraded procedures despite cross-package calls into bitset")
	}
	if rep := ar.Pkg.ConfidenceReport(); rep == "" {
		t.Error("arena: empty confidence report")
	}
}
