package sideeffect

import (
	"path/filepath"
	"strings"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
)

// findFormal locates proc's formal named f in the analyzed program.
func findFormal(t *testing.T, r GoResult, proc, formal string) *ir.Variable {
	t.Helper()
	for _, p := range r.Analysis.Prog.Procs {
		if p.Name != proc {
			continue
		}
		for _, fm := range p.Formals {
			if fm.Name == formal {
				return fm
			}
		}
		t.Fatalf("%s: no formal %q", proc, formal)
	}
	t.Fatalf("no procedure %q in %s", proc, r.Pkg.Path)
	return nil
}

// TestGoFrontSelfAnalysis turns the frontend on the repository's own
// packages — the strongest available fixture, since these sources
// evolve with the codebase and exercise real idioms (receiver
// mutation, sparse/dense promotion, pooled arenas). The asserted
// facts are deliberately coarse and stable: mutators modify their
// receiver, accessors do not.
func TestGoFrontSelfAnalysis(t *testing.T) {
	results, err := AnalyzeGoPackages([]string{
		filepath.Join("internal", "bitset"),
		filepath.Join("internal", "arena"),
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	byBase := map[string]GoResult{}
	for _, r := range results {
		byBase[filepath.Base(r.Pkg.Path)] = r
		defer r.Release()
	}
	bs, ok := byBase["bitset"]
	if !ok {
		t.Fatal("bitset package not analyzed")
	}
	ar, ok := byBase["arena"]
	if !ok {
		t.Fatal("arena package not analyzed")
	}
	if n := bs.Analysis.Prog.NumProcs(); n < 20 {
		t.Errorf("bitset lowered to %d procedures, want a few dozen", n)
	}
	if bs.Pkg.TypeErrors > 0 {
		t.Errorf("bitset type-checked with %d errors, want 0", bs.Pkg.TypeErrors)
	}

	// Mutators must put their receiver in RMOD; pure accessors must
	// not. A frontend regression in hop-write or call lowering flips
	// one of these.
	cases := []struct {
		r            GoResult
		proc, formal string
		want         bool
	}{
		{bs, "Set.Add", "s", true},
		{bs, "Set.Remove", "s", true},
		{bs, "Set.Clear", "s", true},
		{bs, "Set.Densify", "s", true},
		{bs, "Set.IsSparse", "s", false},
		{ar, "Arena.Reset", "a", true},
		{ar, "Arena.Poisoned", "a", false},
	}
	for _, c := range cases {
		fm := findFormal(t, c.r, c.proc, c.formal)
		if got := c.r.Analysis.Mod.RMOD.Of(fm); got != c.want {
			t.Errorf("%s: RMOD(%s.%s) = %v, want %v",
				c.r.Pkg.Path, c.proc, c.formal, got, c.want)
		}
	}

	// Cross-package calls (arena → bitset) are unanalyzed from arena's
	// point of view, so some arena procedures must be degraded — and
	// the degradation must be visible in the confidence report.
	if d := ar.Pkg.Degraded(); len(d) == 0 {
		t.Error("arena: no degraded procedures despite cross-package calls into bitset")
	}
	if rep := ar.Pkg.ConfidenceReport(); rep == "" {
		t.Error("arena: empty confidence report")
	}
}

// TestGoFrontModuleSelfAnalysis re-runs the self-analysis in
// whole-module mode: internal/core plus internal/bitset and
// internal/arena, with their module-local import closure, lowered as
// one shared program. Cross-package calls that degraded whole
// packages in single-package mode now resolve, so internal/core's
// degraded count collapses from 46 to a pinned low bound — and the
// report must be byte-identical across every schedule and allocation
// policy.
func TestGoFrontModuleSelfAnalysis(t *testing.T) {
	patterns := []string{
		filepath.Join("internal", "core"),
		filepath.Join("internal", "bitset"),
		filepath.Join("internal", "arena"),
	}
	base, err := AnalyzeGoModule(".", patterns, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Release()

	if !base.Pkg.Module {
		t.Fatal("result is not a whole-module lowering")
	}
	if base.Pkg.TypeErrors > 0 {
		t.Errorf("module type-checked with %d errors, want 0", base.Pkg.TypeErrors)
	}
	closure := map[string]bool{}
	for _, p := range base.Pkg.Packages {
		closure[p] = true
	}
	for _, want := range []string{"internal/core", "internal/bitset", "internal/arena", "internal/ir"} {
		if !closure[want] {
			t.Errorf("module closure %v missing %s", base.Pkg.Packages, want)
		}
	}

	// The headline precision win: internal/core had 46 degraded
	// procedures in single-package mode; with the module closure
	// resolved only the genuinely external effects (stdlib calls,
	// function values, one open interface) remain.
	byPkg := base.Pkg.DegradedByPackage()
	if got := byPkg["internal/core"]; got == 0 || got > 10 {
		t.Errorf("internal/core degraded count = %d, want 1..10 (was 46 single-package)", got)
	}
	// arena's calls into bitset now bind to real procedures; what
	// remains degraded there is only its sync.Pool function-value
	// plumbing ("dynamic call"), never a cross-package call.
	if got := byPkg["internal/arena"]; got > 4 {
		t.Errorf("internal/arena degraded count = %d, want <= 4", got)
	}
	for _, rec := range base.Pkg.DegradedRecords() {
		for _, reason := range rec.Reasons {
			if strings.Contains(reason, "cross-package") {
				t.Errorf("%s still degrades on a cross-package call: %v", rec.Proc, rec.Reasons)
			}
		}
	}

	// The coarse single-package facts must survive the module lowering
	// (procedure names gain their package-relative prefix).
	cases := []struct {
		proc, formal string
		want         bool
	}{
		{"internal/bitset.Set.Add", "s", true},
		{"internal/bitset.Set.IsSparse", "s", false},
		{"internal/arena.Arena.Reset", "a", true},
		{"internal/arena.Arena.Poisoned", "a", false},
	}
	for _, c := range cases {
		fm := findFormal(t, base, c.proc, c.formal)
		if got := base.Analysis.Mod.RMOD.Of(fm); got != c.want {
			t.Errorf("RMOD(%s.%s) = %v, want %v", c.proc, c.formal, got, c.want)
		}
	}

	// Determinism: the full report (summaries, sections, confidence
	// table) is byte-identical under the sequential pipeline, a
	// parallel schedule, and every allocation policy.
	want := base.GoReport()
	variants := []Options{
		{Sequential: true},
		{Workers: 4},
		{Alloc: core.AllocHybrid},
		{Alloc: core.AllocDense},
		{Sequential: true, Alloc: core.AllocDense},
	}
	for _, opts := range variants {
		r, err := AnalyzeGoModule(".", patterns, opts)
		if err != nil {
			t.Fatal(err)
		}
		got := r.GoReport()
		r.Release()
		if got != want {
			t.Errorf("report differs under %+v (len %d vs %d)", opts, len(got), len(want))
		}
	}
}
