package sideeffect

import (
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
)

// canonicalGoSummary renders the caller-visible facts of every named
// top-level function, independent of local naming, declaration order,
// and closure structure: purity (nothing outside the frame in GMOD),
// RMOD formal names, and global MOD/USE names, sorted by procedure
// name. Synthetic procedures ($main, closures like F$fn0) are folded
// out — their effects already flow into their hosts.
func canonicalGoSummary(r GoResult) string {
	a := r.Analysis
	var lines []string
	for _, p := range a.Prog.Procs {
		if p.IsMain || strings.Contains(p.Name, "$fn") {
			continue
		}
		var rmod []string
		for _, f := range p.Formals {
			if a.Mod.RMOD.Of(f) {
				rmod = append(rmod, f.Name)
			}
		}
		var gmod, guse []string
		collect := func(set interface{ ForEach(func(int)) }, out *[]string) {
			set.ForEach(func(id int) {
				v := a.Prog.Vars[id]
				if v.Kind == ir.Global {
					*out = append(*out, v.Name)
				}
			})
		}
		collect(a.Mod.GMOD[p.ID], &gmod)
		collect(a.Use.GMOD[p.ID], &guse)
		pure := true
		a.Mod.GMOD[p.ID].ForEach(func(id int) {
			v := a.Prog.Vars[id]
			if v.Owner != p || v.Kind == ir.FormalRef {
				pure = false
			}
		})
		sort.Strings(gmod)
		sort.Strings(guse)
		lines = append(lines, fmt.Sprintf("%s pure=%v rmod={%s} gmod={%s} guse={%s}",
			p.Name, pure, strings.Join(rmod, ","), strings.Join(gmod, ","), strings.Join(guse, ",")))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n") + "\n"
}

// goBase is the reference program for the metamorphic pairs: a global
// accumulator, a pointer write, a slice fill, and a pure helper.
const goBase = `package meta

var total int

func Bump(p *int, by int) {
	step := by
	*p += step
	total += step
}

func Fill(s []int, v int) {
	for i := range s {
		s[i] = v
	}
}

func Pure(a, b int) int {
	t := a + b
	return t * 2
}
`

// goRenamed is goBase with every local and formal-body temporary
// renamed — caller-visible facts cannot depend on local names.
// (Formal names are part of the public summary, so they stay.)
const goRenamed = `package meta

var total int

func Bump(p *int, by int) {
	delta := by
	*p += delta
	total += delta
}

func Fill(s []int, v int) {
	for idx := range s {
		s[idx] = v
	}
}

func Pure(a, b int) int {
	acc := a + b
	return acc * 2
}
`

// goReordered is goBase with the declarations permuted — lowering
// must not depend on source order.
const goReordered = `package meta

func Pure(a, b int) int {
	t := a + b
	return t * 2
}

func Fill(s []int, v int) {
	for i := range s {
		s[i] = v
	}
}

var total int

func Bump(p *int, by int) {
	step := by
	*p += step
	total += step
}
`

// goClosureWrapped is goBase with each body routed through an
// immediately-invoked or locally bound closure: effects must flow out
// of the literal into the host unchanged.
const goClosureWrapped = `package meta

var total int

func Bump(p *int, by int) {
	func() {
		step := by
		*p += step
		total += step
	}()
}

func Fill(s []int, v int) {
	set := func(i int) { s[i] = v }
	for i := range s {
		set(i)
	}
}

func Pure(a, b int) int {
	mk := func() int {
		t := a + b
		return t * 2
	}
	return mk()
}
`

// TestGoFrontMetamorphic checks that semantics-preserving source
// transforms leave the canonical summary byte-identical: renaming
// locals, reordering declarations, and wrapping bodies in closures
// are all invisible to callers.
func TestGoFrontMetamorphic(t *testing.T) {
	variants := []struct{ name, src string }{
		{"base", goBase},
		{"renamed-locals", goRenamed},
		{"reordered-decls", goReordered},
		{"closure-wrapped", goClosureWrapped},
	}
	var want string
	for _, v := range variants {
		r, err := AnalyzeGoSource("meta.go", v.src, Options{})
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		got := canonicalGoSummary(r)
		r.Release()
		if v.name == "base" {
			want = got
			// The base must actually demonstrate the interesting facts,
			// or the invariance below would be vacuous.
			for _, frag := range []string{
				"Bump pure=false rmod={p} gmod={total}",
				"Fill pure=false rmod={s}",
				"Pure pure=true rmod={}",
			} {
				if !strings.Contains(got, frag) {
					t.Fatalf("base summary missing %q:\n%s", frag, got)
				}
			}
			continue
		}
		if got != want {
			t.Errorf("%s: canonical summary drifted from base\n--- base\n%s--- %s\n%s",
				v.name, want, v.name, got)
		}
	}
}

// TestGoFrontDeterminism pins byte-identical full reports — analysis
// plus confidence table, across every fixture package — for the
// sequential schedule, a four-worker pool, and each allocation
// policy. The Go path must be as schedule- and allocator-independent
// as the MiniPL path.
func TestGoFrontDeterminism(t *testing.T) {
	dirs := corpusDirs(t)
	render := func(opts Options) string {
		results, err := AnalyzeGoPackages(dirs, opts)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, r := range results {
			sb.WriteString(r.GoReport())
			r.Release()
		}
		return sb.String()
	}
	base := render(Options{Sequential: true})
	runs := []struct {
		name string
		opts Options
	}{
		{"parallel-j4", Options{Workers: 4}},
		{"sequential-hybrid", Options{Sequential: true, Alloc: core.AllocHybrid}},
		{"sequential-dense", Options{Sequential: true, Alloc: core.AllocDense}},
		{"parallel-j4-dense", Options{Workers: 4, Alloc: core.AllocDense}},
		{"sequential-again", Options{Sequential: true}},
	}
	for _, run := range runs {
		if got := render(run.opts); got != base {
			t.Errorf("%s: report differs from sequential baseline", run.name)
		}
	}

	// Loading itself must be deterministic: same tree, same hash.
	a, err := AnalyzeGoPackages([]string{filepath.Join("testdata", "gofront", "pure")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := AnalyzeGoPackages([]string{filepath.Join("testdata", "gofront", "pure")}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a[0].Pkg.Hash != b[0].Pkg.Hash {
		t.Errorf("package hash unstable: %s vs %s", a[0].Pkg.Hash, b[0].Pkg.Hash)
	}
	a[0].Release()
	b[0].Release()
}
