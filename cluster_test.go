package sideeffect_test

// The in-process cluster harness: N modand shard replicas on loopback
// listeners fronted by one cluster.Coordinator, all inside this test
// binary — no docker, no subprocesses — so routing determinism,
// failover, and job durability run under -race in tier-1.
//
// The tests here are the cluster's acceptance surface:
//
//   - TestClusterDifferentialByteIdentity: every /analyze query kind
//     and /lint through 1-, 2-, 4-, and 8-shard clusters returns
//     byte-identical bodies to a single direct server, across both
//     frontends, at equal cache temperature.
//   - TestClusterFailoverChaos: a shard dies and restarts mid-soak
//     under fault injection; every 2xx answer is still correct, the
//     error rate stays bounded, and goroutines/arenas drain.
//   - TestClusterJobJournalReplay: the coordinator restarts mid-job
//     and the journal replay completes every unit exactly once.
//   - TestClusterJobStream: /jobs/{id}/stream yields each unit once
//     plus one terminal line.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sideeffect/internal/arena"
	"sideeffect/internal/cluster"
	"sideeffect/internal/server"
	"sideeffect/internal/store"
	"sideeffect/internal/workload"
)

// testShard is one replica bound to a fixed loopback address. The
// address survives kill/restart cycles, so the coordinator's member
// URL stays valid across a crash — exactly the failure the chaos test
// rehearses.
type testShard struct {
	id   string
	addr string
	cfg  server.Config

	mu  sync.Mutex
	srv *http.Server
}

func newTestShard(t *testing.T, id string, cfg server.Config) *testShard {
	t.Helper()
	cfg.ShardID = id
	s := &testShard{id: id, cfg: cfg}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.addr = ln.Addr().String()
	s.serve(ln)
	return s
}

func (s *testShard) serve(ln net.Listener) {
	srv := &http.Server{Handler: server.New(s.cfg).Handler()}
	s.mu.Lock()
	s.srv = srv
	s.mu.Unlock()
	go func() { _ = srv.Serve(ln) }()
}

func (s *testShard) url() string { return "http://" + s.addr }

// kill closes the listener and every open connection, simulating a
// crashed replica.
func (s *testShard) kill() {
	s.mu.Lock()
	srv := s.srv
	s.mu.Unlock()
	if srv != nil {
		_ = srv.Close()
	}
}

// restart rebinds the same address with a fresh, cold-cache server —
// the replacement replica an operator (or supervisor) would start.
func (s *testShard) restart(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ln, err := net.Listen("tcp", s.addr)
		if err == nil {
			s.serve(ln)
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", s.addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// testCluster wires n shards behind a coordinator and fronts the
// coordinator with an httptest server.
type testCluster struct {
	shards []*testShard
	coord  *cluster.Coordinator
	front  *httptest.Server
}

// clusterConfig returns coordinator settings tightened for tests: fast
// probes and retries, a fixed jitter seed.
func clusterConfig() cluster.Config {
	return cluster.Config{
		HealthEvery:   25 * time.Millisecond,
		HealthTimeout: 2 * time.Second,
		RetryBase:     2 * time.Millisecond,
		RetryMax:      50 * time.Millisecond,
		Seed:          1,
	}
}

func startTestCluster(t *testing.T, n int, shardCfg server.Config, ccfg cluster.Config) *testCluster {
	t.Helper()
	coord, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{coord: coord}
	for i := 1; i <= n; i++ {
		sh := newTestShard(t, fmt.Sprintf("s%d", i), shardCfg)
		tc.shards = append(tc.shards, sh)
		if err := coord.AddShard(sh.id, sh.url()); err != nil {
			t.Fatal(err)
		}
	}
	coord.Start()
	tc.front = httptest.NewServer(coord.Handler())
	if !coord.WaitHealthy(n, 15*time.Second) {
		tc.close()
		t.Fatalf("%d shards never all probed healthy", n)
	}
	return tc
}

func (tc *testCluster) close() {
	if tc.front != nil {
		tc.front.Close()
	}
	tc.coord.Stop()
	for _, sh := range tc.shards {
		sh.kill()
	}
}

// postRaw issues one POST and returns status, body bytes, and the
// response headers (X-Modand-Shard identifies the serving replica).
func postRaw(t *testing.T, base, path string, body any) (int, []byte, http.Header) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s%s: %v", base, path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes(), resp.Header
}

// clusterRequest is one request in the differential corpus.
type clusterRequest struct {
	name string
	path string
	body map[string]any
}

const clusterMiniPLSrc = `
program d;
global g;

proc p(ref x)
begin
  x := 1
end;

begin
  call p(g)
end.
`

const clusterGoSrcA = `package a

var G int

func F(p *int) {
	*p = 1
	G = 2
}

func H() { F(&G) }
`

const clusterGoSrcB = `package b

type T struct{ X, Y int }

func Set(t *T) { t.X = 1 }

func Get(t *T) int { return t.Y }
`

// differentialCorpus covers every /analyze query kind and /lint in
// both output formats, over generated and handcrafted MiniPL plus Go
// sources. The request ORDER is part of the corpus: cache temperature
// evolves per source, and the reference server must see the same
// sequence as the cluster for bodies to match byte for byte.
func differentialCorpus() []clusterRequest {
	var reqs []clusterRequest
	analyze := func(tag, lang, src string, query map[string]any) {
		body := map[string]any{"source": src}
		if lang != "" {
			body["lang"] = lang
		}
		if query != nil {
			body["query"] = query
		}
		reqs = append(reqs, clusterRequest{name: tag, path: "/analyze", body: body})
	}
	lint := func(tag, lang, src, format string) {
		body := map[string]any{"source": src}
		if lang != "" {
			body["lang"] = lang
		}
		if format != "" {
			body["format"] = format
		}
		reqs = append(reqs, clusterRequest{name: tag, path: "/lint", body: body})
	}

	// Generated MiniPL: three distinct programs so the keyspace spreads
	// over shards. Every generated procedure is named p<i>, so proc
	// queries can target p1.
	for _, seed := range []int64{21, 22, 23} {
		src := workload.Emit(workload.Random(workload.DefaultConfig(5, seed)))
		tag := fmt.Sprintf("minipl-gen%d", seed)
		analyze(tag+"-full", "", src, nil)
		analyze(tag+"-report", "", src, map[string]any{"kind": "report"})
		analyze(tag+"-gmod", "minipl", src, map[string]any{"kind": "gmod", "proc": "p1"})
		analyze(tag+"-guse", "minipl", src, map[string]any{"kind": "guse", "proc": "p1"})
		analyze(tag+"-rmod", "minipl", src, map[string]any{"kind": "rmod", "proc": "p1"})
		analyze(tag+"-callsites", "", src, map[string]any{"kind": "callsites"})
		lint(tag+"-lint", "", src, "")
	}
	// Handcrafted MiniPL with a known procedure and a ref-parameter
	// global mod.
	analyze("minipl-hand-full", "minipl", clusterMiniPLSrc, nil)
	analyze("minipl-hand-gmod", "", clusterMiniPLSrc, map[string]any{"kind": "gmod", "proc": "p"})
	analyze("minipl-hand-rmod", "", clusterMiniPLSrc, map[string]any{"kind": "rmod", "proc": "p"})
	lint("minipl-hand-lint-text", "", clusterMiniPLSrc, "text")

	// Go frontend.
	for i, src := range []string{clusterGoSrcA, clusterGoSrcB} {
		tag := fmt.Sprintf("go-%d", i)
		analyze(tag+"-full", "go", src, nil)
		analyze(tag+"-report", "go", src, map[string]any{"kind": "report"})
		analyze(tag+"-callsites", "go", src, map[string]any{"kind": "callsites"})
		lint(tag+"-lint", "go", src, "")
	}
	return reqs
}

// TestClusterDifferentialByteIdentity is the headline differential:
// for every corpus request, the body served through an N-shard cluster
// must equal — byte for byte — the body a single direct modand server
// returns, both cold and warm. Sharding must be invisible to clients.
func TestClusterDifferentialByteIdentity(t *testing.T) {
	corpus := differentialCorpus()
	for _, n := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("shards-%d", n), func(t *testing.T) {
			// Fresh reference and fresh cluster: both start cold, and
			// both see the identical request sequence.
			ref := httptest.NewServer(server.New(server.Config{}).Handler())
			defer ref.Close()
			tc := startTestCluster(t, n, server.Config{}, clusterConfig())
			defer tc.close()

			shardsSeen := make(map[string]bool)
			for _, rq := range corpus {
				for pass := 0; pass < 2; pass++ {
					temp := [2]string{"cold", "warm"}[pass]
					wantCode, want, _ := postRaw(t, ref.URL, rq.path, rq.body)
					gotCode, got, hdr := postRaw(t, tc.front.URL, rq.path, rq.body)
					if gotCode != wantCode {
						t.Fatalf("%s %s: cluster status %d, direct %d\ncluster: %s\ndirect:  %s",
							rq.name, temp, gotCode, wantCode, got, want)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("%s %s: routed body differs from direct\ncluster: %s\ndirect:  %s",
							rq.name, temp, got, want)
					}
					if wantCode != http.StatusOK {
						t.Fatalf("%s: corpus request failed on the direct server: %d %s",
							rq.name, wantCode, want)
					}
					shardsSeen[hdr.Get("X-Modand-Shard")] = true
				}
			}
			// With 4+ shards the corpus must actually spread; one shard
			// serving everything would mean the test proved nothing
			// about routing.
			if n >= 4 && len(shardsSeen) < 2 {
				t.Errorf("all %d corpus requests landed on one shard (%v); routing untested", len(corpus), shardsSeen)
			}
		})
	}
}

// TestClusterFailoverChaos soaks a 3-shard fault-injected cluster with
// concurrent clients while one shard is killed and later restarted on
// the same address. The invariants: no 2xx response ever carries a
// wrong body, the client-visible error rate stays bounded (retries and
// failover absorb the crash), the killed shard rejoins via health
// probes, and goroutines and arenas drain afterwards.
func TestClusterFailoverChaos(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()
	arenasBefore := arena.Stats()

	ccfg := clusterConfig()
	ccfg.MaxAttempts = 5
	tc := startTestCluster(t, 3, server.Config{FaultRate: 0.02, FaultSeed: 7}, ccfg)
	closed := false
	defer func() {
		if !closed {
			tc.close()
		}
	}()

	// Expected bodies come from a clean reference server: for each
	// source, the cold (first-contact) and warm (cache-hit) body. A
	// soak response may legitimately be either — failover and restart
	// reset cache temperature per shard — but never anything else.
	srcs := make([]string, 6)
	type expect struct{ cold, warm string }
	want := make(map[string]expect, len(srcs))
	ref := httptest.NewServer(server.New(server.Config{}).Handler())
	for i := range srcs {
		srcs[i] = workload.Emit(workload.Random(workload.DefaultConfig(5, int64(100+i))))
		code, cold, _ := postRaw(t, ref.URL, "/analyze", map[string]any{"source": srcs[i]})
		if code != http.StatusOK {
			t.Fatalf("reference analyze %d: status %d: %s", i, code, cold)
		}
		_, warm, _ := postRaw(t, ref.URL, "/analyze", map[string]any{"source": srcs[i]})
		want[srcs[i]] = expect{cold: string(cold), warm: string(warm)}
	}
	ref.Close()

	var (
		mu          sync.Mutex
		total, errs int
		firstWrong  string
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			client := &http.Client{Timeout: 10 * time.Second}
			for {
				select {
				case <-stop:
					return
				default:
				}
				src := srcs[rng.Intn(len(srcs))]
				data, _ := json.Marshal(map[string]any{"source": src})
				resp, err := client.Post(tc.front.URL+"/analyze", "application/json", bytes.NewReader(data))
				mu.Lock()
				total++
				if err != nil {
					errs++
					mu.Unlock()
					continue
				}
				mu.Unlock()
				var buf bytes.Buffer
				_, rerr := buf.ReadFrom(resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch {
				case rerr != nil || resp.StatusCode != http.StatusOK:
					errs++
				case buf.String() != want[src].cold && buf.String() != want[src].warm:
					errs++ // count it, but a wrong 2xx is fatal below
					if firstWrong == "" {
						firstWrong = fmt.Sprintf("status 200 with wrong body for source %.40q:\n%s", src, buf.String())
					}
				}
				mu.Unlock()
			}
		}(int64(w + 1))
	}

	// The crash: kill shard s2 mid-soak, let the fleet absorb it, then
	// bring a cold replacement up on the same address.
	time.Sleep(300 * time.Millisecond)
	tc.shards[1].kill()
	time.Sleep(400 * time.Millisecond)
	tc.shards[1].restart(t)
	if !tc.coord.WaitHealthy(3, 15*time.Second) {
		t.Error("restarted shard never probed healthy again")
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()

	if firstWrong != "" {
		t.Fatalf("wrong answer during failover: %s", firstWrong)
	}
	if total < 50 {
		t.Fatalf("soak made only %d requests; too few to mean anything", total)
	}
	if errs > total/5 {
		t.Errorf("error rate %d/%d exceeds 20%%: failover is not absorbing the crash", errs, total)
	}
	t.Logf("soak: %d requests, %d errors, shard s2 killed and rejoined", total, errs)

	// Drain: tear the whole cluster down and require goroutines back to
	// baseline and arena discipline intact.
	tc.close()
	closed = true
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > goroutinesBefore+3 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines leaked: %d before, %d after\n%s",
			goroutinesBefore, n, buf[:runtime.Stack(buf, true)])
	}
	arenasAfter := arena.Stats()
	if d := arenasAfter.PoisonedReuse - arenasBefore.PoisonedReuse; d != 0 {
		t.Errorf("%d poisoned arenas re-entered circulation during the soak", d)
	}
}

// TestClusterJobJournalReplay is the coordinator-crash story over the
// real HTTP surface: submit a job, stop the coordinator mid-job, build
// a new one over the same journal directory (shards stay up, as they
// would in production), and require the replay to finish every unit
// with zero errors and exactly one journal result record per unit.
func TestClusterJobJournalReplay(t *testing.T) {
	dir := t.TempDir()
	shardCfg := server.Config{}
	shards := []*testShard{
		newTestShard(t, "s1", shardCfg),
		newTestShard(t, "s2", shardCfg),
	}
	defer func() {
		for _, sh := range shards {
			sh.kill()
		}
	}()

	newCoord := func() (*cluster.Coordinator, *httptest.Server) {
		ccfg := clusterConfig()
		ccfg.JournalDir = dir
		ccfg.JobWorkers = 1 // serialize units so the stop lands mid-job
		c, err := cluster.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shards {
			if err := c.AddShard(sh.id, sh.url()); err != nil {
				t.Fatal(err)
			}
		}
		c.Start()
		if !c.WaitHealthy(len(shards), 15*time.Second) {
			t.Fatal("shards never probed healthy")
		}
		return c, httptest.NewServer(c.Handler())
	}

	// Units big enough that a single worker takes real time per unit.
	sources := make([]string, 16)
	for i := range sources {
		sources[i] = workload.Emit(workload.Random(workload.DefaultConfig(40, int64(500+i))))
	}

	c1, front1 := newCoord()
	var sub struct {
		ID    string `json:"id"`
		Units int    `json:"units"`
	}
	code, body, _ := postRaw(t, front1.URL, "/jobs", map[string]any{"sources": sources})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}
	if sub.Units != len(sources) {
		t.Fatalf("job has %d units, want %d", sub.Units, len(sources))
	}

	// Let the job make partial progress, then stop the coordinator with
	// units still pending (and very likely one in flight).
	poll := func(base string) (done, errCount int, complete bool) {
		resp, err := http.Get(base + "/jobs/" + sub.ID + "?units=0")
		if err != nil {
			t.Fatal(err)
		}
		var v struct {
			Done     int  `json:"done"`
			Errors   int  `json:"errors"`
			Complete bool `json:"complete"`
		}
		err = json.NewDecoder(resp.Body).Decode(&v)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return v.Done, v.Errors, v.Complete
	}
	deadline := time.Now().Add(30 * time.Second)
	var doneBefore int
	for {
		done, _, complete := poll(front1.URL)
		if complete {
			t.Fatal("job completed before the coordinator could be stopped; enlarge the workload")
		}
		if done >= 3 {
			doneBefore = done
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job made no progress (%d done)", done)
		}
		time.Sleep(20 * time.Millisecond)
	}
	front1.Close()
	c1.Stop()

	// Restart: a new coordinator over the same journal directory must
	// rehydrate the job and finish the pending units.
	c2, front2 := newCoord()
	defer func() { front2.Close(); c2.Stop() }()
	deadline = time.Now().Add(60 * time.Second)
	for {
		done, errCount, complete := poll(front2.URL)
		if complete {
			if errCount != 0 {
				t.Fatalf("job completed with %d errors after replay", errCount)
			}
			if done != len(sources) {
				t.Fatalf("job complete with %d/%d units done", done, len(sources))
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed after replay (%d/%d)", done, len(sources))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if doneBefore >= len(sources) {
		t.Fatalf("doneBefore=%d means the pre-restart job was already finished", doneBefore)
	}

	// Exactly-once, proven at the journal: one result record per unit,
	// no unit recorded twice even though the restart re-dispatched the
	// pending tail.
	front2.Close()
	c2.Stop()
	j, raw, err := store.OpenJournal(dir + "/jobs.journal")
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	perUnit := make(map[int]int)
	for _, data := range raw {
		var rec struct {
			Type string `json:"type"`
			Job  string `json:"job"`
			Unit int    `json:"unit"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Type == "result" && rec.Job == sub.ID {
			perUnit[rec.Unit]++
		}
	}
	if len(perUnit) != len(sources) {
		t.Fatalf("journal holds results for %d units, want %d", len(perUnit), len(sources))
	}
	for unit, n := range perUnit {
		if n != 1 {
			t.Errorf("unit %d journaled %d results, want exactly 1", unit, n)
		}
	}
}

// TestClusterJobStream reads the NDJSON stream: every unit appears
// exactly once, bodies ride along, and the terminal line carries the
// total.
func TestClusterJobStream(t *testing.T) {
	tc := startTestCluster(t, 2, server.Config{}, clusterConfig())
	defer tc.close()

	sources := make([]string, 6)
	for i := range sources {
		sources[i] = workload.Emit(workload.Random(workload.DefaultConfig(4, int64(900+i))))
	}
	var sub struct {
		ID string `json:"id"`
	}
	code, body, _ := postRaw(t, tc.front.URL, "/jobs", map[string]any{"sources": sources})
	if code != http.StatusAccepted {
		t.Fatalf("POST /jobs: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(tc.front.URL + "/jobs/" + sub.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", ct)
	}
	seen := make(map[int]int)
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev struct {
			Index  *int            `json:"index"`
			Status string          `json:"status"`
			Body   json.RawMessage `json:"body"`
			Done   bool            `json:"done"`
			Total  int             `json:"total"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", line, err)
		}
		if ev.Done {
			sawDone = true
			if ev.Total != len(sources) {
				t.Errorf("terminal line total = %d, want %d", ev.Total, len(sources))
			}
			break
		}
		// Every unit line must carry an explicit index — including unit
		// 0; non-Go consumers cannot fill in missing zero values.
		if ev.Index == nil {
			t.Fatalf("unit line missing index: %s", line)
		}
		seen[*ev.Index]++
		if ev.Status != "done" || len(ev.Body) == 0 {
			t.Errorf("unit %d streamed status %q with %d body bytes", *ev.Index, ev.Status, len(ev.Body))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !sawDone {
		t.Fatal("stream ended without a terminal done line")
	}
	if len(seen) != len(sources) {
		t.Fatalf("stream carried %d distinct units, want %d", len(seen), len(sources))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Errorf("unit %d streamed %d times", idx, n)
		}
	}
}

// TestClusterStatusAndMetrics pins the operational surface: the status
// document names every member with health and traffic counts, and the
// metrics exposition carries the cluster family including the CPU
// gauges the oversubscription check reads.
func TestClusterStatusAndMetrics(t *testing.T) {
	tc := startTestCluster(t, 2, server.Config{}, clusterConfig())
	defer tc.close()

	src := workload.Emit(workload.Random(workload.DefaultConfig(4, 77)))
	if code, body, _ := postRaw(t, tc.front.URL, "/analyze", map[string]any{"source": src}); code != http.StatusOK {
		t.Fatalf("analyze: %d %s", code, body)
	}

	resp, err := http.Get(tc.front.URL + "/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Shards []struct {
			ID       string `json:"id"`
			URL      string `json:"url"`
			Healthy  bool   `json:"healthy"`
			Requests int64  `json:"requests"`
		} `json:"shards"`
		HealthyShards int `json:"healthyShards"`
	}
	err = json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(status.Shards) != 2 || status.HealthyShards != 2 {
		t.Fatalf("status = %+v", status)
	}
	var requests int64
	for _, sh := range status.Shards {
		if !sh.Healthy || sh.URL == "" {
			t.Errorf("shard %s: healthy=%v url=%q", sh.ID, sh.Healthy, sh.URL)
		}
		requests += sh.Requests
	}
	if requests < 1 {
		t.Error("no shard recorded the routed request")
	}

	mresp, err := http.Get(tc.front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"modand_cluster_routed_total",
		"modand_cluster_shard_healthy",
		"modand_cluster_num_cpu",
		"modand_cluster_gomaxprocs",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
}
