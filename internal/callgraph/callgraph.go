// Package callgraph builds the program's call multi-graph C = (N_C,
// E_C): one node per procedure (including main) and one edge per call
// site. Node indices equal ir.Procedure.ID and edge identifiers equal
// ir.CallSite.ID, so analyses can move freely between the graph and
// the program model.
package callgraph

import (
	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// CallGraph couples the multi-graph with its program.
type CallGraph struct {
	Prog *ir.Program
	G    *graph.Graph
}

// Build constructs the call multi-graph of p.
func Build(p *ir.Program) *CallGraph {
	list := make([]graph.Edge, len(p.Sites))
	for i, cs := range p.Sites {
		if cs.ID != i {
			// Sites are ID-dense and added in order, so this cannot
			// happen for a validated program.
			panic("callgraph: call-site IDs not dense")
		}
		list[i] = graph.Edge{From: cs.Caller.ID, To: cs.Callee.ID}
	}
	return &CallGraph{Prog: p, G: graph.FromEdgeList(p.NumProcs(), list)}
}

// Site returns the call site corresponding to a graph edge.
func (c *CallGraph) Site(edgeID int) *ir.CallSite { return c.Prog.Sites[edgeID] }

// Stats summarizes the size quantities the paper's complexity bounds
// are stated in.
type Stats struct {
	N int // N_C: procedures
	E int // E_C: call sites
	// MuF is µ_f, the average number of formal parameters per
	// procedure; MuA is µ_a, the average number of actuals per call
	// site. The paper assumes both are bounded by a small constant k.
	MuF, MuA float64
	// Globals is the number of program-level global variables (the
	// paper argues this grows linearly with program size, making the
	// overall bound O(N² + NE)).
	Globals int
}

// Stats computes size statistics for the program.
func (c *CallGraph) Stats() Stats {
	s := Stats{N: c.Prog.NumProcs(), E: c.Prog.NumSites()}
	tf := 0
	for _, q := range c.Prog.Procs {
		tf += len(q.Formals)
	}
	ta := 0
	for _, cs := range c.Prog.Sites {
		ta += len(cs.Args)
	}
	if s.N > 0 {
		s.MuF = float64(tf) / float64(s.N)
	}
	if s.E > 0 {
		s.MuA = float64(ta) / float64(s.E)
	}
	s.Globals = len(c.Prog.Globals())
	return s
}
