package callgraph

import (
	"testing"

	"sideeffect/internal/lang/sem"
)

func TestBuildAndStats(t *testing.T) {
	p, err := sem.AnalyzeSource(`
program cg;
global g, h, k;
proc a(ref x, val n) begin x := n end;
proc b(ref y)
begin
  call a(y, 1);
  call a(g, 2)
end;
begin
  call b(h);
  call b(k);
  call a(g, 3)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	c := Build(p)
	if c.G.NumNodes() != 3 { // $main, a, b
		t.Fatalf("nodes = %d", c.G.NumNodes())
	}
	if c.G.NumEdges() != 5 {
		t.Fatalf("edges = %d, want 5", c.G.NumEdges())
	}
	// Edge IDs coincide with call-site IDs.
	for _, e := range c.G.Edges() {
		cs := c.Site(e.ID)
		if cs.Caller.ID != e.From || cs.Callee.ID != e.To {
			t.Errorf("edge %v does not match site %v", e, cs)
		}
	}
	st := c.Stats()
	if st.N != 3 || st.E != 5 {
		t.Errorf("stats N=%d E=%d", st.N, st.E)
	}
	// Formals: a has 2, b has 1, main has 0 → µ_f = 1.
	if st.MuF != 1.0 {
		t.Errorf("MuF = %v, want 1.0", st.MuF)
	}
	// Actuals: 2+2+1+1+2 = 8 over 5 sites.
	if st.MuA != 8.0/5.0 {
		t.Errorf("MuA = %v", st.MuA)
	}
	if st.Globals != 3 {
		t.Errorf("Globals = %d", st.Globals)
	}
}

func TestParallelCallEdges(t *testing.T) {
	p, err := sem.AnalyzeSource(`
program m;
proc q() begin end;
begin call q(); call q() end.
`)
	if err != nil {
		t.Fatal(err)
	}
	c := Build(p)
	if c.G.NumEdges() != 2 {
		t.Errorf("parallel call edges = %d, want 2", c.G.NumEdges())
	}
	if c.G.Succs(p.Main.ID)[0].To != p.Proc("q").ID {
		t.Error("edge target wrong")
	}
}

func TestEmptyProgram(t *testing.T) {
	p, err := sem.AnalyzeSource("program e; begin end.")
	if err != nil {
		t.Fatal(err)
	}
	c := Build(p)
	if c.G.NumNodes() != 1 || c.G.NumEdges() != 0 {
		t.Errorf("empty program graph: %d nodes %d edges", c.G.NumNodes(), c.G.NumEdges())
	}
	st := c.Stats()
	if st.MuA != 0 || st.MuF != 0 {
		t.Errorf("stats on empty program: %+v", st)
	}
}
