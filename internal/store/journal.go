package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Journal is the durable append-only log under the cluster
// coordinator's async job tier. It carries the same contract the
// checkpoint Store does, restated for a queue:
//
//   - an appended record, once Append returns, survives a process
//     crash (each append is fsynced before it is acknowledged), and
//   - a torn tail — the half-written record a dying process leaves —
//     is detected by its length/checksum frame and truncated away on
//     the next open, so replay yields exactly the acknowledged prefix,
//     never garbage.
//
// Compaction reuses the checkpoint discipline verbatim: Rewrite
// publishes the surviving records through a temp-file + fsync + rename
// sequence, so a crash mid-compaction leaves either the old journal or
// the new one, never a partial file.
type Journal struct {
	path string
	f    *os.File
	// size is the current committed file length; the next append's
	// frame starts here.
	size int64
}

// journalMagic heads every journal file. Bump the trailing version
// byte when the frame layout changes; an unknown version reads as
// corrupt (callers start an empty queue), never as decodable frames.
const journalMagic = "MODANDJRNL\x00\x01"

// maxJournalRecord bounds one record's payload, guarding replay
// against allocating from a corrupt length word.
const maxJournalRecord = 64 << 20

// journalSumLen is the truncated-SHA-256 checksum carried per frame.
const journalSumLen = 8

// OpenJournal opens (or creates) the journal at path and replays every
// intact record. A torn or corrupt tail is truncated away — the
// returned records are exactly the durably acknowledged prefix. The
// journal is then positioned for appending.
func OpenJournal(path string) (*Journal, [][]byte, error) {
	data, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
		if _, err := f.WriteString(journalMagic); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
		return &Journal{path: path, f: f, size: int64(len(journalMagic))}, nil, nil
	case err != nil:
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}

	records, good := replayJournal(data)
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	// Drop the torn tail (if any) so future appends extend the good
	// prefix instead of following garbage.
	if good < int64(len(data)) {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: truncate torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: journal: %w", err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{path: path, f: f, size: good}, records, nil
}

// replayJournal walks data's frames and returns the intact records
// plus the byte offset the good prefix ends at. A missing or damaged
// magic header yields no records and a magic-only prefix, so the file
// is reset to an empty journal.
func replayJournal(data []byte) ([][]byte, int64) {
	if len(data) < len(journalMagic) || string(data[:len(journalMagic)]) != journalMagic {
		return nil, int64(len(journalMagic))
	}
	var records [][]byte
	off := int64(len(journalMagic))
	for {
		rec, next, ok := readFrame(data, off)
		if !ok {
			return records, off
		}
		records = append(records, rec)
		off = next
	}
}

// readFrame decodes one frame at off: 4-byte big-endian payload
// length, 8-byte truncated SHA-256 of the payload, then the payload.
func readFrame(data []byte, off int64) (rec []byte, next int64, ok bool) {
	header := off + 4 + journalSumLen
	if header > int64(len(data)) {
		return nil, 0, false
	}
	n := int64(binary.BigEndian.Uint32(data[off : off+4]))
	if n > maxJournalRecord || header+n > int64(len(data)) {
		return nil, 0, false
	}
	payload := data[header : header+n]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:journalSumLen], data[off+4:header]) {
		return nil, 0, false
	}
	// Copy out: data is one big read buffer we don't want pinned.
	return append([]byte(nil), payload...), header + n, true
}

// Append durably adds one record: when Append returns nil the record
// will be replayed by every future OpenJournal, crashes included.
func (j *Journal) Append(rec []byte) error {
	if len(rec) > maxJournalRecord {
		return fmt.Errorf("store: journal: record of %d bytes exceeds the %d-byte limit", len(rec), maxJournalRecord)
	}
	frame := make([]byte, 0, 4+journalSumLen+len(rec))
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
	sum := sha256.Sum256(rec)
	frame = append(frame, lenBuf[:]...)
	frame = append(frame, sum[:journalSumLen]...)
	frame = append(frame, rec...)
	if _, err := j.f.Write(frame); err != nil {
		return fmt.Errorf("store: journal: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: fsync: %w", err)
	}
	j.size += int64(len(frame))
	return nil
}

// Rewrite atomically replaces the journal's contents with records —
// the compaction path. The new journal is written beside the old one,
// fsynced, and renamed into place (then the directory is fsynced), so
// a crash leaves either the previous journal or the compacted one.
func (j *Journal) Rewrite(records [][]byte) error {
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: compact: %w", err)
	}
	var buf bytes.Buffer
	buf.WriteString(journalMagic)
	for _, rec := range records {
		var lenBuf [4]byte
		binary.BigEndian.PutUint32(lenBuf[:], uint32(len(rec)))
		sum := sha256.Sum256(rec)
		buf.Write(lenBuf[:])
		buf.Write(sum[:journalSumLen])
		buf.Write(rec)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("store: journal: compact: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: journal: compact fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: journal: compact: %w", err)
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("store: journal: publish: %w", err)
	}
	syncDir(filepath.Dir(j.path))
	// Swap the append handle onto the compacted file.
	old := j.f
	nf, err := os.OpenFile(j.path, os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: reopen: %w", err)
	}
	if _, err := nf.Seek(0, io.SeekEnd); err != nil {
		nf.Close()
		return fmt.Errorf("store: journal: reopen: %w", err)
	}
	j.f = nf
	j.size = int64(buf.Len())
	old.Close()
	return nil
}

// Size reports the journal file's committed length in bytes.
func (j *Journal) Size() int64 { return j.size }

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Close releases the append handle. Appends after Close fail.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
