package store

import (
	"encoding/json"
	"fmt"

	"sideeffect"
	"sideeffect/internal/gofront"
	"sideeffect/internal/lint"
	"sideeffect/internal/prof"
	"sideeffect/internal/report"
)

// EntrySnapshot is one content-addressed cache entry rendered to pure
// data: everything the serving layer answers about an analysis —
// the JSON report, the text report, per-procedure and per-call-site
// query answers (all inside the JSON report), the full-rules lint
// report (filtered per request on the warm path), and the Go
// frontend's confidence notes — with no live Analysis behind it. A
// restored daemon serves these byte-identically to a fresh
// computation, because every field was rendered by the same code a
// fresh computation renders with.
type EntrySnapshot struct {
	// Key is the content-addressed cache key (language-namespaced for
	// Go sources, exactly as the serving layer computes it).
	Key string
	// Lang is "minipl" or "go".
	Lang string
	// JSON is the marshaled report.JSONReport. It is persisted as
	// JSON bytes (not as the struct) so the decode→re-marshal round
	// trip on the warm path preserves nil-vs-empty slice distinctions
	// byte for byte.
	JSON []byte
	// Text is the rendered text report (Analysis.Report, without the
	// confidence table — the serving layer appends Conf like it does
	// for live entries).
	Text string
	// Lint is a full run of the diagnostics engine (every rule, default
	// severities). Warm /lint requests derive any requested
	// configuration from it with lint.Report.Filter.
	Lint *lint.Report
	// Notes and Conf carry the Go frontend's per-function confidence
	// records and rendered table; empty for MiniPL entries.
	Notes []gofront.Note
	Conf  string
}

// BuildEntry renders a completed analysis into an EntrySnapshot under
// the given cache key. notes and conf are the Go frontend's
// confidence data (nil/"" for MiniPL). The analysis is only read.
func BuildEntry(a *sideeffect.Analysis, key, lang string, notes []gofront.Note, conf string) (*EntrySnapshot, error) {
	jr := report.BuildJSON(a.Mod, a.Use, a.Aliases, a.SecMod)
	data, err := json.Marshal(jr)
	if err != nil {
		return nil, fmt.Errorf("store: render report: %w", err)
	}
	// The lint run uses a throwaway profile so snapshotting a profiled
	// analysis does not fold lint timings into its recorded stages.
	rep, err := a.Lint(lint.Config{Prof: prof.New()})
	if err != nil {
		return nil, fmt.Errorf("store: render lint: %w", err)
	}
	return &EntrySnapshot{
		Key:   key,
		Lang:  lang,
		JSON:  data,
		Text:  a.Report(),
		Lint:  rep,
		Notes: notes,
		Conf:  conf,
	}, nil
}

// Fingerprint folds the snapshot's content into one word. Like the
// serving layer's live-entry fingerprint it is deliberately cheap —
// it runs on every cache hit — and exists to catch in-memory
// corruption of a restored entry (a flipped length, a truncated
// report), not to be a cryptographic commitment; on-disk integrity is
// the checksum's job.
func (e *EntrySnapshot) Fingerprint() uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) { h ^= x; h *= 1099511628211 }
	mixStr := func(s string) {
		mix(uint64(len(s)))
		for i := 0; i < len(s); i += 64 {
			mix(uint64(s[i]))
		}
	}
	mixStr(e.Key)
	mixStr(e.Lang)
	mix(uint64(len(e.JSON)))
	for i := 0; i < len(e.JSON); i += 64 {
		mix(uint64(e.JSON[i]))
	}
	mixStr(e.Text)
	if e.Lint != nil {
		mix(uint64(len(e.Lint.Diags)))
		mix(uint64(len(e.Lint.Counts)))
	}
	mix(uint64(len(e.Notes)))
	mixStr(e.Conf)
	return h
}
