// Package store is the persistence layer under the watch-mode
// indexer: it serializes the serving layer's warm state — the
// content-addressed cache's rendered answers, open incremental
// sessions, and the indexer's file table — to an on-disk state
// directory, so a restarted daemon answers its first query for
// unchanged sources from the persisted snapshot instead of
// recomputing.
//
// The paper's programming-environment pitch is that linear-time
// MOD/USE is cheap enough "to be performed routinely in response to
// program changes"; this package supplies the missing durability half
// of that posture. Its contract is deliberately asymmetric:
//
//   - a checkpoint may always be *missing* or *stale* (the serving
//     layer simply cold-starts or recomputes on demand), but
//   - a checkpoint must never produce a *wrong* answer.
//
// Saves are therefore atomic and crash-safe — the checkpoint is
// written to a temporary file, fsynced, and renamed over the previous
// one, so a crash mid-write leaves the previous snapshot intact — and
// loads verify a versioned magic header plus a SHA-256 payload
// checksum before decoding; any damage (truncation, bit rot, a
// partial write from a dying process) degrades to ErrCorrupt and a
// clean cold start.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// magic is the versioned file header. Bump the trailing version byte
// when the Checkpoint schema changes incompatibly; a reader seeing an
// unknown version treats the file as unusable (cold start), never as
// decodable data.
const magic = "MODANDCKPT\x00\x01"

// checkpointFile is the snapshot's name inside the state directory;
// tempFile is the in-progress write the rename protocol publishes.
const (
	checkpointFile = "checkpoint.bin"
	tempFile       = "checkpoint.tmp"
)

// ErrCorrupt marks a checkpoint file that exists but cannot be
// trusted: bad magic, unknown version, truncation, checksum mismatch,
// or an undecodable payload. Callers must treat it as "no checkpoint"
// (cold start), never as a fatal error.
var ErrCorrupt = errors.New("store: corrupt checkpoint")

// Checkpoint is one serialized snapshot of a daemon's warm state.
type Checkpoint struct {
	// SavedUnixNs records when the snapshot was taken.
	SavedUnixNs int64
	// Entries are the rendered content-addressed cache entries.
	Entries []*EntrySnapshot
	// Sessions are the open incremental sessions' sources and
	// counters; NextSession continues the id sequence so restored ids
	// never collide with new ones.
	Sessions    []SessionSnapshot
	NextSession int
	// Index is the watch-mode file table, when an indexer was
	// attached; nil otherwise.
	Index *IndexState
}

// SessionSnapshot persists one open session. The analysis itself is
// rebuilt from Source on restore (sessions must hold a live, mutable
// analysis to absorb future edits, so their state cannot be served
// from rendered data the way cache entries can).
type SessionSnapshot struct {
	ID     string
	Source string
	// Edits / Incremental / Full are the session's absorbed-edit
	// counters, carried across the restart for observability.
	Edits       int
	Incremental int
	Full        int
}

// IndexState is the watch-mode indexer's persisted file table.
type IndexState struct {
	// Root is the watched directory the table was built over.
	Root string
	// Files is the per-file state, sorted by path.
	Files []FileState
}

// FileState is one watched file's index record.
type FileState struct {
	// Path is relative to the watched root.
	Path string `json:"path"`
	// Lang is "minipl" or "go".
	Lang string `json:"lang"`
	// Key is the content-addressed cache key of the file's last
	// successfully indexed content ("" while errored).
	Key string `json:"hash,omitempty"`
	// Size and ModTimeNs are the stat fingerprint of the last indexed
	// content, used to skip unchanged files on restart.
	Size      int64 `json:"size"`
	ModTimeNs int64 `json:"mtimeNs"`
	// Status is "ok" or "error"; Error carries the message when
	// Status is "error".
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
	// Mode records how the file was last brought up to date: "cold"
	// (first analysis), "incremental" (additive Session edit), "full"
	// (non-additive reanalysis), or "warm" (content already indexed —
	// a restart, rename, or duplicate content).
	Mode string `json:"mode"`
	// Procs is the analyzed program's procedure count (0 on error).
	Procs int `json:"procs"`
}

// SaveStats reports one completed checkpoint write.
type SaveStats struct {
	// Bytes is the checkpoint file's size; Duration the end-to-end
	// encode+fsync+rename wall time.
	Bytes    int64
	Duration time.Duration
	Entries  int
	Sessions int
}

// Store is a handle on one state directory.
type Store struct {
	dir string

	// failAfterTemp, when set, aborts Save after the temporary file is
	// written but before the rename — simulating a process killed
	// mid-checkpoint. Tests use it to pin the crash-safety of the
	// rename protocol; production code never sets it.
	failAfterTemp bool
}

// Open prepares dir as a state directory, creating it if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty state directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Path returns the checkpoint file's path.
func (s *Store) Path() string { return filepath.Join(s.dir, checkpointFile) }

// Save atomically replaces the checkpoint with cp: encode to a
// temporary file, fsync it, rename over the previous checkpoint, and
// fsync the directory so the rename itself is durable. A crash at any
// point leaves either the old snapshot or the new one — never a
// partial file under the checkpoint name.
func (s *Store) Save(cp *Checkpoint) (SaveStats, error) {
	start := time.Now()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(cp); err != nil {
		return SaveStats{}, fmt.Errorf("store: encode: %w", err)
	}
	sum := sha256.Sum256(payload.Bytes())

	var file bytes.Buffer
	file.WriteString(magic)
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(payload.Len()))
	file.Write(lenBuf[:])
	file.Write(sum[:])
	file.Write(payload.Bytes())

	tmp := filepath.Join(s.dir, tempFile)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return SaveStats{}, fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(file.Bytes()); err != nil {
		f.Close()
		return SaveStats{}, fmt.Errorf("store: write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return SaveStats{}, fmt.Errorf("store: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return SaveStats{}, fmt.Errorf("store: close: %w", err)
	}
	if s.failAfterTemp {
		return SaveStats{}, fmt.Errorf("store: simulated crash before rename")
	}
	if err := os.Rename(tmp, s.Path()); err != nil {
		return SaveStats{}, fmt.Errorf("store: publish: %w", err)
	}
	syncDir(s.dir)
	return SaveStats{
		Bytes:    int64(file.Len()),
		Duration: time.Since(start),
		Entries:  len(cp.Entries),
		Sessions: len(cp.Sessions),
	}, nil
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Best-effort: some filesystems reject directory fsync, and the
// rename is already atomic with respect to crashes of this process.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// Load reads the checkpoint. A missing file returns (nil, nil) — a
// clean cold start. Any damage returns an error wrapping ErrCorrupt;
// callers log it and cold-start, they never fail.
func (s *Store) Load() (*Checkpoint, error) {
	data, err := os.ReadFile(s.Path())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	header := len(magic) + 8 + sha256.Size
	if len(data) < header {
		return nil, fmt.Errorf("%w: truncated header (%d bytes)", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic or unknown version", ErrCorrupt)
	}
	want := binary.BigEndian.Uint64(data[len(magic) : len(magic)+8])
	sum := data[len(magic)+8 : header]
	payload := data[header:]
	if uint64(len(payload)) != want {
		return nil, fmt.Errorf("%w: payload is %d bytes, header promised %d", ErrCorrupt, len(payload), want)
	}
	if got := sha256.Sum256(payload); !bytes.Equal(got[:], sum) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	cp := new(Checkpoint)
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(cp); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrCorrupt, err)
	}
	return cp, nil
}
