package store

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sideeffect"
	"sideeffect/internal/cache"
)

const testSrc = `
program storetest;
global g, h;

proc leaf(ref x)
begin
  x := h
end;

proc mid(ref y)
begin
  call leaf(y)
end;

begin
  call mid(g)
end.
`

// testCheckpoint builds a small but fully populated checkpoint: one
// rendered entry, one session, one index record.
func testCheckpoint(t *testing.T) *Checkpoint {
	t.Helper()
	a, err := sideeffect.Analyze(testSrc)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	defer a.Release()
	key := cache.Key(testSrc)
	snap, err := BuildEntry(a, key, "minipl", nil, "")
	if err != nil {
		t.Fatalf("BuildEntry: %v", err)
	}
	return &Checkpoint{
		SavedUnixNs: 12345,
		Entries:     []*EntrySnapshot{snap},
		Sessions: []SessionSnapshot{
			{ID: "s-3", Source: testSrc, Edits: 4, Incremental: 3, Full: 1},
		},
		NextSession: 7,
		Index: &IndexState{
			Root: "/tmp/watched",
			Files: []FileState{{
				Path: "main.mpl", Lang: "minipl", Key: key,
				Size: int64(len(testSrc)), ModTimeNs: 99, Status: "ok",
				Mode: "cold", Procs: 2,
			}},
		},
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cp := testCheckpoint(t)
	stats, err := st.Save(cp)
	if err != nil {
		t.Fatalf("Save: %v", err)
	}
	if stats.Bytes <= 0 || stats.Entries != 1 || stats.Sessions != 1 {
		t.Fatalf("stats = %+v, want bytes>0, 1 entry, 1 session", stats)
	}
	got, err := st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), tempFile)); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("temp file left behind after successful save")
	}
}

func TestLoadMissingIsCleanColdStart(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	cp, err := st.Load()
	if cp != nil || err != nil {
		t.Fatalf("Load on empty dir = (%v, %v), want (nil, nil)", cp, err)
	}
}

// TestLoadCorruption pins that every class of on-disk damage degrades
// to ErrCorrupt — never a decode of garbage, never a fatal error class
// the daemon would refuse to start over.
func TestLoadCorruption(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if _, err := st.Save(testCheckpoint(t)); err != nil {
		t.Fatalf("Save: %v", err)
	}
	pristine, err := os.ReadFile(st.Path())
	if err != nil {
		t.Fatalf("read checkpoint: %v", err)
	}

	damage := map[string]func([]byte) []byte{
		"truncated header":  func(b []byte) []byte { return b[:8] },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-7] },
		"bad magic":         func(b []byte) []byte { c := append([]byte(nil), b...); c[0] ^= 0xff; return c },
		"unknown version":   func(b []byte) []byte { c := append([]byte(nil), b...); c[len(magic)-1]++; return c },
		"flipped bit":       func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)-1] ^= 0x01; return c },
		"extra tail":        func(b []byte) []byte { return append(append([]byte(nil), b...), 0xAB) },
	}
	for name, corrupt := range damage {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(st.Path(), corrupt(pristine), 0o644); err != nil {
				t.Fatalf("write damaged file: %v", err)
			}
			cp, err := st.Load()
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Load = (%v, %v), want ErrCorrupt", cp, err)
			}
			if cp != nil {
				t.Fatalf("corrupt load returned a checkpoint: %+v", cp)
			}
		})
	}
}

// TestCrashMidCheckpointKeepsPreviousSnapshot simulates a process
// killed after writing the temporary file but before the rename: the
// previous published snapshot must still load, and the stray temp file
// must not shadow it.
func TestCrashMidCheckpointKeepsPreviousSnapshot(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	first := testCheckpoint(t)
	if _, err := st.Save(first); err != nil {
		t.Fatalf("Save(first): %v", err)
	}

	second := testCheckpoint(t)
	second.SavedUnixNs = 99999
	second.NextSession = 42
	st.failAfterTemp = true
	if _, err := st.Save(second); err == nil {
		t.Fatalf("Save with failAfterTemp succeeded, want simulated crash")
	}
	st.failAfterTemp = false
	if _, err := os.Stat(filepath.Join(st.Dir(), tempFile)); err != nil {
		t.Fatalf("simulated crash left no temp file: %v", err)
	}

	got, err := st.Load()
	if err != nil {
		t.Fatalf("Load after simulated crash: %v", err)
	}
	if got == nil || got.SavedUnixNs != first.SavedUnixNs || got.NextSession != first.NextSession {
		t.Fatalf("after crash, Load = %+v, want the first snapshot", got)
	}

	// The next successful save recovers: it overwrites the stray temp
	// and publishes cleanly.
	if _, err := st.Save(second); err != nil {
		t.Fatalf("Save after crash: %v", err)
	}
	got, err = st.Load()
	if err != nil || got.NextSession != 42 {
		t.Fatalf("Load after recovery = (%+v, %v), want second snapshot", got, err)
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatalf("Open(\"\") succeeded, want error")
	}
}

// TestEntryFingerprintDetectsDamage pins the in-memory integrity hook
// the server's cache validator relies on: mutating any persisted field
// changes the fingerprint.
func TestEntryFingerprintDetectsDamage(t *testing.T) {
	cp := testCheckpoint(t)
	snap := cp.Entries[0]
	orig := snap.Fingerprint()
	snap.JSON[0] ^= 0x01
	if snap.Fingerprint() == orig {
		t.Fatalf("fingerprint unchanged after JSON mutation")
	}
	snap.JSON[0] ^= 0x01
	if snap.Fingerprint() != orig {
		t.Fatalf("fingerprint not restored after undoing mutation")
	}
	snap.Text += "x"
	if snap.Fingerprint() == orig {
		t.Fatalf("fingerprint unchanged after text mutation")
	}
}
