package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func openJournalT(t *testing.T, path string) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	return j, recs
}

// TestJournalRoundTrip pins the basic contract: appended records come
// back verbatim, in order, across a close/reopen cycle.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, recs := openJournalT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := [][]byte{[]byte("one"), []byte(`{"type":"submit","job":"job-1"}`), {}, []byte("four\x00bytes")}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	j2, got := openJournalT(t, path)
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	// The reopened journal keeps appending after the replayed prefix.
	if err := j2.Append([]byte("five")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	j2.Close()
	j3, got3 := openJournalT(t, path)
	defer j3.Close()
	if len(got3) != 5 || string(got3[4]) != "five" {
		t.Fatalf("after reopen+append replayed %d records (last %q), want 5 ending in \"five\"", len(got3), got3[len(got3)-1])
	}
}

// TestJournalTornTail simulates a process dying mid-append: the file
// ends in a half-written frame. Replay must recover exactly the
// acknowledged prefix, truncate the garbage, and accept new appends.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openJournalT(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	// Tear the tail at several depths: inside the payload, inside the
	// checksum, and inside the length word.
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 5, 11} {
		torn := append([]byte(nil), whole[:len(whole)-cut]...)
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		j2, recs := openJournalT(t, path)
		if len(recs) != 2 {
			t.Fatalf("cut %d: replayed %d records, want 2", cut, len(recs))
		}
		if err := j2.Append([]byte("after-crash")); err != nil {
			t.Fatalf("cut %d: Append after recovery: %v", cut, err)
		}
		j2.Close()
		j3, recs3 := openJournalT(t, path)
		j3.Close()
		if len(recs3) != 3 || string(recs3[2]) != "after-crash" {
			t.Fatalf("cut %d: post-recovery replay %d records", cut, len(recs3))
		}
		if err := os.WriteFile(path, whole, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestJournalCorruptRecord flips a payload byte: the damaged record
// and everything after it are dropped (the frame checksum catches it),
// never served back as data.
func TestJournalCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openJournalT(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the second record's payload.
	frame := 4 + journalSumLen + len("record-0")
	data[len(journalMagic)+frame+4+journalSumLen] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, recs := openJournalT(t, path)
	j2.Close()
	if len(recs) != 1 || string(recs[0]) != "record-0" {
		t.Fatalf("corrupt middle: replayed %v, want just record-0", recs)
	}
}

// TestJournalBadMagic treats a foreign or damaged header as an empty
// journal rather than decodable frames.
func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	if err := os.WriteFile(path, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, recs := openJournalT(t, path)
	defer j.Close()
	if len(recs) != 0 {
		t.Fatalf("bad magic replayed %d records", len(recs))
	}
	if err := j.Append([]byte("fresh")); err != nil {
		t.Fatalf("Append over reset journal: %v", err)
	}
}

// TestJournalRewrite pins compaction: Rewrite publishes exactly the
// surviving records, the file shrinks, and appends continue after it.
func TestJournalRewrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	j, _ := openJournalT(t, path)
	for i := 0; i < 10; i++ {
		if err := j.Append(bytes.Repeat([]byte{byte(i)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	before := j.Size()
	keep := [][]byte{[]byte("alpha"), []byte("beta")}
	if err := j.Rewrite(keep); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	if j.Size() >= before {
		t.Fatalf("compaction did not shrink: %d -> %d bytes", before, j.Size())
	}
	if err := j.Append([]byte("gamma")); err != nil {
		t.Fatalf("Append after Rewrite: %v", err)
	}
	j.Close()
	j2, recs := openJournalT(t, path)
	j2.Close()
	if len(recs) != 3 || string(recs[0]) != "alpha" || string(recs[1]) != "beta" || string(recs[2]) != "gamma" {
		t.Fatalf("post-compaction replay = %q", recs)
	}
}
