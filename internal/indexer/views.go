package indexer

import (
	"fmt"
	"strings"
)

// This file is the indexer's read side: the JSON views served on
// /index/status and /index/files, and the Prometheus lines merged
// into /metrics. The method set matches the server's IndexView
// interface structurally — no import in either direction.

// statusView is the /index/status payload.
type statusView struct {
	Root             string `json:"root"`
	Watching         bool   `json:"watching"`
	Files            int    `json:"files"`
	Scans            int64  `json:"scans"`
	Batches          int64  `json:"batches"`
	Analyses         int64  `json:"analyses"`
	IncrementalEdits int64  `json:"incrementalEdits"`
	FullReanalyses   int64  `json:"fullReanalyses"`
	Warm             int64  `json:"warm"`
	Deletes          int64  `json:"deletes"`
	Renames          int64  `json:"renames"`
	Errors           int64  `json:"errors"`
	LastScanUnixNs   int64  `json:"lastScanUnixNs,omitempty"`
}

// fileView is one row of the /index/files table.
type fileView struct {
	Path      string `json:"path"`
	Lang      string `json:"lang"`
	Key       string `json:"key"`
	Size      int64  `json:"size"`
	ModTimeNs int64  `json:"modTimeNs"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
	Mode      string `json:"mode,omitempty"`
	Procs     int    `json:"procs"`
}

// Stats returns a copy of the counters (test hook and daemon logging).
func (ix *Indexer) Stats() Stats {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.stats
}

// Status implements the server's IndexView.
func (ix *Indexer) Status() any {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return statusView{
		Root:             ix.cfg.Root,
		Watching:         ix.watching,
		Files:            len(ix.files),
		Scans:            ix.stats.Scans,
		Batches:          ix.stats.Batches,
		Analyses:         ix.stats.Analyses,
		IncrementalEdits: ix.stats.IncrementalEdits,
		FullReanalyses:   ix.stats.FullReanalyses,
		Warm:             ix.stats.Warm,
		Deletes:          ix.stats.Deletes,
		Renames:          ix.stats.Renames,
		Errors:           ix.stats.Errors,
		LastScanUnixNs:   ix.lastScanNs,
	}
}

// Files implements the server's IndexView: the per-file table in path
// order.
func (ix *Indexer) Files() any {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	out := make([]fileView, 0, len(ix.files))
	for _, path := range sortedPaths(ix.files) {
		st := ix.files[path]
		out = append(out, fileView{
			Path: st.path, Lang: st.lang, Key: st.key,
			Size: st.size, ModTimeNs: st.modTimeNs,
			Status: st.status, Error: st.errMsg,
			Mode: st.mode, Procs: st.procs,
		})
	}
	return out
}

// MetricsLines implements the server's IndexView: fully formed
// Prometheus exposition lines for the indexer counters.
func (ix *Indexer) MetricsLines() string {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	var b strings.Builder
	b.WriteString("# HELP modand_index_files Files currently tracked by the watch-mode indexer.\n")
	b.WriteString("# TYPE modand_index_files gauge\n")
	fmt.Fprintf(&b, "modand_index_files %d\n", len(ix.files))
	counter := func(name, help string, v int64) {
		if help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&b, "# TYPE %s counter\n", name)
		fmt.Fprintf(&b, "%s %d\n", name, v)
	}
	counter("modand_index_scans_total", "Directory scans completed.", ix.stats.Scans)
	counter("modand_index_batches_total", "Debounced change batches processed.", ix.stats.Batches)
	counter("modand_index_analyses_total", "Analyses the indexer ran (any mode).", ix.stats.Analyses)
	counter("modand_index_incremental_total", "Changes absorbed by incremental propagation.", ix.stats.IncrementalEdits)
	counter("modand_index_full_total", "Changes requiring a full (re)analysis.", ix.stats.FullReanalyses)
	counter("modand_index_warm_total", "Changes satisfied by already-cached content (renames, restarts, reverts).", ix.stats.Warm)
	counter("modand_index_deletes_total", "Tracked files deleted.", ix.stats.Deletes)
	counter("modand_index_renames_total", "Deletions matched to same-content creations.", ix.stats.Renames)
	counter("modand_index_errors_total", "Files whose analysis failed.", ix.stats.Errors)
	return b.String()
}
