package indexer

import "sideeffect/internal/store"

// This file round-trips the indexer's processed view through the
// persisted checkpoint, so a restarted daemon's first scan recognizes
// unchanged files by their stat fingerprints and runs nothing at all
// for them — the restored server cache already holds their results.

// RestoreState primes the indexer from a persisted IndexState. It
// must be called before Start. State recorded for a different root is
// ignored (the operator re-pointed the watcher; everything is cold).
// Classification sessions are not persisted: the first change to a
// restored MiniPL file rebuilds its session (a full analysis), and
// subsequent additive edits take the incremental path again.
//
// It returns how many files were primed.
func (ix *Indexer) RestoreState(st *store.IndexState) int {
	if st == nil || st.Root != ix.cfg.Root {
		return 0
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	n := 0
	for _, f := range st.Files {
		if f.Path == moduleStatePath && f.Lang == "go-module" {
			if !ix.cfg.GoModule {
				continue // module mode is off in this run
			}
		} else if lang, ok := ix.exts["."+extOf(f.Path)]; !ok || lang != f.Lang {
			continue // that frontend is not enabled in this run
		}
		ix.files[f.Path] = &fileState{
			path: f.Path, lang: f.Lang, key: f.Key,
			size: f.Size, modTimeNs: f.ModTimeNs,
			status: f.Status, errMsg: f.Error,
			mode: f.Mode, procs: f.Procs,
		}
		// Priming seen means a stat-identical file raises no event at
		// all on the first scan; a changed file differs from this
		// fingerprint and is re-processed. The synthetic module entry
		// is not a disk file: priming it into seen would make the
		// first scan's deletion sweep discard it.
		if f.Path != moduleStatePath {
			ix.seen[f.Path] = statFP{size: f.Size, modTimeNs: f.ModTimeNs}
		}
		n++
	}
	ix.stats.Files = len(ix.files)
	return n
}

// ExportState renders the processed view for checkpointing, in path
// order.
func (ix *Indexer) ExportState() *store.IndexState {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	st := &store.IndexState{Root: ix.cfg.Root}
	for _, path := range sortedPaths(ix.files) {
		f := ix.files[path]
		st.Files = append(st.Files, store.FileState{
			Path: f.path, Lang: f.lang, Key: f.key,
			Size: f.size, ModTimeNs: f.modTimeNs,
			Status: f.status, Error: f.errMsg,
			Mode: f.mode, Procs: f.procs,
		})
	}
	return st
}

// extOf returns the extension of a slash-separated path, without the
// dot.
func extOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		switch path[i] {
		case '.':
			return path[i+1:]
		case '/':
			return ""
		}
	}
	return ""
}
