package indexer

import (
	"os"
	"path/filepath"
	"sync"

	"sideeffect"
	"sideeffect/internal/cache"
	"sideeffect/internal/gofront"
	"sideeffect/internal/store"
)

// process absorbs one debounced batch: deletions first (capturing old
// keys so a same-content create elsewhere in the batch is recognized
// as a rename), then creates and modifications in path order.
//
// Per changed file the ladder is, cheapest first:
//   - content already in the target cache → warm, nothing to run;
//   - known MiniPL file with a live classification session → Session.Edit,
//     which takes the incremental path for additive deltas;
//   - otherwise a full analysis (mode "cold" for files never seen,
//     "full" for known files whose session was evicted or absent).
//
// Whatever ran, the rendered snapshot is installed into the target so
// the next request for that content is served warm.
func (ix *Indexer) process(b *batch) {
	ix.mu.Lock()
	ix.stats.Batches++
	// Deletions: drop the processed view now; remember old keys for
	// rename matching. A path created and deleted inside one batch has
	// no processed view and is skipped outright.
	deletedKeys := make(map[string]string) // old key → old path
	deletedStates := make(map[string]*fileState)
	for _, path := range sortedPaths(b.deleted) {
		old, ok := ix.files[path]
		if !ok {
			continue
		}
		delete(ix.files, path)
		deletedKeys[old.key] = path
		deletedStates[path] = old
	}
	ix.mu.Unlock()

	renamed := make(map[string]bool) // deleted paths matched to a create
	for _, path := range sortedPaths(b.changed) {
		ix.processFile(path, deletedKeys, deletedStates, renamed)
	}

	ix.mu.Lock()
	for path := range deletedStates {
		if renamed[path] {
			ix.stats.Renames++
		} else {
			ix.stats.Deletes++
		}
		ix.sessions.drop(path)
	}
	ix.stats.Files = len(ix.files)
	ix.mu.Unlock()

	// Module mode: any Go change in the batch re-derives the one
	// whole-module result (content addressing makes an unchanged
	// module warm, e.g. after a revert or a touch).
	if ix.cfg.GoModule && b.touchesGo(ix.exts) {
		ix.analyzeModule()
	}
	ix.logf("indexer: batch: %d changed, %d deleted", len(b.changed), len(b.deleted))
}

// touchesGo reports whether the batch contains any Go file event.
func (b *batch) touchesGo(exts map[string]string) bool {
	for path := range b.changed {
		if exts[filepath.Ext(path)] == "go" {
			return true
		}
	}
	for path := range b.deleted {
		if exts[filepath.Ext(path)] == "go" {
			return true
		}
	}
	return false
}

// moduleStatePath is the synthetic processed-view row carrying the
// whole-module result; it is not a file on disk (real rows are
// extension-addressed relative paths, which this can never be).
const moduleStatePath = "(module)"

// analyzeModule runs — or recognizes as warm — the whole-module Go
// analysis and installs it under a key derived from the module's
// content hash.
func (ix *Indexer) analyzeModule() {
	ix.mu.Lock()
	old := ix.files[moduleStatePath]
	ix.mu.Unlock()
	st := &fileState{path: moduleStatePath, lang: "go-module", status: "ok"}
	defer ix.setState(moduleStatePath, st)
	pkg, err := gofront.LoadModule(ix.cfg.Root, nil)
	if err != nil {
		ix.fail(st, err)
		return
	}
	st.key = cache.Key("go-module\x00" + pkg.Hash)
	if ix.target.HasEntry(st.key) {
		st.mode = "warm"
		if old != nil {
			st.procs = old.procs
		}
		ix.bumpWarm()
		return
	}
	a := sideeffect.AnalyzeProgramWith(pkg.Prog, ix.cfg.Opts)
	defer a.Release()
	snap, err := store.BuildEntry(a, st.key, "go-module", pkg.Notes, pkg.ConfidenceReport())
	if err != nil {
		ix.fail(st, err)
		return
	}
	if err := ix.target.InstallSnapshot(snap); err != nil {
		ix.fail(st, err)
		return
	}
	mode := "full"
	if old == nil {
		mode = "cold"
	}
	st.mode = mode
	st.procs = len(a.Procedures())
	ix.bumpAnalysis(mode)
}

// processFile absorbs one created or modified file.
func (ix *Indexer) processFile(path string, deletedKeys map[string]string, deletedStates map[string]*fileState, renamed map[string]bool) {
	lang, ok := ix.exts[filepath.Ext(path)]
	if !ok {
		return
	}
	data, err := os.ReadFile(filepath.Join(ix.cfg.Root, filepath.FromSlash(path)))
	if err != nil {
		return // raced a deletion; the next scan records it
	}
	src := string(data)
	key := keyFor(lang, src)

	ix.mu.Lock()
	old := ix.files[path]
	fp := ix.seen[path]
	ix.mu.Unlock()
	if old != nil && old.key == key && old.status == "ok" {
		// Touched but content-identical: refresh the stat fingerprint only.
		ix.setState(path, &fileState{path: path, lang: lang, key: key,
			size: fp.size, modTimeNs: fp.modTimeNs,
			status: "ok", mode: old.mode, procs: old.procs})
		return
	}

	st := &fileState{path: path, lang: lang, key: key, size: fp.size, modTimeNs: fp.modTimeNs, status: "ok"}
	if oldPath, ok := deletedKeys[key]; ok && ix.target.HasEntry(key) {
		// A file deleted in this batch reappeared elsewhere with the same
		// content: a rename. Content addressing means zero re-analysis.
		renamed[oldPath] = true
		st.mode = "warm"
		if prev := deletedStates[oldPath]; prev != nil {
			st.procs = prev.procs
		}
		ix.bumpWarm()
		ix.setState(path, st)
		return
	}
	if ix.target.HasEntry(key) {
		// Already-known content (a restart over unchanged sources, or a
		// revert to a previously indexed version): warm, nothing to run.
		st.mode = "warm"
		if old != nil {
			st.procs = old.procs
		}
		ix.bumpWarm()
		ix.setState(path, st)
		return
	}

	switch lang {
	case "minipl":
		ix.analyzeMiniPL(path, src, key, old != nil, st)
	case "go":
		if ix.cfg.GoModule {
			// Folded into the batch's one whole-module pass; the row
			// just tracks the file's fingerprint.
			st.mode = "module"
		} else {
			ix.analyzeGo(path, src, key, old != nil, st)
		}
	}
	ix.setState(path, st)
}

// analyzeMiniPL runs (or incrementally updates) the MiniPL analysis
// for path and installs the rendered snapshot.
func (ix *Indexer) analyzeMiniPL(path, src, key string, known bool, st *fileState) {
	sess := ix.sessions.get(path)
	var mode string
	if sess != nil {
		em, err := sess.Edit(src)
		if err != nil {
			// The session may be broken now; drop it so the next change
			// takes a clean full analysis.
			ix.sessions.drop(path)
			ix.fail(st, err)
			return
		}
		mode = em.String()
	} else {
		var err error
		sess, err = sideeffect.NewSession(src, ix.cfg.Opts)
		if err != nil {
			ix.fail(st, err)
			return
		}
		ix.sessions.put(path, sess)
		mode = "full"
		if !known {
			mode = "cold"
		}
	}
	a := sess.Analysis()
	snap, err := store.BuildEntry(a, key, "minipl", nil, "")
	if err != nil {
		ix.fail(st, err)
		return
	}
	if err := ix.target.InstallSnapshot(snap); err != nil {
		ix.fail(st, err)
		return
	}
	st.mode = mode
	st.procs = len(a.Procedures())
	ix.bumpAnalysis(mode)
}

// analyzeGo runs the Go frontend over path as a single-file package
// (the same lowering the server's lang=go endpoints use, so the cache
// key and rendered bytes match) and installs the snapshot.
func (ix *Indexer) analyzeGo(path, src, key string, known bool, st *fileState) {
	res, err := sideeffect.AnalyzeGoSource("source.go", src, ix.cfg.Opts)
	if err != nil {
		ix.fail(st, err)
		return
	}
	defer res.Analysis.Release()
	snap, err := store.BuildEntry(res.Analysis, key, "go", res.Pkg.Notes, res.Pkg.ConfidenceReport())
	if err != nil {
		ix.fail(st, err)
		return
	}
	if err := ix.target.InstallSnapshot(snap); err != nil {
		ix.fail(st, err)
		return
	}
	mode := "full"
	if !known {
		mode = "cold"
	}
	st.mode = mode
	st.procs = len(res.Analysis.Procedures())
	ix.bumpAnalysis(mode)
}

func (ix *Indexer) fail(st *fileState, err error) {
	st.status = "error"
	st.errMsg = err.Error()
	st.mode = ""
	ix.mu.Lock()
	ix.stats.Errors++
	ix.mu.Unlock()
	ix.logf("indexer: %s: %v", st.path, err)
}

func (ix *Indexer) setState(path string, st *fileState) {
	ix.mu.Lock()
	ix.files[path] = st
	ix.stats.Files = len(ix.files)
	ix.mu.Unlock()
}

func (ix *Indexer) bumpWarm() {
	ix.mu.Lock()
	ix.stats.Warm++
	ix.mu.Unlock()
}

func (ix *Indexer) bumpAnalysis(mode string) {
	ix.mu.Lock()
	ix.stats.Analyses++
	if mode == "incremental" {
		ix.stats.IncrementalEdits++
	} else {
		ix.stats.FullReanalyses++
	}
	ix.mu.Unlock()
}

// sessionTable is the bounded LRU of per-file MiniPL sessions kept so
// repeated edits to the same file can take the incremental path. It
// is only touched from the watch loop (plus closeAll after the loop
// exits), so a plain mutex around map+order suffices.
type sessionTable struct {
	mu    sync.Mutex
	max   int
	order []string // least recently used first
	m     map[string]*sideeffect.Session
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{max: max, m: make(map[string]*sideeffect.Session)}
}

func (t *sessionTable) get(path string) *sideeffect.Session {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.m[path]
	if !ok {
		return nil
	}
	t.bump(path)
	return s
}

func (t *sessionTable) put(path string, s *sideeffect.Session) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if old, ok := t.m[path]; ok {
		old.Close()
		t.m[path] = s
		t.bump(path)
		return
	}
	t.m[path] = s
	t.order = append(t.order, path)
	for len(t.m) > t.max {
		victim := t.order[0]
		t.order = t.order[1:]
		t.m[victim].Close()
		delete(t.m, victim)
	}
}

func (t *sessionTable) drop(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.m[path]; ok {
		s.Close()
		delete(t.m, path)
		t.remove(path)
	}
}

func (t *sessionTable) closeAll() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.m {
		s.Close()
	}
	t.m = make(map[string]*sideeffect.Session)
	t.order = nil
}

func (t *sessionTable) bump(path string) {
	t.remove(path)
	t.order = append(t.order, path)
}

func (t *sessionTable) remove(path string) {
	for i, p := range t.order {
		if p == path {
			t.order = append(t.order[:i], t.order[i+1:]...)
			return
		}
	}
}
