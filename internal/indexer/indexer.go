// Package indexer implements the watch-mode persistent indexer: a
// daemon-side loop that keeps a directory tree's analyses warm. It
// polls the tree for changes (stdlib-only stat fingerprints — no
// platform watcher dependency), debounces edit bursts into batches,
// classifies each change as additive-incremental or full-reanalysis,
// renders the result through the same pipeline the server uses, and
// installs it into the server's content-addressed cache so the first
// /analyze or /lint for that content is a warm hit.
//
// The package knows the server only through the Target interface, and
// the server knows the indexer only through its IndexView-shaped
// methods (Status, Files, MetricsLines) — the dependency between the
// two stays one-way in each direction, through interfaces.
package indexer

import (
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"sideeffect"
	"sideeffect/internal/cache"
	"sideeffect/internal/gofront"
	"sideeffect/internal/store"
)

// Target is where the indexer publishes rendered results: the serving
// layer's snapshot hooks. InstallSnapshot makes future requests for
// the entry's content warm hits; HasEntry lets the indexer classify
// renames and restart-unchanged files as warm without re-analyzing.
type Target interface {
	InstallSnapshot(*store.EntrySnapshot) error
	HasEntry(key string) bool
}

// Config shapes one indexer.
type Config struct {
	// Root is the directory tree to watch.
	Root string
	// Langs selects which frontends index which extensions: "minipl"
	// claims .mpl files, "go" claims .go files. Empty means both.
	Langs []string
	// Poll is the scan interval; Debounce is how long the tree must be
	// quiet after the last detected change before a batch is processed
	// (so an edit burst coalesces into one batch).
	Poll     time.Duration
	Debounce time.Duration
	// MaxSessions bounds the per-file MiniPL session table used to
	// classify edits as incremental; least recently edited files fall
	// back to full reanalysis when evicted.
	MaxSessions int
	// GoModule switches the Go frontend to whole-module indexing: a
	// batch touching any .go file triggers one shared-program analysis
	// of the module rooted at Root (cross-package calls resolved,
	// closed interfaces devirtualized) instead of per-file
	// single-package lowerings. The result is installed under a key
	// derived from the module's content hash, so an unchanged module is
	// warm across restarts.
	GoModule bool
	// Opts configures the analyses the indexer runs. Profiling is
	// forced off: indexer work must never move the server's per-stage
	// timers, which meter request-path computation only.
	Opts sideeffect.Options
	// Logf, when non-nil, receives progress lines.
	Logf func(format string, args ...any)
}

func (c *Config) fill() {
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Debounce <= 0 {
		c.Debounce = 500 * time.Millisecond
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	c.Opts.Profile = false
}

// Stats are the indexer's monotonic counters (plus the Files gauge),
// exposed for tests and rendered into /metrics.
type Stats struct {
	Files            int
	Scans            int64
	Batches          int64
	Analyses         int64
	IncrementalEdits int64
	FullReanalyses   int64
	Warm             int64
	Deletes          int64
	Renames          int64
	Errors           int64
}

// statFP is a file's cheap change fingerprint.
type statFP struct {
	size      int64
	modTimeNs int64
}

// fileState is the indexer's processed view of one file, the unit the
// /index/files table and the persisted IndexState are built from.
type fileState struct {
	path      string // slash-separated, relative to Root
	lang      string
	key       string // content address in the server cache
	size      int64
	modTimeNs int64
	status    string // "ok" or "error"
	errMsg    string
	mode      string // cold | incremental | full | warm: how the last change was absorbed
	procs     int
}

// Indexer is one watch loop over one directory tree.
type Indexer struct {
	cfg    Config
	target Target
	exts   map[string]string // ".mpl" → "minipl", ".go" → "go" (enabled langs only)

	mu         sync.Mutex
	files      map[string]*fileState // processed view, keyed by relative path
	seen       map[string]statFP     // last-scan stat per path (change detection)
	stats      Stats
	watching   bool
	lastScanNs int64

	sessions *sessionTable

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New builds an indexer over cfg.Root publishing into target. Call
// Start to begin watching.
func New(cfg Config, target Target) *Indexer {
	cfg.fill()
	exts := map[string]string{}
	langs := cfg.Langs
	if len(langs) == 0 {
		langs = []string{"minipl", "go"}
	}
	for _, l := range langs {
		switch strings.TrimSpace(l) {
		case "minipl":
			exts[".mpl"] = "minipl"
		case "go":
			exts[".go"] = "go"
		}
	}
	return &Indexer{
		cfg:      cfg,
		target:   target,
		exts:     exts,
		files:    make(map[string]*fileState),
		seen:     make(map[string]statFP),
		sessions: newSessionTable(cfg.MaxSessions),
	}
}

func (ix *Indexer) logf(format string, args ...any) {
	if ix.cfg.Logf != nil {
		ix.cfg.Logf(format, args...)
	}
}

// Start launches the watch loop. The first scan runs immediately, so
// files already on disk are indexed (or recognized as warm after a
// restore) without waiting a poll interval.
func (ix *Indexer) Start() {
	ix.mu.Lock()
	ix.watching = true
	ix.mu.Unlock()
	ix.stop = make(chan struct{})
	ix.done = make(chan struct{})
	go ix.loop()
}

// Stop shuts the loop down, processing any still-pending batch first
// so the state exported afterward reflects what is on disk. It then
// releases every classification session's storage. Idempotent.
func (ix *Indexer) Stop() {
	if ix.stop == nil {
		return
	}
	ix.stopOnce.Do(func() { close(ix.stop) })
	<-ix.done
	ix.sessions.closeAll()
	ix.mu.Lock()
	ix.watching = false
	ix.mu.Unlock()
}

// loop is the watcher: poll-scan for changes, debounce, process.
// Debounce is measured from the last *detected* change, so a burst of
// edits keeps extending the quiet window and lands as one batch.
func (ix *Indexer) loop() {
	defer close(ix.done)
	ticker := time.NewTicker(ix.cfg.Poll)
	defer ticker.Stop()
	pending := newBatch()
	var lastEvent time.Time
	if ix.scanInto(pending) > 0 {
		lastEvent = time.Now()
	}
	for {
		if !pending.empty() && time.Since(lastEvent) >= ix.cfg.Debounce {
			ix.process(pending)
			pending = newBatch()
		}
		select {
		case <-ix.stop:
			if !pending.empty() {
				ix.process(pending)
			}
			return
		case <-ticker.C:
			if ix.scanInto(pending) > 0 {
				lastEvent = time.Now()
			}
		}
	}
}

// batch accumulates detected-but-unprocessed changes between scans.
type batch struct {
	changed map[string]struct{} // created or modified, by relative path
	deleted map[string]struct{}
}

func newBatch() *batch {
	return &batch{changed: make(map[string]struct{}), deleted: make(map[string]struct{})}
}

func (b *batch) empty() bool { return len(b.changed) == 0 && len(b.deleted) == 0 }

// scanInto walks the tree once, folding stat-level changes since the
// previous scan into pending. It returns how many new events it
// detected (zero means the tree is quiet). Hidden directories (".git",
// state dirs) are skipped.
func (ix *Indexer) scanInto(pending *batch) int {
	present := make(map[string]statFP)
	filepath.WalkDir(ix.cfg.Root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return nil // unreadable subtree: treat as absent
		}
		if d.IsDir() {
			if name := d.Name(); path != ix.cfg.Root && strings.HasPrefix(name, ".") {
				return filepath.SkipDir
			}
			return nil
		}
		if _, ok := ix.exts[filepath.Ext(path)]; !ok {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		rel, err := filepath.Rel(ix.cfg.Root, path)
		if err != nil {
			return nil
		}
		present[filepath.ToSlash(rel)] = statFP{size: info.Size(), modTimeNs: info.ModTime().UnixNano()}
		return nil
	})

	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.stats.Scans++
	ix.lastScanNs = time.Now().UnixNano()
	events := 0
	for path, fp := range present {
		if old, ok := ix.seen[path]; !ok || old != fp {
			ix.seen[path] = fp
			pending.changed[path] = struct{}{}
			delete(pending.deleted, path)
			events++
		}
	}
	for path := range ix.seen {
		if _, ok := present[path]; !ok {
			delete(ix.seen, path)
			delete(pending.changed, path)
			pending.deleted[path] = struct{}{}
			events++
		}
	}
	return events
}

// keyFor computes the server cache's content address for src under
// lang — the same derivation the HTTP handlers use, so an installed
// entry is found by the matching request. Go keys fold in the
// lowering version: results persisted by an older frontend are never
// served for bytes the new lowering interprets differently.
func keyFor(lang, src string) string {
	if lang == "go" {
		return cache.Key(fmt.Sprintf("go\x00v%d\x00", gofront.LoweringVersion) + src)
	}
	return cache.Key(src)
}

// sortedPaths returns m's keys sorted, for deterministic processing.
func sortedPaths[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
