package indexer

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sideeffect/internal/store"
)

const idxSrc = `
program incr;
global g, h;

proc leaf(ref x)
begin
  x := 1
end;

proc mid(ref y)
begin
  call leaf(y)
end;

begin
  call mid(g)
end.
`

const idxGoSrc = `package p

var counter int

func Bump(p *int) { *p++; counter++ }
`

// fakeTarget records installed snapshots, standing in for the server.
type fakeTarget struct {
	mu       sync.Mutex
	entries  map[string]*store.EntrySnapshot
	installs int
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{entries: make(map[string]*store.EntrySnapshot)}
}

func (f *fakeTarget) InstallSnapshot(snap *store.EntrySnapshot) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.entries[snap.Key] = snap
	f.installs++
	return nil
}

func (f *fakeTarget) HasEntry(key string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, ok := f.entries[key]
	return ok
}

func (f *fakeTarget) installCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.installs
}

// fastConfig is tuned so watcher tests converge in tens of
// milliseconds: scans every 2ms, batches after an 8ms quiet window.
func fastConfig(root string) Config {
	return Config{Root: root, Poll: 2 * time.Millisecond, Debounce: 8 * time.Millisecond}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func startIndexer(t *testing.T, cfg Config, target Target) *Indexer {
	t.Helper()
	ix := New(cfg, target)
	ix.Start()
	t.Cleanup(ix.Stop)
	return ix
}

// TestIndexColdStart covers the basic path: files already on disk are
// indexed on the first scan and their rendered snapshots installed
// under the same keys the server's request handlers derive.
func TestIndexColdStart(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "a.mpl"), idxSrc)
	writeFile(t, filepath.Join(dir, "b.go"), idxGoSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)

	waitFor(t, "both files indexed", func() bool { return ix.Stats().Analyses == 2 })
	if !ft.HasEntry(keyFor("minipl", idxSrc)) {
		t.Error("MiniPL snapshot not installed under the server's key")
	}
	if !ft.HasEntry(keyFor("go", idxGoSrc)) {
		t.Error("Go snapshot not installed under the server's namespaced key")
	}
	st := ix.Stats()
	if st.Files != 2 || st.FullReanalyses != 2 || st.IncrementalEdits != 0 {
		t.Errorf("stats = %+v, want 2 files, 2 cold analyses", st)
	}
	files, ok := ix.Files().([]fileView)
	if !ok || len(files) != 2 {
		t.Fatalf("Files() = %#v, want 2 rows", ix.Files())
	}
	if files[0].Path != "a.mpl" || files[0].Mode != "cold" || files[0].Procs != 3 {
		t.Errorf("a.mpl row = %+v, want mode cold, 3 procs", files[0])
	}
}

// TestDebounceCoalescesBursts pins that an edit burst lands as one
// batch analyzing only the final content — not one analysis per write.
func TestDebounceCoalescesBursts(t *testing.T) {
	dir := t.TempDir()
	ft := newFakeTarget()
	cfg := fastConfig(dir)
	cfg.Debounce = 150 * time.Millisecond
	ix := startIndexer(t, cfg, ft)
	waitFor(t, "first scan", func() bool { return ix.Stats().Scans >= 1 })

	path := filepath.Join(dir, "burst.mpl")
	final := strings.Replace(idxSrc, "x := 1", "x := 1; h := g", 1)
	for i, content := range []string{idxSrc, strings.Replace(idxSrc, "x := 1", "x := 2", 1), final} {
		writeFile(t, path, content)
		if i < 2 {
			time.Sleep(20 * time.Millisecond) // well inside the quiet window
		}
	}
	waitFor(t, "burst batch", func() bool { return ix.Stats().Batches >= 1 })
	st := ix.Stats()
	if st.Analyses != 1 {
		t.Errorf("burst of 3 writes ran %d analyses, want 1 (coalesced)", st.Analyses)
	}
	if !ft.HasEntry(keyFor("minipl", final)) {
		t.Error("final burst content not installed")
	}
	if ft.HasEntry(keyFor("minipl", idxSrc)) {
		t.Error("intermediate burst content was analyzed; debounce failed")
	}
}

// TestAdditiveEditTakesIncrementalPath pins the Session.Edit wiring:
// an additive change to an already-indexed file is absorbed
// incrementally, a structural change forces full reanalysis, and both
// are observable in the counters.
func TestAdditiveEditTakesIncrementalPath(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "prog.mpl")
	writeFile(t, path, idxSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "cold index", func() bool { return ix.Stats().Analyses == 1 })

	// Additive: a new assignment only adds local facts.
	additive := strings.Replace(idxSrc, "x := 1", "x := 1; h := g", 1)
	writeFile(t, path, additive)
	waitFor(t, "incremental edit", func() bool { return ix.Stats().IncrementalEdits == 1 })
	if !ft.HasEntry(keyFor("minipl", additive)) {
		t.Error("incrementally updated snapshot not installed")
	}

	// Structural: a new call site forces full reanalysis.
	structural := strings.Replace(additive, "call mid(g)", "call mid(g); call leaf(h)", 1)
	writeFile(t, path, structural)
	waitFor(t, "full reanalysis", func() bool { return ix.Stats().FullReanalyses == 2 })
	st := ix.Stats()
	if st.Analyses != 3 || st.IncrementalEdits != 1 {
		t.Errorf("stats = %+v, want 3 analyses of which 1 incremental", st)
	}
	files := ix.Files().([]fileView)
	if files[0].Mode != "full" {
		t.Errorf("after structural edit, mode = %q, want full", files[0].Mode)
	}
}

// TestDeleteLeavesNoGhost pins deletion tracking: a removed file
// disappears from the table instead of lingering as a stale result.
func TestDeleteLeavesNoGhost(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gone.mpl")
	writeFile(t, path, idxSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "cold index", func() bool { return ix.Stats().Analyses == 1 })

	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "delete processed", func() bool { return ix.Stats().Deletes == 1 })
	if files := ix.Files().([]fileView); len(files) != 0 {
		t.Errorf("deleted file still listed: %+v", files)
	}
	if st := ix.Stats(); st.Files != 0 {
		t.Errorf("Files gauge = %d after delete, want 0", st.Files)
	}
}

// TestRenameIsWarm pins rename handling: moving a file is recognized
// by content address and costs zero re-analysis.
func TestRenameIsWarm(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.mpl")
	writeFile(t, old, idxSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "cold index", func() bool { return ix.Stats().Analyses == 1 })

	if err := os.Rename(old, filepath.Join(dir, "new.mpl")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rename processed", func() bool { return ix.Stats().Renames == 1 })
	st := ix.Stats()
	if st.Analyses != 1 {
		t.Errorf("rename triggered %d analyses, want the original 1 only", st.Analyses)
	}
	if st.Deletes != 0 {
		t.Errorf("rename counted as delete: %+v", st)
	}
	if st.Warm != 1 {
		t.Errorf("rename not counted warm: %+v", st)
	}
	files := ix.Files().([]fileView)
	if len(files) != 1 || files[0].Path != "new.mpl" || files[0].Mode != "warm" {
		t.Errorf("after rename, table = %+v, want new.mpl warm", files)
	}
	if files[0].Procs != 3 {
		t.Errorf("rename lost procedure count: %+v", files[0])
	}
}

// TestErrorFileTracked pins error handling: a file that fails to
// analyze is tracked with its message and does not poison the loop.
func TestErrorFileTracked(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, filepath.Join(dir, "bad.mpl"), "this is not minipl")
	writeFile(t, filepath.Join(dir, "good.mpl"), idxSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "batch", func() bool {
		st := ix.Stats()
		return st.Errors == 1 && st.Analyses == 1
	})
	files := ix.Files().([]fileView)
	if len(files) != 2 || files[0].Path != "bad.mpl" || files[0].Status != "error" || files[0].Error == "" {
		t.Errorf("error file not tracked: %+v", files)
	}
	if files[1].Status != "ok" {
		t.Errorf("good file affected by bad neighbor: %+v", files[1])
	}
	// Fixing the file clears the error on the next batch.
	writeFile(t, filepath.Join(dir, "bad.mpl"), idxGoSrcAsMiniPL())
	waitFor(t, "fixed", func() bool { return ix.Stats().Analyses == 2 })
	files = ix.Files().([]fileView)
	if files[0].Status != "ok" {
		t.Errorf("fixed file still errored: %+v", files[0])
	}
}

// idxGoSrcAsMiniPL returns a second valid MiniPL program (distinct
// content from idxSrc).
func idxGoSrcAsMiniPL() string {
	return strings.Replace(idxSrc, "program incr", "program incrtwo", 1)
}

// TestRestoreStateSkipsUnchanged pins the restart path: with primed
// state and a target that already holds the entries, an unchanged tree
// produces no work at all — and a file edited while the daemon was
// down is re-processed.
func TestRestoreStateSkipsUnchanged(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.mpl")
	pathB := filepath.Join(dir, "b.mpl")
	writeFile(t, pathA, idxSrc)
	writeFile(t, pathB, idxGoSrcAsMiniPL())
	ft := newFakeTarget()
	first := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "cold index", func() bool { return first.Stats().Analyses == 2 })
	first.Stop()
	state := first.ExportState()

	// Edit b while "down".
	editedB := strings.Replace(idxGoSrcAsMiniPL(), "x := 1", "x := 3", 1)
	writeFile(t, pathB, editedB)

	second := New(fastConfig(dir), ft)
	if n := second.RestoreState(state); n != 2 {
		t.Fatalf("RestoreState primed %d files, want 2", n)
	}
	second.Start()
	t.Cleanup(second.Stop)
	waitFor(t, "changed file reprocessed", func() bool { return second.Stats().Analyses == 1 })

	// Give the watcher a few more scans: the unchanged file must never
	// be touched.
	waitFor(t, "a few scans", func() bool { return second.Stats().Scans >= 5 })
	st := second.Stats()
	if st.Analyses != 1 {
		t.Errorf("restored watcher ran %d analyses, want 1 (only the edited file)", st.Analyses)
	}
	if st.Warm != 0 {
		t.Errorf("unchanged files re-touched (%d warm events), want none", st.Warm)
	}
	files := second.Files().([]fileView)
	if files[0].Path != "a.mpl" || files[0].Mode != "cold" {
		t.Errorf("unchanged file state not preserved: %+v", files[0])
	}
	if files[1].Mode != "full" {
		t.Errorf("edited-while-down file mode = %q, want full", files[1].Mode)
	}
}

// TestRestoreStateRejectsForeignRoot pins that state recorded for a
// different tree is ignored rather than misapplied.
func TestRestoreStateRejectsForeignRoot(t *testing.T) {
	ix := New(fastConfig(t.TempDir()), newFakeTarget())
	if n := ix.RestoreState(&store.IndexState{Root: "/somewhere/else",
		Files: []store.FileState{{Path: "x.mpl", Lang: "minipl"}}}); n != 0 {
		t.Errorf("foreign-root state primed %d files, want 0", n)
	}
}

// TestRevertIsWarm pins that reverting a file to previously indexed
// content is served from the target without re-analysis.
func TestRevertIsWarm(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rev.mpl")
	writeFile(t, path, idxSrc)
	ft := newFakeTarget()
	ix := startIndexer(t, fastConfig(dir), ft)
	waitFor(t, "cold index", func() bool { return ix.Stats().Analyses == 1 })

	edited := strings.Replace(idxSrc, "x := 1", "x := 9", 1)
	writeFile(t, path, edited)
	waitFor(t, "edit", func() bool { return ix.Stats().Analyses == 2 })

	writeFile(t, path, idxSrc) // revert
	waitFor(t, "revert", func() bool { return ix.Stats().Warm == 1 })
	if st := ix.Stats(); st.Analyses != 2 {
		t.Errorf("revert re-analyzed: %+v", st)
	}
}

// writeModule lays out a minimal two-package Go module under dir.
func writeModule(t *testing.T, dir string) {
	t.Helper()
	for _, sub := range []string{"util", "app"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(t, filepath.Join(dir, "go.mod"), "module example.com/w\n\ngo 1.21\n")
	writeFile(t, filepath.Join(dir, "util", "u.go"),
		"package util\n\ntype C struct{ n int }\n\nfunc (c *C) Add(v int) { c.n += v }\n")
	writeFile(t, filepath.Join(dir, "app", "a.go"),
		"package app\n\nimport \"example.com/w/util\"\n\nvar G util.C\n\nfunc Rec(v int) { G.Add(v) }\n")
}

// TestModuleMode pins the go-module watcher: the whole module is
// analyzed as one batch under the synthetic "(module)" state, a file
// edit re-analyzes the module exactly once, and a revert to indexed
// content is warm.
func TestModuleMode(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir)
	ft := newFakeTarget()
	cfg := fastConfig(dir)
	cfg.GoModule = true
	ix := startIndexer(t, cfg, ft)

	waitFor(t, "cold module analysis", func() bool { return ix.Stats().Analyses == 1 })
	files := ix.Files().([]fileView)
	var mod *fileView
	for i := range files {
		if files[i].Path == moduleStatePath {
			mod = &files[i]
		}
	}
	if mod == nil {
		t.Fatalf("no %q entry in %+v", moduleStatePath, files)
	}
	if mod.Lang != "go-module" || mod.Mode != "cold" || mod.Procs == 0 {
		t.Errorf("module state = %+v, want go-module/cold with procs", *mod)
	}
	if !ft.HasEntry(mod.Key) {
		t.Error("module snapshot not installed under its content key")
	}

	// An edit to any module file re-analyzes the whole module once.
	edited := "package util\n\ntype C struct{ n int }\n\nfunc (c *C) Add(v int) { c.n += v }\n\nfunc (c *C) Get() int { return c.n }\n"
	writeFile(t, filepath.Join(dir, "util", "u.go"), edited)
	waitFor(t, "module re-analysis", func() bool { return ix.Stats().Analyses == 2 })

	// Reverting restores the previous module hash: warm, no analysis.
	writeFile(t, filepath.Join(dir, "util", "u.go"),
		"package util\n\ntype C struct{ n int }\n\nfunc (c *C) Add(v int) { c.n += v }\n")
	waitFor(t, "module revert warm", func() bool { return ix.Stats().Warm == 1 })
	if st := ix.Stats(); st.Analyses != 2 {
		t.Errorf("revert re-analyzed the module: %+v", st)
	}
}

// TestModuleModeRestore pins the restart path: the synthetic module
// entry survives RestoreState and the first scans (it is not a disk
// file, so the deletion sweep must not discard it), and an unchanged
// tree runs no analysis at all.
func TestModuleModeRestore(t *testing.T) {
	dir := t.TempDir()
	writeModule(t, dir)
	ft := newFakeTarget()
	cfg := fastConfig(dir)
	cfg.GoModule = true
	first := startIndexer(t, cfg, ft)
	waitFor(t, "cold module analysis", func() bool { return first.Stats().Analyses == 1 })
	first.Stop()
	state := first.ExportState()

	second := New(cfg, ft)
	if n := second.RestoreState(state); n != 3 {
		t.Fatalf("RestoreState primed %d entries, want 3 (2 files + module)", n)
	}
	second.Start()
	t.Cleanup(second.Stop)
	waitFor(t, "a few scans", func() bool { return second.Stats().Scans >= 5 })
	if st := second.Stats(); st.Analyses != 0 {
		t.Errorf("restored watcher ran %d analyses on an unchanged tree, want 0", st.Analyses)
	}
	found := false
	for _, f := range second.Files().([]fileView) {
		if f.Path == moduleStatePath {
			found = true
		}
	}
	if !found {
		t.Error("synthetic module entry lost across restore + scan")
	}
	if st := second.ExportState(); len(st.Files) != 3 {
		t.Errorf("re-exported state has %d entries, want 3", len(st.Files))
	}
}
