package faultinject

import (
	"errors"
	"reflect"
	"testing"
	"time"
)

// drainAt calls At n times, recovering panics, and tallies outcomes.
func drainAt(in *Injector, site string, n int) (panics, errs int) {
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if _, ok := rec.(*InjectedPanic); !ok {
						panic(rec)
					}
					panics++
				}
			}()
			if err := in.At(site); err != nil {
				var ie *InjectedError
				if !errors.As(err, &ie) {
					panic("unexpected error type")
				}
				errs++
			}
		}()
	}
	return
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.At("x"); err != nil {
		t.Fatalf("nil injector returned %v", err)
	}
	if in.Corrupt("x") {
		t.Fatal("nil injector corrupted")
	}
	if in.Total() != 0 || in.Counts() != nil {
		t.Fatal("nil injector counted")
	}
	if New(Config{Rate: 0}) != nil {
		t.Fatal("zero rate must build a nil injector")
	}
}

func TestDeterministicFromSeed(t *testing.T) {
	run := func() map[string]uint64 {
		in := New(Config{Rate: 0.2, Seed: 42, Delay: time.Microsecond})
		drainAt(in, "a", 500)
		drainAt(in, "b", 500)
		in.Corrupt("c")
		return in.Counts()
	}
	first := run()
	if len(first) == 0 {
		t.Fatal("no faults fired at rate 0.2 over 1000 draws")
	}
	if again := run(); !reflect.DeepEqual(first, again) {
		t.Fatalf("same seed diverged:\n first %v\n again %v", first, again)
	}
	other := New(Config{Rate: 0.2, Seed: 43, Delay: time.Microsecond})
	drainAt(other, "a", 500)
	drainAt(other, "b", 500)
	if reflect.DeepEqual(first, other.Counts()) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

func TestRateIsRespected(t *testing.T) {
	in := New(Config{Rate: 0.1, Seed: 7, Delay: time.Microsecond})
	const n = 5000
	drainAt(in, "site", n)
	got := float64(in.Total()) / n
	if got < 0.05 || got > 0.15 {
		t.Fatalf("rate 0.1 fired %.3f of draws", got)
	}
}

func TestKindFiltering(t *testing.T) {
	// Error-only injector: At never panics, Corrupt never fires.
	in := New(Config{Rate: 1, Seed: 1, Kinds: []Kind{KindError}})
	panics, errs := drainAt(in, "s", 50)
	if panics != 0 || errs != 50 {
		t.Fatalf("error-only injector: %d panics, %d errors", panics, errs)
	}
	if in.Corrupt("s") {
		t.Fatal("corrupt fired without KindCorrupt")
	}
	// Corrupt-only injector: At is inert, Corrupt always fires.
	in = New(Config{Rate: 1, Seed: 1, Kinds: []Kind{KindCorrupt}})
	if err := in.At("s"); err != nil {
		t.Fatalf("corrupt-only injector errored At: %v", err)
	}
	if !in.Corrupt("s") {
		t.Fatal("corrupt-only injector did not corrupt at rate 1")
	}
}

func TestSummaryAndKindNames(t *testing.T) {
	in := New(Config{Rate: 1, Seed: 3, Kinds: []Kind{KindError}})
	drainAt(in, "a", 2)
	if got := in.Summary(); got != "a/error=2" {
		t.Fatalf("summary = %q", got)
	}
	for k, want := range map[Kind]string{KindPanic: "panic", KindError: "error", KindDelay: "delay", KindCorrupt: "corrupt"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
