// Package faultinject is the deterministic fault-injection engine
// behind the robustness layer: seed-driven fault points threaded
// through the batch workers, the core analysis stage boundaries, the
// result cache, and the HTTP server, so chaos tests and `modand
// -fault-rate` runs can prove that failures surface as structured
// errors or degraded-but-correct answers — never as a wrong bit
// vector, a leaked goroutine, or a corrupted pooled arena.
//
// Every decision is a pure function of (seed, site, per-site draw
// counter), so a single-threaded request sequence reproduces the exact
// same faults run after run. Four fault kinds are modeled:
//
//   - KindPanic: the fault point panics with *InjectedPanic, standing
//     in for a worker bug; the recovery path must isolate it and keep
//     pooled state (arenas, scratch sets) out of circulation.
//   - KindError: the fault point returns *InjectedError, standing in
//     for an internal failure that is detected and reported.
//   - KindDelay: the fault point sleeps, standing in for a stalled
//     dependency; deadline propagation must turn it into a clean
//     timeout instead of a hung request.
//   - KindCorrupt: reported only through Corrupt, standing in for a
//     cache entry failing its integrity check; consumers must bypass
//     and recompute.
//
// A nil *Injector is valid everywhere and disables injection at the
// cost of one nil check, so production paths carry the hooks for free.
package faultinject

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind classifies one injected fault.
type Kind uint8

// Fault kinds.
const (
	KindPanic Kind = iota
	KindError
	KindDelay
	KindCorrupt
	numKinds
)

// String names the kind the way the metrics exposition spells it.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindError:
		return "error"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// InjectedError is the error returned by a fault point that drew a
// KindError fault.
type InjectedError struct {
	// Site names the fault point, e.g. "core.mod.gmod".
	Site string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s", e.Site)
}

// InjectedPanic is the value a fault point panics with on a KindPanic
// fault. Recovery layers can detect it to distinguish injected chaos
// from genuine bugs, but must treat both identically.
type InjectedPanic struct {
	Site string
}

// String renders the panic value.
func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s", p.Site)
}

// Config parameterizes New.
type Config struct {
	// Rate is the per-draw fault probability in [0, 1]. Zero disables
	// the injector (New returns nil).
	Rate float64
	// Seed drives every decision; equal configs and equal call
	// sequences inject equal faults.
	Seed int64
	// Delay is how long a KindDelay fault sleeps (default 2ms — long
	// enough to trip tight deadlines, short enough for 10k-request
	// soaks).
	Delay time.Duration
	// Kinds lists the fault kinds to draw from. Empty means every
	// kind: panic, error, delay, and corrupt.
	Kinds []Kind
}

// Injector draws deterministic faults at named sites. Safe for
// concurrent use; nil disables all methods.
type Injector struct {
	rate  float64
	seed  int64
	delay time.Duration
	kinds []Kind // non-corrupt kinds served by At
	corr  bool   // KindCorrupt enabled

	mu     sync.Mutex
	draws  map[string]uint64 // site → draws so far
	counts map[string]uint64 // site + "\x00" + kind → faults fired
	total  uint64
}

// New builds an injector. A zero or negative rate returns nil — the
// universal "injection disabled" value.
func New(cfg Config) *Injector {
	if cfg.Rate <= 0 {
		return nil
	}
	if cfg.Rate > 1 {
		cfg.Rate = 1
	}
	if cfg.Delay <= 0 {
		cfg.Delay = 2 * time.Millisecond
	}
	kinds := cfg.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{KindPanic, KindError, KindDelay, KindCorrupt}
	}
	in := &Injector{
		rate:   cfg.Rate,
		seed:   cfg.Seed,
		delay:  cfg.Delay,
		draws:  make(map[string]uint64),
		counts: make(map[string]uint64),
	}
	for _, k := range kinds {
		if k == KindCorrupt {
			in.corr = true
		} else if k < numKinds {
			in.kinds = append(in.kinds, k)
		}
	}
	return in
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a, inlined to avoid an allocation per draw.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// draw advances site's deterministic sequence and reports whether a
// fault fires, returning the mixed hash for kind selection.
func (in *Injector) draw(site string) (uint64, bool) {
	in.mu.Lock()
	n := in.draws[site]
	in.draws[site] = n + 1
	in.mu.Unlock()
	h := splitmix64(uint64(in.seed) ^ hashString(site) ^ splitmix64(n))
	return h, float64(h>>11)/float64(1<<53) < in.rate
}

// record counts one fired fault.
func (in *Injector) record(site string, k Kind) {
	in.mu.Lock()
	in.counts[site+"\x00"+k.String()]++
	in.total++
	in.mu.Unlock()
}

// At is the fault point for computation sites. It usually returns nil;
// with probability Rate it instead panics with *InjectedPanic, sleeps
// for the configured delay, or returns *InjectedError, chosen
// deterministically. Nil receivers never fault.
func (in *Injector) At(site string) error {
	if in == nil || len(in.kinds) == 0 {
		return nil
	}
	h, fire := in.draw(site)
	if !fire {
		return nil
	}
	k := in.kinds[int((h>>3)%uint64(len(in.kinds)))]
	in.record(site, k)
	switch k {
	case KindPanic:
		panic(&InjectedPanic{Site: site})
	case KindDelay:
		time.Sleep(in.delay)
		return nil
	default:
		return &InjectedError{Site: site}
	}
}

// Corrupt is the fault point for integrity checks: it reports whether
// a simulated corruption should be observed at site. Only fires when
// KindCorrupt is among the configured kinds.
func (in *Injector) Corrupt(site string) bool {
	if in == nil || !in.corr {
		return false
	}
	_, fire := in.draw(site)
	if fire {
		in.record(site, KindCorrupt)
	}
	return fire
}

// Total returns the number of faults fired so far.
func (in *Injector) Total() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.total
}

// Counts returns a copy of the per-site, per-kind fault counters,
// keyed "site/kind".
func (in *Injector) Counts() map[string]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[string]uint64, len(in.counts))
	for k, v := range in.counts {
		out[strings.Replace(k, "\x00", "/", 1)] = v
	}
	return out
}

// Summary renders the counters as "site/kind=N" terms, sorted — the
// one-line form the CLIs print after a chaos run.
func (in *Injector) Summary() string {
	c := in.Counts()
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	terms := make([]string, 0, len(keys))
	for _, k := range keys {
		terms = append(terms, fmt.Sprintf("%s=%d", k, c[k]))
	}
	return strings.Join(terms, " ")
}
