package alias

import (
	"testing"

	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
)

func analyze(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := sem.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func hasPair(a *Analysis, p *ir.Procedure, x, y *ir.Variable) bool {
	_, ok := a.sets[p.ID][pack(x.ID, y.ID)]
	return ok
}

func TestGlobalFormalAlias(t *testing.T) {
	prog := analyze(t, `
program ga;
global g;
proc q(ref f) begin f := 1 end;
begin call q(g) end.
`)
	a := Compute(prog)
	q := prog.Proc("q")
	if !hasPair(a, q, prog.Var("q.f"), prog.Var("g")) {
		t.Errorf("missing ⟨f, g⟩ in ALIAS(q): %v", a.Pairs(q))
	}
	if a.NumPairs() != 1 {
		t.Errorf("NumPairs = %d, want 1", a.NumPairs())
	}
}

func TestSameActualTwice(t *testing.T) {
	prog := analyze(t, `
program st;
global g;
proc q(ref x, ref y) begin x := y end;
begin call q(g, g) end.
`)
	a := Compute(prog)
	q := prog.Proc("q")
	x, y := prog.Var("q.x"), prog.Var("q.y")
	if !hasPair(a, q, x, y) {
		t.Errorf("missing ⟨x, y⟩: %v", a.Pairs(q))
	}
	// Also both alias g.
	g := prog.Var("g")
	if !hasPair(a, q, x, g) || !hasPair(a, q, y, g) {
		t.Errorf("missing formal-global pairs: %v", a.Pairs(q))
	}
}

func TestTransitivePropagation(t *testing.T) {
	prog := analyze(t, `
program tp;
global g;
proc leaf(ref c) begin c := 1 end;
proc mid(ref b) begin call leaf(b) end;
begin call mid(g) end.
`)
	a := Compute(prog)
	// ⟨b, g⟩ in mid, then ⟨c, g⟩ in leaf via source 3a.
	if !hasPair(a, prog.Proc("mid"), prog.Var("mid.b"), prog.Var("g")) {
		t.Error("missing ⟨b, g⟩ in mid")
	}
	if !hasPair(a, prog.Proc("leaf"), prog.Var("leaf.c"), prog.Var("g")) {
		t.Error("missing ⟨c, g⟩ in leaf")
	}
}

func TestAliasedActualsPair(t *testing.T) {
	prog := analyze(t, `
program ap;
global g;
proc two(ref x, ref y) begin x := y end;
proc one(ref f) begin call two(f, g) end;
begin call one(g) end.
`)
	a := Compute(prog)
	// In one: ⟨f, g⟩. Call two(f, g): actuals f and g are aliased →
	// ⟨x, y⟩ in two (source 3b). Also ⟨x, g⟩ (3a) and ⟨y, g⟩ (1).
	two := prog.Proc("two")
	x, y, g := prog.Var("two.x"), prog.Var("two.y"), prog.Var("g")
	if !hasPair(a, two, x, y) {
		t.Errorf("missing ⟨x, y⟩: %v", a.Pairs(two))
	}
	if !hasPair(a, two, x, g) || !hasPair(a, two, y, g) {
		t.Errorf("missing global pairs: %v", a.Pairs(two))
	}
}

func TestLocalActualNoAlias(t *testing.T) {
	prog := analyze(t, `
program la;
proc q(ref f) begin f := 1 end;
proc p()
  var t;
begin
  call q(t)
end;
begin call p() end.
`)
	a := Compute(prog)
	// t is local to p and invisible in q: no pair introduced.
	if a.NumPairs() != 0 {
		t.Errorf("NumPairs = %d, want 0: %v", a.NumPairs(), a.Pairs(prog.Proc("q")))
	}
}

func TestNestedVisibleLocalAlias(t *testing.T) {
	prog := analyze(t, `
program nl;
proc outer(ref o)
  var t;
  proc inner(ref f) begin f := 1 end;
begin
  call inner(t)
end;
global g;
begin call outer(g) end.
`)
	a := Compute(prog)
	inner := prog.Proc("inner")
	// t (local of outer) is visible inside inner → ⟨f, t⟩.
	if !hasPair(a, inner, prog.Var("inner.f"), prog.Var("outer.t")) {
		t.Errorf("missing ⟨f, t⟩: %v", a.Pairs(inner))
	}
}

func TestRecursiveConvergence(t *testing.T) {
	prog := analyze(t, `
program rc;
global g, h;
proc f(ref a, ref b)
begin
  call f(b, a)
end;
begin call f(g, h) end.
`)
	a := Compute(prog) // must terminate
	f := prog.Proc("f")
	av, bv, g, h := prog.Var("f.a"), prog.Var("f.b"), prog.Var("g"), prog.Var("h")
	// Swapping recursion aliases both formals to both globals.
	for _, pr := range [][2]*ir.Variable{{av, g}, {av, h}, {bv, g}, {bv, h}} {
		if !hasPair(a, f, pr[0], pr[1]) {
			t.Errorf("missing ⟨%s, %s⟩: %v", pr[0], pr[1], a.Pairs(f))
		}
	}
}

func TestFactor(t *testing.T) {
	prog := analyze(t, `
program fa;
global g;
proc q(ref f) begin f := 1 end;
begin call q(g) end.
`)
	res := core.Analyze(prog, core.Mod, core.Options{})
	mod := ComputeMOD(res)
	cs := prog.Sites[0]
	// DMOD(s) = {g}; ALIAS(main) is empty, so MOD(s) = {g}.
	if !mod[cs.ID].Has(prog.Var("g").ID) || mod[cs.ID].Len() != 1 {
		t.Errorf("MOD = %v", mod[cs.ID])
	}
}

func TestFactorAddsAliases(t *testing.T) {
	prog := analyze(t, `
program fb;
global g;
proc inner(ref x) begin x := 1 end;
proc outer(ref f)
begin
  call inner(f)
end;
begin call outer(g) end.
`)
	res := core.Analyze(prog, core.Mod, core.Options{})
	a := Compute(prog)
	mod := a.Factor(res.DMOD)
	// Call site inner(f) inside outer: DMOD = {f}. ALIAS(outer) has
	// ⟨f, g⟩, so MOD = {f, g}.
	var site *ir.CallSite
	for _, cs := range prog.Sites {
		if cs.Caller.Name == "outer" {
			site = cs
		}
	}
	f, g := prog.Var("outer.f"), prog.Var("g")
	if !res.DMOD[site.ID].Has(f.ID) || res.DMOD[site.ID].Has(g.ID) {
		t.Fatalf("DMOD = %v", res.DMOD[site.ID])
	}
	if !mod[site.ID].Has(f.ID) || !mod[site.ID].Has(g.ID) {
		t.Errorf("MOD = %v, want {f, g}", mod[site.ID])
	}
	// Factor must not mutate DMOD.
	if res.DMOD[site.ID].Has(g.ID) {
		t.Error("Factor mutated DMOD")
	}
}

func TestFactorEmptyDMOD(t *testing.T) {
	prog := analyze(t, `
program fe;
proc noop() begin end;
begin call noop() end.
`)
	res := core.Analyze(prog, core.Mod, core.Options{})
	mod := ComputeMOD(res)
	if !mod[0].Equal(bitset.New(0)) {
		t.Errorf("MOD = %v, want empty", mod[0])
	}
}

func TestNestingPropagatesPairs(t *testing.T) {
	// The pair ⟨f, g⟩ holds on entry to outer; inner (lexically nested
	// in outer) runs during outer's activation, so the pair must hold
	// there too — otherwise a write to f inside code called from inner
	// would not be reported as a write to g at inner's call sites.
	prog := analyze(t, `
program np;
global g;
proc set(ref y) begin y := 1 end;
proc outer(ref f)
  proc inner()
  begin
    call set(f)
  end;
begin
  call inner()
end;
begin call outer(g) end.
`)
	a := Compute(prog)
	inner := prog.Proc("inner")
	if !hasPair(a, inner, prog.Var("outer.f"), prog.Var("g")) {
		t.Errorf("ALIAS(inner) missing inherited ⟨f, g⟩: %v", a.Pairs(inner))
	}
	// And the pair propagates onward through inner's call.
	set := prog.Proc("set")
	if !hasPair(a, set, prog.Var("set.y"), prog.Var("g")) {
		t.Errorf("ALIAS(set) missing ⟨y, g⟩: %v", a.Pairs(set))
	}
}
