// Package alias computes flow-insensitive alias pairs introduced by
// reference-parameter passing and factors them into MOD/USE sets, the
// final step of the paper's pipeline (Section 5).
//
// The paper assumes "simple sets of alias pairs are available for each
// procedure"; this package provides them in the classical
// Banning/Cooper style. A pair ⟨x, y⟩ ∈ ALIAS(p) means x and y may
// name the same location on some entry to p. Pairs arise at call
// sites, from three sources, and propagate transitively down call
// chains:
//
//  1. a non-local variable v (global, or a visible local of an
//     enclosing scope) passed by reference to formal f: ⟨f, v⟩ holds
//     in the callee if v remains visible there;
//  2. the same variable passed by reference to two formals f_i, f_j of
//     one call: ⟨f_i, f_j⟩;
//  3. an actual x with an existing pair ⟨x, z⟩ ∈ ALIAS(caller) bound
//     to formal f: ⟨f, z⟩ if z is visible in the callee; and two
//     actuals x, y with ⟨x, y⟩ ∈ ALIAS(caller) bound to formals f_i,
//     f_j: ⟨f_i, f_j⟩.
//
// The computation is a monotone worklist over the call multi-graph;
// it terminates because the pair universe is finite. Section 5 notes
// any summary algorithm must spend time at least linear in the number
// of alias pairs; this one is linear in pairs × call sites in the
// worst case, and tiny on realistic binding patterns.
package alias

import (
	"sort"

	"sideeffect/internal/arena"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
)

// Pair is an unordered alias pair of variable IDs with X < Y.
type Pair struct {
	X, Y int
}

// Analysis holds the alias solution for a program.
type Analysis struct {
	Prog *ir.Program
	// sets[pid] is ALIAS(p), each pair packed as X<<32|Y with X < Y.
	// Maps are allocated lazily: most procedures of realistic programs
	// have no alias pairs at all, and the nil map reads below are free.
	sets []map[uint64]struct{}
	// adj[pid] maps a variable ID to the IDs aliased to it in p.
	adj []map[int][]int32
}

func pack(a, b int) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(a)<<32 | uint64(b)
}

// Pairs returns ALIAS(p) in deterministic (sorted) order.
func (a *Analysis) Pairs(p *ir.Procedure) []Pair {
	out := make([]Pair, 0, len(a.sets[p.ID]))
	for pr := range a.sets[p.ID] {
		out = append(out, Pair{X: int(pr >> 32), Y: int(pr & 0xffffffff)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// NumPairs returns the total number of alias pairs across procedures.
func (a *Analysis) NumPairs() int {
	n := 0
	for _, s := range a.sets {
		n += len(s)
	}
	return n
}

// Compute runs the alias-pair analysis.
func Compute(prog *ir.Program) *Analysis {
	a := &Analysis{
		Prog: prog,
		sets: make([]map[uint64]struct{}, prog.NumProcs()),
		adj:  make([]map[int][]int32, prog.NumProcs()),
	}
	add := func(pid, x, y int) bool {
		if x == y {
			return false
		}
		key := pack(x, y)
		if _, ok := a.sets[pid][key]; ok {
			return false
		}
		s := a.sets[pid]
		if s == nil {
			s = make(map[uint64]struct{}, 8)
			a.sets[pid] = s
		}
		s[key] = struct{}{}
		ad := a.adj[pid]
		if ad == nil {
			ad = make(map[int][]int32, 8)
			a.adj[pid] = ad
		}
		ad[x] = append(ad[x], int32(y))
		ad[y] = append(ad[y], int32(x))
		return true
	}

	inQ := make([]bool, prog.NumProcs())
	queue := make([]int, 0, prog.NumProcs())
	push := func(id int) {
		if !inQ[id] {
			inQ[id] = true
			queue = append(queue, id)
		}
	}
	// process introduces pairs implied by one call site given the
	// caller's current pairs.
	process := func(cs *ir.CallSite) bool {
		q := cs.Callee
		callerAdj := a.adj[cs.Caller.ID]
		callerSet := a.sets[cs.Caller.ID]
		changed := false
		for i, ai := range cs.Args {
			if ai.Mode != ir.FormalRef || ai.Var == nil {
				continue
			}
			fi := q.Formals[i]
			// Source 1: non-local actual still visible in callee.
			if ai.Var.Owner != q && q.Visible(ai.Var) {
				changed = add(q.ID, fi.ID, ai.Var.ID) || changed
			}
			// Source 3a: pairs of the actual propagate to the formal.
			for _, z := range callerAdj[ai.Var.ID] {
				if q.Visible(prog.Vars[z]) {
					changed = add(q.ID, fi.ID, int(z)) || changed
				}
			}
			for j := i + 1; j < len(cs.Args); j++ {
				aj := cs.Args[j]
				if aj.Mode != ir.FormalRef || aj.Var == nil {
					continue
				}
				fj := q.Formals[j]
				// Source 2: same variable twice.
				if ai.Var == aj.Var {
					changed = add(q.ID, fi.ID, fj.ID) || changed
				}
				// Source 3b: aliased actuals.
				if _, ok := callerSet[pack(ai.Var.ID, aj.Var.ID)]; ok {
					changed = add(q.ID, fi.ID, fj.ID) || changed
				}
			}
		}
		return changed
	}

	for _, p := range prog.Procs {
		push(p.ID)
	}
	for len(queue) > 0 {
		pid := queue[0]
		queue = queue[1:]
		inQ[pid] = false
		for _, cs := range prog.Procs[pid].Calls {
			if process(cs) {
				push(cs.Callee.ID)
			}
		}
		// Lexical nesting: a pair holding on entry to p also holds
		// while any procedure nested in p runs (both names stay
		// visible), so pairs flow down the nesting tree as well as
		// along call edges.
		for _, child := range prog.Procs[pid].Nested {
			changed := false
			for pr := range a.sets[pid] {
				if add(child.ID, int(pr>>32), int(pr&0xffffffff)) {
					changed = true
				}
			}
			if changed {
				push(child.ID)
			}
		}
	}
	return a
}

// Factor applies step (2) of Section 5: MOD(s) = DMOD(s) extended
// with every variable aliased (in the enclosing procedure) to a member
// of DMOD(s). The input sets are not modified; the result is indexed
// by call-site ID like core.Result.DMOD.
func (a *Analysis) Factor(dmod []*bitset.Set) []*bitset.Set {
	return a.FactorArena(dmod, nil)
}

// FactorArena is Factor with the output rows drawn from ar, so the
// factored sets share the lifetime of the Result whose arena backs
// them (core.Result.Arena under the default allocation policy). A nil
// arena falls back to heap clones; the arena must not be used from
// another goroutine while this runs.
func (a *Analysis) FactorArena(dmod []*bitset.Set, ar *arena.Arena) []*bitset.Set {
	out := make([]*bitset.Set, len(dmod))
	for _, cs := range a.Prog.Sites {
		d := dmod[cs.ID]
		m := ar.Clone(d)
		// Iterate the (typically tiny) alias adjacency, not the DMOD
		// elements: per aliased variable one membership test replaces a
		// map lookup per DMOD element. Membership is tested against the
		// input set, so map order cannot matter.
		for x, ys := range a.adj[cs.Caller.ID] {
			if d.Has(x) {
				for _, y := range ys {
					m.Add(int(y))
				}
			}
		}
		out[cs.ID] = m
	}
	return out
}

// ComputeMOD is the complete Section 5 pipeline: given a core result
// (DMOD plus the supporting sets), produce final MOD (or USE) sets per
// call site.
func ComputeMOD(res *core.Result) []*bitset.Set {
	return Compute(res.Prog).Factor(res.DMOD)
}
