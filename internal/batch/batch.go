// Package batch provides the bounded worker pool behind the public
// AnalyzeAll API and the parallel-stage analysis engine. It is a small
// generic utility with no knowledge of the analysis itself, so both
// the root package and the command-line tools can share one
// scheduling policy.
package batch

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count request: n if positive, otherwise
// GOMAXPROCS — the number of OS threads Go will actually run
// concurrently, which is the right default for the CPU-bound
// bit-vector work this pool carries.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every task, at most Workers(workers) at a time, and
// returns when all have finished. With one worker the tasks run
// sequentially on the calling goroutine in order — no goroutines, no
// nondeterministic interleaving — which keeps Sequential mode truly
// sequential for debugging and differential testing.
func Run(workers int, tasks []func()) {
	w := Workers(workers)
	if w == 1 || len(tasks) == 1 {
		for _, t := range tasks {
			t()
		}
		return
	}
	if w > len(tasks) {
		w = len(tasks)
	}
	next := make(chan func())
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for t := range next {
				t()
			}
		}()
	}
	for _, t := range tasks {
		next <- t
	}
	close(next)
	wg.Wait()
}

// Map applies f to every item, at most Workers(workers) at a time, and
// returns the results in input order. The index passed to f is the
// item's position in items.
func Map[T, R any](workers int, items []T, f func(int, T) R) []R {
	out := make([]R, len(items))
	tasks := make([]func(), len(items))
	for i := range items {
		i := i
		tasks[i] = func() { out[i] = f(i, items[i]) }
	}
	Run(workers, tasks)
	return out
}
