// Package batch provides the bounded worker pool behind the public
// AnalyzeAll API and the parallel-stage analysis engine. It is a small
// generic utility with no knowledge of the analysis itself, so both
// the root package and the command-line tools can share one
// scheduling policy.
//
// The pool is panic-isolating: a task that panics never crashes the
// process from a worker goroutine. RunCtx converts each panic into a
// *PanicError and keeps running the remaining (independent) tasks;
// Run re-raises the first captured panic on the calling goroutine, so
// legacy callers observe the old propagation semantics while gaining
// a recoverable stack. RunCtx also honors context cancellation:
// undispatched tasks are skipped once the context is done, which is
// what lets a cancelled HTTP request free its worker slots instead of
// grinding through an abandoned batch.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
)

// PanicError wraps a panic recovered from a task, preserving the
// original panic value and the stack of the panicking goroutine.
type PanicError struct {
	Value any
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("batch: task panicked: %v", e.Value) }

// Workers normalizes a worker-count request: n if positive, otherwise
// GOMAXPROCS — the number of OS threads Go will actually run
// concurrently, which is the right default for the CPU-bound
// bit-vector work this pool carries.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// protect runs t, converting a panic into *PanicError. A re-panicked
// *PanicError passes through unchanged so nested pools keep the
// original stack.
func protect(t func()) (err *PanicError) {
	defer func() {
		if rec := recover(); rec != nil {
			if pe, ok := rec.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: rec, Stack: debug.Stack()}
		}
	}()
	t()
	return nil
}

// RunCtx executes every task, at most Workers(workers) at a time,
// and returns when all dispatched tasks have finished. Panics are
// captured per task (the remaining tasks still run — tasks handed to
// one Run layer are independent by contract) and joined into the
// returned error as *PanicError values. Once ctx is done, tasks not
// yet dispatched are skipped and ctx.Err() joins the result; tasks
// already running are left to finish, so the pool always drains.
//
// With one worker the tasks run sequentially on the calling goroutine
// in order — no goroutines, no nondeterministic interleaving — which
// keeps Sequential mode truly sequential for debugging and
// differential testing.
func RunCtx(ctx context.Context, workers int, tasks []func()) error {
	if ctx == nil {
		ctx = context.Background()
	}
	w := Workers(workers)
	if w == 1 || len(tasks) == 1 {
		var errs []error
		for _, t := range tasks {
			if err := ctx.Err(); err != nil {
				errs = append(errs, err)
				break
			}
			if pe := protect(t); pe != nil {
				errs = append(errs, pe)
			}
		}
		return errors.Join(errs...)
	}
	if w > len(tasks) {
		w = len(tasks)
	}
	var (
		mu   sync.Mutex
		errs []error
	)
	next := make(chan func())
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for t := range next {
				if pe := protect(t); pe != nil {
					mu.Lock()
					errs = append(errs, pe)
					mu.Unlock()
				}
			}
		}()
	}
	done := ctx.Done()
dispatch:
	for _, t := range tasks {
		select {
		case <-done:
			mu.Lock()
			errs = append(errs, ctx.Err())
			mu.Unlock()
			break dispatch
		case next <- t:
		}
	}
	close(next)
	wg.Wait()
	return errors.Join(errs...)
}

// Run executes every task, at most Workers(workers) at a time, and
// returns when all have finished. A panicking task is re-panicked on
// the calling goroutine as a *PanicError (never from a worker, which
// would crash the process unrecoverably); the other tasks still
// complete first.
func Run(workers int, tasks []func()) {
	if err := RunCtx(context.Background(), workers, tasks); err != nil {
		var pe *PanicError
		if errors.As(err, &pe) {
			panic(pe)
		}
	}
}

// Map applies f to every item, at most Workers(workers) at a time, and
// returns the results in input order. The index passed to f is the
// item's position in items. Panics propagate as in Run.
func Map[T, R any](workers int, items []T, f func(int, T) R) []R {
	out := make([]R, len(items))
	tasks := make([]func(), len(items))
	for i := range items {
		i := i
		tasks[i] = func() { out[i] = f(i, items[i]) }
	}
	Run(workers, tasks)
	return out
}

// MapCtx is Map with cancellation and panic capture: results are
// returned in input order, with the zero value at every index whose
// task was skipped (context done) or panicked; the joined error
// reports why. A nil error means every slot is populated.
func MapCtx[T, R any](ctx context.Context, workers int, items []T, f func(int, T) R) ([]R, error) {
	out := make([]R, len(items))
	tasks := make([]func(), len(items))
	for i := range items {
		i := i
		tasks[i] = func() { out[i] = f(i, items[i]) }
	}
	err := RunCtx(ctx, workers, tasks)
	return out, err
}
