package batch

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		var n atomic.Int64
		tasks := make([]func(), 100)
		for i := range tasks {
			tasks[i] = func() { n.Add(1) }
		}
		Run(w, tasks)
		if n.Load() != 100 {
			t.Errorf("workers=%d: ran %d of 100 tasks", w, n.Load())
		}
	}
	Run(4, nil) // empty task list must not hang
}

func TestRunSequentialOrder(t *testing.T) {
	// One worker runs in order on the calling goroutine.
	var order []int
	tasks := make([]func(), 20)
	for i := range tasks {
		i := i
		tasks[i] = func() { order = append(order, i) }
	}
	Run(1, tasks)
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Run out of order: %v", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const w = 3
	var cur, peak atomic.Int64
	tasks := make([]func(), 50)
	for i := range tasks {
		tasks[i] = func() {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			runtime.Gosched()
			cur.Add(-1)
		}
	}
	Run(w, tasks)
	if peak.Load() > w {
		t.Errorf("observed %d concurrent tasks, want ≤ %d", peak.Load(), w)
	}
}

func TestRunCtxCapturesPanics(t *testing.T) {
	for _, w := range []int{1, 4} {
		var ran atomic.Int64
		tasks := []func(){
			func() { ran.Add(1) },
			func() { panic("boom") },
			func() { ran.Add(1) },
			func() { panic(errors.New("second")) },
			func() { ran.Add(1) },
		}
		err := RunCtx(context.Background(), w, tasks)
		if err == nil {
			t.Fatalf("workers=%d: panics not reported", w)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: error %v is not a PanicError", w, err)
		}
		if len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError without stack", w)
		}
		if ran.Load() != 3 {
			t.Errorf("workers=%d: independent tasks did not continue after panic: ran %d of 3", w, ran.Load())
		}
	}
}

func TestRunRepanicsOnCaller(t *testing.T) {
	defer func() {
		rec := recover()
		pe, ok := rec.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T (%v), want *PanicError", rec, rec)
		}
		if pe.Value != "worker bug" {
			t.Fatalf("panic value = %v", pe.Value)
		}
	}()
	Run(4, []func(){func() {}, func() { panic("worker bug") }})
	t.Fatal("Run did not re-panic")
}

func TestRunCtxCancellationSkipsUndispatched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var ran atomic.Int64
	tasks := make([]func(), 40)
	tasks[0] = func() {
		close(started)
		<-ctx.Done() // hold a worker until cancellation
		ran.Add(1)
	}
	for i := 1; i < len(tasks); i++ {
		tasks[i] = func() { ran.Add(1); time.Sleep(time.Millisecond) }
	}
	go func() {
		<-started
		cancel()
	}()
	err := RunCtx(ctx, 2, tasks)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() == int64(len(tasks)) {
		t.Fatal("cancellation did not skip any task")
	}
	// Sequential mode: already-cancelled context runs nothing.
	cancelled, stop := context.WithCancel(context.Background())
	stop()
	var n atomic.Int64
	err = RunCtx(cancelled, 1, []func(){func() { n.Add(1) }})
	if !errors.Is(err, context.Canceled) || n.Load() != 0 {
		t.Fatalf("sequential cancelled run: err=%v ran=%d", err, n.Load())
	}
}

func TestMapCtxZeroesSkippedSlots(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := MapCtx(ctx, 3, []int{1, 2, 3}, func(i, v int) int { return v * 10 })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	for i, v := range out {
		if v != 0 {
			t.Fatalf("out[%d] = %d, want zero for skipped slot", i, v)
		}
	}
	out, err = MapCtx(context.Background(), 3, []int{1, 2, 3}, func(i, v int) int { return v * 10 })
	if err != nil || out[0] != 10 || out[2] != 30 {
		t.Fatalf("MapCtx = %v, %v", out, err)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 64)
	for i := range in {
		in[i] = i
	}
	for _, w := range []int{1, 5, 0} {
		out := Map(w, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
	if got := Map(3, []string(nil), func(i int, s string) int { return 0 }); len(got) != 0 {
		t.Errorf("Map over nil = %v", got)
	}
}
