package batch

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS = %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(-3) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
}

func TestRunExecutesAllTasks(t *testing.T) {
	for _, w := range []int{1, 2, 4, 16} {
		var n atomic.Int64
		tasks := make([]func(), 100)
		for i := range tasks {
			tasks[i] = func() { n.Add(1) }
		}
		Run(w, tasks)
		if n.Load() != 100 {
			t.Errorf("workers=%d: ran %d of 100 tasks", w, n.Load())
		}
	}
	Run(4, nil) // empty task list must not hang
}

func TestRunSequentialOrder(t *testing.T) {
	// One worker runs in order on the calling goroutine.
	var order []int
	tasks := make([]func(), 20)
	for i := range tasks {
		i := i
		tasks[i] = func() { order = append(order, i) }
	}
	Run(1, tasks)
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Run out of order: %v", order)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	const w = 3
	var cur, peak atomic.Int64
	tasks := make([]func(), 50)
	for i := range tasks {
		tasks[i] = func() {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			runtime.Gosched()
			cur.Add(-1)
		}
	}
	Run(w, tasks)
	if peak.Load() > w {
		t.Errorf("observed %d concurrent tasks, want ≤ %d", peak.Load(), w)
	}
}

func TestMapPreservesOrder(t *testing.T) {
	in := make([]int, 64)
	for i := range in {
		in[i] = i
	}
	for _, w := range []int{1, 5, 0} {
		out := Map(w, in, func(i, v int) int { return v * v })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
	if got := Map(3, []string(nil), func(i int, s string) int { return 0 }); len(got) != 0 {
		t.Errorf("Map over nil = %v", got)
	}
}
