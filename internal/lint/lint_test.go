package lint

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"sideeffect/internal/lang/token"
)

// TestRegistryInvariants pins the registry contract: IDs strictly
// ascending (append-only), names unique, docs present.
func TestRegistryInvariants(t *testing.T) {
	rules := Rules()
	if len(rules) != 7 {
		t.Fatalf("registry has %d rules, want 7", len(rules))
	}
	names := map[string]bool{}
	for i, rl := range rules {
		if i > 0 && rules[i-1].ID >= rl.ID {
			t.Errorf("IDs out of order: %s before %s", rules[i-1].ID, rl.ID)
		}
		if !strings.HasPrefix(rl.ID, "SE") {
			t.Errorf("rule ID %q lacks the SE prefix", rl.ID)
		}
		if names[rl.Name] {
			t.Errorf("duplicate rule name %q", rl.Name)
		}
		names[rl.Name] = true
		if rl.Doc == "" || rl.run == nil {
			t.Errorf("%s: missing doc or run", rl.ID)
		}
	}
}

func TestSeverity(t *testing.T) {
	for name, want := range map[string]Severity{"info": Info, "warning": Warning, "error": Error} {
		got, err := ParseSeverity(name)
		if err != nil || got != want {
			t.Errorf("ParseSeverity(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Errorf("String() round-trip: %q → %q", name, got.String())
		}
	}
	if _, err := ParseSeverity("fatal"); err == nil {
		t.Error("ParseSeverity accepted an unknown name")
	}
	b, err := json.Marshal(Warning)
	if err != nil || string(b) != `"warning"` {
		t.Errorf("MarshalJSON = %s, %v", b, err)
	}
}

func TestConfigSelection(t *testing.T) {
	// Zero config: everything on at defaults.
	sel, err := Config{}.selection()
	if err != nil {
		t.Fatal(err)
	}
	for _, rl := range Rules() {
		if sev, on := sel.level(rl); !on || sev != rl.Default {
			t.Errorf("%s: level = %v, %v under the zero config", rl.ID, sev, on)
		}
	}
	// Enable by slug narrows; Disable by ID subtracts afterwards.
	sel, err = Config{Enable: []string{"pure-procedure", "SE004"}, Disable: []string{"SE004"}}.selection()
	if err != nil {
		t.Fatal(err)
	}
	var on []string
	for _, rl := range Rules() {
		if _, ok := sel.level(rl); ok {
			on = append(on, rl.ID)
		}
	}
	if !reflect.DeepEqual(on, []string{"SE002"}) {
		t.Errorf("enabled after Enable+Disable: %v", on)
	}
	// Unknown keys fail loudly.
	for _, cfg := range []Config{
		{Enable: []string{"SE999"}},
		{Disable: []string{"bogus"}},
		{Severity: map[string]Severity{"nope": Error}},
	} {
		if _, err := cfg.selection(); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestSortDiagnostics(t *testing.T) {
	d := func(line, col int, rule, subject string) Diagnostic {
		return Diagnostic{Rule: rule, Subject: subject, Pos: token.Pos{Line: line, Col: col}}
	}
	ds := []Diagnostic{
		d(2, 1, "SE004", "g"),
		d(1, 5, "SE002", "p"),
		d(1, 5, "SE001", "x"),
		d(1, 2, "SE007", "i"),
		d(1, 5, "SE001", "a"),
	}
	sortDiagnostics(ds)
	var got []string
	for _, x := range ds {
		got = append(got, x.Rule+":"+x.Subject)
	}
	want := []string{"SE007:i", "SE001:a", "SE001:x", "SE002:p", "SE004:g"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("order = %v, want %v", got, want)
	}
}

// TestWritersOnSyntheticReport drives the writers without an analysis:
// zero positions clamp to 1:1, and the SARIF rule index stays aligned
// with the registry.
func TestWritersOnSyntheticReport(t *testing.T) {
	rep := &Report{
		Diags: []Diagnostic{
			{Rule: "SE004", Name: "dead-global", Severity: Warning, Subject: "g", Message: "m"},
		},
		Counts: map[string]int{"SE004": 1},
	}
	files := []FileReport{{File: "synth.mpl", Report: rep}}

	text := Text(files)
	if text != "synth.mpl:1:1: warning: m [SE004]\n" {
		t.Errorf("Text = %q", text)
	}

	out, err := SARIF(files)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				RuleIndex int    `json:"ruleIndex"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatal(err)
	}
	res := doc.Runs[0].Results[0]
	if doc.Runs[0].Tool.Driver.Rules[res.RuleIndex].ID != res.RuleID {
		t.Errorf("ruleIndex %d does not resolve to %s", res.RuleIndex, res.RuleID)
	}

	jsonOut, err := JSON(files)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jsonOut, `"findings": 1`) || !strings.Contains(jsonOut, `"line": 1`) {
		t.Errorf("JSON output: %s", jsonOut)
	}

	flat := SortedCounts(map[string]int{"SE007": 2, "SE001": 1})
	if flat[0].Rule != "SE001" || flat[1].Rule != "SE007" {
		t.Errorf("SortedCounts order: %v", flat)
	}
}
