package lint

import (
	"fmt"
	"strings"

	"sideeffect/internal/ir"
	"sideeffect/internal/report"
)

// Rule is one fact-driven diagnostic. Rules only read the Input; they
// emit findings in any order (the engine sorts).
type Rule struct {
	// ID is the stable identifier ("SE001"); Name the readable slug
	// used in configuration and SARIF.
	ID   string
	Name string
	// Default is the severity before configuration overrides.
	Default Severity
	// Doc is the one-line description shown by `modlint -list` and
	// carried as SARIF rule metadata.
	Doc string
	run func(in *Input, emit func(Diagnostic))
}

// registry lists every rule in ID order. IDs are append-only: a
// retired rule's ID is never reused (SARIF consumers key on it).
var registry = []Rule{
	{
		ID: "SE001", Name: "ref-never-modified", Default: Warning,
		Doc: "a scalar ref parameter outside RMOD is never modified; it can be declared val",
		run: ruleRefNeverModified,
	},
	{
		ID: "SE002", Name: "pure-procedure", Default: Info,
		Doc: "a procedure whose GMOD∪RMOD is empty outside its own frame has no caller-visible effects; calls to it may be reordered",
		run: rulePureProcedure,
	},
	{
		ID: "SE003", Name: "alias-hazard", Default: Warning,
		Doc: "an alias pair ⟨x, y⟩ with x in a call's DMOD forces MOD to include y — the Section-5 precision loss",
		run: ruleAliasHazard,
	},
	{
		ID: "SE004", Name: "dead-global", Default: Warning,
		Doc: "a global in no procedure's GMOD or GUSE is never modified or used",
		run: ruleDeadGlobal,
	},
	{
		ID: "SE005", Name: "ignorable-call", Default: Info,
		Doc: "a call whose MOD is disjoint from every subsequent USE has dead effects",
		run: ruleIgnorableCall,
	},
	{
		ID: "SE006", Name: "loop-parallelizable", Default: Info,
		Doc: "regular sections prove the loop's iterations independent; it can run in parallel",
		run: ruleLoopParallel,
	},
	{
		ID: "SE007", Name: "loop-serial", Default: Info,
		Doc: "a loop-carried dependence (by regular sections) forces the loop to run serially",
		run: ruleLoopSerial,
	},
}

// Rules returns the registry (copies) in ID order, for listings and
// SARIF metadata.
func Rules() []Rule {
	out := make([]Rule, len(registry))
	copy(out, registry)
	return out
}

// ruleRefNeverModified flags scalar by-reference formals that RMOD
// proves are never modified through any call chain: the reference is
// gratuitous and the parameter can be passed by value. Array formals
// are skipped (MiniPL, like Fortran, has no by-value arrays).
func ruleRefNeverModified(in *Input, emit func(Diagnostic)) {
	for _, p := range in.Prog.Procs {
		for _, f := range p.Formals {
			if f.Kind != ir.FormalRef || f.Rank() != 0 {
				continue
			}
			if in.Mod.RMOD.Of(f) {
				continue
			}
			emit(Diagnostic{
				Proc: p.Name, Subject: f.Name, Pos: f.Pos,
				Message: fmt.Sprintf("ref parameter %s of %s is never modified (not in RMOD); declare it val",
					f.Name, p.Name),
			})
		}
	}
}

// rulePureProcedure flags procedures with no effects visible to any
// caller: GMOD(p) contains nothing outside p's own frame (its locals
// and val-formal copies), which also implies no ref formal is in RMOD.
// Such calls commute with any computation and may run in any order.
func rulePureProcedure(in *Input, emit func(Diagnostic)) {
	for _, p := range in.Prog.Procs {
		if p.IsMain {
			continue
		}
		pure := true
		in.Mod.GMOD[p.ID].ForEach(func(id int) {
			v := in.Prog.Vars[id]
			if v.Owner != p || v.Kind == ir.FormalRef {
				pure = false
			}
		})
		if pure {
			emit(Diagnostic{
				Proc: p.Name, Subject: p.Name, Pos: p.Pos,
				Message: fmt.Sprintf("procedure %s has no caller-visible side effects (GMOD∪RMOD empty); calls to it may be reordered or parallelized",
					p.Name),
			})
		}
	}
}

// ruleAliasHazard reports the exact precision loss of Section 5: an
// alias pair ⟨x, y⟩ holding on entry to p, together with a call site
// in p whose DMOD contains one of the two names, means the factored
// MOD set must conservatively include the other — a write through one
// name is observable through both.
func ruleAliasHazard(in *Input, emit func(Diagnostic)) {
	for _, p := range in.Prog.Procs {
		pairs := in.Aliases.Pairs(p)
		if len(pairs) == 0 {
			continue
		}
		for _, cs := range p.Calls {
			dmod := in.Mod.DMOD[cs.ID]
			for _, pr := range pairs {
				x, y := in.Prog.Vars[pr.X], in.Prog.Vars[pr.Y]
				hit, other := x, y
				switch {
				case dmod.Has(x.ID):
				case dmod.Has(y.ID):
					hit, other = y, x
				default:
					continue
				}
				emit(Diagnostic{
					Proc: p.Name, Subject: hit.Name, Pos: cs.Pos,
					Message: fmt.Sprintf("%s and %s may be aliased on entry to %s and the call to %s may modify %s; writes are visible through both names (MOD widens to include %s)",
						x, y, p.Name, cs.Callee.Name, hit, other),
				})
			}
		}
	}
}

// ruleDeadGlobal flags globals that appear in no procedure's GMOD or
// GUSE: nothing reachable ever modifies or reads them.
func ruleDeadGlobal(in *Input, emit func(Diagnostic)) {
	for _, g := range in.Prog.Globals() {
		live := false
		for _, p := range in.Prog.Procs {
			if in.Mod.GMOD[p.ID].Has(g.ID) || in.Use.GMOD[p.ID].Has(g.ID) {
				live = true
				break
			}
		}
		if !live {
			emit(Diagnostic{
				Subject: g.Name, Pos: g.Pos,
				Message: fmt.Sprintf("global %s is never modified or used by any procedure (absent from every GMOD and GUSE); it can be removed",
					g.Name),
			})
		}
	}
}

// ruleIgnorableCall flags call sites whose (alias-factored) MOD set is
// disjoint from every use the caller can still make: the caller's own
// direct uses, the USE sets of its other call sites, and — for values
// that outlive the caller's frame — any use anywhere in the program.
// Everything such a call computes is dead. The check is the
// flow-insensitive over-approximation of "subsequent USE": uses
// textually before the call also count, which only suppresses
// findings, never fabricates them.
func ruleIgnorableCall(in *Input, emit func(Diagnostic)) {
	for _, p := range in.Prog.Procs {
		for _, cs := range p.Calls {
			mod := in.ModSets[cs.ID]
			if mod.Empty() {
				continue // no effects at all: SE002 territory
			}
			dead := true
			mod.ForEach(func(id int) {
				if !dead {
					return
				}
				v := in.Prog.Vars[id]
				if p.IUSE.Has(id) {
					dead = false
					return
				}
				for _, other := range p.Calls {
					if other != cs && in.UseSets[other.ID].Has(id) {
						dead = false
						return
					}
				}
				// v outlives p's frame (a global, an outer-scope
				// variable, or a ref formal bound to a caller's
				// variable): it must be unused program-wide.
				if v.Owner != p || v.Kind == ir.FormalRef {
					for _, q := range in.Prog.Procs {
						if in.Use.GMOD[q.ID].Has(id) {
							dead = false
							return
						}
					}
				}
			})
			if dead {
				emit(Diagnostic{
					Proc: p.Name, Subject: cs.Callee.Name, Pos: cs.Pos,
					Message: fmt.Sprintf("call to %s modifies only %s, none of which is ever used afterwards; the call's effects are dead",
						cs.Callee.Name, "{"+strings.Join(report.VarNames(in.Prog, mod), ", ")+"}"),
				})
			}
		}
	}
}

// ruleLoopParallel surfaces positive Section-6 verdicts: the regular
// sections of the loop body's calls are disjoint across iterations,
// so the loop parallelizes — the precision win whole-array summaries
// cannot deliver.
func ruleLoopParallel(in *Input, emit func(Diagnostic)) {
	for _, l := range in.Loops {
		if !l.Parallel {
			continue
		}
		evidence := ""
		if len(l.Sections) > 0 {
			evidence = " (" + strings.Join(l.Sections, "; ") + ")"
		}
		emit(Diagnostic{
			Proc: l.Proc, Subject: l.Index, Pos: l.Pos,
			Message: fmt.Sprintf("loop over %s: iterations are independent%s; the loop can run in parallel",
				l.Index, evidence),
		})
	}
}

// ruleLoopSerial surfaces negative Section-6 verdicts with the
// conflicting accesses as evidence.
func ruleLoopSerial(in *Input, emit func(Diagnostic)) {
	for _, l := range in.Loops {
		if l.Parallel {
			continue
		}
		emit(Diagnostic{
			Proc: l.Proc, Subject: l.Index, Pos: l.Pos,
			Message: fmt.Sprintf("loop over %s: iterations carry dependences (%s); the loop must run serially",
				l.Index, strings.Join(l.Conflicts, "; ")),
		})
	}
}
