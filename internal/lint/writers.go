package lint

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// toolName and toolVersion identify the engine in SARIF and JSON
// output. The version follows the diagnostic schema, not the module:
// bump it when rule IDs or output shapes change.
const (
	toolName    = "modlint"
	toolVersion = "1.0.0"
)

// FileReport pairs one analyzed input (by display name / artifact URI)
// with its findings, for the multi-file writers.
type FileReport struct {
	File   string
	Report *Report
}

// line and col clamp a possibly-zero position (programs built without
// source text) to the 1-based minimum the output formats require.
func clampPos(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Text renders the classic compiler-style listing, one finding per
// line: "file:line:col: severity: message [ID]". An empty report
// renders as the empty string.
func Text(files []FileReport) string {
	var b strings.Builder
	for _, f := range files {
		for _, d := range f.Report.Diags {
			fmt.Fprintf(&b, "%s:%d:%d: %s: %s [%s]\n",
				f.File, clampPos(d.Pos.Line), clampPos(d.Pos.Col), d.Severity, d.Message, d.Rule)
		}
	}
	return b.String()
}

// jsonDiagnostic is the stable JSON shape of one finding.
type jsonDiagnostic struct {
	Rule     string   `json:"rule"`
	Name     string   `json:"name"`
	Severity Severity `json:"severity"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Proc     string   `json:"proc,omitempty"`
	Subject  string   `json:"subject,omitempty"`
	Message  string   `json:"message"`
}

// jsonFile is one input's findings.
type jsonFile struct {
	File        string           `json:"file"`
	Diagnostics []jsonDiagnostic `json:"diagnostics"`
	Counts      map[string]int   `json:"counts"`
}

// jsonOutput is the top-level JSON document.
type jsonOutput struct {
	Tool     string         `json:"tool"`
	Version  string         `json:"version"`
	Files    []jsonFile     `json:"files"`
	Counts   map[string]int `json:"counts"`
	Findings int            `json:"findings"`
}

// JSON renders the machine-readable report. Output is deterministic:
// diagnostics keep the engine's total order and map keys marshal
// sorted.
func JSON(files []FileReport) (string, error) {
	out := jsonOutput{Tool: toolName, Version: toolVersion, Counts: map[string]int{}}
	for _, f := range files {
		jf := jsonFile{File: f.File, Diagnostics: []jsonDiagnostic{}, Counts: f.Report.Counts}
		for _, d := range f.Report.Diags {
			jf.Diagnostics = append(jf.Diagnostics, jsonDiagnostic{
				Rule: d.Rule, Name: d.Name, Severity: d.Severity,
				Line: clampPos(d.Pos.Line), Col: clampPos(d.Pos.Col),
				Proc: d.Proc, Subject: d.Subject, Message: d.Message,
			})
		}
		for id, n := range f.Report.Counts {
			out.Counts[id] += n
		}
		out.Findings += len(f.Report.Diags)
		out.Files = append(out.Files, jf)
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// SARIF 2.1.0 document structs — the minimal valid subset: one run,
// full rule metadata on the driver, one result per finding with a
// physical location.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string          `json:"name"`
	Version string          `json:"version"`
	Rules   []sarifRuleMeta `json:"rules"`
}

type sarifRuleMeta struct {
	ID                   string       `json:"id"`
	Name                 string       `json:"name"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	DefaultConfiguration sarifLevel   `json:"defaultConfiguration"`
}

type sarifLevel struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevelOf maps engine severities onto the three SARIF levels.
func sarifLevelOf(s Severity) string {
	switch s {
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return "note"
}

// SARIF renders a SARIF 2.1.0 log with one run covering every file.
// The driver carries the full rule registry (stable ruleIndex values),
// and results keep per-file engine order, files in input order.
func SARIF(files []FileReport) (string, error) {
	driver := sarifDriver{Name: toolName, Version: toolVersion}
	index := make(map[string]int)
	for i, rl := range Rules() {
		index[rl.ID] = i
		driver.Rules = append(driver.Rules, sarifRuleMeta{
			ID: rl.ID, Name: rl.Name,
			ShortDescription:     sarifMessage{Text: rl.Doc},
			DefaultConfiguration: sarifLevel{Level: sarifLevelOf(rl.Default)},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, f := range files {
		for _, d := range f.Report.Diags {
			run.Results = append(run.Results, sarifResult{
				RuleID: d.Rule, RuleIndex: index[d.Rule], Level: sarifLevelOf(d.Severity),
				Message: sarifMessage{Text: d.Message},
				Locations: []sarifLocation{{PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region: sarifRegion{
						StartLine:   clampPos(d.Pos.Line),
						StartColumn: clampPos(d.Pos.Col),
					},
				}}},
			})
		}
	}
	doc := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return "", err
	}
	return string(b) + "\n", nil
}

// SortedCounts flattens a Counts map deterministically, for metrics
// and table rendering.
func SortedCounts(counts map[string]int) []struct {
	Rule string
	N    int
} {
	ids := make([]string, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]struct {
		Rule string
		N    int
	}, 0, len(ids))
	for _, id := range ids {
		out = append(out, struct {
			Rule string
			N    int
		}{id, counts[id]})
	}
	return out
}
