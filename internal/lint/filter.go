package lint

// Filter derives the report a Run with cfg would have produced from a
// completed full run (every rule enabled, default severities, no
// minimum). It is the warm-restart path's lint engine: a persisted
// full-rules report can answer any request configuration without a
// live analysis, byte-identically to running the engine fresh.
//
// The equivalence holds because rule selection and severity handling
// never change *which* diagnostics a rule emits, only whether they are
// kept and at what level, and because the engine's total order —
// (line, col, rule, subject, message) — does not involve severity, so
// re-leveling cannot reorder. Filtering r.Diags in place therefore
// preserves Run's order exactly.
func (r *Report) Filter(cfg Config) (*Report, error) {
	sel, err := cfg.selection()
	if err != nil {
		return nil, err
	}
	out := &Report{Counts: make(map[string]int)}
	// keep maps each surviving rule to its effective severity, exactly
	// as Run resolves it; rules selected but below MinSeverity stay
	// visible in Counts at zero, like Run's.
	keep := make(map[string]Severity)
	for _, rl := range registry {
		sev, on := sel.level(rl)
		if !on {
			continue
		}
		out.Counts[rl.ID] = 0
		if sev < cfg.MinSeverity {
			continue
		}
		keep[rl.ID] = sev
	}
	for _, d := range r.Diags {
		sev, ok := keep[d.Rule]
		if !ok {
			continue
		}
		d.Severity = sev
		out.Diags = append(out.Diags, d)
		out.Counts[d.Rule]++
	}
	return out, nil
}
