package lint

import (
	"fmt"

	"sideeffect/internal/prof"
)

// Config selects and re-levels rules. The zero value runs every
// registered rule at its default severity.
type Config struct {
	// Enable, when non-empty, runs exactly the named rules (by ID or
	// name slug); everything else is off.
	Enable []string
	// Disable turns the named rules off (applied after Enable).
	Disable []string
	// MinSeverity drops findings below this level. Selected rules
	// still appear in Report.Counts with a zero count.
	MinSeverity Severity
	// Severity overrides the default severity per rule (keyed by ID
	// or name slug).
	Severity map[string]Severity
	// Prof, when non-nil, accumulates per-rule wall time under
	// "lint.<rule-id>" stage names.
	Prof *prof.Profile
}

// selection is the resolved per-rule configuration.
type selection struct {
	enabled map[string]bool // by rule ID; nil means "all"
	levels  map[string]Severity
}

// resolve maps a user-supplied rule ID or name slug to the rule.
func resolve(key string) (Rule, error) {
	for _, rl := range registry {
		if rl.ID == key || rl.Name == key {
			return rl, nil
		}
	}
	return Rule{}, fmt.Errorf("lint: unknown rule %q", key)
}

func (c Config) selection() (selection, error) {
	sel := selection{levels: make(map[string]Severity)}
	if len(c.Enable) > 0 {
		sel.enabled = make(map[string]bool)
		for _, key := range c.Enable {
			rl, err := resolve(key)
			if err != nil {
				return sel, err
			}
			sel.enabled[rl.ID] = true
		}
	}
	for _, key := range c.Disable {
		rl, err := resolve(key)
		if err != nil {
			return sel, err
		}
		if sel.enabled == nil {
			sel.enabled = make(map[string]bool)
			for _, r := range registry {
				sel.enabled[r.ID] = true
			}
		}
		delete(sel.enabled, rl.ID)
	}
	for key, sev := range c.Severity {
		rl, err := resolve(key)
		if err != nil {
			return sel, err
		}
		sel.levels[rl.ID] = sev
	}
	return sel, nil
}

// level reports the effective severity of rl and whether it runs.
func (s selection) level(rl Rule) (Severity, bool) {
	if s.enabled != nil && !s.enabled[rl.ID] {
		return 0, false
	}
	if sev, ok := s.levels[rl.ID]; ok {
		return sev, true
	}
	return rl.Default, true
}
