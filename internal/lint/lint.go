// Package lint is the interprocedural diagnostics engine: it consumes
// a completed side-effect analysis (the MOD/USE summaries, RMOD, alias
// pairs, and regular-section loop verdicts) and turns the facts into
// positioned, deterministic findings a programmer can act on.
//
// This is the workload the paper's introduction motivates: the
// programming environment computes summaries so that it can *answer
// questions* about the program — "can I pass this by value?", "may
// these calls be reordered?", "does this loop parallelize?". Each rule
// here is one such question, answered purely from the analysis facts
// (no rule re-inspects source text).
//
// The engine is configuration-driven (rules can be enabled, disabled,
// and re-leveled), and its output is rendered by three writers: human
// text, a stable JSON schema, and SARIF 2.1.0 for editor and CI
// integration. Diagnostics are totally ordered by (line, col, rule ID,
// subject, message), so repeated and concurrent runs are byte-identical.
package lint

import (
	"fmt"
	"sort"

	"sideeffect/internal/alias"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/token"
)

// Severity grades a finding.
type Severity int

// Severities, in ascending order.
const (
	Info Severity = iota
	Warning
	Error
)

// String renders the severity.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// ParseSeverity resolves a severity name.
func ParseSeverity(name string) (Severity, error) {
	switch name {
	case "info":
		return Info, nil
	case "warning":
		return Warning, nil
	case "error":
		return Error, nil
	}
	return 0, fmt.Errorf("lint: unknown severity %q (want info, warning, or error)", name)
}

// Diagnostic is one finding. Pos is a position in the analyzed source
// when the program came from the parser; programs built directly
// through ir.Builder carry zero positions, which the writers clamp.
type Diagnostic struct {
	// Rule is the stable rule ID ("SE001"); Name its readable slug.
	Rule string
	Name string
	// Severity after configuration overrides.
	Severity Severity
	// Proc names the enclosing procedure ("" for program-level
	// findings such as dead globals).
	Proc string
	// Subject is the entity the finding is about (a variable,
	// procedure, or loop-index name) — the token Pos points at.
	Subject string
	Pos     token.Pos
	Message string
}

// LoopInfo is one counted loop's pre-computed Section-6 verdict, fed
// to the loop rules by the caller (the verdict logic lives with the
// public LoopParallelizable API, not here).
type LoopInfo struct {
	// Proc is the procedure containing the loop; Index the loop
	// variable's source name.
	Proc  string
	Index string
	Pos   token.Pos
	// Parallel is the Section-6 verdict; Conflicts the serializing
	// dependences when false; Sections the per-array evidence.
	Parallel  bool
	Conflicts []string
	Sections  []string
}

// Input bundles the analysis facts the rules consume. All fields are
// read-only to the engine.
type Input struct {
	Prog *ir.Program
	// Mod and Use are the two core problem results (GMOD/GUSE, RMOD,
	// DMOD/DUSE).
	Mod, Use *core.Result
	// Aliases is the Section-5 alias-pair analysis.
	Aliases *alias.Analysis
	// ModSets and UseSets are the final alias-factored per-call-site
	// answers, indexed by call-site ID.
	ModSets, UseSets []*bitset.Set
	// Loops carries one verdict per recorded loop, in program order.
	Loops []LoopInfo
}

// Report is the outcome of one engine run over one program.
type Report struct {
	// Diags is sorted by (line, col, rule ID, subject, message).
	Diags []Diagnostic
	// Counts is the number of findings per rule ID, every selected
	// rule present (zero counts included, for metrics).
	Counts map[string]int
}

// Empty reports whether the run produced no findings.
func (r *Report) Empty() bool { return len(r.Diags) == 0 }

// Run executes the selected rules over the input. The error reports
// configuration mistakes (unknown rule or severity names); an input
// with no findings yields an empty, non-nil report.
func Run(in *Input, cfg Config) (*Report, error) {
	sel, err := cfg.selection()
	if err != nil {
		return nil, err
	}
	rep := &Report{Counts: make(map[string]int)}
	for _, rl := range registry {
		sev, on := sel.level(rl)
		if !on {
			continue
		}
		rep.Counts[rl.ID] = 0
		if sev < cfg.MinSeverity {
			continue // selected but filtered: count stays visible at 0
		}
		cfg.Prof.Do("lint."+rl.ID, func() {
			rl.run(in, func(d Diagnostic) {
				d.Rule, d.Name, d.Severity = rl.ID, rl.Name, sev
				rep.Diags = append(rep.Diags, d)
				rep.Counts[rl.ID]++
			})
		})
	}
	sortDiagnostics(rep.Diags)
	return rep, nil
}

// sortDiagnostics imposes the engine's total order: position first
// (line, then column), then rule ID, then subject and message as
// tie-breakers for co-located findings.
func sortDiagnostics(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
}
