// Package workload generates synthetic MiniPL programs, both as
// ir.Program values and as source text. The paper's evaluation is
// analytic — complexity bounds in terms of N_C, E_C, µ_a, µ_f, d_P and
// the number of globals — so the generators are parameterized on
// exactly those quantities, letting the benchmark harness sweep the
// axes each bound is stated in. All generation is deterministic given
// the seed.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/token"
)

// Config parameterizes Random.
type Config struct {
	// Seed drives all randomness; equal Configs generate equal
	// programs.
	Seed int64
	// Procs is the number of procedures besides main (N_C - 1).
	Procs int
	// Globals is the number of global scalar variables. The paper
	// argues this grows linearly with program size.
	Globals int
	// GlobalArrays is the number of rank-1 global array variables
	// (participating in regular-section workloads).
	GlobalArrays int
	// AvgFormals is µ_f, the mean formal-parameter count per
	// procedure.
	AvgFormals float64
	// ValFraction is the fraction of formals passed by value.
	ValFraction float64
	// ArrayFormalFraction is the fraction of ref formals that are
	// rank-1 arrays (requires GlobalArrays > 0 to be bindable).
	ArrayFormalFraction float64
	// AvgCalls is the mean number of *extra* call sites per procedure,
	// beyond the spanning calls that keep every procedure reachable.
	AvgCalls float64
	// CycleFraction is the probability that an extra call targets a
	// procedure whose spanning-tree index is ≤ the caller's, creating
	// cycles (recursion) in the call graph.
	CycleFraction float64
	// MaxDepth is d_P, the maximum lexical nesting level; 0 generates
	// a flat (C/Fortran-like) program.
	MaxDepth int
	// NestFraction is the probability that a procedure is declared
	// nested inside an eligible earlier procedure.
	NestFraction float64
	// FormalModProb is the probability that a procedure directly
	// modifies each of its ref formals (the RMOD seeds).
	FormalModProb float64
	// GlobalModProb / GlobalUseProb are per-procedure probabilities of
	// directly modifying/using a randomly chosen global.
	GlobalModProb, GlobalUseProb float64
}

// DefaultConfig returns a mid-sized configuration with the shape
// parameters the paper considers typical (small constant µ values,
// some recursion, a few globals per procedure).
func DefaultConfig(procs int, seed int64) Config {
	return Config{
		Seed:                seed,
		Procs:               procs,
		Globals:             procs, // globals grow linearly with N
		GlobalArrays:        2,
		AvgFormals:          3,
		ValFraction:         0.25,
		ArrayFormalFraction: 0.15,
		AvgCalls:            2,
		CycleFraction:       0.3,
		MaxDepth:            0,
		NestFraction:        0,
		FormalModProb:       0.4,
		GlobalModProb:       0.5,
		GlobalUseProb:       0.6,
	}
}

// Random generates a program from the configuration. Every procedure
// is reachable from main: main calls each top-level procedure once and
// each parent calls each of its nested procedures once (the "spanning"
// calls); extra calls are layered on top per AvgCalls/CycleFraction.
func Random(cfg Config) *ir.Program {
	r := rand.New(rand.NewSource(cfg.Seed))
	b := ir.NewBuilder(fmt.Sprintf("random%d", cfg.Seed))

	globals := make([]*ir.Variable, 0, cfg.Globals)
	for i := 0; i < cfg.Globals; i++ {
		globals = append(globals, b.Global(fmt.Sprintf("g%d", i)))
	}
	arrays := make([]*ir.Variable, 0, cfg.GlobalArrays)
	for i := 0; i < cfg.GlobalArrays; i++ {
		arrays = append(arrays, b.Global(fmt.Sprintf("ga%d", i), 100))
	}

	// Procedure skeletons with nesting. The eligible-parent list is
	// maintained incrementally (append-only, creation order — exactly
	// the order the old per-procedure rescan produced), so skeleton
	// generation is O(Procs) instead of O(Procs²).
	procs := make([]*ir.Procedure, 0, cfg.Procs)
	topLevel := make([]*ir.Procedure, 0, cfg.Procs)
	var eligParents []*ir.Procedure
	for i := 0; i < cfg.Procs; i++ {
		var parent *ir.Procedure
		if cfg.MaxDepth > 0 && len(procs) > 0 && r.Float64() < cfg.NestFraction {
			// Pick an eligible parent (level < MaxDepth).
			if len(eligParents) > 0 {
				parent = eligParents[r.Intn(len(eligParents))]
			}
		}
		p := b.Proc(fmt.Sprintf("p%d", i), parent)
		if parent == nil {
			topLevel = append(topLevel, p)
		}
		if p.Level < cfg.MaxDepth {
			eligParents = append(eligParents, p)
		}
		nf := poissonish(r, cfg.AvgFormals)
		for j := 0; j < nf; j++ {
			kind := ir.FormalRef
			rank := 0
			if r.Float64() < cfg.ValFraction {
				kind = ir.FormalVal
			} else if r.Float64() < cfg.ArrayFormalFraction && len(arrays) > 0 {
				rank = 1
			}
			b.Formal(p, fmt.Sprintf("f%d", j), kind, rank)
		}
		if r.Intn(2) == 0 {
			b.Local(p, "t0")
		}
		procs = append(procs, p)
	}

	// Direct effects.
	for _, p := range procs {
		for _, f := range p.Formals {
			if f.Kind == ir.FormalRef && f.Rank() == 0 && r.Float64() < cfg.FormalModProb {
				b.Mod(p, f)
			}
			if r.Float64() < 0.3 {
				if f.Rank() == 0 {
					b.Use(p, f)
				}
			}
			if f.Rank() == 1 && r.Float64() < cfg.FormalModProb {
				b.Access(p, f, []ir.Sub{{Kind: ir.SubConst, Const: 1 + r.Intn(9)}}, true, token.Pos{})
			}
		}
		if len(globals) > 0 && r.Float64() < cfg.GlobalModProb {
			b.Mod(p, globals[r.Intn(len(globals))])
		}
		if len(globals) > 0 && r.Float64() < cfg.GlobalUseProb {
			b.Use(p, globals[r.Intn(len(globals))])
		}
		for _, l := range p.Locals {
			if r.Intn(2) == 0 {
				b.Mod(p, l)
			}
		}
	}

	// visibleScalars(p): candidate ref actuals.
	visibleScalars := func(p *ir.Procedure) []*ir.Variable {
		out := make([]*ir.Variable, 0, 8)
		for q := p; q != nil; q = q.Parent {
			for _, f := range q.Formals {
				if f.Kind == ir.FormalRef && f.Rank() == 0 {
					out = append(out, f)
				}
			}
			for _, l := range q.Locals {
				if l.Rank() == 0 {
					out = append(out, l)
				}
			}
		}
		return out
	}
	visibleArrays := func(p *ir.Procedure) []*ir.Variable {
		out := append([]*ir.Variable(nil), arrays...)
		for q := p; q != nil; q = q.Parent {
			for _, f := range q.Formals {
				if f.Kind == ir.FormalRef && f.Rank() == 1 {
					out = append(out, f)
				}
			}
		}
		return out
	}

	makeArgs := func(caller, callee *ir.Procedure) []ir.Actual {
		args := make([]ir.Actual, 0, len(callee.Formals))
		scalars := visibleScalars(caller)
		for _, f := range callee.Formals {
			switch {
			case f.Kind == ir.FormalVal:
				// Literal or a used variable.
				if len(globals) > 0 && r.Intn(2) == 0 {
					g := globals[r.Intn(len(globals))]
					args = append(args, ir.Actual{Mode: ir.FormalVal, Var: g, Uses: []*ir.Variable{g}})
				} else {
					args = append(args, ir.Actual{Mode: ir.FormalVal})
				}
			case f.Rank() == 1:
				as := visibleArrays(caller)
				a := as[r.Intn(len(as))]
				args = append(args, ir.Actual{Mode: ir.FormalRef, Var: a})
			default:
				// Prefer binding the caller's own formals (β edges),
				// otherwise a global.
				if len(scalars) > 0 && r.Float64() < 0.6 {
					args = append(args, ir.Actual{Mode: ir.FormalRef, Var: scalars[r.Intn(len(scalars))]})
				} else if len(globals) > 0 {
					args = append(args, ir.Actual{Mode: ir.FormalRef, Var: globals[r.Intn(len(globals))]})
				} else if len(scalars) > 0 {
					args = append(args, ir.Actual{Mode: ir.FormalRef, Var: scalars[r.Intn(len(scalars))]})
				} else {
					// Guaranteed fallback: a fresh global.
					g := b.Global(fmt.Sprintf("gx%d", len(globals)))
					globals = append(globals, g)
					args = append(args, ir.Actual{Mode: ir.FormalRef, Var: g})
				}
			}
		}
		return args
	}

	// Spanning calls: main → each top-level proc; parent → each child.
	for _, p := range procs {
		caller := b.Main()
		if p.Parent != nil {
			caller = p.Parent
		}
		b.Call(caller, p, makeArgs(caller, p), token.Pos{})
	}

	// The procedures callable from p under MiniPL visibility are the
	// top-level procedures, the children of p, and the children of p's
	// ancestors (which includes the ancestors themselves and their
	// siblings) — the union, in creation order, of at most
	// nesting-depth+1 ID-sorted lists (topLevel and the Nested slices
	// along p's parent chain). Rather than materializing that union per
	// caller (the old O(N) rescan that made large flat sweeps
	// quadratic), candidates are drawn by rank: callableLists collects
	// the lists, callableLen their total, and callableAt selects the
	// k-th candidate in ID order — directly for the flat single-list
	// case, by binary search on the ID value otherwise. The candidate
	// sequence is identical to the rescan's, so generated programs are
	// unchanged for every seed.
	listsBuf := make([][]*ir.Procedure, 0, cfg.MaxDepth+2)
	callableLists := func(p *ir.Procedure) [][]*ir.Procedure {
		lists := listsBuf[:0]
		if len(topLevel) > 0 {
			lists = append(lists, topLevel)
		}
		for a := p; a != nil; a = a.Parent {
			if len(a.Nested) > 0 {
				lists = append(lists, a.Nested)
			}
		}
		return lists
	}
	callableLen := func(lists [][]*ir.Procedure) int {
		n := 0
		for _, l := range lists {
			n += len(l)
		}
		return n
	}
	callableAt := func(lists [][]*ir.Procedure, k int) *ir.Procedure {
		if len(lists) == 1 {
			return lists[0][k]
		}
		// Smallest ID with k+1 candidates at or below it.
		lo, hi := 0, len(procs)+1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			le := 0
			for _, l := range lists {
				le += sort.Search(len(l), func(i int) bool { return l[i].ID > mid })
			}
			if le >= k+1 {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		for _, l := range lists {
			i := sort.Search(len(l), func(i int) bool { return l[i].ID >= lo })
			if i < len(l) && l[i].ID == lo {
				return l[i]
			}
		}
		panic("workload: callable rank out of range")
	}

	// Extra calls.
	allCallers := append([]*ir.Procedure{b.Main()}, procs...)
	for _, p := range allCallers {
		k := poissonish(r, cfg.AvgCalls)
		lists := callableLists(p)
		n := callableLen(lists)
		if n == 0 {
			continue
		}
		for i := 0; i < k; i++ {
			q := callableAt(lists, r.Intn(n))
			if r.Float64() >= cfg.CycleFraction && q.ID <= p.ID && n > 1 {
				// Bias away from back edges unless cycles are wanted.
				q = callableAt(lists, r.Intn(n))
			}
			b.Call(p, q, makeArgs(p, q), token.Pos{})
		}
	}

	return b.MustFinish()
}

// poissonish samples a small non-negative integer with the given mean
// (geometric-ish; exact distribution is irrelevant, determinism and a
// controllable mean are what matter).
func poissonish(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	n := 0
	for r.Float64() < mean/(mean+1) {
		n++
		if float64(n) > 4*mean+8 {
			break
		}
	}
	return n
}
