package workload

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"sideeffect/internal/bitset"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
)

func TestRandomDeterministic(t *testing.T) {
	a := Random(DefaultConfig(30, 7))
	b := Random(DefaultConfig(30, 7))
	if Emit(a) != Emit(b) {
		t.Error("same seed produced different programs")
	}
	c := Random(DefaultConfig(30, 8))
	if Emit(a) == Emit(c) {
		t.Error("different seeds produced identical programs")
	}
}

func TestRandomShape(t *testing.T) {
	cfg := DefaultConfig(50, 3)
	prog := Random(cfg)
	if prog.NumProcs() != 51 { // 50 + main
		t.Errorf("procs = %d", prog.NumProcs())
	}
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Spanning calls keep everything reachable.
	reach := prog.ReachableProcs()
	for i, r := range reach {
		if !r {
			t.Errorf("procedure %s unreachable", prog.Procs[i].Name)
		}
	}
	// E ≥ N (spanning calls) and some extras.
	if prog.NumSites() < 50 {
		t.Errorf("sites = %d", prog.NumSites())
	}
}

func TestRandomNestedShape(t *testing.T) {
	cfg := DefaultConfig(60, 11)
	cfg.MaxDepth = 3
	cfg.NestFraction = 0.7
	prog := Random(cfg)
	if err := prog.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if prog.MaxLevel() == 0 {
		t.Error("no nesting generated despite MaxDepth=3")
	}
	if prog.MaxLevel() > 3 {
		t.Errorf("MaxLevel = %d > 3", prog.MaxLevel())
	}
	for _, r := range prog.ReachableProcs() {
		if !r {
			t.Fatal("unreachable procedure in nested program")
		}
	}
}

func TestFamilies(t *testing.T) {
	for name, prog := range map[string]*ir.Program{
		"chain":  Chain(10),
		"cycle":  Cycle(8),
		"fanout": Fanout(6),
		"tower":  NestedTower(4),
		"divide": DivideConquer(),
		"paper":  PaperExample(),
	} {
		if err := prog.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for i, r := range prog.ReachableProcs() {
			if !r {
				t.Errorf("%s: %s unreachable", name, prog.Procs[i].Name)
			}
		}
	}
	if got := Chain(5).NumSites(); got != 5 {
		t.Errorf("chain(5) sites = %d", got)
	}
	if got := Cycle(5).NumSites(); got != 6 {
		t.Errorf("cycle(5) sites = %d", got)
	}
	if NestedTower(4).MaxLevel() != 4 {
		t.Error("tower depth wrong")
	}
}

// signature renders analysis-relevant structure by name for round-trip
// comparison (IDs may differ between generated and re-parsed models).
func signature(p *ir.Program) string {
	var lines []string
	varName := func(v *ir.Variable) string {
		if v == nil {
			return "<expr>"
		}
		if v.Kind == ir.Global {
			return v.Name
		}
		if v.IsFormal() {
			return fmt.Sprintf("%s#f%d", v.Owner.Name, v.Ordinal)
		}
		return v.Owner.Name + "#local" // locals: one per proc in generators
	}
	setNames := func(s *bitset.Set) string {
		var ns []string
		s.ForEach(func(id int) { ns = append(ns, varName(p.Vars[id])) })
		sort.Strings(ns)
		return strings.Join(ns, ",")
	}
	for _, q := range p.Procs {
		parent := "-"
		if q.Parent != nil {
			parent = q.Parent.Name
		}
		var fs []string
		for _, f := range q.Formals {
			fs = append(fs, fmt.Sprintf("%v/%d", f.Kind, f.Rank()))
		}
		lines = append(lines, fmt.Sprintf("proc %s parent=%s level=%d formals=%s imod={%s} iuse={%s} accesses=%d",
			q.Name, parent, q.Level, strings.Join(fs, ";"), setNames(q.IMOD), setNames(q.IUSE), len(q.Accesses)))
	}
	sort.Strings(lines) // procedure IDs are traversal-order dependent
	var calls []string
	for _, cs := range p.Sites {
		var args []string
		for _, a := range cs.Args {
			shape := varName(a.Var)
			if a.Subs != nil {
				var ss []string
				for _, s := range a.Subs {
					if s.Kind == ir.SubSym {
						ss = append(ss, "sym:"+varName(s.Sym))
					} else {
						ss = append(ss, s.String())
					}
				}
				shape += "[" + strings.Join(ss, ",") + "]"
			}
			args = append(args, shape)
		}
		calls = append(calls, fmt.Sprintf("call %s->%s(%s)", cs.Caller.Name, cs.Callee.Name, strings.Join(args, "; ")))
	}
	sort.Strings(calls)
	lines = append(lines, calls...)
	return strings.Join(lines, "\n")
}

func roundTrip(t *testing.T, prog *ir.Program, tag string) {
	t.Helper()
	src := Emit(prog)
	re, err := sem.AnalyzeSource(src)
	if err != nil {
		t.Fatalf("%s: re-analyze failed: %v\nsource:\n%s", tag, err, src)
	}
	want, got := signature(prog), signature(re)
	if want != got {
		t.Errorf("%s: round trip mismatch:\n--- generated\n%s\n--- reparsed\n%s", tag, want, got)
	}
}

func TestEmitRoundTripFamilies(t *testing.T) {
	roundTrip(t, Chain(6), "chain")
	roundTrip(t, Cycle(5), "cycle")
	roundTrip(t, Fanout(4), "fanout")
	roundTrip(t, NestedTower(3), "tower")
	roundTrip(t, DivideConquer(), "divide")
	roundTrip(t, PaperExample(), "paper")
}

func TestEmitRoundTripRandomFlat(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		roundTrip(t, Random(DefaultConfig(25, seed)), fmt.Sprintf("flat seed %d", seed))
	}
}

func TestEmitRoundTripRandomNested(t *testing.T) {
	for seed := int64(50); seed < 60; seed++ {
		cfg := DefaultConfig(25, seed)
		cfg.MaxDepth = 3
		cfg.NestFraction = 0.5
		roundTrip(t, Random(cfg), fmt.Sprintf("nested seed %d", seed))
	}
}

func TestPoissonishMean(t *testing.T) {
	prog := Random(DefaultConfig(200, 42))
	// µ_f should land near the configured 3 (loose bounds; the point
	// is that the knob works).
	tf := 0
	for _, p := range prog.Procs {
		tf += len(p.Formals)
	}
	mu := float64(tf) / float64(prog.NumProcs())
	if mu < 1.5 || mu > 4.5 {
		t.Errorf("µ_f = %v, configured 3", mu)
	}
}

func TestEmitParses(t *testing.T) {
	src := Emit(Random(DefaultConfig(15, 1)))
	if !strings.Contains(src, "program") || !strings.Contains(src, "end.") {
		t.Errorf("emitted source malformed:\n%s", src)
	}
}
