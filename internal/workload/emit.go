package workload

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"sideeffect/internal/ir"
)

// Emit renders a program model back to MiniPL source text. The
// emission is semantics-faithful for everything the analyses consume:
// re-analyzing the emitted source yields the same procedures, local
// facts (IMOD/IUSE), array accesses, and call sites (matched by name;
// internal IDs may be numbered differently).
//
// To keep references from nested scopes unambiguous, formals and
// locals are renamed to globally unique names (f_<proc>_<ordinal>,
// t_<proc>_<n>); globals keep their names.
func Emit(prog *ir.Program) string {
	var b strings.Builder
	if err := EmitTo(&b, prog); err != nil {
		// strings.Builder never errors; unreachable.
		panic(err)
	}
	return b.String()
}

// EmitTo streams the rendered source to w instead of materializing it
// in memory, byte-for-byte identical to Emit. Output is buffered, so a
// bare *os.File is fine; the buffer is flushed before returning. The
// resident cost is the program model plus the name table — a
// million-site program emits in one pass without ever holding its
// multi-hundred-megabyte text.
func EmitTo(w io.Writer, prog *ir.Program) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	e := &emitter{prog: prog, w: bw, names: make([]string, prog.NumVars())}
	for _, v := range prog.Vars {
		switch {
		case v.Kind == ir.Global:
			e.names[v.ID] = v.Name
		case v.IsFormal():
			e.names[v.ID] = fmt.Sprintf("f_%s_%d", v.Owner.Name, v.Ordinal)
		default:
			e.names[v.ID] = fmt.Sprintf("t_%s_%s", v.Owner.Name, v.Name)
		}
	}
	e.printf("program %s;\n", sanitize(prog.Name))
	for _, v := range prog.Vars {
		if v.Kind != ir.Global {
			continue
		}
		if v.Rank() == 0 {
			e.printf("global %s;\n", v.Name)
		} else {
			dims := make([]string, v.Rank())
			for i, d := range v.Dims {
				if d <= 0 {
					d = 100
				}
				dims[i] = fmt.Sprint(d)
			}
			e.printf("global %s[%s];\n", v.Name, strings.Join(dims, ", "))
		}
	}
	e.printf("\n")
	for _, p := range prog.Procs {
		if p.IsMain || p.Parent != nil {
			continue
		}
		e.proc(p, 0)
	}
	e.printf("begin\n")
	e.body(prog.Main, 1)
	e.printf("end.\n")
	return bw.Flush()
}

type emitter struct {
	prog  *ir.Program
	w     *bufio.Writer
	names []string
}

func (e *emitter) printf(format string, args ...any) {
	fmt.Fprintf(e.w, format, args...)
}

func (e *emitter) indent(n int) {
	for i := 0; i < n; i++ {
		e.w.WriteString("  ")
	}
}

func sanitize(s string) string {
	var b strings.Builder
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' || r == '_' {
			b.WriteRune(r)
		}
	}
	if b.Len() == 0 {
		return "prog"
	}
	return b.String()
}

func (e *emitter) proc(p *ir.Procedure, depth int) {
	e.indent(depth)
	params := make([]string, len(p.Formals))
	for i, f := range p.Formals {
		mode := "ref"
		if f.Kind == ir.FormalVal {
			mode = "val"
		}
		stars := ""
		if f.Rank() > 0 {
			ss := make([]string, f.Rank())
			for j := range ss {
				ss[j] = "*"
			}
			stars = "[" + strings.Join(ss, ", ") + "]"
		}
		params[i] = fmt.Sprintf("%s %s%s", mode, e.names[f.ID], stars)
	}
	e.printf("proc %s(%s)\n", p.Name, strings.Join(params, ", "))
	for _, l := range p.Locals {
		e.indent(depth + 1)
		if l.Rank() == 0 {
			e.printf("var %s;\n", e.names[l.ID])
		} else {
			dims := make([]string, l.Rank())
			for i, d := range l.Dims {
				if d <= 0 {
					d = 100
				}
				dims[i] = fmt.Sprint(d)
			}
			e.printf("var %s[%s];\n", e.names[l.ID], strings.Join(dims, ", "))
		}
	}
	for _, n := range p.Nested {
		e.proc(n, depth+1)
	}
	e.indent(depth)
	e.printf("begin\n")
	e.body(p, depth+1)
	e.indent(depth)
	e.printf("end;\n\n")
}

// body emits statements realizing the procedure's recorded facts:
// scalar modifications as assignments, scalar uses as writes, array
// accesses literally, and calls with their argument shapes.
func (e *emitter) body(p *ir.Procedure, depth int) {
	stmt := func(format string, args ...any) {
		e.indent(depth)
		e.printf(format+";\n", args...)
	}
	// Scalar direct modifications (arrays are covered by Accesses).
	p.IMOD.ForEach(func(id int) {
		v := e.prog.Vars[id]
		if v.Rank() == 0 {
			stmt("%s := 0", e.names[id])
		}
	})
	// Scalar direct uses.
	p.IUSE.ForEach(func(id int) {
		v := e.prog.Vars[id]
		if v.Rank() == 0 {
			stmt("write %s", e.names[id])
		}
	})
	for _, acc := range p.Accesses {
		ref := fmt.Sprintf("%s[%s]", e.names[acc.Var.ID], e.subs(acc.Subs))
		if acc.Mod {
			stmt("%s := 0", ref)
		} else {
			stmt("write %s", ref)
		}
	}
	for _, cs := range p.Calls {
		args := make([]string, len(cs.Args))
		for i, a := range cs.Args {
			switch {
			case a.Var == nil:
				args[i] = "0"
			case a.Subs == nil:
				args[i] = e.names[a.Var.ID]
			default:
				args[i] = fmt.Sprintf("%s[%s]", e.names[a.Var.ID], e.subs(a.Subs))
			}
		}
		stmt("call %s(%s)", cs.Callee.Name, strings.Join(args, ", "))
	}
	if p.IMOD.Empty() && p.IUSE.Empty() && len(p.Accesses) == 0 && len(p.Calls) == 0 {
		// MiniPL blocks may be empty; emit nothing.
		_ = p
	}
}

func (e *emitter) subs(subs []ir.Sub) string {
	out := make([]string, len(subs))
	for i, s := range subs {
		switch s.Kind {
		case ir.SubStar:
			out[i] = "*"
		case ir.SubConst:
			out[i] = fmt.Sprint(s.Const)
		case ir.SubSym:
			out[i] = e.names[s.Sym.ID]
		default:
			out[i] = "(1 - 1)" // an opaque expression re-parses as SubOther
		}
	}
	return strings.Join(out, ", ")
}
