package workload

import (
	"fmt"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/token"
)

var noPos = token.Pos{}

// Chain builds the deep binding-chain family: main calls p0(g), and
// each p_i passes its formal to p_{i+1}; only the last procedure
// modifies its formal. The RMOD solution must propagate true along the
// whole chain, which is the worst case for iterative solvers (O(n)
// passes in the wrong order) and an easy case for Figure 1.
func Chain(n int) *ir.Program {
	b := ir.NewBuilder(fmt.Sprintf("chain%d", n))
	g := b.Global("g")
	procs := make([]*ir.Procedure, n)
	formals := make([]*ir.Variable, n)
	for i := 0; i < n; i++ {
		procs[i] = b.Proc(fmt.Sprintf("p%d", i), nil)
		formals[i] = b.Formal(procs[i], "x", ir.FormalRef, 0)
	}
	for i := 0; i+1 < n; i++ {
		b.Call(procs[i], procs[i+1], []ir.Actual{{Mode: ir.FormalRef, Var: formals[i]}}, noPos)
	}
	b.Mod(procs[n-1], formals[n-1])
	b.Call(b.Main(), procs[0], []ir.Actual{{Mode: ir.FormalRef, Var: g}}, noPos)
	return b.MustFinish()
}

// Cycle builds one large strongly-connected call cycle whose formals
// are threaded around the cycle; a single procedure seeds the
// modification. Exercises the SCC collapse of Figure 1 and the root
// fix-up of Figure 2.
func Cycle(n int) *ir.Program {
	b := ir.NewBuilder(fmt.Sprintf("cycle%d", n))
	g := b.Global("g")
	h := b.Global("h")
	procs := make([]*ir.Procedure, n)
	formals := make([]*ir.Variable, n)
	for i := 0; i < n; i++ {
		procs[i] = b.Proc(fmt.Sprintf("p%d", i), nil)
		formals[i] = b.Formal(procs[i], "x", ir.FormalRef, 0)
	}
	for i := 0; i < n; i++ {
		next := (i + 1) % n
		b.Call(procs[i], procs[next], []ir.Actual{{Mode: ir.FormalRef, Var: formals[i]}}, noPos)
	}
	b.Mod(procs[n/2], formals[n/2])
	b.Mod(procs[n/2], h)
	b.Call(b.Main(), procs[0], []ir.Actual{{Mode: ir.FormalRef, Var: g}}, noPos)
	return b.MustFinish()
}

// Fanout builds a wide, flat program: main calls n leaf procedures,
// each modifying its own global and one shared global. The call graph
// is a star — the easy case for every algorithm, useful as a bench
// floor.
func Fanout(n int) *ir.Program {
	b := ir.NewBuilder(fmt.Sprintf("fanout%d", n))
	shared := b.Global("shared")
	for i := 0; i < n; i++ {
		gi := b.Global(fmt.Sprintf("g%d", i))
		p := b.Proc(fmt.Sprintf("p%d", i), nil)
		b.Mod(p, gi)
		b.Use(p, shared)
		if i%3 == 0 {
			b.Mod(p, shared)
		}
		b.Call(b.Main(), p, nil, noPos)
	}
	return b.MustFinish()
}

// NestedTower builds a tower of procedures nested d deep, where each
// level declares a local that the next deeper level modifies, and the
// deepest level also modifies a global and recursively calls an
// intermediate level. Exercises the multi-level analysis of Section 4:
// each local must appear in GMOD exactly down to the level where a
// re-invocation would create a fresh activation.
func NestedTower(d int) *ir.Program {
	b := ir.NewBuilder(fmt.Sprintf("tower%d", d))
	g := b.Global("g")
	procs := make([]*ir.Procedure, d+1)
	locals := make([]*ir.Variable, d+1)
	var parent *ir.Procedure
	for i := 0; i <= d; i++ {
		procs[i] = b.Proc(fmt.Sprintf("n%d", i), parent)
		locals[i] = b.Local(procs[i], "v")
		parent = procs[i]
	}
	// Each level calls the next deeper one.
	for i := 0; i < d; i++ {
		b.Call(procs[i], procs[i+1], nil, noPos)
	}
	deepest := procs[d]
	b.Mod(deepest, g)
	for i := 0; i < d; i++ {
		// The deepest procedure modifies every enclosing local.
		b.Mod(deepest, locals[i])
	}
	// Recursive back edge to the middle of the tower: call chains
	// passing through it re-create activations of the deeper locals.
	if d >= 2 {
		b.Call(deepest, procs[d/2], nil, noPos)
	}
	b.Call(b.Main(), procs[0], nil, noPos)
	return b.MustFinish()
}

// DivideConquer builds the recursive array-splitting family of
// Section 6: a recursive procedure passes its whole array parameter
// around a recursive cycle (the g_p(x) ⊓ x = x case) and updates one
// row per level through a row helper bound to a section.
func DivideConquer() *ir.Program {
	b := ir.NewBuilder("divideconquer")
	a := b.Global("A", 64, 64)
	k := b.Global("k")
	rowop := b.Proc("rowop", nil)
	row := b.Formal(rowop, "row", ir.FormalRef, 1)
	j := b.Formal(rowop, "j", ir.FormalVal, 0)
	b.Access(rowop, row, []ir.Sub{{Kind: ir.SubSym, Sym: j}}, true, noPos)

	split := b.Proc("split", nil)
	m := b.Formal(split, "M", ir.FormalRef, 2)
	lo := b.Formal(split, "lo", ir.FormalVal, 0)
	// split updates row lo of M through rowop(M[lo, *], lo) and
	// recurses on the whole array: split(M, lo/2).
	b.Call(split, rowop, []ir.Actual{
		{Mode: ir.FormalRef, Var: m, Subs: []ir.Sub{{Kind: ir.SubSym, Sym: lo}, {Kind: ir.SubStar}}, Uses: []*ir.Variable{lo}},
		{Mode: ir.FormalVal, Var: lo, Uses: []*ir.Variable{lo}},
	}, noPos)
	b.Call(split, split, []ir.Actual{
		{Mode: ir.FormalRef, Var: m},
		{Mode: ir.FormalVal, Var: lo, Uses: []*ir.Variable{lo}},
	}, noPos)
	b.Call(b.Main(), split, []ir.Actual{
		{Mode: ir.FormalRef, Var: a},
		{Mode: ir.FormalVal, Var: k, Uses: []*ir.Variable{k}},
	}, noPos)
	return b.MustFinish()
}

// PaperExample builds (a structural analog of) the running situation
// the paper's sections walk through: two-level scoping, a reference-
// parameter chain with a cycle, and a global modified deep in the call
// graph. Used by example-driven unit tests with hand-computed expected
// sets.
//
//	global g, h
//	proc top(ref a)    { call mid(a); h := 1 }
//	proc mid(ref b)    { call bot(b); call top(b) }   — cycle top↔mid
//	proc bot(ref c)    { c := g }                     — seeds RMOD
//	main               { call top(g) }
func PaperExample() *ir.Program {
	b := ir.NewBuilder("paperexample")
	g := b.Global("g")
	h := b.Global("h")
	top := b.Proc("top", nil)
	a := b.Formal(top, "a", ir.FormalRef, 0)
	mid := b.Proc("mid", nil)
	bb := b.Formal(mid, "b", ir.FormalRef, 0)
	bot := b.Proc("bot", nil)
	c := b.Formal(bot, "c", ir.FormalRef, 0)

	b.Call(top, mid, []ir.Actual{{Mode: ir.FormalRef, Var: a}}, noPos)
	b.Mod(top, h)
	b.Call(mid, bot, []ir.Actual{{Mode: ir.FormalRef, Var: bb}}, noPos)
	b.Call(mid, top, []ir.Actual{{Mode: ir.FormalRef, Var: bb}}, noPos)
	b.Mod(bot, c)
	b.Use(bot, g)
	b.Call(b.Main(), top, []ir.Actual{{Mode: ir.FormalRef, Var: g}}, noPos)
	return b.MustFinish()
}
