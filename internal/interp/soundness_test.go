package interp_test

// Dynamic soundness validation: for bounded executions of generated
// programs, every variable observed modified (used) during the dynamic
// extent of a call site s must be in the analyzer's final MOD(s)
// (USE(s)) — including the alias-factored names, since the interpreter
// reports a written location under every name visible at the site.
//
// This closes the loop between the paper's declarative problem
// statement ("executing s might change the value of v") and the
// implemented equations: the static result over-approximates every
// actual execution.

import (
	"fmt"
	"testing"

	"sideeffect"
	"sideeffect/internal/interp"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/token"
	"sideeffect/internal/report"
	"sideeffect/internal/section"
	"sideeffect/internal/workload"
)

// checkSoundness executes src and verifies observation ⊆ analysis for
// every call site: names against MOD/USE, and, element by element,
// subscript writes against the Section-6 regular-section summaries.
func checkSoundness(t *testing.T, src, tag string) {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", tag, err)
	}
	run, err := interp.Run(tree, interp.Options{MaxSteps: 100_000, MaxDepth: 60, TraceElems: true})
	if err != nil {
		t.Fatalf("%s: interp: %v", tag, err)
	}
	a, err := sideeffect.Analyze(src)
	if err != nil {
		t.Fatalf("%s: analyze: %v", tag, err)
	}
	checkSectionSoundness(t, run, a, tag)

	// Index analysis results by call-site position.
	type sets struct{ mod, use map[string]bool }
	byPos := map[token.Pos]sets{}
	for _, cs := range a.Prog.Sites {
		s := sets{mod: map[string]bool{}, use: map[string]bool{}}
		for _, n := range report.VarNames(a.Prog, a.ModSets[cs.ID]) {
			s.mod[n] = true
		}
		for _, n := range report.VarNames(a.Prog, a.UseSets[cs.ID]) {
			s.use[n] = true
		}
		byPos[cs.Pos] = s
	}

	checked := 0
	for pos, obs := range run.Calls {
		an, ok := byPos[pos]
		if !ok {
			t.Errorf("%s: executed call at %s unknown to the analysis", tag, pos)
			continue
		}
		for name := range obs.Mod {
			if !an.mod[name] {
				t.Errorf("%s: call at %s observed MOD of %q not in MOD(s) = %v",
					tag, pos, name, keys(an.mod))
			}
			checked++
		}
		for name := range obs.Use {
			if !an.use[name] {
				t.Errorf("%s: call at %s observed USE of %q not in USE(s) = %v",
					tag, pos, name, keys(an.use))
			}
			checked++
		}
	}
	if len(run.Calls) > 0 && checked == 0 && !run.Aborted {
		// Not an error per se, but a corpus with zero observations
		// would make the suite vacuous; surface it.
		t.Logf("%s: no observations collected (%d sites executed)", tag, len(run.Calls))
	}
}

// checkSectionSoundness verifies the element-level traces against the
// regular-section MOD summaries: every array element observed written
// during a call's dynamic extent must lie inside the RSD the analysis
// reports for that array at the site. Constant atoms are compared
// under the interpreter's subscript clamping; symbolic atoms are
// evaluated from the call-entry scalar snapshot, which is exact
// because the analysis only emits a Sym atom for variables its Mod
// result proves invariant over the call.
func checkSectionSoundness(t *testing.T, run *interp.Result, a *sideeffect.Analysis, tag string) {
	t.Helper()
	sites := map[token.Pos]*ir.CallSite{}
	for _, cs := range a.Prog.Sites {
		sites[cs.Pos] = cs
	}
	for _, tr := range run.Traces {
		cs, ok := sites[tr.Pos]
		if !ok {
			t.Errorf("%s: traced call at %s unknown to the analysis", tag, tr.Pos)
			continue
		}
		rsdOf := map[string]section.RSD{}
		for vid, rsd := range a.SecMod.AtCall(cs) {
			rsdOf[a.Prog.Vars[vid].String()] = rsd
		}
		for name, writes := range tr.Writes {
			if tr.Aliased[name] {
				// A write through one binding is observed under every
				// name of the storage, but section summaries are per
				// access path (only the bit-level MOD sets are closed
				// under aliases); skip dynamically-aliased names.
				continue
			}
			rsd, ok := rsdOf[name]
			if !ok {
				// Names the section analysis does not summarize at this
				// site (e.g. alias-introduced visibility); plain MOD
				// membership is already enforced above.
				continue
			}
			for _, coords := range writes {
				if !coordsInRSD(rsd, coords, tr.Extents[name], tr.Scalars, a.Prog) {
					t.Errorf("%s: call at %s wrote %s%v outside reported section %s",
						tag, tr.Pos, name, coords, rsd.Format(name, a.Prog.Vars))
				}
			}
		}
	}
}

// coordsInRSD reports whether the 0-based written coordinates lie in
// the section descriptor, under the interpreter's clamping of 1-based
// subscripts.
func coordsInRSD(rsd section.RSD, coords, ext []int, scalars map[string]int, prog *ir.Program) bool {
	if rsd.None || len(rsd.Dims) != len(coords) {
		return false
	}
	for k, atom := range rsd.Dims {
		c := coords[k]
		switch atom.Kind {
		case section.Star:
			// Whole dimension: always contains the write.
		case section.Const:
			if clamp(atom.C, ext[k]) != c {
				return false
			}
		case section.Sym:
			v, ok := scalars[prog.Vars[atom.V].String()]
			if !ok {
				continue // symbol not visible in the snapshot: cannot refute
			}
			if clamp(v, ext[k]) != c {
				return false
			}
		case section.Range:
			if c < clamp(atom.C, ext[k]) || c > clamp(atom.C2, ext[k]) {
				return false
			}
		}
	}
	return true
}

// clamp mirrors the interpreter's mapping of 1-based surface
// subscripts into [0, extent).
func clamp(i, extent int) int {
	i--
	if i < 0 {
		return 0
	}
	if extent > 0 && i >= extent {
		return extent - 1
	}
	return i
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSoundnessHandWritten(t *testing.T) {
	checkSoundness(t, `
program hw;
global g, h;
global A[8, 8];
proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;
proc colset(ref c[*], val v)
  var i;
begin
  for i := 1 to 8 do c[i] := v end
end;
proc driver(ref x)
begin
  call swap(x, g);
  call colset(A[*, 2], h)
end;
begin
  call driver(h);
  call swap(g, h)
end.
`, "handwritten")
}

func TestSoundnessNestedScopes(t *testing.T) {
	checkSoundness(t, `
program ns;
global g;
proc outer(ref r)
  var acc;
  proc inner(val k)
  begin
    acc := acc + k;
    g := g + 1
  end;
begin
  acc := 0;
  call inner(3);
  call inner(4);
  r := acc
end;
begin
  call outer(g)
end.
`, "nested")
}

func TestSoundnessRecursion(t *testing.T) {
	checkSoundness(t, `
program rec;
global result, depthcount;
proc down(val n, ref out)
  var sub;
begin
  depthcount := depthcount + 1;
  if n <= 1 then
    out := 1
  else
    call down(n - 1, sub);
    out := out + sub
  end
end;
begin
  call down(10, result)
end.
`, "recursion")
}

func TestSoundnessStructuredFamilies(t *testing.T) {
	for name, prog := range map[string]*ir.Program{
		"chain":  workload.Chain(8),
		"cycle":  workload.Cycle(6),
		"fanout": workload.Fanout(7),
		"tower":  workload.NestedTower(3),
		"paper":  workload.PaperExample(),
	} {
		checkSoundness(t, workload.Emit(prog), name)
	}
}

func TestSoundnessRandomFlat(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		cfg := workload.DefaultConfig(20, seed)
		src := workload.Emit(workload.Random(cfg))
		checkSoundness(t, src, fmt.Sprintf("flat seed %d", seed))
	}
}

func TestSoundnessRandomNested(t *testing.T) {
	for seed := int64(200); seed < 215; seed++ {
		cfg := workload.DefaultConfig(20, seed)
		cfg.MaxDepth = 3
		cfg.NestFraction = 0.5
		src := workload.Emit(workload.Random(cfg))
		checkSoundness(t, src, fmt.Sprintf("nested seed %d", seed))
	}
}

func TestSoundnessRandomAliasHeavy(t *testing.T) {
	for seed := int64(300); seed < 310; seed++ {
		cfg := workload.DefaultConfig(15, seed)
		cfg.FormalModProb = 0.8
		cfg.GlobalModProb = 0.8
		src := workload.Emit(workload.Random(cfg))
		checkSoundness(t, src, fmt.Sprintf("alias seed %d", seed))
	}
}

// TestSoundnessWideCorpus is the long-haul sweep (skipped with
// -short): many more seeds across all generator shapes.
func TestSoundnessWideCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("wide corpus skipped in -short mode")
	}
	for seed := int64(1000); seed < 1080; seed++ {
		cfg := workload.DefaultConfig(18, seed)
		switch seed % 4 {
		case 1:
			cfg.MaxDepth = 3
			cfg.NestFraction = 0.6
		case 2:
			cfg.FormalModProb = 0.9
			cfg.CycleFraction = 0.7
		case 3:
			cfg.MaxDepth = 5
			cfg.NestFraction = 0.8
			cfg.AvgFormals = 5
		}
		src := workload.Emit(workload.Random(cfg))
		checkSoundness(t, src, fmt.Sprintf("wide seed %d", seed))
	}
}

// TestSoundnessControlFlow exercises every statement form, including
// repeat/until, under the observation machinery.
func TestSoundnessControlFlow(t *testing.T) {
	checkSoundness(t, `
program cf;
global g, h, k, A[8];
proc work(ref x, val n)
  var i;
begin
  for i := 1 to n do
    if i - i / 2 * 2 = 0 then
      x := x + i
    else
      h := h + 1
    end
  end;
  repeat
    k := k + 1
  until k > 3;
  while x > 100 do x := x - 100 end;
  A[n] := x
end;
begin
  read g;
  call work(g, 5);
  call work(k, 2)
end.
`, "controlflow")
}
