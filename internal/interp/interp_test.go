package interp

import (
	"reflect"
	"testing"

	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/parser"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Run(tree, opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestArithmeticAndWrite(t *testing.T) {
	res := run(t, `
program a;
global x;
begin
  x := 2 + 3 * 4;
  write x;
  write (2 + 3) * 4;
  write -x;
  write x / 2;
  write x / 0;
  write 7 - 2 - 1
end.
`, Options{})
	want := []int{14, 20, -14, 7, 0, 4}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestComparisonsAndBoolean(t *testing.T) {
	res := run(t, `
program b;
global x;
begin
  x := 5;
  write x = 5;
  write x <> 5;
  write x < 9 and x > 2;
  write x < 2 or x >= 5;
  write not (x = 5);
  write x <= 5;
  write x > 5
end.
`, Options{})
	want := []int{1, 0, 1, 1, 0, 1, 0}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
program c;
global s, i;
begin
  s := 0;
  for i := 1 to 5 do s := s + i end;
  write s;
  while s > 10 do s := s - 4 end;
  write s;
  if s = 7 then write 100 else write 200 end;
  if s = 8 then write 300 end
end.
`, Options{})
	want := []int{15, 7, 100}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestSwapByReference(t *testing.T) {
	res := run(t, `
program s;
global x, y;
proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;
begin
  x := 1; y := 2;
  call swap(x, y);
  write x; write y
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{2, 1}) {
		t.Errorf("output = %v, want [2 1]", res.Output)
	}
}

func TestValCopyDoesNotEscape(t *testing.T) {
	res := run(t, `
program v;
global x;
proc bump(val n) begin n := n + 1; write n end;
begin
  x := 10;
  call bump(x);
  write x
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{11, 10}) {
		t.Errorf("output = %v, want [11 10]", res.Output)
	}
}

func TestArraysAndSections(t *testing.T) {
	res := run(t, `
program arr;
global A[3, 3], r;
proc setcol(ref c[*], val v)
  var i;
begin
  for i := 1 to 3 do c[i] := v end
end;
proc setelem(ref e, val v) begin e := v end;
begin
  call setcol(A[*, 2], 7);
  call setelem(A[1, 1], 9);
  for r := 1 to 3 do
    write A[r, 1]; write A[r, 2]; write A[r, 3]
  end
end.
`, Options{})
	want := []int{
		9, 7, 0,
		0, 7, 0,
		0, 7, 0,
	}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("grid = %v, want %v", res.Output, want)
	}
}

func TestRowSectionStrides(t *testing.T) {
	res := run(t, `
program rows;
global A[2, 3], j;
proc fillrow(ref r[*], val base)
  var i;
begin
  for i := 1 to 3 do r[i] := base + i end
end;
begin
  call fillrow(A[1, *], 10);
  call fillrow(A[2, *], 20);
  for j := 1 to 3 do write A[1, j] end;
  for j := 1 to 3 do write A[2, j] end
end.
`, Options{})
	want := []int{11, 12, 13, 21, 22, 23}
	if !reflect.DeepEqual(res.Output, want) {
		t.Errorf("output = %v, want %v", res.Output, want)
	}
}

func TestNestedStaticLinks(t *testing.T) {
	// inner sees the CURRENT activation of outer's local; a second
	// call to outer starts fresh.
	res := run(t, `
program n;
global out1, out2;
proc outer(val seed, ref sink)
  var acc;
  proc inner()
  begin
    acc := acc + seed
  end;
begin
  acc := 0;
  call inner();
  call inner();
  sink := acc
end;
begin
  call outer(5, out1);
  call outer(7, out2);
  write out1; write out2
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{10, 14}) {
		t.Errorf("output = %v, want [10 14]", res.Output)
	}
}

func TestRecursionFactorial(t *testing.T) {
	res := run(t, `
program f;
global result;
proc fact(val n, ref out)
  var sub;
begin
  if n <= 1 then
    out := 1
  else
    call fact(n - 1, sub);
    out := n * sub
  end
end;
begin
  call fact(6, result);
  write result
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{720}) {
		t.Errorf("output = %v, want [720]", res.Output)
	}
}

func TestInfiniteRecursionAborts(t *testing.T) {
	res := run(t, `
program i;
proc loop() begin call loop() end;
begin call loop() end.
`, Options{MaxDepth: 50})
	if !res.Aborted {
		t.Error("runaway recursion did not abort")
	}
}

func TestInfiniteLoopAborts(t *testing.T) {
	res := run(t, `
program w;
global x;
begin
  x := 1;
  while x > 0 do x := x + 1 end
end.
`, Options{MaxSteps: 5000})
	if !res.Aborted {
		t.Error("runaway loop did not abort")
	}
}

func TestReadInput(t *testing.T) {
	res := run(t, `
program r;
global a, b, c;
begin
  read a; read b; read c;
  write a + b + c
end.
`, Options{Input: []int{10, 20}})
	// Third read falls back to the synthetic stream 1, 2, 3, …
	if !reflect.DeepEqual(res.Output, []int{31}) {
		t.Errorf("output = %v, want [31]", res.Output)
	}
}

func TestObservationsBasic(t *testing.T) {
	tree, err := parser.Parse(`
program o;
global g, h;
proc setg(ref x) begin x := h end;
begin
  call setg(g)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Calls) != 1 {
		t.Fatalf("calls observed = %d", len(res.Calls))
	}
	for _, obs := range res.Calls {
		if !obs.Mod["g"] {
			t.Errorf("Mod = %v, want g", obs.Mod)
		}
		if obs.Mod["h"] {
			t.Errorf("Mod = %v, h not written", obs.Mod)
		}
		if !obs.Use["h"] {
			t.Errorf("Use = %v, want h", obs.Use)
		}
	}
}

func TestObservationAliasedNames(t *testing.T) {
	// g is passed by reference, so inside driver the write through the
	// formal is a write to g under BOTH names.
	tree, err := parser.Parse(`
program al;
global g;
proc set(ref y) begin y := 1 end;
proc driver(ref x)
begin
  call set(x)
end;
begin
  call driver(g)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The inner call site (inside driver) must observe both driver.x
	// and g modified — the alias situation Section 5 factors in.
	var innerObs *Obs
	for pos, obs := range res.Calls {
		if pos.Line == 7 { // call set(x)
			innerObs = obs
		}
	}
	if innerObs == nil {
		t.Fatal("inner call not observed")
	}
	if !innerObs.Mod["driver.x"] || !innerObs.Mod["g"] {
		t.Errorf("inner Mod = %v, want driver.x and g", innerObs.Mod)
	}
}

func TestCalleeLocalsNotObserved(t *testing.T) {
	tree, err := parser.Parse(`
program l;
proc work()
  var t;
begin
  t := 1
end;
begin call work() end.
`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(tree, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, obs := range res.Calls {
		if len(obs.Mod) != 0 {
			t.Errorf("Mod = %v, want empty (locals are invisible at the site)", obs.Mod)
		}
	}
}

func TestSubscriptClamping(t *testing.T) {
	res := run(t, `
program cl;
global A[3];
begin
  A[0] := 5;
  A[99] := 9;
  write A[1]; write A[3]
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{5, 9}) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestRuntimeErrorUnknownName(t *testing.T) {
	// Bypass sem (which would reject this) to exercise the runtime
	// diagnostic path.
	tree := &ast.Program{
		Body: &ast.Block{Stmts: []ast.Stmt{
			&ast.Assign{Target: &ast.VarRef{Name: "nope"}, Value: &ast.IntLit{Value: 1}},
		}},
	}
	if _, err := Run(tree, Options{}); err == nil {
		t.Error("undefined variable did not error")
	}
}

func TestRuntimeErrors(t *testing.T) {
	// These bypass sem (which would reject them statically) to
	// exercise the interpreter's own diagnostics.
	cases := []struct {
		name string
		prog *ast.Program
	}{
		{"call undefined", &ast.Program{Body: &ast.Block{Stmts: []ast.Stmt{
			&ast.Call{Name: "nope"},
		}}}},
		{"arity mismatch", &ast.Program{
			Procs: []*ast.ProcDecl{{Name: "p", Params: []*ast.Param{{Mode: ast.ByRef, Name: "x"}}, Body: &ast.Block{}}},
			Body: &ast.Block{Stmts: []ast.Stmt{
				&ast.Call{Name: "p"},
			}},
		}},
		{"ref arg not variable", &ast.Program{
			Procs: []*ast.ProcDecl{{Name: "p", Params: []*ast.Param{{Mode: ast.ByRef, Name: "x"}}, Body: &ast.Block{}}},
			Body: &ast.Block{Stmts: []ast.Stmt{
				&ast.Call{Name: "p", Args: []*ast.Arg{{Value: &ast.IntLit{Value: 1}}}},
			}},
		}},
		{"undefined in expr", &ast.Program{
			Globals: []*ast.VarDecl{{Name: "x"}},
			Body: &ast.Block{Stmts: []ast.Stmt{
				&ast.Assign{Target: &ast.VarRef{Name: "x"}, Value: &ast.VarRef{Name: "ghost"}},
			}},
		}},
		{"scalar subscripted", &ast.Program{
			Globals: []*ast.VarDecl{{Name: "x"}},
			Body: &ast.Block{Stmts: []ast.Stmt{
				&ast.Assign{Target: &ast.VarRef{Name: "x", Subs: []ast.Expr{&ast.IntLit{Value: 1}}},
					Value: &ast.IntLit{Value: 1}},
			}},
		}},
		{"array as scalar", &ast.Program{
			Globals: []*ast.VarDecl{{Name: "A", Dims: []int{3}}},
			Body: &ast.Block{Stmts: []ast.Stmt{
				&ast.Assign{Target: &ast.VarRef{Name: "A"}, Value: &ast.IntLit{Value: 1}},
			}},
		}},
	}
	for _, c := range cases {
		if _, err := Run(c.prog, Options{}); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestWriteOutputOrder(t *testing.T) {
	res := run(t, `
program wo;
global i;
begin
  for i := 1 to 3 do write i * 10 end
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{10, 20, 30}) {
		t.Errorf("output = %v", res.Output)
	}
}

func TestRepeatUntil(t *testing.T) {
	res := run(t, `
program ru;
global x, sum;
begin
  x := 5;
  sum := 0;
  repeat
    sum := sum + x;
    x := x - 1
  until x = 0;
  write sum;
  { body runs at least once even when the condition starts true }
  repeat
    sum := sum + 100
  until sum > 0;
  write sum
end.
`, Options{})
	if !reflect.DeepEqual(res.Output, []int{15, 115}) {
		t.Errorf("output = %v, want [15 115]", res.Output)
	}
}

func TestRepeatAborts(t *testing.T) {
	res := run(t, `
program ra;
global x;
begin
  repeat x := x + 1 until x < 0
end.
`, Options{MaxSteps: 2000})
	if !res.Aborted {
		t.Error("endless repeat did not abort")
	}
}
