// Package interp is a tree-walking interpreter for MiniPL with
// instrumented memory: every read and write of a program variable is
// observed, and the observations are aggregated per call site.
//
// Its purpose is dynamic validation of the static analyses: for any
// execution, every variable observed to be modified (used) during the
// dynamic extent of a call statement s must be a member of the
// analyzer's MOD(s) (USE(s)) — the soundness direction of the paper's
// flow-insensitive problem. The test suite runs this check over
// generated program corpora.
//
// The runtime implements the semantics the analyses assume:
// call-by-reference binds the formal to the actual's storage
// (including array elements and strided array sections such as
// A[*, j]), call-by-value copies, lexical scoping uses static links
// (so a nested procedure sees the most recent activation of its
// lexical parent), and locals are fresh per activation.
//
// Execution is bounded by a step budget and a recursion-depth limit;
// exceeding either aborts the run but keeps the trace collected so
// far, which remains a valid prefix of a real execution (generated
// programs routinely contain unbounded recursion).
package interp

import (
	"fmt"

	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/token"
)

// Options bounds and parameterizes an execution.
type Options struct {
	// MaxSteps bounds executed statements+expressions (default 200k).
	MaxSteps int
	// MaxDepth bounds the call stack (default 200).
	MaxDepth int
	// Input supplies values for `read`; when exhausted, reads yield
	// successive integers 1, 2, 3, …
	Input []int
	// TraceElems records, per call-site activation, the exact array
	// elements written during the call's dynamic extent together with a
	// snapshot of the caller-visible scalars at call entry (see
	// CallTrace). Used to validate regular-section summaries.
	TraceElems bool
}

// Obs is the observation record for one call site: the caller-visible
// names (qualified, as in ir.Variable.String()) seen modified or used
// during the call's dynamic extent.
type Obs struct {
	Mod map[string]bool
	Use map[string]bool
}

// Result is the outcome of one bounded execution.
type Result struct {
	// Steps is the number of evaluation steps consumed.
	Steps int
	// Aborted reports that a budget was exhausted (the trace is still
	// a valid execution prefix).
	Aborted bool
	// Output collects the values printed by `write`.
	Output []int
	// Calls maps each executed call statement (by source position) to
	// its aggregated observations across all executions of the site.
	Calls map[token.Pos]*Obs
	// Traces holds one CallTrace per call-site activation, in execution
	// order, when Options.TraceElems is set.
	Traces []*CallTrace
}

// CallTrace is the element-level record of one activation of a call
// site, collected under Options.TraceElems. Coordinates are 0-based
// and live in the index space of the named caller-visible array (for
// a formal bound to a strided section, the section's own space), so a
// trace entry is directly comparable with the regular-section summary
// the analysis reports for that name at the site.
type CallTrace struct {
	// Pos is the call statement's source position.
	Pos token.Pos
	// Scalars snapshots the caller-visible scalar values at call entry,
	// by qualified name. A symbolic subscript the analysis judged
	// invariant over the call keeps this value for the whole extent.
	Scalars map[string]int
	// Extents gives each caller-visible array's per-dimension extents
	// (the runtime shape, which for assumed-size formals is unknown
	// statically).
	Extents map[string][]int
	// Writes lists the coordinates written during the call's dynamic
	// extent, per caller-visible array name.
	Writes map[string][][]int
	// Aliased marks array names whose storage was reachable through
	// more than one visible binding at call entry (a formal bound to a
	// visible global, overlapping sections, or an element reference
	// into the array). Writes through one path are observed under every
	// name, but the static section summaries are per access path —
	// alias factoring (Section 5) closes only the bit-level MOD sets —
	// so element-level comparison is meaningful only for unaliased
	// names (the regular-section setting assumes unaliased reference
	// parameters).
	Aliased map[string]bool
}

// Run executes a parsed program.
func Run(prog *ast.Program, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 200
	}
	in := &interp{
		opts: opts,
		res:  &Result{Calls: map[token.Pos]*Obs{}},
	}
	if err := in.program(prog); err != nil {
		if _, ok := err.(budgetExhausted); ok {
			in.res.Aborted = true
			return in.res, nil
		}
		return in.res, err
	}
	return in.res, nil
}

type budgetExhausted struct{}

func (budgetExhausted) Error() string { return "interp: budget exhausted" }

// runtimeError is a genuine semantic failure (unknown name, bad
// subscript shape) — these indicate bugs in the caller's pipeline
// since sem-validated programs cannot trigger them, except for
// out-of-range subscripts, which are clamped instead (the analyses are
// index-insensitive and generated subscripts are not).
type runtimeError struct{ msg string }

func (e runtimeError) Error() string { return "interp: " + e.msg }

// --- Storage model -----------------------------------------------------

// cell is one scalar storage location.
type cell struct{ v int }

// array is one array object (row-major).
type array struct {
	dims []int
	data []cell
}

// view is a strided window onto an array: rank len(dims); element
// (i_0.., i_{r-1}) lives at offset + Σ i_k·strides[k].
type view struct {
	arr     *array
	offset  int
	dims    []int
	strides []int
}

func wholeView(a *array) view {
	strides := make([]int, len(a.dims))
	s := 1
	for i := len(a.dims) - 1; i >= 0; i-- {
		strides[i] = s
		s *= a.dims[i]
	}
	return view{arr: a, dims: a.dims, strides: strides}
}

// clampIndex maps a 1-based MiniPL subscript into [0, extent).
func clampIndex(i, extent int) int {
	i-- // 1-based surface syntax
	if i < 0 {
		return 0
	}
	if i >= extent {
		return extent - 1
	}
	return i
}

// offsetAt maps 1-based subscripts to the absolute offset in the
// backing array's data.
func (v view) offsetAt(subs []int) int {
	off := v.offset
	for k, s := range subs {
		off += clampIndex(s, v.dims[k]) * v.strides[k]
	}
	return off
}

func (v view) cellAt(subs []int) *cell {
	return &v.arr.data[v.offsetAt(subs)]
}

// coordsOf inverts offsetAt: it decomposes an absolute data offset
// into this view's 0-based coordinates, reporting false when the
// offset lies outside the view (e.g. a write to a column the view
// excludes). Greedy division is exact because a view's strides are a
// subsequence of the backing array's row-major strides, so the
// residual contribution of later dimensions is always smaller than
// the current stride.
func (v view) coordsOf(off int) ([]int, bool) {
	r := off - v.offset
	if r < 0 {
		return nil, false
	}
	coords := make([]int, len(v.dims))
	for k := range v.dims {
		c := r / v.strides[k]
		if c >= v.dims[k] {
			return nil, false
		}
		coords[k] = c
		r -= c * v.strides[k]
	}
	if r != 0 {
		return nil, false
	}
	return coords, true
}

// binding is the storage bound to a name: exactly one of c or a view.
type binding struct {
	c   *cell
	arr *view
	// backing, when non-nil, is the array object the scalar cell c
	// lives inside (an element passed by reference): writes through
	// the binding are also writes to that array. backOff is the cell's
	// absolute offset in backing's data.
	backing *array
	backOff int
	// qualified is the diagnostic/observation name, e.g. "p.x" or "g".
	qualified string
}

// --- Environments ------------------------------------------------------

// scope is one activation record (or the global frame).
type scope struct {
	static *scope // lexical parent activation
	owner  *ast.ProcDecl
	names  map[string]*binding
	procs  map[string]*ast.ProcDecl
}

func (s *scope) lookup(name string) *binding {
	for sc := s; sc != nil; sc = sc.static {
		if b, ok := sc.names[name]; ok {
			return b
		}
	}
	return nil
}

func (s *scope) lookupProc(name string) (*ast.ProcDecl, *scope) {
	for sc := s; sc != nil; sc = sc.static {
		if p, ok := sc.procs[name]; ok {
			return p, sc
		}
	}
	return nil, nil
}

// --- Interpreter -------------------------------------------------------

type interp struct {
	opts   Options
	res    *Result
	steps  int
	depth  int
	nextIn int
	// recorders is the stack of active call observations; every event
	// reports to each (a write inside nested calls belongs to every
	// enclosing call's extent).
	recorders []*Obs
	// visible maps, per recorder, cells/arrays to the caller-visible
	// qualified names at that call site (a location can be visible
	// under several names when reference parameters alias).
	visible []map[any][]string
	// traces and elemVis parallel recorders when TraceElems is on:
	// elemVis maps each backing array to the caller-visible views onto
	// it, so element writes can be translated into each view's own
	// coordinate space.
	traces  []*CallTrace
	elemVis []map[*array][]arrView
}

// arrView is one caller-visible name for (a view of) an array.
type arrView struct {
	name string
	v    view
}

// recordElemWrite attributes a write of the element at absolute
// offset off in arr to every visible view that contains it, in that
// view's own coordinates.
func (in *interp) recordElemWrite(arr *array, off int) {
	for i, tr := range in.traces {
		for _, av := range in.elemVis[i][arr] {
			if coords, ok := av.v.coordsOf(off); ok {
				tr.Writes[av.name] = append(tr.Writes[av.name], coords)
			}
		}
	}
}

func (in *interp) tick() error {
	in.steps++
	in.res.Steps = in.steps
	if in.steps > in.opts.MaxSteps {
		return budgetExhausted{}
	}
	return nil
}

func (in *interp) recordWrite(locs ...any) {
	for i, rec := range in.recorders {
		for _, loc := range locs {
			for _, name := range in.visible[i][loc] {
				rec.Mod[name] = true
			}
		}
	}
}

func (in *interp) recordRead(locs ...any) {
	for i, rec := range in.recorders {
		for _, loc := range locs {
			for _, name := range in.visible[i][loc] {
				rec.Use[name] = true
			}
		}
	}
}

func (in *interp) program(prog *ast.Program) error {
	global := &scope{
		names: map[string]*binding{},
		procs: map[string]*ast.ProcDecl{},
	}
	for _, g := range prog.Globals {
		global.names[g.Name] = makeVar(g, "")
	}
	for _, pd := range prog.Procs {
		global.procs[pd.Name] = pd
	}
	if prog.Body == nil {
		return nil
	}
	return in.block(prog.Body, global)
}

// makeVar allocates storage for a declaration; ownerPrefix qualifies
// the observation name ("" for globals).
func makeVar(d *ast.VarDecl, ownerPrefix string) *binding {
	q := ownerPrefix + d.Name
	if len(d.Dims) == 0 {
		return &binding{c: &cell{}, qualified: q}
	}
	size := 1
	for _, e := range d.Dims {
		size *= e
	}
	a := &array{dims: d.Dims, data: make([]cell, size)}
	v := wholeView(a)
	return &binding{arr: &v, qualified: q}
}

func (in *interp) block(b *ast.Block, sc *scope) error {
	for _, s := range b.Stmts {
		if err := in.stmt(s, sc); err != nil {
			return err
		}
	}
	return nil
}

func (in *interp) stmt(s ast.Stmt, sc *scope) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *ast.Block:
		return in.block(s, sc)
	case *ast.Assign:
		v, err := in.expr(s.Value, sc)
		if err != nil {
			return err
		}
		return in.assign(s.Target, v, sc)
	case *ast.Read:
		var v int
		if in.nextIn < len(in.opts.Input) {
			v = in.opts.Input[in.nextIn]
		} else {
			v = in.nextIn - len(in.opts.Input) + 1
		}
		in.nextIn++
		return in.assign(s.Target, v, sc)
	case *ast.Write:
		v, err := in.expr(s.Value, sc)
		if err != nil {
			return err
		}
		in.res.Output = append(in.res.Output, v)
		return nil
	case *ast.If:
		c, err := in.expr(s.Cond, sc)
		if err != nil {
			return err
		}
		if c != 0 {
			return in.block(s.Then, sc)
		}
		if s.Else != nil {
			return in.block(s.Else, sc)
		}
		return nil
	case *ast.While:
		for {
			c, err := in.expr(s.Cond, sc)
			if err != nil {
				return err
			}
			if c == 0 {
				return nil
			}
			if err := in.block(s.Body, sc); err != nil {
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *ast.For:
		lo, err := in.expr(s.Lo, sc)
		if err != nil {
			return err
		}
		hi, err := in.expr(s.Hi, sc)
		if err != nil {
			return err
		}
		for i := lo; i <= hi; i++ {
			if err := in.assign(s.Index, i, sc); err != nil {
				return err
			}
			if err := in.block(s.Body, sc); err != nil {
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
		return nil
	case *ast.Repeat:
		for {
			if err := in.block(s.Body, sc); err != nil {
				return err
			}
			c, err := in.expr(s.Cond, sc)
			if err != nil {
				return err
			}
			if c != 0 {
				return nil
			}
			if err := in.tick(); err != nil {
				return err
			}
		}
	case *ast.Call:
		return in.call(s, sc)
	default:
		return runtimeError{fmt.Sprintf("unknown statement %T", s)}
	}
}

func (in *interp) assign(t *ast.VarRef, v int, sc *scope) error {
	b := sc.lookup(t.Name)
	if b == nil {
		return runtimeError{fmt.Sprintf("%s: undefined %q", t.Pos, t.Name)}
	}
	if len(t.Subs) == 0 {
		if b.c == nil {
			return runtimeError{fmt.Sprintf("%s: array %q assigned as scalar", t.Pos, t.Name)}
		}
		b.c.v = v
		if b.backing != nil {
			in.recordWrite(b.c, b.backing)
			in.recordElemWrite(b.backing, b.backOff)
		} else {
			in.recordWrite(b.c)
		}
		return nil
	}
	if b.arr == nil || len(t.Subs) != len(b.arr.dims) {
		return runtimeError{fmt.Sprintf("%s: bad subscripts for %q", t.Pos, t.Name)}
	}
	subs := make([]int, len(t.Subs))
	for i, e := range t.Subs {
		x, err := in.expr(e, sc)
		if err != nil {
			return err
		}
		subs[i] = x
	}
	off := b.arr.offsetAt(subs)
	b.arr.arr.data[off].v = v
	in.recordWrite(b.arr.arr)
	in.recordElemWrite(b.arr.arr, off)
	return nil
}

func (in *interp) expr(e ast.Expr, sc *scope) (int, error) {
	if err := in.tick(); err != nil {
		return 0, err
	}
	switch e := e.(type) {
	case *ast.IntLit:
		return e.Value, nil
	case *ast.VarRef:
		b := sc.lookup(e.Name)
		if b == nil {
			return 0, runtimeError{fmt.Sprintf("%s: undefined %q", e.Pos, e.Name)}
		}
		if len(e.Subs) == 0 {
			if b.c == nil {
				return 0, runtimeError{fmt.Sprintf("%s: whole array %q in expression", e.Pos, e.Name)}
			}
			if b.backing != nil {
				in.recordRead(b.c, b.backing)
			} else {
				in.recordRead(b.c)
			}
			return b.c.v, nil
		}
		if b.arr == nil || len(e.Subs) != len(b.arr.dims) {
			return 0, runtimeError{fmt.Sprintf("%s: bad subscripts for %q", e.Pos, e.Name)}
		}
		subs := make([]int, len(e.Subs))
		for i, se := range e.Subs {
			x, err := in.expr(se, sc)
			if err != nil {
				return 0, err
			}
			subs[i] = x
		}
		in.recordRead(b.arr.arr)
		return b.arr.cellAt(subs).v, nil
	case *ast.Unary:
		x, err := in.expr(e.X, sc)
		if err != nil {
			return 0, err
		}
		if e.Op == token.MINUS {
			return -x, nil
		}
		if x == 0 {
			return 1, nil // not
		}
		return 0, nil
	case *ast.Binary:
		l, err := in.expr(e.L, sc)
		if err != nil {
			return 0, err
		}
		// Short-circuit booleans.
		switch e.Op {
		case token.AND:
			if l == 0 {
				return 0, nil
			}
		case token.OR:
			if l != 0 {
				return 1, nil
			}
		}
		r, err := in.expr(e.R, sc)
		if err != nil {
			return 0, err
		}
		return apply(e.Op, l, r), nil
	default:
		return 0, runtimeError{fmt.Sprintf("unknown expression %T", e)}
	}
}

func apply(op token.Kind, l, r int) int {
	b2i := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case token.PLUS:
		return l + r
	case token.MINUS:
		return l - r
	case token.STAR:
		return l * r
	case token.SLASH:
		if r == 0 {
			return 0
		}
		return l / r
	case token.EQ:
		return b2i(l == r)
	case token.NEQ:
		return b2i(l != r)
	case token.LT:
		return b2i(l < r)
	case token.LE:
		return b2i(l <= r)
	case token.GT:
		return b2i(l > r)
	case token.GE:
		return b2i(l >= r)
	case token.AND:
		return b2i(l != 0 && r != 0)
	case token.OR:
		return b2i(l != 0 || r != 0)
	}
	return 0
}
