package interp

import (
	"fmt"

	"sideeffect/internal/lang/ast"
)

// call implements procedure invocation: argument binding (reference
// bindings share storage, including strided sections; value bindings
// copy), static-link construction, per-call-site observation, and the
// recursion-depth budget.
func (in *interp) call(c *ast.Call, sc *scope) error {
	pd, declScope := sc.lookupProc(c.Name)
	if pd == nil {
		return runtimeError{fmt.Sprintf("%s: undefined procedure %q", c.Pos, c.Name)}
	}
	if len(c.Args) != len(pd.Params) {
		return runtimeError{fmt.Sprintf("%s: arity mismatch calling %q", c.Pos, c.Name)}
	}
	if in.depth >= in.opts.MaxDepth {
		return budgetExhausted{}
	}

	frame := &scope{
		static: declScope,
		owner:  pd,
		names:  make(map[string]*binding, len(pd.Params)+len(pd.Locals)),
		procs:  make(map[string]*ast.ProcDecl, len(pd.Nested)),
	}
	for _, nd := range pd.Nested {
		frame.procs[nd.Name] = nd
	}

	for i, prm := range pd.Params {
		arg := c.Args[i]
		q := pd.Name + "." + prm.Name
		switch prm.Mode {
		case ast.ByRef:
			b, err := in.bindRef(arg, prm, sc)
			if err != nil {
				return err
			}
			b.qualified = q
			frame.names[prm.Name] = b
		case ast.ByVal:
			var e ast.Expr
			if arg.Section != nil {
				e = &ast.VarRef{Name: arg.Section.Name, Subs: arg.Section.Subs, Pos: arg.Section.Pos}
			} else {
				e = arg.Value
			}
			v, err := in.expr(e, sc)
			if err != nil {
				return err
			}
			frame.names[prm.Name] = &binding{c: &cell{v: v}, qualified: q}
		}
	}
	for _, ld := range pd.Locals {
		frame.names[ld.Name] = makeVar(ld, pd.Name+".")
	}

	// Observation: aggregate into the site's record; the visible map
	// snapshots every name reachable from the *caller's* scope at this
	// moment, keyed by physical storage (cell, or array object).
	obs := in.res.Calls[c.Pos]
	if obs == nil {
		obs = &Obs{Mod: map[string]bool{}, Use: map[string]bool{}}
		in.res.Calls[c.Pos] = obs
	}
	vis := map[any][]string{}
	var tr *CallTrace
	var av map[*array][]arrView
	var elemRefs map[*array]int
	if in.opts.TraceElems {
		tr = &CallTrace{
			Pos:     c.Pos,
			Scalars: map[string]int{},
			Extents: map[string][]int{},
			Writes:  map[string][][]int{},
			Aliased: map[string]bool{},
		}
		av = map[*array][]arrView{}
		elemRefs = map[*array]int{}
	}
	for s := sc; s != nil; s = s.static {
		for name, b := range s.names {
			if sc.lookup(name) != b {
				continue // shadowed: not visible at the call site
			}
			var key any
			if b.c != nil {
				key = b.c
			} else {
				key = b.arr.arr
			}
			vis[key] = append(vis[key], b.qualified)
			if tr == nil {
				continue
			}
			if b.c != nil {
				tr.Scalars[b.qualified] = b.c.v
				if b.backing != nil {
					elemRefs[b.backing]++
				}
			} else {
				tr.Extents[b.qualified] = b.arr.dims
				av[b.arr.arr] = append(av[b.arr.arr], arrView{name: b.qualified, v: *b.arr})
			}
		}
	}
	if tr != nil {
		for arr, views := range av {
			if len(views)+elemRefs[arr] > 1 {
				for _, x := range views {
					tr.Aliased[x.name] = true
				}
			}
		}
	}
	in.recorders = append(in.recorders, obs)
	in.visible = append(in.visible, vis)
	if tr != nil {
		in.res.Traces = append(in.res.Traces, tr)
		in.traces = append(in.traces, tr)
		in.elemVis = append(in.elemVis, av)
	}
	in.depth++
	err := in.block(pd.Body, frame)
	in.depth--
	in.recorders = in.recorders[:len(in.recorders)-1]
	in.visible = in.visible[:len(in.visible)-1]
	if tr != nil {
		in.traces = in.traces[:len(in.traces)-1]
		in.elemVis = in.elemVis[:len(in.elemVis)-1]
	}
	return err
}

// bindRef produces the storage binding for a by-reference argument:
// a scalar shares its cell; a whole array shares the (full) view; a
// section fixes the subscripted dimensions and keeps the starred ones;
// an element of an array becomes a scalar binding to that element's
// cell.
func (in *interp) bindRef(arg *ast.Arg, prm *ast.Param, sc *scope) (*binding, error) {
	if arg.Section == nil {
		return nil, runtimeError{fmt.Sprintf("%s: ref parameter %q needs a variable argument", arg.Pos, prm.Name)}
	}
	sec := arg.Section
	b := sc.lookup(sec.Name)
	if b == nil {
		return nil, runtimeError{fmt.Sprintf("%s: undefined %q", sec.Pos, sec.Name)}
	}
	if b.c != nil {
		if len(sec.Subs) != 0 {
			return nil, runtimeError{fmt.Sprintf("%s: scalar %q subscripted", sec.Pos, sec.Name)}
		}
		return &binding{c: b.c}, nil
	}
	base := *b.arr
	if sec.Subs == nil {
		v := base
		return &binding{arr: &v}, nil
	}
	if len(sec.Subs) != len(base.dims) {
		return nil, runtimeError{fmt.Sprintf("%s: %q has rank %d", sec.Pos, sec.Name, len(base.dims))}
	}
	nv := view{arr: base.arr, offset: base.offset}
	for k := range sec.Subs {
		if sec.Star(k) {
			nv.dims = append(nv.dims, base.dims[k])
			nv.strides = append(nv.strides, base.strides[k])
			continue
		}
		x, err := in.expr(sec.Subs[k], sc)
		if err != nil {
			return nil, err
		}
		nv.offset += clampIndex(x, base.dims[k]) * base.strides[k]
	}
	if len(nv.dims) == 0 {
		// Element reference: a scalar binding to the cell, remembering
		// the array it lives in for observation purposes.
		return &binding{c: &base.arr.data[nv.offset], backing: base.arr, backOff: nv.offset}, nil
	}
	return &binding{arr: &nv}, nil
}
