package interp_test

import (
	"reflect"
	"testing"

	"sideeffect/internal/interp"
	"sideeffect/internal/lang/parser"
)

func runTraced(t *testing.T, src string) *interp.Result {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := interp.Run(tree, interp.Options{TraceElems: true})
	if err != nil {
		t.Fatalf("interp: %v", err)
	}
	return res
}

// tracesFor collects the traces of the call at the given qualified
// array-name observation, keyed however the caller wants.
func TestTraceElementWrites(t *testing.T) {
	res := runTraced(t, `
program tr;
global A[4, 4];
global j;
proc setcell(val r, val c)
begin
  A[r, c] := 1
end;
begin
  j := 3;
  call setcell(2, j)
end.
`)
	if len(res.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(res.Traces))
	}
	tr := res.Traces[0]
	if got := tr.Writes["A"]; !reflect.DeepEqual(got, [][]int{{1, 2}}) {
		t.Errorf("A writes = %v, want [[1 2]] (0-based)", got)
	}
	if tr.Scalars["j"] != 3 {
		t.Errorf("entry snapshot j = %d, want 3", tr.Scalars["j"])
	}
	if !reflect.DeepEqual(tr.Extents["A"], []int{4, 4}) {
		t.Errorf("extents of A = %v", tr.Extents["A"])
	}
	if len(tr.Aliased) != 0 {
		t.Errorf("unexpected aliasing: %v", tr.Aliased)
	}
}

// A column section A[*, 2] held by a caller's formal: writes through
// a further call must appear in the view's own rank-1 coordinate
// space for the formal's name, and in A's full space for the global
// name.
func TestTraceSectionCoordinates(t *testing.T) {
	res := runTraced(t, `
program sec;
global A[4, 4];
proc fill(ref c[*])
  var i;
begin
  for i := 1 to 4 do c[i] := i end
end;
proc driver(ref d[*])
begin
  call fill(d)
end;
begin
  call driver(A[*, 2])
end.
`)
	var whole, sect *interp.CallTrace
	for _, tr := range res.Traces {
		if tr.Extents["driver.d"] != nil {
			sect = tr // the call site inside driver
		} else if len(tr.Writes["A"]) > 0 {
			whole = tr // main's call, A visible whole
		}
	}
	if whole == nil || sect == nil {
		t.Fatalf("missing traces: %+v", res.Traces)
	}
	// Main sees A whole: column 2 (0-based 1), rows 0..3.
	want := [][]int{{0, 1}, {1, 1}, {2, 1}, {3, 1}}
	if !reflect.DeepEqual(whole.Writes["A"], want) {
		t.Errorf("A writes = %v, want %v", whole.Writes["A"], want)
	}
	if whole.Aliased["A"] {
		t.Errorf("A aliased at main's call: %v", whole.Aliased)
	}
	// Inside driver the formal is a rank-1 view: coordinates 0..3.
	want1 := [][]int{{0}, {1}, {2}, {3}}
	if !reflect.DeepEqual(sect.Writes["driver.d"], want1) {
		t.Errorf("driver.d writes = %v, want %v", sect.Writes["driver.d"], want1)
	}
	if !reflect.DeepEqual(sect.Extents["driver.d"], []int{4}) {
		t.Errorf("driver.d extents = %v", sect.Extents["driver.d"])
	}
	// Both driver.d and the global A see the storage inside driver, so
	// both are alias-marked there.
	if !sect.Aliased["driver.d"] || !sect.Aliased["A"] {
		t.Errorf("aliased = %v, want driver.d and A", sect.Aliased)
	}
}

// A formal bound to a visible global array makes both names aliases;
// the trace must mark them so element-level comparisons skip them.
func TestTraceAliasedNames(t *testing.T) {
	res := runTraced(t, `
program al;
global A[4];
proc inner(val k)
begin
  A[k] := k
end;
proc outer(ref f[*])
begin
  call inner(2)
end;
begin
  call outer(A)
end.
`)
	var inOuter *interp.CallTrace
	for _, tr := range res.Traces {
		if tr.Extents["outer.f"] != nil {
			inOuter = tr
		}
	}
	if inOuter == nil {
		t.Fatal("no trace inside outer")
	}
	if !inOuter.Aliased["A"] || !inOuter.Aliased["outer.f"] {
		t.Errorf("aliased = %v, want both A and outer.f marked", inOuter.Aliased)
	}
	// Both names still observe the write.
	if len(inOuter.Writes["A"]) != 1 || len(inOuter.Writes["outer.f"]) != 1 {
		t.Errorf("writes = %v", inOuter.Writes)
	}
}

// An element reference A[2] passed by ref: scalar writes through the
// formal are element writes of A at the fixed offset.
func TestTraceElementRefWrites(t *testing.T) {
	res := runTraced(t, `
program el;
global A[5];
proc setit(ref x)
begin
  x := 9
end;
begin
  call setit(A[2])
end.
`)
	if len(res.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(res.Traces))
	}
	tr := res.Traces[0]
	if got := tr.Writes["A"]; !reflect.DeepEqual(got, [][]int{{1}}) {
		t.Errorf("A writes = %v, want [[1]]", got)
	}
}
