// Package graph provides the directed multi-graph substrate shared by
// the call multi-graph and the binding multi-graph, together with the
// graph algorithms the paper builds on: Tarjan's strongly-connected
// components algorithm, condensation, topological ordering of the
// condensation, depth-first search with edge classification, and
// reachability.
//
// Nodes are dense integers [0, N). Parallel edges are permitted and
// significant (both the call graph and β are multi-graphs); each edge
// has a stable integer identifier in [0, E) in insertion order.
package graph

// Edge is a directed edge. ID identifies the edge within its graph and
// is the index clients use to attach side tables (e.g. the binding
// functions g_e of Section 6 of the paper).
type Edge struct {
	From, To int
	ID       int
}

// Graph is a mutable directed multi-graph.
type Graph struct {
	succ  [][]Edge
	pred  [][]Edge
	edges []Edge
}

// New returns a graph with n nodes and no edges.
func New(n int) *Graph {
	return &Graph{succ: make([][]Edge, n), pred: make([][]Edge, n)}
}

// FromEdgeList builds a graph over n nodes from a prepared edge list
// in one pass, assigning edge IDs by list position. The adjacency
// lists are carved from two shared backing arrays (classic CSR
// layout), so construction costs a constant number of allocations
// instead of O(N + E) incremental appends — the hot builders (call
// graph, β, the per-level graphs of the multi-level GMOD solver)
// rebuild graphs on every analysis. The list is taken over by the
// graph; callers must not reuse it. AddNode/AddEdge remain valid
// afterwards (later appends fall off the shared backing arrays
// naturally).
func FromEdgeList(n int, list []Edge) *Graph {
	for i := range list {
		list[i].ID = i
	}
	g := &Graph{succ: make([][]Edge, n), pred: make([][]Edge, n), edges: list}
	deg := make([]int32, 2*n)
	out, in := deg[:n], deg[n:]
	for _, e := range list {
		out[e.From]++
		in[e.To]++
	}
	succBack := make([]Edge, len(list))
	predBack := make([]Edge, len(list))
	var so, po int32
	for v := 0; v < n; v++ {
		g.succ[v] = succBack[so : so : so+out[v]]
		g.pred[v] = predBack[po : po : po+in[v]]
		so += out[v]
		po += in[v]
	}
	for _, e := range list {
		g.succ[e.From] = append(g.succ[e.From], e)
		g.pred[e.To] = append(g.pred[e.To], e)
	}
	return g
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.succ) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a fresh node and returns its index.
func (g *Graph) AddNode() int {
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return len(g.succ) - 1
}

// AddEdge inserts a directed edge from→to and returns its ID.
// Self-loops and parallel edges are allowed.
func (g *Graph) AddEdge(from, to int) int {
	e := Edge{From: from, To: to, ID: len(g.edges)}
	g.edges = append(g.edges, e)
	g.succ[from] = append(g.succ[from], e)
	g.pred[to] = append(g.pred[to], e)
	return e.ID
}

// Succs returns the out-edges of v. The slice is shared; callers must
// not mutate it.
func (g *Graph) Succs(v int) []Edge { return g.succ[v] }

// Preds returns the in-edges of v. The slice is shared; callers must
// not mutate it.
func (g *Graph) Preds(v int) []Edge { return g.pred[v] }

// Edges returns all edges in insertion order. The slice is shared.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Reverse returns a new graph with every edge direction flipped.
// Edge IDs are preserved.
func (g *Graph) Reverse() *Graph {
	r := New(g.NumNodes())
	for _, e := range g.edges {
		re := Edge{From: e.To, To: e.From, ID: e.ID}
		r.edges = append(r.edges, re)
		r.succ[re.From] = append(r.succ[re.From], re)
		r.pred[re.To] = append(r.pred[re.To], re)
	}
	return r
}

// Reachable returns the set of nodes reachable from any of the roots
// (the roots themselves included), as a boolean slice indexed by node.
func (g *Graph) Reachable(roots ...int) []bool {
	seen := make([]bool, g.NumNodes())
	stack := make([]int, 0, len(roots))
	for _, r := range roots {
		if r >= 0 && r < len(seen) && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.succ[v] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}
