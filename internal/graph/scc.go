package graph

// SCCInfo is the result of Tarjan's strongly-connected components
// algorithm on a Graph.
//
// Components are numbered in the order Tarjan's algorithm closes them,
// which is a reverse topological order of the condensation: if any
// edge leads from component c1 to a different component c2, then
// c2's number is smaller than c1's (the paper's Lemma 1). Solvers that
// propagate information from callees to callers can therefore simply
// process components in increasing number.
type SCCInfo struct {
	// Comp[v] is the component number of node v.
	Comp []int
	// Members[c] lists the nodes of component c.
	Members [][]int
	// Trivial[c] reports that component c is a single node with no
	// self-loop (it cannot reach itself by a non-empty path).
	Trivial []bool
}

// NumComponents returns the number of strongly-connected components.
func (s *SCCInfo) NumComponents() int { return len(s.Members) }

// SCC computes the strongly-connected components of g using an
// iterative formulation of Tarjan's algorithm (recursion replaced by
// an explicit frame stack so that million-node benchmark graphs cannot
// exhaust the goroutine stack).
func (g *Graph) SCC() *SCCInfo {
	n := g.NumNodes()
	const unvisited = 0
	dfn := make([]int, n) // 0 = unvisited; otherwise discovery index+1
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var members [][]int
	var trivial []bool
	// Every node lands in exactly one component, so all Members slices
	// are carved from one backing array (full-slice expressions keep
	// them from aliasing each other through append).
	membersBack := make([]int, 0, n)
	stack := make([]int, 0, n) // Tarjan's node stack
	next := 1

	type frame struct {
		v  int
		ei int // index into g.succ[v] of the next edge to examine
	}
	frames := make([]frame, 0, 64)
	selfLoop := make([]bool, n)

	for root := 0; root < n; root++ {
		if dfn[root] != unvisited {
			continue
		}
		frames = append(frames, frame{v: root})
		dfn[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.succ[v]) {
				e := g.succ[v][f.ei]
				f.ei++
				w := e.To
				if w == v {
					selfLoop[v] = true
				}
				if dfn[w] == unvisited {
					dfn[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && dfn[w] < lowlink[v] {
					lowlink[v] = dfn[w]
				}
			}
			if advanced {
				continue
			}
			// All edges of v examined: close component if v is a root.
			if lowlink[v] == dfn[v] {
				c := len(members)
				start := len(membersBack)
				for {
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					comp[u] = c
					membersBack = append(membersBack, u)
					if u == v {
						break
					}
				}
				ms := membersBack[start:len(membersBack):len(membersBack)]
				members = append(members, ms)
				trivial = append(trivial, len(ms) == 1 && !selfLoop[v])
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
		}
	}
	return &SCCInfo{Comp: comp, Members: members, Trivial: trivial}
}

// Condense returns the condensation DAG of g under the given SCC
// decomposition: one node per component, and one edge per original
// edge whose endpoints lie in different components (parallel edges are
// preserved, matching the multi-graph flavor of the inputs). Edge IDs
// in the condensation index a slice mapping back to original edge IDs,
// returned as the second value.
func (g *Graph) Condense(s *SCCInfo) (*Graph, []int) {
	d := New(s.NumComponents())
	var orig []int
	for _, e := range g.edges {
		cf, ct := s.Comp[e.From], s.Comp[e.To]
		if cf != ct {
			d.AddEdge(cf, ct)
			orig = append(orig, e.ID)
		}
	}
	return d, orig
}

// TopoOrder returns a topological order of an acyclic graph (callers
// typically pass a condensation). The second result is false if the
// graph has a cycle, in which case the order is not meaningful.
func (g *Graph) TopoOrder() ([]int, bool) {
	n := g.NumNodes()
	indeg := make([]int, n)
	for _, e := range g.edges {
		indeg[e.To]++
	}
	order := make([]int, 0, n)
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		order = append(order, v)
		for _, e := range g.succ[v] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	return order, len(order) == n
}
