package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddNodesEdges(t *testing.T) {
	g := New(2)
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("New(2): %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	v := g.AddNode()
	if v != 2 || g.NumNodes() != 3 {
		t.Fatalf("AddNode returned %d", v)
	}
	e0 := g.AddEdge(0, 1)
	e1 := g.AddEdge(0, 1) // parallel edge
	e2 := g.AddEdge(1, 2)
	if e0 != 0 || e1 != 1 || e2 != 2 {
		t.Fatalf("edge IDs %d %d %d", e0, e1, e2)
	}
	if len(g.Succs(0)) != 2 {
		t.Errorf("Succs(0) = %v, want 2 parallel edges", g.Succs(0))
	}
	if len(g.Preds(1)) != 2 {
		t.Errorf("Preds(1) = %v", g.Preds(1))
	}
	if g.Edge(2).From != 1 || g.Edge(2).To != 2 {
		t.Errorf("Edge(2) = %+v", g.Edge(2))
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if len(r.Succs(2)) != 1 || r.Succs(2)[0].To != 1 {
		t.Errorf("Reverse: Succs(2) = %v", r.Succs(2))
	}
	if r.Edge(0).From != 1 || r.Edge(0).To != 0 {
		t.Errorf("Reverse preserves IDs: Edge(0) = %+v", r.Edge(0))
	}
}

func TestReachable(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	got := g.Reachable(0)
	want := []bool{true, true, true, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reachable(0) = %v, want %v", got, want)
	}
	got = g.Reachable(0, 3)
	want = []bool{true, true, true, true, true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reachable(0,3) = %v, want %v", got, want)
	}
	got = g.Reachable()
	want = []bool{false, false, false, false, false}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Reachable() = %v", got)
	}
}

func TestSCCSimpleCycle(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	s := g.SCC()
	if s.NumComponents() != 2 {
		t.Fatalf("components = %d, want 2", s.NumComponents())
	}
	if s.Comp[0] != s.Comp[1] || s.Comp[1] != s.Comp[2] {
		t.Errorf("cycle nodes in different components: %v", s.Comp)
	}
	if s.Comp[3] == s.Comp[0] {
		t.Errorf("node 3 merged into cycle: %v", s.Comp)
	}
	// Reverse topological order: component of 3 (a sink) closes first.
	if s.Comp[3] != 0 {
		t.Errorf("sink component number = %d, want 0", s.Comp[3])
	}
	if !s.Trivial[s.Comp[3]] {
		t.Error("singleton without self-loop should be trivial")
	}
	if s.Trivial[s.Comp[0]] {
		t.Error("cycle component should not be trivial")
	}
}

func TestSCCSelfLoop(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	s := g.SCC()
	if s.NumComponents() != 2 {
		t.Fatalf("components = %d", s.NumComponents())
	}
	if s.Trivial[s.Comp[0]] {
		t.Error("self-loop node must be non-trivial")
	}
	if !s.Trivial[s.Comp[1]] {
		t.Error("plain node must be trivial")
	}
}

func TestSCCDisconnected(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(3, 4)
	s := g.SCC()
	if s.NumComponents() != 5 {
		t.Fatalf("components = %d, want 5", s.NumComponents())
	}
	total := 0
	for _, m := range s.Members {
		total += len(m)
	}
	if total != 6 {
		t.Errorf("members cover %d nodes, want 6", total)
	}
}

// TestSCCReverseTopoOrder verifies the property the paper's Lemma 1
// rests on: Tarjan closes a component before any component with an
// edge into it... precisely, for every edge u→v crossing components,
// comp(v) < comp(u).
func TestSCCReverseTopoOrder(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.Intn(60)
		g := New(n)
		for i := 0; i < n*3; i++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		s := g.SCC()
		for _, e := range g.Edges() {
			cf, ct := s.Comp[e.From], s.Comp[e.To]
			if cf != ct && ct >= cf {
				t.Fatalf("trial %d: edge %d→%d has comp %d→%d, not reverse topo",
					trial, e.From, e.To, cf, ct)
			}
		}
	}
}

// naiveSCC computes components by mutual reachability, as an oracle.
func naiveSCC(g *Graph) []int {
	n := g.NumNodes()
	reach := make([][]bool, n)
	for v := 0; v < n; v++ {
		reach[v] = g.Reachable(v)
	}
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	next := 0
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		comp[v] = next
		for w := v + 1; w < n; w++ {
			if comp[w] == -1 && reach[v][w] && reach[w][v] {
				comp[w] = next
			}
		}
		next++
	}
	return comp
}

func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[[2]int]bool{}
	for i := range a {
		m[[2]int{a[i], b[i]}] = true
	}
	// bijective relabeling: each a-label maps to exactly one b-label and
	// vice versa.
	fa, fb := map[int]int{}, map[int]int{}
	for k := range m {
		if v, ok := fa[k[0]]; ok && v != k[1] {
			return false
		}
		if v, ok := fb[k[1]]; ok && v != k[0] {
			return false
		}
		fa[k[0]] = k[1]
		fb[k[1]] = k[0]
	}
	return true
}

func TestQuickSCCMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		g := New(n)
		e := r.Intn(3 * n)
		for i := 0; i < e; i++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		return samePartition(g.SCC().Comp, naiveSCC(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCondense(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(1, 2)
	g.AddEdge(1, 2) // parallel cross edge preserved
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(4, 0)
	s := g.SCC()
	d, orig := g.Condense(s)
	if d.NumNodes() != 3 {
		t.Fatalf("condensation nodes = %d, want 3", d.NumNodes())
	}
	if d.NumEdges() != 3 { // {0,1}→{2,3} twice (parallel preserved), 4→{0,1} once
		t.Fatalf("condensation edges = %d, want 3: %v", d.NumEdges(), d.Edges())
	}
	if len(orig) != d.NumEdges() {
		t.Fatalf("orig mapping length %d != %d", len(orig), d.NumEdges())
	}
	order, ok := d.TopoOrder()
	if !ok {
		t.Fatal("condensation not acyclic")
	}
	pos := make([]int, d.NumNodes())
	for i, c := range order {
		pos[c] = i
	}
	for _, e := range d.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Errorf("topo order violated for edge %+v", e)
		}
	}
}

func TestTopoOrderCycle(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	if _, ok := g.TopoOrder(); ok {
		t.Error("TopoOrder accepted a cyclic graph")
	}
}

func TestSCCLargeChainIterative(t *testing.T) {
	// A deep chain would overflow a recursive implementation's stack;
	// the iterative one must handle it.
	const n = 200_000
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(i, i+1)
	}
	s := g.SCC()
	if s.NumComponents() != n {
		t.Fatalf("components = %d, want %d", s.NumComponents(), n)
	}
	// Chain is closed tail-first.
	if s.Comp[n-1] != 0 || s.Comp[0] != n-1 {
		t.Errorf("unexpected closing order: comp[last]=%d comp[0]=%d", s.Comp[n-1], s.Comp[0])
	}
}

func TestSCCMembersConsistent(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := New(30)
	for i := 0; i < 90; i++ {
		g.AddEdge(r.Intn(30), r.Intn(30))
	}
	s := g.SCC()
	for c, ms := range s.Members {
		for _, v := range ms {
			if s.Comp[v] != c {
				t.Fatalf("member %d of comp %d has Comp=%d", v, c, s.Comp[v])
			}
		}
	}
	var all []int
	for _, ms := range s.Members {
		all = append(all, ms...)
	}
	sort.Ints(all)
	for i, v := range all {
		if v != i {
			t.Fatalf("members not a partition: %v", all)
		}
	}
}

func TestReducible(t *testing.T) {
	// Straight line: reducible.
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.Reducible(0) {
		t.Error("chain should be reducible")
	}
	// Natural loop (back edge to a dominator): reducible.
	g = New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	if !g.Reducible(0) {
		t.Error("natural loop should be reducible")
	}
	// Self-loop: T1.
	g = New(2)
	g.AddEdge(0, 1)
	g.AddEdge(1, 1)
	if !g.Reducible(0) {
		t.Error("self loop should be reducible")
	}
	// The classic irreducible diamond: two entries into a cycle.
	g = New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	if g.Reducible(0) {
		t.Error("two-entry cycle should be irreducible")
	}
	// Unreachable garbage does not affect the verdict.
	g = New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	if !g.Reducible(0) {
		t.Error("unreachable cycle should not matter")
	}
	// Empty graph.
	if !New(0).Reducible(0) {
		t.Error("empty graph should be reducible")
	}
	// Mutual recursion reached from a single root IS irreducible when
	// both procedures are called from outside the cycle — the shape
	// that defeats the swift algorithm's reducibility assumption.
	g = New(4)
	g.AddEdge(0, 1) // main → even
	g.AddEdge(0, 2) // main → odd
	g.AddEdge(1, 2) // even → odd
	g.AddEdge(2, 1) // odd → even
	_ = g.AddNode()
	if g.Reducible(0) {
		t.Error("doubly-entered mutual recursion should be irreducible")
	}
}

func TestReducibleRandomAgainstDefinition(t *testing.T) {
	// Cross-check against a simple spec: a graph is reducible iff
	// every retreating edge in any DFS targets a dominator. We use the
	// equivalent "every cycle has a single entry from outside" check
	// via brute-force dominators on small graphs.
	r := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(7)
		g := New(n)
		for i := 0; i < n+r.Intn(2*n); i++ {
			g.AddEdge(r.Intn(n), r.Intn(n))
		}
		got := g.Reducible(0)
		want := reducibleSpec(g, 0)
		if got != want {
			t.Fatalf("trial %d: Reducible = %v, spec = %v, edges %v",
				trial, got, want, g.Edges())
		}
	}
}

// reducibleSpec: a rooted graph is reducible iff for every edge u→v
// where v dominates u (a back edge), removing all such back edges
// leaves an acyclic graph. Dominators computed by brute force.
func reducibleSpec(g *Graph, root int) bool {
	n := g.NumNodes()
	reach := g.Reachable(root)
	// dom[v] = set of nodes that dominate v.
	dominates := func(d, v int) bool {
		if !reach[v] || !reach[d] {
			return false
		}
		// v unreachable when d removed?
		seen := make([]bool, n)
		seen[d] = true // block d
		stack := []int{root}
		if root != d {
			seen[root] = true
		} else {
			return true // root dominates everything
		}
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Succs(x) {
				if !seen[e.To] {
					seen[e.To] = true
					stack = append(stack, e.To)
				}
			}
		}
		return !seen[v] || v == d
	}
	// Remove back edges (target dominates source); check acyclicity.
	h := New(n)
	for _, e := range g.Edges() {
		if !reach[e.From] || !reach[e.To] {
			continue
		}
		if dominates(e.To, e.From) {
			continue // back edge
		}
		h.AddEdge(e.From, e.To)
	}
	_, acyclic := h.TopoOrder()
	return acyclic
}
