package graph

// Reducible reports whether the graph, viewed as a flow graph rooted
// at root, is reducible in the classical T1/T2 sense: repeatedly
// removing self-loops (T1) and merging nodes with a unique predecessor
// into that predecessor (T2) collapses the reachable subgraph to a
// single node.
//
// Relevance to the paper: the swift algorithm's O(E α(E,N)) bound
// holds only for *reducible* call graphs (Tarjan's path-expression
// machinery), whereas Section 2 notes that neither of the paper's
// algorithms relies on reducibility. Mutual recursion makes real call
// graphs irreducible routinely, so the workload generators produce
// both kinds; this predicate lets experiments report which.
func (g *Graph) Reducible(root int) bool {
	n := g.NumNodes()
	if n == 0 {
		return true
	}
	// Work on the reachable subgraph only.
	reach := g.Reachable(root)
	// parent[v] via union-find represents merged supernodes.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	// preds as sets of supernode representatives.
	preds := make([]map[int]bool, n)
	for i := range preds {
		preds[i] = map[int]bool{}
	}
	alive := 0
	for _, e := range g.edges {
		if reach[e.From] && reach[e.To] && e.From != e.To {
			preds[e.To][e.From] = true
		}
	}
	for v := 0; v < n; v++ {
		if reach[v] {
			alive++
		}
	}

	// Worklist of candidates for T2.
	queue := make([]int, 0, alive)
	for v := 0; v < n; v++ {
		if reach[v] {
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		v = find(v)
		if v == find(root) {
			continue
		}
		// Normalize v's predecessor set under current merges, dropping
		// self references (T1).
		np := map[int]bool{}
		for p := range preds[v] {
			r := find(p)
			if r != v {
				np[r] = true
			}
		}
		preds[v] = np
		if len(np) != 1 {
			continue
		}
		// T2: merge v into its unique predecessor.
		var u int
		for p := range np {
			u = p
		}
		parent[v] = u
		for p := range preds[v] {
			if find(p) != u {
				preds[u][p] = true
			}
		}
		// v's successors now have u as predecessor; rather than keep
		// successor lists, lazily fix preds on future normalization —
		// but we must requeue nodes that referenced v.
		alive--
		// Requeue everything still alive (small graphs dominate our
		// usage; an O(N·E) bound here is acceptable for a predicate
		// used in experiments, not in the analyses).
		for w := 0; w < n; w++ {
			if reach[w] && find(w) != find(root) && find(w) == w {
				queue = append(queue, w)
			}
		}
	}
	// Reducible iff everything reachable merged into the root.
	for v := 0; v < n; v++ {
		if reach[v] && find(v) != find(root) {
			return false
		}
	}
	return true
}
