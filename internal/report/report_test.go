package report

import (
	"encoding/json"
	"strings"
	"testing"

	"sideeffect/internal/alias"
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
	"sideeffect/internal/section"
)

const src = `
program rpt;
global g, h;
global A[4, 4];
proc setcol(ref c[*], val v)
  var i;
begin
  for i := 1 to 4 do c[i] := v end
end;
proc touch(ref x) begin x := g end;
begin
  call touch(h);
  call setcol(A[*, 2], g)
end.
`

func results(t *testing.T) (*ir.Program, *core.Result, *core.Result, *alias.Analysis, *section.Result) {
	t.Helper()
	prog, err := sem.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	mod := core.Analyze(prog, core.Mod, core.Options{})
	use := core.Analyze(prog, core.Use, core.Options{})
	al := alias.Compute(prog)
	sec := section.Analyze(mod, core.Mod)
	return prog, mod, use, al, sec
}

func TestVarNames(t *testing.T) {
	prog, mod, _, _, _ := results(t)
	names := VarNames(prog, mod.GMOD[prog.Proc("setcol").ID])
	want := "setcol.c, setcol.i"
	if got := strings.Join(names, ", "); got != want {
		t.Errorf("VarNames = %q, want %q", got, want)
	}
	if VarNames(prog, bitset.New(0)) != nil {
		t.Error("VarNames of empty set should be nil")
	}
}

func TestTable(t *testing.T) {
	got := Table([][]string{{"a", "bb"}, {"ccc", "d"}})
	want := "a    bb\n---  --\nccc  d\n"
	if got != want {
		t.Errorf("Table = %q, want %q", got, want)
	}
	if Table(nil) != "" {
		t.Error("Table(nil) should be empty")
	}
}

func TestTableUnicodeAlignment(t *testing.T) {
	got := Table([][]string{{"h", "x"}, {"a → b", "1"}, {"plain", "2"}})
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	// The second column must start at the same rune column in each row.
	col := -1
	for _, l := range lines[2:] {
		runes := []rune(l)
		idx := strings.LastIndexAny(string(runes), "12")
		if col == -1 {
			col = len([]rune(l[:idx]))
		} else if len([]rune(l[:idx])) != col {
			t.Errorf("misaligned table:\n%s", got)
		}
	}
}

func TestSummaries(t *testing.T) {
	_, mod, use, _, _ := results(t)
	out := Summaries(mod, use)
	for _, want := range []string{"procedure", "GMOD", "GUSE", "touch", "setcol", "$main", "{A, h}"} {
		if !strings.Contains(out, want) {
			t.Errorf("Summaries missing %q:\n%s", want, out)
		}
	}
}

func TestRMODTable(t *testing.T) {
	_, mod, _, _, _ := results(t)
	out := RMODTable(mod)
	if !strings.Contains(out, "touch") || !strings.Contains(out, "{x}") {
		t.Errorf("RMODTable:\n%s", out)
	}
	if !strings.Contains(out, "{c}") {
		t.Errorf("RMODTable missing setcol's c:\n%s", out)
	}
	// main has no formals: no row.
	if strings.Contains(out, "$main") {
		t.Errorf("RMODTable should skip formal-less procedures:\n%s", out)
	}
}

func TestCallSitesWithAndWithoutAliases(t *testing.T) {
	_, mod, use, al, _ := results(t)
	plain := CallSites(mod, use, nil)
	factored := CallSites(mod, use, al)
	if !strings.Contains(plain, "touch") {
		t.Errorf("CallSites:\n%s", plain)
	}
	// Alias factoring adds h to the touch call's MOD (x aliases h).
	if len(factored) < len(plain) {
		t.Error("factored output should not shrink")
	}
}

func TestSectionsTable(t *testing.T) {
	_, _, _, _, sec := results(t)
	out := Sections(sec)
	if !strings.Contains(out, "A(*, 2)") {
		t.Errorf("Sections missing column section:\n%s", out)
	}
}

func TestAliasesTable(t *testing.T) {
	_, _, _, al, _ := results(t)
	out := Aliases(al)
	if !strings.Contains(out, "⟨") {
		t.Errorf("Aliases table empty:\n%s", out)
	}
	// A program with no pairs renders the placeholder.
	prog2, err := sem.AnalyzeSource("program e; proc q() begin end; begin call q() end.")
	if err != nil {
		t.Fatal(err)
	}
	if got := Aliases(alias.Compute(prog2)); got != "(no alias pairs)\n" {
		t.Errorf("empty Aliases = %q", got)
	}
}

func TestFull(t *testing.T) {
	_, mod, use, al, sec := results(t)
	out := Full(mod, use, al, sec)
	for _, want := range []string{
		"program rpt:", "Interprocedural summaries", "Reference formal",
		"Alias pairs", "Call sites", "Regular sections",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Full missing %q", want)
		}
	}
	// Without sections.
	out = Full(mod, use, al, nil)
	if strings.Contains(out, "Regular sections") {
		t.Error("Full(nil sections) should omit the section table")
	}
}

func TestDotCallGraph(t *testing.T) {
	prog, _, _, _, _ := results(t)
	dot := DotCallGraph(prog)
	for _, want := range []string{"digraph callgraph", "peripheries=2", "label=\"touch\"", "s0", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DotCallGraph missing %q:\n%s", want, dot)
		}
	}
	// Nesting containment edges.
	prog2, err := sem.AnalyzeSource(`
program n;
proc outer()
  proc inner() begin end;
begin call inner() end;
begin call outer() end.
`)
	if err != nil {
		t.Fatal(err)
	}
	dot = DotCallGraph(prog2)
	if !strings.Contains(dot, "style=dashed") {
		t.Errorf("nested containment edge missing:\n%s", dot)
	}
}

func TestDotBinding(t *testing.T) {
	prog, _, _, _, _ := results(t)
	beta := binding.Build(prog)
	dot := DotBinding(beta)
	for _, want := range []string{"digraph beta", "touch.x#0", "setcol.c#0"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DotBinding missing %q:\n%s", want, dot)
		}
	}
}

func TestJSON(t *testing.T) {
	_, mod, use, al, sec := results(t)
	out, err := JSON(mod, use, al, sec)
	if err != nil {
		t.Fatal(err)
	}
	var r JSONReport
	if err := json.Unmarshal([]byte(out), &r); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if r.Program != "rpt" {
		t.Errorf("program = %q", r.Program)
	}
	if len(r.Procedures) != 3 || len(r.CallSites) != 2 {
		t.Fatalf("%d procedures, %d sites", len(r.Procedures), len(r.CallSites))
	}
	var touch *JSONProcedure
	for i := range r.Procedures {
		if r.Procedures[i].Name == "touch" {
			touch = &r.Procedures[i]
		}
	}
	if touch == nil {
		t.Fatal("no touch procedure")
	}
	if len(touch.RMOD) != 1 || touch.RMOD[0] != "x" {
		t.Errorf("RMOD = %v", touch.RMOD)
	}
	if len(touch.Aliases) != 1 || touch.Aliases[0] != [2]string{"h", "touch.x"} {
		t.Errorf("Aliases = %v", touch.Aliases)
	}
	// Section strings survive.
	found := false
	for _, cs := range r.CallSites {
		for _, s := range cs.Sections {
			if s == "A(*, 2)" {
				found = true
			}
		}
	}
	if !found {
		t.Error("JSON missing section A(*, 2)")
	}
	// Nil aliases/sections: fields omitted, MOD falls back to DMOD.
	out2, err := JSON(mod, use, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "aliases") || strings.Contains(out2, "sections") {
		t.Error("nil inputs should omit fields")
	}
}
