package report

import (
	"fmt"
	"strings"

	"sideeffect/internal/binding"
	"sideeffect/internal/ir"
)

// dotEscape quotes a label for Graphviz.
func dotEscape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// DotCallGraph renders the call multi-graph in Graphviz dot syntax.
// Procedures are boxes (main doubled), one edge per call site,
// labelled with the call-site ID. Lexical nesting is drawn as dashed
// containment edges.
func DotCallGraph(prog *ir.Program) string {
	var b strings.Builder
	b.WriteString("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n")
	for _, p := range prog.Procs {
		attrs := ""
		if p.IsMain {
			attrs = ", peripheries=2"
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"%s];\n", p.ID, dotEscape(p.Name), attrs)
	}
	for _, p := range prog.Procs {
		if p.Parent != nil {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, arrowhead=odiamond, label=\"nested\"];\n",
				p.Parent.ID, p.ID)
		}
	}
	for _, cs := range prog.Sites {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"s%d\"];\n", cs.Caller.ID, cs.Callee.ID, cs.ID)
	}
	b.WriteString("}\n")
	return b.String()
}

// DotBinding renders the binding multi-graph β in Graphviz dot syntax:
// one node per by-reference formal (labelled fp_i^p style), one edge
// per binding event, labelled with the call site that performs it.
func DotBinding(beta *binding.Beta) string {
	var b strings.Builder
	b.WriteString("digraph beta {\n  rankdir=LR;\n  node [shape=ellipse, fontname=\"monospace\"];\n")
	for n, f := range beta.Nodes {
		fmt.Fprintf(&b, "  b%d [label=\"%s#%d\"];\n", n, dotEscape(f.Owner.Name+"."+f.Name), f.Ordinal)
	}
	for _, e := range beta.G.Edges() {
		cs := beta.EdgeSite[e.ID]
		fmt.Fprintf(&b, "  b%d -> b%d [label=\"s%d\"];\n", e.From, e.To, cs.ID)
	}
	b.WriteString("}\n")
	return b.String()
}
