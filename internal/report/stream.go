package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"sideeffect/internal/alias"
	"sideeffect/internal/core"
	"sideeffect/internal/section"
)

// This file holds the streaming counterparts of the string renderers:
// every Write* function produces bytes identical to its string twin
// but emits them through a buffered writer in bounded memory — one
// table row or one JSON record at a time — so a 100k-procedure report
// flows to disk without ever existing as a whole. The string versions
// are retained as thin wrappers for callers that want a value.

// WriteJSON streams the report as indented JSON, byte-identical to
// Render: the envelope is written by hand and each procedure,
// call-site, and stage record is marshaled individually, so the
// largest allocation is one record, not the whole document.
func WriteJSON(w io.Writer, r *JSONReport) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	name, err := json.Marshal(r.Program)
	if err != nil {
		return fmt.Errorf("report: %w", err)
	}
	bw.WriteString("{\n  \"program\": ")
	bw.Write(name)
	bw.WriteString(",\n  \"procedures\": ")
	if err := writeJSONArray(bw, len(r.Procedures), r.Procedures == nil,
		func(i int) any { return &r.Procedures[i] }); err != nil {
		return err
	}
	bw.WriteString(",\n  \"callSites\": ")
	if err := writeJSONArray(bw, len(r.CallSites), r.CallSites == nil,
		func(i int) any { return &r.CallSites[i] }); err != nil {
		return err
	}
	// Stages carries omitempty: both nil and empty slices vanish.
	if len(r.Stages) > 0 {
		bw.WriteString(",\n  \"stages\": ")
		if err := writeJSONArray(bw, len(r.Stages), false,
			func(i int) any { return &r.Stages[i] }); err != nil {
			return err
		}
	}
	bw.WriteString("\n}\n")
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("report: %w", err)
	}
	return nil
}

// writeJSONArray emits one top-level array of the envelope. Each
// element is marshaled with the indentation MarshalIndent would have
// given it inside the full document ("    " prefix, "  " indent), so
// concatenation reproduces the monolithic encoding exactly — including
// the nil/empty distinction (null vs []).
func writeJSONArray(bw *bufio.Writer, n int, isNil bool, item func(i int) any) error {
	if isNil {
		bw.WriteString("null")
		return nil
	}
	if n == 0 {
		bw.WriteString("[]")
		return nil
	}
	bw.WriteString("[\n")
	for i := 0; i < n; i++ {
		b, err := json.MarshalIndent(item(i), "    ", "  ")
		if err != nil {
			return fmt.Errorf("report: %w", err)
		}
		bw.WriteString("    ")
		bw.Write(b)
		if i < n-1 {
			bw.WriteByte(',')
		}
		bw.WriteByte('\n')
	}
	bw.WriteString("  ]")
	return nil
}

// rowSeq yields table rows in order; writeTable iterates it twice
// (widths, then emission), so a sequence must be replayable.
type rowSeq = func(yield func([]string) bool)

// writeTable streams an aligned table — bytes identical to Table — in
// two passes over the rows: the first computes column widths, the
// second writes, so no row set is ever held. The first yielded row is
// the header.
func writeTable(bw *bufio.Writer, rows rowSeq) {
	var widths []int
	any := false
	rows(func(r []string) bool {
		any = true
		for i, c := range r {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if w := runeLen(c); w > widths[i] {
				widths[i] = w
			}
		}
		return true
	})
	if !any {
		return
	}
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				bw.WriteString("  ")
			}
			bw.WriteString(c)
			if i < len(r)-1 {
				for n := widths[i] - runeLen(c); n > 0; n-- {
					bw.WriteByte(' ')
				}
			}
		}
		bw.WriteByte('\n')
	}
	first := true
	rows(func(r []string) bool {
		writeRow(r)
		if first {
			first = false
			sep := make([]string, len(r))
			for i := range sep {
				sep[i] = strings.Repeat("-", widths[i])
			}
			writeRow(sep)
		}
		return true
	})
}

// WriteSummaries streams the per-procedure GMOD/GUSE table.
func WriteSummaries(w io.Writer, mod, use *core.Result) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := mod.Prog
	writeTable(bw, func(yield func([]string) bool) {
		if !yield([]string{"procedure", "GMOD", "GUSE"}) {
			return
		}
		for _, p := range prog.Procs {
			if !yield([]string{p.Name, setString(prog, mod.GMOD[p.ID]), setString(prog, use.GMOD[p.ID])}) {
				return
			}
		}
	})
	return bw.Flush()
}

// WriteRMODTable streams the reference-formal-parameter solution.
func WriteRMODTable(w io.Writer, mod *core.Result) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := mod.Prog
	writeTable(bw, func(yield func([]string) bool) {
		if !yield([]string{"procedure", "RMOD"}) {
			return
		}
		for _, p := range prog.Procs {
			if len(p.Formals) == 0 {
				continue
			}
			var fs []string
			for _, f := range p.Formals {
				if mod.RMOD.Of(f) {
					fs = append(fs, f.Name)
				}
			}
			if !yield([]string{p.Name, "{" + strings.Join(fs, ", ") + "}"}) {
				return
			}
		}
	})
	return bw.Flush()
}

// WriteCallSites streams the per-call-site MOD and USE sets.
func WriteCallSites(w io.Writer, mod, use *core.Result, aliases *alias.Analysis) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := mod.Prog
	modSets, useSets := mod.DMOD, use.DMOD
	if aliases != nil {
		modSets = aliases.Factor(mod.DMOD)
		useSets = aliases.Factor(use.DMOD)
	}
	writeTable(bw, func(yield func([]string) bool) {
		if !yield([]string{"call site", "at", "MOD", "USE"}) {
			return
		}
		for _, cs := range prog.Sites {
			if !yield([]string{
				fmt.Sprintf("%s → %s", cs.Caller.Name, cs.Callee.Name),
				cs.Pos.String(),
				setString(prog, modSets[cs.ID]),
				setString(prog, useSets[cs.ID]),
			}) {
				return
			}
		}
	})
	return bw.Flush()
}

// WriteSections streams the regular-section refinement per call site.
func WriteSections(w io.Writer, sec *section.Result) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := sec.Prog
	writeTable(bw, func(yield func([]string) bool) {
		if !yield([]string{"call site", "array sections (" + sec.Kind.String() + ")"}) {
			return
		}
		for _, cs := range prog.Sites {
			at := sec.AtCall(cs)
			if len(at) == 0 {
				continue
			}
			ids := make([]int, 0, len(at))
			for id := range at {
				ids = append(ids, id)
			}
			sort.Ints(ids)
			var parts []string
			for _, id := range ids {
				parts = append(parts, at[id].Format(prog.Vars[id].Name, prog.Vars))
			}
			if !yield([]string{
				fmt.Sprintf("%s → %s", cs.Caller.Name, cs.Callee.Name),
				strings.Join(parts, ", "),
			}) {
				return
			}
		}
	})
	return bw.Flush()
}

// WriteAliases streams the alias pairs per procedure.
func WriteAliases(w io.Writer, a *alias.Analysis) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := a.Prog
	empty := true
	for _, p := range prog.Procs {
		if len(a.Pairs(p)) > 0 {
			empty = false
			break
		}
	}
	if empty {
		bw.WriteString("(no alias pairs)\n")
		return bw.Flush()
	}
	writeTable(bw, func(yield func([]string) bool) {
		if !yield([]string{"procedure", "alias pairs"}) {
			return
		}
		for _, p := range prog.Procs {
			prs := a.Pairs(p)
			if len(prs) == 0 {
				continue
			}
			var parts []string
			for _, pr := range prs {
				parts = append(parts, fmt.Sprintf("⟨%s, %s⟩", prog.Vars[pr.X], prog.Vars[pr.Y]))
			}
			if !yield([]string{p.Name, strings.Join(parts, " ")}) {
				return
			}
		}
	})
	return bw.Flush()
}

// WriteFull streams the complete report, section by section.
func WriteFull(w io.Writer, mod, use *core.Result, aliases *alias.Analysis, secMod *section.Result) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := mod.Prog
	fmt.Fprintf(bw, "program %s: %d procedures, %d call sites, %d variables (%d global)\n\n",
		prog.Name, prog.NumProcs(), prog.NumSites(), prog.NumVars(), len(prog.Globals()))
	bw.WriteString("== Interprocedural summaries ==\n")
	WriteSummaries(bw, mod, use)
	bw.WriteString("\n== Reference formal parameters (RMOD) ==\n")
	WriteRMODTable(bw, mod)
	bw.WriteString("\n== Alias pairs ==\n")
	WriteAliases(bw, aliases)
	bw.WriteString("\n== Call sites ==\n")
	WriteCallSites(bw, mod, use, aliases)
	if secMod != nil {
		bw.WriteString("\n== Regular sections (MOD) ==\n")
		WriteSections(bw, secMod)
	}
	return bw.Flush()
}

// WriteGMODSummary streams the per-procedure summary-set cardinalities
// of a condensed MOD/USE pair: one line per procedure, sizes computed
// through CondensedResult.GMODSize, so neither a row nor a name list
// is ever materialized. This is the giant-graph report — at 100k
// procedures the full set listing would dwarf the analysis itself.
func WriteGMODSummary(w io.Writer, mod, use *core.CondensedResult) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	prog := mod.Prog
	fmt.Fprintf(bw, "program %s: %d procedures, %d call sites, %d variables (%d global)\n",
		prog.Name, prog.NumProcs(), prog.NumSites(), prog.NumVars(), len(prog.Globals()))
	fmt.Fprintf(bw, "procedure |GMOD| |GUSE|\n")
	for _, p := range prog.Procs {
		fmt.Fprintf(bw, "%s %d %d\n", p.Name, mod.GMODSize(p.ID), use.GMODSize(p.ID))
	}
	ms, us := mod.Stats(), use.Stats()
	fmt.Fprintf(bw, "condensation: %d+%d components, %d+%d condensed rows, %d+%d shared-row hits (mod+use)\n",
		ms.Components, us.Components, ms.CondensedRows, us.CondensedRows, ms.SharedRowHits, us.SharedRowHits)
	return bw.Flush()
}
