package report

import (
	"encoding/json"
	"fmt"

	"sideeffect/internal/alias"
	"sideeffect/internal/core"
	"sideeffect/internal/prof"
	"sideeffect/internal/section"
)

// JSONReport is the stable machine-readable schema for a complete
// analysis, designed for the separate-compilation scenario the paper's
// programming environment ran in: summaries computed once, stored, and
// recombined by downstream tools. Variable names are qualified as in
// ir.Variable.String ("g" for globals, "proc.x" otherwise).
type JSONReport struct {
	Program    string          `json:"program"`
	Procedures []JSONProcedure `json:"procedures"`
	CallSites  []JSONCallSite  `json:"callSites"`
	// Stages carries the per-stage profile when the analysis was run
	// with profiling on (see prof.Profile); omitted otherwise.
	Stages []prof.StageStat `json:"stages,omitempty"`
}

// Render marshals the report as indented JSON.
func (r *JSONReport) Render() (string, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "", fmt.Errorf("report: %w", err)
	}
	return string(b) + "\n", nil
}

// JSONProcedure is one procedure's summary.
type JSONProcedure struct {
	Name   string `json:"name"`
	Level  int    `json:"level"`
	Parent string `json:"parent,omitempty"`
	// GMOD/GUSE are the per-procedure summary sets.
	GMOD []string `json:"gmod"`
	GUSE []string `json:"guse"`
	// RMOD lists the by-reference formals an invocation may modify.
	RMOD []string `json:"rmod,omitempty"`
	// Aliases lists the alias pairs holding on entry.
	Aliases [][2]string `json:"aliases,omitempty"`
}

// JSONCallSite is one call site's final answer.
type JSONCallSite struct {
	ID       int      `json:"id"`
	Caller   string   `json:"caller"`
	Callee   string   `json:"callee"`
	Pos      string   `json:"pos"`
	MOD      []string `json:"mod"`
	USE      []string `json:"use"`
	Sections []string `json:"sections,omitempty"`
}

// BuildJSON assembles the report structure. mod and use must be the
// two problem results for the same program; aliases and secMod may be
// nil (the corresponding fields are then omitted and MOD/USE are the
// unfactored DMOD/DUSE).
func BuildJSON(mod, use *core.Result, aliases *alias.Analysis, secMod *section.Result) *JSONReport {
	prog := mod.Prog
	r := &JSONReport{Program: prog.Name}
	modSets, useSets := mod.DMOD, use.DMOD
	if aliases != nil {
		modSets = aliases.Factor(mod.DMOD)
		useSets = aliases.Factor(use.DMOD)
	}
	for _, p := range prog.Procs {
		jp := JSONProcedure{
			Name:  p.Name,
			Level: p.Level,
			GMOD:  VarNames(prog, mod.GMOD[p.ID]),
			GUSE:  VarNames(prog, use.GMOD[p.ID]),
		}
		if p.Parent != nil {
			jp.Parent = p.Parent.Name
		}
		for _, f := range p.Formals {
			if mod.RMOD.Of(f) {
				jp.RMOD = append(jp.RMOD, f.Name)
			}
		}
		if aliases != nil {
			for _, pr := range aliases.Pairs(p) {
				jp.Aliases = append(jp.Aliases,
					[2]string{prog.Vars[pr.X].String(), prog.Vars[pr.Y].String()})
			}
		}
		r.Procedures = append(r.Procedures, jp)
	}
	for _, cs := range prog.Sites {
		jc := JSONCallSite{
			ID:     cs.ID,
			Caller: cs.Caller.Name,
			Callee: cs.Callee.Name,
			Pos:    cs.Pos.String(),
			MOD:    VarNames(prog, modSets[cs.ID]),
			USE:    VarNames(prog, useSets[cs.ID]),
		}
		if secMod != nil {
			at := secMod.AtCall(cs)
			ids := make([]int, 0, len(at))
			for id := range at {
				ids = append(ids, id)
			}
			sortInts(ids)
			for _, id := range ids {
				jc.Sections = append(jc.Sections, at[id].Format(prog.Vars[id].Name, prog.Vars))
			}
		}
		r.CallSites = append(r.CallSites, jc)
	}
	return r
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// JSON renders the report as indented JSON.
func JSON(mod, use *core.Result, aliases *alias.Analysis, secMod *section.Result) (string, error) {
	return BuildJSON(mod, use, aliases, secMod).Render()
}
