// Package report renders analysis results as human-readable text: the
// per-procedure summary sets, the per-call-site MOD/USE sets, and
// regular sections, in a stable, diff-friendly format used by the CLI
// and the examples.
package report

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"

	"sideeffect/internal/alias"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/section"
)

// VarNames returns the qualified names of the variables in s, sorted.
func VarNames(prog *ir.Program, s *bitset.Set) []string {
	var out []string
	s.ForEach(func(id int) { out = append(out, prog.Vars[id].String()) })
	sort.Strings(out)
	return out
}

func setString(prog *ir.Program, s *bitset.Set) string {
	return "{" + strings.Join(VarNames(prog, s), ", ") + "}"
}

// Table renders aligned columns: rows of cells, first row treated as
// the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	width := utf8.RuneCountInString
	widths := make([]int, 0)
	for _, r := range rows {
		for i, c := range r {
			if i == len(widths) {
				widths = append(widths, 0)
			}
			if width(c) > widths[i] {
				widths[i] = width(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i, c := range r {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(r)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-width(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(rows[0])
	sep := make([]string, len(rows[0]))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// Summaries renders the per-procedure GMOD/GUSE table.
func Summaries(mod, use *core.Result) string {
	prog := mod.Prog
	rows := [][]string{{"procedure", "GMOD", "GUSE"}}
	for _, p := range prog.Procs {
		rows = append(rows, []string{
			p.Name,
			setString(prog, mod.GMOD[p.ID]),
			setString(prog, use.GMOD[p.ID]),
		})
	}
	return Table(rows)
}

// RMODTable renders the reference-formal-parameter solution.
func RMODTable(mod *core.Result) string {
	prog := mod.Prog
	rows := [][]string{{"procedure", "RMOD"}}
	for _, p := range prog.Procs {
		var fs []string
		for _, f := range p.Formals {
			if mod.RMOD.Of(f) {
				fs = append(fs, f.Name)
			}
		}
		if len(p.Formals) == 0 {
			continue
		}
		rows = append(rows, []string{p.Name, "{" + strings.Join(fs, ", ") + "}"})
	}
	return Table(rows)
}

// CallSites renders the per-call-site MOD and USE sets (after alias
// factoring when aliases is non-nil).
func CallSites(mod, use *core.Result, aliases *alias.Analysis) string {
	prog := mod.Prog
	modSets, useSets := mod.DMOD, use.DMOD
	if aliases != nil {
		modSets = aliases.Factor(mod.DMOD)
		useSets = aliases.Factor(use.DMOD)
	}
	rows := [][]string{{"call site", "at", "MOD", "USE"}}
	for _, cs := range prog.Sites {
		rows = append(rows, []string{
			fmt.Sprintf("%s → %s", cs.Caller.Name, cs.Callee.Name),
			cs.Pos.String(),
			setString(prog, modSets[cs.ID]),
			setString(prog, useSets[cs.ID]),
		})
	}
	return Table(rows)
}

// Sections renders the regular-section refinement per call site: for
// each array affected by the call, the subregion descriptor.
func Sections(sec *section.Result) string {
	prog := sec.Prog
	rows := [][]string{{"call site", "array sections (" + sec.Kind.String() + ")"}}
	for _, cs := range prog.Sites {
		at := sec.AtCall(cs)
		if len(at) == 0 {
			continue
		}
		ids := make([]int, 0, len(at))
		for id := range at {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		var parts []string
		for _, id := range ids {
			parts = append(parts, at[id].Format(prog.Vars[id].Name, prog.Vars))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%s → %s", cs.Caller.Name, cs.Callee.Name),
			strings.Join(parts, ", "),
		})
	}
	return Table(rows)
}

// Aliases renders the alias pairs per procedure.
func Aliases(a *alias.Analysis) string {
	prog := a.Prog
	rows := [][]string{{"procedure", "alias pairs"}}
	for _, p := range prog.Procs {
		prs := a.Pairs(p)
		if len(prs) == 0 {
			continue
		}
		var parts []string
		for _, pr := range prs {
			parts = append(parts, fmt.Sprintf("⟨%s, %s⟩", prog.Vars[pr.X], prog.Vars[pr.Y]))
		}
		rows = append(rows, []string{p.Name, strings.Join(parts, " ")})
	}
	if len(rows) == 1 {
		return "(no alias pairs)\n"
	}
	return Table(rows)
}

// Full renders the complete report for a program.
func Full(mod, use *core.Result, aliases *alias.Analysis, secMod *section.Result) string {
	var b strings.Builder
	prog := mod.Prog
	fmt.Fprintf(&b, "program %s: %d procedures, %d call sites, %d variables (%d global)\n\n",
		prog.Name, prog.NumProcs(), prog.NumSites(), prog.NumVars(), len(prog.Globals()))
	b.WriteString("== Interprocedural summaries ==\n")
	b.WriteString(Summaries(mod, use))
	b.WriteString("\n== Reference formal parameters (RMOD) ==\n")
	b.WriteString(RMODTable(mod))
	b.WriteString("\n== Alias pairs ==\n")
	b.WriteString(Aliases(aliases))
	b.WriteString("\n== Call sites ==\n")
	b.WriteString(CallSites(mod, use, aliases))
	if secMod != nil {
		b.WriteString("\n== Regular sections (MOD) ==\n")
		b.WriteString(Sections(secMod))
	}
	return b.String()
}
