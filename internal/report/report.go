// Package report renders analysis results as human-readable text: the
// per-procedure summary sets, the per-call-site MOD/USE sets, and
// regular sections, in a stable, diff-friendly format used by the CLI
// and the examples.
package report

import (
	"bufio"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"sideeffect/internal/alias"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/section"
)

// VarNames returns the qualified names of the variables in s, sorted.
func VarNames(prog *ir.Program, s *bitset.Set) []string {
	var out []string
	s.ForEach(func(id int) { out = append(out, prog.Vars[id].String()) })
	sort.Strings(out)
	return out
}

func setString(prog *ir.Program, s *bitset.Set) string {
	return "{" + strings.Join(VarNames(prog, s), ", ") + "}"
}

// runeLen measures a cell in runes; table columns align on it.
func runeLen(s string) int { return utf8.RuneCountInString(s) }

// Table renders aligned columns: rows of cells, first row treated as
// the header.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	var b strings.Builder
	bw := bufio.NewWriter(&b)
	writeTable(bw, func(yield func([]string) bool) {
		for _, r := range rows {
			if !yield(r) {
				return
			}
		}
	})
	bw.Flush()
	return b.String()
}

// capture collects a streaming writer's output as a string; the
// writers never fail on an in-memory sink.
func capture(f func(w io.Writer) error) string {
	var b strings.Builder
	if err := f(&b); err != nil {
		panic(err) // unreachable: strings.Builder cannot error
	}
	return b.String()
}

// Summaries renders the per-procedure GMOD/GUSE table.
func Summaries(mod, use *core.Result) string {
	return capture(func(w io.Writer) error { return WriteSummaries(w, mod, use) })
}

// RMODTable renders the reference-formal-parameter solution.
func RMODTable(mod *core.Result) string {
	return capture(func(w io.Writer) error { return WriteRMODTable(w, mod) })
}

// CallSites renders the per-call-site MOD and USE sets (after alias
// factoring when aliases is non-nil).
func CallSites(mod, use *core.Result, aliases *alias.Analysis) string {
	return capture(func(w io.Writer) error { return WriteCallSites(w, mod, use, aliases) })
}

// Sections renders the regular-section refinement per call site: for
// each array affected by the call, the subregion descriptor.
func Sections(sec *section.Result) string {
	return capture(func(w io.Writer) error { return WriteSections(w, sec) })
}

// Aliases renders the alias pairs per procedure.
func Aliases(a *alias.Analysis) string {
	return capture(func(w io.Writer) error { return WriteAliases(w, a) })
}

// Full renders the complete report for a program.
func Full(mod, use *core.Result, aliases *alias.Analysis, secMod *section.Result) string {
	return capture(func(w io.Writer) error { return WriteFull(w, mod, use, aliases, secMod) })
}
