// Package prof is a lightweight stage timer for the analysis
// pipeline. A *Profile is threaded through core.Analyze, the section
// solver, and the lint engine; each stage runs under Do, which records
// wall time (and optionally allocation deltas) per stage name and can
// tag the goroutine with a pprof label so CPU profiles attribute
// samples to pipeline stages.
//
// A nil *Profile is valid everywhere and costs one nil check — the
// production path pays nothing unless profiling was requested.
package prof

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// StageStat is the accumulated cost of one named pipeline stage.
type StageStat struct {
	Name string `json:"name"`
	// NS is total wall time in nanoseconds across Count executions.
	NS    int64 `json:"ns"`
	Count int64 `json:"count"`
	// Allocs/Bytes are heap allocation deltas measured around the
	// stage. They are recorded only when the profile was created with
	// CountAllocs (sequential pipelines — concurrent stages would
	// attribute each other's allocations) and are omitted otherwise.
	Allocs int64 `json:"allocs,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`
}

// Profile accumulates per-stage counters. All methods are safe for
// concurrent use and safe on a nil receiver (where they do nothing).
type Profile struct {
	countAllocs bool
	labels      bool

	mu     sync.Mutex
	order  []string
	stages map[string]*StageStat
}

// Option configures New.
type Option func(*Profile)

// CountAllocs samples runtime.MemStats around every stage, recording
// allocation count and byte deltas. Only meaningful when stages run
// one at a time: under the parallel batch engine, concurrent stages
// would be charged for each other's allocations, so callers enable
// this only on sequential pipelines.
func CountAllocs() Option { return func(p *Profile) { p.countAllocs = true } }

// WithLabels wraps each stage in a pprof label ("stage" → name), so
// `go tool pprof` CPU and heap profiles can be filtered and grouped by
// pipeline stage (e.g. -tagfocus stage=mod.gmod).
func WithLabels() Option { return func(p *Profile) { p.labels = true } }

// New returns an empty profile.
func New(opts ...Option) *Profile {
	p := &Profile{stages: make(map[string]*StageStat)}
	for _, o := range opts {
		o(p)
	}
	return p
}

// Do runs f as stage name, accumulating its cost. On a nil receiver it
// just runs f.
func (p *Profile) Do(name string, f func()) {
	if p == nil {
		f()
		return
	}
	var m0 runtime.MemStats
	if p.countAllocs {
		runtime.ReadMemStats(&m0)
	}
	start := time.Now()
	if p.labels {
		pprof.Do(context.Background(), pprof.Labels("stage", name), func(context.Context) { f() })
	} else {
		f()
	}
	ns := time.Since(start).Nanoseconds()
	var allocs, bytes int64
	if p.countAllocs {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		allocs = int64(m1.Mallocs - m0.Mallocs)
		bytes = int64(m1.TotalAlloc - m0.TotalAlloc)
	}
	p.mu.Lock()
	st, ok := p.stages[name]
	if !ok {
		st = &StageStat{Name: name}
		p.stages[name] = st
		p.order = append(p.order, name)
	}
	st.NS += ns
	st.Count++
	st.Allocs += allocs
	st.Bytes += bytes
	p.mu.Unlock()
}

// Snapshot returns the accumulated stages in first-recorded order.
// Safe on nil (returns nil).
func (p *Profile) Snapshot() []StageStat {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]StageStat, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.stages[name])
	}
	return out
}

// TotalNS returns the summed wall time of all stages. Safe on nil.
func (p *Profile) TotalNS() int64 {
	var total int64
	for _, st := range p.Snapshot() {
		total += st.NS
	}
	return total
}

// Table renders the profile as an aligned text table, stages sorted by
// descending total time. Safe on nil (returns "").
func (p *Profile) Table() string {
	stages := p.Snapshot()
	if len(stages) == 0 {
		return ""
	}
	sort.SliceStable(stages, func(i, j int) bool { return stages[i].NS > stages[j].NS })
	total := int64(0)
	hasAllocs := false
	for _, st := range stages {
		total += st.NS
		hasAllocs = hasAllocs || st.Allocs != 0 || st.Bytes != 0
	}
	wide := len("stage")
	for _, st := range stages {
		if len(st.Name) > wide {
			wide = len(st.Name)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s %12s %6s %7s", wide, "stage", "time", "count", "share")
	if hasAllocs {
		fmt.Fprintf(&b, " %10s %12s", "allocs", "bytes")
	}
	b.WriteByte('\n')
	for _, st := range stages {
		share := 0.0
		if total > 0 {
			share = 100 * float64(st.NS) / float64(total)
		}
		fmt.Fprintf(&b, "%-*s %12s %6d %6.1f%%", wide, st.Name, time.Duration(st.NS), st.Count, share)
		if hasAllocs {
			fmt.Fprintf(&b, " %10d %12d", st.Allocs, st.Bytes)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s %12s\n", wide, "total", time.Duration(total))
	return b.String()
}
