package prof

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilProfileRunsFunc(t *testing.T) {
	var p *Profile
	ran := false
	p.Do("x", func() { ran = true })
	if !ran {
		t.Fatal("nil profile did not run the stage")
	}
	if p.Snapshot() != nil || p.Table() != "" || p.TotalNS() != 0 {
		t.Fatal("nil profile not inert")
	}
}

func TestAccumulation(t *testing.T) {
	p := New()
	p.Do("a", func() { time.Sleep(time.Millisecond) })
	p.Do("b", func() {})
	p.Do("a", func() {})
	snap := p.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("got %d stages, want 2", len(snap))
	}
	if snap[0].Name != "a" || snap[1].Name != "b" {
		t.Errorf("order = %v, want first-recorded [a b]", []string{snap[0].Name, snap[1].Name})
	}
	if snap[0].Count != 2 || snap[1].Count != 1 {
		t.Errorf("counts = %d,%d want 2,1", snap[0].Count, snap[1].Count)
	}
	if snap[0].NS < int64(time.Millisecond) {
		t.Errorf("stage a NS = %d, want ≥ 1ms", snap[0].NS)
	}
	if p.TotalNS() < snap[0].NS {
		t.Error("TotalNS lost time")
	}
	if !strings.Contains(p.Table(), "a") || !strings.Contains(p.Table(), "total") {
		t.Errorf("Table missing rows:\n%s", p.Table())
	}
}

func TestCountAllocs(t *testing.T) {
	p := New(CountAllocs())
	var sink []byte
	p.Do("alloc", func() { sink = make([]byte, 1<<20) })
	_ = sink
	snap := p.Snapshot()
	if snap[0].Allocs < 1 || snap[0].Bytes < 1<<20 {
		t.Errorf("allocation delta not captured: %+v", snap[0])
	}
}

func TestConcurrentDo(t *testing.T) {
	p := New(WithLabels())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				p.Do("stage", func() {})
			}
		}()
	}
	wg.Wait()
	if got := p.Snapshot()[0].Count; got != 800 {
		t.Errorf("Count = %d, want 800", got)
	}
}
