package binding

import (
	"testing"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
)

func analyze(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := sem.AnalyzeSource(src)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return p
}

// nodeByName finds the β node index of a qualified formal name.
func nodeByName(t *testing.T, b *Beta, name string) int {
	t.Helper()
	v := b.Prog.Var(name)
	if v == nil {
		t.Fatalf("no variable %q", name)
	}
	n := b.NodeOf[v.ID]
	if n < 0 {
		t.Fatalf("%q has no β node", name)
	}
	return n
}

func TestBuildChain(t *testing.T) {
	p := analyze(t, `
program c;
global g;
proc bottom(ref z) begin z := 1 end;
proc mid(ref y) begin call bottom(y) end;
proc top(ref x) begin call mid(x) end;
begin call top(g) end.
`)
	b := Build(p)
	if len(b.Nodes) != 3 {
		t.Fatalf("nodes = %d, want 3", len(b.Nodes))
	}
	// Edges: top.x→mid.y, mid.y→bottom.z. The call top(g) passes a
	// global, so it generates no β edge.
	if b.G.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2: %v", b.G.NumEdges(), b.G.Edges())
	}
	x := nodeByName(t, b, "top.x")
	y := nodeByName(t, b, "mid.y")
	z := nodeByName(t, b, "bottom.z")
	found := map[[2]int]bool{}
	for _, e := range b.G.Edges() {
		found[[2]int{e.From, e.To}] = true
	}
	if !found[[2]int{x, y}] || !found[[2]int{y, z}] {
		t.Errorf("edges = %v, want x→y and y→z", b.G.Edges())
	}
}

func TestMultiEdges(t *testing.T) {
	p := analyze(t, `
program m;
global g;
proc q(ref b) begin b := 1 end;
proc p(ref a)
begin
  call q(a);
  call q(a)
end;
begin call p(g) end.
`)
	b := Build(p)
	if b.G.NumEdges() != 2 {
		t.Fatalf("parallel binding edges = %d, want 2", b.G.NumEdges())
	}
	if b.EdgeSite[0] == b.EdgeSite[1] {
		t.Error("parallel edges should come from distinct call sites")
	}
	if b.EdgeArg[0] != 0 || b.EdgeArg[1] != 0 {
		t.Errorf("EdgeArg = %v %v", b.EdgeArg[0], b.EdgeArg[1])
	}
}

func TestValFormalsExcluded(t *testing.T) {
	p := analyze(t, `
program v;
global g;
proc q(ref a, val n) begin a := n end;
proc p(val m, ref b) begin call q(b, m) end;
begin call p(3, g) end.
`)
	b := Build(p)
	// Only ref formals are nodes: q.a and p.b.
	if len(b.Nodes) != 2 {
		t.Fatalf("nodes = %d, want 2", len(b.Nodes))
	}
	// p.b→q.a is the only edge; passing val m as val n contributes
	// nothing, and passing the global g contributes nothing.
	if b.G.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", b.G.NumEdges())
	}
	e := b.G.Edges()[0]
	if b.Formal(e.From).String() != "p.b" || b.Formal(e.To).String() != "q.a" {
		t.Errorf("edge = %s→%s", b.Formal(e.From), b.Formal(e.To))
	}
}

func TestNestedBindingRule(t *testing.T) {
	// Section 3.3 case 2: a formal of p passed as an actual at a call
	// site *inside a nested procedure* still generates the edge from
	// p's formal.
	p := analyze(t, `
program n;
global g;
proc sink(ref s) begin s := 1 end;
proc outer(ref x)
  proc inner()
  begin
    call sink(x)
  end;
begin
  call inner()
end;
begin call outer(g) end.
`)
	b := Build(p)
	x := nodeByName(t, b, "outer.x")
	s := nodeByName(t, b, "sink.s")
	if b.G.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", b.G.NumEdges())
	}
	e := b.G.Edges()[0]
	if e.From != x || e.To != s {
		t.Errorf("edge = %v, want outer.x→sink.s", e)
	}
}

func TestRecursiveCycle(t *testing.T) {
	p := analyze(t, `
program r;
global g;
proc f(ref a) begin call f(a) end;
begin call f(g) end.
`)
	b := Build(p)
	if b.G.NumEdges() != 1 {
		t.Fatalf("edges = %d", b.G.NumEdges())
	}
	e := b.G.Edges()[0]
	if e.From != e.To {
		t.Errorf("self-binding should be a self-loop: %v", e)
	}
}

func TestArrayElementActualGeneratesEdge(t *testing.T) {
	// Passing an element of a ref formal array binds the array's
	// formal to the callee's scalar formal.
	p := analyze(t, `
program a;
global A[10];
proc setelem(ref e) begin e := 0 end;
proc p(ref M[*]) begin call setelem(M[1]) end;
begin call p(A) end.
`)
	b := Build(p)
	m := nodeByName(t, b, "p.M")
	e := nodeByName(t, b, "setelem.e")
	if b.G.NumEdges() != 1 {
		t.Fatalf("edges = %d", b.G.NumEdges())
	}
	edge := b.G.Edges()[0]
	if edge.From != m || edge.To != e {
		t.Errorf("edge = %v", edge)
	}
}

func TestStats(t *testing.T) {
	p := analyze(t, `
program s;
global g, h;
proc isolated(ref u) begin u := 1 end;
proc q(ref b) begin b := 1 end;
proc p(ref a) begin call q(a) end;
begin
  call p(g);
  call isolated(h)
end.
`)
	b := Build(p)
	st := b.Stats()
	if st.NBetaAll != 3 {
		t.Errorf("NBetaAll = %d, want 3", st.NBetaAll)
	}
	if st.NBeta != 2 {
		t.Errorf("NBeta = %d, want 2 (isolated.u untouched)", st.NBeta)
	}
	if st.EBeta != 1 {
		t.Errorf("EBeta = %d, want 1", st.EBeta)
	}
	if st.Components != 1 {
		t.Errorf("Components = %d, want 1", st.Components)
	}
	// 2·Eβ ≥ Nβ must hold when counting only touched nodes.
	if 2*st.EBeta < st.NBeta {
		t.Errorf("2Eβ=%d < Nβ=%d", 2*st.EBeta, st.NBeta)
	}
}
