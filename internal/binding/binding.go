// Package binding constructs the paper's central data structure, the
// binding multi-graph β = (Nβ, Eβ).
//
// Nodes of β are the by-reference formal parameters of the program
// (the paper's fp_i^p). There is an edge (fp_i^p, fp_j^q) for every
// binding event: a call site at which fp_i^p is passed as the j-th
// actual parameter of q. Because the same pair of formals can be bound
// at several call sites, β is a multi-graph. A call site that passes
// only locals, globals, or expressions contributes no edges.
//
// Lexical nesting (Section 3.3, case 2): the call site performing the
// binding need not be in the procedure that owns the formal — a formal
// of p may be passed as an actual inside a procedure nested within p.
// The construction therefore keys edges on the *owner* of the actual
// variable, not on the calling procedure.
//
// Construction is a single scan of the call sites, linear in the size
// of the program (Section 3.1).
package binding

import (
	"fmt"

	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// Beta is the binding multi-graph of a program.
type Beta struct {
	Prog *ir.Program
	G    *graph.Graph
	// Nodes maps β-node index → the ref formal it represents.
	Nodes []*ir.Variable
	// NodeOf maps ir.Variable.ID → β-node index, or -1 for variables
	// that are not by-reference formals.
	NodeOf []int
	// EdgeSite and EdgeArg map β-edge ID → the call site and actual
	// position that generated the binding (needed to recover the
	// regular-section mapping functions g_e of Section 6).
	EdgeSite []*ir.CallSite
	EdgeArg  []int
}

// Build constructs β for p. Every by-reference formal is represented
// as a node (isolated nodes carry their own RMOD seed); Stats reports
// how many nodes actually touch an edge, the quantity the paper's Nβ
// counts.
func Build(p *ir.Program) *Beta {
	b := &Beta{Prog: p, NodeOf: make([]int, p.NumVars())}
	for i := range b.NodeOf {
		b.NodeOf[i] = -1
	}
	for _, q := range p.Procs {
		for _, f := range q.Formals {
			if f.Kind == ir.FormalRef {
				b.NodeOf[f.ID] = len(b.Nodes)
				b.Nodes = append(b.Nodes, f)
			}
		}
	}
	var list []graph.Edge
	for _, cs := range p.Sites {
		for i, a := range cs.Args {
			if a.Mode != ir.FormalRef || a.Var == nil {
				continue
			}
			src := b.NodeOf[a.Var.ID]
			if src < 0 {
				continue // actual is not a ref formal: no binding chain
			}
			dst := b.NodeOf[cs.Callee.Formals[i].ID]
			if dst < 0 {
				panic(fmt.Sprintf("binding: ref formal %s has no β node",
					cs.Callee.Formals[i]))
			}
			list = append(list, graph.Edge{From: src, To: dst})
			b.EdgeSite = append(b.EdgeSite, cs)
			b.EdgeArg = append(b.EdgeArg, i)
		}
	}
	b.G = graph.FromEdgeList(len(b.Nodes), list)
	return b
}

// Formal returns the ref formal represented by β-node n.
func (b *Beta) Formal(n int) *ir.Variable { return b.Nodes[n] }

// Stats reports the size of β and its relation to the call
// multi-graph, the subject of Section 3.1: Nβ ≤ µ_f·N_C and
// Eβ ≤ µ_a·E_C, and 2·Eβ ≥ Nβ when only edge-touching nodes are
// represented.
type Stats struct {
	// NBetaAll counts every ref formal; NBeta counts only formals that
	// are an endpoint of at least one binding edge (the paper's Nβ).
	NBetaAll, NBeta int
	EBeta           int
	// Components is the number of weakly-connected pieces among the
	// touched nodes; the paper notes β "will almost certainly consist
	// of a number of disjoint components".
	Components int
}

// Stats computes size statistics for β.
func (b *Beta) Stats() Stats {
	s := Stats{NBetaAll: len(b.Nodes), EBeta: b.G.NumEdges()}
	touched := make([]bool, len(b.Nodes))
	for _, e := range b.G.Edges() {
		touched[e.From] = true
		touched[e.To] = true
	}
	// Union-find over touched nodes for weak components.
	parent := make([]int, len(b.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range b.G.Edges() {
		parent[find(e.From)] = find(e.To)
	}
	roots := make(map[int]bool)
	for i, t := range touched {
		if t {
			s.NBeta++
			roots[find(i)] = true
		}
	}
	s.Components = len(roots)
	return s
}
