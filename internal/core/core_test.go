package core_test

import (
	"testing"

	"sideeffect/internal/baseline"
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
	"sideeffect/internal/workload"
)

func names(prog *ir.Program, s *bitset.Set) map[string]bool {
	out := map[string]bool{}
	s.ForEach(func(id int) { out[prog.Vars[id].String()] = true })
	return out
}

func wantSet(t *testing.T, prog *ir.Program, got *bitset.Set, want ...string) {
	t.Helper()
	g := names(prog, got)
	if len(g) != len(want) {
		t.Errorf("set = %v, want %v", g, want)
		return
	}
	for _, w := range want {
		if !g[w] {
			t.Errorf("set = %v, missing %q", g, w)
		}
	}
}

func TestFactsFlat(t *testing.T) {
	prog := workload.PaperExample()
	f := core.ComputeFacts(prog, core.Mod)
	wantSet(t, prog, f.I[prog.Proc("top").ID], "h")
	wantSet(t, prog, f.I[prog.Proc("bot").ID], "bot.c")
	if !f.SeedOf(prog.Var("bot.c")) {
		t.Error("SeedOf(bot.c) = false")
	}
	if f.SeedOf(prog.Var("top.a")) {
		t.Error("SeedOf(top.a) = true")
	}
	fu := core.ComputeFacts(prog, core.Use)
	wantSet(t, prog, fu.I[prog.Proc("bot").ID], "g")
}

func TestFactsNestedFold(t *testing.T) {
	prog := workload.NestedTower(3)
	f := core.ComputeFacts(prog, core.Mod)
	// See the NestedTower doc: the deepest procedure modifies g and
	// every enclosing local; folding strips exactly one local per
	// level on the way up.
	wantSet(t, prog, f.I[prog.Proc("n3").ID], "g", "n0.v", "n1.v", "n2.v")
	wantSet(t, prog, f.I[prog.Proc("n2").ID], "g", "n0.v", "n1.v", "n2.v")
	wantSet(t, prog, f.I[prog.Proc("n1").ID], "g", "n0.v", "n1.v")
	wantSet(t, prog, f.I[prog.Proc("n0").ID], "g", "n0.v")
	wantSet(t, prog, f.I[prog.Main.ID])
}

func TestRMODPaperExample(t *testing.T) {
	prog := workload.PaperExample()
	f := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	r := core.SolveRMOD(beta, f)
	for _, n := range []string{"top.a", "mid.b", "bot.c"} {
		if !r.Of(prog.Var(n)) {
			t.Errorf("RMOD(%s) = false, want true", n)
		}
	}
	// β has the SCC {a,b} plus {c}: 2 components.
	if r.Stats.Components != 2 {
		t.Errorf("components = %d, want 2", r.Stats.Components)
	}
	// USE side: nothing reads through the formals.
	fu := core.ComputeFacts(prog, core.Use)
	ru := core.SolveRMOD(beta, fu)
	for _, n := range []string{"top.a", "mid.b", "bot.c"} {
		if ru.Of(prog.Var(n)) {
			t.Errorf("RUSE(%s) = true, want false", n)
		}
	}
}

func TestRMODChainPropagation(t *testing.T) {
	prog := workload.Chain(50)
	f := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	r := core.SolveRMOD(beta, f)
	for i := 0; i < 50; i++ {
		v := prog.Procs[i+1].Formals[0] // Procs[0] is main
		if !r.Of(v) {
			t.Fatalf("RMOD(%s) = false", v)
		}
	}
}

func TestRMODCycle(t *testing.T) {
	prog := workload.Cycle(20)
	f := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	r := core.SolveRMOD(beta, f)
	// One seed inside the cycle makes the entire cycle true.
	for _, v := range beta.Nodes {
		if !r.Of(v) {
			t.Fatalf("RMOD(%s) = false inside cycle", v)
		}
	}
	if r.Stats.Components != 1 {
		t.Errorf("cycle components = %d, want 1", r.Stats.Components)
	}
}

func TestRMODNoSeeds(t *testing.T) {
	prog := workload.Chain(5)
	// Use problem: no formal is read in Chain.
	f := core.ComputeFacts(prog, core.Use)
	beta := binding.Build(prog)
	r := core.SolveRMOD(beta, f)
	for _, v := range beta.Nodes {
		if r.Of(v) {
			t.Errorf("RUSE(%s) = true", v)
		}
	}
	// Of on a non-formal is false, not a panic.
	if r.Of(prog.Var("g")) {
		t.Error("Of(global) = true")
	}
}

func TestIMODPlusPaperExample(t *testing.T) {
	prog := workload.PaperExample()
	f := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	r := core.SolveRMOD(beta, f)
	ip := core.ComputeIMODPlus(f, r)
	wantSet(t, prog, ip[prog.Proc("top").ID], "h", "top.a")
	wantSet(t, prog, ip[prog.Proc("mid").ID], "mid.b")
	wantSet(t, prog, ip[prog.Proc("bot").ID], "bot.c")
	wantSet(t, prog, ip[prog.Main.ID], "g")
}

func TestGMODPaperExample(t *testing.T) {
	prog := workload.PaperExample()
	res := core.Analyze(prog, core.Mod, core.Options{})
	wantSet(t, prog, res.GMOD[prog.Proc("bot").ID], "bot.c")
	wantSet(t, prog, res.GMOD[prog.Proc("mid").ID], "mid.b", "h")
	wantSet(t, prog, res.GMOD[prog.Proc("top").ID], "top.a", "h")
	wantSet(t, prog, res.GMOD[prog.Main.ID], "g", "h")
	// DMOD at main's call site: b_e(GMOD(top)) = {h} plus the actual g
	// bound to a ∈ RMOD(top).
	var mainSite *ir.CallSite
	for _, cs := range prog.Sites {
		if cs.Caller.IsMain {
			mainSite = cs
		}
	}
	wantSet(t, prog, res.DMOD[mainSite.ID], "g", "h")
}

func TestGMODFanout(t *testing.T) {
	prog := workload.Fanout(9)
	res := core.Analyze(prog, core.Mod, core.Options{})
	// main reaches every leaf: GMOD(main) = all g_i plus shared.
	m := names(prog, res.GMOD[prog.Main.ID])
	if !m["shared"] {
		t.Error("GMOD(main) missing shared")
	}
	for i := 0; i < 9; i++ {
		if !m["g"+itoa(i)] {
			t.Errorf("GMOD(main) missing g%d", i)
		}
	}
	// Leaves only know their own effects.
	p4 := names(prog, res.GMOD[prog.Proc("p4").ID])
	if p4["g5"] || !p4["g4"] {
		t.Errorf("GMOD(p4) = %v", p4)
	}
}

func itoa(i int) string { return string(rune('0' + i)) }

func TestGMODNestedTower(t *testing.T) {
	prog := workload.NestedTower(3)
	res := core.Analyze(prog, core.Mod, core.Options{})
	wantSet(t, prog, res.GMOD[prog.Main.ID], "g")
	wantSet(t, prog, res.GMOD[prog.Proc("n0").ID], "g", "n0.v")
	wantSet(t, prog, res.GMOD[prog.Proc("n1").ID], "g", "n0.v", "n1.v")
	wantSet(t, prog, res.GMOD[prog.Proc("n2").ID], "g", "n0.v", "n1.v", "n2.v")
	wantSet(t, prog, res.GMOD[prog.Proc("n3").ID], "g", "n0.v", "n1.v", "n2.v")
	// One findgmod run per level 0..3.
	if len(res.GMODStats) != 4 {
		t.Errorf("level runs = %d, want 4", len(res.GMODStats))
	}
}

// TestGMODTheorem2Counts checks the operation-count bound of Theorem
// 2: line-17 unions at most once per edge, line-22 unions at most once
// per node, per level.
func TestGMODTheorem2Counts(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4, 5} {
		prog := workload.Random(workload.DefaultConfig(60, seed))
		res := core.Analyze(prog, core.Mod, core.Options{})
		st := res.GMODStats[0]
		if st.EdgeUnions > prog.NumSites() {
			t.Errorf("seed %d: edge unions %d > E=%d", seed, st.EdgeUnions, prog.NumSites())
		}
		if st.NodeUnions > prog.NumProcs() {
			t.Errorf("seed %d: node unions %d > N=%d", seed, st.NodeUnions, prog.NumProcs())
		}
		if st.Visits != prog.NumProcs() {
			t.Errorf("seed %d: visits %d != N=%d", seed, st.Visits, prog.NumProcs())
		}
	}
}

// TestRMODLinearWork checks Figure 1's bound: boolean steps are
// O(Nβ + Eβ).
func TestRMODLinearWork(t *testing.T) {
	for _, seed := range []int64{10, 11, 12} {
		prog := workload.Random(workload.DefaultConfig(80, seed))
		f := core.ComputeFacts(prog, core.Mod)
		beta := binding.Build(prog)
		r := core.SolveRMOD(beta, f)
		bound := 2*len(beta.Nodes) + beta.G.NumEdges() + 1
		if r.Stats.BoolSteps > bound {
			t.Errorf("seed %d: bool steps %d > 2Nβ+Eβ = %d", seed, r.Stats.BoolSteps, bound)
		}
	}
}

// --- Cross-checks against the independent oracles on random programs.

func checkAgainstOracles(t *testing.T, prog *ir.Program, kind core.Kind, tag string) {
	t.Helper()
	res := core.Analyze(prog, kind, core.Options{})
	prog = res.Prog
	facts := res.Facts

	// RMOD vs reachability oracle.
	oracle := baseline.RMODReachability(res.Beta, facts)
	for n, v := range res.Beta.Nodes {
		if res.RMOD.Node[n] != oracle[n] {
			t.Errorf("%s: RMOD(%s) = %v, oracle %v", tag, v, res.RMOD.Node[n], oracle[n])
		}
	}
	// RMOD vs swift iterative.
	sw := baseline.SwiftDecomposed(prog, facts)
	for _, v := range res.Beta.Nodes {
		if res.RMOD.Of(v) != sw.RMODOf(v) {
			t.Errorf("%s: RMOD(%s) = %v, swift %v", tag, v, res.RMOD.Of(v), sw.RMODOf(v))
		}
	}
	// GMOD vs the per-level reachability oracle.
	gOracle := baseline.GMODReachability(prog, res.IMODPlus, facts)
	for _, p := range prog.Procs {
		if !res.GMOD[p.ID].Equal(gOracle[p.ID]) {
			t.Errorf("%s: GMOD(%s) = %v, oracle %v", tag, p.Name,
				names(prog, res.GMOD[p.ID]), names(prog, gOracle[p.ID]))
		}
	}
	// GMOD vs Banning's direct equation (1) fixpoint.
	ban := baseline.BanningIterative(prog, facts)
	for _, p := range prog.Procs {
		if !res.GMOD[p.ID].Equal(ban.GMOD[p.ID]) {
			t.Errorf("%s: GMOD(%s) = %v, banning %v", tag, p.Name,
				names(prog, res.GMOD[p.ID]), names(prog, ban.GMOD[p.ID]))
		}
	}
	// GMOD vs the swift-style iterative equation (4) fixpoint.
	for _, p := range prog.Procs {
		if !res.GMOD[p.ID].Equal(sw.GMOD[p.ID]) {
			t.Errorf("%s: GMOD(%s) = %v, swift %v", tag, p.Name,
				names(prog, res.GMOD[p.ID]), names(prog, sw.GMOD[p.ID]))
		}
	}
}

func TestAgreementFlatRandom(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cfg := workload.DefaultConfig(40, seed)
		prog := workload.Random(cfg)
		checkAgainstOracles(t, prog, core.Mod, "flat/mod")
		checkAgainstOracles(t, prog, core.Use, "flat/use")
	}
}

func TestAgreementNestedRandom(t *testing.T) {
	for seed := int64(100); seed < 125; seed++ {
		cfg := workload.DefaultConfig(40, seed)
		cfg.MaxDepth = 4
		cfg.NestFraction = 0.6
		prog := workload.Random(cfg)
		// The nesting reachability argument assumes pruned programs.
		checkAgainstOracles(t, prog.Prune(), core.Mod, "nested/mod")
		checkAgainstOracles(t, prog.Prune(), core.Use, "nested/use")
	}
}

func TestAgreementStructuredFamilies(t *testing.T) {
	progs := map[string]*ir.Program{
		"chain":   workload.Chain(30),
		"cycle":   workload.Cycle(17),
		"fanout":  workload.Fanout(12),
		"tower":   workload.NestedTower(5),
		"divide":  workload.DivideConquer(),
		"example": workload.PaperExample(),
	}
	for tag, prog := range progs {
		checkAgainstOracles(t, prog, core.Mod, tag)
		checkAgainstOracles(t, prog, core.Use, tag)
	}
}

// --- End-to-end from MiniPL source.

func TestAnalyzeFromSource(t *testing.T) {
	prog, err := sem.AnalyzeSource(`
program endtoend;
global g, h, unused;
proc setg() begin g := 1 end;
proc seth(ref out)
begin
  out := g;
  call setg()
end;
begin
  call seth(h)
end.
`)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(prog, core.Mod, core.Options{})
	wantSet(t, prog, res.GMOD[prog.Proc("setg").ID], "g")
	wantSet(t, prog, res.GMOD[prog.Proc("seth").ID], "g", "seth.out")
	wantSet(t, prog, res.GMOD[prog.Main.ID], "g", "h")
	use := core.Analyze(prog, core.Use, core.Options{})
	wantSet(t, prog, use.GMOD[prog.Proc("seth").ID], "g")
	// DUSE of main's call: seth reads g.
	wantSet(t, prog, use.DMOD[prog.Sites[len(prog.Sites)-1].ID], "g")
}

func TestAnalyzePruneOption(t *testing.T) {
	b := ir.NewBuilder("p")
	g := b.Global("g")
	dead := b.Proc("dead", nil)
	b.Mod(dead, g)
	prog := b.MustFinish()
	res := core.Analyze(prog, core.Mod, core.Options{Prune: true})
	if res.Prog.Proc("dead") != nil {
		t.Error("Prune option did not prune")
	}
	if !res.GMOD[res.Prog.Main.ID].Empty() {
		t.Error("GMOD(main) nonempty after pruning dead modifier")
	}
	// Without pruning, dead still never pollutes main (no call chain).
	res2 := core.Analyze(prog, core.Mod, core.Options{})
	if !res2.GMOD[res2.Prog.Main.ID].Empty() {
		t.Error("GMOD(main) nonempty without call chain")
	}
}

func TestValFormalDoesNotEscape(t *testing.T) {
	prog, err := sem.AnalyzeSource(`
program valtest;
global g;
proc inc(val n) begin n := n + 1 end;
begin call inc(g) end.
`)
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(prog, core.Mod, core.Options{})
	// Modifying the val formal must not report g as modified.
	if res.GMOD[prog.Main.ID].Has(prog.Var("g").ID) {
		t.Error("val-parameter modification escaped to caller")
	}
	wantSet(t, prog, res.DMOD[prog.Sites[0].ID])
	// But the USE side must see g (argument evaluation).
	use := core.Analyze(prog, core.Use, core.Options{})
	if !use.DMOD[prog.Sites[0].ID].Has(prog.Var("g").ID) {
		t.Error("DUSE missing val-argument evaluation")
	}
}

func TestKindString(t *testing.T) {
	if core.Mod.String() != "MOD" || core.Use.String() != "USE" {
		t.Error("Kind.String wrong")
	}
}

// TestMultiLevelSparseAgrees validates the sparse multi-level solver
// against the straightforward per-level solver and the oracle, on
// nested random programs and the structured families.
func TestMultiLevelSparseAgrees(t *testing.T) {
	progs := []*ir.Program{
		workload.NestedTower(5),
		workload.PaperExample(),
		workload.Chain(10),
	}
	for seed := int64(400); seed < 420; seed++ {
		cfg := workload.DefaultConfig(40, seed)
		cfg.MaxDepth = 4
		cfg.NestFraction = 0.6
		progs = append(progs, workload.Random(cfg).Prune())
	}
	for pi, prog := range progs {
		for _, kind := range []core.Kind{core.Mod, core.Use} {
			facts := core.ComputeFacts(prog, kind)
			beta := binding.Build(prog)
			rmod := core.SolveRMOD(beta, facts)
			imodPlus := core.ComputeIMODPlus(facts, rmod)
			cg := callgraph.Build(prog)
			repeated, _ := core.SolveGMODMultiLevel(cg, facts, imodPlus)
			sparse, _ := core.SolveGMODMultiLevelSparse(cg, facts, imodPlus)
			for _, p := range prog.Procs {
				if !repeated[p.ID].Equal(sparse[p.ID]) {
					t.Errorf("program %d %v: GMOD(%s): repeated %v, sparse %v",
						pi, kind, p.Name,
						names(prog, repeated[p.ID]), names(prog, sparse[p.ID]))
				}
			}
		}
	}
}

// TestMultiLevelSparseDoesLessWork confirms the point of the sparse
// variant: its deeper-level passes visit only the subgraph that can
// matter.
func TestMultiLevelSparseDoesLessWork(t *testing.T) {
	cfg := workload.DefaultConfig(300, 99)
	cfg.MaxDepth = 4
	cfg.NestFraction = 0.3 // most procedures stay at level 0
	prog := workload.Random(cfg).Prune()
	facts := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	rmod := core.SolveRMOD(beta, facts)
	imodPlus := core.ComputeIMODPlus(facts, rmod)
	cg := callgraph.Build(prog)
	_, repStats := core.SolveGMODMultiLevel(cg, facts, imodPlus)
	_, spStats := core.SolveGMODMultiLevelSparse(cg, facts, imodPlus)
	repVisits, spVisits := 0, 0
	for _, s := range repStats {
		repVisits += s.Visits
	}
	for _, s := range spStats {
		spVisits += s.Visits
	}
	if spVisits >= repVisits {
		t.Errorf("sparse visits %d ≥ repeated visits %d", spVisits, repVisits)
	}
}
