package core

import (
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/ir"
)

// Result is the complete solution of one side-effect problem (MOD or
// USE) for a program, with every intermediate the paper names exposed
// for inspection and testing.
type Result struct {
	Prog *ir.Program
	Kind Kind

	Facts *Facts
	Beta  *binding.Beta
	CG    *callgraph.CallGraph

	// RMOD solves the reference-formal-parameter problem (Section 3).
	RMOD *RMOD
	// IMODPlus is equation (5), indexed by procedure ID.
	IMODPlus []*bitset.Set
	// GMOD is the generalized side-effect set (equations 3/4), indexed
	// by procedure ID. For the Use problem this is GUSE, and so on.
	GMOD []*bitset.Set
	// DMOD is equation (2) evaluated at every call site, indexed by
	// call-site ID: the variables that may be affected by executing
	// the call statement, before alias factoring.
	DMOD []*bitset.Set

	// GMODStats holds the findgmod work counters, one entry per
	// nesting level solved.
	GMODStats []GMODStats
}

// Options configures Analyze.
type Options struct {
	// Prune removes procedures unreachable from main before solving.
	// The paper assumes this clean-up (Section 3.3); without it the
	// nesting extension may report effects of never-called nested
	// procedures. Pruning re-indexes the program, so results refer to
	// Result.Prog, not the input.
	Prune bool
}

// Analyze runs the complete pipeline of the paper for one problem
// kind:
//
//	local facts → binding multi-graph → RMOD (Figure 1) →
//	IMOD+ (equation 5) → GMOD (Figure 2 / Section 4 multi-level) →
//	DMOD (equation 2).
//
// Total cost is O(N + E) graph work plus O((N+E)·v) bit-vector work
// for vectors of v words, matching the paper's O(N² + NE) when the
// number of variables grows linearly with the program.
func Analyze(prog *ir.Program, kind Kind, opts Options) *Result {
	if opts.Prune {
		prog = prog.Prune()
	}
	r := &Result{Prog: prog, Kind: kind}
	r.Facts = ComputeFacts(prog, kind)
	r.Beta = binding.Build(prog)
	r.RMOD = SolveRMOD(r.Beta, r.Facts)
	r.IMODPlus = ComputeIMODPlus(r.Facts, r.RMOD)
	r.CG = callgraph.Build(prog)
	r.GMOD, r.GMODStats = SolveGMODMultiLevel(r.CG, r.Facts, r.IMODPlus)
	r.DMOD = ComputeDMOD(prog, r.RMOD, r.GMOD, r.Facts)
	return r
}

// ComputeDMOD evaluates equation (2) at every call site:
//
//	DMOD(s) = LMOD(s) ∪ ∪_{e=(p,q)∈s} b_e(GMOD(q))
//
// where for a call statement the local part LMOD(s) is empty for the
// Mod problem and, for the Use problem, consists of the variables the
// caller reads to evaluate the arguments (val-argument expressions and
// subscripts of element/section actuals — call-by-value evaluates
// eagerly). The projection b_e keeps every non-local of the callee
// under its own name (globals and variables of enclosing scopes) and
// maps formals in RMOD(q) to the actual variables bound to them.
func ComputeDMOD(prog *ir.Program, rmod *RMOD, gmod []*bitset.Set, facts *Facts) []*bitset.Set {
	out := make([]*bitset.Set, prog.NumSites())
	for _, cs := range prog.Sites {
		d := bitset.New(prog.NumVars())
		q := cs.Callee
		// b_e over non-locals: GMOD(q) ∖ LOCAL(q).
		d.UnionDiffWith(gmod[q.ID], facts.Local[q.ID])
		for i, a := range cs.Args {
			if facts.Kind == Use {
				for _, u := range a.Uses {
					d.Add(u.ID)
				}
			}
			if a.Mode == ir.FormalRef && a.Var != nil && rmod.Of(q.Formals[i]) {
				d.Add(a.Var.ID)
			}
		}
		out[cs.ID] = d
	}
	return out
}
