package core

import (
	"context"
	"fmt"
	"strings"

	"sideeffect/internal/arena"
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/faultinject"
	"sideeffect/internal/ir"
	"sideeffect/internal/prof"
)

// Result is the complete solution of one side-effect problem (MOD or
// USE) for a program, with every intermediate the paper names exposed
// for inspection and testing.
type Result struct {
	Prog *ir.Program
	Kind Kind

	Facts *Facts
	Beta  *binding.Beta
	CG    *callgraph.CallGraph

	// RMOD solves the reference-formal-parameter problem (Section 3).
	RMOD *RMOD
	// IMODPlus is equation (5), indexed by procedure ID.
	IMODPlus []*bitset.Set
	// GMOD is the generalized side-effect set (equations 3/4), indexed
	// by procedure ID. For the Use problem this is GUSE, and so on.
	GMOD []*bitset.Set
	// DMOD is equation (2) evaluated at every call site, indexed by
	// call-site ID: the variables that may be affected by executing
	// the call statement, before alias factoring.
	DMOD []*bitset.Set

	// Arena backs the result's bit vectors under the default
	// allocation policy (nil under AllocHybrid/AllocDense). It lives
	// and dies with the Result; downstream passes whose output shares
	// the Result's lifetime (alias factoring) may draw from it too.
	Arena *arena.Arena

	// GMODStats holds the findgmod work counters, one entry per
	// nesting level solved.
	GMODStats []GMODStats
}

// Options configures Analyze.
type Options struct {
	// Prune removes procedures unreachable from main before solving.
	// The paper assumes this clean-up (Section 3.3); without it the
	// nesting extension may report effects of never-called nested
	// procedures. Pruning re-indexes the program, so results refer to
	// Result.Prog, not the input.
	Prune bool
	// Alloc selects the allocation discipline; the zero value
	// (AllocAuto) is the arena+hybrid production default.
	Alloc AllocPolicy
	// Prof, when non-nil, accumulates per-stage wall time (and
	// optionally allocation counters) under names like "mod.gmod".
	Prof *prof.Profile
	// Structure, when non-nil and built for the program Analyze ends up
	// solving (after any pruning), supplies the kind-independent
	// skeleton so a MOD+USE pair shares one graph construction. A nil
	// or mismatched Structure is ignored and the skeleton is built
	// internally.
	Structure *Structure
	// DisableCondensation forces the per-node Figure-2 GMOD search
	// instead of the SCC-condensed storage layer. The solution is
	// identical; this exists as the differential baseline for tests
	// and experiments.
	DisableCondensation bool
	// Faults, when non-nil, injects deterministic faults at every
	// stage boundary (sites "core.mod.gmod", "core.use.rmod", …) for
	// chaos testing. Injected panics propagate after the arena is
	// poisoned; injected errors abort the analysis through the same
	// path as cancellation. Production runs leave this nil.
	Faults *faultinject.Injector
}

// Analyze runs the complete pipeline of the paper for one problem
// kind:
//
//	local facts → binding multi-graph → RMOD (Figure 1) →
//	IMOD+ (equation 5) → GMOD (Figure 2 / Section 4 multi-level) →
//	DMOD (equation 2).
//
// Total cost is O(N + E) graph work plus O((N+E)·v) bit-vector work
// for vectors of v words, matching the paper's O(N² + NE) when the
// number of variables grows linearly with the program.
func Analyze(prog *ir.Program, kind Kind, opts Options) *Result {
	r, err := AnalyzeCtx(context.Background(), prog, kind, opts)
	if err != nil {
		// Unreachable without a cancellable context or a fault
		// injector; callers that supply either use AnalyzeCtx.
		panic(err)
	}
	return r
}

// AnalyzeCtx is Analyze with deadline propagation and fault isolation.
// The context is consulted at every stage boundary (the stages are the
// cost units of the paper's complexity argument, so a deadline is
// honored within one linear sub-pass): a cancelled analysis stops,
// returns its arena to the process-wide pool — no set has escaped yet,
// so the slabs are clean — and reports ctx.Err(). Injected faults
// (Options.Faults) surface the same way, except injected panics, which
// propagate to the caller after the arena is poisoned so a recovery
// layer can never recycle slabs whose carve state is unknown.
func AnalyzeCtx(ctx context.Context, prog *ir.Program, kind Kind, opts Options) (_ *Result, err error) {
	pfx := strings.ToLower(kind.String()) + "."
	p := opts.Prof
	al := setAlloc{}
	// Arena-safe recovery: a panic anywhere in the pipeline (injected
	// or genuine) poisons the checked-out arena before unwinding. The
	// panic itself still propagates — converting it to an error is the
	// public layer's job — but the pool is protected no matter who
	// recovers above us.
	defer func() {
		if rec := recover(); rec != nil {
			al.ar.Poison()
			// Route the poisoned arena through Put so the pool's
			// accounting closes (Gets = Puts + PoisonDropped): Put
			// refuses poisoned arenas, it only records the drop.
			arena.Put(al.ar)
			panic(rec)
		}
	}()
	// step guards one stage: fault point first (so chaos runs can hit
	// a stage even when the context is healthy), then the deadline.
	step := func(stage string, f func()) bool {
		if err == nil {
			err = opts.Faults.At("core." + pfx + stage)
		}
		if err == nil && ctx != nil {
			err = ctx.Err()
		}
		if err != nil {
			return false
		}
		p.Do(pfx+stage, f)
		return true
	}
	if opts.Prune {
		if !step("prune", func() { prog = prog.Prune() }) {
			return nil, fmt.Errorf("core: %s analysis aborted: %w", pfx[:len(pfx)-1], err)
		}
	}
	al = newSetAlloc(opts.Alloc, prog.NumVars())
	r := &Result{Prog: prog, Kind: kind, Arena: al.ar}
	st := opts.Structure
	ok := true
	if st == nil || st.Prog != prog {
		st = &Structure{Prog: prog}
		ok = ok && step("beta", func() { st.Beta = binding.Build(prog); st.BetaSCC = st.Beta.G.SCC() })
		ok = ok && step("callgraph", func() { st.CG = callgraph.Build(prog); st.fillLevels() })
	}
	r.Beta, r.CG = st.Beta, st.CG
	ok = ok && step("facts", func() { r.Facts = computeFacts(prog, kind, al) })
	ok = ok && step("rmod", func() { r.RMOD = solveRMOD(st.Beta, r.Facts, st.BetaSCC) })
	ok = ok && step("imod+", func() { r.IMODPlus = computeIMODPlus(r.Facts, r.RMOD, al) })
	ok = ok && step("gmod", func() {
		r.GMOD, r.GMODStats = solveGMODMultiLevel(st, r.Facts, r.IMODPlus, al, opts.DisableCondensation)
	})
	ok = ok && step("dmod", func() { r.DMOD = computeDMOD(prog, r.RMOD, r.GMOD, r.Facts, al) })
	if !ok {
		// The aborted result never escaped: every set carved so far is
		// private to this call, so the arena can recycle immediately.
		if al.ar != nil {
			r.Arena = nil
			arena.Put(al.ar)
		}
		return nil, fmt.Errorf("core: %s analysis aborted: %w", pfx[:len(pfx)-1], err)
	}
	return r, nil
}

// Release returns the Result's arena to the process-wide pool for
// reuse by a later Analyze. It is the batch-loop counterpart of simply
// dropping the Result: callers that analyze many programs in sequence
// and fully consume each Result before the next can Release instead,
// which recycles the slab storage without waiting for (or paying) a
// collection. After Release every set reachable from the Result is
// dead — the receiver's set fields are nilled to fail fast. Release on
// a Result without an arena (AllocHybrid/AllocDense) is a no-op, so
// callers need not branch on policy. Not safe to call concurrently
// with reads of the same Result.
func (r *Result) Release() {
	if r == nil || r.Arena == nil {
		return
	}
	ar := r.Arena
	r.Arena = nil
	r.Facts = nil
	r.IMODPlus = nil
	r.GMOD = nil
	r.DMOD = nil
	arena.Put(ar)
}

// ComputeDMOD evaluates equation (2) at every call site:
//
//	DMOD(s) = LMOD(s) ∪ ∪_{e=(p,q)∈s} b_e(GMOD(q))
//
// where for a call statement the local part LMOD(s) is empty for the
// Mod problem and, for the Use problem, consists of the variables the
// caller reads to evaluate the arguments (val-argument expressions and
// subscripts of element/section actuals — call-by-value evaluates
// eagerly). The projection b_e keeps every non-local of the callee
// under its own name (globals and variables of enclosing scopes) and
// maps formals in RMOD(q) to the actual variables bound to them.
func ComputeDMOD(prog *ir.Program, rmod *RMOD, gmod []*bitset.Set, facts *Facts) []*bitset.Set {
	return computeDMOD(prog, rmod, gmod, facts, newSetAlloc(AllocHybrid, prog.NumVars()))
}

// computeDMOD is ComputeDMOD with the per-site rows drawn from al.
func computeDMOD(prog *ir.Program, rmod *RMOD, gmod []*bitset.Set, facts *Facts, al setAlloc) []*bitset.Set {
	out := make([]*bitset.Set, prog.NumSites())
	for _, cs := range prog.Sites {
		d := al.resultDense()
		q := cs.Callee
		// b_e over non-locals: GMOD(q) ∖ LOCAL(q).
		d.UnionDiffWith(gmod[q.ID], facts.Local[q.ID])
		for i, a := range cs.Args {
			if facts.Kind == Use {
				for _, u := range a.Uses {
					d.Add(u.ID)
				}
			}
			if a.Mode == ir.FormalRef && a.Var != nil && rmod.Of(q.Formals[i]) {
				d.Add(a.Var.ID)
			}
		}
		out[cs.ID] = d
	}
	return out
}
