//go:build !race

package core_test

// raceEnabled reports whether the race detector instruments this
// build. Allocation-count assertions are skipped under it: the
// instrumentation itself allocates, and sync.Pool intentionally drops
// entries at random to expose unsynchronized reuse.
const raceEnabled = false
