package core

import (
	"context"
	"errors"
	"testing"

	"sideeffect/internal/arena"
	"sideeffect/internal/faultinject"
	"sideeffect/internal/workload"
)

// TestAnalyzeCtxCancelReturnsArena proves the cancellation contract: a
// cancelled analysis reports ctx.Err() and its arena goes straight
// back to the pool (the sets never escaped), so cancelled requests
// cannot leak slab storage.
func TestAnalyzeCtxCancelReturnsArena(t *testing.T) {
	prog := workload.Random(workload.DefaultConfig(20, 1))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := arena.Stats()
	r, err := AnalyzeCtx(ctx, prog, Mod, Options{})
	if r != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled AnalyzeCtx = %v, %v", r, err)
	}
	after := arena.Stats()
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("cancelled analysis leaked its arena: %d gets, %d puts", gets, puts)
	}
}

// TestAnalyzeCtxInjectedErrorAborts drives an error-only injector at
// rate 1: the very first stage boundary must abort cleanly with the
// injected error and no pooled-state leak.
func TestAnalyzeCtxInjectedErrorAborts(t *testing.T) {
	prog := workload.Random(workload.DefaultConfig(10, 2))
	inj := faultinject.New(faultinject.Config{Rate: 1, Seed: 1, Kinds: []faultinject.Kind{faultinject.KindError}})
	before := arena.Stats()
	r, err := AnalyzeCtx(context.Background(), prog, Use, Options{Faults: inj})
	if r != nil || err == nil {
		t.Fatalf("injected error not reported: %v, %v", r, err)
	}
	var ie *faultinject.InjectedError
	if !errors.As(err, &ie) {
		t.Fatalf("error %v does not unwrap to InjectedError", err)
	}
	after := arena.Stats()
	if gets, puts := after.Gets-before.Gets, after.Puts-before.Puts; gets != puts {
		t.Fatalf("aborted analysis leaked its arena: %d gets, %d puts", gets, puts)
	}
}

// TestAnalyzeCtxPanicPoisonsArena proves the arena-safe recovery path:
// an injected panic propagates to the caller, and the arena that was
// checked out for the panicking analysis is poisoned so Put refuses to
// recycle it.
func TestAnalyzeCtxPanicPoisonsArena(t *testing.T) {
	prog := workload.Random(workload.DefaultConfig(10, 3))
	inj := faultinject.New(faultinject.Config{Rate: 1, Seed: 1, Kinds: []faultinject.Kind{faultinject.KindPanic}})
	before := arena.Stats()
	var recovered any
	func() {
		defer func() { recovered = recover() }()
		_, _ = AnalyzeCtx(context.Background(), prog, Mod, Options{Faults: inj})
	}()
	if recovered == nil {
		t.Fatal("injected panic did not propagate")
	}
	if _, ok := recovered.(*faultinject.InjectedPanic); !ok {
		t.Fatalf("recovered %T, want *faultinject.InjectedPanic", recovered)
	}
	after := arena.Stats()
	if after.Poisoned <= before.Poisoned {
		t.Fatal("panicking analysis did not poison its arena")
	}
	if after.PoisonedReuse != 0 {
		t.Fatal("a poisoned arena re-entered circulation")
	}
}

// TestAnalyzeCtxIdentity: the guarded pipeline with a healthy context
// and no injector must produce results byte-identical to Analyze.
func TestAnalyzeCtxIdentity(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		prog := workload.Random(workload.DefaultConfig(15, 100+seed))
		want := Analyze(prog, Mod, Options{})
		got, err := AnalyzeCtx(context.Background(), prog, Mod, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, p := range prog.Procs {
			if !got.GMOD[p.ID].Equal(want.GMOD[p.ID]) {
				t.Fatalf("seed %d: GMOD(%s) differs under AnalyzeCtx", seed, p.Name)
			}
		}
		got.Release()
		want.Release()
	}
}
