package core_test

import (
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/workload"
)

// TestVisibilityInvariants checks the structural well-formedness the
// projections b_e guarantee, on random flat and nested programs:
//
//   - GMOD(p) ⊆ Visible(p): a summary never names a variable the
//     procedure cannot see (deep locals are stripped by the per-edge
//     LOCAL filters and the nesting folds);
//   - DMOD(s) ⊆ Visible(caller(s)): call-site answers are expressed in
//     the caller's name space;
//   - IMOD+(p) ⊆ Visible(p).
func TestVisibilityInvariants(t *testing.T) {
	check := func(prog *ir.Program, kind core.Kind, tag string) {
		res := core.Analyze(prog, kind, core.Options{})
		prog = res.Prog
		for _, p := range prog.Procs {
			for _, set := range []struct {
				name string
				ids  []int
			}{
				{"GMOD", res.GMOD[p.ID].Elems()},
				{"IMOD+", res.IMODPlus[p.ID].Elems()},
			} {
				for _, id := range set.ids {
					if !p.Visible(prog.Vars[id]) {
						t.Errorf("%s: %s(%s) contains invisible %s",
							tag, set.name, p.Name, prog.Vars[id])
					}
				}
			}
		}
		for _, cs := range prog.Sites {
			for _, id := range res.DMOD[cs.ID].Elems() {
				if !cs.Caller.Visible(prog.Vars[id]) {
					t.Errorf("%s: DMOD(%s) contains invisible %s", tag, cs, prog.Vars[id])
				}
			}
		}
	}
	for seed := int64(500); seed < 510; seed++ {
		cfg := workload.DefaultConfig(30, seed)
		check(workload.Random(cfg), core.Mod, "flat/mod")
		check(workload.Random(cfg), core.Use, "flat/use")
		cfg.MaxDepth = 4
		cfg.NestFraction = 0.6
		check(workload.Random(cfg).Prune(), core.Mod, "nested/mod")
		check(workload.Random(cfg).Prune(), core.Use, "nested/use")
	}
	check(workload.NestedTower(6), core.Mod, "tower")
}

// TestMonotonicity checks that growing the local facts only grows the
// solution — the property the incremental updater rests on.
func TestMonotonicity(t *testing.T) {
	for seed := int64(600); seed < 606; seed++ {
		prog := workload.Random(workload.DefaultConfig(25, seed))
		before := core.Analyze(prog, core.Mod, core.Options{})
		// Add a fact: the first procedure with a visible global
		// modifies it.
		var target *ir.Procedure
		var v *ir.Variable
		for _, p := range prog.Procs {
			for _, g := range prog.Globals() {
				if !p.IMOD.Has(g.ID) {
					target, v = p, g
					break
				}
			}
			if target != nil {
				break
			}
		}
		if target == nil {
			continue
		}
		target.IMOD.Add(v.ID)
		after := core.Analyze(prog, core.Mod, core.Options{})
		for _, p := range prog.Procs {
			if !before.GMOD[p.ID].SubsetOf(after.GMOD[p.ID]) {
				t.Errorf("seed %d: GMOD(%s) shrank after adding a fact", seed, p.Name)
			}
		}
		for _, cs := range prog.Sites {
			if !before.DMOD[cs.ID].SubsetOf(after.DMOD[cs.ID]) {
				t.Errorf("seed %d: DMOD(%s) shrank after adding a fact", seed, cs)
			}
		}
	}
}

// TestGMODContainsIMODPlus pins GMOD(p) ⊇ IMOD+(p) ⊇ I(p).
func TestGMODContainsIMODPlus(t *testing.T) {
	for seed := int64(700); seed < 705; seed++ {
		cfg := workload.DefaultConfig(30, seed)
		cfg.MaxDepth = 2
		cfg.NestFraction = 0.4
		res := core.Analyze(workload.Random(cfg), core.Mod, core.Options{})
		for _, p := range res.Prog.Procs {
			if !res.Facts.I[p.ID].SubsetOf(res.IMODPlus[p.ID]) {
				t.Errorf("seed %d: I(%s) ⊄ IMOD+", seed, p.Name)
			}
			if !res.IMODPlus[p.ID].SubsetOf(res.GMOD[p.ID]) {
				t.Errorf("seed %d: IMOD+(%s) ⊄ GMOD", seed, p.Name)
			}
		}
	}
}
