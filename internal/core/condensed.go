package core

import (
	"sync"

	"sideeffect/internal/bitset"
	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// This file implements the SCC-condensed findgmod solver: the storage
// and propagation layer is organized around the condensation of the
// call multi-graph instead of its nodes. The paper's Theorem 1 is the
// licence — every member of a strongly-connected component reaches the
// same set of variables that outlive the component — so one escape set
// per component suffices, and the per-node solution is recovered as
//
//	GMOD(u) = IMOD+(u) ∪ Esc(comp(u)).
//
// Esc obeys a recurrence over the condensation DAG (components are
// numbered in reverse topological order by Tarjan's algorithm, so a
// single increasing sweep sees every callee component before its
// callers):
//
//	Esc(C) = ∪_{w∈C} ( seed(w) ∖ LOCAL(w) )  ∪  ∪_{(w,q) leaving C} Esc(comp(q))
//
// The cross-edge term carries no LOCAL mask. That is sound exactly
// when no escape set can meet a callee's LOCAL filter, which holds for
// every pass the multi-level driver runs: a level-l pass seeds only
// scope-class-l variables while every callee on a level-l edge declares
// its names at class ≥ l+1, and a flat full-seed pass escapes only
// globals (guaranteed by ir.Program.Validate's visibility check; the
// solver still verifies it element-by-element while folding seeds and
// reports failure so the caller can fall back to the per-node search).
//
// Storage is the point. Esc(C) always contains Esc(C') for every
// successor C', so a component aliases its richest successor as a base
// and records only its own additions in a small sparse delta:
//
//	Esc(C) = delta(C) ∪ Esc(base(C))        (chain, capped depth)
//
// Total storage is O(Σ|delta|) — the fact deltas — plus one
// materialized dense row per chain that hits the depth cap or blows
// the per-component membership budget. On call graphs with a dominant
// component (any generated or real program of interesting size) almost
// every component resolves to "base plus a handful of bits", which is
// what GMODStats.SharedRowHits/CondensedRows make observable.

// maxChainDepth caps base-chain length. A membership probe walks the
// chain, so this bounds probe cost; crossing it materializes the base
// into a dense root row (CondensedRows) and restarts the chain there.
const maxChainDepth = 48

// escTable is the condensed escape-set store of one findgmod pass.
type escTable struct {
	scc *graph.SCCInfo
	// base[c] is the component whose escape set c extends; -1 for a
	// chain root.
	base []int32
	// delta[c] holds c's own additions over base[c] (nil = none).
	delta []*bitset.Set
	// row[c] is the materialized full escape set of a chain root
	// (nil unless base[c] == -1 and the root is non-empty).
	row []*bitset.Set
	// count[c] = |Esc(c)|; depth[c] = chain length to the root.
	count []int32
	depth []int32
}

// has reports whether e ∈ Esc(c) by walking c's base chain.
func (t *escTable) has(c int, e int) bool {
	for x := c; x >= 0; x = int(t.base[x]) {
		if d := t.delta[x]; d != nil && d.Has(e) {
			return true
		}
		if r := t.row[x]; r != nil {
			return r.Has(e)
		}
	}
	return false
}

// escInto unions Esc(c) into dst and returns the number of elements
// newly added.
func (t *escTable) escInto(c int, dst *bitset.Set) int {
	added := 0
	for x := c; x >= 0; x = int(t.base[x]) {
		if d := t.delta[x]; d != nil {
			added += dst.UnionInPlaceCount(d)
		}
		if r := t.row[x]; r != nil {
			added += dst.UnionInPlaceCount(r)
			break
		}
	}
	return added
}

// escIntoMasked unions Esc(c) ∖ mask into dst, reporting change.
func (t *escTable) escIntoMasked(c int, dst, mask *bitset.Set) bool {
	changed := false
	for x := c; x >= 0; x = int(t.base[x]) {
		if d := t.delta[x]; d != nil {
			changed = dst.UnionDiffWith(d, mask) || changed
		}
		if r := t.row[x]; r != nil {
			changed = dst.UnionDiffWith(r, mask) || changed
			break
		}
	}
	return changed
}

// materialize collapses c's chain into a dense root row so later
// probes and bases see depth 0.
func (t *escTable) materialize(c int, nvars int, stats *GMODStats) {
	dst := bitset.New(nvars)
	t.escInto(c, dst)
	t.row[c] = dst
	t.base[c] = -1
	t.delta[c] = nil
	t.depth[c] = 0
	stats.CondensedRows++
}

// addElem inserts e into Esc(c) if absent; the caller has already
// established e ∉ Esc(base chain).
func (t *escTable) addElem(c int, e int) {
	if t.row[c] != nil && t.base[c] < 0 && t.delta[c] == nil {
		t.row[c].Add(e)
		t.count[c]++
		return
	}
	if t.delta[c] == nil {
		t.delta[c] = bitset.NewSparse()
	}
	t.delta[c].Add(e)
	t.count[c]++
}

// condensedState is the pooled scratch of one condensed pass.
type condensedState struct {
	mark      []int32 // successor dedup stamps, indexed by component
	chainMark []int32 // base-chain stamps for shared-suffix skipping
	succs     []int32 // distinct cross-successor components of one comp
}

var condensedStates = sync.Pool{New: func() any { return new(condensedState) }}

func (cs *condensedState) ensure(nc int) {
	if cap(cs.mark) < nc {
		cs.mark = make([]int32, nc)
		cs.chainMark = make([]int32, nc)
	}
	cs.mark = cs.mark[:nc]
	cs.chainMark = cs.chainMark[:nc]
	for i := range cs.mark {
		cs.mark[i] = -1
		cs.chainMark[i] = -1
	}
	cs.succs = cs.succs[:0]
}

// solveCondensed runs one condensed findgmod pass over g. seeds and
// locals are indexed by node; vars is consulted only when checkScope is
// set (the flat full-seed pass), to verify that every escaping seed
// element is a global — the premise that lets cross-edge flows skip
// their LOCAL masks. The boolean result is false when the premise
// fails, in which case the table is meaningless and the caller must
// fall back to the per-node solver.
func solveCondensed(g *graph.Graph, scc *graph.SCCInfo, seeds, locals []*bitset.Set, vars []*ir.Variable, checkScope bool) (*escTable, GMODStats, bool) {
	nc := scc.NumComponents()
	nvars := len(vars)
	t := &escTable{
		scc:   scc,
		base:  make([]int32, nc),
		delta: make([]*bitset.Set, nc),
		row:   make([]*bitset.Set, nc),
		count: make([]int32, nc),
		depth: make([]int32, nc),
	}
	st := condensedStates.Get().(*condensedState)
	st.ensure(nc)
	var stats GMODStats
	stats.Components = nc

	// A probe budget per component: once chain walks for membership
	// tests cost more than dense-row work would, materialize and finish
	// with word-parallel unions instead.
	budget := nvars/8 + 128

	ok := true
	for c := 0; c < nc && ok; c++ {
		t.base[c] = -1
		members := scc.Members[c]

		// Distinct cross-successor components (deduped with mark).
		st.succs = st.succs[:0]
		for _, w := range members {
			for _, e := range g.Succs(w) {
				cq := scc.Comp[e.To]
				if cq == c || st.mark[cq] == int32(c) {
					continue
				}
				st.mark[cq] = int32(c)
				st.succs = append(st.succs, int32(cq))
				stats.EdgeUnions++
			}
		}

		// Base: the successor with the largest escape set.
		if len(st.succs) > 0 {
			b := int(st.succs[0])
			for _, s := range st.succs[1:] {
				if t.count[s] > t.count[b] {
					b = int(s)
				}
			}
			if t.depth[b]+1 > maxChainDepth {
				t.materialize(b, nvars, &stats)
			}
			t.base[c] = int32(b)
			t.depth[c] = t.depth[b] + 1
			t.count[c] = t.count[b]
		}

		// Stamp c's chain so shared suffixes of other successors'
		// chains are skipped instead of re-probed.
		for x := c; x >= 0; x = int(t.base[x]) {
			st.chainMark[x] = int32(c)
		}

		// Fold the remaining successors: walk each chain down to the
		// first stamped component (everything below is already in the
		// base) and probe only the unshared deltas.
		work := 0
		for _, s32 := range st.succs {
			s := int(s32)
			if s == int(t.base[c]) || t.row[c] != nil {
				continue
			}
			for x := s; x >= 0 && st.chainMark[x] != int32(c); x = int(t.base[x]) {
				st.chainMark[x] = int32(c)
				probe := func(e int) {
					if work++; !t.has(c, e) {
						t.addElem(c, e)
					}
				}
				if d := t.delta[x]; d != nil {
					d.ForEach(probe)
				}
				if r := t.row[x]; r != nil {
					r.ForEach(probe)
				}
				if work > budget {
					break
				}
			}
			if work > budget {
				// Chain probing is losing to dense arithmetic:
				// materialize c and absorb the rest word-parallel.
				t.materialize(c, nvars, &stats)
				row := t.row[c]
				for _, rest := range st.succs {
					if int(rest) != c {
						t.count[c] += int32(t.escInto(int(rest), row))
					}
				}
				break
			}
		}

		// Member seeds: seed(w) ∖ LOCAL(w) joins the escape set. For
		// the flat pass this is also where the scope premise is
		// checked — an escaping non-global breaks the mask-free
		// cross-edge argument.
		for _, w := range members {
			stats.Visits++
			stats.NodeUnions++
			seed, local := seeds[w], locals[w]
			if seed == nil {
				continue
			}
			seed.ForEach(func(e int) {
				if !ok || (local != nil && local.Has(e)) {
					return
				}
				if checkScope && !vars[e].IsGlobal() {
					ok = false
					return
				}
				if !t.has(c, e) {
					t.addElem(c, e)
				}
			})
		}

		if t.base[c] >= 0 && (t.delta[c] == nil || t.delta[c].Empty()) {
			stats.SharedRowHits++
		}
	}
	condensedStates.Put(st)
	if !ok {
		return nil, stats, false
	}
	return t, stats, true
}
