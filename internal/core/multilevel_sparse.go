package core

import (
	"sort"

	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// SolveGMODMultiLevelSparse computes the same solution as
// SolveGMODMultiLevel but restricts each level's problem to the
// subgraph that can matter for it.
//
// Static visibility implies that a procedure at lexical level < i-1
// can neither see a class-i variable nor sit on a level-≥i call chain
// (an edge into a level-≥i callee forces the caller to level ≥ i-1).
// So problem i only needs the procedures at level ≥ i-1 and the call
// edges whose callee sits at level ≥ i. Sorting procedures and edges
// by level once makes each level's node and edge set a prefix, so the
// total work is O(Σ_i (N_i + E_i)) — on realistic programs, where few
// procedures are deeply nested, this is close to the O(E_C + d_P·N_C)
// of the paper's sketched lowlink-vector refinement while keeping the
// correctness argument of the per-level formulation (see DESIGN.md).
func SolveGMODMultiLevelSparse(cg *callgraph.CallGraph, facts *Facts, imodPlus []*bitset.Set) ([]*bitset.Set, []GMODStats) {
	prog := cg.Prog
	dP := prog.MaxLevel()

	result := make([]*bitset.Set, prog.NumProcs())
	for i := range result {
		result[i] = imodPlus[i].Clone()
	}
	// Level 0 is the full graph.
	{
		seeds := restrictSeeds(prog, imodPlus, 0)
		run, stats := FindGMODScratch(cg.G, seeds, facts.Local, prog.Main.ID)
		for i := range result {
			result[i].UnionWith(run.Sets[i])
			bitset.PutScratch(seeds[i])
		}
		run.Release()
		if dP == 0 {
			return result, []GMODStats{stats}
		}
		allStats := []GMODStats{stats}
		// Procedures sorted by descending level: problem i uses the
		// prefix with Level ≥ i-1.
		procs := make([]*ir.Procedure, len(prog.Procs))
		copy(procs, prog.Procs)
		sort.SliceStable(procs, func(a, b int) bool { return procs[a].Level > procs[b].Level })
		compact := make([]int, prog.NumProcs()) // proc ID → compact index
		for ci, p := range procs {
			compact[p.ID] = ci
		}
		// Call sites sorted by descending callee level: problem i uses
		// the prefix with Callee.Level ≥ i.
		sites := make([]*ir.CallSite, len(prog.Sites))
		copy(sites, prog.Sites)
		sort.SliceStable(sites, func(a, b int) bool { return sites[a].Callee.Level > sites[b].Callee.Level })

		for lvl := 1; lvl <= dP; lvl++ {
			// Node prefix: levels ≥ lvl-1.
			nNodes := 0
			for nNodes < len(procs) && procs[nNodes].Level >= lvl-1 {
				nNodes++
			}
			var list []graph.Edge
			for _, cs := range sites {
				if cs.Callee.Level < lvl {
					break
				}
				list = append(list, graph.Edge{From: compact[cs.Caller.ID], To: compact[cs.Callee.ID]})
			}
			gi := graph.FromEdgeList(nNodes, list)
			seeds := make([]*bitset.Set, nNodes)
			locals := make([]*bitset.Set, nNodes)
			class := classSet(prog, lvl)
			for ci := 0; ci < nNodes; ci++ {
				p := procs[ci]
				s := bitset.GetScratch(0).CopyFrom(imodPlus[p.ID])
				s.IntersectWith(class)
				seeds[ci] = s
				locals[ci] = facts.Local[p.ID]
			}
			run, stats := FindGMODScratch(gi, seeds, locals)
			allStats = append(allStats, stats)
			for ci := 0; ci < nNodes; ci++ {
				result[procs[ci].ID].UnionWith(run.Sets[ci])
				bitset.PutScratch(seeds[ci])
			}
			run.Release()
			bitset.PutScratch(class)
		}
		return result, allStats
	}
}

// restrictSeeds intersects every procedure's seed with the class-lvl
// variable set.
func restrictSeeds(prog *ir.Program, imodPlus []*bitset.Set, lvl int) []*bitset.Set {
	class := classSet(prog, lvl)
	out := make([]*bitset.Set, prog.NumProcs())
	for _, p := range prog.Procs {
		s := bitset.GetScratch(0).CopyFrom(imodPlus[p.ID])
		s.IntersectWith(class)
		out[p.ID] = s
	}
	bitset.PutScratch(class)
	return out
}

// classSet returns the variables of scope class lvl as a pool-owned
// scratch set; callers release it with bitset.PutScratch.
func classSet(prog *ir.Program, lvl int) *bitset.Set {
	s := bitset.GetScratch(prog.NumVars())
	for _, v := range prog.Vars {
		if v.ScopeLevel() == lvl {
			s.Add(v.ID)
		}
	}
	return s
}
