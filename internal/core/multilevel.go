package core

import (
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/graph"
)

// SolveGMODMultiLevel solves the global side-effect problem for
// languages with nested procedure declarations (Section 4's
// extension) by solving the family of problems 0..d_P, where problem i
// is defined on the call graph with every edge calling a procedure at
// nesting level < i removed.
//
// Rationale: a variable of scope class i (declared in a procedure at
// level i-1, or a program global for i = 0) survives only as long as
// its declaring activation; a call chain that invokes a procedure at a
// level shallower than i necessarily leaves the static scope of the
// variable and can only reach fresh activations of it. Static
// visibility guarantees the converse: any chain that stays at levels
// ≥ i and modifies the variable does so in the activation the chain
// started from.
//
// This is the "simple device" variant the paper describes first: it
// repeats findgmod once per level, O(d_P·(E_C + N_C)) bit-vector
// steps. (The paper further sketches a single-pass refinement with a
// vector of lowlink values reaching O(E_C + d_P·N_C); since d_P is a
// small constant in practice both are linear, and the repeated form is
// the one whose correctness follows directly from Theorem 1.)
//
// For d_P = 0 the result coincides with a single FindGMOD run.
func SolveGMODMultiLevel(cg *callgraph.CallGraph, facts *Facts, imodPlus []*bitset.Set) ([]*bitset.Set, []GMODStats) {
	prog := cg.Prog
	dP := prog.MaxLevel()

	// Every procedure's own direct and ref-parameter effects are in
	// its GMOD regardless of levels.
	result := make([]*bitset.Set, prog.NumProcs())
	for i := range result {
		result[i] = imodPlus[i].Clone()
	}
	if dP == 0 {
		gmod, stats := FindGMODScratch(cg.G, imodPlus, facts.Local, prog.Main.ID)
		for i := range result {
			result[i].UnionWith(gmod[i])
			bitset.PutScratch(gmod[i])
		}
		return result, []GMODStats{stats}
	}

	// classVars[i] is the set of variables of scope class i.
	classVars := make([]*bitset.Set, dP+1)
	for i := range classVars {
		classVars[i] = bitset.GetScratch(prog.NumVars())
	}
	for _, v := range prog.Vars {
		if lvl := v.ScopeLevel(); lvl <= dP {
			classVars[lvl].Add(v.ID)
		}
		// Variables of class d_P+1 are locals of the deepest
		// procedures; no call chain can modify them on behalf of a
		// caller, and they are covered by the IMOD+ base above.
	}

	var allStats []GMODStats
	for lvl := 0; lvl <= dP; lvl++ {
		// Problem lvl: drop edges that invoke a procedure declared at
		// a level shallower than lvl.
		gi := graph.New(prog.NumProcs())
		for _, cs := range prog.Sites {
			if cs.Callee.Level >= lvl {
				gi.AddEdge(cs.Caller.ID, cs.Callee.ID)
			}
		}
		seeds := make([]*bitset.Set, prog.NumProcs())
		for _, p := range prog.Procs {
			s := bitset.GetScratch(0).CopyFrom(imodPlus[p.ID])
			s.IntersectWith(classVars[lvl])
			seeds[p.ID] = s
		}
		gmod, stats := FindGMODScratch(gi, seeds, facts.Local, prog.Main.ID)
		allStats = append(allStats, stats)
		for i := range result {
			result[i].UnionWith(gmod[i])
			bitset.PutScratch(gmod[i])
			bitset.PutScratch(seeds[i])
		}
	}
	for _, s := range classVars {
		bitset.PutScratch(s)
	}
	return result, allStats
}
