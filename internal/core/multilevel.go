package core

import (
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
)

// SolveGMODMultiLevel solves the global side-effect problem for
// languages with nested procedure declarations (Section 4's
// extension) by solving the family of problems 0..d_P, where problem i
// is defined on the call graph with every edge calling a procedure at
// nesting level < i removed.
//
// Rationale: a variable of scope class i (declared in a procedure at
// level i-1, or a program global for i = 0) survives only as long as
// its declaring activation; a call chain that invokes a procedure at a
// level shallower than i necessarily leaves the static scope of the
// variable and can only reach fresh activations of it. Static
// visibility guarantees the converse: any chain that stays at levels
// ≥ i and modifies the variable does so in the activation the chain
// started from.
//
// This is the "simple device" variant the paper describes first: it
// repeats findgmod once per level, O(d_P·(E_C + N_C)) bit-vector
// steps. (The paper further sketches a single-pass refinement with a
// vector of lowlink values reaching O(E_C + d_P·N_C); since d_P is a
// small constant in practice both are linear, and the repeated form is
// the one whose correctness follows directly from Theorem 1.)
//
// For d_P = 0 the result coincides with a single FindGMOD run.
//
// The pass over each level runs on the SCC-condensed storage layer
// (internal/core/condensed.go) whenever the level's scoping premise
// holds — always, for programs that pass ir.Program.Validate — and
// falls back to the per-node Figure-2 search otherwise. The solution
// is identical either way; only the storage and the work counters
// differ.
func SolveGMODMultiLevel(cg *callgraph.CallGraph, facts *Facts, imodPlus []*bitset.Set) ([]*bitset.Set, []GMODStats) {
	return solveGMODMultiLevel(structureForGMOD(cg), facts, imodPlus, newSetAlloc(AllocHybrid, cg.Prog.NumVars()), false)
}

// solveGMODMultiLevel is the allocator-threaded driver behind
// SolveGMODMultiLevel; Analyze calls it with the analysis's policy.
// The per-level subgraphs and scope classes come precomputed on st —
// they are kind-independent, so a MOD+USE pair shares one copy.
// noCondense forces the per-node solver (the differential baseline).
func solveGMODMultiLevel(st *Structure, facts *Facts, imodPlus []*bitset.Set, al setAlloc, noCondense bool) ([]*bitset.Set, []GMODStats) {
	prog := st.Prog
	dP := prog.MaxLevel()

	// Every procedure's own direct and ref-parameter effects are in
	// its GMOD regardless of levels.
	result := make([]*bitset.Set, prog.NumProcs())
	for i := range result {
		result[i] = al.gmodResult(imodPlus[i])
	}
	// runLevel executes one findgmod pass and folds its solution into
	// result. The condensed layer computes one escape set per
	// strongly-connected component and recovers each node's row as
	// seed ∪ Esc(comp); checkScope is set on the flat full-seed pass,
	// where the mask-free premise rests on IR validation rather than
	// on the driver's class restriction, and a violation (hand-built,
	// never-validated IR) falls through to the per-node search. Under
	// a pooled policy that fallback runs on a recycled solver; under
	// the dense baseline it clones every set.
	runLevel := func(lvl int, seeds, locals []*bitset.Set, checkScope bool, roots ...int) GMODStats {
		g := st.Levels[lvl]
		if !noCondense {
			et, stats, ok := solveCondensed(g, st.levelSCC(lvl), seeds, locals, prog.Vars, checkScope)
			if ok {
				comp := et.scc.Comp
				for i := range result {
					et.escInto(comp[i], result[i])
				}
				return stats
			}
		}
		if al.pooled() {
			run, stats := FindGMODScratch(g, seeds, locals, roots...)
			for i, s := range run.Sets {
				result[i].UnionWith(s)
			}
			run.Release()
			return stats
		}
		gmod, stats := FindGMOD(g, seeds, locals, roots...)
		for i, s := range gmod {
			result[i].UnionWith(s)
		}
		return stats
	}

	if dP == 0 {
		stats := runLevel(0, imodPlus, facts.Local, true, prog.Main.ID)
		return result, []GMODStats{stats}
	}

	var allStats []GMODStats
	for lvl := 0; lvl <= dP; lvl++ {
		// Problem lvl: st.Levels[lvl] has dropped the edges that invoke
		// a procedure declared at a level shallower than lvl; the seeds
		// restrict IMOD+ to the variables whose lifetime that problem
		// tracks (scope class lvl), which is also what makes the
		// condensed pass's premise structural: every callee on a
		// surviving edge declares its names at class ≥ lvl+1.
		seeds := make([]*bitset.Set, prog.NumProcs())
		for _, p := range prog.Procs {
			s := al.tempCopy(imodPlus[p.ID])
			s.IntersectWith(st.ClassVars[lvl])
			seeds[p.ID] = s
		}
		allStats = append(allStats, runLevel(lvl, seeds, facts.Local, false, prog.Main.ID))
		for i := range seeds {
			al.tempDone(seeds[i])
		}
	}
	return result, allStats
}
