package core

import (
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/ir"
)

// CondensedResult is the output of AnalyzeCondensed: the same solution
// as Analyze's Result, but with the GMOD and DMOD families left in
// their SCC-condensed representation instead of materialized rows.
// For a program of N procedures and v-word vectors, a Result carries
// O((N + sites)·v) words of solved sets; a CondensedResult carries the
// escape deltas — O(fact deltas + condensed rows) — and reconstructs
// any row on demand. At 100k procedures that is the difference between
// gigabytes and tens of megabytes.
//
// Rows are recovered through GMODInto/DMODInto (union into a
// caller-supplied set) and sized through GMODSize; the remaining
// fields (RMOD, IMODPlus, Facts) are the same per-procedure structures
// Analyze exposes, since they are linear in the program to begin with.
type CondensedResult struct {
	Prog *ir.Program
	Kind Kind

	Facts *Facts
	Beta  *binding.Beta
	CG    *callgraph.CallGraph

	// RMOD and IMODPlus are as on Result (Figure 1 and equation 5).
	RMOD     *RMOD
	IMODPlus []*bitset.Set

	// GMODStats holds the per-level work counters, as on Result.
	GMODStats []GMODStats

	// levels holds one escape layer per findgmod pass (one for flat
	// programs, MaxLevel()+1 for nested ones). Per-level escape sets
	// are disjoint — a level-l pass escapes only scope-class-l
	// variables — so a row is the union of IMOD+ and every layer.
	levels []escLevel
}

// escLevel is one level's solved escape layer: the condensed table
// when the pass ran condensed, or materialized per-node rows from the
// Figure-2 fallback (hand-built IR whose flat pass fails the scope
// premise).
type escLevel struct {
	esc     *escTable
	perNode []*bitset.Set
}

// AnalyzeCondensed runs the same pipeline as Analyze but keeps the
// GMOD solution in condensed form; it is the giant-graph entry point.
// Of the options, Prune, Prof, Structure, and DisableCondensation are
// honored (the latter forces the per-node fallback layer, for
// differential tests); allocation is always the hybrid policy — the
// condensed store is itself the memory optimization, and tying it to
// an arena would pin slabs for the result's lifetime. Callers needing
// cancellation or fault injection use AnalyzeCtx, whose Result this
// matches row for row.
func AnalyzeCondensed(prog *ir.Program, kind Kind, opts Options) *CondensedResult {
	pfx := "mod."
	if kind == Use {
		pfx = "use."
	}
	p := opts.Prof
	if opts.Prune {
		p.Do(pfx+"prune", func() { prog = prog.Prune() })
	}
	al := newSetAlloc(AllocHybrid, prog.NumVars())
	r := &CondensedResult{Prog: prog, Kind: kind}
	st := opts.Structure
	if st == nil || st.Prog != prog {
		st = &Structure{Prog: prog}
		p.Do(pfx+"beta", func() { st.Beta = binding.Build(prog); st.BetaSCC = st.Beta.G.SCC() })
		p.Do(pfx+"callgraph", func() { st.CG = callgraph.Build(prog); st.fillLevels() })
	}
	r.Beta, r.CG = st.Beta, st.CG
	p.Do(pfx+"facts", func() { r.Facts = computeFacts(prog, kind, al) })
	p.Do(pfx+"rmod", func() { r.RMOD = solveRMOD(st.Beta, r.Facts, st.BetaSCC) })
	p.Do(pfx+"imod+", func() { r.IMODPlus = computeIMODPlus(r.Facts, r.RMOD, al) })
	p.Do(pfx+"gmod", func() { r.solveLevels(st, al, opts.DisableCondensation) })
	return r
}

// solveLevels runs the per-level findgmod passes, retaining each
// level's escape layer instead of folding it into per-node rows.
func (r *CondensedResult) solveLevels(st *Structure, al setAlloc, noCondense bool) {
	prog := r.Prog
	dP := prog.MaxLevel()
	runLevel := func(lvl int, seeds []*bitset.Set, checkScope bool) {
		if !noCondense {
			et, stats, ok := solveCondensed(st.Levels[lvl], st.levelSCC(lvl), seeds, r.Facts.Local, prog.Vars, checkScope)
			if ok {
				r.levels = append(r.levels, escLevel{esc: et})
				r.GMODStats = append(r.GMODStats, stats)
				return
			}
		}
		// Per-node fallback: FindGMOD's freshly cloned rows are safe to
		// retain (the multi-level seeds below are temporaries).
		gmod, stats := FindGMOD(st.Levels[lvl], seeds, r.Facts.Local, prog.Main.ID)
		r.levels = append(r.levels, escLevel{perNode: gmod})
		r.GMODStats = append(r.GMODStats, stats)
	}
	if dP == 0 {
		runLevel(0, r.IMODPlus, true)
		return
	}
	for lvl := 0; lvl <= dP; lvl++ {
		seeds := make([]*bitset.Set, prog.NumProcs())
		for _, pr := range prog.Procs {
			s := al.tempCopy(r.IMODPlus[pr.ID])
			s.IntersectWith(st.ClassVars[lvl])
			seeds[pr.ID] = s
		}
		runLevel(lvl, seeds, false)
		for i := range seeds {
			al.tempDone(seeds[i])
		}
	}
}

// GMODInto unions GMOD(pid) — equations (3)/(4), or GUSE for the Use
// problem — into dst and returns dst. The reconstruction is
// GMOD(p) = IMOD+(p) ∪ ∪_lvl Esc_lvl(comp(p)).
func (r *CondensedResult) GMODInto(pid int, dst *bitset.Set) *bitset.Set {
	dst.UnionWith(r.IMODPlus[pid])
	for i := range r.levels {
		if et := r.levels[i].esc; et != nil {
			et.escInto(et.scc.Comp[pid], dst)
		} else {
			dst.UnionWith(r.levels[i].perNode[pid])
		}
	}
	return dst
}

// GMODSize returns |GMOD(pid)| without materializing the row: the
// level escape counts are disjoint by scope class, so only the IMOD+
// elements need membership probes against the chains.
func (r *CondensedResult) GMODSize(pid int) int {
	for i := range r.levels {
		if r.levels[i].esc == nil {
			// A fallback layer breaks the disjoint-count argument
			// (its rows include the seeds); count through scratch.
			sc := bitset.GetScratch(r.Prog.NumVars())
			n := r.GMODInto(pid, sc).Len()
			bitset.PutScratch(sc)
			return n
		}
	}
	n := 0
	for i := range r.levels {
		et := r.levels[i].esc
		n += int(et.count[et.scc.Comp[pid]])
	}
	r.IMODPlus[pid].ForEach(func(e int) {
		for i := range r.levels {
			et := r.levels[i].esc
			if et.has(et.scc.Comp[pid], e) {
				return
			}
		}
		n++
	})
	return n
}

// DMODInto unions DMOD(siteID) — equation (2) — into dst and returns
// dst, evaluating the projection b_e directly on the condensed layers:
// GMOD(q) ∖ LOCAL(q) distributes over the union, so each layer flows
// through escIntoMasked and never materializes.
func (r *CondensedResult) DMODInto(siteID int, dst *bitset.Set) *bitset.Set {
	cs := r.Prog.Sites[siteID]
	q := cs.Callee
	local := r.Facts.Local[q.ID]
	dst.UnionDiffWith(r.IMODPlus[q.ID], local)
	for i := range r.levels {
		if et := r.levels[i].esc; et != nil {
			et.escIntoMasked(et.scc.Comp[q.ID], dst, local)
		} else {
			dst.UnionDiffWith(r.levels[i].perNode[q.ID], local)
		}
	}
	for i, a := range cs.Args {
		if r.Kind == Use {
			for _, u := range a.Uses {
				dst.Add(u.ID)
			}
		}
		if a.Mode == ir.FormalRef && a.Var != nil && r.RMOD.Of(q.Formals[i]) {
			dst.Add(a.Var.ID)
		}
	}
	return dst
}

// Stats returns the aggregate work counters across all levels, the
// condensed analogue of summing Result.GMODStats.
func (r *CondensedResult) Stats() GMODStats {
	var t GMODStats
	for _, s := range r.GMODStats {
		t.Accumulate(s)
	}
	return t
}
