package core

import (
	"sideeffect/internal/bitset"
	"sideeffect/internal/ir"
)

// ComputeIMODPlus evaluates equation (5) of the paper,
//
//	IMOD+(p) = IMOD(p) ∪ ∪_{e=(p,q)} b_e(RMOD(q)),
//
// where b_e is restricted to actual-to-formal bindings: for every call
// site in p, an actual variable bound to a formal in RMOD(callee) is
// added to IMOD+(p). With lexical nesting, a call site textually
// inside a procedure nested in p binds variables on behalf of that
// nested procedure; its contributions are folded upward exactly like
// the extended IMOD sets of Section 3.3:
//
//	IMOD+(p) ∪= IMOD+(q) ∖ LOCAL(q)   for q ∈ Nest(p).
//
// The result is indexed by procedure ID. The computation is one pass
// over the call sites plus one bottom-up pass over the nesting forest,
// linear in program size for bounded parameter lists.
func ComputeIMODPlus(facts *Facts, rmod *RMOD) []*bitset.Set {
	return computeIMODPlus(facts, rmod, newSetAlloc(AllocHybrid, facts.Prog.NumVars()))
}

// computeIMODPlus is ComputeIMODPlus with the sets drawn from al.
func computeIMODPlus(facts *Facts, rmod *RMOD, al setAlloc) []*bitset.Set {
	prog := facts.Prog
	out := make([]*bitset.Set, prog.NumProcs())
	for _, p := range prog.Procs {
		out[p.ID] = al.resultClone(facts.I[p.ID])
	}
	for _, cs := range prog.Sites {
		for i, a := range cs.Args {
			if a.Mode != ir.FormalRef || a.Var == nil {
				continue
			}
			if rmod.Of(cs.Callee.Formals[i]) {
				out[cs.Caller.ID].Add(a.Var.ID)
			}
		}
	}
	// Fold nested procedures' IMOD+ into their lexical parents,
	// deepest level first.
	maxL := prog.MaxLevel()
	if maxL > 0 {
		buckets := make([][]*ir.Procedure, maxL+1)
		for _, p := range prog.Procs {
			buckets[p.Level] = append(buckets[p.Level], p)
		}
		for lvl := maxL; lvl > 0; lvl-- {
			for _, p := range buckets[lvl] {
				out[p.Parent.ID].UnionDiffWith(out[p.ID], facts.Local[p.ID])
			}
		}
	}
	return out
}
