package core

import (
	"sideeffect/internal/arena"
	"sideeffect/internal/bitset"
	"sideeffect/internal/ir"
)

// AllocPolicy selects the allocation discipline of one Analyze. The
// solved sets are identical under every policy; only where their
// storage comes from differs. The zero value is the production
// default; the other policies exist as ablation baselines for the E16
// experiment (cmd/experiments) and for debugging.
type AllocPolicy int

const (
	// AllocAuto — the default — uses hybrid sparse/dense sets, draws
	// every result-lifetime vector (facts, IMOD+, GMOD, DMOD) from a
	// per-analysis arena slab, and serves temporaries from the pooled
	// scratch/solver state.
	AllocAuto AllocPolicy = iota
	// AllocHybrid uses hybrid sets and pooled temporaries, but each
	// result vector is an individual heap allocation (no arena).
	AllocHybrid
	// AllocDense is the pre-hybrid baseline: every set is a fresh
	// dense heap vector spanning the whole variable universe, and
	// per-node solver sets are freshly cloned rather than pooled.
	AllocDense
)

// String names the policy the way BENCH_core.json spells it.
func (p AllocPolicy) String() string {
	switch p {
	case AllocHybrid:
		return "hybrid"
	case AllocDense:
		return "dense"
	default:
		return "arena+hybrid"
	}
}

// setAlloc is the per-analysis set allocator: the policy plus the
// arena that backs it under AllocAuto.
type setAlloc struct {
	policy AllocPolicy
	ar     *arena.Arena
	nvars  int
}

func newSetAlloc(policy AllocPolicy, nvars int) setAlloc {
	al := setAlloc{policy: policy, nvars: nvars}
	if policy == AllocAuto {
		// Drawn from the process-wide pool so a batch loop that
		// Releases each Result reuses warm slabs instead of growing
		// fresh ones per program.
		al.ar = arena.Get()
	}
	return al
}

// pooled reports whether temporaries and solver sets may come from the
// process-wide pools.
func (al setAlloc) pooled() bool { return al.policy != AllocDense }

// resultClone returns an analysis-lifetime copy of t. Under AllocAuto
// the copy is a universe-width row carved from the arena: the slab
// words are pointer-free (the GC never scans them), carving costs no
// per-set allocation, and full-width rows keep every later union on
// the word-parallel fast path — the hybrid sparse mode is reserved for
// sets that stay genuinely tiny (LOCAL filters, incremental deltas).
// AllocHybrid preserves t's representation on the heap; AllocDense
// materializes a fresh universe-spanning heap vector.
func (al setAlloc) resultClone(t *bitset.Set) *bitset.Set {
	if al.policy == AllocHybrid {
		return t.Clone()
	}
	c := al.resultDense()
	c.UnionWith(t)
	return c
}

// resultDense returns an analysis-lifetime empty dense set spanning
// the universe, for accumulators that are expected to fill up (GMOD
// rows, DMOD rows): carving them at full width from the slab means
// later unions never reallocate.
func (al setAlloc) resultDense() *bitset.Set {
	if al.ar != nil {
		return al.ar.Dense(al.nvars)
	}
	return bitset.New(al.nvars)
}

// gmodResult seeds one GMOD accumulator from IMOD+.
func (al setAlloc) gmodResult(seed *bitset.Set) *bitset.Set {
	if al.policy == AllocHybrid {
		// Mode-preserving heap clone: small procedures keep sparse
		// accumulators and promote only if the solution grows.
		return seed.Clone()
	}
	s := al.resultDense()
	s.UnionWith(seed)
	return s
}

// localSet builds LOCAL(q) — q's declared locals and formals, the
// equation (4) filter — under the policy. Mirrors ir.Program.LocalSet,
// which stays allocator-free for external callers. LOCAL rows filter
// the hottest unions in the solver (the ∖ LOCAL(q) of equation (4) at
// every call-graph edge and call site), so under the arena they are
// carved dense at universe width: the slab makes the width free, and a
// dense filter keeps those unions on the word-parallel path instead of
// per-element sparse masking.
func (al setAlloc) localSet(q *ir.Procedure) *bitset.Set {
	var s *bitset.Set
	switch {
	case al.policy == AllocDense:
		s = bitset.New(al.nvars)
	case al.ar != nil:
		s = al.ar.Dense(al.nvars)
	default:
		s = bitset.NewSparse()
	}
	for _, v := range q.Locals {
		s.Add(v.ID)
	}
	for _, v := range q.Formals {
		s.Add(v.ID)
	}
	return s
}

// tempCopy returns a level-lifetime copy of t; release with tempDone.
func (al setAlloc) tempCopy(t *bitset.Set) *bitset.Set {
	if al.pooled() {
		return bitset.GetScratch(0).CopyFrom(t)
	}
	return t.Clone()
}

// tempDense returns a cleared level-lifetime dense set for [0, n).
func (al setAlloc) tempDense(n int) *bitset.Set {
	if al.pooled() {
		return bitset.GetScratch(n)
	}
	return bitset.New(n)
}

// tempDone releases a temporary obtained from tempCopy/tempDense.
func (al setAlloc) tempDone(s *bitset.Set) {
	if al.pooled() {
		bitset.PutScratch(s)
	}
}
