package core

import (
	"sideeffect/internal/binding"
	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// RMOD is the solution of the reference-formal-parameter problem: for
// every by-reference formal fp_i^p, whether an invocation of p may
// modify (or, for Kind Use, read) the variable bound to it.
type RMOD struct {
	Kind Kind
	Beta *binding.Beta
	// Node[n] is the solution for β node n.
	Node []bool
	// Stats counts the simple boolean steps the algorithm performed —
	// the quantity the paper compares against the swift algorithm's
	// bit-vector steps (Section 3.2).
	Stats RMODStats
}

// RMODStats counts the work done by SolveRMOD.
type RMODStats struct {
	// BoolSteps is the number of O(1) boolean operations performed
	// across all four phases of Figure 1.
	BoolSteps int
	// Components is the number of strongly-connected components of β.
	Components int
}

// Of reports the solution for a formal parameter variable. Formals
// that are not by-reference (and non-formals) report false.
func (r *RMOD) Of(v *ir.Variable) bool {
	n := r.Beta.NodeOf[v.ID]
	if n < 0 {
		return false
	}
	return r.Node[n]
}

// SolveRMOD solves the data-flow system of equation (6),
//
//	RMOD(m) = IMOD(m) ∨ ∨_{(m,n)∈Eβ} RMOD(n),
//
// with the four-step algorithm of Figure 1: find the SCCs of β,
// collapse each to a representer whose seed is the disjunction of its
// members' seeds, propagate over the derived graph from leaves to
// roots, and copy each representer's value back to its members. Every
// step is O(Nβ + Eβ), and — unlike the swift algorithm — the steps
// are single boolean operations, not bit-vector operations.
//
// The solution is identical at every node of a strongly connected
// region because the equations are purely disjunctive; that is the
// observation that makes the collapse legal.
func SolveRMOD(beta *binding.Beta, facts *Facts) *RMOD {
	// Step 1: strongly-connected components of β.
	return solveRMOD(beta, facts, beta.G.SCC())
}

// solveRMOD is SolveRMOD with β's components precomputed, so a caller
// solving both problem kinds (their Structure is shared) runs the
// Tarjan pass once: the components depend only on the binding edges,
// while the seeds of step 2 are the kind-specific part.
func solveRMOD(beta *binding.Beta, facts *Facts, scc *graph.SCCInfo) *RMOD {
	r := &RMOD{Kind: facts.Kind, Beta: beta, Node: make([]bool, len(beta.Nodes))}
	r.Stats.Components = scc.NumComponents()

	// Step 2: representer seeds.
	rep := make([]bool, scc.NumComponents())
	for n, v := range beta.Nodes {
		if facts.SeedOf(v) {
			rep[scc.Comp[n]] = true
		}
		r.Stats.BoolSteps++
	}

	// Step 3: traverse the derived graph from leaves to roots. Tarjan
	// numbers components in reverse topological order (a component is
	// closed before every component with an edge into it), so a single
	// pass in increasing component number applies equation (6): the
	// value of every successor component is final when its edges are
	// examined.
	for c := 0; c < scc.NumComponents(); c++ {
		if rep[c] {
			continue
		}
		for _, n := range scc.Members[c] {
			for _, e := range beta.G.Succs(n) {
				r.Stats.BoolSteps++
				if rep[scc.Comp[e.To]] {
					rep[c] = true
					break
				}
			}
			if rep[c] {
				break
			}
		}
	}

	// Step 4: copy representer values back to members.
	for n := range r.Node {
		r.Node[n] = rep[scc.Comp[n]]
		r.Stats.BoolSteps++
	}
	return r
}
