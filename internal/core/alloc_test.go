package core_test

import (
	"fmt"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/workload"
)

// TestFindGMODScratchZeroAlloc gates the zero-allocation hot path: in
// steady state (pool warmed to the program size) a FindGMODScratch
// call must not touch the heap at all. This is the property the arena
// + pooled-solver work of the performance PR exists to provide; a
// regression here silently reintroduces allocator contention under
// the batch engine.
func TestFindGMODScratchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates and sync.Pool drops entries at random under it")
	}
	res := core.Analyze(workload.Random(workload.DefaultConfig(120, 7)), core.Mod, core.Options{Prune: true})
	solve := func() {
		run, _ := core.FindGMODScratch(res.CG.G, res.IMODPlus, res.Facts.Local, res.Prog.Main.ID)
		run.Release()
	}
	solve() // warm the solver pool to this program's size
	if avg := testing.AllocsPerRun(100, solve); avg != 0 {
		t.Fatalf("steady-state FindGMODScratch allocates %.1f objects/op, want 0", avg)
	}
}

// TestAllocPoliciesAgree: the allocation policy must never change the
// solution — dense baseline, hybrid, and arena+hybrid runs produce
// identical GMOD/IMOD+/DMOD sets.
func TestAllocPoliciesAgree(t *testing.T) {
	for _, n := range []int{24, 96} {
		for seed := int64(0); seed < 4; seed++ {
			cfg := workload.DefaultConfig(n, 1000+seed)
			prog := workload.Random(cfg)
			for _, kind := range []core.Kind{core.Mod, core.Use} {
				t.Run(fmt.Sprintf("N=%d/seed=%d/%s", n, seed, kind), func(t *testing.T) {
					base := core.Analyze(prog, kind, core.Options{Prune: true, Alloc: core.AllocDense})
					for _, pol := range []core.AllocPolicy{core.AllocAuto, core.AllocHybrid} {
						r := core.Analyze(prog, kind, core.Options{Prune: true, Alloc: pol})
						if len(r.GMOD) != len(base.GMOD) || len(r.DMOD) != len(base.DMOD) {
							t.Fatalf("%v: result shape differs from dense baseline", pol)
						}
						for i := range base.GMOD {
							if !r.GMOD[i].Equal(base.GMOD[i]) {
								t.Errorf("%v: GMOD[%d] = %v, dense baseline %v", pol, i, r.GMOD[i], base.GMOD[i])
							}
							if !r.IMODPlus[i].Equal(base.IMODPlus[i]) {
								t.Errorf("%v: IMODPlus[%d] differs from dense baseline", pol, i)
							}
							if !r.Facts.I[i].Equal(base.Facts.I[i]) || !r.Facts.Local[i].Equal(base.Facts.Local[i]) {
								t.Errorf("%v: facts[%d] differ from dense baseline", pol, i)
							}
						}
						for i := range base.DMOD {
							if !r.DMOD[i].Equal(base.DMOD[i]) {
								t.Errorf("%v: DMOD[%d] = %v, dense baseline %v", pol, i, r.DMOD[i], base.DMOD[i])
							}
						}
						if pol == core.AllocAuto && r.Arena == nil {
							t.Error("AllocAuto result has no arena")
						}
						if pol == core.AllocHybrid && r.Arena != nil {
							t.Error("AllocHybrid result unexpectedly has an arena")
						}
					}
				})
			}
		}
	}
}

// TestReleaseRecyclesArena drives the analyze → consume → Release
// loop the batch engine runs per worker: each Release parks the arena
// in the process-wide pool and the next Analyze draws it back warm. If
// Reset failed to clear a carved prefix, or a stale set aliased a
// recycled slab, the recycled analyses would diverge from the dense
// baseline — so every iteration is checked set-for-set against a fresh
// dense run of the same program.
func TestReleaseRecyclesArena(t *testing.T) {
	progs := []struct {
		n    int
		seed int64
	}{{60, 21}, {90, 22}, {24, 23}, {60, 21}}
	for round := 0; round < 3; round++ {
		for _, pc := range progs {
			prog := workload.Random(workload.DefaultConfig(pc.n, pc.seed)).Prune()
			st := core.BuildStructure(prog)
			for _, kind := range []core.Kind{core.Mod, core.Use} {
				got := core.Analyze(prog, kind, core.Options{Alloc: core.AllocAuto, Structure: st})
				want := core.Analyze(prog, kind, core.Options{Alloc: core.AllocDense, Structure: st})
				for i := range want.GMOD {
					if !got.GMOD[i].Equal(want.GMOD[i]) {
						t.Fatalf("round %d N=%d %v: recycled GMOD[%d] = %v, want %v",
							round, pc.n, kind, i, got.GMOD[i], want.GMOD[i])
					}
				}
				for i := range want.DMOD {
					if !got.DMOD[i].Equal(want.DMOD[i]) {
						t.Fatalf("round %d N=%d %v: recycled DMOD[%d] = %v, want %v",
							round, pc.n, kind, i, got.DMOD[i], want.DMOD[i])
					}
				}
				got.Release()
			}
		}
	}
}

// TestArenaResultsIndependent: sets carved from the same arena must
// not alias — mutating one GMOD row cannot disturb another.
func TestArenaResultsIndependent(t *testing.T) {
	prog := workload.Random(workload.DefaultConfig(40, 11))
	r := core.Analyze(prog, core.Mod, core.Options{Prune: true})
	if r.Arena == nil {
		t.Fatal("default policy produced no arena")
	}
	before := make([]string, len(r.GMOD))
	for i, s := range r.GMOD {
		before[i] = s.String()
	}
	probe := r.Prog.NumVars() - 1
	r.GMOD[0].Add(probe)
	r.GMOD[0].Remove(probe)
	for i := 1; i < len(r.GMOD); i++ {
		if r.GMOD[i].String() != before[i] {
			t.Fatalf("GMOD[%d] changed when GMOD[0] was mutated", i)
		}
	}
}
