// Package core implements the paper's two linear-time algorithms and
// the decomposition that connects them:
//
//	RMOD  — side effects to by-reference formal parameters, solved on
//	        the binding multi-graph with strongly-connected components
//	        and one reverse-topological pass (Figure 1, Section 3);
//	IMOD+ — equation (5): local effects plus effects through ref
//	        parameters at immediate call sites;
//	GMOD  — side effects to variables that outlive the callee, solved
//	        by the one-pass adaptation of Tarjan's SCC algorithm
//	        (findgmod, Figure 2, Section 4), plus the multi-level
//	        variant for nested lexical scoping;
//	DMOD  — equation (2): per-call-site direct side effects.
//
// Every solver works for both the MOD and USE problems through the
// Kind parameter (the paper notes USE has an analogous solution).
// Alias factoring (Section 5) lives in the alias package; regular
// section analysis (Section 6) in the section package.
package core

import (
	"sideeffect/internal/bitset"
	"sideeffect/internal/ir"
)

// Kind selects which side-effect problem to solve.
type Kind int

// Problem kinds.
const (
	// Mod analyses "may be modified".
	Mod Kind = iota
	// Use analyses "may be used".
	Use
)

// String returns "MOD" or "USE".
func (k Kind) String() string {
	if k == Mod {
		return "MOD"
	}
	return "USE"
}

// Facts holds the per-procedure local facts the interprocedural
// solvers start from, with the lexical-nesting extension of Section
// 3.3 already applied:
//
//	I(p) = ∪_{s∈p} L(s)  ∪  ∪_{q∈Nest(p)} ( I(q) ∖ LOCAL(q) )
//
// so that a modification of a p-visible variable inside a procedure
// nested in p counts as an initial effect of p (the paper treats
// nested bodies as extensions of the enclosing body; the
// flow-insensitive problem cannot distinguish them).
type Facts struct {
	Prog *ir.Program
	Kind Kind
	// I[pid] is the extended IMOD (or IUSE) set of procedure pid.
	I []*bitset.Set
	// Local[pid] is LOCAL(p): p's declared locals and formals (the
	// names that vanish when p returns — equation (4)'s filter).
	Local []*bitset.Set
}

// ComputeFacts builds the extended local facts for the given problem.
// The computation is bottom-up over the nesting forest and linear in
// the size of the program.
func ComputeFacts(prog *ir.Program, kind Kind) *Facts {
	return computeFacts(prog, kind, newSetAlloc(AllocHybrid, prog.NumVars()))
}

// computeFacts is ComputeFacts with the sets drawn from al.
func computeFacts(prog *ir.Program, kind Kind, al setAlloc) *Facts {
	n := prog.NumProcs()
	f := &Facts{
		Prog:  prog,
		Kind:  kind,
		I:     make([]*bitset.Set, n),
		Local: make([]*bitset.Set, n),
	}
	for _, p := range prog.Procs {
		seed := p.IMOD
		if kind == Use {
			seed = p.IUSE
		}
		f.I[p.ID] = al.resultClone(seed)
		f.Local[p.ID] = al.localSet(p)
	}
	// Deepest procedures first.
	order := make([]*ir.Procedure, len(prog.Procs))
	copy(order, prog.Procs)
	// Counting sort by level (levels are small).
	maxL := prog.MaxLevel()
	buckets := make([][]*ir.Procedure, maxL+1)
	for _, p := range order {
		buckets[p.Level] = append(buckets[p.Level], p)
	}
	for lvl := maxL; lvl > 0; lvl-- {
		for _, p := range buckets[lvl] {
			f.I[p.Parent.ID].UnionDiffWith(f.I[p.ID], f.Local[p.ID])
		}
	}
	return f
}

// SeedOf reports whether formal parameter v is in the extended local
// set of its owning procedure — the IMOD(fp_i^p) boolean of Section
// 3.2.
func (f *Facts) SeedOf(v *ir.Variable) bool {
	return f.I[v.Owner.ID].Has(v.ID)
}
