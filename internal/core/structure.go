package core

import (
	"sync"

	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/graph"
	"sideeffect/internal/ir"
)

// Structure is the kind-independent skeleton of a program's analysis:
// the binding multi-graph with its strongly-connected components
// (Figure 1, step 1), the call multi-graph, and — for nested programs —
// the per-level subgraphs and scope-class variable sets of the Section
// 4 extension. The MOD and USE problems differ only in their local
// facts; the skeleton is identical, so a caller solving both (the
// top-level pipeline, batch drivers) builds it once with BuildStructure
// and passes it through Options.Structure, halving the
// graph-construction work per program. A Structure is read-only after
// construction and may be shared by concurrent Analyze calls.
type Structure struct {
	Prog *ir.Program
	Beta *binding.Beta
	// BetaSCC partitions the binding graph into strongly-connected
	// components; SolveRMOD's collapse step starts from it.
	BetaSCC *graph.SCCInfo
	CG      *callgraph.CallGraph
	// Levels[l] is the call graph of the level-l problem: the call
	// multi-graph with every edge invoking a procedure at nesting level
	// < l removed. Levels[0] aliases CG.G (no edge is dropped at level
	// 0); the slice has length MaxLevel()+1.
	Levels []*graph.Graph
	// ClassVars[l] is the set of variables of scope class l. Nil for
	// flat programs, whose single FindGMOD pass needs no class split.
	ClassVars []*bitset.Set

	// sccs caches the strongly-connected components of each level's
	// subgraph for the condensed GMOD solver, computed lazily (a MOD +
	// USE pair sharing one Structure decomposes each level once).
	sccs     []*graph.SCCInfo
	sccsOnce []sync.Once
}

// BuildStructure computes the shared skeleton of prog's analysis.
func BuildStructure(prog *ir.Program) *Structure {
	st := &Structure{Prog: prog, Beta: binding.Build(prog)}
	st.BetaSCC = st.Beta.G.SCC()
	st.CG = callgraph.Build(prog)
	st.fillLevels()
	return st
}

// structureForGMOD wraps a caller-supplied call graph for the public
// SolveGMODMultiLevel entry point; the binding side stays empty.
func structureForGMOD(cg *callgraph.CallGraph) *Structure {
	st := &Structure{Prog: cg.Prog, CG: cg}
	st.fillLevels()
	return st
}

// fillLevels derives the per-level subgraphs and scope classes from
// the call graph.
func (st *Structure) fillLevels() {
	prog := st.Prog
	dP := prog.MaxLevel()
	st.Levels = make([]*graph.Graph, dP+1)
	st.sccs = make([]*graph.SCCInfo, dP+1)
	st.sccsOnce = make([]sync.Once, dP+1)
	st.Levels[0] = st.CG.G
	if dP == 0 {
		return
	}
	for lvl := 1; lvl <= dP; lvl++ {
		var list []graph.Edge
		for _, cs := range prog.Sites {
			if cs.Callee.Level >= lvl {
				list = append(list, graph.Edge{From: cs.Caller.ID, To: cs.Callee.ID})
			}
		}
		st.Levels[lvl] = graph.FromEdgeList(prog.NumProcs(), list)
	}
	st.ClassVars = make([]*bitset.Set, dP+1)
	for i := range st.ClassVars {
		st.ClassVars[i] = bitset.New(prog.NumVars())
	}
	for _, v := range prog.Vars {
		if lvl := v.ScopeLevel(); lvl <= dP {
			st.ClassVars[lvl].Add(v.ID)
		}
		// Variables of class d_P+1 are locals of the deepest
		// procedures; no call chain can modify them on behalf of a
		// caller, and they are covered by the IMOD+ base.
	}
}

// levelSCC returns the SCC decomposition of the level-lvl subgraph,
// computing it on first use. The slots are allocated by fillLevels (at
// construction, before the Structure is shared), so concurrent MOD and
// USE analyses may race only into the sync.Once, which decomposes each
// level exactly once.
func (st *Structure) levelSCC(lvl int) *graph.SCCInfo {
	st.sccsOnce[lvl].Do(func() { st.sccs[lvl] = st.Levels[lvl].SCC() })
	return st.sccs[lvl]
}
