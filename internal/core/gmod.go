package core

import (
	"sync"

	"sideeffect/internal/bitset"
	"sideeffect/internal/graph"
)

// GMODStats counts the bit-vector steps performed by FindGMOD, the
// quantities of Theorem 2: the union at the paper's line 17 executes
// at most once per call-graph edge, and the union at line 22 at most
// once per node.
type GMODStats struct {
	// Visits is the number of procedures visited (≤ N_C per run).
	Visits int
	// EdgeUnions counts executions of line 17 (GMOD[p] ∪= GMOD[q] ∖
	// LOCAL[q]); NodeUnions counts executions of line 22.
	EdgeUnions, NodeUnions int
	// Components is the number of SCCs closed.
	Components int
	// CondensedRows is the number of full-width escape rows the
	// SCC-condensed solver materialized (chain roots); SharedRowHits is
	// the number of components that resolved to a pure alias of a
	// successor's row — zero private storage. Both stay zero on the
	// per-node (uncondensed) path.
	CondensedRows, SharedRowHits int
}

// BitVectorSteps returns the total bit-vector operations, the unit of
// Theorem 2's O(E_C + N_C) bound.
func (s GMODStats) BitVectorSteps() int { return s.EdgeUnions + s.NodeUnions + s.Visits }

// Accumulate folds o's counters into s; the multi-level driver and the
// observability layers sum per-level (or per-problem) stats with it.
func (s *GMODStats) Accumulate(o GMODStats) {
	s.Visits += o.Visits
	s.EdgeUnions += o.EdgeUnions
	s.NodeUnions += o.NodeUnions
	s.Components += o.Components
	s.CondensedRows += o.CondensedRows
	s.SharedRowHits += o.SharedRowHits
}

// gmodFrame is one explicit DFS frame: node and next-successor index.
type gmodFrame struct{ v, ei int }

// gmodState is a reusable findgmod solver: the Tarjan index arrays,
// the explicit frame stack, and (for the scratch path) the per-node
// accumulator sets all live here and are recycled through a
// process-wide pool. Once the pool has warmed to the program size, a
// FindGMODScratch call touches no allocator at all — the property
// gated by TestFindGMODScratchZeroAlloc.
type gmodState struct {
	dfn, lowlink []int
	onStack      []bool
	stack        []int
	frames       []gmodFrame
	sets         []*bitset.Set // lazily created, retained accumulators
	nextdfn      int
}

var gmodStates = sync.Pool{New: func() any { return new(gmodState) }}

// ensure sizes the search state for an n-node graph and resets it.
func (st *gmodState) ensure(n int) {
	if cap(st.dfn) < n {
		st.dfn = make([]int, n)
		st.lowlink = make([]int, n)
		st.onStack = make([]bool, n)
		st.stack = make([]int, 0, n)
		st.frames = make([]gmodFrame, 0, n)
	}
	st.dfn = st.dfn[:n]
	st.lowlink = st.lowlink[:n]
	st.onStack = st.onStack[:n]
	st.stack = st.stack[:0]
	st.frames = st.frames[:0]
	for i := range st.dfn {
		st.dfn[i] = 0
		st.onStack[i] = false
	}
	st.nextdfn = 1
}

// ensureSets guarantees n retained accumulator sets.
func (st *gmodState) ensureSets(n int) {
	for len(st.sets) < n {
		st.sets = append(st.sets, new(bitset.Set))
	}
}

// FindGMOD is the paper's findgmod (Figure 2): a one-pass adaptation
// of Tarjan's strongly-connected-components algorithm that evaluates
// equation (4),
//
//	GMOD(p) = IMOD+(p) ∪ ∪_{e=(p,q)} ( GMOD(q) ∖ LOCAL(q) ),
//
// during the depth-first search. Each node's set is initialized to
// IMOD+ (line 8); returning across a tree edge or examining an edge to
// an already-closed component applies equation (4) (line 17); and when
// the root of a strongly-connected component is found, every member's
// set is augmented with the root's non-local variables (line 22),
// which is correct because all members of the component reach the same
// set of variables that outlive the component (the paper's Theorem 1).
//
// roots lists the depth-first start nodes (normally just main's ID);
// any procedure not reachable from the roots is searched afterwards so
// that every procedure receives a solution, matching the paper's
// assumption that unreachable procedures were eliminated while
// remaining total on un-pruned inputs.
//
// For programs whose procedures all sit at nesting level 0 (two-level
// languages like C or Fortran — equation (8)'s premise), the result is
// the exact least solution of equation (4). For nested programs use
// SolveGMODMultiLevel, which runs this pass once per nesting level.
//
// The search is iterative (explicit frame stack) so call chains of
// hundreds of thousands of procedures cannot overflow the goroutine
// stack; the structure otherwise mirrors Figure 2 line by line. Every
// returned set is freshly cloned from IMOD+ — this is the unpooled
// baseline; the solver hot path uses FindGMODScratch.
func FindGMOD(g *graph.Graph, imodPlus []*bitset.Set, local []*bitset.Set, roots ...int) ([]*bitset.Set, GMODStats) {
	out := make([]*bitset.Set, g.NumNodes())
	st := gmodStates.Get().(*gmodState)
	stats := st.run(g, imodPlus, local, out, false, roots)
	gmodStates.Put(st)
	return out, stats
}

// GMODRun is the result of FindGMODScratch. Sets is indexed by node
// ID; the sets, the slice, and the search state behind them are owned
// by a pooled solver, so the caller must fold the sets into
// longer-lived storage and then call Release. After Release the run
// must not be used.
type GMODRun struct {
	Sets []*bitset.Set
	st   *gmodState
}

// Release returns the run's solver (sets included) to the pool.
func (r GMODRun) Release() {
	if r.st != nil {
		gmodStates.Put(r.st)
	}
}

// FindGMODScratch is FindGMOD with every per-node set, the result
// slice, and the search state drawn from a process-wide pool of
// reusable solvers: in steady state — once the pool has warmed to the
// program size — a call performs zero heap allocations. Used by the
// multi-level driver, which runs one findgmod pass per nesting level
// and discards each pass's sets after folding them into the result.
func FindGMODScratch(g *graph.Graph, imodPlus []*bitset.Set, local []*bitset.Set, roots ...int) (GMODRun, GMODStats) {
	n := g.NumNodes()
	st := gmodStates.Get().(*gmodState)
	st.ensureSets(n)
	out := st.sets[:n]
	stats := st.run(g, imodPlus, local, out, true, roots)
	return GMODRun{Sets: out, st: st}, stats
}

// run executes the Figure-2 search over g, filling out[v] with node
// v's GMOD set. With reuse=true, out[v] must already point at a
// caller-owned set, which is overwritten via CopyFrom; with
// reuse=false, out[v] receives a fresh clone of imodPlus[v].
func (st *gmodState) run(g *graph.Graph, imodPlus, local, out []*bitset.Set, reuse bool, roots []int) GMODStats {
	n := g.NumNodes()
	st.ensure(n)
	var stats GMODStats
	for _, r := range roots {
		st.search(g, imodPlus, local, out, reuse, r, &stats)
	}
	for v := 0; v < n; v++ {
		st.search(g, imodPlus, local, out, reuse, v, &stats)
	}
	return stats
}

func (st *gmodState) visit(v int, imodPlus, out []*bitset.Set, reuse bool, stats *GMODStats) {
	st.dfn[v] = st.nextdfn
	st.nextdfn++
	st.lowlink[v] = st.dfn[v]
	if reuse { // line 8: initialize to IMOD+
		out[v].CopyFrom(imodPlus[v])
	} else {
		out[v] = imodPlus[v].Clone()
	}
	st.stack = append(st.stack, v)
	st.onStack[v] = true
	stats.Visits++
	st.frames = append(st.frames, gmodFrame{v: v})
}

func (st *gmodState) search(g *graph.Graph, imodPlus, local, out []*bitset.Set, reuse bool, root int, stats *GMODStats) {
	if st.dfn[root] != 0 {
		return
	}
	st.visit(root, imodPlus, out, reuse, stats)
	for len(st.frames) > 0 {
		f := &st.frames[len(st.frames)-1]
		v := f.v
		advanced := false
		succs := g.Succs(v)
		for f.ei < len(succs) {
			e := succs[f.ei]
			f.ei++
			q := e.To
			if st.dfn[q] == 0 { // tree edge: descend
				st.visit(q, imodPlus, out, reuse, stats)
				advanced = true
				break
			}
			if st.dfn[q] < st.dfn[v] && st.onStack[q] {
				// Cross or back edge within the current component.
				if st.dfn[q] < st.lowlink[v] {
					st.lowlink[v] = st.dfn[q]
				}
			} else {
				// Edge to a closed component (or a forward edge):
				// apply equation (4) — line 17.
				out[v].UnionDiffWith(out[q], local[q])
				stats.EdgeUnions++
			}
		}
		if advanced {
			continue
		}
		// v is exhausted: close component if v is a root.
		if st.lowlink[v] == st.dfn[v] { // line 19
			stats.Components++
			for { // lines 20-24
				u := st.stack[len(st.stack)-1]
				st.stack = st.stack[:len(st.stack)-1]
				st.onStack[u] = false
				if u == v {
					break
				}
				out[u].UnionDiffWith(out[v], local[v]) // line 22
				stats.NodeUnions++
			}
		}
		st.frames = st.frames[:len(st.frames)-1]
		if len(st.frames) > 0 {
			p := &st.frames[len(st.frames)-1]
			if st.lowlink[v] < st.lowlink[p.v] {
				st.lowlink[p.v] = st.lowlink[v]
			}
			// Returning across the tree edge (p.v, v): v's dfn is
			// greater than p's, so Figure 2's stack test fails and
			// the else branch applies equation (4). When v belongs
			// to the same (still-open) component this is only a
			// partial application; the root fix-up completes it.
			out[p.v].UnionDiffWith(out[v], local[v])
			stats.EdgeUnions++
		}
	}
}
