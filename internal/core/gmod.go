package core

import (
	"sideeffect/internal/bitset"
	"sideeffect/internal/graph"
)

// GMODStats counts the bit-vector steps performed by FindGMOD, the
// quantities of Theorem 2: the union at the paper's line 17 executes
// at most once per call-graph edge, and the union at line 22 at most
// once per node.
type GMODStats struct {
	// Visits is the number of procedures visited (≤ N_C per run).
	Visits int
	// EdgeUnions counts executions of line 17 (GMOD[p] ∪= GMOD[q] ∖
	// LOCAL[q]); NodeUnions counts executions of line 22.
	EdgeUnions, NodeUnions int
	// Components is the number of SCCs closed.
	Components int
}

// BitVectorSteps returns the total bit-vector operations, the unit of
// Theorem 2's O(E_C + N_C) bound.
func (s GMODStats) BitVectorSteps() int { return s.EdgeUnions + s.NodeUnions + s.Visits }

// FindGMOD is the paper's findgmod (Figure 2): a one-pass adaptation
// of Tarjan's strongly-connected-components algorithm that evaluates
// equation (4),
//
//	GMOD(p) = IMOD+(p) ∪ ∪_{e=(p,q)} ( GMOD(q) ∖ LOCAL(q) ),
//
// during the depth-first search. Each node's set is initialized to
// IMOD+ (line 8); returning across a tree edge or examining an edge to
// an already-closed component applies equation (4) (line 17); and when
// the root of a strongly-connected component is found, every member's
// set is augmented with the root's non-local variables (line 22),
// which is correct because all members of the component reach the same
// set of variables that outlive the component (the paper's Theorem 1).
//
// roots lists the depth-first start nodes (normally just main's ID);
// any procedure not reachable from the roots is searched afterwards so
// that every procedure receives a solution, matching the paper's
// assumption that unreachable procedures were eliminated while
// remaining total on un-pruned inputs.
//
// For programs whose procedures all sit at nesting level 0 (two-level
// languages like C or Fortran — equation (8)'s premise), the result is
// the exact least solution of equation (4). For nested programs use
// SolveGMODMultiLevel, which runs this pass once per nesting level.
//
// The search is iterative (explicit frame stack) so call chains of
// hundreds of thousands of procedures cannot overflow the goroutine
// stack; the structure otherwise mirrors Figure 2 line by line.
func FindGMOD(g *graph.Graph, imodPlus []*bitset.Set, local []*bitset.Set, roots ...int) ([]*bitset.Set, GMODStats) {
	return findGMOD(g, local, func(v int) *bitset.Set {
		return imodPlus[v].Clone()
	}, roots)
}

// FindGMODScratch is FindGMOD with every per-node set drawn from the
// bitset scratch pool instead of freshly allocated. The returned sets
// are pool-owned scratch: the caller must consume them (typically
// union them into longer-lived result sets) and release every one with
// bitset.PutScratch. Used by the multi-level driver, which runs one
// findgmod pass per nesting level and discards each pass's sets after
// folding them into the result.
func FindGMODScratch(g *graph.Graph, imodPlus []*bitset.Set, local []*bitset.Set, roots ...int) ([]*bitset.Set, GMODStats) {
	return findGMOD(g, local, func(v int) *bitset.Set {
		return bitset.GetScratch(0).CopyFrom(imodPlus[v])
	}, roots)
}

// findGMOD is the shared Figure-2 search; alloc produces node v's
// initial set (a copy of IMOD+(v) under some allocation policy).
func findGMOD(g *graph.Graph, local []*bitset.Set, alloc func(int) *bitset.Set, roots []int) ([]*bitset.Set, GMODStats) {
	n := g.NumNodes()
	gmod := make([]*bitset.Set, n)
	var stats GMODStats

	dfn := make([]int, n) // 0 = unvisited
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	stack := make([]int, 0, n)
	nextdfn := 1

	type frame struct {
		v  int
		ei int
	}
	var frames []frame

	visit := func(v int) {
		dfn[v] = nextdfn
		nextdfn++
		lowlink[v] = dfn[v]
		gmod[v] = alloc(v) // line 8: initialize to IMOD+
		stack = append(stack, v)
		onStack[v] = true
		stats.Visits++
		frames = append(frames, frame{v: v})
	}

	search := func(root int) {
		if dfn[root] != 0 {
			return
		}
		visit(root)
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < len(g.Succs(v)) {
				e := g.Succs(v)[f.ei]
				f.ei++
				q := e.To
				if dfn[q] == 0 { // tree edge: descend
					visit(q)
					advanced = true
					break
				}
				if dfn[q] < dfn[v] && onStack[q] {
					// Cross or back edge within the current component.
					if dfn[q] < lowlink[v] {
						lowlink[v] = dfn[q]
					}
				} else {
					// Edge to a closed component (or a forward edge):
					// apply equation (4) — line 17.
					gmod[v].UnionDiffWith(gmod[q], local[q])
					stats.EdgeUnions++
				}
			}
			if advanced {
				continue
			}
			// v is exhausted: close component if v is a root.
			if lowlink[v] == dfn[v] { // line 19
				stats.Components++
				for { // lines 20-24
					u := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[u] = false
					if u == v {
						break
					}
					gmod[u].UnionDiffWith(gmod[v], local[v]) // line 22
					stats.NodeUnions++
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
				// Returning across the tree edge (p.v, v): v's dfn is
				// greater than p's, so Figure 2's stack test fails and
				// the else branch applies equation (4). When v belongs
				// to the same (still-open) component this is only a
				// partial application; the root fix-up completes it.
				gmod[p.v].UnionDiffWith(gmod[v], local[v])
				stats.EdgeUnions++
			}
		}
	}

	for _, r := range roots {
		search(r)
	}
	for v := 0; v < n; v++ {
		search(v)
	}
	return gmod, stats
}
