package core_test

import (
	"math/rand"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/workload"
)

// visiblePairs enumerates (procedure, variable) pairs legal for
// AddLocalEffect.
func visiblePairs(prog *ir.Program) [][2]int {
	var out [][2]int
	for _, p := range prog.Procs {
		for _, v := range prog.Vars {
			if p.Visible(v) && v.Rank() == 0 {
				out = append(out, [2]int{p.ID, v.ID})
			}
		}
	}
	return out
}

// assertSameResult compares every set of an incrementally-maintained
// result against a freshly recomputed one.
func assertSameResult(t *testing.T, tag string, inc, full *core.Result) {
	t.Helper()
	prog := inc.Prog
	for _, p := range prog.Procs {
		if !inc.IMODPlus[p.ID].Equal(full.IMODPlus[p.ID]) {
			t.Errorf("%s: IMOD+(%s): inc %v, full %v", tag, p.Name,
				names(prog, inc.IMODPlus[p.ID]), names(prog, full.IMODPlus[p.ID]))
		}
		if !inc.GMOD[p.ID].Equal(full.GMOD[p.ID]) {
			t.Errorf("%s: GMOD(%s): inc %v, full %v", tag, p.Name,
				names(prog, inc.GMOD[p.ID]), names(prog, full.GMOD[p.ID]))
		}
	}
	for n := range inc.RMOD.Node {
		if inc.RMOD.Node[n] != full.RMOD.Node[n] {
			t.Errorf("%s: RMOD node %d: inc %v, full %v", tag, n, inc.RMOD.Node[n], full.RMOD.Node[n])
		}
	}
	for _, cs := range prog.Sites {
		if !inc.DMOD[cs.ID].Equal(full.DMOD[cs.ID]) {
			t.Errorf("%s: DMOD(%s): inc %v, full %v", tag, cs,
				names(prog, inc.DMOD[cs.ID]), names(prog, full.DMOD[cs.ID]))
		}
	}
}

func TestIncrementalMatchesFullRecompute(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		cfg := workload.DefaultConfig(25, seed)
		if seed%2 == 1 {
			cfg.MaxDepth = 3
			cfg.NestFraction = 0.5
		}
		prog := workload.Random(cfg).Prune()
		res := core.Analyze(prog, core.Mod, core.Options{})
		inc := core.NewIncremental(res)
		pairs := visiblePairs(prog)
		r := rand.New(rand.NewSource(seed * 31))
		for step := 0; step < 12; step++ {
			pick := pairs[r.Intn(len(pairs))]
			p, v := prog.Procs[pick[0]], prog.Vars[pick[1]]
			if _, err := inc.AddLocalEffect(p, v); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			// Full recompute on the mutated program (AddLocalEffect
			// updated the raw IMOD facts in place).
			full := core.Analyze(prog, core.Mod, core.Options{})
			assertSameResult(t, "seed/step", inc.Result(), full)
			if t.Failed() {
				t.Fatalf("divergence at seed %d step %d (proc %s, var %s)", seed, step, p.Name, v)
			}
		}
	}
}

func TestIncrementalRMODChain(t *testing.T) {
	// Chain(n) with the seed removed: turning on the leaf's formal
	// must flip the whole chain and update main's IMOD+ through the
	// binding of g.
	prog := workload.Chain(10)
	leaf := prog.Proc("p9")
	// Remove the existing seed by building a fresh chain without it:
	// easier — use the Use-kind result, which starts with no seeds.
	res := core.Analyze(prog, core.Use, core.Options{})
	for _, p := range prog.Procs {
		for _, f := range p.Formals {
			if res.RMOD.Of(f) {
				t.Fatalf("unexpected RUSE seed on %s", f)
			}
		}
	}
	inc := core.NewIncremental(res)
	changed, err := inc.AddLocalEffect(leaf, leaf.Formals[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) == 0 {
		t.Fatal("no procedures changed")
	}
	for i := 0; i < 10; i++ {
		f := prog.Proc("p" + itoa(i)).Formals[0]
		if !res.RMOD.Of(f) {
			t.Errorf("RUSE(%s) still false after incremental update", f)
		}
	}
	// main's set now includes g through the binding.
	if !res.GMOD[prog.Main.ID].Has(prog.Var("g").ID) {
		t.Error("GUSE(main) missing g")
	}
	full := core.Analyze(prog, core.Use, core.Options{})
	assertSameResult(t, "chain", res, full)
}

func TestIncrementalNestedLocalStopsAtOwner(t *testing.T) {
	prog := workload.NestedTower(3)
	res := core.Analyze(prog, core.Mod, core.Options{})
	inc := core.NewIncremental(res)
	// n2 newly modifies n1's local v: must reach GMOD(n1) (and n2, n3
	// via cycle? no cycle here) but not GMOD(n0) or main.
	n2 := prog.Proc("n2")
	v1 := prog.Var("n1.v")
	if _, err := inc.AddLocalEffect(n2, v1); err != nil {
		t.Fatal(err)
	}
	full := core.Analyze(prog, core.Mod, core.Options{})
	assertSameResult(t, "tower", res, full)
	if res.GMOD[prog.Main.ID].Has(v1.ID) {
		t.Error("nested local leaked into GMOD(main)")
	}
	if !res.GMOD[prog.Proc("n1").ID].Has(v1.ID) {
		t.Error("GMOD(n1) missing its own modified local")
	}
}

func TestIncrementalInvisibleVarRejected(t *testing.T) {
	prog := workload.PaperExample()
	res := core.Analyze(prog, core.Mod, core.Options{})
	inc := core.NewIncremental(res)
	// bot's formal c is not visible in top.
	if _, err := inc.AddLocalEffect(prog.Proc("top"), prog.Var("bot.c")); err == nil {
		t.Error("invisible variable accepted")
	}
}

func TestIncrementalIdempotent(t *testing.T) {
	prog := workload.PaperExample()
	res := core.Analyze(prog, core.Mod, core.Options{})
	inc := core.NewIncremental(res)
	g := prog.Var("g")
	if _, err := inc.AddLocalEffect(prog.Proc("bot"), g); err != nil {
		t.Fatal(err)
	}
	changed, err := inc.AddLocalEffect(prog.Proc("bot"), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(changed) != 0 {
		t.Errorf("re-adding the same fact changed %d procedures", len(changed))
	}
}

func TestInvalidate(t *testing.T) {
	prog := workload.PaperExample()
	res := core.Analyze(prog, core.Mod, core.Options{})
	inc := core.NewIncremental(res)
	prog.Proc("bot").IMOD.Add(prog.Var("g").ID)
	inc.Invalidate()
	if !inc.Result().GMOD[prog.Main.ID].Has(prog.Var("g").ID) {
		t.Error("Invalidate did not pick up the new fact")
	}
}
