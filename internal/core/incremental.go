package core

import (
	"fmt"

	"sideeffect/internal/arena"
	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/callgraph"
	"sideeffect/internal/ir"
)

// Incremental maintains a Result under *additive* edits to the local
// facts — the editing scenario of the programming environment the
// paper was built for (one procedure is recompiled and its IMOD set
// grows; the environment wants updated summaries without re-running
// the whole-program analysis, cf. the Carroll–Ryder line of work the
// paper cites).
//
// Additions are cheap because every set in the framework is monotone
// in the local facts: a new fact can only add elements downstream. The
// updater propagates exactly the new bits backward over the call
// multi-graph (and the binding multi-graph for formals), touching only
// procedures whose solution actually changes. Deletions invalidate in
// the other direction and are handled by full recomputation
// (Invalidate), which is what production environments of the era did
// as well.
type Incremental struct {
	res *Result
	// callersOf[q] lists the call sites invoking q.
	callersOf [][]*ir.CallSite
}

// NewIncremental wraps an existing analysis result for incremental
// maintenance. The result must have been produced by Analyze (it needs
// Facts, Beta, RMOD, IMODPlus, GMOD, and DMOD populated) and is
// updated in place.
func NewIncremental(res *Result) *Incremental {
	inc := &Incremental{
		res:       res,
		callersOf: make([][]*ir.CallSite, res.Prog.NumProcs()),
	}
	for _, cs := range res.Prog.Sites {
		inc.callersOf[cs.Callee.ID] = append(inc.callersOf[cs.Callee.ID], cs)
	}
	return inc
}

// Result returns the maintained result.
func (inc *Incremental) Result() *Result { return inc.res }

// AddLocalEffect records that procedure p now directly modifies (for a
// Mod result) or uses (for a Use result) variable v, and updates every
// affected set. It returns the procedures whose GMOD sets changed.
//
// v must be visible in p. Cost is proportional to the part of the
// program whose solution changes (plus the RMOD closure when v is a
// by-reference formal).
func (inc *Incremental) AddLocalEffect(p *ir.Procedure, v *ir.Variable) ([]*ir.Procedure, error) {
	res := inc.res
	prog := res.Prog
	if !p.Visible(v) {
		return nil, fmt.Errorf("core: incremental: %s is not visible in %s", v, p.Name)
	}
	// Update the stored raw fact on the procedure (so a later full
	// re-analysis agrees) and the extended facts up the nesting chain.
	if res.Kind == Mod {
		p.IMOD.Add(v.ID)
	} else {
		p.IUSE.Add(v.ID)
	}
	for q := p; q != nil; q = q.Parent {
		res.Facts.I[q.ID].Add(v.ID)
		if q.Parent == nil || res.Facts.Local[q.ID].Has(v.ID) {
			break
		}
	}

	// If v is a by-reference formal that was not previously affected,
	// the RMOD solution may grow: every β node that reaches v's node
	// becomes true, and each newly-true formal adds its bound actuals
	// to the callers' IMOD+.
	newPlus := make([]*bitset.Set, prog.NumProcs()) // deltas to IMOD+
	delta := func(pid int) *bitset.Set {
		if newPlus[pid] == nil {
			newPlus[pid] = bitset.NewSparse() // deltas are typically tiny
		}
		return newPlus[pid]
	}
	delta(p.ID).Add(v.ID)

	if n := res.Beta.NodeOf[v.ID]; n >= 0 && !res.RMOD.Node[n] {
		// Reverse reachability on β from n over still-false nodes.
		stack := []int{n}
		res.RMOD.Node[n] = true
		var turned []int
		turned = append(turned, n)
		for len(stack) > 0 {
			m := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range res.Beta.G.Preds(m) {
				if !res.RMOD.Node[e.From] {
					res.RMOD.Node[e.From] = true
					turned = append(turned, e.From)
					stack = append(stack, e.From)
				}
			}
		}
		// Newly-true formals: their bound actuals join the callers'
		// IMOD+ deltas (equation 5).
		turnedSet := make(map[int]bool, len(turned))
		for _, m := range turned {
			turnedSet[m] = true
		}
		for _, cs := range prog.Sites {
			for i, a := range cs.Args {
				if a.Mode != ir.FormalRef || a.Var == nil {
					continue
				}
				fn := res.Beta.NodeOf[cs.Callee.Formals[i].ID]
				if fn >= 0 && turnedSet[fn] {
					delta(cs.Caller.ID).Add(a.Var.ID)
				}
			}
		}
	}

	// Fold deltas into IMOD+ (with the nested fold) and then propagate
	// through GMOD with a worklist that moves only the new bits.
	maxL := prog.MaxLevel()
	if maxL > 0 {
		buckets := make([][]*ir.Procedure, maxL+1)
		for _, q := range prog.Procs {
			buckets[q.Level] = append(buckets[q.Level], q)
		}
		for lvl := maxL; lvl > 0; lvl-- {
			for _, q := range buckets[lvl] {
				if newPlus[q.ID] == nil {
					continue
				}
				delta(q.Parent.ID).UnionDiffWith(newPlus[q.ID], res.Facts.Local[q.ID])
			}
		}
	}

	changedSet := map[int]bool{}
	queue := []int{}
	for pid, d := range newPlus {
		if d == nil || d.Empty() {
			continue
		}
		res.IMODPlus[pid].UnionWith(d)
		if res.GMOD[pid].UnionInPlaceCount(d) > 0 {
			changedSet[pid] = true
			queue = append(queue, pid)
		}
	}
	// Backward propagation of new GMOD bits along call edges: a
	// worklist on equation (4) seeded with only the changed
	// procedures. Two filters apply per edge, matching the multi-level
	// semantics: the callee's LOCAL set, and the activation rule that
	// a class-i variable cannot survive an edge whose callee sits at a
	// level shallower than i (the call would create a fresh
	// activation).
	inQ := make([]bool, prog.NumProcs())
	wl := append([]int(nil), queue...)
	for _, pid := range wl {
		inQ[pid] = true
	}
	classOK := func(v *ir.Variable, calleeLevel int) bool {
		return v.ScopeLevel() <= calleeLevel
	}
	for len(wl) > 0 {
		qid := wl[0]
		wl = wl[1:]
		inQ[qid] = false
		for _, cs := range inc.callersOf[qid] {
			pid := cs.Caller.ID
			// new = GMOD(q) ∖ LOCAL(q), class-filtered, minus what the
			// caller already has. The temporary is pooled scratch —
			// this loop runs once per affected call edge and used to
			// be the updater's dominant allocation site.
			add := bitset.GetScratch(0).CopyFrom(res.GMOD[qid])
			add.DifferenceWith(res.Facts.Local[qid])
			add.DifferenceWith(res.GMOD[pid])
			if add.Empty() {
				bitset.PutScratch(add)
				continue
			}
			changed := false
			add.ForEach(func(id int) {
				if classOK(prog.Vars[id], cs.Callee.Level) {
					res.GMOD[pid].Add(id)
					changed = true
				}
			})
			bitset.PutScratch(add)
			if changed {
				changedSet[pid] = true
				if !inQ[pid] {
					inQ[pid] = true
					wl = append(wl, pid)
				}
			}
		}
	}
	// Refresh DMOD. Recomputing one row is a single union plus arity
	// work, and RMOD growth can affect sites of unchanged callees, so
	// refresh every row (still linear; a production environment would
	// index sites by formal to narrow this further).
	res.DMOD = ComputeDMOD(prog, res.RMOD, res.GMOD, res.Facts)

	out := make([]*ir.Procedure, 0, len(changedSet))
	for pid := range changedSet {
		out = append(out, prog.Procs[pid])
	}
	return out, nil
}

// Invalidate recomputes the full analysis (used after non-additive
// edits such as deleting statements or call sites). The superseded
// result's arena is recycled: the updater maintains the result in
// place, so the old sets are unreachable through it once the fresh
// solution lands.
func (inc *Incremental) Invalidate() {
	old := inc.res.Arena
	*inc.res = *Analyze(inc.res.Prog, inc.res.Kind, Options{})
	arena.Put(old)
}

// Rebase re-points the maintained result at prog, a program model that
// is structurally identical to the current one — same IDs for every
// variable, procedure, and call site, as certified by ir.AdditiveDelta
// — but may carry different source positions and additional local
// facts. The solved fixpoints (RMOD, IMOD+, GMOD, DMOD) are kept
// as-is: they are pure ID-indexed sets and remain valid under the
// isomorphism. The linear auxiliary structures that hold pointers into
// the program model (binding multi-graph, call graph, caller index)
// are rebuilt from prog, which preserves β-node numbering because
// nodes are enumerated in procedure/formal declaration order.
//
// Rebase does not apply the new facts; call AddLocalEffect for each
// delta afterwards. Passing a program that is not ID-isomorphic to the
// current one corrupts the result.
func (inc *Incremental) Rebase(prog *ir.Program) {
	res := inc.res
	res.Prog = prog
	res.Facts.Prog = prog
	res.Beta = binding.Build(prog)
	res.RMOD.Beta = res.Beta
	res.CG = callgraph.Build(prog)
	inc.callersOf = make([][]*ir.CallSite, prog.NumProcs())
	for _, cs := range prog.Sites {
		inc.callersOf[cs.Callee.ID] = append(inc.callersOf[cs.Callee.ID], cs)
	}
}
