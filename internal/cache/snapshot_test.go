package cache

import (
	"reflect"
	"testing"
)

// TestSnapshotRecencyOrderAndRefs pins the checkpoint exporter's
// contract: Snapshot returns every entry most-recently-used first,
// hands the caller one reference per value, and disturbs neither the
// counters nor the eviction order.
func TestSnapshotRecencyOrderAndRefs(t *testing.T) {
	c := New[int](8)
	refs := map[int]int{}
	c.Acquire = func(v int) { refs[v]++ }
	c.Drop = func(v int) { refs[v]-- }

	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("c", 3)
	c.Get("a") // a becomes most recently used

	before := c.Stats()
	snap := c.Snapshot()
	var keys []string
	for _, kv := range snap {
		keys = append(keys, kv.Key)
	}
	if want := []string{"a", "c", "b"}; !reflect.DeepEqual(keys, want) {
		t.Errorf("Snapshot order = %v, want %v", keys, want)
	}
	// One reference per snapshotted value, on top of the cache's own
	// and the one Get handed out for a.
	if refs[1] != 3 || refs[2] != 2 || refs[3] != 2 {
		t.Errorf("refs after Snapshot = %v, want a:3 b:2 c:2", refs)
	}
	after := c.Stats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("Snapshot moved counters: %+v → %+v", before, after)
	}

	// Recency untouched: the next eviction removes b (oldest), not a.
	c2 := New[int](3)
	c2.Put("a", 1)
	c2.Put("b", 2)
	c2.Put("c", 3)
	c2.Get("a")
	c2.Snapshot()
	c2.Put("d", 4)
	if _, ok := c2.Get("b"); ok {
		t.Error("LRU victim after Snapshot was not b")
	}
	if _, ok := c2.Get("a"); !ok {
		t.Error("Snapshot disturbed recency of a")
	}
}

// TestSnapshotKeepsEvictedValueAlive pins why Snapshot references
// matter: a value evicted mid-export must stay usable until the
// exporter releases it.
func TestSnapshotKeepsEvictedValueAlive(t *testing.T) {
	alive := map[int]int{}
	c := New[int](1)
	c.Acquire = func(v int) { alive[v]++ }
	c.Drop = func(v int) { alive[v]-- }
	c.Put("a", 1)
	snap := c.Snapshot()
	c.Put("b", 2) // evicts a, dropping the cache's reference
	if alive[1] != 1 {
		t.Errorf("evicted value's snapshot reference gone: alive = %v", alive)
	}
	for range snap {
		// Exporter done: release the snapshot reference.
		alive[1]--
	}
	if alive[1] != 0 {
		t.Errorf("reference accounting off after release: %v", alive)
	}
}

// TestContainsIsInert pins Contains: membership only — no counters, no
// recency bump, no references, no validation.
func TestContainsIsInert(t *testing.T) {
	c := New[int](2)
	validated := 0
	c.Validate = func(string, int) bool { validated++; return true }
	acquired := 0
	c.Acquire = func(int) { acquired++ }

	c.Put("a", 1)
	c.Put("b", 2)
	baseAcquired := acquired
	before := c.Stats()

	if !c.Contains("a") || !c.Contains("b") || c.Contains("nope") {
		t.Error("Contains membership wrong")
	}
	if acquired != baseAcquired {
		t.Error("Contains handed out a reference")
	}
	if validated != 0 {
		t.Error("Contains ran validation")
	}
	after := c.Stats()
	if after != before {
		t.Errorf("Contains moved stats: %+v → %+v", before, after)
	}

	// No recency bump: a is still the LRU victim even after Contains(a).
	c.Contains("a")
	c.Put("c", 3)
	if c.Contains("a") {
		t.Error("Contains bumped recency; a survived eviction")
	}
}
