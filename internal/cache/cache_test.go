package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestKeyIsContentAddressed(t *testing.T) {
	if Key("a") == Key("b") {
		t.Error("different content, same key")
	}
	if Key("same") != Key("same") {
		t.Error("same content, different key")
	}
	if len(Key("")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("")))
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the oldest
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived: eviction is not least-recently-used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry c was evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// Filling far past capacity keeps exactly max entries and counts
	// every removal.
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprint("k", i), i)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1+10 {
		t.Errorf("evictions = %d, want 11", s.Evictions)
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := New[string](4)
	compute := func() (string, error) { return "v", nil }
	if _, out, _ := c.Do("k", compute); out != Miss {
		t.Errorf("first Do = %v, want miss", out)
	}
	for i := 0; i < 3; i++ {
		if _, out, _ := c.Do("k", compute); out != Hit {
			t.Errorf("repeat Do = %v, want hit", out)
		}
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("absent key found")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 2 || s.Dedups != 0 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses / 0 dedups / 1 entry", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	calls := 0
	boom := errors.New("boom")
	fail := func() (int, error) { calls++; return 0, boom }
	if _, _, err := c.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("failed compute ran %d times, want 2 (errors must not be cached)", calls)
	}
	if c.Len() != 0 {
		t.Error("error value was cached")
	}
}

// TestSingleflightCollapses is the satellite's race-enabled guarantee:
// N concurrent Do calls for one key run the computation exactly once.
func TestSingleflightCollapses(t *testing.T) {
	const n = 32
	c := New[int](4)
	var computes atomic.Int64
	var entered atomic.Int64
	compute := func() (int, error) {
		computes.Add(1)
		// Hold the flight open until every goroutine has at least
		// reached Do, so most of them dedup against this flight.
		for entered.Load() < n {
		}
		return 42, nil
	}
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			v, out, err := c.Do("k", compute)
			if err != nil {
				t.Error(err)
			}
			vals[i], outcomes[i] = v, out
		}(i)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computation ran %d times for %d concurrent requests, want 1", got, n)
	}
	misses := 0
	for i, out := range outcomes {
		if vals[i] != 42 {
			t.Errorf("request %d got %d", i, vals[i])
		}
		if out == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d leaders, want exactly 1", misses)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Dedups != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+dedups", s, n-1)
	}
}

// Unrelated keys must not serialize behind one key's computation.
func TestDoUnrelatedKeysProceed(t *testing.T) {
	c := New[int](4)
	release := make(chan struct{})
	slowStarted := make(chan struct{})
	go func() {
		c.Do("slow", func() (int, error) {
			close(slowStarted)
			<-release
			return 1, nil
		})
	}()
	<-slowStarted
	done := make(chan struct{})
	go func() {
		if _, out, _ := c.Do("fast", func() (int, error) { return 2, nil }); out != Miss {
			t.Errorf("fast Do = %v, want miss", out)
		}
		close(done)
	}()
	<-done // completes while "slow" still holds its flight
	close(release)
}
