package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyIsContentAddressed(t *testing.T) {
	if Key("a") == Key("b") {
		t.Error("different content, same key")
	}
	if Key("same") != Key("same") {
		t.Error("same content, different key")
	}
	if len(Key("")) != 64 {
		t.Errorf("key length %d, want 64 hex chars", len(Key("")))
	}
}

func TestEvictionOrderIsLRU(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // refresh a: b becomes the oldest
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b survived: eviction is not least-recently-used")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used a was evicted")
	}
	if _, ok := c.Get("c"); !ok {
		t.Error("newest entry c was evicted")
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// Filling far past capacity keeps exactly max entries and counts
	// every removal.
	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprint("k", i), i)
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
	if s := c.Stats(); s.Evictions != 1+10 {
		t.Errorf("evictions = %d, want 11", s.Evictions)
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := New[string](4)
	compute := func() (string, error) { return "v", nil }
	if _, out, _ := c.Do("k", compute); out != Miss {
		t.Errorf("first Do = %v, want miss", out)
	}
	for i := 0; i < 3; i++ {
		if _, out, _ := c.Do("k", compute); out != Hit {
			t.Errorf("repeat Do = %v, want hit", out)
		}
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("absent key found")
	}
	s := c.Stats()
	if s.Hits != 3 || s.Misses != 2 || s.Dedups != 0 || s.Entries != 1 {
		t.Errorf("stats = %+v, want 3 hits / 2 misses / 0 dedups / 1 entry", s)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	c := New[int](4)
	calls := 0
	boom := errors.New("boom")
	fail := func() (int, error) { calls++; return 0, boom }
	if _, _, err := c.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := c.Do("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Errorf("failed compute ran %d times, want 2 (errors must not be cached)", calls)
	}
	if c.Len() != 0 {
		t.Error("error value was cached")
	}
}

// TestSingleflightCollapses is the satellite's race-enabled guarantee:
// N concurrent Do calls for one key run the computation exactly once.
func TestSingleflightCollapses(t *testing.T) {
	const n = 32
	c := New[int](4)
	var computes atomic.Int64
	var entered atomic.Int64
	compute := func() (int, error) {
		computes.Add(1)
		// Hold the flight open until every goroutine has at least
		// reached Do, so most of them dedup against this flight.
		for entered.Load() < n {
		}
		return 42, nil
	}
	var wg sync.WaitGroup
	outcomes := make([]Outcome, n)
	vals := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			entered.Add(1)
			v, out, err := c.Do("k", compute)
			if err != nil {
				t.Error(err)
			}
			vals[i], outcomes[i] = v, out
		}(i)
	}
	wg.Wait()
	if got := computes.Load(); got != 1 {
		t.Fatalf("computation ran %d times for %d concurrent requests, want 1", got, n)
	}
	misses := 0
	for i, out := range outcomes {
		if vals[i] != 42 {
			t.Errorf("request %d got %d", i, vals[i])
		}
		if out == Miss {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d leaders, want exactly 1", misses)
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits+s.Dedups != n-1 {
		t.Errorf("stats = %+v, want 1 miss and %d hits+dedups", s, n-1)
	}
}

// Unrelated keys must not serialize behind one key's computation.
func TestDoUnrelatedKeysProceed(t *testing.T) {
	c := New[int](4)
	release := make(chan struct{})
	slowStarted := make(chan struct{})
	go func() {
		c.Do("slow", func() (int, error) {
			close(slowStarted)
			<-release
			return 1, nil
		})
	}()
	<-slowStarted
	done := make(chan struct{})
	go func() {
		if _, out, _ := c.Do("fast", func() (int, error) { return 2, nil }); out != Miss {
			t.Errorf("fast Do = %v, want miss", out)
		}
		close(done)
	}()
	<-done // completes while "slow" still holds its flight
	close(release)
}

func TestValidateEvictsCorruptEntries(t *testing.T) {
	corrupt := map[string]bool{}
	c := New[int](8)
	c.Validate = func(key string, val int) bool { return !corrupt[key] }

	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v before corruption", v, ok)
	}
	corrupt["a"] = true
	if _, ok := c.Get("a"); ok {
		t.Fatal("corrupt entry served by Get")
	}
	if s := c.Stats(); s.Corruptions != 1 || s.Entries != 1 {
		t.Fatalf("after corrupt Get: %+v", s)
	}
	// Do must recompute a corrupt entry, not serve it.
	corrupt["b"] = true
	v, out, err := c.Do("b", func() (int, error) { return 20, nil })
	if err != nil || v != 20 || out != Miss {
		t.Fatalf("Do over corrupt entry = %d, %v, %v", v, out, err)
	}
	corrupt["b"] = false
	if v, ok := c.Get("b"); !ok || v != 20 {
		t.Fatalf("recomputed entry not cached: %d, %v", v, ok)
	}
	if s := c.Stats(); s.Corruptions != 2 {
		t.Fatalf("Corruptions = %d, want 2", s.Corruptions)
	}
	// A nil validator (the default) never rejects.
	c.Validate = nil
	corrupt["b"] = true
	if _, ok := c.Get("b"); !ok {
		t.Fatal("nil validator rejected an entry")
	}
}

// TestRefHooks verifies the Acquire/Drop reference protocol: one
// Acquire per reference handed out (the cache's own on store, one per
// served lookup, one per dedup waiter) and one Drop per reference the
// cache lets go (evict, replace, corrupt, Clear). A consumer balancing
// each served Acquire with its own release therefore sees net zero
// once the cache is cleared.
func TestRefHooks(t *testing.T) {
	refs := make(map[int]int)
	var mu sync.Mutex
	c := New[int](2)
	c.Acquire = func(v int) { mu.Lock(); refs[v]++; mu.Unlock() }
	c.Drop = func(v int) { mu.Lock(); refs[v]--; mu.Unlock() }

	c.Put("a", 1) // cache ref: refs[1]=1
	if refs[1] != 1 {
		t.Fatalf("after Put: refs[1] = %d, want 1", refs[1])
	}
	if v, ok := c.Get("a"); !ok || v != 1 || refs[1] != 2 {
		t.Fatalf("Get hit: v=%d ok=%v refs=%d, want 1 true 2", v, ok, refs[1])
	}
	refs[1]-- // the consumer releases its Get reference
	if _, _, err := c.Do("a", func() (int, error) { t.Fatal("hit recomputed"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if refs[1] != 2 {
		t.Fatalf("Do hit: refs[1] = %d, want 2", refs[1])
	}
	refs[1]--

	// Replacement drops the old value's cache reference.
	c.Put("a", 2)
	if refs[1] != 0 || refs[2] != 1 {
		t.Fatalf("after replace: refs[1]=%d refs[2]=%d, want 0 1", refs[1], refs[2])
	}

	// LRU eviction drops the evicted value.
	c.Put("b", 3)
	c.Put("c", 4) // evicts "a" (value 2)
	if refs[2] != 0 {
		t.Fatalf("after evict: refs[2] = %d, want 0", refs[2])
	}

	// A Do miss leaves the leader holding the compute reference and the
	// cache holding its own.
	if v, out, err := c.Do("d", func() (int, error) { return 5, nil }); err != nil || v != 5 || out != Miss {
		t.Fatalf("Do miss: %d %v %v", v, out, err)
	}
	// Acquire fired once (cache); the leader's reference came from
	// compute itself, so the hook count is 1 here.
	if refs[5] != 1 {
		t.Fatalf("Do miss: refs[5] = %d, want 1 (cache only)", refs[5])
	}

	// Dedup waiters each get a reference, granted by the leader.
	block := make(chan struct{})
	started := make(chan struct{})
	done := make(chan struct{}, 2)
	go func() {
		c.Do("e", func() (int, error) { close(started); <-block; return 6, nil })
		done <- struct{}{}
	}()
	<-started
	go func() {
		c.Do("e", func() (int, error) { return -1, nil })
		done <- struct{}{}
	}()
	for c.Stats().Dedups == 0 {
		time.Sleep(time.Millisecond)
	}
	close(block)
	<-done
	<-done
	// cache ref + leader compute-ref not hook-counted + 1 waiter = 2.
	mu.Lock()
	got := refs[6]
	mu.Unlock()
	if got != 2 {
		t.Fatalf("dedup: refs[6] = %d, want 2 (cache + waiter)", got)
	}

	// Corruption rejection drops the cache reference.
	c.Validate = func(_ string, v int) bool { return v != 5 }
	if _, ok := c.Get("d"); ok {
		t.Fatal("corrupt entry served")
	}
	if refs[5] != 0 {
		t.Fatalf("after corrupt reject: refs[5] = %d, want 0", refs[5])
	}
	c.Validate = nil

	// Clear drops everything that remains.
	before := c.Len()
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Clear left %d entries", c.Len())
	}
	if before == 0 {
		t.Fatal("nothing was cached before Clear")
	}
	for v, n := range refs {
		want := 0
		if v == 6 {
			want = 1 // the waiter's reference, never released in this test
		}
		if n != want {
			t.Errorf("after Clear: refs[%d] = %d, want %d", v, n, want)
		}
	}
}
