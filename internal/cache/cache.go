// Package cache provides the serving layer's content-addressed result
// cache: a bounded LRU keyed by source hash, with singleflight
// deduplication so that N concurrent requests for the same key trigger
// exactly one computation while the other N-1 wait for its result.
//
// The cache is value-agnostic (the server stores analysis results, but
// nothing here knows what an analysis is) and safe for concurrent use.
// Failed computations are never cached: the error is delivered to the
// leader and every waiter of that flight, and the next request retries.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key returns the content address of a source text: the hex SHA-256 of
// its bytes. Two requests carrying the same program text — whitespace
// and all — share one cache entry.
func Key(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Outcome classifies how a Do call was served.
type Outcome int

// Do outcomes.
const (
	// Miss: the value was absent and this call computed it.
	Miss Outcome = iota
	// Hit: the value was served from the cache.
	Hit
	// Dedup: another call was already computing the value; this call
	// waited for it instead of recomputing.
	Dedup
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	default:
		return "miss"
	}
}

// Stats is a snapshot of the cache counters. Hits counts Get/Do calls
// served from the map, Misses counts calls that had to compute (or, in
// Get's case, found nothing), Dedups counts Do calls collapsed into
// another flight, and Evictions counts LRU removals.
type Stats struct {
	Hits, Misses, Dedups, Evictions int64
	Entries                         int
}

// Cache is a bounded LRU of computed values keyed by content address.
type Cache[V any] struct {
	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight[V]
	stats    Stats
}

type entry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New creates a cache holding at most maxEntries values. Requests for
// maxEntries < 1 are clamped to 1 — a cache that cannot hold anything
// would turn every Do into a miss while still paying for bookkeeping.
func New[V any](maxEntries int) *Cache[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache[V]{
		max:      maxEntries,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// Get returns the cached value for key, marking it most recently used.
// The lookup is counted as a hit or miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put stores a value, evicting the least recently used entry if the
// cache is full. Storing an existing key refreshes its value and
// recency. Put does not touch the hit/miss counters (the caller
// already accounted for the lookup that preceded it).
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// put inserts under c.mu.
func (c *Cache[V]) put(key string, val V) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
		c.stats.Evictions++
	}
}

// Do returns the value for key, computing it with compute on a miss.
// Concurrent Do calls for the same key are collapsed: one caller (the
// leader) runs compute, the rest block until it finishes and share its
// value or error. Errors are not cached — a later Do retries. compute
// runs without the cache lock held, so unrelated keys proceed in
// parallel.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		val := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return val, Hit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.Dedups++
		c.mu.Unlock()
		<-fl.done
		return fl.val, Dedup, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.val, fl.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.put(key, fl.val)
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, Miss, fl.err
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
