// Package cache provides the serving layer's content-addressed result
// cache: a bounded LRU keyed by source hash, with singleflight
// deduplication so that N concurrent requests for the same key trigger
// exactly one computation while the other N-1 wait for its result.
//
// The cache is value-agnostic (the server stores analysis results, but
// nothing here knows what an analysis is) and safe for concurrent use.
// Failed computations are never cached: the error is delivered to the
// leader and every waiter of that flight, and the next request retries.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key returns the content address of a source text: the hex SHA-256 of
// its bytes. Two requests carrying the same program text — whitespace
// and all — share one cache entry.
func Key(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:])
}

// Outcome classifies how a Do call was served.
type Outcome int

// Do outcomes.
const (
	// Miss: the value was absent and this call computed it.
	Miss Outcome = iota
	// Hit: the value was served from the cache.
	Hit
	// Dedup: another call was already computing the value; this call
	// waited for it instead of recomputing.
	Dedup
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Dedup:
		return "dedup"
	default:
		return "miss"
	}
}

// Stats is a snapshot of the cache counters. Hits counts Get/Do calls
// served from the map, Misses counts calls that had to compute (or, in
// Get's case, found nothing), Dedups counts Do calls collapsed into
// another flight, and Evictions counts LRU removals.
type Stats struct {
	Hits, Misses, Dedups, Evictions int64
	// Corruptions counts entries the validation hook rejected: each was
	// evicted on lookup and the access degraded to a miss, so a corrupt
	// entry is recomputed rather than served.
	Corruptions int64
	Entries     int
}

// Cache is a bounded LRU of computed values keyed by content address.
type Cache[V any] struct {
	// Validate, when non-nil, is consulted on every lookup that would
	// serve a stored value: if it reports false the entry is evicted,
	// counted in Stats.Corruptions, and the access proceeds as a miss
	// (Do recomputes; Get reports absence). It guards the serving layer
	// against corrupted cached results — detection is cheap (an
	// integrity hash check) next to serving a wrong answer. Set it
	// before the cache is shared between goroutines; it is called with
	// the cache lock held and must not call back into the cache.
	Validate func(key string, val V) bool

	// Acquire and Drop, when non-nil, let the caller reference-count
	// stored values so resources (pooled arenas) can be reclaimed the
	// moment the last user lets go. Acquire is called once for every
	// reference handed out: to the cache itself when a value is stored,
	// and to each caller a lookup serves (Get hits, Do hits, and Do
	// dedup waiters — the Do leader keeps the reference its compute
	// callback created). Drop is called when the cache releases its own
	// reference: eviction, validation rejection, and replacement by Put.
	// Both run with the cache lock held and must not call back into the
	// cache. Set them before the cache is shared between goroutines.
	Acquire func(val V)
	Drop    func(val V)

	mu       sync.Mutex
	max      int
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
	inflight map[string]*flight[V]
	stats    Stats
}

type entry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done    chan struct{}
	waiters int // dedup callers sharing this flight, counted under mu
	val     V
	err     error
}

// New creates a cache holding at most maxEntries values. Requests for
// maxEntries < 1 are clamped to 1 — a cache that cannot hold anything
// would turn every Do into a miss while still paying for bookkeeping.
func New[V any](maxEntries int) *Cache[V] {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache[V]{
		max:      maxEntries,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
		inflight: make(map[string]*flight[V]),
	}
}

// Get returns the cached value for key, marking it most recently used.
// The lookup is counted as a hit or miss.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		if c.valid(el) {
			c.stats.Hits++
			c.ll.MoveToFront(el)
			val := el.Value.(*entry[V]).val
			if c.Acquire != nil {
				c.Acquire(val)
			}
			return val, true
		}
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// valid checks el against the validation hook under c.mu, evicting it
// on rejection.
func (c *Cache[V]) valid(el *list.Element) bool {
	e := el.Value.(*entry[V])
	if c.Validate == nil || c.Validate(e.key, e.val) {
		return true
	}
	c.stats.Corruptions++
	c.ll.Remove(el)
	delete(c.entries, e.key)
	if c.Drop != nil {
		c.Drop(e.val)
	}
	return false
}

// Put stores a value, evicting the least recently used entry if the
// cache is full. Storing an existing key refreshes its value and
// recency. Put does not touch the hit/miss counters (the caller
// already accounted for the lookup that preceded it).
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// put inserts under c.mu, taking the cache's own reference on val and
// dropping the reference to whatever it displaces.
func (c *Cache[V]) put(key string, val V) {
	if c.Acquire != nil {
		c.Acquire(val)
	}
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*entry[V])
		old := e.val
		e.val = val
		c.ll.MoveToFront(el)
		if c.Drop != nil {
			c.Drop(old)
		}
		return
	}
	c.entries[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		e := oldest.Value.(*entry[V])
		delete(c.entries, e.key)
		c.stats.Evictions++
		if c.Drop != nil {
			c.Drop(e.val)
		}
	}
}

// Do returns the value for key, computing it with compute on a miss.
// Concurrent Do calls for the same key are collapsed: one caller (the
// leader) runs compute, the rest block until it finishes and share its
// value or error. Errors are not cached — a later Do retries. compute
// runs without the cache lock held, so unrelated keys proceed in
// parallel.
func (c *Cache[V]) Do(key string, compute func() (V, error)) (V, Outcome, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok && c.valid(el) {
		c.stats.Hits++
		c.ll.MoveToFront(el)
		val := el.Value.(*entry[V]).val
		if c.Acquire != nil {
			c.Acquire(val)
		}
		c.mu.Unlock()
		return val, Hit, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.stats.Dedups++
		fl.waiters++
		c.mu.Unlock()
		<-fl.done
		return fl.val, Dedup, fl.err
	}
	fl := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = fl
	c.stats.Misses++
	c.mu.Unlock()

	fl.val, fl.err = compute()

	c.mu.Lock()
	delete(c.inflight, key)
	if fl.err == nil {
		c.put(key, fl.val)
		// Waiters registered while the flight was inflight; none can
		// join after its deletion above, so handing each its reference
		// here (under the same lock) cannot race a late arrival. The
		// leader keeps the reference compute created. On error no
		// references exist and waiters must not touch the value.
		if c.Acquire != nil {
			for i := 0; i < fl.waiters; i++ {
				c.Acquire(fl.val)
			}
		}
	}
	c.mu.Unlock()
	close(fl.done)
	return fl.val, Miss, fl.err
}

// Clear drops every cached entry (counting them as evictions), leaving
// in-flight computations untouched. With a Drop hook installed this
// releases the cache's reference to each value, so a quiesced server
// can return pooled resources held by memoized results.
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[V])
		delete(c.entries, e.key)
		c.stats.Evictions++
		if c.Drop != nil {
			c.Drop(e.val)
		}
	}
	c.ll.Init()
}

// KV pairs one stored key with its value, as returned by Snapshot.
type KV[V any] struct {
	Key string
	Val V
}

// Snapshot returns every cached entry in recency order (most recently
// used first), without touching the hit/miss counters or recency. With
// an Acquire hook installed, the caller receives one reference per
// returned value and must release each when done — the checkpoint
// exporter uses this so entries evicted mid-export stay readable.
func (c *Cache[V]) Snapshot() []KV[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]KV[V], 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[V])
		if c.Acquire != nil {
			c.Acquire(e.val)
		}
		out = append(out, KV[V]{Key: e.key, Val: e.val})
	}
	return out
}

// Contains reports whether key is currently stored, without counting
// the lookup, bumping recency, validating, or handing out a
// reference. The watch-mode indexer uses it to classify already-known
// content (renames, restarts) as warm without disturbing the LRU.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Stats returns a snapshot of the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Entries = c.ll.Len()
	return s
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
