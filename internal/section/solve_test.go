package section

import (
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/lang/sem"
	"sideeffect/internal/workload"
)

func solve(t *testing.T, prog *ir.Program, kind core.Kind) (*core.Result, *Result) {
	t.Helper()
	modRes := core.Analyze(prog, core.Mod, core.Options{})
	return modRes, Analyze(modRes, kind)
}

func fromSource(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := sem.AnalyzeSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestColumnSummary(t *testing.T) {
	prog := fromSource(t, `
program colupdate;
global A[10, 10], n, j;
proc setcol(ref c[*], val m)
  var i;
begin
  for i := 1 to m do c[i] := 0 end
end;
begin
  call setcol(A[*, j], n)
end.
`)
	_, res := solve(t, prog, core.Mod)
	// rsd(setcol.c) = c(*): the subscript i is locally modified.
	c := res.FormalOf(prog.Var("setcol.c"))
	if c.IsNone() || !c.IsWhole() || c.Rank() != 1 {
		t.Fatalf("rsd(c) = %+v, want c(*)", c)
	}
	// The call binds c to column j of A: the summary for A must be the
	// single column A(*, j), NOT the whole array.
	a := prog.Var("A")
	got, ok := res.Global[prog.Main.ID][a.ID]
	if !ok {
		t.Fatal("no section recorded for A at main")
	}
	want := NewRSD(StarAtom, SymAtom(prog.Var("j")))
	if !got.Equal(want) {
		t.Errorf("section of A = %s, want A(*, j)", got.Format("A", prog.Vars))
	}
	// AtCall agrees.
	atcall := res.AtCall(prog.Sites[0])
	if !atcall[a.ID].Equal(want) {
		t.Errorf("AtCall = %s", atcall[a.ID].Format("A", prog.Vars))
	}
}

func TestRowVsWholeArray(t *testing.T) {
	prog := fromSource(t, `
program rows;
global A[8, 8], k;
proc setrow(ref r[*], val m) begin r[m] := 1 end;
proc smash(ref M[*, *])
  var i;
begin
  i := 2;
  M[i, i] := 0
end;
begin
  call setrow(A[k, *], 3);
  call smash(A)
end.
`)
	_, res := solve(t, prog, core.Mod)
	// setrow touches r(m) — symbolic element; mapped through A[k, *]
	// it is the element A(k, 3→m? m := actual 3 constant-shaped... m
	// is a val formal whose actual is the literal 3; literal actuals
	// are not recorded as variables, so translation widens to ⋆:
	// A(k, *), still only row k.
	aID := prog.Var("A").ID
	siteRow := prog.Sites[0]
	rowSec := res.AtCall(siteRow)[aID]
	if rowSec.Dims[0] != SymAtom(prog.Var("k")) {
		t.Errorf("row call section = %s, want row k", rowSec.Format("A", prog.Vars))
	}
	// smash writes M[i,i] with i locally modified → whole array.
	siteSmash := prog.Sites[1]
	smashSec := res.AtCall(siteSmash)[aID]
	if !smashSec.IsWhole() {
		t.Errorf("smash section = %s, want A(*, *)", smashSec.Format("A", prog.Vars))
	}
	// GMOD-level classical analysis would say "A modified" for both —
	// the section result strictly refines the first call.
}

func TestDivideConquerCycle(t *testing.T) {
	prog := workload.DivideConquer()
	_, res := solve(t, prog, core.Mod)
	// rowop modifies row(j).
	rowRSD := res.FormalOf(prog.Var("rowop.row"))
	want := NewRSD(SymAtom(prog.Var("rowop.j")))
	if !rowRSD.Equal(want) {
		t.Errorf("rsd(row) = %+v, want row(j)", rowRSD)
	}
	// split's M: element (lo, lo) through the row binding; the
	// recursive self-binding is the identity (g_p(x) ⊓ x = x), so the
	// summary must stay the single element, not widen.
	lo := prog.Var("split.lo")
	mRSD := res.FormalOf(prog.Var("split.M"))
	wantM := NewRSD(SymAtom(lo), SymAtom(lo))
	if !mRSD.Equal(wantM) {
		t.Errorf("rsd(M) = %+v, want M(lo, lo)", mRSD)
	}
	// At main: A(k, k).
	k := prog.Var("k")
	aSec := res.Global[prog.Main.ID][prog.Var("A").ID]
	if !aSec.Equal(NewRSD(SymAtom(k), SymAtom(k))) {
		t.Errorf("A section at main = %s, want A(k, k)", aSec.Format("A", prog.Vars))
	}
}

func TestUseSections(t *testing.T) {
	prog := fromSource(t, `
program uses;
global A[10], j, s;
proc sum(ref v[*], val i) begin s := s + v[i] end;
begin
  call sum(A, j)
end.
`)
	_, res := solve(t, prog, core.Use)
	// USE side: sum reads v(i); mapped through the whole-array binding
	// with actual j for i → A(j).
	got := res.Global[prog.Main.ID][prog.Var("A").ID]
	want := NewRSD(SymAtom(prog.Var("j")))
	if !got.Equal(want) {
		t.Errorf("use section = %s, want A(j)", got.Format("A", prog.Vars))
	}
	// MOD side: v is never written.
	_, modSide := solve(t, prog, core.Mod)
	if !modSide.FormalOf(prog.Var("sum.v")).IsNone() {
		t.Error("MOD section of read-only formal should be ⊤")
	}
}

func TestSubscriptModifiedByCalleeWidens(t *testing.T) {
	// j is passed by reference to a procedure that modifies it, so j
	// is in GMOD(main) and cannot serve as a symbolic coordinate of
	// main's access.
	prog := fromSource(t, `
program widen;
global A[10], j;
proc bump(ref x) begin x := x + 1 end;
proc touch(ref v[*], val i) begin v[i] := 0 end;
begin
  call bump(j);
  call touch(A, j)
end.
`)
	_, res := solve(t, prog, core.Mod)
	got := res.Global[prog.Main.ID][prog.Var("A").ID]
	if !got.IsWhole() {
		t.Errorf("section = %s, want A(*) (j is not invariant)", got.Format("A", prog.Vars))
	}
}

func TestCalleeLocalSymbolWidens(t *testing.T) {
	prog := fromSource(t, `
program loc;
global A[10];
proc touch(ref v[*])
  var i;
begin
  i := 3;
  v[i] := 0
end;
begin call touch(A) end.
`)
	_, res := solve(t, prog, core.Mod)
	got := res.Global[prog.Main.ID][prog.Var("A").ID]
	if !got.IsWhole() {
		t.Errorf("section = %s, want A(*)", got.Format("A", prog.Vars))
	}
}

func TestConstantSections(t *testing.T) {
	prog := fromSource(t, `
program consts;
global A[10, 10];
proc first(ref M[*, *]) begin M[1, 1] := 0 end;
proc second(ref M[*, *]) begin M[2, 2] := 0 end;
begin
  call first(A);
  call second(A)
end.
`)
	_, res := solve(t, prog, core.Mod)
	s1 := res.AtCall(prog.Sites[0])[prog.Var("A").ID]
	s2 := res.AtCall(prog.Sites[1])[prog.Var("A").ID]
	if !s1.Equal(NewRSD(ConstAtom(1), ConstAtom(1))) {
		t.Errorf("s1 = %s", s1.Format("A", prog.Vars))
	}
	if MayIntersect(s1, s2) {
		t.Error("A(1,1) and A(2,2) must be disjoint")
	}
	// The merged per-procedure summary at main is the meet: A(*, *).
	merged := res.Global[prog.Main.ID][prog.Var("A").ID]
	if !merged.IsWhole() {
		t.Errorf("merged = %s", merged.Format("A", prog.Vars))
	}
}

func TestParallelizableLoopPattern(t *testing.T) {
	// The motivating pattern of Section 6: a loop calling a procedure
	// that updates only column i — iterations touch disjoint columns.
	prog := fromSource(t, `
program par;
global A[100, 100], n, i;
proc colop(ref c[*], val m)
  var r;
begin
  for r := 1 to m do c[r] := c[r] + 1 end
end;
begin
  for i := 1 to n do
    call colop(A[*, i], n)
  end
end.
`)
	_, res := solve(t, prog, core.Mod)
	cs := prog.Sites[0]
	sec := res.AtCall(cs)[prog.Var("A").ID]
	// i is modified by main (the loop), so as a *summary for all of
	// main* the column subscript widens; but at the call site, the
	// iteration-local view keeps i: this is exactly the refinement the
	// parallelizer needs, computed against the callee-side summary.
	// AtCall uses main's invariance, so expect A(*, *) here...
	if sec.Rank() != 2 {
		t.Fatalf("rank = %d", sec.Rank())
	}
	// ...and the iteration-local section (treating the loop index as
	// fixed within one iteration) keeps the column: reconstruct it via
	// FormalOf + manual inspection.
	c := res.FormalOf(prog.Var("colop.c"))
	if !c.IsWhole() || c.Rank() != 1 {
		t.Fatalf("rsd(c) = %+v", c)
	}
	// With rsd(c) = c(*) and the actual A[*, i], one iteration touches
	// column i only; across iterations the sections are disjoint.
	it1 := NewRSD(StarAtom, SymAtom(prog.Var("i")))
	if !DisjointAcrossIterations(it1, it1, prog.Var("i")) {
		t.Error("column-i updates across iterations must be disjoint")
	}
}

func TestStatsCounted(t *testing.T) {
	prog := workload.DivideConquer()
	_, res := solve(t, prog, core.Mod)
	if res.Stats.Meets == 0 || res.Stats.MapApps == 0 {
		t.Errorf("stats not counted: %+v", res.Stats)
	}
}

func TestAnalyzeRequiresModResult(t *testing.T) {
	prog := workload.DivideConquer()
	useRes := core.Analyze(prog, core.Use, core.Options{})
	defer func() {
		if recover() == nil {
			t.Error("Analyze accepted a Use-kind core result")
		}
	}()
	Analyze(useRes, core.Mod)
}
