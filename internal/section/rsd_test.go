package section

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sideeffect/internal/ir"
)

// figure3 builds the paper's Figure 3 lattice instance: symbolic
// parameters I, J, K, L over a rank-2 array A.
func figure3(t *testing.T) (vars map[string]*ir.Variable, mk func(a, b string) RSD) {
	t.Helper()
	b := ir.NewBuilder("fig3")
	vars = map[string]*ir.Variable{}
	for _, n := range []string{"I", "J", "K", "L"} {
		vars[n] = b.Global(n)
	}
	atom := func(s string) Atom {
		if s == "*" {
			return StarAtom
		}
		return SymAtom(vars[s])
	}
	mk = func(a, b string) RSD { return NewRSD(atom(a), atom(b)) }
	return vars, mk
}

// TestFigure3Lattice reproduces the meet structure of the paper's
// Figure 3: single elements meet into rows/columns, rows and columns
// meet into the whole array.
func TestFigure3Lattice(t *testing.T) {
	_, mk := figure3(t)
	aIJ := mk("I", "J")
	aKJ := mk("K", "J")
	aKL := mk("K", "L")
	colJ := mk("*", "J")
	rowK := mk("K", "*")
	whole := mk("*", "*")

	cases := []struct {
		a, b, want RSD
		desc       string
	}{
		{aIJ, aKJ, colJ, "A(I,J) ⊓ A(K,J) = A(*,J)"},
		{aKJ, aKL, rowK, "A(K,J) ⊓ A(K,L) = A(K,*)"},
		{aIJ, aKL, whole, "A(I,J) ⊓ A(K,L) = A(*,*)"},
		{colJ, rowK, whole, "A(*,J) ⊓ A(K,*) = A(*,*)"},
		{aKJ, colJ, colJ, "A(K,J) ⊓ A(*,J) = A(*,J)"},
		{aKJ, rowK, rowK, "A(K,J) ⊓ A(K,*) = A(K,*)"},
		{whole, aIJ, whole, "A(*,*) ⊓ A(I,J) = A(*,*)"},
	}
	for _, c := range cases {
		if got := Meet(c.a, c.b); !got.Equal(c.want) {
			t.Errorf("%s: got %+v", c.desc, got)
		}
		if got := Meet(c.b, c.a); !got.Equal(c.want) {
			t.Errorf("%s (flipped): got %+v", c.desc, got)
		}
	}
	// Order relations of the figure.
	for _, pair := range [][2]RSD{{colJ, aIJ}, {colJ, aKJ}, {rowK, aKJ}, {rowK, aKL}, {whole, colJ}, {whole, rowK}} {
		if !Leq(pair[0], pair[1]) {
			t.Errorf("expected %+v ⊑ %+v", pair[0], pair[1])
		}
		if Leq(pair[1], pair[0]) {
			t.Errorf("unexpected %+v ⊑ %+v", pair[1], pair[0])
		}
	}
	if !whole.IsWhole() || aIJ.IsWhole() {
		t.Error("IsWhole misclassifies")
	}
}

func TestUnaccessedIdentity(t *testing.T) {
	_, mk := figure3(t)
	x := mk("K", "*")
	if !Meet(Unaccessed(), x).Equal(x) || !Meet(x, Unaccessed()).Equal(x) {
		t.Error("⊤ is not the meet identity")
	}
	if !Meet(Unaccessed(), Unaccessed()).IsNone() {
		t.Error("⊤ ⊓ ⊤ ≠ ⊤")
	}
	if Unaccessed().IsWhole() {
		t.Error("⊤ reported as whole")
	}
}

func TestMeetRankMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("meet of different ranks did not panic")
		}
	}()
	Meet(Whole(1), Whole(2))
}

func TestMayIntersect(t *testing.T) {
	_, mk := figure3(t)
	if !MayIntersect(mk("K", "J"), mk("K", "*")) {
		t.Error("row and element in the row must intersect")
	}
	if !MayIntersect(mk("I", "J"), mk("K", "J")) {
		t.Error("distinct symbols may be equal: must intersect")
	}
	if MayIntersect(NewRSD(ConstAtom(1), StarAtom), NewRSD(ConstAtom(2), StarAtom)) {
		t.Error("distinct constant rows cannot intersect")
	}
	if !MayIntersect(NewRSD(ConstAtom(1), StarAtom), NewRSD(StarAtom, ConstAtom(5))) {
		t.Error("row 1 and column 5 intersect at (1,5)")
	}
	if MayIntersect(Unaccessed(), Whole(2)) {
		t.Error("⊤ intersects nothing")
	}
}

func TestDisjointAcrossIterations(t *testing.T) {
	vars, mk := figure3(t)
	i := vars["I"]
	rowI := mk("I", "*")
	if !DisjointAcrossIterations(rowI, rowI, i) {
		t.Error("row I vs row I across iterations of i must be disjoint")
	}
	colJ := mk("*", "J")
	if DisjointAcrossIterations(colJ, colJ, i) {
		t.Error("column J does not vary with i: not disjoint")
	}
	if DisjointAcrossIterations(Whole(2), Whole(2), i) {
		t.Error("whole array overlaps itself")
	}
	if !DisjointAcrossIterations(Unaccessed(), Whole(2), i) {
		t.Error("⊤ is disjoint from everything")
	}
	// Mixed element: A(I, J) vs A(I, L) — dimension 0 pins the loop
	// variable in both → disjoint across iterations.
	if !DisjointAcrossIterations(mk("I", "J"), mk("I", "L"), i) {
		t.Error("elements in row I across iterations must be disjoint")
	}
}

func TestFormat(t *testing.T) {
	b := ir.NewBuilder("f")
	j := b.Global("j")
	prog := b.MustFinish()
	r := NewRSD(StarAtom, SymAtom(j))
	if got := r.Format("A", prog.Vars); got != "A(*, j)" {
		t.Errorf("Format = %q", got)
	}
	if got := NewRSD(ConstAtom(3)).Format("B", prog.Vars); got != "B(3)" {
		t.Errorf("Format = %q", got)
	}
	if got := Unaccessed().Format("C", prog.Vars); got != "C(⊤)" {
		t.Errorf("Format = %q", got)
	}
}

// randomRSD generates a random rank-2 descriptor over a small symbol
// universe.
func randomRSD(r *rand.Rand) RSD {
	if r.Intn(8) == 0 {
		return Unaccessed()
	}
	mk := func() Atom {
		switch r.Intn(3) {
		case 0:
			return StarAtom
		case 1:
			return ConstAtom(r.Intn(3))
		default:
			return Atom{Kind: Sym, V: r.Intn(3)}
		}
	}
	return NewRSD(mk(), mk())
}

func TestQuickLatticeLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, c := randomRSD(r), randomRSD(r), randomRSD(r)
		if !Meet(a, b).Equal(Meet(b, a)) {
			return false
		}
		if !Meet(Meet(a, b), c).Equal(Meet(a, Meet(b, c))) {
			return false
		}
		if !Meet(a, a).Equal(a) {
			return false
		}
		// Meet is a lower bound.
		if !Leq(Meet(a, b), a) || !Leq(Meet(a, b), b) {
			return false
		}
		// Whole is the bottom, ⊤ the top.
		if !a.IsNone() {
			if !Leq(Whole(2), a) || !Leq(a, Unaccessed()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMeetWidensIntersection(t *testing.T) {
	// If x intersects a then x intersects Meet(a, b): meets only widen
	// regions.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b, x := randomRSD(r), randomRSD(r), randomRSD(r)
		if MayIntersect(x, a) && !MayIntersect(x, Meet(a, b)) {
			return false
		}
		if !MayIntersect(a, b) != !MayIntersect(b, a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
