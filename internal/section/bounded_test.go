package section

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sideeffect/internal/core"
)

func TestBoundedMeetAtoms(t *testing.T) {
	cases := []struct {
		a, b, want Atom
	}{
		{ConstAtom(1), ConstAtom(3), RangeAtom(1, 3)},
		{ConstAtom(3), ConstAtom(1), RangeAtom(1, 3)},
		{ConstAtom(2), ConstAtom(2), ConstAtom(2)},
		{RangeAtom(1, 3), ConstAtom(7), RangeAtom(1, 7)},
		{RangeAtom(1, 3), RangeAtom(2, 9), RangeAtom(1, 9)},
		{ConstAtom(1), StarAtom, StarAtom},
		{RangeAtom(1, 3), StarAtom, StarAtom},
		{Atom{Kind: Sym, V: 0}, ConstAtom(1), StarAtom},
		{Atom{Kind: Sym, V: 0}, Atom{Kind: Sym, V: 0}, Atom{Kind: Sym, V: 0}},
		{Atom{Kind: Sym, V: 0}, Atom{Kind: Sym, V: 1}, StarAtom},
	}
	for _, c := range cases {
		if got := MeetAtomIn(BoundedSections, c.a, c.b); got != c.want {
			t.Errorf("bounded %v ⊓ %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	// The simple lattice never produces ranges.
	if got := MeetAtomIn(SimpleSections, ConstAtom(1), ConstAtom(3)); got != StarAtom {
		t.Errorf("simple 1 ⊓ 3 = %v, want ⋆", got)
	}
}

func TestRangeAtomNormalizes(t *testing.T) {
	if RangeAtom(5, 2) != RangeAtom(2, 5) {
		t.Error("RangeAtom does not normalize order")
	}
	if RangeAtom(4, 4) != ConstAtom(4) {
		t.Error("degenerate range should collapse to a constant")
	}
}

func TestRangeIntersection(t *testing.T) {
	a := NewRSD(RangeAtom(1, 3), StarAtom)
	b := NewRSD(RangeAtom(7, 9), StarAtom)
	c := NewRSD(RangeAtom(3, 7), StarAtom)
	if MayIntersect(a, b) {
		t.Error("1:3 and 7:9 must be disjoint")
	}
	if !MayIntersect(a, c) || !MayIntersect(b, c) {
		t.Error("3:7 touches both")
	}
	if MayIntersect(NewRSD(ConstAtom(5)), NewRSD(RangeAtom(1, 3))) {
		t.Error("5 outside 1:3")
	}
	if !MayIntersect(NewRSD(ConstAtom(2)), NewRSD(RangeAtom(1, 3))) {
		t.Error("2 inside 1:3")
	}
}

func TestRangeFormat(t *testing.T) {
	r := NewRSD(RangeAtom(1, 3), StarAtom)
	if got := r.Format("A", nil); got != "A(1:3, *)" {
		t.Errorf("Format = %q", got)
	}
}

func randomBoundedAtom(r *rand.Rand) Atom {
	switch r.Intn(4) {
	case 0:
		return StarAtom
	case 1:
		return ConstAtom(r.Intn(5))
	case 2:
		return Atom{Kind: Sym, V: r.Intn(3)}
	default:
		lo := r.Intn(5)
		return RangeAtom(lo, lo+1+r.Intn(4))
	}
}

func TestQuickBoundedLatticeLaws(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() RSD {
			if r.Intn(8) == 0 {
				return Unaccessed()
			}
			return NewRSD(randomBoundedAtom(r), randomBoundedAtom(r))
		}
		a, b, c := mk(), mk(), mk()
		in := func(x, y RSD) RSD { return MeetIn(BoundedSections, x, y) }
		if !in(a, b).Equal(in(b, a)) {
			return false
		}
		if !in(in(a, b), c).Equal(in(a, in(b, c))) {
			return false
		}
		if !in(a, a).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickBoundedRefinesSimple checks the precision relation: the
// bounded meet's region is contained in the simple meet's region
// (everything the bounded descriptor can denote, the simple one can).
func TestQuickBoundedRefinesSimple(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := NewRSD(randomBoundedAtom(r), randomBoundedAtom(r))
		b := NewRSD(randomBoundedAtom(r), randomBoundedAtom(r))
		bm := MeetIn(BoundedSections, a, b)
		sm := MeetIn(SimpleSections, a, b)
		// Per dimension the two meets either agree exactly, or the
		// simple lattice widened to ⋆ where the bounded one kept
		// something tighter — i.e. region(bounded) ⊆ region(simple).
		for i := range bm.Dims {
			sa, ba := sm.Dims[i], bm.Dims[i]
			if sa != ba && sa.Kind != Star {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestBoundedSolverKeepsDisjointBlocks runs the full section analysis
// under both lattices on a program whose procedures write constant
// blocks of an array; only the bounded lattice can keep the two halves
// apart.
func TestBoundedSolverKeepsDisjointBlocks(t *testing.T) {
	prog := fromSource(t, `
program blocks;
global A[100];
proc low(ref v[*])
begin
  v[1] := 0;
  v[2] := 0;
  v[3] := 0
end;
proc high(ref v[*])
begin
  v[90] := 0;
  v[91] := 0
end;
begin
  call low(A);
  call high(A)
end.
`)
	modRes := core.Analyze(prog, core.Mod, core.Options{})

	simple := AnalyzeIn(modRes, core.Mod, SimpleSections)
	bounded := AnalyzeIn(modRes, core.Mod, BoundedSections)
	aID := prog.Var("A").ID

	// Simple lattice: each callee's summary widens to A(*).
	if got := simple.AtCall(prog.Sites[0])[aID]; !got.IsWhole() {
		t.Errorf("simple low = %s, want A(*)", got.Format("A", prog.Vars))
	}
	// Bounded lattice: A(1:3) and A(90:91), provably disjoint.
	lo := bounded.AtCall(prog.Sites[0])[aID]
	hi := bounded.AtCall(prog.Sites[1])[aID]
	if !lo.Equal(NewRSD(RangeAtom(1, 3))) {
		t.Errorf("bounded low = %s, want A(1:3)", lo.Format("A", prog.Vars))
	}
	if !hi.Equal(NewRSD(RangeAtom(90, 91))) {
		t.Errorf("bounded high = %s, want A(90:91)", hi.Format("A", prog.Vars))
	}
	if MayIntersect(lo, hi) {
		t.Error("bounded blocks must be provably disjoint")
	}
	// The merged per-procedure summary at main still meets into one
	// hull under the bounded lattice.
	merged := bounded.Global[prog.Main.ID][aID]
	if !merged.Equal(NewRSD(RangeAtom(1, 91))) {
		t.Errorf("merged = %s, want A(1:91)", merged.Format("A", prog.Vars))
	}
	if bounded.Lattice != BoundedSections || simple.Lattice != SimpleSections {
		t.Error("Lattice field not recorded")
	}
}

func TestLatticeString(t *testing.T) {
	if SimpleSections.String() != "simple" || BoundedSections.String() != "bounded" {
		t.Error("Lattice.String wrong")
	}
}
