package section

import (
	"testing"

	"sideeffect/internal/core"
)

func TestAtCallWithin(t *testing.T) {
	prog := fromSource(t, `
program acw;
global A[16, 16], n, i;
proc colop(ref c[*], val m)
  var r;
begin
  for r := 1 to m do c[r] := 0 end
end;
begin
  for i := 1 to n do
    call colop(A[*, i], n)
  end
end.
`)
	_, res := solve(t, prog, core.Mod)
	cs := prog.Sites[0]
	i := prog.Var("i")
	aID := prog.Var("A").ID

	// Whole-procedure view: i is modified by the loop, so the column
	// coordinate widens.
	whole := res.AtCall(cs)[aID]
	if !whole.IsWhole() {
		t.Errorf("AtCall = %s, want A(*, *)", whole.Format("A", prog.Vars))
	}
	// Iteration-local view: i is pinned within one iteration.
	local := res.AtCallWithin(cs, i)[aID]
	want := NewRSD(StarAtom, SymAtom(i))
	if !local.Equal(want) {
		t.Errorf("AtCallWithin = %s, want A(*, i)", local.Format("A", prog.Vars))
	}
	// The override must not leak: a second plain AtCall still widens.
	again := res.AtCall(cs)[aID]
	if !again.IsWhole() {
		t.Errorf("AtCall after AtCallWithin = %s (invariance state leaked)",
			again.Format("A", prog.Vars))
	}
}

func TestAtomEqual(t *testing.T) {
	if !StarAtom.Equal(StarAtom) {
		t.Error("StarAtom ≠ itself")
	}
	if ConstAtom(1).Equal(ConstAtom(2)) {
		t.Error("distinct constants compare equal")
	}
	if ConstAtom(1).Equal(StarAtom) {
		t.Error("const equals star")
	}
}

func TestFormalOfNonArray(t *testing.T) {
	prog := fromSource(t, `
program f;
global g;
proc q(ref x) begin x := 1 end;
begin call q(g) end.
`)
	_, res := solve(t, prog, core.Mod)
	// Scalar formals report ⊤ (sections only describe arrays).
	if !res.FormalOf(prog.Var("q.x")).IsNone() {
		t.Error("scalar formal should be ⊤")
	}
	// Non-formals too.
	if !res.FormalOf(prog.Var("g")).IsNone() {
		t.Error("global should be ⊤")
	}
}
