package section

import (
	"strings"

	"sideeffect/internal/binding"
	"sideeffect/internal/bitset"
	"sideeffect/internal/core"
	"sideeffect/internal/ir"
	"sideeffect/internal/prof"
)

// Result holds the regular-section side-effect solution for one
// problem kind.
type Result struct {
	Prog *ir.Program
	Kind core.Kind
	Beta *binding.Beta
	// Lattice is the section lattice the result was solved in.
	Lattice Lattice

	// Formal[n] is the section of β-node n's (array) formal affected
	// by an invocation of its owner — the rsd(fp) of the paper's
	// Section 6 equation. Scalar formals keep ⊤.
	Formal []RSD

	// Global[pid][vid] is the section of global array vid affected by
	// an invocation of procedure pid (the lattice analog of GMOD
	// restricted to global arrays). Missing entries mean ⊤.
	Global []map[int]RSD

	// Stats counts lattice work.
	Stats Stats

	// inv[pid] is the set of variables that may be modified during an
	// invocation of pid (the Mod problem's GMOD): a scalar is a usable
	// symbolic coordinate in pid only when it is NOT in this set. The
	// slice is shared (read-only) with the core Mod result, so queries
	// must never write through it; see invView.
	inv []*bitset.Set
}

// invView is the variance oracle the solver and the call-site queries
// consult: "may vid's value change during an invocation of pid?". The
// fixed field carries AtCallWithin's one-variable exception (a loop
// index held constant within an iteration) without mutating the shared
// inv sets, which keeps concurrent queries on results that share GMOD
// storage race-free.
type invView struct {
	sets  []*bitset.Set
	fixed int // variable ID treated as invariant regardless, or -1
}

func (iv invView) varies(pid, vid int) bool {
	return vid != iv.fixed && iv.sets[pid].Has(vid)
}

// Stats counts the meet and mapping operations performed — the cost
// unit of the paper's Section 6 complexity discussion (the bound is in
// meet operations and is independent of lattice depth).
type Stats struct {
	Meets      int
	MapApps    int // applications of an edge mapping g_e
	Iterations int
}

// lrsdOf computes the local regular section of each array variable
// directly accessed by p: the meet of the per-access descriptors. A
// subscript contributes a Const atom for constants and a Sym atom for
// a scalar variable that is invariant in p (not locally modified —
// the "arbitrary symbolic input parameters" of Figure 3); anything
// else widens to ⋆.
func lrsdOf(p *ir.Procedure, inv invView, kind core.Kind, lat Lattice, out map[int]RSD, st *Stats) {
	wantMod := kind == core.Mod
	for _, acc := range p.Accesses {
		if acc.Mod != wantMod {
			continue
		}
		dims := make([]Atom, len(acc.Subs))
		for i, s := range acc.Subs {
			switch s.Kind {
			case ir.SubConst:
				dims[i] = ConstAtom(s.Const)
			case ir.SubSym:
				if inv.varies(p.ID, s.Sym.ID) {
					dims[i] = StarAtom // may be modified during p: not invariant
				} else {
					dims[i] = SymAtom(s.Sym)
				}
			default:
				dims[i] = StarAtom
			}
		}
		cur, ok := out[acc.Var.ID]
		if !ok {
			cur = Unaccessed()
		}
		out[acc.Var.ID] = MeetIn(lat, cur, RSD{Dims: dims})
		st.Meets++
	}
}

// translateAtom maps an atom valid in the callee of cs to one valid in
// the caller: callee formals are replaced by the corresponding actual
// (a symbol if the actual is an invariant simple variable, a constant
// if it is a literal-shaped subscript, ⋆ otherwise); globals and
// enclosing-scope variables keep their names; anything local to the
// callee widens to ⋆.
func translateAtom(a Atom, cs *ir.CallSite, prog *ir.Program, inv invView) Atom {
	if a.Kind != Sym {
		return a
	}
	v := prog.Vars[a.V]
	if v.Owner == cs.Callee {
		if !v.IsFormal() {
			return StarAtom // callee local: meaningless at the call site
		}
		act := cs.Args[v.Ordinal]
		if act.Var != nil && act.Var.Rank() == 0 {
			if inv.varies(cs.Caller.ID, act.Var.ID) {
				return StarAtom // actual may vary in the caller
			}
			return SymAtom(act.Var)
		}
		return StarAtom
	}
	// Global or enclosing-scope variable: visible at the call site iff
	// the caller can see it; invariance in the caller still required.
	if !cs.Caller.Visible(v) || inv.varies(cs.Caller.ID, v.ID) {
		return StarAtom
	}
	return a
}

// mapThroughCall implements the edge mapping g_e of Section 6: given
// the section `inner` of the callee's formal at position arg of call
// site cs, produce the section of the *actual* array it corresponds
// to. Fixed subscript positions of the actual (e.g. the k of
// A[k, *]) become coordinates of the result; each ⋆ position consumes
// the next dimension of the inner section, translated into the
// caller's name space.
func mapThroughCall(cs *ir.CallSite, arg int, inner RSD, prog *ir.Program, inv invView, st *Stats) RSD {
	st.MapApps++
	if inner.None {
		return Unaccessed()
	}
	act := cs.Args[arg]
	if act.Var == nil {
		return Unaccessed()
	}
	rank := act.Var.Rank()
	dims := make([]Atom, rank)
	if act.Subs == nil {
		// Whole-array binding: ranks match; translate pointwise.
		for i := 0; i < rank; i++ {
			dims[i] = translateAtom(inner.Dims[i], cs, prog, inv)
		}
		return RSD{Dims: dims}
	}
	k := 0
	for i, s := range act.Subs {
		switch s.Kind {
		case ir.SubStar:
			dims[i] = translateAtom(inner.Dims[k], cs, prog, inv)
			k++
		case ir.SubConst:
			dims[i] = ConstAtom(s.Const)
		case ir.SubSym:
			if inv.varies(cs.Caller.ID, s.Sym.ID) {
				dims[i] = StarAtom
			} else {
				dims[i] = SymAtom(s.Sym)
			}
		default:
			dims[i] = StarAtom
		}
	}
	return RSD{Dims: dims}
}

// Analyze solves the regular-section side-effect problem.
//
// Phase 1 solves the formal-parameter subproblem on the binding
// multi-graph β with the data-flow system
//
//	rsd(fp1) = lrsd(fp1) ⊓ ⨅_{e=(fp1,fp2)∈Eβ} g_e(rsd(fp2))
//
// by monotone worklist iteration. Termination: each dimension of each
// node's descriptor can only descend ⊤ → atom → ⋆, so the per-node
// descent depth is rank+1 regardless of the symbol universe — the
// paper's observation that complexity does not depend on lattice
// depth. For divide-and-conquer recursion (a cycle whose g_p satisfies
// g_p(x) ⊓ x = x) the cycle stabilizes immediately.
//
// Phase 2 extends the summaries to global arrays, the lattice analog
// of equation (4) solved by worklist iteration over the call graph:
// every procedure's map from global arrays to sections is seeded with
// its local accesses plus the g_e-image of callee formal summaries
// whose actual is a global array, then propagated caller-ward
// unchanged (global names survive every return).
func Analyze(modRes *core.Result, kind core.Kind) *Result {
	return AnalyzeIn(modRes, kind, SimpleSections)
}

// AnalyzeIn is Analyze under an explicit section lattice (see
// bounded.go for the precision/cost trade-off).
func AnalyzeIn(modRes *core.Result, kind core.Kind, lat Lattice) *Result {
	return AnalyzeProf(modRes, kind, lat, nil)
}

// AnalyzeProf is AnalyzeIn with per-phase wall time accumulated in pf
// under "sections.<kind>.{local,formals,globals}". A nil profile is
// inert, so AnalyzeIn simply delegates here.
func AnalyzeProf(modRes *core.Result, kind core.Kind, lat Lattice, pf *prof.Profile) *Result {
	prog, beta := modRes.Prog, modRes.Beta
	if modRes.Kind != core.Mod {
		panic("section: Analyze requires the Mod-problem core result (its GMOD sets drive symbol invariance)")
	}
	res := &Result{
		Prog:    prog,
		Kind:    kind,
		Beta:    beta,
		Lattice: lat,
		Formal:  make([]RSD, len(beta.Nodes)),
		Global:  make([]map[int]RSD, prog.NumProcs()),
		inv:     modRes.GMOD,
	}
	inv := invView{sets: res.inv, fixed: -1}
	pfx := "sections." + strings.ToLower(kind.String()) + "."
	// Local sections per procedure.
	local := make([]map[int]RSD, prog.NumProcs())
	pf.Do(pfx+"local", func() {
		for _, p := range prog.Procs {
			local[p.ID] = map[int]RSD{}
			lrsdOf(p, inv, kind, lat, local[p.ID], &res.Stats)
		}
	})

	// --- Phase 1: formal arrays on β.
	pf.Do(pfx+"formals", func() { solveFormals(res, local, inv, lat) })

	// --- Phase 2: global arrays over the call graph.
	pf.Do(pfx+"globals", func() { solveGlobals(res, local, inv, lat) })
	return res
}

// solveFormals runs phase 1: the rsd(fp) fixed point on the binding
// multi-graph.
func solveFormals(res *Result, local []map[int]RSD, inv invView, lat Lattice) {
	prog, beta := res.Prog, res.Beta
	for n := range res.Formal {
		res.Formal[n] = Unaccessed()
		f := beta.Nodes[n]
		if f.Rank() == 0 {
			continue
		}
		if r, ok := local[f.Owner.ID][f.ID]; ok {
			res.Formal[n] = r
		}
	}
	// preds-by-edge for the worklist: when rsd(fp2) changes, every β
	// edge (fp1 → fp2) must be re-evaluated.
	inQ := make([]bool, len(beta.Nodes))
	var queue []int
	push := func(n int) {
		if !inQ[n] {
			inQ[n] = true
			queue = append(queue, n)
		}
	}
	for n, f := range beta.Nodes {
		if f.Rank() > 0 {
			push(n)
		}
	}
	for len(queue) > 0 {
		n2 := queue[0]
		queue = queue[1:]
		inQ[n2] = false
		res.Stats.Iterations++
		if beta.Nodes[n2].Rank() == 0 {
			continue
		}
		for _, e := range beta.G.Preds(n2) {
			n1 := e.From
			if beta.Nodes[n1].Rank() == 0 {
				continue
			}
			cs, arg := beta.EdgeSite[e.ID], beta.EdgeArg[e.ID]
			mapped := mapThroughCall(cs, arg, res.Formal[n2], prog, inv, &res.Stats)
			if mapped.None {
				continue
			}
			nv := MeetIn(lat, res.Formal[n1], mapped)
			res.Stats.Meets++
			if !nv.Equal(res.Formal[n1]) {
				res.Formal[n1] = nv
				push(n1)
			}
		}
	}
}

// solveGlobals runs phase 2: the lattice analog of equation (4) for
// global arrays, seeded from local accesses and mapped formal
// summaries.
func solveGlobals(res *Result, local []map[int]RSD, inv invView, lat Lattice) {
	prog, beta := res.Prog, res.Beta
	// Seeds: local accesses of globals, plus formal summaries mapped
	// through call sites whose actual is a global array (or a section
	// of one).
	for _, p := range prog.Procs {
		res.Global[p.ID] = map[int]RSD{}
		for vid, r := range local[p.ID] {
			if prog.Vars[vid].Kind == ir.Global {
				res.Global[p.ID][vid] = r
			}
		}
	}
	for _, cs := range prog.Sites {
		for i, a := range cs.Args {
			if a.Mode != ir.FormalRef || a.Var == nil || a.Var.Kind != ir.Global || a.Var.Rank() == 0 {
				continue
			}
			f := cs.Callee.Formals[i]
			n := beta.NodeOf[f.ID]
			if n < 0 || res.Formal[n].None {
				continue
			}
			mapped := mapThroughCall(cs, i, res.Formal[n], prog, inv, &res.Stats)
			meetInto(lat, res.Global[cs.Caller.ID], a.Var.ID, mapped, &res.Stats)
		}
	}
	// Propagate caller-ward to a fixed point (global arrays survive
	// every return, so no filtering is needed; nesting is irrelevant
	// for program globals).
	callersOf := make([][]*ir.CallSite, prog.NumProcs())
	for _, cs := range prog.Sites {
		callersOf[cs.Callee.ID] = append(callersOf[cs.Callee.ID], cs)
	}
	inQP := make([]bool, prog.NumProcs())
	var pq []int
	pushP := func(id int) {
		if !inQP[id] {
			inQP[id] = true
			pq = append(pq, id)
		}
	}
	for _, p := range prog.Procs {
		pushP(p.ID)
	}
	for len(pq) > 0 {
		qid := pq[0]
		pq = pq[1:]
		inQP[qid] = false
		res.Stats.Iterations++
		for _, cs := range callersOf[qid] {
			changed := false
			for vid, r := range res.Global[qid] {
				if meetInto(lat, res.Global[cs.Caller.ID], vid, r, &res.Stats) {
					changed = true
				}
			}
			if changed {
				pushP(cs.Caller.ID)
			}
		}
	}
}

// meetInto lowers m[vid] by r under the lattice, reporting change.
func meetInto(lat Lattice, m map[int]RSD, vid int, r RSD, st *Stats) bool {
	if r.None {
		return false
	}
	cur, ok := m[vid]
	if !ok {
		m[vid] = r
		return true
	}
	nv := MeetIn(lat, cur, r)
	st.Meets++
	if nv.Equal(cur) {
		return false
	}
	m[vid] = nv
	return true
}

// FormalOf returns the section summary for a formal variable (⊤ for
// non-array or unbound formals).
func (r *Result) FormalOf(v *ir.Variable) RSD {
	if n := r.Beta.NodeOf[v.ID]; n >= 0 {
		return r.Formal[n]
	}
	return Unaccessed()
}

// AtCall returns the sections of the caller-visible arrays affected by
// executing call site cs: the lattice analog of DMOD(s) restricted to
// arrays. Keys are variable IDs.
func (r *Result) AtCall(cs *ir.CallSite) map[int]RSD {
	return r.atCall(cs, invView{sets: r.inv, fixed: -1})
}

// AtCallWithin is AtCall as seen from inside one iteration of a loop
// over index: the loop variable is treated as fixed (invariant) when
// judging symbolic coordinates at this call site, even though the
// enclosing procedure modifies it between iterations. This is the view
// a parallelizer needs: within a single iteration the index has one
// value, and sections pinned to it from different iterations can be
// tested with DisjointAcrossIterations.
func (r *Result) AtCallWithin(cs *ir.CallSite, index *ir.Variable) map[int]RSD {
	return r.atCall(cs, invView{sets: r.inv, fixed: index.ID})
}

func (r *Result) atCall(cs *ir.CallSite, iv invView) map[int]RSD {
	out := map[int]RSD{}
	var st Stats
	// Global arrays affected anywhere below the callee.
	for vid, rsd := range r.Global[cs.Callee.ID] {
		meetInto(r.Lattice, out, vid, rsd, &st)
	}
	// Ref array actuals bound to affected formals.
	for i, a := range cs.Args {
		if a.Mode != ir.FormalRef || a.Var == nil || a.Var.Rank() == 0 {
			continue
		}
		f := cs.Callee.Formals[i]
		n := r.Beta.NodeOf[f.ID]
		if n < 0 || r.Formal[n].None {
			continue
		}
		meetInto(r.Lattice, out, a.Var.ID, mapThroughCall(cs, i, r.Formal[n], r.Prog, iv, &st), &st)
	}
	return out
}
