package section

import "fmt"

// Lattice selects the regular-section lattice instance. The paper
// (after Callahan & Kennedy) points out that the framework
// accommodates a spectrum of lattices that trade representation and
// meet cost for precision; this package implements two:
//
//   - SimpleSections — the paper's Figure 3: a dimension is an exact
//     coordinate (constant or invariant symbol) or the whole extent.
//     Two different constants generalize straight to ⋆.
//   - BoundedSections — constants additionally generalize to *bounded
//     ranges* lo:hi (the convex hull), so A(1) ⊓ A(3) = A(1:3) instead
//     of A(*). Intersection tests can then separate A(1:3, j) from
//     A(7:9, j), which the simple lattice cannot.
//
// Meets stay O(rank); the bounded lattice is deeper (its descent per
// dimension is bounded by the number of distinct constants in the
// program), which is exactly the cost/precision trade the paper's
// Section 6 discusses — and, as it notes, the solver's complexity
// does not depend on that depth.
type Lattice int

// Lattice instances.
const (
	SimpleSections Lattice = iota
	BoundedSections
)

// String names the lattice.
func (l Lattice) String() string {
	if l == BoundedSections {
		return "bounded"
	}
	return "simple"
}

// RangeAtom returns a bounded coordinate lo:hi (inclusive). Callers
// normally obtain ranges from bounded meets rather than directly.
func RangeAtom(lo, hi int) Atom {
	if lo > hi {
		lo, hi = hi, lo
	}
	if lo == hi {
		return ConstAtom(lo)
	}
	return Atom{Kind: Range, C: lo, C2: hi}
}

// span returns the constant bounds of an atom, if it has them.
func span(a Atom) (lo, hi int, ok bool) {
	switch a.Kind {
	case Const:
		return a.C, a.C, true
	case Range:
		return a.C, a.C2, true
	}
	return 0, 0, false
}

// MeetAtomIn generalizes two coordinates under the chosen lattice.
func MeetAtomIn(l Lattice, a, b Atom) Atom {
	if a == b {
		return a
	}
	if l == BoundedSections {
		if alo, ahi, ok := span(a); ok {
			if blo, bhi, ok2 := span(b); ok2 {
				lo, hi := alo, ahi
				if blo < lo {
					lo = blo
				}
				if bhi > hi {
					hi = bhi
				}
				return RangeAtom(lo, hi)
			}
		}
	}
	return StarAtom
}

// MeetIn is Meet under the chosen lattice.
func MeetIn(l Lattice, a, b RSD) RSD {
	if a.None {
		return b
	}
	if b.None {
		return a
	}
	if len(a.Dims) != len(b.Dims) {
		panic(fmt.Sprintf("section: meet of rank %d and rank %d", len(a.Dims), len(b.Dims)))
	}
	out := make([]Atom, len(a.Dims))
	for i := range out {
		out[i] = MeetAtomIn(l, a.Dims[i], b.Dims[i])
	}
	return RSD{Dims: out}
}

// atomsMayOverlap reports whether two coordinates can denote a common
// index.
func atomsMayOverlap(x, y Atom) bool {
	xlo, xhi, xok := span(x)
	ylo, yhi, yok := span(y)
	if xok && yok {
		return xlo <= yhi && ylo <= xhi
	}
	// A symbol or ⋆ may coincide with anything.
	return true
}
