// Package section implements regular section analysis (Section 6 of
// the paper, after Callahan & Kennedy): side-effect summaries whose
// elements are not single bits but descriptors of array subregions, so
// that a call that modifies one row or column of an array is not
// reported as modifying the whole array — the precision that loop
// parallelization across call sites needs.
//
// The lattice is the one of the paper's Figure 3: for a rank-r array,
// a regular section descriptor (RSD) fixes each dimension to a
// constant, to an invariant symbol, or leaves it whole (⋆):
//
//	A(I,J)   A(K,J)   A(K,L)        single elements
//	    A(*,J)    A(K,*)            whole columns / rows
//	         A(*,*)                 the whole array
//
// plus a top element ("unaccessed"). The meet generalizes per
// dimension: equal atoms stay, differing atoms widen to ⋆.
package section

import (
	"fmt"
	"strings"

	"sideeffect/internal/ir"
)

// AtomKind classifies one dimension of an RSD.
type AtomKind int

// Atom kinds.
const (
	// Star is the whole extent of the dimension.
	Star AtomKind = iota
	// Const is a known integer subscript.
	Const
	// Sym is an invariant symbolic subscript, identified by the
	// variable's ID.
	Sym
	// Range is a bounded span of constant subscripts lo:hi (produced
	// only under the BoundedSections lattice; see bounded.go).
	Range
)

// Atom is one dimension coordinate of a regular section.
type Atom struct {
	Kind AtomKind
	// C is the constant for Const atoms and the lower bound for Range
	// atoms.
	C int
	// C2 is the upper bound for Range atoms.
	C2 int
	// V is the variable ID for Sym atoms.
	V int
}

// StarAtom is the whole-dimension coordinate.
var StarAtom = Atom{Kind: Star}

// ConstAtom returns a constant coordinate.
func ConstAtom(c int) Atom { return Atom{Kind: Const, C: c} }

// SymAtom returns a symbolic coordinate for variable v.
func SymAtom(v *ir.Variable) Atom { return Atom{Kind: Sym, V: v.ID} }

// Equal reports atom equality.
func (a Atom) Equal(b Atom) bool { return a == b }

// MeetAtom generalizes two coordinates: equal atoms are preserved,
// anything else widens to ⋆.
func MeetAtom(a, b Atom) Atom {
	if a == b {
		return a
	}
	return StarAtom
}

// RSD is a regular section descriptor for one array. The zero value is
// not meaningful; use Unaccessed or NewRSD.
type RSD struct {
	// None marks the top element: the array is not accessed at all.
	None bool
	// Dims holds one atom per array dimension (empty when None).
	Dims []Atom
}

// Unaccessed returns the top element ⊤ (no access).
func Unaccessed() RSD { return RSD{None: true} }

// NewRSD returns a section with the given coordinates.
func NewRSD(dims ...Atom) RSD { return RSD{Dims: dims} }

// Whole returns the bottom element for rank r: the entire array.
func Whole(r int) RSD {
	d := make([]Atom, r)
	for i := range d {
		d[i] = StarAtom
	}
	return RSD{Dims: d}
}

// IsNone reports whether the RSD is ⊤ (unaccessed).
func (r RSD) IsNone() bool { return r.None }

// IsWhole reports whether every dimension is ⋆ (the bottom element).
func (r RSD) IsWhole() bool {
	if r.None {
		return false
	}
	for _, a := range r.Dims {
		if a.Kind != Star {
			return false
		}
	}
	return true
}

// Rank returns the number of dimensions (0 for ⊤ and for scalars).
func (r RSD) Rank() int { return len(r.Dims) }

// Equal reports structural equality.
func (r RSD) Equal(s RSD) bool {
	if r.None != s.None || len(r.Dims) != len(s.Dims) {
		return false
	}
	for i := range r.Dims {
		if r.Dims[i] != s.Dims[i] {
			return false
		}
	}
	return true
}

// Meet returns the greatest lower bound of two descriptors of the same
// array under the paper's Figure-3 lattice (SimpleSections): ⊤ is the
// identity; otherwise dimensions generalize pointwise. Meeting
// descriptors of different ranks is a programming error and panics (it
// would mean mixing descriptors of different arrays). For the bounded
// lattice use MeetIn.
func Meet(a, b RSD) RSD {
	return MeetIn(SimpleSections, a, b)
}

// Leq reports r ⊑ s in the lattice order (r is below s, i.e. r is the
// more conservative / wider descriptor; Meet(a, b) ⊑ a and ⊑ b).
func Leq(r, s RSD) bool {
	return Meet(r, s).Equal(r)
}

// MayIntersect reports whether the regions described by two RSDs of
// the same array can overlap. It is conservative: only dimensions with
// provably disjoint constant spans (distinct constants, or
// non-overlapping bounded ranges) separate regions — distinct symbols
// may carry equal values at run time. ⊤ intersects nothing.
func MayIntersect(a, b RSD) bool {
	if a.None || b.None {
		return false
	}
	for i := range a.Dims {
		if !atomsMayOverlap(a.Dims[i], b.Dims[i]) {
			return false
		}
	}
	return true
}

// DisjointAcrossIterations reports whether two occurrences of the
// descriptors, taken from *different iterations* of a loop over the
// index variable loopVar, are provably disjoint: some dimension pins
// both descriptors to the symbol loopVar, whose value differs between
// distinct iterations. This is the data-decomposition test the paper's
// Section 6 motivates (each processor works on its own row/column).
func DisjointAcrossIterations(a, b RSD, loopVar *ir.Variable) bool {
	if a.None || b.None {
		return true
	}
	if len(a.Dims) != len(b.Dims) {
		return false
	}
	for i := range a.Dims {
		x, y := a.Dims[i], b.Dims[i]
		if x.Kind == Sym && y.Kind == Sym && x.V == loopVar.ID && y.V == loopVar.ID {
			return true
		}
	}
	// Also disjoint if plainly non-intersecting.
	return !MayIntersect(a, b)
}

// Format renders the RSD for array name using the variables table for
// symbolic atoms, e.g. "A(*, j)" or "A(⊤)".
func (r RSD) Format(name string, vars []*ir.Variable) string {
	if r.None {
		return name + "(⊤)"
	}
	parts := make([]string, len(r.Dims))
	for i, a := range r.Dims {
		switch a.Kind {
		case Star:
			parts[i] = "*"
		case Const:
			parts[i] = fmt.Sprintf("%d", a.C)
		case Sym:
			if a.V >= 0 && a.V < len(vars) {
				parts[i] = vars[a.V].Name
			} else {
				parts[i] = fmt.Sprintf("v%d", a.V)
			}
		case Range:
			parts[i] = fmt.Sprintf("%d:%d", a.C, a.C2)
		}
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}
