// Package arena provides a slab allocator for analysis-lifetime bit
// vectors. One core.Analyze produces O(N + S) result sets (GMOD,
// IMOD+, LOCAL, and per-site DMOD vectors); allocating each from the
// Go heap makes the allocator — not bit-vector arithmetic — the hot
// path once thousands of analyses run under the batch engine. An
// Arena instead carves the word storage for all of a Result's sets
// out of a handful of large slabs:
//
//   - allocation is a bump-pointer slice, not a malloc;
//   - the word slabs are []uint64 — pointer-free memory the garbage
//     collector never scans, which removes the result vectors from
//     every GC mark phase;
//   - the whole analysis is freed as one object when the owning
//     Result becomes unreachable, instead of as tens of thousands of
//     individual sets.
//
// An Arena is NOT safe for concurrent use; each Analyze owns its own.
// Sets carved from an arena are ordinary bitset.Sets — if one grows
// past its block it falls back to the heap transparently — so arena
// ownership never changes set semantics, only where the initial words
// live. Reset recycles the slabs for callers that fully own the
// previous results' lifetime (e.g. a re-analysis loop that drops the
// prior Result before rebuilding); everyone else just drops the arena
// with its Result.
package arena

import (
	"sync"
	"sync/atomic"

	"sideeffect/internal/bitset"
)

// Slab growth: start small so toy programs pay a few hundred bytes,
// double per slab so large programs need O(log n) slabs, cap so a
// pathological request can't make later slabs enormous.
const (
	firstWordChunk = 1 << 10 // 8 KiB of set payload
	maxWordChunk   = 1 << 16 // 512 KiB
	firstHdrChunk  = 64
	maxHdrChunk    = 4096
	elemChunkSets  = 64 // sparse element buffers per elems slab
)

// Arena is a bump allocator for bitset storage. The zero value is
// ready to use.
//
// Every slab ever allocated is kept so that Reset can hand the same
// storage out again: the steady state of an analyze/Release loop is a
// fixed set of warm slabs and zero slab allocation per analysis. The
// cur* cursors index the slab backing the corresponding tail; slabs
// before the cursor are (partially) carved, slabs after it are still
// pristine from the previous Reset.
type Arena struct {
	words []uint64     // tail of the current word slab
	elems []uint32     // tail of the current sparse-buffer slab
	hdrs  []bitset.Set // tail of the current header slab

	wordSlabs [][]uint64     // every word slab, reused across Reset
	elemSlabs [][]uint32     // likewise for sparse element buffers
	hdrSlabs  [][]bitset.Set // likewise for set headers
	curWord   int            // index past the slab backing words
	curElem   int
	curHdr    int
	nextWords int // size of the next word slab
	nextHdrs  int

	// Stats for allocation accounting in experiments.
	Sets      int // sets carved
	SlabBytes int // payload bytes held across all slabs

	// poisoned marks an arena whose analysis panicked mid-flight: its
	// bump cursors may be inconsistent and sets carved from it may
	// have escaped to an unknown extent, so it must never re-enter the
	// pool. See Poison.
	poisoned bool
}

// Poison marks the arena as unsafe for reuse. The recovery path of a
// panicked analysis calls this before unwinding: a later Put (e.g.
// from a defensive Release on the error path) then drops the arena to
// the collector instead of recycling its slabs, so no future analysis
// can alias storage whose carve state is unknown. Nil-safe.
func (a *Arena) Poison() {
	if a != nil && !a.poisoned {
		a.poisoned = true
		poolStats.Poisoned.Add(1)
	}
}

// Poisoned reports whether the arena was poisoned.
func (a *Arena) Poisoned() bool { return a != nil && a.poisoned }

func (a *Arena) hdr() *bitset.Set {
	for len(a.hdrs) == 0 {
		if a.curHdr < len(a.hdrSlabs) {
			a.hdrs = a.hdrSlabs[a.curHdr]
			a.curHdr++
			continue
		}
		if a.nextHdrs == 0 {
			a.nextHdrs = firstHdrChunk
		}
		slab := make([]bitset.Set, a.nextHdrs)
		a.hdrSlabs = append(a.hdrSlabs, slab)
		a.curHdr = len(a.hdrSlabs)
		a.hdrs = slab
		if a.nextHdrs < maxHdrChunk {
			a.nextHdrs *= 2
		}
	}
	s := &a.hdrs[0]
	a.hdrs = a.hdrs[1:]
	a.Sets++
	return s
}

func (a *Arena) wordBlock(w int) []uint64 {
	for w > len(a.words) {
		// The remainder of the current slab (if any) is abandoned; it
		// was never carved, so it is still zero for the next Reset.
		if a.curWord < len(a.wordSlabs) {
			a.words = a.wordSlabs[a.curWord]
			a.curWord++
			continue
		}
		if a.nextWords == 0 {
			a.nextWords = firstWordChunk
		}
		n := a.nextWords
		if n < w {
			n = w
		}
		slab := make([]uint64, n)
		a.wordSlabs = append(a.wordSlabs, slab)
		a.curWord = len(a.wordSlabs)
		a.SlabBytes += 8 * n
		a.words = slab
		if a.nextWords < maxWordChunk {
			a.nextWords *= 2
		}
	}
	blk := a.words[:w:w]
	a.words = a.words[w:]
	return blk
}

// Dense returns an empty dense set with capacity for elements in
// [0, nbits), its words carved from the arena.
func (a *Arena) Dense(nbits int) *bitset.Set {
	if nbits < 0 {
		nbits = 0
	}
	w := (nbits + 63) / 64
	s := a.hdr()
	*s = bitset.MakeDense(a.wordBlock(w))
	return s
}

// Sparse returns an empty sparse set whose element buffer (capacity
// bitset.SparseMax) is carved from the arena. It promotes to a
// heap-allocated dense vector if it outgrows the buffer.
func (a *Arena) Sparse() *bitset.Set {
	for len(a.elems) < bitset.SparseMax {
		if a.curElem < len(a.elemSlabs) {
			a.elems = a.elemSlabs[a.curElem]
			a.curElem++
			continue
		}
		slab := make([]uint32, elemChunkSets*bitset.SparseMax)
		a.elemSlabs = append(a.elemSlabs, slab)
		a.curElem = len(a.elemSlabs)
		a.SlabBytes += 4 * len(slab)
		a.elems = slab
	}
	buf := a.elems[:bitset.SparseMax:bitset.SparseMax]
	a.elems = a.elems[bitset.SparseMax:]
	s := a.hdr()
	*s = bitset.MakeSparse(buf)
	return s
}

// Clone returns an arena-backed copy of t, preserving t's
// representation. Clone(nil) returns an empty sparse set. A nil
// receiver degrades to plain heap clones, so callers can thread an
// optional arena without branching.
func (a *Arena) Clone(t *bitset.Set) *bitset.Set {
	if a == nil {
		if t == nil {
			return bitset.NewSparse()
		}
		return t.Clone()
	}
	if t == nil {
		return a.Sparse()
	}
	var s *bitset.Set
	if t.IsSparse() && t.Len() <= bitset.SparseMax {
		s = a.Sparse()
	} else {
		s = a.Dense(t.Words() * 64)
	}
	return s.CopyFrom(t)
}

// Reset recycles every slab for a new round of allocations. The caller
// must guarantee that no set carved before the Reset is still in use:
// the slabs are handed out again, so stale sets would alias new ones.
// Only the carved prefixes are cleared — word blocks because Dense
// promises zeroed storage, headers because they hold slice pointers
// that would otherwise keep the previous analysis's stray
// heap-promoted sets alive. Sparse element buffers need no clearing:
// carving installs a zero length, so stale elements are never read.
func (a *Arena) Reset() {
	for i := 0; i < a.curWord; i++ {
		s := a.wordSlabs[i]
		if i == a.curWord-1 {
			s = s[:len(s)-len(a.words)]
		}
		for j := range s {
			s[j] = 0
		}
	}
	for i := 0; i < a.curHdr; i++ {
		s := a.hdrSlabs[i]
		if i == a.curHdr-1 {
			s = s[:len(s)-len(a.hdrs)]
		}
		for j := range s {
			s[j] = bitset.Set{}
		}
	}
	a.curWord, a.curElem, a.curHdr = 0, 0, 0
	a.words, a.elems, a.hdrs = nil, nil, nil
	a.Sets = 0
}

// pool recycles arenas process-wide: the steady state of a batch run —
// analyze, consume, Release, repeat — reuses one warm arena per worker
// instead of growing fresh slabs for every program. Arenas parked here
// are ordinary pool entries; the collector reclaims them under memory
// pressure, which bounds how much slab storage an unusually large
// program pins.
var pool = sync.Pool{New: func() any { return new(Arena) }}

// PoolStats is a snapshot of the process-wide pool counters, for the
// chaos harness's reuse-after-poison invariants.
type PoolStats struct {
	// Gets/Puts count pool checkouts and successful returns.
	Gets, Puts int64
	// Poisoned counts arenas marked unsafe by a panic recovery path.
	Poisoned int64
	// PoisonDropped counts Puts that were refused because the arena
	// was poisoned (the arena went to the collector instead).
	PoisonDropped int64
	// PoisonedReuse counts poisoned arenas handed out by Get. The Put
	// gate makes this impossible; a non-zero value is a bug, and the
	// chaos soak asserts it stays zero.
	PoisonedReuse int64
}

// poolStats holds the counters behind Stats as independent atomics.
var poolStats struct {
	Gets, Puts, Poisoned, PoisonDropped, PoisonedReuse atomic.Int64
}

// Stats snapshots the pool counters.
func Stats() PoolStats {
	return PoolStats{
		Gets:          poolStats.Gets.Load(),
		Puts:          poolStats.Puts.Load(),
		Poisoned:      poolStats.Poisoned.Load(),
		PoisonDropped: poolStats.PoisonDropped.Load(),
		PoisonedReuse: poolStats.PoisonedReuse.Load(),
	}
}

// Get returns an empty Arena, recycled from the pool when one is
// available. Pair with Put when the sets carved from it are dead.
func Get() *Arena {
	a := pool.Get().(*Arena)
	if a.poisoned {
		// Unreachable while Put holds its gate; replace defensively and
		// let the chaos invariants surface the bug.
		poolStats.PoisonedReuse.Add(1)
		a = new(Arena)
	}
	poolStats.Gets.Add(1)
	return a
}

// Put resets a and returns it to the pool. The caller must guarantee
// that no set carved from a is still reachable: the slabs are handed
// out again and stale sets would alias new ones. Poisoned arenas are
// dropped to the collector instead of pooled — after a panic the carve
// state is unknown, and recycling it could alias a live analysis.
func Put(a *Arena) {
	if a == nil {
		return
	}
	if a.poisoned {
		poolStats.PoisonDropped.Add(1)
		return
	}
	poolStats.Puts.Add(1)
	a.Reset()
	pool.Put(a)
}
