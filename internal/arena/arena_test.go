package arena

import (
	"testing"

	"sideeffect/internal/bitset"
)

func TestDenseCarving(t *testing.T) {
	var a Arena
	s1 := a.Dense(128)
	s2 := a.Dense(128)
	s1.Add(5)
	s1.Add(127)
	if s2.Has(5) || s2.Has(127) || !s2.Empty() {
		t.Fatal("adjacent arena sets share bits")
	}
	s2.Add(64)
	if s1.Has(64) {
		t.Fatal("adjacent arena sets share bits (reverse)")
	}
	if a.Sets != 2 {
		t.Errorf("Sets = %d, want 2", a.Sets)
	}
}

func TestDenseGrowsPastBlock(t *testing.T) {
	var a Arena
	s := a.Dense(64)
	neighbor := a.Dense(64)
	s.Add(500) // outgrows its block: must fall back to the heap
	if !s.Has(500) {
		t.Fatal("growth past block lost the element")
	}
	s.Add(63)
	if neighbor.Has(63) || !neighbor.Empty() {
		t.Fatal("set that outgrew its block still aliases the slab")
	}
}

func TestSparseAndClone(t *testing.T) {
	var a Arena
	sp := a.Sparse()
	if !sp.IsSparse() {
		t.Fatal("Sparse() returned dense set")
	}
	for i := 0; i < bitset.SparseMax+3; i++ {
		sp.Add(i * 5)
	}
	if sp.IsSparse() {
		t.Fatal("arena sparse set did not promote past its buffer")
	}
	orig := bitset.FromSlice([]int{1, 99, 700})
	c := a.Clone(orig)
	if !c.Equal(orig) {
		t.Fatalf("Clone = %v, want %v", c, orig)
	}
	c.Add(4)
	if orig.Has(4) {
		t.Fatal("Clone aliases its source")
	}
	spOrig := bitset.NewSparse()
	spOrig.Add(7)
	c2 := a.Clone(spOrig)
	if !c2.IsSparse() || !c2.Equal(spOrig) {
		t.Fatal("Clone did not preserve sparse representation")
	}
	if !a.Clone(nil).Empty() {
		t.Fatal("Clone(nil) not empty")
	}
}

func TestBigRequestAndManySets(t *testing.T) {
	var a Arena
	big := a.Dense(10 * 64 * firstWordChunk) // larger than any chunk
	big.Add(639_999)
	if !big.Has(639_999) {
		t.Fatal("oversized request broken")
	}
	for i := 0; i < 5000; i++ {
		s := a.Dense(256)
		s.Add(i % 256)
		if s.Len() != 1 {
			t.Fatalf("set %d corrupted", i)
		}
	}
}

func TestPoisonedArenaNeverPooled(t *testing.T) {
	before := Stats()
	a := Get()
	a.Dense(128).Add(7)
	a.Poison()
	if !a.Poisoned() {
		t.Fatal("Poison did not mark the arena")
	}
	a.Poison() // idempotent: counted once
	Put(a)     // must be refused
	after := Stats()
	if got := after.PoisonDropped - before.PoisonDropped; got != 1 {
		t.Fatalf("PoisonDropped delta = %d, want 1", got)
	}
	if got := after.Poisoned - before.Poisoned; got != 1 {
		t.Fatalf("Poisoned delta = %d, want 1 (Poison must be idempotent)", got)
	}
	if after.Puts != before.Puts {
		t.Fatal("poisoned arena was counted as a successful Put")
	}
	// Drain the pool: no Get may ever see a poisoned arena.
	for i := 0; i < 64; i++ {
		b := Get()
		if b.Poisoned() {
			t.Fatal("Get returned a poisoned arena")
		}
		Put(b)
	}
	if Stats().PoisonedReuse != 0 {
		t.Fatal("PoisonedReuse is non-zero")
	}
	var nilA *Arena
	nilA.Poison() // nil-safe
	if nilA.Poisoned() {
		t.Fatal("nil arena reports poisoned")
	}
}

func TestReset(t *testing.T) {
	var a Arena
	for i := 0; i < 100; i++ {
		a.Dense(512).Add(i)
	}
	slabs := len(a.wordSlabs)
	if slabs == 0 {
		t.Fatal("no slabs allocated")
	}
	a.Reset()
	if a.Sets != 0 {
		t.Errorf("Sets after Reset = %d", a.Sets)
	}
	// Post-reset sets must come out empty even though the slab was
	// previously written.
	for i := 0; i < 100; i++ {
		s := a.Dense(512)
		if !s.Empty() {
			t.Fatalf("recycled slab leaked bits into set %d: %v", i, s)
		}
		s.Add(511)
	}
	if len(a.wordSlabs) > slabs {
		t.Errorf("Reset did not recycle slabs: %d → %d", slabs, len(a.wordSlabs))
	}
}
