package lexer

import (
	"strings"
	"testing"

	"sideeffect/internal/lang/token"
)

func kinds(src string) []token.Kind {
	toks, _ := All(src)
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, errs := All("program foo; proc bar val ref x1 _ignored")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.PROGRAM, token.IDENT, token.SEMICOLON, token.PROC,
		token.IDENT, token.VAL, token.REF, token.IDENT, token.IDENT, token.EOF,
	}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i], k)
		}
	}
	if toks[1].Text != "foo" || toks[7].Text != "x1" {
		t.Errorf("ident texts wrong: %v %v", toks[1], toks[7])
	}
}

func TestOperatorsAndPunct(t *testing.T) {
	got := kinds("( ) [ ] , ; . := * + - / = <> < <= > >=")
	want := []token.Kind{
		token.LPAREN, token.RPAREN, token.LBRACKET, token.RBRACKET,
		token.COMMA, token.SEMICOLON, token.PERIOD, token.ASSIGN,
		token.STAR, token.PLUS, token.MINUS, token.SLASH, token.EQ,
		token.NEQ, token.LT, token.LE, token.GT, token.GE, token.EOF,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestNumbers(t *testing.T) {
	toks, errs := All("0 42 123456")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	for i, text := range []string{"0", "42", "123456"} {
		if toks[i].Kind != token.INT || toks[i].Text != text {
			t.Errorf("token %d = %v, want INT(%s)", i, toks[i], text)
		}
	}
}

func TestComments(t *testing.T) {
	toks, errs := All("x { this is\na comment } y")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Text != "x" || toks[1].Text != "y" {
		t.Errorf("comment not skipped: %v", toks)
	}
	if toks[1].Pos.Line != 2 {
		t.Errorf("line tracking across comment: %v", toks[1].Pos)
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := All("x { never closed")
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "unterminated") {
		t.Errorf("errs = %v", errs)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := All("a\n  bb\n   c")
	wantPos := []token.Pos{{Line: 1, Col: 1}, {Line: 2, Col: 3}, {Line: 3, Col: 4}}
	for i, p := range wantPos {
		if toks[i].Pos != p {
			t.Errorf("token %d pos = %v, want %v", i, toks[i].Pos, p)
		}
	}
}

func TestIllegalChars(t *testing.T) {
	toks, errs := All("x # y")
	if len(errs) != 1 {
		t.Fatalf("errs = %v", errs)
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v, want ILLEGAL", toks[1])
	}
}

func TestLoneColon(t *testing.T) {
	toks, errs := All("x : y")
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), ":=") {
		t.Errorf("errs = %v", errs)
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v", toks[1])
	}
}

func TestAssignVsColon(t *testing.T) {
	toks, errs := All("x := 1")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	if toks[1].Kind != token.ASSIGN {
		t.Errorf("token 1 = %v, want :=", toks[1])
	}
}

func TestEOFForever(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tok := l.Next(); tok.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tok)
		}
	}
}
