// Package lexer turns MiniPL source text into a token stream.
//
// Comments are Pascal-style braces `{ ... }` and may span lines; they
// do not nest. Identifiers are ASCII letters/digits/underscores
// starting with a letter; keywords are case-sensitive (lower case).
package lexer

import (
	"fmt"

	"sideeffect/internal/lang/token"
)

// Lexer scans MiniPL source.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: lex: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) skipBlanksAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '{':
			start := token.Pos{Line: l.line, Col: l.col}
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.advance() == '}' {
					closed = true
					break
				}
			}
			if !closed {
				l.errorf(start, "unterminated comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF tokens
// forever.
func (l *Lexer) Next() token.Token {
	l.skipBlanksAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := token.Keywords[text]; ok {
			return token.Token{Kind: k, Text: text, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Text: text, Pos: pos}
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Text: l.src[start:l.off], Pos: pos}
	}
	one := func(k token.Kind) token.Token {
		l.advance()
		return token.Token{Kind: k, Text: string(c), Pos: pos}
	}
	switch c {
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '[':
		return one(token.LBRACKET)
	case ']':
		return one(token.RBRACKET)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMICOLON)
	case '.':
		return one(token.PERIOD)
	case '*':
		return one(token.STAR)
	case '+':
		return one(token.PLUS)
	case '-':
		return one(token.MINUS)
	case '/':
		return one(token.SLASH)
	case '=':
		return one(token.EQ)
	case ':':
		if l.peek2() == '=' {
			l.advance()
			l.advance()
			return token.Token{Kind: token.ASSIGN, Text: ":=", Pos: pos}
		}
		l.advance()
		l.errorf(pos, "unexpected ':' (did you mean ':='?)")
		return token.Token{Kind: token.ILLEGAL, Text: ":", Pos: pos}
	case '<':
		l.advance()
		switch l.peek() {
		case '=':
			l.advance()
			return token.Token{Kind: token.LE, Text: "<=", Pos: pos}
		case '>':
			l.advance()
			return token.Token{Kind: token.NEQ, Text: "<>", Pos: pos}
		}
		return token.Token{Kind: token.LT, Text: "<", Pos: pos}
	case '>':
		l.advance()
		if l.peek() == '=' {
			l.advance()
			return token.Token{Kind: token.GE, Text: ">=", Pos: pos}
		}
		return token.Token{Kind: token.GT, Text: ">", Pos: pos}
	}
	l.advance()
	l.errorf(pos, "illegal character %q", string(c))
	return token.Token{Kind: token.ILLEGAL, Text: string(c), Pos: pos}
}

// All scans the entire input and returns the tokens up to and
// including the terminating EOF token.
func All(src string) ([]token.Token, []error) {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, l.Errors()
		}
	}
}
