package sem

import (
	"strings"
	"testing"

	"sideeffect/internal/ir"
)

func mustAnalyze(t *testing.T, src string) *ir.Program {
	t.Helper()
	p, err := AnalyzeSource(src)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return p
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := AnalyzeSource(src)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

const nestedProgram = `
program demo;
global x, y;
proc swap(ref a, ref b)
  var t;
begin
  t := a; a := b; b := t
end;
proc outer(ref p, val n)
  var lo;
  proc inner(ref q)
  begin
    q := q + p;
    call swap(p, lo)
  end;
begin
  call inner(p);
  x := n
end;
begin
  call outer(x, 3)
end.
`

func TestStructure(t *testing.T) {
	p := mustAnalyze(t, nestedProgram)
	if p.NumProcs() != 4 { // $main, swap, outer, inner
		t.Fatalf("procs = %d, want 4", p.NumProcs())
	}
	outer := p.Proc("outer")
	inner := p.Proc("inner")
	swap := p.Proc("swap")
	if outer.Level != 0 || swap.Level != 0 {
		t.Errorf("top-level levels: outer=%d swap=%d", outer.Level, swap.Level)
	}
	if inner.Level != 1 || inner.Parent != outer {
		t.Errorf("inner level=%d parent=%v", inner.Level, inner.Parent)
	}
	if len(outer.Nested) != 1 || outer.Nested[0] != inner {
		t.Errorf("outer.Nested = %v", outer.Nested)
	}
	if p.MaxLevel() != 1 {
		t.Errorf("MaxLevel = %d", p.MaxLevel())
	}
	if !p.Main.IsMain {
		t.Error("main not marked")
	}
}

func TestVariablesAndKinds(t *testing.T) {
	p := mustAnalyze(t, nestedProgram)
	x := p.Var("x")
	if x == nil || x.Kind != ir.Global {
		t.Fatalf("x = %+v", x)
	}
	a := p.Var("swap.a")
	if a == nil || a.Kind != ir.FormalRef || a.Ordinal != 0 {
		t.Fatalf("swap.a = %+v", a)
	}
	n := p.Var("outer.n")
	if n == nil || n.Kind != ir.FormalVal {
		t.Fatalf("outer.n = %+v", n)
	}
	tv := p.Var("swap.t")
	if tv == nil || tv.Kind != ir.Local {
		t.Fatalf("swap.t = %+v", tv)
	}
	if x.ScopeLevel() != 0 {
		t.Errorf("x scope level = %d", x.ScopeLevel())
	}
	if tv.ScopeLevel() != 1 {
		t.Errorf("swap.t scope level = %d", tv.ScopeLevel())
	}
	q := p.Var("inner.q")
	if q.ScopeLevel() != 2 {
		t.Errorf("inner.q scope level = %d", q.ScopeLevel())
	}
}

func TestIMODIUSE(t *testing.T) {
	p := mustAnalyze(t, nestedProgram)
	swap := p.Proc("swap")
	has := func(set interface{ Has(int) bool }, name string) bool {
		v := p.Var(name)
		if v == nil {
			t.Fatalf("no variable %q", name)
		}
		return set.Has(v.ID)
	}
	// swap modifies t, a, b directly; uses a, b, t.
	for _, n := range []string{"swap.t", "swap.a", "swap.b"} {
		if !has(swap.IMOD, n) {
			t.Errorf("IMOD(swap) missing %s", n)
		}
		if !has(swap.IUSE, n) {
			t.Errorf("IUSE(swap) missing %s", n)
		}
	}
	inner := p.Proc("inner")
	// inner modifies q directly (not p — that flows through swap).
	if !has(inner.IMOD, "inner.q") {
		t.Error("IMOD(inner) missing q")
	}
	if has(inner.IMOD, "outer.p") {
		t.Error("IMOD(inner) wrongly contains outer.p")
	}
	// inner uses q and p (q := q + p).
	if !has(inner.IUSE, "outer.p") {
		t.Error("IUSE(inner) missing outer.p")
	}
	outer := p.Proc("outer")
	// outer modifies x (x := n), uses n.
	if !has(outer.IMOD, "x") || !has(outer.IUSE, "outer.n") {
		t.Errorf("outer IMOD/IUSE wrong: %v / %v", outer.IMOD, outer.IUSE)
	}
	// main: call outer(x, 3) uses nothing but passes x by ref; the
	// literal 3 contributes nothing.
	if !p.Main.IMOD.Empty() {
		t.Errorf("IMOD(main) = %v, want empty", p.Main.IMOD)
	}
}

func TestCallSites(t *testing.T) {
	p := mustAnalyze(t, nestedProgram)
	if p.NumSites() != 3 {
		t.Fatalf("sites = %d, want 3", p.NumSites())
	}
	var innerCallsSwap *ir.CallSite
	for _, cs := range p.Sites {
		if cs.Caller.Name == "inner" && cs.Callee.Name == "swap" {
			innerCallsSwap = cs
		}
	}
	if innerCallsSwap == nil {
		t.Fatal("missing inner→swap call site")
	}
	// call swap(p, lo): first actual is outer's formal p (a binding
	// from an enclosing procedure's formal at a nested call site —
	// Section 3.3 case 2), second is outer's local lo.
	a0 := innerCallsSwap.Args[0]
	if a0.Var != p.Var("outer.p") || a0.Mode != ir.FormalRef {
		t.Errorf("arg 0 = %+v", a0)
	}
	a1 := innerCallsSwap.Args[1]
	if a1.Var != p.Var("outer.lo") {
		t.Errorf("arg 1 = %+v", a1)
	}
	// Val argument: main passes literal 3 → Var nil.
	var mainCall *ir.CallSite
	for _, cs := range p.Sites {
		if cs.Caller.IsMain {
			mainCall = cs
		}
	}
	if mainCall.Args[1].Var != nil || mainCall.Args[1].Mode != ir.FormalVal {
		t.Errorf("main call arg 1 = %+v", mainCall.Args[1])
	}
}

func TestShadowing(t *testing.T) {
	src := `
program s;
global x;
proc p(val x) begin x := x + 1 end;
begin call p(x) end.
`
	p := mustAnalyze(t, src)
	pp := p.Proc("p")
	formal := p.Var("p.x")
	global := p.Var("x")
	if !pp.IMOD.Has(formal.ID) {
		t.Error("IMOD(p) missing shadowing formal x")
	}
	if pp.IMOD.Has(global.ID) {
		t.Error("IMOD(p) contains shadowed global x")
	}
	// main uses the global to evaluate the val argument.
	if !p.Main.IUSE.Has(global.ID) {
		t.Error("IUSE(main) missing global x")
	}
}

func TestArrayFactsAndAccesses(t *testing.T) {
	src := `
program arr;
global A[10, 20], i, j;
proc touch(ref M[*, *], val k)
begin
  M[k, 3] := M[k, 3] + 1
end;
begin
  A[i, j] := 0;
  write A[i, 1];
  call touch(A, i)
end.
`
	p := mustAnalyze(t, src)
	A := p.Var("A")
	if A.Rank() != 2 {
		t.Fatalf("A rank = %d", A.Rank())
	}
	main := p.Main
	if !main.IMOD.Has(A.ID) || !main.IUSE.Has(A.ID) {
		t.Errorf("main IMOD/IUSE on A: %v / %v", main.IMOD, main.IUSE)
	}
	if len(main.Accesses) != 2 {
		t.Fatalf("main accesses = %d, want 2", len(main.Accesses))
	}
	def := main.Accesses[0]
	if !def.Mod || def.Var != A || def.Subs[0].Kind != ir.SubSym || def.Subs[0].Sym != p.Var("i") {
		t.Errorf("access 0 = %+v", def)
	}
	use := main.Accesses[1]
	if use.Mod || use.Subs[1].Kind != ir.SubConst || use.Subs[1].Const != 1 {
		t.Errorf("access 1 = %+v", use)
	}
	touch := p.Proc("touch")
	M := p.Var("touch.M")
	if M.Kind != ir.FormalRef || M.Rank() != 2 {
		t.Fatalf("touch.M = %+v", M)
	}
	if len(touch.Accesses) != 2 {
		t.Errorf("touch accesses = %d", len(touch.Accesses))
	}
	// Whole-array actual: Subs nil, rank = declared rank.
	cs := p.Sites[0]
	if cs.Args[0].Var != A || cs.Args[0].Subs != nil || cs.Args[0].Rank() != 2 {
		t.Errorf("call actual = %+v", cs.Args[0])
	}
}

func TestSectionActuals(t *testing.T) {
	src := `
program sec;
global A[10, 20], j;
proc col(ref c[*]) begin c[1] := 0 end;
proc elem(ref e) begin e := 0 end;
begin
  call col(A[*, j]);
  call elem(A[2, j])
end.
`
	p := mustAnalyze(t, src)
	colCall := p.Sites[0]
	a := colCall.Args[0]
	if a.Rank() != 1 || a.Subs[0].Kind != ir.SubStar || a.Subs[1].Kind != ir.SubSym {
		t.Errorf("column actual = %+v", a)
	}
	// Subscript j is used by the caller.
	j := p.Var("j")
	if !p.Main.IUSE.Has(j.ID) {
		t.Error("IUSE(main) missing subscript j")
	}
	elemCall := p.Sites[1]
	if elemCall.Args[0].Rank() != 0 {
		t.Errorf("element actual rank = %d", elemCall.Args[0].Rank())
	}
}

func TestForLoopFacts(t *testing.T) {
	p := mustAnalyze(t, `
program f;
global i, n, s;
begin
  for i := 1 to n do s := s + i end
end.
`)
	i, n, s := p.Var("i"), p.Var("n"), p.Var("s")
	if !p.Main.IMOD.Has(i.ID) || !p.Main.IMOD.Has(s.ID) {
		t.Errorf("IMOD(main) = %v", p.Main.IMOD)
	}
	if !p.Main.IUSE.Has(n.ID) || !p.Main.IUSE.Has(i.ID) {
		t.Errorf("IUSE(main) = %v", p.Main.IUSE)
	}
}

func TestMutualRecursionSiblings(t *testing.T) {
	src := `
program m;
global x;
proc even(val n) begin if n > 0 then call odd(n - 1) end end;
proc odd(val n) begin if n > 0 then call even(n - 1) end end;
begin call even(x) end.
`
	p := mustAnalyze(t, src)
	if p.NumSites() != 3 {
		t.Errorf("sites = %d", p.NumSites())
	}
}

func TestRecursionSelf(t *testing.T) {
	src := `
program r;
proc f(ref a) begin call f(a) end;
global g;
begin call f(g) end.
`
	p := mustAnalyze(t, src)
	cs := p.Procs[p.Proc("f").ID].Calls[0]
	if cs.Callee.Name != "f" {
		t.Errorf("self call resolves to %s", cs.Callee.Name)
	}
}

func TestNestedSeesAncestorProcs(t *testing.T) {
	src := `
program n;
global g;
proc top(ref a)
  proc mid(ref b)
    proc bot(ref c)
    begin
      call top(c);
      call mid(c);
      call helper(c)
    end;
  begin call bot(b) end;
begin call mid(a) end;
proc helper(ref h) begin h := 0 end;
begin call top(g) end.
`
	p := mustAnalyze(t, src)
	if p.NumProcs() != 5 {
		t.Fatalf("procs = %d", p.NumProcs())
	}
	if p.Proc("bot").Level != 2 {
		t.Errorf("bot level = %d", p.Proc("bot").Level)
	}
}

func TestErrUndeclaredVariable(t *testing.T) {
	wantErr(t, "program p; begin x := 1 end.", "undeclared variable")
}

func TestErrUndeclaredProc(t *testing.T) {
	wantErr(t, "program p; begin call q() end.", "undeclared procedure")
}

func TestErrDuplicateGlobal(t *testing.T) {
	wantErr(t, "program p; global x, x; begin end.", "duplicate global")
}

func TestErrDuplicateParam(t *testing.T) {
	wantErr(t, "program p; proc q(ref a, val a) begin end; begin end.", "duplicate parameter")
}

func TestErrDuplicateLocal(t *testing.T) {
	wantErr(t, "program p; proc q() var t, t; begin end; begin end.", "duplicate local")
}

func TestErrDuplicateProc(t *testing.T) {
	wantErr(t, "program p; proc q() begin end; proc q() begin end; begin end.", "duplicate procedure")
}

func TestErrArity(t *testing.T) {
	wantErr(t, "program p; global x; proc q(ref a) begin end; begin call q(x, x) end.", "2 arguments for 1")
}

func TestErrRefNeedsLValue(t *testing.T) {
	wantErr(t, "program p; global x; proc q(ref a) begin end; begin call q(x + 1) end.", "must be a variable")
}

func TestErrRankMismatchActual(t *testing.T) {
	wantErr(t, `
program p;
global A[5, 5];
proc q(ref a[*]) begin a[1] := 0 end;
begin call q(A) end.
`, "rank")
}

func TestErrValArray(t *testing.T) {
	wantErr(t, "program p; proc q(val a[*]) begin end; begin end.", "cannot be an array")
}

func TestErrWholeArrayInExpr(t *testing.T) {
	wantErr(t, "program p; global A[5], x; begin x := A end.", "whole array")
}

func TestErrScalarSubscripted(t *testing.T) {
	wantErr(t, "program p; global x; begin x[1] := 0 end.", "rank 0")
}

func TestErrSubscriptCount(t *testing.T) {
	wantErr(t, "program p; global A[5, 5]; begin A[1] := 0 end.", "rank 2, got 1")
}

func TestErrArrayAsSubscript(t *testing.T) {
	wantErr(t, "program p; global A[5], B[5]; begin A[B] := 0 end.", "used as a subscript")
}

func TestErrValSection(t *testing.T) {
	wantErr(t, `
program p;
global A[5];
proc q(val n) begin end;
begin call q(A[*]) end.
`, "section")
}

func TestErrForIndexArray(t *testing.T) {
	wantErr(t, "program p; global A[5]; begin for A := 1 to 2 do end end.", "is an array")
}

func TestValArgElementOk(t *testing.T) {
	// Passing an array element by value is fine; uses include the
	// array and the subscript variable.
	src := `
program p;
global A[5], i;
proc q(val n) begin end;
begin call q(A[i]) end.
`
	prog := mustAnalyze(t, src)
	if !prog.Main.IUSE.Has(prog.Var("A").ID) || !prog.Main.IUSE.Has(prog.Var("i").ID) {
		t.Errorf("IUSE(main) = %v", prog.Main.IUSE)
	}
	cs := prog.Sites[0]
	if cs.Args[0].Var != nil {
		t.Errorf("element val actual should not record a root Var, got %+v", cs.Args[0])
	}
}

func TestValidatePasses(t *testing.T) {
	p := mustAnalyze(t, nestedProgram)
	if err := p.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestRepeatFacts(t *testing.T) {
	p := mustAnalyze(t, `
program rf;
global x, y;
begin
  repeat x := x + 1 until x > y
end.
`)
	if !p.Main.IMOD.Has(p.Var("x").ID) {
		t.Error("IMOD(main) missing x")
	}
	if !p.Main.IUSE.Has(p.Var("y").ID) || !p.Main.IUSE.Has(p.Var("x").ID) {
		t.Errorf("IUSE(main) = %v", p.Main.IUSE)
	}
}
