// Package sem performs name resolution and semantic checking of
// MiniPL syntax trees and lowers them to the ir.Program model.
//
// Scoping rules (Pascal-style):
//   - program globals are visible everywhere;
//   - a procedure sees its own formals and locals, then those of its
//     lexical ancestors, then the globals (inner declarations shadow
//     outer ones);
//   - a procedure may call: procedures declared in the same scope
//     (including itself — recursion and mutual recursion are legal),
//     procedures nested immediately within it, and procedures visible
//     in any enclosing scope. Forward references are permitted.
//
// Semantic rules enforced here:
//   - no duplicate declaration within one scope;
//   - subscript count equals declared rank; scalars take no subscripts;
//   - whole arrays and array sections appear only as ref actuals;
//   - val formals are scalars, and val actuals are scalar expressions;
//   - a ref actual is an lvalue whose rank matches the formal's rank
//     (the number of `*` markers of a section, the declared rank of a
//     whole-array reference, 0 for an element or scalar).
package sem

import (
	"errors"
	"fmt"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/token"
)

// Analyze resolves and lowers a parsed program. On error the returned
// program is nil and the error joins every diagnostic found.
func Analyze(prog *ast.Program) (*ir.Program, error) {
	a := &analyzer{
		b:       ir.NewBuilder(prog.Name),
		procs:   make(map[*ast.ProcDecl]*ir.Procedure),
		globals: make(map[string]*ir.Variable),
	}
	a.run(prog)
	if len(a.errs) > 0 {
		return nil, errors.Join(a.errs...)
	}
	p, err := a.b.Finish()
	if err != nil {
		return nil, err
	}
	return p, nil
}

// AnalyzeSource parses and analyzes MiniPL source text in one step.
func AnalyzeSource(src string) (*ir.Program, error) {
	tree, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Analyze(tree)
}

type analyzer struct {
	b       *ir.Builder
	errs    []error
	globals map[string]*ir.Variable
	procs   map[*ast.ProcDecl]*ir.Procedure
}

func (a *analyzer) errorf(pos token.Pos, format string, args ...any) {
	a.errs = append(a.errs, fmt.Errorf("%s: sem: %s", pos, fmt.Sprintf(format, args...)))
}

// scope is a chain of visible declarations for one procedure body.
type scope struct {
	parent *scope
	proc   *ir.Procedure // procedure owning this scope; nil for the program scope
	vars   map[string]*ir.Variable
	// procsByName maps callee names visible at this level: nested
	// procedures of proc (or top-level procedures for the program
	// scope) plus proc itself.
	procsByName map[string]*ir.Procedure
}

func (s *scope) lookupVar(name string) *ir.Variable {
	for sc := s; sc != nil; sc = sc.parent {
		if v, ok := sc.vars[name]; ok {
			return v
		}
	}
	return nil
}

func (s *scope) lookupProc(name string) *ir.Procedure {
	for sc := s; sc != nil; sc = sc.parent {
		if p, ok := sc.procsByName[name]; ok {
			return p
		}
	}
	return nil
}

func (a *analyzer) run(prog *ast.Program) {
	root := &scope{
		vars:        make(map[string]*ir.Variable),
		procsByName: make(map[string]*ir.Procedure),
	}
	for _, g := range prog.Globals {
		if _, dup := root.vars[g.Name]; dup {
			a.errorf(g.Pos, "duplicate global %q", g.Name)
			continue
		}
		v := a.b.Global(g.Name, g.Dims...)
		v.Pos = g.Pos
		root.vars[g.Name] = v
		a.globals[g.Name] = v
	}
	// Declare all top-level procedures first (forward references).
	for _, pd := range prog.Procs {
		if _, dup := root.procsByName[pd.Name]; dup {
			a.errorf(pd.Pos, "duplicate procedure %q", pd.Name)
			continue
		}
		a.declareProc(pd, nil, root)
	}
	// Then their bodies.
	for _, pd := range prog.Procs {
		if p, ok := a.procs[pd]; ok {
			a.procBody(pd, p, root)
		}
	}
	// Main body executes in the program scope.
	main := a.b.Main()
	main.Pos = prog.Pos
	if prog.Body != nil {
		main.Pos = prog.Body.Pos
	}
	mainScope := &scope{parent: root, proc: main,
		vars:        map[string]*ir.Variable{},
		procsByName: map[string]*ir.Procedure{},
	}
	if prog.Body != nil {
		a.block(prog.Body, main, mainScope)
	}
}

// declareProc creates the ir.Procedure and its formal parameters (the
// header), so that calls from siblings declared earlier in the same
// scope resolve with the right arity before pd's own body is visited.
func (a *analyzer) declareProc(pd *ast.ProcDecl, parent *ir.Procedure, enclosing *scope) {
	p := a.b.Proc(pd.Name, parent)
	p.Pos = pd.Pos
	a.procs[pd] = p
	enclosing.procsByName[pd.Name] = p
	seen := make(map[string]bool)
	for _, prm := range pd.Params {
		if seen[prm.Name] {
			a.errorf(prm.Pos, "duplicate parameter %q in %s", prm.Name, pd.Name)
			continue
		}
		seen[prm.Name] = true
		kind := ir.FormalRef
		if prm.Mode == ast.ByVal {
			kind = ir.FormalVal
			if prm.Rank > 0 {
				a.errorf(prm.Pos, "val parameter %q of %s cannot be an array", prm.Name, pd.Name)
			}
		}
		v := a.b.Formal(p, prm.Name, kind, prm.Rank)
		v.Pos = prm.Pos
	}
}

// procBody resolves the declarations and statements of pd.
func (a *analyzer) procBody(pd *ast.ProcDecl, p *ir.Procedure, enclosing *scope) {
	sc := &scope{parent: enclosing, proc: p,
		vars:        make(map[string]*ir.Variable),
		procsByName: make(map[string]*ir.Procedure),
	}
	sc.procsByName[pd.Name] = p // direct recursion
	for _, v := range p.Formals {
		sc.vars[v.Name] = v
	}
	for _, ld := range pd.Locals {
		if _, dup := sc.vars[ld.Name]; dup {
			a.errorf(ld.Pos, "duplicate local %q in %s", ld.Name, pd.Name)
			continue
		}
		v := a.b.Local(p, ld.Name, ld.Dims...)
		v.Pos = ld.Pos
		sc.vars[ld.Name] = v
	}
	for _, nd := range pd.Nested {
		if _, dup := sc.procsByName[nd.Name]; dup && nd.Name != pd.Name {
			a.errorf(nd.Pos, "duplicate nested procedure %q in %s", nd.Name, pd.Name)
			continue
		}
		a.declareProc(nd, p, sc)
	}
	for _, nd := range pd.Nested {
		if np, ok := a.procs[nd]; ok {
			a.procBody(nd, np, sc)
		}
	}
	if pd.Body != nil {
		a.block(pd.Body, p, sc)
	}
}

func (a *analyzer) block(b *ast.Block, p *ir.Procedure, sc *scope) {
	for _, s := range b.Stmts {
		a.stmt(s, p, sc)
	}
}

func (a *analyzer) stmt(s ast.Stmt, p *ir.Procedure, sc *scope) {
	switch s := s.(type) {
	case *ast.Block:
		a.block(s, p, sc)
	case *ast.Assign:
		a.target(s.Target, p, sc)
		a.expr(s.Value, p, sc)
	case *ast.Read:
		a.target(s.Target, p, sc)
	case *ast.Write:
		a.expr(s.Value, p, sc)
	case *ast.If:
		a.expr(s.Cond, p, sc)
		a.block(s.Then, p, sc)
		if s.Else != nil {
			a.block(s.Else, p, sc)
		}
	case *ast.While:
		a.expr(s.Cond, p, sc)
		a.block(s.Body, p, sc)
	case *ast.Repeat:
		a.block(s.Body, p, sc)
		a.expr(s.Cond, p, sc)
	case *ast.For:
		v := a.resolveVar(s.Index.Name, s.Index.Pos, sc)
		if v != nil {
			if v.Rank() != 0 {
				a.errorf(s.Index.Pos, "for-loop index %q is an array", v.Name)
				v = nil
			} else {
				a.b.Mod(p, v)
				a.b.Use(p, v) // the loop reads the index to test the bound
			}
		}
		a.expr(s.Lo, p, sc)
		a.expr(s.Hi, p, sc)
		// Every call site created while the body is resolved is
		// textually inside the loop (procedure declarations cannot
		// appear in statement position, so all new sites belong to p).
		nSites := len(p.Calls)
		a.block(s.Body, p, sc)
		if v != nil && len(p.Calls) > nSites {
			a.b.Loop(p, v, p.Calls[nSites:len(p.Calls):len(p.Calls)], s.Pos)
		}
	case *ast.Call:
		a.call(s, p, sc)
	default:
		panic(fmt.Sprintf("sem: unknown statement %T", s))
	}
}

func (a *analyzer) resolveVar(name string, pos token.Pos, sc *scope) *ir.Variable {
	v := sc.lookupVar(name)
	if v == nil {
		a.errorf(pos, "undeclared variable %q", name)
	}
	return v
}

// target processes a definition of a variable (assignment LHS, read,
// loop index).
func (a *analyzer) target(t *ast.VarRef, p *ir.Procedure, sc *scope) {
	v := a.resolveVar(t.Name, t.Pos, sc)
	if v == nil {
		return
	}
	if len(t.Subs) != v.Rank() {
		a.errorf(t.Pos, "%q has rank %d, got %d subscripts", v.Name, v.Rank(), len(t.Subs))
		return
	}
	if v.Rank() == 0 {
		a.b.Mod(p, v)
		return
	}
	subs := a.subList(t.Subs, p, sc)
	a.b.Access(p, v, subs, true, t.Pos)
}

// subList classifies subscript expressions and records their uses.
func (a *analyzer) subList(exprs []ast.Expr, p *ir.Procedure, sc *scope) []ir.Sub {
	subs := make([]ir.Sub, 0, len(exprs))
	for _, e := range exprs {
		subs = append(subs, a.subOf(e, p, sc))
	}
	return subs
}

func (a *analyzer) subOf(e ast.Expr, p *ir.Procedure, sc *scope) ir.Sub {
	switch e := e.(type) {
	case *ast.IntLit:
		return ir.Sub{Kind: ir.SubConst, Const: e.Value}
	case *ast.VarRef:
		if len(e.Subs) == 0 {
			v := a.resolveVar(e.Name, e.Pos, sc)
			if v == nil {
				return ir.Sub{Kind: ir.SubOther}
			}
			if v.Rank() != 0 {
				a.errorf(e.Pos, "array %q used as a subscript", v.Name)
				return ir.Sub{Kind: ir.SubOther}
			}
			return ir.Sub{Kind: ir.SubSym, Sym: v}
		}
	}
	// General expression: record its uses and classify as opaque.
	a.expr(e, p, sc)
	return ir.Sub{Kind: ir.SubOther}
}

// expr records the uses (and array read accesses) of an expression.
func (a *analyzer) expr(e ast.Expr, p *ir.Procedure, sc *scope) {
	switch e := e.(type) {
	case *ast.IntLit:
	case *ast.VarRef:
		v := a.resolveVar(e.Name, e.Pos, sc)
		if v == nil {
			return
		}
		if len(e.Subs) != v.Rank() {
			if v.Rank() > 0 && len(e.Subs) == 0 {
				a.errorf(e.Pos, "whole array %q cannot appear in an expression", v.Name)
			} else {
				a.errorf(e.Pos, "%q has rank %d, got %d subscripts", v.Name, v.Rank(), len(e.Subs))
			}
			return
		}
		if v.Rank() == 0 {
			a.b.Use(p, v)
			return
		}
		subs := a.subList(e.Subs, p, sc)
		a.b.Access(p, v, subs, false, e.Pos)
	case *ast.SectionRef:
		a.errorf(e.Pos, "array section %q cannot appear in an expression", e.Name)
	case *ast.Unary:
		a.expr(e.X, p, sc)
	case *ast.Binary:
		a.expr(e.L, p, sc)
		a.expr(e.R, p, sc)
	default:
		panic(fmt.Sprintf("sem: unknown expression %T", e))
	}
}

// exprUses collects the scalar variables read by an expression,
// delegating the fact recording to expr; it additionally returns the
// list for attachment to an Actual.
func (a *analyzer) exprUses(e ast.Expr, sc *scope) []*ir.Variable {
	var uses []*ir.Variable
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.IntLit:
		case *ast.VarRef:
			if v := sc.lookupVar(e.Name); v != nil {
				uses = append(uses, v)
			}
			for _, s := range e.Subs {
				walk(s)
			}
		case *ast.Unary:
			walk(e.X)
		case *ast.Binary:
			walk(e.L)
			walk(e.R)
		}
	}
	walk(e)
	return uses
}

func (a *analyzer) call(c *ast.Call, p *ir.Procedure, sc *scope) {
	callee := sc.lookupProc(c.Name)
	if callee == nil {
		a.errorf(c.Pos, "call to undeclared procedure %q", c.Name)
		return
	}
	if len(c.Args) != len(callee.Formals) {
		a.errorf(c.Pos, "call to %s: %d arguments for %d parameters",
			callee.Name, len(c.Args), len(callee.Formals))
		return
	}
	args := make([]ir.Actual, 0, len(c.Args))
	bad := false
	for i, arg := range c.Args {
		f := callee.Formals[i]
		var act ir.Actual
		act.Mode = f.Kind
		switch f.Kind {
		case ir.FormalRef:
			if arg.Section == nil {
				a.errorf(arg.Pos, "call to %s: argument %d must be a variable (ref parameter %s)",
					callee.Name, i+1, f.Name)
				bad = true
				continue
			}
			v := a.resolveVar(arg.Section.Name, arg.Section.Pos, sc)
			if v == nil {
				bad = true
				continue
			}
			act.Var = v
			if arg.Section.Subs != nil {
				if len(arg.Section.Subs) != v.Rank() {
					a.errorf(arg.Section.Pos, "%q has rank %d, got %d subscripts",
						v.Name, v.Rank(), len(arg.Section.Subs))
					bad = true
					continue
				}
				act.Subs = make([]ir.Sub, 0, len(arg.Section.Subs))
				for di, se := range arg.Section.Subs {
					if arg.Section.Star(di) {
						act.Subs = append(act.Subs, ir.Sub{Kind: ir.SubStar})
						continue
					}
					sub := a.subOf(se, p, sc)
					if sub.Kind == ir.SubSym {
						act.Uses = append(act.Uses, sub.Sym)
					} else if sub.Kind == ir.SubOther {
						act.Uses = append(act.Uses, a.exprUses(se, sc)...)
					}
					act.Subs = append(act.Subs, sub)
				}
			}
			if act.Rank() != f.Rank() {
				a.errorf(arg.Pos, "call to %s: argument %d has rank %d, parameter %s has rank %d",
					callee.Name, i+1, act.Rank(), f.Name, f.Rank())
				bad = true
				continue
			}
		case ir.FormalVal:
			var e ast.Expr
			if arg.Section != nil {
				if arg.Section.NumStars() > 0 {
					a.errorf(arg.Pos, "call to %s: array section passed to val parameter %s",
						callee.Name, f.Name)
					bad = true
					continue
				}
				e = &ast.VarRef{Name: arg.Section.Name, Subs: arg.Section.Subs, Pos: arg.Section.Pos}
			} else {
				e = arg.Value
			}
			// Validate and record facts in the caller, then collect the
			// use list for the Actual.
			a.expr(e, p, sc)
			if vr, ok := e.(*ast.VarRef); ok && len(vr.Subs) == 0 {
				if v := sc.lookupVar(vr.Name); v != nil {
					if v.Rank() > 0 {
						bad = true
						continue // already diagnosed by expr
					}
					act.Var = v
				}
			}
			act.Uses = a.exprUses(e, sc)
		}
		args = append(args, act)
	}
	if bad {
		return
	}
	a.b.Call(p, callee, args, c.Pos)
}
