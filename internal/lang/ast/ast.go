// Package ast defines the abstract syntax tree for MiniPL programs.
//
// The tree is deliberately small: the interprocedural analyses are
// flow-insensitive, so the AST's job is to carry declarations, call
// sites, and enough expression structure to extract local side-effect
// facts (LMOD/LUSE) and regular-section subscript patterns.
package ast

import "sideeffect/internal/lang/token"

// Program is a complete MiniPL compilation unit.
type Program struct {
	Name    string
	Globals []*VarDecl
	Procs   []*ProcDecl // top-level procedure declarations, in order
	Body    *Block      // the main program body
	Pos     token.Pos
}

// VarDecl declares a scalar or array variable. Dims is nil for
// scalars; each entry is a declared extent.
type VarDecl struct {
	Name string
	Dims []int
	Pos  token.Pos
}

// ParamMode distinguishes by-reference from by-value formals.
type ParamMode int

// Parameter modes.
const (
	ByRef ParamMode = iota
	ByVal
)

// String renders the mode keyword.
func (m ParamMode) String() string {
	if m == ByRef {
		return "ref"
	}
	return "val"
}

// Param declares a formal parameter. Rank > 0 declares an array
// formal of that rank (extents are assumed, Fortran-style).
type Param struct {
	Mode ParamMode
	Name string
	Rank int
	Pos  token.Pos
}

// ProcDecl declares a procedure, possibly with nested procedure
// declarations (Pascal-style lexical nesting).
type ProcDecl struct {
	Name   string
	Params []*Param
	Locals []*VarDecl
	Nested []*ProcDecl
	Body   *Block
	Pos    token.Pos
}

// Stmt is implemented by all statement nodes.
type Stmt interface{ stmt() }

// Block is a begin/end statement sequence.
type Block struct {
	Stmts []Stmt
	Pos   token.Pos
}

// Assign is `target := expr`.
type Assign struct {
	Target *VarRef
	Value  Expr
	Pos    token.Pos
}

// Call is `call p(args)`.
type Call struct {
	Name string
	Args []*Arg
	Pos  token.Pos
}

// Arg is an actual parameter. Exactly one of Section or Value is set:
// Section when the argument is a variable reference (possibly
// subscripted or with `*` section markers, legal for ref formals),
// Value for a general expression (legal only for val formals).
// The parser produces Section for any argument that is syntactically a
// variable reference so that the semantic phase can decide by the
// formal's mode.
type Arg struct {
	Section *SectionRef
	Value   Expr
	Pos     token.Pos
}

// If is `if cond then ... [else ...] end`.
type If struct {
	Cond Expr
	Then *Block
	Else *Block // nil when absent
	Pos  token.Pos
}

// While is `while cond do ... end`.
type While struct {
	Cond Expr
	Body *Block
	Pos  token.Pos
}

// For is `for i := lo to hi do ... end`. The index variable is
// modified by the loop.
type For struct {
	Index *VarRef
	Lo    Expr
	Hi    Expr
	Body  *Block
	Pos   token.Pos
}

// Repeat is `repeat ... until cond` (the body runs at least once; the
// loop exits when cond becomes true).
type Repeat struct {
	Body *Block
	Cond Expr
	Pos  token.Pos
}

// Read is `read target` (modifies the target).
type Read struct {
	Target *VarRef
	Pos    token.Pos
}

// Write is `write expr` (uses the expression).
type Write struct {
	Value Expr
	Pos   token.Pos
}

func (*Block) stmt()  {}
func (*Assign) stmt() {}
func (*Call) stmt()   {}
func (*If) stmt()     {}
func (*While) stmt()  {}
func (*For) stmt()    {}
func (*Repeat) stmt() {}
func (*Read) stmt()   {}
func (*Write) stmt()  {}

// Expr is implemented by all expression nodes.
type Expr interface{ expr() }

// IntLit is an integer literal.
type IntLit struct {
	Value int
	Pos   token.Pos
}

// VarRef is a use or definition of a variable, possibly subscripted.
type VarRef struct {
	Name string
	Subs []Expr // nil for scalars / whole-array references
	Pos  token.Pos
}

// SectionRef is a variable reference in actual-parameter position
// where each dimension is either an expression or a `*` marker
// selecting the whole extent of that dimension, e.g. A[*, j] (column
// j). Subs[i] == nil encodes `*`. A bare variable name has Subs nil.
type SectionRef struct {
	Name string
	Subs []Expr // nil slice: whole variable; nil element: `*`
	Pos  token.Pos
}

// Star reports whether dimension i of the section is a `*` marker.
func (s *SectionRef) Star(i int) bool { return s.Subs != nil && s.Subs[i] == nil }

// NumStars counts `*` dimensions. For a bare (unsubscripted) array
// reference the caller should instead use the variable's declared
// rank.
func (s *SectionRef) NumStars() int {
	n := 0
	for i := range s.Subs {
		if s.Subs[i] == nil {
			n++
		}
	}
	return n
}

// Unary is a unary operation (`-x`, `not b`).
type Unary struct {
	Op  token.Kind
	X   Expr
	Pos token.Pos
}

// Binary is a binary operation.
type Binary struct {
	Op   token.Kind
	L, R Expr
	Pos  token.Pos
}

func (*IntLit) expr()     {}
func (*VarRef) expr()     {}
func (*SectionRef) expr() {}
func (*Unary) expr()      {}
func (*Binary) expr()     {}
