// Package token defines the lexical tokens of MiniPL, the small
// imperative source language used to drive the interprocedural
// analyses. MiniPL is a Fortran/Pascal hybrid chosen to exercise
// exactly the features the paper's algorithms depend on: global
// variables, call-by-reference and call-by-value formal parameters,
// nested procedure declarations, arrays (for regular section
// analysis), and recursion.
package token

import "fmt"

// Kind enumerates the lexical token kinds.
type Kind int

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT // x, swap
	INT   // 42

	// Punctuation.
	LPAREN    // (
	RPAREN    // )
	LBRACKET  // [
	RBRACKET  // ]
	COMMA     // ,
	SEMICOLON // ;
	PERIOD    // .
	ASSIGN    // :=
	STAR      // * (also the "whole dimension" marker in sections)

	// Operators.
	PLUS  // +
	MINUS // -
	SLASH // /
	EQ    // =
	NEQ   // <>
	LT    // <
	LE    // <=
	GT    // >
	GE    // >=

	// Keywords.
	PROGRAM
	GLOBAL
	PROC
	VAR
	REF
	VAL
	BEGIN
	END
	CALL
	IF
	THEN
	ELSE
	WHILE
	DO
	FOR
	TO
	REPEAT
	UNTIL
	READ
	WRITE
	AND
	OR
	NOT
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT",
	LPAREN: "(", RPAREN: ")", LBRACKET: "[", RBRACKET: "]",
	COMMA: ",", SEMICOLON: ";", PERIOD: ".", ASSIGN: ":=", STAR: "*",
	PLUS: "+", MINUS: "-", SLASH: "/",
	EQ: "=", NEQ: "<>", LT: "<", LE: "<=", GT: ">", GE: ">=",
	PROGRAM: "program", GLOBAL: "global", PROC: "proc", VAR: "var",
	REF: "ref", VAL: "val", BEGIN: "begin", END: "end", CALL: "call",
	IF: "if", THEN: "then", ELSE: "else", WHILE: "while", DO: "do",
	FOR: "for", TO: "to", REPEAT: "repeat", UNTIL: "until",
	READ: "read", WRITE: "write",
	AND: "and", OR: "or", NOT: "not",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their kinds.
var Keywords = map[string]Kind{
	"program": PROGRAM, "global": GLOBAL, "proc": PROC, "var": VAR,
	"ref": REF, "val": VAL, "begin": BEGIN, "end": END, "call": CALL,
	"if": IF, "then": THEN, "else": ELSE, "while": WHILE, "do": DO,
	"for": FOR, "to": TO, "repeat": REPEAT, "until": UNTIL,
	"read": READ, "write": WRITE,
	"and": AND, "or": OR, "not": NOT,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT, ILLEGAL:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
