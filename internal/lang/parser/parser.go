// Package parser implements a recursive-descent parser for MiniPL.
//
// The parser is error-tolerant: it accumulates diagnostics and
// synchronizes at statement boundaries, so a single Parse call reports
// as many independent errors as it can find. Semicolons between
// statements are accepted but optional (statement boundaries are
// unambiguous in the grammar).
package parser

import (
	"errors"
	"fmt"
	"strconv"

	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/lexer"
	"sideeffect/internal/lang/token"
)

const maxErrors = 25

// Parser holds parsing state for one source unit.
type Parser struct {
	toks []token.Token
	pos  int
	errs []error
}

// Parse parses a complete MiniPL program. On any syntax error it
// returns a non-nil error (the errors joined); the returned Program
// may still be partially populated for tooling that wants a best
// effort tree.
func Parse(src string) (*ast.Program, error) {
	toks, lexErrs := lexer.All(src)
	p := &Parser{toks: toks}
	p.errs = append(p.errs, lexErrs...)
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, errors.Join(p.errs...)
	}
	return prog, nil
}

type bailout struct{}

func (p *Parser) errorf(pos token.Pos, format string, args ...any) {
	if len(p.errs) < maxErrors {
		p.errs = append(p.errs, fmt.Errorf("%s: parse: %s", pos, fmt.Sprintf(format, args...)))
	}
	if len(p.errs) >= maxErrors {
		panic(bailout{})
	}
}

func (p *Parser) cur() token.Token { return p.toks[p.pos] }
func (p *Parser) peek() token.Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) next() token.Token {
	t := p.cur()
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

// sync skips tokens until a likely statement boundary.
func (p *Parser) sync() {
	for {
		switch p.cur().Kind {
		case token.EOF, token.SEMICOLON, token.END, token.BEGIN,
			token.PROC, token.ELSE, token.UNTIL:
			return
		}
		p.next()
	}
}

func (p *Parser) parseProgram() (prog *ast.Program) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			if prog == nil {
				prog = &ast.Program{Name: "<error>"}
			}
		}
	}()
	prog = &ast.Program{Pos: p.cur().Pos}
	p.expect(token.PROGRAM)
	prog.Name = p.expect(token.IDENT).Text
	p.expect(token.SEMICOLON)
	for {
		switch p.cur().Kind {
		case token.GLOBAL:
			prog.Globals = append(prog.Globals, p.parseGlobalDecl()...)
		case token.PROC:
			prog.Procs = append(prog.Procs, p.parseProcDecl())
		case token.BEGIN:
			prog.Body = p.parseBlock()
			p.expect(token.PERIOD)
			if !p.at(token.EOF) {
				p.errorf(p.cur().Pos, "trailing input after final '.'")
			}
			return prog
		case token.EOF:
			p.errorf(p.cur().Pos, "missing main 'begin ... end.' block")
			return prog
		default:
			p.errorf(p.cur().Pos, "expected 'global', 'proc', or 'begin', found %s", p.cur())
			p.sync()
			if p.at(token.SEMICOLON) {
				p.next()
			}
		}
	}
}

func (p *Parser) parseGlobalDecl() []*ast.VarDecl {
	p.expect(token.GLOBAL)
	var out []*ast.VarDecl
	for {
		out = append(out, p.parseVarSpec())
		if !p.accept(token.COMMA) {
			break
		}
	}
	p.expect(token.SEMICOLON)
	return out
}

func (p *Parser) parseVarSpec() *ast.VarDecl {
	t := p.expect(token.IDENT)
	d := &ast.VarDecl{Name: t.Text, Pos: t.Pos}
	if p.accept(token.LBRACKET) {
		for {
			it := p.expect(token.INT)
			n, err := strconv.Atoi(it.Text)
			if err != nil || n <= 0 {
				p.errorf(it.Pos, "invalid array extent %q", it.Text)
				n = 1
			}
			d.Dims = append(d.Dims, n)
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACKET)
	}
	return d
}

func (p *Parser) parseProcDecl() *ast.ProcDecl {
	pos := p.expect(token.PROC).Pos
	d := &ast.ProcDecl{Pos: pos}
	d.Name = p.expect(token.IDENT).Text
	p.expect(token.LPAREN)
	if !p.at(token.RPAREN) {
		for {
			d.Params = append(d.Params, p.parseParam())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	p.accept(token.SEMICOLON) // optional ';' after the header
	for {
		switch p.cur().Kind {
		case token.VAR:
			p.next()
			for {
				d.Locals = append(d.Locals, p.parseVarSpec())
				if !p.accept(token.COMMA) {
					break
				}
			}
			p.expect(token.SEMICOLON)
		case token.PROC:
			d.Nested = append(d.Nested, p.parseProcDecl())
		case token.BEGIN:
			d.Body = p.parseBlock()
			p.accept(token.SEMICOLON) // optional ';' after 'end'
			return d
		default:
			p.errorf(p.cur().Pos, "expected 'var', 'proc', or 'begin' in procedure %s, found %s", d.Name, p.cur())
			p.sync()
			if p.at(token.EOF) || p.at(token.END) {
				d.Body = &ast.Block{Pos: p.cur().Pos}
				return d
			}
			p.accept(token.SEMICOLON)
		}
	}
}

func (p *Parser) parseParam() *ast.Param {
	var mode ast.ParamMode
	switch p.cur().Kind {
	case token.REF:
		mode = ast.ByRef
		p.next()
	case token.VAL:
		mode = ast.ByVal
		p.next()
	default:
		p.errorf(p.cur().Pos, "expected 'ref' or 'val', found %s", p.cur())
		mode = ast.ByRef
	}
	t := p.expect(token.IDENT)
	prm := &ast.Param{Mode: mode, Name: t.Text, Pos: t.Pos}
	if p.accept(token.LBRACKET) {
		for {
			st := p.expect(token.STAR)
			_ = st
			prm.Rank++
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACKET)
	}
	return prm
}

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{Pos: p.cur().Pos}
	p.expect(token.BEGIN)
	b.Stmts = p.parseStmtList()
	p.expect(token.END)
	return b
}

// parseStmtList parses statements until 'end', 'else', or EOF.
func (p *Parser) parseStmtList() []ast.Stmt {
	var out []ast.Stmt
	for {
		for p.accept(token.SEMICOLON) {
		}
		switch p.cur().Kind {
		case token.END, token.ELSE, token.UNTIL, token.EOF, token.PERIOD:
			return out
		}
		s := p.parseStmt()
		if s != nil {
			out = append(out, s)
		}
	}
}

func (p *Parser) parseStmt() ast.Stmt {
	switch p.cur().Kind {
	case token.BEGIN:
		return p.parseBlock()
	case token.IDENT:
		return p.parseAssign()
	case token.CALL:
		return p.parseCall()
	case token.IF:
		return p.parseIf()
	case token.WHILE:
		return p.parseWhile()
	case token.FOR:
		return p.parseFor()
	case token.REPEAT:
		return p.parseRepeat()
	case token.READ:
		pos := p.next().Pos
		return &ast.Read{Target: p.parseVarRef(), Pos: pos}
	case token.WRITE:
		pos := p.next().Pos
		return &ast.Write{Value: p.parseExpr(), Pos: pos}
	default:
		p.errorf(p.cur().Pos, "expected statement, found %s", p.cur())
		p.sync()
		p.accept(token.SEMICOLON)
		return nil
	}
}

func (p *Parser) parseVarRef() *ast.VarRef {
	t := p.expect(token.IDENT)
	v := &ast.VarRef{Name: t.Text, Pos: t.Pos}
	if p.accept(token.LBRACKET) {
		for {
			v.Subs = append(v.Subs, p.parseExpr())
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACKET)
	}
	return v
}

func (p *Parser) parseAssign() ast.Stmt {
	target := p.parseVarRef()
	pos := p.expect(token.ASSIGN).Pos
	return &ast.Assign{Target: target, Value: p.parseExpr(), Pos: pos}
}

func (p *Parser) parseCall() ast.Stmt {
	pos := p.expect(token.CALL).Pos
	c := &ast.Call{Pos: pos}
	c.Name = p.expect(token.IDENT).Text
	p.expect(token.LPAREN)
	if !p.at(token.RPAREN) {
		for {
			c.Args = append(c.Args, p.parseArg())
			if !p.accept(token.COMMA) {
				break
			}
		}
	}
	p.expect(token.RPAREN)
	return c
}

// parseArg parses an actual parameter. A bare variable reference,
// array element, or array section (with '*' markers) becomes a
// SectionRef; anything else is a value expression. A variable
// reference followed by an operator is re-interpreted as the left
// operand of a value expression.
func (p *Parser) parseArg() *ast.Arg {
	pos := p.cur().Pos
	if p.at(token.IDENT) {
		sec := p.parseSectionRef()
		if p.at(token.COMMA) || p.at(token.RPAREN) {
			return &ast.Arg{Section: sec, Pos: pos}
		}
		// Operator follows: the reference is part of a larger expression.
		if sec.NumStars() > 0 {
			p.errorf(pos, "array section %s cannot appear inside an expression", sec.Name)
		}
		left := ast.Expr(&ast.VarRef{Name: sec.Name, Subs: sec.Subs, Pos: sec.Pos})
		return &ast.Arg{Value: p.parseBinaryFrom(left, 1), Pos: pos}
	}
	return &ast.Arg{Value: p.parseExpr(), Pos: pos}
}

func (p *Parser) parseSectionRef() *ast.SectionRef {
	t := p.expect(token.IDENT)
	s := &ast.SectionRef{Name: t.Text, Pos: t.Pos}
	if p.accept(token.LBRACKET) {
		for {
			if p.accept(token.STAR) {
				s.Subs = append(s.Subs, nil)
			} else {
				s.Subs = append(s.Subs, p.parseExpr())
			}
			if !p.accept(token.COMMA) {
				break
			}
		}
		p.expect(token.RBRACKET)
	}
	return s
}

func (p *Parser) parseIf() ast.Stmt {
	pos := p.expect(token.IF).Pos
	s := &ast.If{Pos: pos}
	s.Cond = p.parseExpr()
	p.expect(token.THEN)
	s.Then = &ast.Block{Pos: p.cur().Pos, Stmts: p.parseStmtList()}
	if p.accept(token.ELSE) {
		s.Else = &ast.Block{Pos: p.cur().Pos, Stmts: p.parseStmtList()}
	}
	p.expect(token.END)
	return s
}

func (p *Parser) parseWhile() ast.Stmt {
	pos := p.expect(token.WHILE).Pos
	s := &ast.While{Pos: pos}
	s.Cond = p.parseExpr()
	p.expect(token.DO)
	s.Body = &ast.Block{Pos: p.cur().Pos, Stmts: p.parseStmtList()}
	p.expect(token.END)
	return s
}

func (p *Parser) parseFor() ast.Stmt {
	pos := p.expect(token.FOR).Pos
	s := &ast.For{Pos: pos}
	it := p.expect(token.IDENT)
	s.Index = &ast.VarRef{Name: it.Text, Pos: it.Pos}
	p.expect(token.ASSIGN)
	s.Lo = p.parseExpr()
	p.expect(token.TO)
	s.Hi = p.parseExpr()
	p.expect(token.DO)
	s.Body = &ast.Block{Pos: p.cur().Pos, Stmts: p.parseStmtList()}
	p.expect(token.END)
	return s
}

func (p *Parser) parseRepeat() ast.Stmt {
	pos := p.expect(token.REPEAT).Pos
	s := &ast.Repeat{Pos: pos}
	s.Body = &ast.Block{Pos: p.cur().Pos, Stmts: p.parseStmtList()}
	p.expect(token.UNTIL)
	s.Cond = p.parseExpr()
	return s
}

// Operator precedence (binding power); 0 means "not a binary operator".
func binPrec(k token.Kind) int {
	switch k {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH:
		return 5
	}
	return 0
}

func (p *Parser) parseExpr() ast.Expr {
	return p.parseBinaryFrom(p.parseUnary(), 1)
}

// parseBinaryFrom continues precedence-climbing with an already-parsed
// left operand (used by parseArg's backtrack-free re-interpretation).
func (p *Parser) parseBinaryFrom(left ast.Expr, minPrec int) ast.Expr {
	for {
		op := p.cur().Kind
		prec := binPrec(op)
		if prec < minPrec {
			return left
		}
		opTok := p.next()
		right := p.parseUnary()
		for binPrec(p.cur().Kind) > prec {
			right = p.parseBinaryFrom(right, prec+1)
		}
		left = &ast.Binary{Op: op, L: left, R: right, Pos: opTok.Pos}
	}
}

func (p *Parser) parseUnary() ast.Expr {
	switch p.cur().Kind {
	case token.MINUS:
		t := p.next()
		return &ast.Unary{Op: token.MINUS, X: p.parseUnary(), Pos: t.Pos}
	case token.NOT:
		t := p.next()
		return &ast.Unary{Op: token.NOT, X: p.parseUnary(), Pos: t.Pos}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.INT:
		t := p.next()
		n, err := strconv.Atoi(t.Text)
		if err != nil {
			p.errorf(t.Pos, "invalid integer literal %q", t.Text)
		}
		return &ast.IntLit{Value: n, Pos: t.Pos}
	case token.IDENT:
		return p.parseVarRef()
	case token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	default:
		t := p.cur()
		p.errorf(t.Pos, "expected expression, found %s", t)
		p.next()
		return &ast.IntLit{Value: 0, Pos: t.Pos}
	}
}
