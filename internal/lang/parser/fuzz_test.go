package parser_test

import (
	"math/rand"
	"strings"
	"testing"

	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/sem"
	"sideeffect/internal/workload"
)

// tokensPool are fragments a hostile or broken editor buffer might
// contain; the parser must neither panic nor hang on any arrangement.
var tokensPool = []string{
	"program", "global", "proc", "var", "ref", "val", "begin", "end",
	"call", "if", "then", "else", "while", "do", "for", "to", "repeat", "until", "read",
	"write", "and", "or", "not", "x", "A", "p", "42", "0", "(", ")",
	"[", "]", ",", ";", ".", ":=", "*", "+", "-", "/", "=", "<>", "<",
	"<=", ">", ">=", "{", "}", "{comment", ":", "#", "$",
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		var b strings.Builder
		n := r.Intn(60)
		for i := 0; i < n; i++ {
			b.WriteString(tokensPool[r.Intn(len(tokensPool))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", src, p)
				}
			}()
			_, _ = parser.Parse(src)
		}()
	}
}

func TestParseNeverPanicsOnMutatedValidSource(t *testing.T) {
	base := workload.Emit(workload.Random(workload.DefaultConfig(10, 5)))
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		// Apply a few random byte mutations.
		for k := 0; k < 1+r.Intn(5); k++ {
			switch r.Intn(3) {
			case 0: // flip
				b[r.Intn(len(b))] = byte(32 + r.Intn(95))
			case 1: // delete
				i := r.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 2: // duplicate a span
				i := r.Intn(len(b))
				j := i + r.Intn(len(b)-i)
				b = append(b[:j], append([]byte(string(b[i:j])), b[j:]...)...)
			}
		}
		src := string(b)
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on mutated source: %v\n%s", p, src)
				}
			}()
			tree, err := parser.Parse(src)
			if err == nil && tree != nil {
				// If it still parses, the semantic phase must also
				// hold up (it may error, but not panic).
				_, _ = sem.Analyze(tree)
			}
		}()
	}
}

// FuzzParse is a native fuzz target (run with `go test -fuzz=FuzzParse
// ./internal/lang/parser`); in normal test runs it exercises the seed
// corpus.
func FuzzParse(f *testing.F) {
	f.Add("program p; begin end.")
	f.Add("program p; global x; proc q(ref a) begin a := x end; begin call q(x) end.")
	f.Add("program p; global A[2, 2]; begin A[1, *] := 0 end.")
	f.Add("program")
	f.Add("{")
	f.Add("program p; begin x := := end.")
	f.Fuzz(func(t *testing.T, src string) {
		tree, err := parser.Parse(src)
		if err == nil && tree != nil {
			_, _ = sem.Analyze(tree)
		}
	})
}
