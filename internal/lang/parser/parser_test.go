package parser

import (
	"strings"
	"testing"

	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/token"
)

const goodProgram = `
program demo;

global x, y;
global A[100, 100];

proc swap(ref a, ref b)
  var t;
begin
  t := a;
  a := b;
  b := t
end;

proc outer(ref p, val n)
  var lo;
  proc inner(ref q)
  begin
    q := q + p;
    call swap(p, lo)
  end;
begin
  call inner(p);
  x := n;
  for lo := 1 to n do
    A[lo, 1] := lo
  end;
  if x < y then
    call swap(x, y)
  else
    write x
  end;
  while y > 0 do
    y := y - 1
  end
end;

begin
  call outer(x, 3);
  read y;
  call outer(A[1, 2], y + 1);
  write A[1, 2]
end.
`

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestParseGoodProgram(t *testing.T) {
	p := mustParse(t, goodProgram)
	if p.Name != "demo" {
		t.Errorf("Name = %q", p.Name)
	}
	if len(p.Globals) != 3 {
		t.Fatalf("globals = %d, want 3", len(p.Globals))
	}
	if g := p.Globals[2]; g.Name != "A" || len(g.Dims) != 2 || g.Dims[0] != 100 {
		t.Errorf("global A = %+v", g)
	}
	if len(p.Procs) != 2 {
		t.Fatalf("top-level procs = %d, want 2", len(p.Procs))
	}
	swap := p.Procs[0]
	if swap.Name != "swap" || len(swap.Params) != 2 || len(swap.Locals) != 1 {
		t.Errorf("swap = %+v", swap)
	}
	if swap.Params[0].Mode != ast.ByRef {
		t.Errorf("swap param 0 mode = %v", swap.Params[0].Mode)
	}
	outer := p.Procs[1]
	if len(outer.Nested) != 1 || outer.Nested[0].Name != "inner" {
		t.Fatalf("outer.Nested = %+v", outer.Nested)
	}
	if outer.Params[1].Mode != ast.ByVal {
		t.Errorf("outer param n mode = %v", outer.Params[1].Mode)
	}
	if len(swap.Body.Stmts) != 3 {
		t.Errorf("swap body = %d stmts", len(swap.Body.Stmts))
	}
	if p.Body == nil || len(p.Body.Stmts) != 4 {
		t.Fatalf("main body = %+v", p.Body)
	}
}

func TestParseStatements(t *testing.T) {
	p := mustParse(t, goodProgram)
	outer := p.Procs[1]
	stmts := outer.Body.Stmts
	if _, ok := stmts[0].(*ast.Call); !ok {
		t.Errorf("stmt 0 = %T, want Call", stmts[0])
	}
	if _, ok := stmts[1].(*ast.Assign); !ok {
		t.Errorf("stmt 1 = %T, want Assign", stmts[1])
	}
	f, ok := stmts[2].(*ast.For)
	if !ok {
		t.Fatalf("stmt 2 = %T, want For", stmts[2])
	}
	if f.Index.Name != "lo" {
		t.Errorf("for index = %q", f.Index.Name)
	}
	iff, ok := stmts[3].(*ast.If)
	if !ok {
		t.Fatalf("stmt 3 = %T, want If", stmts[3])
	}
	if iff.Else == nil {
		t.Error("if has no else")
	}
	if _, ok := stmts[4].(*ast.While); !ok {
		t.Errorf("stmt 4 = %T, want While", stmts[4])
	}
}

func TestParseCallArgs(t *testing.T) {
	p := mustParse(t, goodProgram)
	main := p.Body.Stmts
	c0 := main[0].(*ast.Call)
	if c0.Name != "outer" || len(c0.Args) != 2 {
		t.Fatalf("call 0 = %+v", c0)
	}
	if c0.Args[0].Section == nil || c0.Args[0].Section.Name != "x" {
		t.Errorf("arg 0 = %+v, want section x", c0.Args[0])
	}
	if c0.Args[1].Value == nil {
		t.Errorf("arg 1 = %+v, want value 3", c0.Args[1])
	}
	c2 := main[2].(*ast.Call)
	// A[1,2] parses as a section with two expression subscripts.
	if c2.Args[0].Section == nil || c2.Args[0].Section.Name != "A" ||
		len(c2.Args[0].Section.Subs) != 2 {
		t.Errorf("arg A[1,2] = %+v", c2.Args[0])
	}
	// y + 1 must re-interpret the leading identifier as an expression.
	b, ok := c2.Args[1].Value.(*ast.Binary)
	if !ok || b.Op != token.PLUS {
		t.Errorf("arg y+1 = %+v", c2.Args[1])
	}
}

func TestParseSections(t *testing.T) {
	src := `
program s;
global A[10, 10];
proc colsum(ref col[*], val n) begin write col[n] end;
begin
  call colsum(A[*, 3], 10)
end.
`
	p := mustParse(t, src)
	prm := p.Procs[0].Params[0]
	if prm.Rank != 1 {
		t.Errorf("param rank = %d, want 1", prm.Rank)
	}
	c := p.Body.Stmts[0].(*ast.Call)
	sec := c.Args[0].Section
	if sec == nil || !sec.Star(0) || sec.Star(1) {
		t.Fatalf("section = %+v", sec)
	}
	if sec.NumStars() != 1 {
		t.Errorf("NumStars = %d", sec.NumStars())
	}
}

func TestExprPrecedence(t *testing.T) {
	src := `
program e;
global x, y, z;
begin
  x := 1 + 2 * 3;
  y := (1 + 2) * 3;
  z := x < y and y < z or not (x = z)
end.
`
	p := mustParse(t, src)
	a0 := p.Body.Stmts[0].(*ast.Assign)
	add, ok := a0.Value.(*ast.Binary)
	if !ok || add.Op != token.PLUS {
		t.Fatalf("1+2*3 top = %+v, want +", a0.Value)
	}
	if mul, ok := add.R.(*ast.Binary); !ok || mul.Op != token.STAR {
		t.Errorf("right of + = %+v, want *", add.R)
	}
	a1 := p.Body.Stmts[1].(*ast.Assign)
	if mul, ok := a1.Value.(*ast.Binary); !ok || mul.Op != token.STAR {
		t.Errorf("(1+2)*3 top = %+v, want *", a1.Value)
	}
	a2 := p.Body.Stmts[2].(*ast.Assign)
	or, ok := a2.Value.(*ast.Binary)
	if !ok || or.Op != token.OR {
		t.Fatalf("bool expr top = %+v, want or", a2.Value)
	}
	if and, ok := or.L.(*ast.Binary); !ok || and.Op != token.AND {
		t.Errorf("left of or = %+v, want and", or.L)
	}
	if not, ok := or.R.(*ast.Unary); !ok || not.Op != token.NOT {
		t.Errorf("right of or = %+v, want not", or.R)
	}
}

func TestUnaryMinus(t *testing.T) {
	p := mustParse(t, "program u; global x; begin x := -x - -1 end.")
	a := p.Body.Stmts[0].(*ast.Assign)
	sub, ok := a.Value.(*ast.Binary)
	if !ok || sub.Op != token.MINUS {
		t.Fatalf("top = %+v", a.Value)
	}
	if _, ok := sub.L.(*ast.Unary); !ok {
		t.Errorf("left = %+v, want unary", sub.L)
	}
	if _, ok := sub.R.(*ast.Unary); !ok {
		t.Errorf("right = %+v, want unary", sub.R)
	}
}

func TestErrorMissingProgram(t *testing.T) {
	_, err := Parse("global x; begin end.")
	if err == nil || !strings.Contains(err.Error(), "expected program") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorMissingMain(t *testing.T) {
	_, err := Parse("program p; global x;")
	if err == nil || !strings.Contains(err.Error(), "missing main") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorTrailingInput(t *testing.T) {
	_, err := Parse("program p; begin end. extra")
	if err == nil || !strings.Contains(err.Error(), "trailing input") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorRecoveryMultiple(t *testing.T) {
	src := `
program p;
global x;
begin
  x := ;
  ? ;
  x := 1
end.
`
	prog, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	// Recovery must still deliver the valid trailing assignment.
	if prog == nil || prog.Body == nil {
		t.Fatal("no tree after recovery")
	}
	found := false
	for _, s := range prog.Body.Stmts {
		if a, ok := s.(*ast.Assign); ok {
			if lit, ok := a.Value.(*ast.IntLit); ok && lit.Value == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("recovery lost trailing statement: %+v", prog.Body.Stmts)
	}
}

func TestErrorSectionInExpression(t *testing.T) {
	src := `
program p;
global A[5];
proc q(val n) begin end;
begin
  call q(A[*] + 1)
end.
`
	_, err := Parse(src)
	if err == nil || !strings.Contains(err.Error(), "section") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorBadExtent(t *testing.T) {
	_, err := Parse("program p; global A[0]; begin end.")
	if err == nil || !strings.Contains(err.Error(), "extent") {
		t.Errorf("err = %v", err)
	}
}

func TestErrorCapBailout(t *testing.T) {
	// A long garbage stream must stop at maxErrors, not loop forever.
	src := "program p; begin " + strings.Repeat("? ", 100) + "end."
	_, err := Parse(src)
	if err == nil {
		t.Fatal("expected errors")
	}
	if n := strings.Count(err.Error(), "parse:"); n > maxErrors {
		t.Errorf("%d errors reported, cap is %d", n, maxErrors)
	}
}

func TestOptionalSemicolons(t *testing.T) {
	// Semicolons between statements are optional; extra ones are fine.
	src := `
program p;
global x;
begin
  ;;
  x := 1
  x := 2;;
  x := 3
end.
`
	p := mustParse(t, src)
	if len(p.Body.Stmts) != 3 {
		t.Errorf("stmts = %d, want 3", len(p.Body.Stmts))
	}
}

func TestReadWrite(t *testing.T) {
	p := mustParse(t, "program p; global x, A[4]; begin read x; read A[2]; write x + 1 end.")
	if _, ok := p.Body.Stmts[0].(*ast.Read); !ok {
		t.Errorf("stmt 0 = %T", p.Body.Stmts[0])
	}
	r := p.Body.Stmts[1].(*ast.Read)
	if r.Target.Name != "A" || len(r.Target.Subs) != 1 {
		t.Errorf("read target = %+v", r.Target)
	}
	if _, ok := p.Body.Stmts[2].(*ast.Write); !ok {
		t.Errorf("stmt 2 = %T", p.Body.Stmts[2])
	}
}

func TestNestedBlocks(t *testing.T) {
	p := mustParse(t, "program p; global x; begin begin x := 1 end; x := 2 end.")
	if len(p.Body.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(p.Body.Stmts))
	}
	if _, ok := p.Body.Stmts[0].(*ast.Block); !ok {
		t.Errorf("stmt 0 = %T, want Block", p.Body.Stmts[0])
	}
}

func TestEmptyParamList(t *testing.T) {
	p := mustParse(t, "program p; proc q() begin end; begin call q() end.")
	if len(p.Procs[0].Params) != 0 {
		t.Errorf("params = %+v", p.Procs[0].Params)
	}
	c := p.Body.Stmts[0].(*ast.Call)
	if len(c.Args) != 0 {
		t.Errorf("args = %+v", c.Args)
	}
}

func TestParseRepeat(t *testing.T) {
	p := mustParse(t, `
program r;
global x;
begin
  repeat
    x := x + 1;
    write x
  until x > 3;
  x := 0
end.
`)
	if len(p.Body.Stmts) != 2 {
		t.Fatalf("stmts = %d", len(p.Body.Stmts))
	}
	rep, ok := p.Body.Stmts[0].(*ast.Repeat)
	if !ok {
		t.Fatalf("stmt 0 = %T", p.Body.Stmts[0])
	}
	if len(rep.Body.Stmts) != 2 {
		t.Errorf("repeat body = %d stmts", len(rep.Body.Stmts))
	}
	if _, ok := rep.Cond.(*ast.Binary); !ok {
		t.Errorf("until cond = %T", rep.Cond)
	}
}

func TestParseRepeatErrors(t *testing.T) {
	_, err := Parse("program p; global x; begin repeat x := 1 end.")
	if err == nil || !strings.Contains(err.Error(), "until") {
		t.Errorf("err = %v", err)
	}
}
