// Package printer renders MiniPL syntax trees back to canonical
// source text (a formatter). Printing then re-parsing yields a
// structurally identical tree, which the tests verify; the emitted
// style is the one used throughout this repository's documentation.
package printer

import (
	"fmt"
	"strings"

	"sideeffect/internal/lang/ast"
	"sideeffect/internal/lang/token"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	pr := &printer{}
	pr.printf("program %s;\n", p.Name)
	if len(p.Globals) > 0 {
		pr.printf("\n")
		for _, g := range p.Globals {
			pr.printf("global %s;\n", varSpec(g))
		}
	}
	for _, d := range p.Procs {
		pr.printf("\n")
		pr.proc(d, 0)
	}
	pr.printf("\nbegin\n")
	if p.Body != nil {
		pr.stmts(p.Body.Stmts, 1)
	}
	pr.printf("end.\n")
	return pr.b.String()
}

type printer struct {
	b strings.Builder
}

func (pr *printer) printf(format string, args ...any) {
	fmt.Fprintf(&pr.b, format, args...)
}

func (pr *printer) indent(n int) {
	pr.b.WriteString(strings.Repeat("  ", n))
}

func varSpec(d *ast.VarDecl) string {
	if len(d.Dims) == 0 {
		return d.Name
	}
	parts := make([]string, len(d.Dims))
	for i, e := range d.Dims {
		parts[i] = fmt.Sprint(e)
	}
	return fmt.Sprintf("%s[%s]", d.Name, strings.Join(parts, ", "))
}

func (pr *printer) proc(d *ast.ProcDecl, depth int) {
	pr.indent(depth)
	params := make([]string, len(d.Params))
	for i, p := range d.Params {
		stars := ""
		if p.Rank > 0 {
			ss := make([]string, p.Rank)
			for j := range ss {
				ss[j] = "*"
			}
			stars = "[" + strings.Join(ss, ", ") + "]"
		}
		params[i] = fmt.Sprintf("%s %s%s", p.Mode, p.Name, stars)
	}
	pr.printf("proc %s(%s)\n", d.Name, strings.Join(params, ", "))
	for _, l := range d.Locals {
		pr.indent(depth + 1)
		pr.printf("var %s;\n", varSpec(l))
	}
	for _, n := range d.Nested {
		pr.proc(n, depth+1)
	}
	pr.indent(depth)
	pr.printf("begin\n")
	pr.stmts(d.Body.Stmts, depth+1)
	pr.indent(depth)
	pr.printf("end;\n")
}

func (pr *printer) stmts(ss []ast.Stmt, depth int) {
	for i, s := range ss {
		pr.stmt(s, depth, i == len(ss)-1)
	}
}

func (pr *printer) stmt(s ast.Stmt, depth int, last bool) {
	sep := ";"
	if last {
		sep = ""
	}
	switch s := s.(type) {
	case *ast.Block:
		pr.indent(depth)
		pr.printf("begin\n")
		pr.stmts(s.Stmts, depth+1)
		pr.indent(depth)
		pr.printf("end%s\n", sep)
	case *ast.Assign:
		pr.indent(depth)
		pr.printf("%s := %s%s\n", Expr(s.Target), Expr(s.Value), sep)
	case *ast.Read:
		pr.indent(depth)
		pr.printf("read %s%s\n", Expr(s.Target), sep)
	case *ast.Write:
		pr.indent(depth)
		pr.printf("write %s%s\n", Expr(s.Value), sep)
	case *ast.Call:
		pr.indent(depth)
		args := make([]string, len(s.Args))
		for i, a := range s.Args {
			if a.Section != nil {
				args[i] = sectionText(a.Section)
			} else {
				args[i] = Expr(a.Value)
			}
		}
		pr.printf("call %s(%s)%s\n", s.Name, strings.Join(args, ", "), sep)
	case *ast.If:
		pr.indent(depth)
		pr.printf("if %s then\n", Expr(s.Cond))
		pr.stmts(s.Then.Stmts, depth+1)
		if s.Else != nil {
			pr.indent(depth)
			pr.printf("else\n")
			pr.stmts(s.Else.Stmts, depth+1)
		}
		pr.indent(depth)
		pr.printf("end%s\n", sep)
	case *ast.While:
		pr.indent(depth)
		pr.printf("while %s do\n", Expr(s.Cond))
		pr.stmts(s.Body.Stmts, depth+1)
		pr.indent(depth)
		pr.printf("end%s\n", sep)
	case *ast.For:
		pr.indent(depth)
		pr.printf("for %s := %s to %s do\n", s.Index.Name, Expr(s.Lo), Expr(s.Hi))
		pr.stmts(s.Body.Stmts, depth+1)
		pr.indent(depth)
		pr.printf("end%s\n", sep)
	case *ast.Repeat:
		pr.indent(depth)
		pr.printf("repeat\n")
		pr.stmts(s.Body.Stmts, depth+1)
		pr.indent(depth)
		pr.printf("until %s%s\n", Expr(s.Cond), sep)
	default:
		panic(fmt.Sprintf("printer: unknown statement %T", s))
	}
}

func sectionText(s *ast.SectionRef) string {
	if s.Subs == nil {
		return s.Name
	}
	parts := make([]string, len(s.Subs))
	for i := range s.Subs {
		if s.Star(i) {
			parts[i] = "*"
		} else {
			parts[i] = Expr(s.Subs[i])
		}
	}
	return fmt.Sprintf("%s[%s]", s.Name, strings.Join(parts, ", "))
}

// prec mirrors the parser's binding powers for minimal-parenthesis
// printing.
func prec(op token.Kind) int {
	switch op {
	case token.OR:
		return 1
	case token.AND:
		return 2
	case token.EQ, token.NEQ, token.LT, token.LE, token.GT, token.GE:
		return 3
	case token.PLUS, token.MINUS:
		return 4
	case token.STAR, token.SLASH:
		return 5
	}
	return 0
}

// Expr renders an expression with the fewest parentheses that
// preserve the tree shape (binary operators are left-associative).
func Expr(e ast.Expr) string {
	return exprPrec(e, 0)
}

func exprPrec(e ast.Expr, outer int) string {
	switch e := e.(type) {
	case *ast.IntLit:
		return fmt.Sprint(e.Value)
	case *ast.VarRef:
		if len(e.Subs) == 0 {
			return e.Name
		}
		parts := make([]string, len(e.Subs))
		for i, s := range e.Subs {
			parts[i] = exprPrec(s, 0)
		}
		return fmt.Sprintf("%s[%s]", e.Name, strings.Join(parts, ", "))
	case *ast.Unary:
		op := "-"
		if e.Op == token.NOT {
			op = "not "
		}
		s := op + exprPrec(e.X, 6)
		if outer > 5 {
			return "(" + s + ")"
		}
		return s
	case *ast.Binary:
		p := prec(e.Op)
		s := fmt.Sprintf("%s %s %s",
			exprPrec(e.L, p), e.Op, exprPrec(e.R, p+1))
		if p < outer {
			return "(" + s + ")"
		}
		return s
	default:
		panic(fmt.Sprintf("printer: unknown expression %T", e))
	}
}
