package printer_test

import (
	"fmt"
	"strings"
	"testing"

	"sideeffect/internal/lang/parser"
	"sideeffect/internal/lang/printer"
	"sideeffect/internal/workload"
)

// roundTrip asserts that printing is a fixpoint: parse → print →
// parse → print yields identical text (hence identical structure).
func roundTrip(t *testing.T, src, tag string) string {
	t.Helper()
	tree, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: parse: %v", tag, err)
	}
	out1 := printer.Print(tree)
	tree2, err := parser.Parse(out1)
	if err != nil {
		t.Fatalf("%s: re-parse of printed source failed: %v\n%s", tag, err, out1)
	}
	out2 := printer.Print(tree2)
	if out1 != out2 {
		t.Errorf("%s: printing is not a fixpoint:\n--- first\n%s\n--- second\n%s", tag, out1, out2)
	}
	return out1
}

func TestRoundTripKitchenSink(t *testing.T) {
	out := roundTrip(t, `
program sink;
global x, y;
global A[10, 20];
proc p(ref a, val n, ref M[*, *])
  var t;
  proc q(ref z) begin z := z + 1 end;
begin
  t := -n * (x + 2);
  a := t / 2 - 1;
  M[1, n] := a;
  call q(a);
  call p(a, n - 1, M);
  if x < y and not (x = 0) then
    read y
  else
    write x + 1
  end;
  while y > 0 do y := y - 1 end;
  for t := 1 to n do write A[t, 1] end;
  begin x := 0; y := 0 end
end;
begin
  call p(x, 3, A)
end.
`, "sink")
	for _, want := range []string{
		"t := -n * (x + 2)",
		"a := t / 2 - 1",
		"if x < y and not (x = 0) then",
		"for t := 1 to n do",
		"call p(a, n - 1, M)",
		"ref M[*, *]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed source missing %q:\n%s", want, out)
		}
	}
}

func TestRoundTripSections(t *testing.T) {
	out := roundTrip(t, `
program sec;
global A[8, 8], j;
proc col(ref c[*]) begin c[1] := 0 end;
begin
  call col(A[*, j])
end.
`, "sections")
	if !strings.Contains(out, "call col(A[*, j])") {
		t.Errorf("section argument not preserved:\n%s", out)
	}
}

func TestMinimalParentheses(t *testing.T) {
	cases := []struct{ in, want string }{
		{"x := 1 + 2 * 3", "x := 1 + 2 * 3"},
		{"x := (1 + 2) * 3", "x := (1 + 2) * 3"},
		{"x := 1 - (2 - 3)", "x := 1 - (2 - 3)"},
		{"x := 1 - 2 - 3", "x := 1 - 2 - 3"},
		{"x := -(1 + 2)", "x := -(1 + 2)"},
		{"x := x < 1 or x > 2 and x <> 3", "x := x < 1 or x > 2 and x <> 3"},
		{"x := (x or x) and x", "x := (x or x) and x"},
	}
	for _, c := range cases {
		src := fmt.Sprintf("program p; global x; begin %s end.", c.in)
		tree, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		out := printer.Print(tree)
		if !strings.Contains(out, c.want) {
			t.Errorf("printed %q does not contain %q:\n%s", c.in, c.want, out)
		}
		roundTrip(t, src, c.in)
	}
}

func TestRoundTripGeneratedPrograms(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		cfg := workload.DefaultConfig(15, seed)
		if seed%2 == 1 {
			cfg.MaxDepth = 2
			cfg.NestFraction = 0.5
		}
		src := workload.Emit(workload.Random(cfg))
		roundTrip(t, src, fmt.Sprintf("generated seed %d", seed))
	}
	roundTrip(t, workload.Emit(workload.DivideConquer()), "divide")
	roundTrip(t, workload.Emit(workload.NestedTower(3)), "tower")
}

func TestEmptyProgram(t *testing.T) {
	out := roundTrip(t, "program e; begin end.", "empty")
	if !strings.Contains(out, "program e;") || !strings.Contains(out, "end.") {
		t.Errorf("empty program printed as:\n%s", out)
	}
}

func TestRoundTripRepeat(t *testing.T) {
	out := roundTrip(t, `
program rr;
global x;
begin
  repeat
    x := x + 1
  until x > 3;
  write x
end.
`, "repeat")
	if !strings.Contains(out, "repeat\n") || !strings.Contains(out, "until x > 3;") {
		t.Errorf("printed repeat:\n%s", out)
	}
}
