package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Coordinator. The zero value gets production defaults
// from withDefaults.
type Config struct {
	// VNodes is the router's per-shard virtual-node count (default
	// DefaultVNodes).
	VNodes int
	// MaxAttempts bounds the forward path's total tries per request
	// across all shard candidates (default 4). A request always gets at
	// least one try per registered shard, so a key can fail over all
	// the way around the ring even when MaxAttempts is smaller than the
	// fleet.
	MaxAttempts int
	// RetryBase is the first retry's backoff; each further retry
	// doubles it, with jitter, capped at RetryMax (defaults 10ms / 1s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HealthEvery is the prober's scan interval (default 500ms);
	// HealthTimeout bounds one probe (default 1s).
	HealthEvery   time.Duration
	HealthTimeout time.Duration
	// PerShardInFlight bounds the requests the coordinator lets one
	// shard compute at once — the PR 5 admission machinery applied per
	// shard from the router's side (default 64, -1 = unlimited). The
	// shard's own MaxInFlight/MaxQueue still applies behind it; a full
	// router-side gate fails over to the next candidate instead of
	// queueing.
	PerShardInFlight int
	// Timeout bounds one proxied request end to end, retries included
	// (default 60s).
	Timeout time.Duration
	// MaxRequestBytes bounds proxied request bodies (default 8 MiB —
	// the coordinator fronts batch and corpus submissions, so it
	// accepts more than one shard does for /analyze).
	MaxRequestBytes int64
	// JournalDir, when non-empty, makes the job tier durable: the work
	// queue journal lives at JournalDir/jobs.journal and is replayed on
	// construction, so jobs survive coordinator restarts.
	JournalDir string
	// JobWorkers bounds concurrently dispatched job units (default 8).
	JobWorkers int
	// MaxJobSources bounds one job submission (default 100000).
	MaxJobSources int
	// Seed drives retry jitter; equal seeds and request sequences back
	// off identically (handy for deterministic tests; 0 = seed 1).
	Seed int64
	// Client overrides the proxy HTTP client (tests; default pooled).
	Client *http.Client
	// Logf receives operational log lines (nil = silent).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = time.Second
	}
	if c.HealthEvery <= 0 {
		c.HealthEvery = 500 * time.Millisecond
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = time.Second
	}
	if c.PerShardInFlight == 0 {
		c.PerShardInFlight = 64
	}
	if c.Timeout <= 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 8 << 20
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 8
	}
	if c.MaxJobSources <= 0 {
		c.MaxJobSources = 100000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// shardState is one replica as the coordinator sees it: its address,
// prober-maintained health, router-side admission gate, and counters.
type shardState struct {
	id string
	// url is the shard's base URL (no trailing slash). It is atomic
	// because a re-join (UpsertShard) can re-point a live shard at a
	// new port while forwards and probes are reading it.
	url     atomic.Pointer[string]
	healthy atomic.Bool
	slots   chan struct{} // nil = unlimited
	// counters for /cluster/status.
	requests atomic.Int64
	failures atomic.Int64
	rejected atomic.Int64 // 429s received from the shard
}

func (s *shardState) baseURL() string {
	if p := s.url.Load(); p != nil {
		return *p
	}
	return ""
}

func (s *shardState) setURL(url string) { s.url.Store(&url) }

// tryAcquire takes a router-side admission slot without blocking.
func (s *shardState) tryAcquire() bool {
	if s.slots == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

func (s *shardState) release() {
	if s.slots != nil {
		<-s.slots
	}
}

func (s *shardState) inFlight() int {
	if s.slots == nil {
		return -1
	}
	return len(s.slots)
}

// Coordinator fronts N modand shards: it terminates the public HTTP
// surface, routes every content-addressed request to its shard with
// health-checked failover, and runs the async job tier. Create with
// New, register shards with AddShard (or POST /cluster/join), call
// Start, expose Handler, and Stop on shutdown.
type Coordinator struct {
	cfg    Config
	router *Router
	client *http.Client
	met    *metrics
	mux    *http.ServeMux
	jobs   *jobManager

	mu     sync.RWMutex
	shards map[string]*shardState

	rngMu sync.Mutex
	rng   *rand.Rand

	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New builds a coordinator and, when cfg.JournalDir is set, replays
// the job journal (jobs interrupted by the previous run resume when
// Start is called).
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:    cfg,
		router: NewRouter(cfg.VNodes),
		client: cfg.Client,
		met:    newMetrics(),
		shards: make(map[string]*shardState),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		stop:   make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	journalPath := ""
	if cfg.JournalDir != "" {
		journalPath = filepath.Join(cfg.JournalDir, "jobs.journal")
	}
	jobs, err := newJobManager(journalPath, c.runUnit)
	if err != nil {
		return nil, err
	}
	c.jobs = jobs
	c.mux = http.NewServeMux()
	c.route("POST /analyze", "/analyze", c.handleProxy)
	c.route("POST /lint", "/lint", c.handleProxy)
	c.route("POST /batch", "/batch", c.handleBatch)
	c.route("POST /jobs", "/jobs", c.handleJobSubmit)
	c.route("GET /jobs/{id}", "/jobs/{id}", c.handleJobGet)
	c.mux.HandleFunc("GET /jobs/{id}/stream", c.handleJobStream)
	c.route("GET /cluster/status", "/cluster/status", c.handleStatus)
	c.route("POST /cluster/join", "/cluster/join", c.handleJoin)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true, "role": "coordinator", "shards": c.router.Len()})
	})
	return c, nil
}

// logf emits one operational log line.
func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// AddShard registers a replica under a stable ID. The ID — not the
// URL — feeds the rendezvous hash, so a shard that restarts on a new
// port keeps its keyspace slice when re-joined under the same ID.
func (c *Coordinator) AddShard(id, url string) error {
	for len(url) > 0 && url[len(url)-1] == '/' {
		url = url[:len(url)-1]
	}
	if url == "" {
		return fmt.Errorf("cluster: shard %q: empty url", id)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.router.Add(id); err != nil {
		return err
	}
	st := &shardState{id: id}
	st.setURL(url)
	if n := c.cfg.PerShardInFlight; n > 0 {
		st.slots = make(chan struct{}, n)
	}
	st.healthy.Store(true) // optimistic until the first probe
	c.shards[id] = st
	c.logf("cluster: shard %s joined at %s (%d shards)", id, url, c.router.Len())
	return nil
}

// UpsertShard registers a replica, or — when the ID is already a
// member — re-points it at a new URL: the restart-on-a-new-port path.
// The rendezvous hash keys on the ID alone, so a re-pointed shard
// keeps exactly its old keyspace slice (and whatever survives in its
// cache stays useful).
func (c *Coordinator) UpsertShard(id, url string) error {
	for len(url) > 0 && url[len(url)-1] == '/' {
		url = url[:len(url)-1]
	}
	c.mu.Lock()
	st, ok := c.shards[id]
	if ok && url != "" {
		st.setURL(url)
		st.healthy.Store(true)
		c.mu.Unlock()
		c.logf("cluster: shard %s re-joined at %s", id, url)
		return nil
	}
	c.mu.Unlock()
	return c.AddShard(id, url)
}

// RemoveShard unregisters a replica.
func (c *Coordinator) RemoveShard(id string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.router.Remove(id)
	delete(c.shards, id)
}

// Start launches the health prober and the job-tier dispatch workers
// (which immediately resume any units replayed from the journal).
func (c *Coordinator) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.probeAll()
	c.wg.Add(1)
	go c.prober()
	c.jobs.start(c.cfg.JobWorkers)
}

// Stop halts the prober and job workers and closes the journal.
// In-flight proxied requests are the HTTP server's to drain; job units
// cut off mid-dispatch stay pending in the journal for the next run.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	started := c.started
	c.started = false
	c.mu.Unlock()
	if started {
		close(c.stop)
		c.wg.Wait()
	}
	c.jobs.stop()
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// prober re-checks every shard's /healthz on a fixed cadence.
func (c *Coordinator) prober() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthEvery)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.probeAll()
		}
	}
}

func (c *Coordinator) probeAll() {
	c.mu.RLock()
	list := make([]*shardState, 0, len(c.shards))
	for _, st := range c.shards {
		list = append(list, st)
	}
	c.mu.RUnlock()
	for _, st := range list {
		healthy := c.probe(st)
		if was := st.healthy.Swap(healthy); was != healthy {
			if healthy {
				c.logf("cluster: shard %s recovered", st.id)
			} else {
				c.logf("cluster: shard %s unhealthy", st.id)
			}
		}
	}
}

func (c *Coordinator) probe(st *shardState) bool {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, st.baseURL()+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// fwdResult is one proxied response, carried verbatim.
type fwdResult struct {
	status      int
	contentType string
	header      http.Header
	body        []byte
	shard       string
	attempts    int
	failover    bool
}

// errNoShards reports a forward that found no registered shards.
var errNoShards = errors.New("cluster: no shards registered")

// candidates returns the shard states to try for key, preference
// order, healthy members first. Unhealthy shards stay in the tail:
// when everything is marked down (a prober blip, or the fleet really
// is down) the router still tries rather than refusing outright.
func (c *Coordinator) candidates(key string) []*shardState {
	ranked := c.router.Rank(key)
	c.mu.RLock()
	defer c.mu.RUnlock()
	healthy := make([]*shardState, 0, len(ranked))
	var down []*shardState
	for _, id := range ranked {
		st, ok := c.shards[id]
		if !ok {
			continue
		}
		if st.healthy.Load() {
			healthy = append(healthy, st)
		} else {
			down = append(down, st)
		}
	}
	return append(healthy, down...)
}

// backoff sleeps the jittered exponential delay for a retry attempt,
// honoring a shard-supplied Retry-After floor. Returns false if ctx
// expired while waiting.
func (c *Coordinator) backoff(ctx context.Context, attempt int, floor time.Duration) bool {
	d := c.cfg.RetryBase << uint(attempt)
	if d > c.cfg.RetryMax {
		d = c.cfg.RetryMax
	}
	c.rngMu.Lock()
	jitter := time.Duration(c.rng.Int63n(int64(d) + 1))
	c.rngMu.Unlock()
	d += jitter
	if floor > d {
		d = floor
		if d > c.cfg.RetryMax {
			d = c.cfg.RetryMax
		}
	}
	select {
	case <-time.After(d):
		return true
	case <-ctx.Done():
		return false
	}
}

// retryAfter parses a 429's Retry-After header (seconds form only —
// that is what the shards emit).
func retryAfter(h http.Header) time.Duration {
	if s := h.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return 0
}

// forward routes one request body to key's shard, failing over through
// the preference order with bounded, jittered retries. The returned
// response is the serving shard's, byte for byte. Retryable outcomes
// are network errors (the shard is marked down immediately — the
// prober will restore it), router-side admission-full, shard 429s
// (honoring Retry-After), and 5xx statuses; everything else is the
// answer. When every attempt fails the last shard response (if any) is
// passed through; with none, the caller synthesizes a 503.
func (c *Coordinator) forward(ctx context.Context, key, method, uri, contentType string, body []byte) (*fwdResult, error) {
	start := time.Now()
	cands := c.candidates(key)
	if len(cands) == 0 {
		return nil, errNoShards
	}
	maxAttempts := c.cfg.MaxAttempts
	if maxAttempts < len(cands) {
		maxAttempts = len(cands)
	}
	var last *fwdResult
	var lastErr error
	var floor time.Duration
	for attempt := 0; attempt < maxAttempts; attempt++ {
		st := cands[attempt%len(cands)]
		if attempt > 0 {
			c.met.retry()
			if !c.backoff(ctx, attempt-1, floor) {
				break
			}
			floor = 0
		}
		if !st.tryAcquire() {
			c.met.shedOne()
			lastErr = fmt.Errorf("cluster: shard %s at router-side capacity", st.id)
			continue
		}
		res, err := c.doOnce(ctx, st, method, uri, contentType, body)
		st.release()
		if err != nil {
			st.failures.Add(1)
			st.healthy.Store(false)
			lastErr = err
			if ctx.Err() != nil {
				break
			}
			continue
		}
		switch {
		case res.status == http.StatusTooManyRequests:
			st.rejected.Add(1)
			floor = retryAfter(res.header)
			last = res
			continue
		case res.status >= 500:
			last = res
			continue
		}
		st.requests.Add(1)
		res.attempts = attempt + 1
		res.failover = st != cands[0]
		c.met.route(st.id, res.failover, time.Since(start).Seconds())
		return res, nil
	}
	if last != nil {
		// Exhausted retries: the shard's own structured error is more
		// truthful than anything the router could synthesize.
		c.met.route(last.shard, true, time.Since(start).Seconds())
		return last, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("cluster: no attempt completed")
	}
	return nil, lastErr
}

// doOnce issues one proxied request to one shard.
func (c *Coordinator) doOnce(ctx context.Context, st *shardState, method, uri, contentType string, body []byte) (*fwdResult, error) {
	req, err := http.NewRequestWithContext(ctx, method, st.baseURL()+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &fwdResult{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        data,
		shard:       st.id,
		header:      resp.Header,
	}, nil
}
