// Package cluster scales the modand analysis service across N shard
// replicas: a consistent-hash router assigns every request's content
// key to a shard deterministically, a coordinator proxies the
// synchronous endpoints (/analyze, /lint, /batch) with health-checked
// failover, bounded jittered retries, and per-shard admission, and an
// async job tier (/jobs) fans whole corpora out to the fleet behind a
// durable work-queue journal so batch runs survive coordinator
// restarts.
//
// The design leans on the same locality observation that makes the
// paper's analysis linear: the cache is content-addressed (SHA-256 of
// the source bytes), so requests shard deterministically with no
// cross-shard state. Any shard can answer any request correctly —
// routing is purely a cache-locality and load-spreading decision —
// which is what makes failover trivially safe: rerouting can cost a
// recompute, never a wrong answer.
package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodes is the per-shard virtual-node count. Rendezvous
// hashing is already uniform with one node per shard; the virtual-node
// map exists so unevenly weighted shards can be expressed later and so
// the assignment keeps its balance when the shard set is tiny.
const DefaultVNodes = 64

// ContentKey derives the routing key for a source text in a given
// language namespace: the hex SHA-256 over lang and the source bytes.
// It deliberately does not reuse the serving cache's key (which folds
// in frontend lowering versions); the router only needs determinism
// and uniformity, and must keep routing identically when a frontend
// bumps its lowering version — cross-version entries still live on
// the same shard's cache.
func ContentKey(lang, src string) string {
	if lang == "" {
		lang = "minipl"
	}
	sum := sha256.Sum256([]byte(lang + "\x00" + src))
	return hex.EncodeToString(sum[:])
}

// splitmix64 is the SplitMix64 finalizer, the same mixer the fault
// injector uses — cheap and well distributed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString is FNV-1a over s.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// routerShard is one member's precomputed virtual-node seeds.
type routerShard struct {
	id    string
	seeds []uint64
}

// Router assigns content keys to shard IDs by rendezvous (highest
// random weight) hashing over a virtual-node map. The assignment is a
// pure function of (shard IDs, vnode count, key): it survives router
// restarts, is identical on every replica that knows the same member
// set, and moves only ~1/(N+1) of the keyspace when a shard joins —
// the property that keeps content-addressed caches warm through
// topology changes. Ties (astronomically rare 64-bit score
// collisions) break deterministically toward the lexicographically
// smaller shard ID. Safe for concurrent use.
type Router struct {
	vnodes int

	mu     sync.RWMutex
	shards []*routerShard // sorted by id
}

// NewRouter builds an empty router. vnodes <= 0 selects DefaultVNodes.
func NewRouter(vnodes int) *Router {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	return &Router{vnodes: vnodes}
}

// seedsFor precomputes a shard's virtual-node seeds.
func seedsFor(id string, vnodes int) []uint64 {
	seeds := make([]uint64, vnodes)
	base := hashString(id)
	for v := range seeds {
		seeds[v] = splitmix64(base ^ splitmix64(uint64(v)+0x9e37))
	}
	return seeds
}

// Add registers a shard ID. Adding an existing ID is an error — the
// caller is about to double-route.
func (r *Router) Add(id string) error {
	if id == "" {
		return fmt.Errorf("cluster: empty shard id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.shards), func(i int) bool { return r.shards[i].id >= id })
	if i < len(r.shards) && r.shards[i].id == id {
		return fmt.Errorf("cluster: shard %q already registered", id)
	}
	s := &routerShard{id: id, seeds: seedsFor(id, r.vnodes)}
	r.shards = append(r.shards, nil)
	copy(r.shards[i+1:], r.shards[i:])
	r.shards[i] = s
	return nil
}

// Remove unregisters a shard ID (a no-op if absent).
func (r *Router) Remove(id string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := sort.Search(len(r.shards), func(i int) bool { return r.shards[i].id >= id })
	if i < len(r.shards) && r.shards[i].id == id {
		r.shards = append(r.shards[:i], r.shards[i+1:]...)
	}
}

// Shards returns the registered shard IDs, sorted.
func (r *Router) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]string, len(r.shards))
	for i, s := range r.shards {
		ids[i] = s.id
	}
	return ids
}

// Len reports the member count.
func (r *Router) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// score computes one shard's rendezvous weight for keyHash: the
// maximum mixed score across its virtual nodes.
func (s *routerShard) score(keyHash uint64) uint64 {
	var best uint64
	for _, seed := range s.seeds {
		if v := splitmix64(seed ^ keyHash); v > best {
			best = v
		}
	}
	return best
}

// Pick returns the shard ID that owns key, or "" when the router is
// empty.
func (r *Router) Pick(key string) string {
	ranked := r.Rank(key)
	if len(ranked) == 0 {
		return ""
	}
	return ranked[0]
}

// Rank returns every shard ID in preference order for key: the owner
// first, then the failover sequence. The order is deterministic —
// scores descending, shard ID ascending on the (vanishingly rare)
// equal score — so every router instance agrees on both the owner and
// the retry path.
func (r *Router) Rank(key string) []string {
	keyHash := splitmix64(hashString(key))
	r.mu.RLock()
	type scored struct {
		id    string
		score uint64
	}
	ranked := make([]scored, len(r.shards))
	for i, s := range r.shards {
		ranked[i] = scored{id: s.id, score: s.score(keyHash)}
	}
	r.mu.RUnlock()
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].id < ranked[j].id
	})
	ids := make([]string, len(ranked))
	for i, s := range ranked {
		ids[i] = s.id
	}
	return ids
}
