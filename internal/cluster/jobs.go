package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"sideeffect/internal/store"
)

// unitResult is one corpus unit's terminal outcome: the shard's
// verbatim /analyze response (Status/Body) or a routing-layer failure
// (Err, when no shard could be reached).
type unitResult struct {
	Status int             `json:"status"`
	Shard  string          `json:"shard,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Err    string          `json:"error,omitempty"`
}

// jobUnit is one source's slot in a job.
type jobUnit struct {
	index  int
	key    string
	done   bool
	result unitResult
}

// job is one submitted corpus: its units, completion state, and the
// broadcast channel streamers wait on.
type job struct {
	id   string
	lang string
	// sources is retained so a coordinator restart can re-dispatch
	// units the journal has no result for.
	sources []string

	mu    sync.Mutex
	units []jobUnit
	done  int
	// completionLog lists unit indexes in completion order — the order
	// /jobs/{id}/stream emits.
	completionLog []int
	complete      bool
	// notify is closed and replaced on every completion; streamers
	// re-arm on it instead of polling.
	notify chan struct{}
}

// snapshotUnit is the wire form of one unit in poll responses.
type snapshotUnit struct {
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Status string          `json:"status"` // "pending", "done", or "error"
	Shard  string          `json:"shard,omitempty"`
	Code   int             `json:"code,omitempty"`
	Error  string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
}

// jobView is the GET /jobs/{id} wire shape.
type jobView struct {
	ID       string         `json:"id"`
	Lang     string         `json:"lang"`
	Total    int            `json:"total"`
	Done     int            `json:"done"`
	Errors   int            `json:"errors"`
	Complete bool           `json:"complete"`
	Units    []snapshotUnit `json:"units,omitempty"`
}

// unitStatus classifies a completed unit for the wire: 2xx answers are
// "done", everything else (shard error status or routing failure) is
// "error".
func (u *jobUnit) status() string {
	switch {
	case !u.done:
		return "pending"
	case u.result.Err == "" && u.result.Status/100 == 2:
		return "done"
	default:
		return "error"
	}
}

// view renders the job's poll shape; includeBodies additionally embeds
// each completed unit's verbatim response body.
func (j *job) view(includeUnits, includeBodies bool) jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.id, Lang: j.lang, Total: len(j.units), Done: j.done, Complete: j.complete}
	for i := range j.units {
		u := &j.units[i]
		if u.done && u.status() == "error" {
			v.Errors++
		}
		if !includeUnits {
			continue
		}
		su := snapshotUnit{Index: u.index, Key: u.key, Status: u.status(), Shard: u.result.Shard}
		if u.done {
			su.Code = u.result.Status
			su.Error = u.result.Err
			if includeBodies {
				su.Body = u.result.Body
			}
		}
		v.Units = append(v.Units, su)
	}
	return v
}

// journalRec is the one envelope every journal record decodes to.
type journalRec struct {
	Type    string          `json:"type"` // "submit", "result", or "done"
	Job     string          `json:"job"`
	Lang    string          `json:"lang,omitempty"`
	Sources []string        `json:"sources,omitempty"`
	Unit    int             `json:"unit,omitempty"`
	Key     string          `json:"key,omitempty"`
	Status  int             `json:"status,omitempty"`
	Shard   string          `json:"shard,omitempty"`
	Err     string          `json:"error,omitempty"`
	Body    json.RawMessage `json:"body,omitempty"`
}

// unitRef addresses one pending unit in the dispatch queue.
type unitRef struct {
	job  *job
	unit int
}

// jobManager owns the async tier: the job table, the durable journal,
// and the dispatch queue its workers drain. Dispatch itself is
// delegated to the coordinator's routed forward path via the run
// callback, so the manager knows nothing about HTTP.
type jobManager struct {
	journal *store.Journal // nil = ephemeral (no -state-dir)
	run     func(ctx context.Context, lang, source string) unitResult

	mu      sync.Mutex
	cond    *sync.Cond
	jobs    map[string]*job
	order   []string // job IDs in creation order
	nextID  int
	queue   []unitRef
	stopped bool

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// newJobManager builds the manager and, when journalPath is non-empty,
// opens the journal and replays it into the job table. Units without a
// durable result are re-enqueued; a job whose every unit already
// completed is marked complete even if its "done" record was lost.
func newJobManager(journalPath string, run func(ctx context.Context, lang, source string) unitResult) (*jobManager, error) {
	m := &jobManager{
		run:  run,
		jobs: make(map[string]*job),
	}
	m.cond = sync.NewCond(&m.mu)
	m.ctx, m.cancel = context.WithCancel(context.Background())
	if journalPath == "" {
		return m, nil
	}
	j, records, err := store.OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	m.journal = j
	for _, data := range records {
		var rec journalRec
		if err := json.Unmarshal(data, &rec); err != nil {
			// An undecodable (but checksum-valid) record means a newer
			// schema wrote it; skip rather than fail the whole replay.
			continue
		}
		m.applyReplay(&rec)
	}
	// Re-enqueue every unit the journal has no result for.
	for _, id := range m.order {
		jb := m.jobs[id]
		for i := range jb.units {
			if !jb.units[i].done {
				m.queue = append(m.queue, unitRef{job: jb, unit: i})
			}
		}
	}
	return m, nil
}

// applyReplay folds one journal record into the job table.
func (m *jobManager) applyReplay(rec *journalRec) {
	switch rec.Type {
	case "submit":
		if _, dup := m.jobs[rec.Job]; dup || rec.Job == "" {
			return
		}
		jb := newJob(rec.Job, rec.Lang, rec.Sources)
		m.jobs[rec.Job] = jb
		m.order = append(m.order, rec.Job)
		if n := jobSeq(rec.Job); n >= m.nextID {
			m.nextID = n + 1
		}
	case "result":
		jb := m.jobs[rec.Job]
		if jb == nil || rec.Unit < 0 || rec.Unit >= len(jb.units) || jb.units[rec.Unit].done {
			return
		}
		jb.setResult(rec.Unit, unitResult{Status: rec.Status, Shard: rec.Shard, Body: rec.Body, Err: rec.Err})
	case "done":
		if jb := m.jobs[rec.Job]; jb != nil {
			jb.mu.Lock()
			jb.complete = jb.done == len(jb.units)
			jb.mu.Unlock()
		}
	}
}

// jobSeq parses the numeric suffix of a "job-N" ID (-1 if malformed).
func jobSeq(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil || !strings.HasPrefix(id, "job-") {
		return -1
	}
	return n
}

func newJob(id, lang string, sources []string) *job {
	jb := &job{id: id, lang: lang, sources: sources, notify: make(chan struct{})}
	jb.units = make([]jobUnit, len(sources))
	for i := range jb.units {
		jb.units[i] = jobUnit{index: i, key: ContentKey(lang, sources[i])}
	}
	return jb
}

// setResult records a unit's terminal outcome and wakes streamers.
// It reports whether the job just completed.
func (jb *job) setResult(unit int, res unitResult) bool {
	jb.mu.Lock()
	defer jb.mu.Unlock()
	u := &jb.units[unit]
	if u.done {
		return false
	}
	u.done = true
	u.result = res
	jb.done++
	jb.completionLog = append(jb.completionLog, unit)
	close(jb.notify)
	jb.notify = make(chan struct{})
	if jb.done == len(jb.units) {
		jb.complete = true
		return true
	}
	return false
}

// start launches n dispatch workers.
func (m *jobManager) start(n int) {
	if n <= 0 {
		n = 8
	}
	for i := 0; i < n; i++ {
		m.wg.Add(1)
		go m.worker()
	}
}

// stop halts dispatch: workers drain out, in-flight units either
// finish (and are journaled) or are cut off by the manager context and
// left pending for the next replay. The journal is closed last.
func (m *jobManager) stop() {
	m.mu.Lock()
	m.stopped = true
	m.cond.Broadcast()
	m.mu.Unlock()
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal != nil {
		m.journal.Close()
	}
}

// worker drains the dispatch queue.
func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for len(m.queue) == 0 && !m.stopped {
			m.cond.Wait()
		}
		if m.stopped {
			m.mu.Unlock()
			return
		}
		ref := m.queue[0]
		m.queue = m.queue[1:]
		m.mu.Unlock()
		m.dispatch(ref)
	}
}

// dispatch runs one unit through the routed forward path and records
// its outcome durably before exposing it. A unit cut off by shutdown
// (manager context cancelled) is NOT recorded — it stays pending in
// the journal and the next coordinator run re-dispatches it, which is
// what makes completion exactly-once: the only path that marks a unit
// done is a successful journal append, and replay never re-enqueues a
// unit that has one.
func (m *jobManager) dispatch(ref unitRef) {
	jb := ref.job
	jb.mu.Lock()
	already := jb.units[ref.unit].done
	src := jb.sources[ref.unit]
	key := jb.units[ref.unit].key
	jb.mu.Unlock()
	if already {
		return
	}
	res := m.run(m.ctx, jb.lang, src)
	if m.ctx.Err() != nil && res.Status == 0 {
		return // shutdown cut the dispatch short; leave the unit pending
	}
	if m.journal != nil {
		rec := journalRec{Type: "result", Job: jb.id, Unit: ref.unit, Key: key,
			Status: res.Status, Shard: res.Shard, Err: res.Err, Body: res.Body}
		if err := m.appendRec(&rec); err != nil {
			// A failed append means the result is not durable; surface
			// the unit as a routing error rather than lying about
			// durability. (The unit will be re-dispatched on restart.)
			return
		}
	}
	if jb.setResult(ref.unit, res) && m.journal != nil {
		_ = m.appendRec(&journalRec{Type: "done", Job: jb.id})
	}
}

// appendRec journals one envelope.
func (m *jobManager) appendRec(rec *journalRec) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	return m.journal.Append(data)
}

// submit creates a job over sources and enqueues every unit.
func (m *jobManager) submit(lang string, sources []string) (*job, error) {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return nil, fmt.Errorf("cluster: job tier is shut down")
	}
	id := fmt.Sprintf("job-%d", m.nextID)
	m.nextID++
	jb := newJob(id, lang, sources)
	m.jobs[id] = jb
	m.order = append(m.order, id)
	m.mu.Unlock()

	if m.journal != nil {
		rec := journalRec{Type: "submit", Job: id, Lang: lang, Sources: sources}
		if err := m.appendRec(&rec); err != nil {
			m.mu.Lock()
			delete(m.jobs, id)
			m.order = m.order[:len(m.order)-1]
			m.mu.Unlock()
			return nil, fmt.Errorf("cluster: journal submit: %w", err)
		}
	}

	m.mu.Lock()
	for i := range jb.units {
		m.queue = append(m.queue, unitRef{job: jb, unit: i})
	}
	m.cond.Broadcast()
	m.mu.Unlock()
	return jb, nil
}

// get looks a job up by ID.
func (m *jobManager) get(id string) (*job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	jb, ok := m.jobs[id]
	return jb, ok
}

// stats summarizes the tier for /cluster/status.
func (m *jobManager) stats() (jobs, complete, pendingUnits int) {
	m.mu.Lock()
	list := make([]*job, 0, len(m.jobs))
	for _, jb := range m.jobs {
		list = append(list, jb)
	}
	m.mu.Unlock()
	for _, jb := range list {
		jb.mu.Lock()
		jobs++
		if jb.complete {
			complete++
		} else {
			pendingUnits += len(jb.units) - jb.done
		}
		jb.mu.Unlock()
	}
	return jobs, complete, pendingUnits
}
