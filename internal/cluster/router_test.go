package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// testKeys derives n deterministic content keys (seeded — the
// uniformity and remap bounds below are exact assertions on this key
// set, not statistical hopes).
func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = ContentKey("minipl", fmt.Sprintf("program p%d; begin x := %d end.", i, rng.Int63()))
	}
	return keys
}

func newRouterWith(t *testing.T, ids ...string) *Router {
	t.Helper()
	r := NewRouter(0)
	for _, id := range ids {
		if err := r.Add(id); err != nil {
			t.Fatalf("Add(%q): %v", id, err)
		}
	}
	return r
}

// TestRouterDeterministicAcrossRestarts pins the core routing
// property: the assignment is a pure function of (member set, key). A
// "restarted" router — same members added in a different order — must
// agree on every owner AND every failover rank, or a coordinator
// restart would silently re-home the cache.
func TestRouterDeterministicAcrossRestarts(t *testing.T) {
	a := newRouterWith(t, "s1", "s2", "s3", "s4", "s5")
	b := newRouterWith(t, "s4", "s2", "s5", "s1", "s3") // different join order
	for _, key := range testKeys(10000) {
		ra, rb := a.Rank(key), b.Rank(key)
		if len(ra) != len(rb) {
			t.Fatalf("rank lengths differ: %d vs %d", len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("key %s: rank[%d] = %s vs %s (full: %v vs %v)", key[:12], i, ra[i], rb[i], ra, rb)
			}
		}
	}
}

// TestRouterUniformity checks load spread: over 10k keys and 8 shards
// every shard holds within ±15% of the fair share.
func TestRouterUniformity(t *testing.T) {
	ids := []string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"}
	r := newRouterWith(t, ids...)
	keys := testKeys(10000)
	counts := make(map[string]int)
	for _, key := range keys {
		counts[r.Pick(key)]++
	}
	fair := float64(len(keys)) / float64(len(ids))
	lo, hi := int(fair*0.85), int(fair*1.15)
	for _, id := range ids {
		if c := counts[id]; c < lo || c > hi {
			t.Errorf("shard %s owns %d keys, outside [%d, %d] (fair share %.0f ±15%%)", id, c, lo, hi, fair)
		}
	}
}

// TestRouterRemapOnJoin checks the minimal-disruption property: adding
// an (N+1)th shard moves only ~1/(N+1) of the keyspace, and every
// moved key moves TO the new shard — never between surviving shards.
func TestRouterRemapOnJoin(t *testing.T) {
	keys := testKeys(10000)
	before := newRouterWith(t, "s1", "s2", "s3", "s4")
	owners := make(map[string]string, len(keys))
	for _, key := range keys {
		owners[key] = before.Pick(key)
	}
	after := newRouterWith(t, "s1", "s2", "s3", "s4", "s5")
	moved := 0
	for _, key := range keys {
		now := after.Pick(key)
		if now == owners[key] {
			continue
		}
		moved++
		if now != "s5" {
			t.Fatalf("key %s moved %s -> %s: a join must only move keys to the joiner", key[:12], owners[key], now)
		}
	}
	frac := float64(moved) / float64(len(keys))
	// Expected 1/5 = 0.20 of the keyspace; allow a generous band.
	if frac < 0.14 || frac > 0.27 {
		t.Errorf("join moved %.3f of the keyspace, want ~0.20 (1/N+1)", frac)
	}

	// Symmetric property: removing the joiner restores every owner.
	after.Remove("s5")
	for _, key := range keys {
		if got := after.Pick(key); got != owners[key] {
			t.Fatalf("key %s owned by %s after remove, was %s", key[:12], got, owners[key])
		}
	}
}

// TestRouterFailoverRank checks the retry path: each key's rank is a
// permutation of the members, and dropping the owner promotes exactly
// the second-ranked shard.
func TestRouterFailoverRank(t *testing.T) {
	ids := []string{"s1", "s2", "s3", "s4"}
	r := newRouterWith(t, ids...)
	for _, key := range testKeys(1000) {
		rank := r.Rank(key)
		if len(rank) != len(ids) {
			t.Fatalf("rank has %d entries, want %d", len(rank), len(ids))
		}
		seen := make(map[string]bool)
		for _, id := range rank {
			if seen[id] {
				t.Fatalf("rank %v repeats %s", rank, id)
			}
			seen[id] = true
		}
		// Remove the owner: the new owner must be the old second choice.
		r2 := NewRouter(0)
		for _, id := range ids {
			if id != rank[0] {
				_ = r2.Add(id)
			}
		}
		if got := r2.Pick(key); got != rank[1] {
			t.Fatalf("key %s: owner-down pick = %s, want rank[1] = %s", key[:12], got, rank[1])
		}
	}
}

// TestRouterPinnedAssignments is the table-driven pin: these exact
// key->shard assignments are part of the cluster's compatibility
// surface. If this table changes, every deployed cache's locality is
// invalidated on upgrade — treat a diff here as a breaking change, not
// a test to update casually.
func TestRouterPinnedAssignments(t *testing.T) {
	r := newRouterWith(t, "s1", "s2", "s3", "s4")
	cases := []struct {
		lang, src string
		want      string
	}{
		{"minipl", "program a; begin x := 1 end.", "s1"},
		{"minipl", "program b; begin x := 2 end.", "s1"},
		{"minipl", "program cluster; global g; begin g := 1 end.", "s2"},
		{"", "program a; begin x := 1 end.", "s1"}, // "" = minipl: same shard as the first row
		{"go", "package a\n", "s2"},
		{"go", "package b\nvar X int\n", "s1"},
	}
	for i, c := range cases {
		got := r.Pick(ContentKey(c.lang, c.src))
		if got != c.want {
			t.Errorf("case %d (lang=%q src=%q): routed to %s, want %s", i, c.lang, c.src, got, c.want)
		}
	}
}

// TestContentKeyLangNamespace pins that the default language is
// minipl (same key) and that language namespaces keys apart.
func TestContentKeyLangNamespace(t *testing.T) {
	src := "program a; begin x := 1 end."
	if ContentKey("", src) != ContentKey("minipl", src) {
		t.Error(`ContentKey("") must equal ContentKey("minipl")`)
	}
	if ContentKey("go", src) == ContentKey("minipl", src) {
		t.Error("go and minipl keys must differ for identical source bytes")
	}
}

// TestRouterMembershipErrors pins the edge cases: duplicate and empty
// IDs are rejected, an empty router picks nothing.
func TestRouterMembershipErrors(t *testing.T) {
	r := NewRouter(0)
	if got := r.Pick("anything"); got != "" {
		t.Fatalf("empty router picked %q", got)
	}
	if err := r.Add(""); err == nil {
		t.Fatal("Add(\"\") succeeded")
	}
	if err := r.Add("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("s1"); err == nil {
		t.Fatal("duplicate Add succeeded")
	}
	r.Remove("absent") // no-op
	if n := r.Len(); n != 1 {
		t.Fatalf("Len = %d, want 1", n)
	}
}
