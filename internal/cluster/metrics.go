package cluster

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// routeBounds are the proxy-latency histogram bucket upper bounds in
// seconds. Routing rides loopback or a LAN hop, so the buckets start
// finer than the server's analysis histogram.
var routeBounds = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5,
}

// metrics is the coordinator's observability state. All methods are
// safe for concurrent use.
type metrics struct {
	mu       sync.Mutex
	requests map[string]int64 // endpoint + "\x00" + status
	// counts: routed requests per shard, retries, failovers (answer
	// came from a non-first-preference shard), shed (per-shard
	// admission full), and requests no shard could serve.
	routed    map[string]int64
	retries   int64
	failovers int64
	shed      int64
	noShard   int64
	// route latency histogram: the coordinator-observed end-to-end
	// proxy time (pick + forward + shard service).
	routeCounts []int64
	routeSum    float64
	routeN      int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:    make(map[string]int64),
		routed:      make(map[string]int64),
		routeCounts: make([]int64, len(routeBounds)+1),
	}
}

func (m *metrics) request(endpoint string, status int) {
	m.mu.Lock()
	m.requests[fmt.Sprintf("%s\x00%d", endpoint, status)]++
	m.mu.Unlock()
}

func (m *metrics) route(shard string, failover bool, seconds float64) {
	m.mu.Lock()
	m.routed[shard]++
	if failover {
		m.failovers++
	}
	i := sort.SearchFloat64s(routeBounds, seconds)
	m.routeCounts[i]++
	m.routeSum += seconds
	m.routeN++
	m.mu.Unlock()
}

func (m *metrics) retry() {
	m.mu.Lock()
	m.retries++
	m.mu.Unlock()
}

func (m *metrics) shedOne() {
	m.mu.Lock()
	m.shed++
	m.mu.Unlock()
}

func (m *metrics) noShardOne() {
	m.mu.Lock()
	m.noShard++
	m.mu.Unlock()
}

// render produces the Prometheus text exposition. shardHealth maps
// shard ID to its current health gauge.
func (m *metrics) render(shardHealth map[string]bool, jobs, jobsComplete, pendingUnits int) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	b.WriteString("# HELP modand_cluster_requests_total Coordinator HTTP requests by endpoint and status code.\n")
	b.WriteString("# TYPE modand_cluster_requests_total counter\n")
	keys := make([]string, 0, len(m.requests))
	for k := range m.requests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		parts := strings.SplitN(k, "\x00", 2)
		fmt.Fprintf(&b, "modand_cluster_requests_total{endpoint=%q,code=%q} %d\n", parts[0], parts[1], m.requests[k])
	}

	b.WriteString("# HELP modand_cluster_routed_total Requests routed, by serving shard.\n")
	b.WriteString("# TYPE modand_cluster_routed_total counter\n")
	shards := make([]string, 0, len(m.routed))
	for id := range m.routed {
		shards = append(shards, id)
	}
	sort.Strings(shards)
	for _, id := range shards {
		fmt.Fprintf(&b, "modand_cluster_routed_total{shard=%q} %d\n", id, m.routed[id])
	}

	b.WriteString("# HELP modand_cluster_shard_healthy Shard health as seen by the prober (1 = healthy).\n")
	b.WriteString("# TYPE modand_cluster_shard_healthy gauge\n")
	ids := make([]string, 0, len(shardHealth))
	for id := range shardHealth {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		v := 0
		if shardHealth[id] {
			v = 1
		}
		fmt.Fprintf(&b, "modand_cluster_shard_healthy{shard=%q} %d\n", id, v)
	}

	b.WriteString("# HELP modand_cluster_retries_total Attempts retried after a shard failure or capacity signal.\n")
	b.WriteString("# TYPE modand_cluster_retries_total counter\n")
	fmt.Fprintf(&b, "modand_cluster_retries_total %d\n", m.retries)
	b.WriteString("# HELP modand_cluster_failovers_total Requests answered by a shard other than the key's first preference.\n")
	b.WriteString("# TYPE modand_cluster_failovers_total counter\n")
	fmt.Fprintf(&b, "modand_cluster_failovers_total %d\n", m.failovers)
	b.WriteString("# HELP modand_cluster_shed_total Attempts skipped because a shard's admission slots were full at the router.\n")
	b.WriteString("# TYPE modand_cluster_shed_total counter\n")
	fmt.Fprintf(&b, "modand_cluster_shed_total %d\n", m.shed)
	b.WriteString("# HELP modand_cluster_no_shard_total Requests that exhausted every shard candidate.\n")
	b.WriteString("# TYPE modand_cluster_no_shard_total counter\n")
	fmt.Fprintf(&b, "modand_cluster_no_shard_total %d\n", m.noShard)

	b.WriteString("# TYPE modand_cluster_jobs gauge\n")
	fmt.Fprintf(&b, "modand_cluster_jobs %d\n", jobs)
	b.WriteString("# TYPE modand_cluster_jobs_complete gauge\n")
	fmt.Fprintf(&b, "modand_cluster_jobs_complete %d\n", jobsComplete)
	b.WriteString("# TYPE modand_cluster_job_units_pending gauge\n")
	fmt.Fprintf(&b, "modand_cluster_job_units_pending %d\n", pendingUnits)

	// The runtime block mirrors the shard servers' exposition so
	// shard-scaling numbers stay interpretable: a coordinator packing
	// more shards than cores onto one box is oversubscribed and its
	// aggregate qps reflects scheduling, not fleet capacity.
	b.WriteString("# TYPE modand_cluster_num_cpu gauge\n")
	fmt.Fprintf(&b, "modand_cluster_num_cpu %d\n", runtime.NumCPU())
	b.WriteString("# TYPE modand_cluster_gomaxprocs gauge\n")
	fmt.Fprintf(&b, "modand_cluster_gomaxprocs %d\n", runtime.GOMAXPROCS(0))

	b.WriteString("# HELP modand_cluster_route_seconds Coordinator-observed proxy latency (routing + shard service).\n")
	b.WriteString("# TYPE modand_cluster_route_seconds histogram\n")
	var cum int64
	for i, bound := range routeBounds {
		cum += m.routeCounts[i]
		fmt.Fprintf(&b, "modand_cluster_route_seconds_bucket{le=%q} %d\n", trimFloat(bound), cum)
	}
	cum += m.routeCounts[len(routeBounds)]
	fmt.Fprintf(&b, "modand_cluster_route_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "modand_cluster_route_seconds_sum %g\n", m.routeSum)
	fmt.Fprintf(&b, "modand_cluster_route_seconds_count %d\n", m.routeN)
	return b.String()
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.5f", f), "0"), ".")
}
