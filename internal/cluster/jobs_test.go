package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"sideeffect/internal/store"
)

// fakeRunner is a dispatch callback that records every invocation and
// can block units behind a gate to freeze a job mid-flight.
type fakeRunner struct {
	mu   sync.Mutex
	runs map[string]int // source -> dispatch count

	gate    chan struct{} // nil = never block
	allowed int           // units that may complete before blocking on gate
}

func newFakeRunner() *fakeRunner {
	return &fakeRunner{runs: make(map[string]int)}
}

func (f *fakeRunner) run(ctx context.Context, lang, source string) unitResult {
	f.mu.Lock()
	f.runs[source]++
	blocked := f.gate != nil && f.allowed <= 0
	if !blocked {
		f.allowed--
	}
	f.mu.Unlock()
	if blocked {
		select {
		case <-f.gate:
		case <-ctx.Done():
			return unitResult{} // cut off mid-dispatch: stays pending
		}
	}
	body, _ := json.Marshal(map[string]string{"echo": source, "lang": lang})
	return unitResult{Status: http.StatusOK, Shard: "fake", Body: body}
}

func (f *fakeRunner) count(source string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runs[source]
}

func (f *fakeRunner) total() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	n := 0
	for _, c := range f.runs {
		n += c
	}
	return n
}

func waitComplete(t *testing.T, jb *job, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		jb.mu.Lock()
		complete := jb.complete
		done, total := jb.done, len(jb.units)
		jb.mu.Unlock()
		if complete {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never completed (%d/%d)", jb.id, done, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func sourcesN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("program p%d; begin x := %d end.", i, i)
	}
	return out
}

// TestJobManagerCompletesAllUnits checks the ephemeral tier: every
// unit dispatches exactly once and the job view reflects the results.
func TestJobManagerCompletesAllUnits(t *testing.T) {
	f := newFakeRunner()
	m, err := newJobManager("", f.run)
	if err != nil {
		t.Fatal(err)
	}
	m.start(4)
	defer m.stop()

	srcs := sourcesN(20)
	jb, err := m.submit("minipl", srcs)
	if err != nil {
		t.Fatal(err)
	}
	waitComplete(t, jb, 10*time.Second)
	for _, s := range srcs {
		if c := f.count(s); c != 1 {
			t.Errorf("source dispatched %d times, want exactly 1: %q", c, s)
		}
	}
	v := jb.view(true, true)
	if v.Done != len(srcs) || v.Errors != 0 || !v.Complete {
		t.Fatalf("view = done %d errors %d complete %v", v.Done, v.Errors, v.Complete)
	}
	for i, u := range v.Units {
		if u.Status != "done" || u.Index != i || u.Key != ContentKey("minipl", srcs[i]) {
			t.Fatalf("unit %d = %+v", i, u)
		}
		var body struct {
			Echo string `json:"echo"`
		}
		if err := json.Unmarshal(u.Body, &body); err != nil || body.Echo != srcs[i] {
			t.Fatalf("unit %d body = %s (%v)", i, u.Body, err)
		}
	}
}

// TestJobManagerJournalReplay is the coordinator-restart story at the
// manager level: freeze a job mid-flight, tear the manager down, build
// a new one over the same journal, and require (a) units that
// completed durably are NOT re-dispatched, (b) pending units ARE, and
// (c) every unit ends with exactly one recorded result.
func TestJobManagerJournalReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "jobs.journal")
	srcs := sourcesN(10)

	f1 := newFakeRunner()
	f1.gate = make(chan struct{})
	f1.allowed = 3 // three units complete, the rest block
	m1, err := newJobManager(path, f1.run)
	if err != nil {
		t.Fatal(err)
	}
	m1.start(2)
	jb1, err := m1.submit("minipl", srcs)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		jb1.mu.Lock()
		done := jb1.done
		jb1.mu.Unlock()
		if done == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pre-restart manager completed %d units, want 3", done)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Tear down with units in flight: stop cancels the manager context,
	// blocked dispatches bail out, and their units stay pending.
	m1.stop()

	completedBefore := make(map[string]bool)
	jb1.mu.Lock()
	for i := range jb1.units {
		if jb1.units[i].done {
			completedBefore[srcs[i]] = true
		}
	}
	jb1.mu.Unlock()
	if len(completedBefore) != 3 {
		t.Fatalf("%d units durable before restart, want 3", len(completedBefore))
	}

	// "Restart": a fresh manager over the same journal.
	f2 := newFakeRunner()
	m2, err := newJobManager(path, f2.run)
	if err != nil {
		t.Fatal(err)
	}
	m2.start(4)
	defer m2.stop()
	jb2, ok := m2.get(jb1.id)
	if !ok {
		t.Fatalf("job %s lost across restart", jb1.id)
	}
	waitComplete(t, jb2, 10*time.Second)

	for _, s := range srcs {
		if completedBefore[s] {
			if c := f2.count(s); c != 0 {
				t.Errorf("durably completed unit re-dispatched %d times after restart: %q", c, s)
			}
		} else if c := f2.count(s); c != 1 {
			t.Errorf("pending unit dispatched %d times after restart, want 1: %q", c, s)
		}
	}

	// Exactly-once at the journal level: one result record per unit.
	m2.stop()
	records, err := journalRecords(path)
	if err != nil {
		t.Fatal(err)
	}
	perUnit := make(map[int]int)
	for _, rec := range records {
		if rec.Type == "result" && rec.Job == jb1.id {
			perUnit[rec.Unit]++
		}
	}
	if len(perUnit) != len(srcs) {
		t.Fatalf("journal holds results for %d units, want %d", len(perUnit), len(srcs))
	}
	for unit, n := range perUnit {
		if n != 1 {
			t.Errorf("unit %d has %d result records, want exactly 1", unit, n)
		}
	}

	// A third open replays a fully complete job without re-dispatching
	// anything.
	f3 := newFakeRunner()
	m3, err := newJobManager(path, f3.run)
	if err != nil {
		t.Fatal(err)
	}
	m3.start(2)
	defer m3.stop()
	jb3, ok := m3.get(jb1.id)
	if !ok {
		t.Fatal("job lost on second restart")
	}
	waitComplete(t, jb3, 2*time.Second)
	time.Sleep(50 * time.Millisecond) // give any spurious dispatch a chance to fire
	if n := f3.total(); n != 0 {
		t.Errorf("complete job re-dispatched %d units on replay", n)
	}
}

// TestJobManagerStopIsIdempotent guards the daemon shutdown path,
// which can reach stop through both the defer and the signal handler.
func TestJobManagerStopIsIdempotent(t *testing.T) {
	f := newFakeRunner()
	m, err := newJobManager(filepath.Join(t.TempDir(), "jobs.journal"), f.run)
	if err != nil {
		t.Fatal(err)
	}
	m.start(1)
	jb, err := m.submit("minipl", sourcesN(2))
	if err != nil {
		t.Fatal(err)
	}
	waitComplete(t, jb, 5*time.Second)
	m.stop()
	m.stop()
}

// journalRecords decodes every journal envelope at path — exactly
// what a restarting coordinator would replay.
func journalRecords(path string) ([]journalRec, error) {
	j, raw, err := store.OpenJournal(path)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	var records []journalRec
	for _, data := range raw {
		var rec journalRec
		if err := json.Unmarshal(data, &rec); err != nil {
			return nil, err
		}
		records = append(records, rec)
	}
	return records, nil
}
