package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// apiError mirrors the shard servers' structured error payload so
// coordinator-originated failures look exactly like shard failures to
// clients.
type apiError struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (c *Coordinator) writeError(w http.ResponseWriter, label string, e *apiError) {
	writeJSON(w, e.Status, map[string]*apiError{"error": e})
	c.met.request(label, e.Status)
}

// route registers fn with the shared plumbing: request-size limit,
// per-request timeout, and request counting by endpoint label.
func (c *Coordinator) route(pattern, label string, fn func(w http.ResponseWriter, r *http.Request) (int, *apiError)) {
	c.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, c.cfg.MaxRequestBytes)
		ctx, cancel := context.WithTimeout(r.Context(), c.cfg.Timeout)
		defer cancel()
		status, apiErr := fn(w, r.WithContext(ctx))
		if apiErr != nil {
			c.writeError(w, label, apiErr)
			return
		}
		c.met.request(label, status)
	})
}

// routedRequest is the slice of /analyze and /lint bodies the router
// needs: the content key's ingredients. Unknown fields pass through to
// the shard untouched.
type routedRequest struct {
	Source string `json:"source"`
	Lang   string `json:"lang"`
}

// handleProxy serves POST /analyze and POST /lint: decode just enough
// to derive the content key, then forward the original body bytes to
// the key's shard and relay its response verbatim — byte-identical to
// asking that shard (or a single-node modand) directly.
func (c *Coordinator) handleProxy(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return 0, &apiError{Status: http.StatusRequestEntityTooLarge, Code: "too_large",
			Message: fmt.Sprintf("request body exceeds the %d-byte limit", c.cfg.MaxRequestBytes)}
	}
	var req routedRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("invalid JSON body: %v", err)}
	}
	if req.Source == "" {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: "missing \"source\""}
	}
	lang := req.Lang
	if lang == "" {
		lang = r.URL.Query().Get("lang")
	}
	key := ContentKey(lang, req.Source)
	res, err := c.forward(r.Context(), key, http.MethodPost, r.URL.RequestURI(), r.Header.Get("Content-Type"), body)
	if err != nil {
		c.met.noShardOne()
		return 0, &apiError{Status: http.StatusServiceUnavailable, Code: "no_shard_available",
			Message: fmt.Sprintf("no shard could serve this request: %v", err)}
	}
	c.relay(w, res)
	return res.status, nil
}

// relay writes a shard's response through verbatim, tagging the
// serving shard and attempt count in headers (the body is untouched).
func (c *Coordinator) relay(w http.ResponseWriter, res *fwdResult) {
	if res.contentType != "" {
		w.Header().Set("Content-Type", res.contentType)
	}
	if ra := res.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Modand-Shard", res.shard)
	w.Header().Set("X-Modand-Attempts", fmt.Sprint(res.attempts))
	w.WriteHeader(res.status)
	_, _ = w.Write(res.body)
}

// batchRequest and batchShape mirror the shard server's /batch wire
// forms closely enough to split and merge them.
type batchRequest struct {
	Sources []string `json:"sources"`
}

// handleBatch serves POST /batch by splitting the sources across their
// owning shards, forwarding per-shard sub-batches concurrently, and
// merging the per-source results back into submission order.
func (c *Coordinator) handleBatch(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	var req batchRequest
	dec := json.NewDecoder(r.Body)
	if err := dec.Decode(&req); err != nil {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("invalid JSON body: %v", err)}
	}
	if len(req.Sources) == 0 {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: "missing \"sources\""}
	}
	if c.router.Len() == 0 {
		return 0, &apiError{Status: http.StatusServiceUnavailable, Code: "no_shard_available",
			Message: "no shards registered"}
	}

	// Group source indexes by owning shard.
	groups := make(map[string][]int)
	for i, src := range req.Sources {
		owner := c.router.Pick(ContentKey("", src))
		groups[owner] = append(groups[owner], i)
	}

	type groupOut struct {
		indexes []int
		results []json.RawMessage
		err     error
	}
	ids := make([]string, 0, len(groups))
	for id := range groups {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	outs := make([]groupOut, len(ids))
	done := make(chan int, len(ids))
	for gi, id := range ids {
		go func(gi int, id string) {
			defer func() { done <- gi }()
			idxs := groups[id]
			sub := batchRequest{Sources: make([]string, len(idxs))}
			for k, i := range idxs {
				sub.Sources[k] = req.Sources[i]
			}
			body, err := json.Marshal(sub)
			if err != nil {
				outs[gi] = groupOut{indexes: idxs, err: err}
				return
			}
			// Route the sub-batch by its first source's key: the whole
			// group shares an owner by construction.
			key := ContentKey("", sub.Sources[0])
			res, err := c.forward(r.Context(), key, http.MethodPost, "/batch", "application/json", body)
			if err != nil {
				outs[gi] = groupOut{indexes: idxs, err: err}
				return
			}
			if res.status != http.StatusOK {
				outs[gi] = groupOut{indexes: idxs, err: fmt.Errorf("shard %s: status %d: %s", res.shard, res.status, res.body)}
				return
			}
			var parsed struct {
				Results []json.RawMessage `json:"results"`
			}
			if err := json.Unmarshal(res.body, &parsed); err != nil || len(parsed.Results) != len(idxs) {
				outs[gi] = groupOut{indexes: idxs, err: fmt.Errorf("shard %s: malformed batch response", res.shard)}
				return
			}
			outs[gi] = groupOut{indexes: idxs, results: parsed.Results}
		}(gi, id)
	}
	for range ids {
		<-done
	}

	merged := make([]json.RawMessage, len(req.Sources))
	for _, out := range outs {
		for k, i := range out.indexes {
			if out.err != nil {
				e, _ := json.Marshal(map[string]string{"error": out.err.Error()})
				merged[i] = e
				continue
			}
			merged[i] = out.results[k]
		}
	}
	writeJSON(w, http.StatusOK, map[string][]json.RawMessage{"results": merged})
	return http.StatusOK, nil
}

// jobSubmitRequest is the POST /jobs body: a corpus of sources
// analyzed asynchronously, each unit routed by its content key.
type jobSubmitRequest struct {
	Sources []string `json:"sources"`
	Lang    string   `json:"lang,omitempty"`
}

func (c *Coordinator) handleJobSubmit(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	var req jobSubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("invalid JSON body: %v", err)}
	}
	if len(req.Sources) == 0 {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: "missing \"sources\""}
	}
	if len(req.Sources) > c.cfg.MaxJobSources {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("%d sources exceed the per-job limit of %d", len(req.Sources), c.cfg.MaxJobSources)}
	}
	switch req.Lang {
	case "", "minipl", "go":
	default:
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("unknown lang %q (want minipl or go)", req.Lang)}
	}
	jb, err := c.jobs.submit(req.Lang, req.Sources)
	if err != nil {
		return 0, &apiError{Status: http.StatusServiceUnavailable, Code: "jobs_unavailable", Message: err.Error()}
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id": jb.id, "units": len(jb.units), "status": "running",
		"poll": "/jobs/" + jb.id, "stream": "/jobs/" + jb.id + "/stream",
	})
	return http.StatusAccepted, nil
}

func (c *Coordinator) handleJobGet(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	jb, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		return 0, &apiError{Status: http.StatusNotFound, Code: "not_found",
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))}
	}
	includeBodies := r.URL.Query().Get("results") == "1"
	includeUnits := r.URL.Query().Get("units") != "0"
	writeJSON(w, http.StatusOK, jb.view(includeUnits, includeBodies))
	return http.StatusOK, nil
}

// streamEvent is one NDJSON line on /jobs/{id}/stream: a completed
// unit, or the terminal summary line (Done set).
type streamEvent struct {
	// Index is omitted only on the terminal summary line (Done true);
	// unit lines always carry it, including unit 0.
	Index  *int            `json:"index,omitempty"`
	Key    string          `json:"key,omitempty"`
	Status string          `json:"status,omitempty"`
	Shard  string          `json:"shard,omitempty"`
	Code   int             `json:"code,omitempty"`
	Error  string          `json:"error,omitempty"`
	Body   json.RawMessage `json:"body,omitempty"`
	Done   bool            `json:"done,omitempty"`
	Total  int             `json:"total,omitempty"`
}

// handleJobStream serves GET /jobs/{id}/stream: newline-delimited JSON
// of per-unit results in completion order — units already finished
// replay first, then live completions as the fleet produces them — and
// a terminal {"done":true} line once the job completes.
func (c *Coordinator) handleJobStream(w http.ResponseWriter, r *http.Request) {
	jb, ok := c.jobs.get(r.PathValue("id"))
	if !ok {
		c.writeError(w, "/jobs/{id}/stream", &apiError{Status: http.StatusNotFound, Code: "not_found",
			Message: fmt.Sprintf("no job %q", r.PathValue("id"))})
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emitted := 0
	for {
		jb.mu.Lock()
		events := make([]streamEvent, 0, len(jb.completionLog)-emitted)
		for _, unit := range jb.completionLog[emitted:] {
			u := &jb.units[unit]
			idx := u.index
			events = append(events, streamEvent{
				Index: &idx, Key: u.key, Status: u.status(), Shard: u.result.Shard,
				Code: u.result.Status, Error: u.result.Err, Body: u.result.Body,
			})
		}
		emitted = len(jb.completionLog)
		complete := jb.complete
		notify := jb.notify
		total := len(jb.units)
		jb.mu.Unlock()
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(events) > 0 && flusher != nil {
			flusher.Flush()
		}
		if complete {
			_ = enc.Encode(streamEvent{Done: true, Total: total})
			if flusher != nil {
				flusher.Flush()
			}
			c.met.request("/jobs/{id}/stream", http.StatusOK)
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

// joinRequest is the POST /cluster/join body a shard (or operator)
// registers a replica with.
type joinRequest struct {
	ID  string `json:"id"`
	URL string `json:"url"`
}

func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request",
			Message: fmt.Sprintf("invalid JSON body: %v", err)}
	}
	if req.ID == "" || req.URL == "" {
		return 0, &apiError{Status: http.StatusBadRequest, Code: "bad_request", Message: "need both \"id\" and \"url\""}
	}
	// Upsert: a shard restarting on a new port re-joins under its old
	// ID and keeps its keyspace slice; only a genuinely bad request
	// (empty URL) conflicts.
	if err := c.UpsertShard(req.ID, req.URL); err != nil {
		return 0, &apiError{Status: http.StatusConflict, Code: "join_conflict", Message: err.Error()}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "shards": c.router.Len()})
	return http.StatusOK, nil
}

// shardStatusView is one row of /cluster/status.
type shardStatusView struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Requests int64  `json:"requests"`
	Failures int64  `json:"failures"`
	Rejected int64  `json:"rejected"`
	InFlight int    `json:"inFlight"`
}

// handleStatus serves GET /cluster/status: topology, per-shard health
// and counters, and the job tier's summary.
func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) (int, *apiError) {
	c.mu.RLock()
	views := make([]shardStatusView, 0, len(c.shards))
	for _, st := range c.shards {
		views = append(views, shardStatusView{
			ID: st.id, URL: st.baseURL(), Healthy: st.healthy.Load(),
			Requests: st.requests.Load(), Failures: st.failures.Load(),
			Rejected: st.rejected.Load(), InFlight: st.inFlight(),
		})
	}
	c.mu.RUnlock()
	sort.Slice(views, func(i, j int) bool { return views[i].ID < views[j].ID })
	healthy := 0
	for _, v := range views {
		if v.Healthy {
			healthy++
		}
	}
	jobs, complete, pending := c.jobs.stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":        views,
		"healthyShards": healthy,
		"vnodes":        c.cfg.VNodes,
		"jobs": map[string]int{
			"total": jobs, "complete": complete, "pendingUnits": pending,
		},
	})
	return http.StatusOK, nil
}

func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c.mu.RLock()
	health := make(map[string]bool, len(c.shards))
	for id, st := range c.shards {
		health[id] = st.healthy.Load()
	}
	c.mu.RUnlock()
	jobs, complete, pending := c.jobs.stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, c.met.render(health, jobs, complete, pending))
}

// runUnit dispatches one job unit through the routed forward path —
// the callback the job manager drives its workers with.
func (c *Coordinator) runUnit(ctx context.Context, lang, source string) unitResult {
	body, err := json.Marshal(map[string]string{"source": source, "lang": langOrDefault(lang)})
	if err != nil {
		return unitResult{Status: http.StatusInternalServerError, Err: err.Error()}
	}
	parent := ctx
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	res, ferr := c.forward(ctx, ContentKey(lang, source), http.MethodPost, "/analyze", "application/json", body)
	if ferr != nil {
		if parent.Err() != nil {
			// Shutdown, not a shard failure: report no result so the
			// unit stays pending and replays on the next start.
			return unitResult{}
		}
		return unitResult{Status: http.StatusServiceUnavailable, Err: ferr.Error()}
	}
	return unitResult{Status: res.status, Shard: res.shard, Body: res.body}
}

// langOrDefault normalizes the job-level language field for the
// per-unit /analyze bodies.
func langOrDefault(lang string) string {
	if lang == "" {
		return "minipl"
	}
	return lang
}

// waitHealthy blocks until at least n shards probe healthy or the
// timeout lapses — a convenience for harnesses and the daemon's
// startup logging. Reports whether the threshold was reached.
func (c *Coordinator) WaitHealthy(n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.RLock()
		healthy := 0
		for _, st := range c.shards {
			if st.healthy.Load() {
				healthy++
			}
		}
		c.mu.RUnlock()
		if healthy >= n {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		c.probeAll()
		time.Sleep(25 * time.Millisecond)
	}
}
