package bitset

import "sync"

// The scratch pool recycles Sets used as short-lived temporaries by
// the analysis inner loops (per-level seeds and per-node accumulators
// in findgmod, batch-engine scratch). The paper's algorithms allocate
// O(N) bit vectors per solve; under the batch engine the same solve
// runs thousands of times across many programs, and steady-state
// allocation — not arithmetic — dominates the profile. A single
// process-wide sync.Pool lets concurrent analyses share warmed-up
// vectors: capacity is retained on recycle (both the dense words and
// the sparse element buffer), so after the first few programs most Get
// calls return a vector that already spans the universe and only needs
// a memclr.
var scratch = sync.Pool{New: func() any { return &Set{} }}

// GetScratch returns a cleared dense set with capacity for elements in
// [0, n), drawn from the process-wide scratch pool. Release it with
// PutScratch when done; a set that escapes instead is simply collected
// by the GC, so forgetting a Put is a throughput leak, never a
// correctness bug.
func GetScratch(n int) *Set {
	s := scratch.Get().(*Set)
	if s.sparse {
		// The set was recycled in sparse form; its dense words may be
		// stale from an earlier dense life, so clear them on the way
		// back to dense.
		s.sparse = false
		s.elems = s.elems[:0]
		for i := range s.words {
			s.words[i] = 0
		}
	}
	s.grow(max(n-1, 0))
	return s
}

// PutScratch clears s and returns it to the scratch pool. s must not
// be used after the call. Put(nil) is a no-op.
func PutScratch(s *Set) {
	if s == nil {
		return
	}
	s.Clear()
	scratch.Put(s)
}

// CopyFrom makes s an exact copy of t — same elements, same
// representation, capacity at least t's — reusing s's backing storage
// when it is large enough. It returns s. CopyFrom(nil) clears s.
func (s *Set) CopyFrom(t *Set) *Set {
	if t == nil {
		s.Clear()
		return s
	}
	if t == s {
		return s
	}
	if t.sparse {
		s.elems = append(s.elems[:0], t.elems...)
		s.sparse = true
		return s
	}
	if s.sparse {
		s.sparse = false
		s.elems = s.elems[:0]
		// Stale dense words are fully overwritten by the copy and the
		// zero-tail loop below.
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	n := copy(s.words, t.words)
	for i := n; i < len(s.words); i++ {
		s.words[i] = 0
	}
	return s
}
