package bitset

import (
	"math/rand"
	"reflect"
	"testing"
)

// sparseFromSlice builds a set that starts sparse (promoting on its
// own if the elements exceed SparseMax).
func sparseFromSlice(elems []int) *Set {
	s := NewSparse()
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

func TestPromotionBoundary(t *testing.T) {
	s := NewSparse()
	for i := 0; i < SparseMax; i++ {
		s.Add(i * 3)
	}
	if !s.IsSparse() {
		t.Fatalf("set with %d elements promoted early", SparseMax)
	}
	s.Add(5 * 3) // duplicate: must not promote
	if !s.IsSparse() {
		t.Fatal("duplicate Add at the boundary promoted the set")
	}
	s.Add(1000) // SparseMax+1st distinct element crosses the boundary
	if s.IsSparse() {
		t.Fatal("set did not promote past SparseMax elements")
	}
	want := make([]int, 0, SparseMax+1)
	for i := 0; i < SparseMax; i++ {
		want = append(want, i*3)
	}
	want = append(want, 1000)
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Errorf("elements lost across promotion: got %v, want %v", got, want)
	}
	if got, want := s.Len(), SparseMax+1; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
}

func TestSparseRemoveAndOrder(t *testing.T) {
	s := sparseFromSlice([]int{9, 1, 5, 1})
	if got, want := s.Elems(), []int{1, 5, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("Elems = %v, want %v", got, want)
	}
	s.Remove(5)
	s.Remove(77) // absent: no-op
	if got, want := s.Elems(), []int{1, 9}; !reflect.DeepEqual(got, want) {
		t.Fatalf("after Remove: %v, want %v", got, want)
	}
	if s.Has(5) || !s.Has(9) {
		t.Error("Has out of sync with Remove")
	}
}

// TestUnionAliasedReceiver covers x.UnionWith(x) and friends: a set
// unioned with itself must not change or corrupt its storage, in
// either representation.
func TestUnionAliasedReceiver(t *testing.T) {
	for _, mk := range []func([]int) *Set{FromSlice, sparseFromSlice} {
		s := mk([]int{1, 64, 200})
		if s.UnionWith(s) {
			t.Error("UnionWith(self) reported change")
		}
		if n := s.UnionInPlaceCount(s); n != 0 {
			t.Errorf("UnionInPlaceCount(self) = %d, want 0", n)
		}
		if s.UnionDiffWith(s, nil) {
			t.Error("UnionDiffWith(self, nil) reported change")
		}
		s.IntersectWith(s)
		if got, want := s.Elems(), []int{1, 64, 200}; !reflect.DeepEqual(got, want) {
			t.Errorf("self-ops corrupted set: %v, want %v", got, want)
		}
		s.DifferenceWith(s)
		if !s.Empty() {
			t.Error("DifferenceWith(self) did not empty the set")
		}
	}
}

func TestEqualTrailingZeroWords(t *testing.T) {
	a := New(1) // 1 word
	a.Add(3)
	b := New(1024) // 16 words, all trailing zeros after the first
	b.Add(3)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("Equal not capacity-blind with trailing zero words")
	}
	c := sparseFromSlice([]int{3})
	if !a.Equal(c) || !c.Equal(b) {
		t.Error("Equal not representation-blind")
	}
	b.Add(700)
	if a.Equal(b) || b.Equal(a) || c.Equal(b) {
		t.Error("unequal sets reported Equal")
	}
	// An element living entirely in a word beyond the other set's
	// capacity must be seen.
	d := New(0)
	e := New(0)
	e.Add(640)
	e.Remove(640) // leaves a trailing zero word
	if !d.Equal(e) || !e.Equal(d) {
		t.Error("cleared high word broke Equal")
	}
}

// TestPoolReusePoisoning: a scratch set returned to the pool must come
// back cleared no matter which representation it was in, including the
// nasty case where a set lived dense, was CopyFrom'd a sparse source
// (leaving stale dense words behind), and is then recycled dense.
func TestPoolReusePoisoning(t *testing.T) {
	s := GetScratch(256)
	s.Add(7)
	s.Add(200)
	PutScratch(s)
	for i := 0; i < 8; i++ {
		u := GetScratch(256)
		if !u.Empty() || u.Has(7) || u.Has(200) {
			t.Fatal("recycled scratch not cleared")
		}
		PutScratch(u)
	}

	// Poison via representation flip: dense words go stale under a
	// sparse copy, then the set is recycled and must come back dense
	// and empty.
	v := GetScratch(256)
	v.Add(63)
	v.Add(130)
	v.CopyFrom(sparseFromSlice([]int{2}))
	if !v.IsSparse() {
		t.Fatal("CopyFrom(sparse) did not switch representation")
	}
	PutScratch(v)
	w := GetScratch(256)
	if w.IsSparse() {
		t.Error("GetScratch returned a sparse set")
	}
	if !w.Empty() || w.Has(63) || w.Has(130) || w.Has(2) {
		t.Errorf("stale dense words resurfaced after sparse detour: %v", w)
	}
	PutScratch(w)
}

func TestUnionInPlaceCount(t *testing.T) {
	s := FromSlice([]int{1, 2})
	if n := s.UnionInPlaceCount(FromSlice([]int{2, 3, 100})); n != 2 {
		t.Errorf("dense count = %d, want 2", n)
	}
	if n := s.UnionInPlaceCount(FromSlice([]int{1, 3})); n != 0 {
		t.Errorf("no-op count = %d, want 0", n)
	}
	sp := NewSparse()
	if n := sp.UnionInPlaceCount(FromSlice([]int{5, 9})); n != 2 {
		t.Errorf("sparse←dense count = %d, want 2", n)
	}
	if sp.IsSparse() != true {
		t.Error("small dense union promoted a sparse receiver")
	}
	if n := sp.UnionInPlaceCount(sparseFromSlice([]int{9, 10})); n != 1 {
		t.Errorf("sparse←sparse count = %d, want 1", n)
	}
	big := New(4096)
	for i := 0; i < 200; i++ {
		big.Add(i * 7)
	}
	// 5, 9, 10 are present and none is a multiple of 7, so all 200
	// elements of big are new.
	if n := sp.UnionInPlaceCount(big); n != 200 {
		t.Errorf("promoting union count = %d, want 200", n)
	}
	if sp.IsSparse() {
		t.Error("large dense union did not promote the receiver")
	}
	if n := sp.UnionInPlaceCount(nil); n != 0 {
		t.Errorf("UnionInPlaceCount(nil) = %d, want 0", n)
	}
}

func TestGrowDoubling(t *testing.T) {
	s := New(0)
	grows := 0
	lastCap := 0
	for i := 0; i < 4096; i++ {
		s.Add(i)
		if c := cap(s.words); c != lastCap {
			grows++
			lastCap = c
		}
	}
	// Exact-fit growth would reallocate on every 64th Add (64 times);
	// doubling needs only O(log n) reallocations.
	if grows > 10 {
		t.Errorf("grow reallocated %d times for 4096 incremental Adds; capacity doubling should need ≤ 10", grows)
	}
}

func TestMakeDenseMakeSparse(t *testing.T) {
	words := make([]uint64, 4)
	d := MakeDense(words)
	d.Add(65)
	if words[1] != 2 {
		t.Error("MakeDense does not alias the caller's storage")
	}
	buf := make([]uint32, SparseMax)
	sp := MakeSparse(buf)
	sp.Add(9)
	if !sp.IsSparse() || !sp.Has(9) || sp.Has(0) {
		t.Error("MakeSparse misbehaves")
	}
	for i := 0; i < SparseMax+1; i++ {
		sp.Add(i * 2)
	}
	if sp.IsSparse() {
		t.Error("MakeSparse set did not promote when it outgrew its buffer")
	}
}

// TestHybridOracle drives random operation sequences against a
// map-based model, mixing representations on every operand, so every
// sparse/dense branch pairing gets exercised.
func TestHybridOracle(t *testing.T) {
	const universe = 300
	r := rand.New(rand.NewSource(42))
	randSet := func() (*Set, map[int]bool) {
		var s *Set
		if r.Intn(2) == 0 {
			s = NewSparse()
		} else {
			s = New(r.Intn(universe))
		}
		m := map[int]bool{}
		for i, n := 0, r.Intn(60); i < n; i++ {
			e := r.Intn(universe)
			s.Add(e)
			m[e] = true
		}
		return s, m
	}
	check := func(step int, s *Set, m map[int]bool) {
		t.Helper()
		for e := 0; e < universe+64; e++ {
			if s.Has(e) != m[e] {
				t.Fatalf("step %d: Has(%d) = %v, model says %v (sparse=%v)", step, e, s.Has(e), m[e], s.IsSparse())
			}
		}
		if s.Len() != len(m) {
			t.Fatalf("step %d: Len = %d, model has %d", step, s.Len(), len(m))
		}
	}
	for step := 0; step < 500; step++ {
		a, ma := randSet()
		b, mb := randSet()
		c, mc := randSet()
		switch step % 6 {
		case 0:
			n := a.UnionInPlaceCount(b)
			want := 0
			for e := range mb {
				if !ma[e] {
					ma[e] = true
					want++
				}
			}
			if n != want {
				t.Fatalf("step %d: UnionInPlaceCount = %d, want %d", step, n, want)
			}
		case 1:
			a.IntersectWith(b)
			for e := range ma {
				if !mb[e] {
					delete(ma, e)
				}
			}
		case 2:
			a.DifferenceWith(b)
			for e := range mb {
				delete(ma, e)
			}
		case 3:
			a.UnionDiffWith(b, c)
			for e := range mb {
				if !mc[e] {
					ma[e] = true
				}
			}
		case 4:
			got := a.SubsetOf(b)
			want := true
			for e := range ma {
				if !mb[e] {
					want = false
				}
			}
			if got != want {
				t.Fatalf("step %d: SubsetOf = %v, want %v", step, got, want)
			}
			gi, wi := a.Intersects(b), false
			for e := range ma {
				if mb[e] {
					wi = true
				}
			}
			if gi != wi {
				t.Fatalf("step %d: Intersects = %v, want %v", step, gi, wi)
			}
		case 5:
			sc := GetScratch(0).CopyFrom(a)
			if !sc.Equal(a) || sc.IsSparse() != a.IsSparse() {
				t.Fatalf("step %d: CopyFrom not faithful", step)
			}
			e := r.Intn(universe)
			sc.Add(e)
			sc.Remove(e)
			PutScratch(sc)
		}
		check(step, a, ma)
		// Cross-mode Equal: a must equal an independently rebuilt set
		// of the opposite construction.
		rebuilt := NewSparse()
		if a.IsSparse() {
			rebuilt = New(universe)
		}
		for e := range ma {
			rebuilt.Add(e)
		}
		if !a.Equal(rebuilt) || !rebuilt.Equal(a) {
			t.Fatalf("step %d: Equal disagrees across representations", step)
		}
	}
}
