// Package bitset implements dense bit-vector sets over the integers
// [0, n). Interprocedural analyses manipulate sets whose universe is
// "every variable in the program", and the paper observes that such bit
// vectors grow linearly with program size; this package is the shared
// representation for GMOD/GUSE/IMOD+/LOCAL and friends.
//
// The zero value of Set is an empty set of capacity zero. All
// destructive operations grow the receiver as needed, so a Set built
// with New(n) never needs explicit resizing when used within a fixed
// universe.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a dense bit vector. Element i is present when bit i%64 of
// word i/64 is set. Trailing zero words are permitted; two Sets are
// Equal when they contain the same elements regardless of capacity.
type Set struct {
	words []uint64
}

// New returns an empty set with capacity for elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice returns a set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := New(0)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// grow ensures the receiver can hold element i.
func (s *Set) grow(i int) {
	w := i/wordBits + 1
	if w > len(s.words) {
		nw := make([]uint64, w)
		copy(nw, s.words)
		s.words = nw
	}
}

// Add inserts i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: Add(%d): negative element", i))
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 || i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 || i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil {
		return false
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	changed := false
	for i, w := range t.words {
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	for i := range s.words {
		if t == nil || i >= len(t.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= t.words[i]
		}
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	if t == nil {
		return
	}
	for i := range s.words {
		if i >= len(t.words) {
			break
		}
		s.words[i] &^= t.words[i]
	}
}

// UnionDiffWith adds to s every element of t that is NOT in mask, and
// reports whether s changed. This is the workhorse of equation (4) of
// the paper: GMOD[p] ∪= GMOD[q] ∖ LOCAL[q], performed in a single pass
// without allocating a temporary.
func (s *Set) UnionDiffWith(t, mask *Set) bool {
	if t == nil {
		return false
	}
	if len(t.words) > len(s.words) {
		s.grow(len(t.words)*wordBits - 1)
	}
	changed := false
	for i, w := range t.words {
		if mask != nil && i < len(mask.words) {
			w &^= mask.words[i]
		}
		old := s.words[i]
		nw := old | w
		if nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Union returns a new set s ∪ t.
func Union(s, t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func Intersect(s, t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s ∖ t.
func Difference(s, t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// Equal reports whether s and t contain the same elements.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s == nil || s.Empty()
	}
	if s == nil {
		return t.Empty()
	}
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	for i, w := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	if t == nil {
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements of the set in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, wi*wordBits+b)
			w &= w - 1
		}
	}
	return out
}

// ForEach calls f for each element in increasing order.
func (s *Set) ForEach(f func(int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Words returns the number of 64-bit words backing the set. It is the
// unit in which "bit-vector steps" are converted to machine operations
// when the experiment harness reports operation counts.
func (s *Set) Words() int { return len(s.words) }
