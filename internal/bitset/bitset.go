// Package bitset implements hybrid sparse/dense bit-vector sets over
// the integers [0, n). Interprocedural analyses manipulate sets whose
// universe is "every variable in the program", and the paper observes
// that such bit vectors grow linearly with program size; this package
// is the shared representation for GMOD/GUSE/IMOD+/LOCAL and friends.
//
// A Set has two representations. The dense form is the classic word
// array: element i is bit i%64 of word i/64. The sparse form is a
// short sorted element slice (cf. the Briggs–Torczon sparse-set
// discipline): most procedures touch only a handful of variables, so
// their seed sets fit in a few cache lines instead of a vector that
// spans the whole universe. A sparse set automatically promotes to
// dense, in place, the moment it exceeds SparseMax elements; it never
// demotes. Promotion happens only inside mutating methods on the
// receiver, so read-only operations (Has, Equal, Elems, serving as the
// t or mask argument of a union) are safe on Sets shared between
// goroutines.
//
// The zero value of Set is an empty dense set of capacity zero. All
// destructive operations grow the receiver as needed — with capacity
// doubling, so k incremental Adds cost O(k) amortized words copied —
// and a Set built with New(n) never needs resizing within a fixed
// universe.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// SparseMax is the element count beyond which a sparse set promotes to
// the dense representation. 32 sorted uint32s are half a cache line of
// payload — binary search plus insertion memmove at this size is
// cheaper than touching a universe-sized word vector, and the arena
// carves sparse element blocks of exactly this capacity so promotion
// is the only way a sparse set can outgrow its block.
const SparseMax = 32

// Set is a hybrid bit-vector set. Trailing zero words are permitted in
// the dense form; two Sets are Equal when they contain the same
// elements regardless of capacity or representation.
type Set struct {
	words  []uint64 // dense payload; ignored (possibly stale) while sparse
	elems  []uint32 // sparse payload: sorted, unique; ignored while dense
	sparse bool
}

// New returns an empty dense set with capacity for elements in [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// NewSparse returns an empty set in the sparse representation. It
// stays sparse until it exceeds SparseMax elements, then promotes to
// dense in place.
func NewSparse() *Set {
	return &Set{sparse: true}
}

// FromSlice returns a dense set containing exactly the given elements.
func FromSlice(elems []int) *Set {
	s := New(0)
	for _, e := range elems {
		s.Add(e)
	}
	return s
}

// MakeDense returns a dense Set value whose storage is the caller's
// word slice. The caller promises the slice is zeroed (or holds the
// intended initial contents) and not shared with another Set. This is
// the arena hook: internal/arena carves word blocks out of a slab and
// wraps them here without a per-set heap allocation.
func MakeDense(words []uint64) Set {
	return Set{words: words}
}

// MakeSparse returns an empty sparse Set value whose element buffer is
// the caller's slice (capacity SparseMax, typically an arena block).
// The set promotes to a heap-allocated dense vector if it outgrows the
// buffer.
func MakeSparse(buf []uint32) Set {
	return Set{elems: buf[:0], sparse: true}
}

// IsSparse reports whether the set currently uses the sparse
// representation. Exposed for tests and allocation accounting.
func (s *Set) IsSparse() bool { return s.sparse }

// Densify forces the dense representation in place. It is a no-op on
// dense sets; the dense-only baseline of the E16 ablation uses it to
// strip the hybrid discipline from a workload.
func (s *Set) Densify() { s.promote() }

// promote converts a sparse set to the dense representation in place.
// Any retained dense capacity (e.g. on a recycled scratch set) is
// cleared before the elements are re-inserted; the element buffer is
// kept for a potential later CopyFrom of a sparse source.
func (s *Set) promote() {
	if !s.sparse {
		return
	}
	s.sparse = false
	for i := range s.words {
		s.words[i] = 0
	}
	if n := len(s.elems); n > 0 {
		s.grow(int(s.elems[n-1]))
		for _, e := range s.elems {
			s.words[e/wordBits] |= 1 << (e % wordBits)
		}
	}
	s.elems = s.elems[:0]
}

// grow ensures the receiver is dense and can hold element i, doubling
// capacity so repeated incremental growth copies O(n) words total.
func (s *Set) grow(i int) {
	if s.sparse {
		s.promote()
	}
	w := i/wordBits + 1
	if w <= len(s.words) {
		return
	}
	if w <= cap(s.words) {
		n := len(s.words)
		s.words = s.words[:w]
		for j := n; j < w; j++ {
			s.words[j] = 0
		}
		return
	}
	c := 2 * cap(s.words)
	if c < w {
		c = w
	}
	nw := make([]uint64, w, c)
	copy(nw, s.words)
	s.words = nw
}

// findSparse binary-searches the sorted element slice for e, returning
// the insertion index and whether e is present.
func (s *Set) findSparse(e uint32) (int, bool) {
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.elems[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(s.elems) && s.elems[lo] == e
}

// Add inserts i into the set. It panics if i is negative.
func (s *Set) Add(i int) {
	if i < 0 {
		panic(fmt.Sprintf("bitset: Add(%d): negative element", i))
	}
	if s.sparse {
		e := uint32(i)
		k, ok := s.findSparse(e)
		if ok {
			return
		}
		if len(s.elems) < SparseMax {
			s.elems = append(s.elems, 0)
			copy(s.elems[k+1:], s.elems[k:])
			s.elems[k] = e
			return
		}
		s.promote() // boundary crossed: fall through to dense insert
	}
	s.grow(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Remove deletes i from the set. Removing an absent element is a no-op.
func (s *Set) Remove(i int) {
	if i < 0 {
		return
	}
	if s.sparse {
		if k, ok := s.findSparse(uint32(i)); ok {
			s.elems = append(s.elems[:k], s.elems[k+1:]...)
		}
		return
	}
	if i/wordBits >= len(s.words) {
		return
	}
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if i < 0 {
		return false
	}
	if s.sparse {
		_, ok := s.findSparse(uint32(i))
		return ok
	}
	if i/wordBits >= len(s.words) {
		return false
	}
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	if s.sparse {
		return len(s.elems)
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	if s.sparse {
		return len(s.elems) == 0
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clear removes all elements, retaining capacity and representation.
func (s *Set) Clear() {
	if s.sparse {
		s.elems = s.elems[:0]
		return
	}
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns an independent copy of the set in the same
// representation.
func (s *Set) Clone() *Set {
	if s.sparse {
		c := &Set{sparse: true}
		if len(s.elems) > 0 {
			c.elems = append(make([]uint32, 0, len(s.elems)), s.elems...)
		}
		return c
	}
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// denseWords returns t's word slice with trailing zero words trimmed,
// so unions never force the receiver to materialize capacity for
// elements t does not actually contain.
func denseWords(t *Set) []uint64 {
	w := t.words
	for len(w) > 0 && w[len(w)-1] == 0 {
		w = w[:len(w)-1]
	}
	return w
}

// UnionWith adds every element of t to s and reports whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	return s.UnionInPlaceCount(t) > 0
}

// UnionInPlaceCount adds every element of t to s and returns the
// number of elements that were newly added (0 means the union was a
// no-op). SCC passes use the count to skip propagating unions that
// changed nothing.
func (s *Set) UnionInPlaceCount(t *Set) int {
	if t == nil || t == s {
		return 0
	}
	if t.sparse {
		added := 0
		for _, e := range t.elems {
			if !s.Has(int(e)) {
				s.Add(int(e))
				added++
			}
		}
		return added
	}
	tw := t.words
	if s.sparse {
		// A small sparse receiver absorbing a dense argument: count
		// t's bits first so a union that fits stays sparse.
		n := 0
		for _, w := range tw {
			n += bits.OnesCount64(w)
		}
		if len(s.elems)+n > SparseMax {
			s.promote()
		} else {
			added := 0
			for wi, w := range tw {
				for w != 0 {
					b := bits.TrailingZeros64(w)
					w &= w - 1
					e := wi*wordBits + b
					if !s.Has(e) {
						s.Add(e)
						added++
					}
				}
			}
			return added
		}
	}
	if len(tw) > len(s.words) {
		// Trim t's trailing zero words before growing: a union must not
		// force capacity for elements t does not actually contain. When
		// the receiver is already wide enough — every union onto a
		// universe-width arena row — the scan is skipped entirely.
		if tw = denseWords(t); len(tw) > len(s.words) {
			s.grow(len(tw)*wordBits - 1)
		}
	}
	added := 0
	for i, w := range tw {
		old := s.words[i]
		if nw := old | w; nw != old {
			s.words[i] = nw
			added += bits.OnesCount64(nw &^ old)
		}
	}
	return added
}

// sparseMaskWord collects mask elements that fall into dense word wi
// as a bit mask, advancing *j. Callers iterate wi in increasing order,
// so the cursor never rewinds.
func sparseMaskWord(elems []uint32, j *int, wi int) uint64 {
	for *j < len(elems) && int(elems[*j])/wordBits < wi {
		*j++
	}
	var mw uint64
	for k := *j; k < len(elems) && int(elems[k])/wordBits == wi; k++ {
		mw |= 1 << (elems[k] % wordBits)
	}
	return mw
}

// IntersectWith removes from s every element not in t.
func (s *Set) IntersectWith(t *Set) {
	if t == s {
		return
	}
	if s.sparse {
		keep := s.elems[:0]
		for _, e := range s.elems {
			if t != nil && t.Has(int(e)) {
				keep = append(keep, e)
			}
		}
		s.elems = keep
		return
	}
	if t != nil && t.sparse {
		j := 0
		for i := range s.words {
			s.words[i] &= sparseMaskWord(t.elems, &j, i)
		}
		return
	}
	for i := range s.words {
		if t == nil || i >= len(t.words) {
			s.words[i] = 0
		} else {
			s.words[i] &= t.words[i]
		}
	}
}

// DifferenceWith removes from s every element of t.
func (s *Set) DifferenceWith(t *Set) {
	if t == nil {
		return
	}
	if t == s {
		s.Clear()
		return
	}
	if s.sparse {
		keep := s.elems[:0]
		for _, e := range s.elems {
			if !t.Has(int(e)) {
				keep = append(keep, e)
			}
		}
		s.elems = keep
		return
	}
	if t.sparse {
		for _, e := range t.elems {
			if int(e)/wordBits < len(s.words) {
				s.words[e/wordBits] &^= 1 << (e % wordBits)
			}
		}
		return
	}
	for i := range s.words {
		if i >= len(t.words) {
			break
		}
		s.words[i] &^= t.words[i]
	}
}

// UnionDiffWith adds to s every element of t that is NOT in mask, and
// reports whether s changed. This is the workhorse of equation (4) of
// the paper: GMOD[p] ∪= GMOD[q] ∖ LOCAL[q], performed in a single pass
// without allocating a temporary. Any mix of representations works;
// t and mask are never mutated.
func (s *Set) UnionDiffWith(t, mask *Set) bool {
	if t == nil || t == s {
		return false
	}
	if t.sparse {
		changed := false
		for _, e := range t.elems {
			if mask != nil && mask.Has(int(e)) {
				continue
			}
			if !s.Has(int(e)) {
				s.Add(int(e))
				changed = true
			}
		}
		return changed
	}
	tw := t.words
	if s.sparse {
		changed := false
		for wi, w := range tw {
			for w != 0 {
				b := bits.TrailingZeros64(w)
				w &= w - 1
				e := wi*wordBits + b
				if mask != nil && mask.Has(e) {
					continue
				}
				if !s.Has(e) {
					s.Add(e) // may promote mid-loop; Add stays correct
					changed = true
				}
			}
		}
		return changed
	}
	if len(tw) > len(s.words) {
		// See UnionInPlaceCount: trim only when growth is at stake.
		if tw = denseWords(t); len(tw) > len(s.words) {
			s.grow(len(tw)*wordBits - 1)
		}
	}
	changed := false
	if mask != nil && mask.sparse {
		j := 0
		for i, w := range tw {
			w &^= sparseMaskWord(mask.elems, &j, i)
			old := s.words[i]
			if nw := old | w; nw != old {
				s.words[i] = nw
				changed = true
			}
		}
		return changed
	}
	for i, w := range tw {
		if mask != nil && i < len(mask.words) {
			w &^= mask.words[i]
		}
		old := s.words[i]
		if nw := old | w; nw != old {
			s.words[i] = nw
			changed = true
		}
	}
	return changed
}

// Union returns a new set s ∪ t.
func Union(s, t *Set) *Set {
	c := s.Clone()
	c.UnionWith(t)
	return c
}

// Intersect returns a new set s ∩ t.
func Intersect(s, t *Set) *Set {
	c := s.Clone()
	c.IntersectWith(t)
	return c
}

// Difference returns a new set s ∖ t.
func Difference(s, t *Set) *Set {
	c := s.Clone()
	c.DifferenceWith(t)
	return c
}

// equalSparseDense reports whether the sorted element slice and the
// dense word vector denote the same set.
func equalSparseDense(elems []uint32, words []uint64) bool {
	j := 0
	for wi, w := range words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &= w - 1
			if j >= len(elems) || int(elems[j]) != wi*wordBits+b {
				return false
			}
			j++
		}
	}
	return j == len(elems)
}

// Equal reports whether s and t contain the same elements, regardless
// of capacity or representation.
func (s *Set) Equal(t *Set) bool {
	if t == nil {
		return s == nil || s.Empty()
	}
	if s == nil {
		return t.Empty()
	}
	switch {
	case s.sparse && t.sparse:
		if len(s.elems) != len(t.elems) {
			return false
		}
		for i, e := range s.elems {
			if t.elems[i] != e {
				return false
			}
		}
		return true
	case s.sparse:
		return equalSparseDense(s.elems, t.words)
	case t.sparse:
		return equalSparseDense(t.elems, s.words)
	}
	long, short := s.words, t.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if w != long[i] {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in t.
func (s *Set) SubsetOf(t *Set) bool {
	if s.sparse {
		for _, e := range s.elems {
			if t == nil || !t.Has(int(e)) {
				return false
			}
		}
		return true
	}
	if t != nil && t.sparse {
		j := 0
		for i, w := range s.words {
			if w&^sparseMaskWord(t.elems, &j, i) != 0 {
				return false
			}
		}
		return true
	}
	for i, w := range s.words {
		var tw uint64
		if t != nil && i < len(t.words) {
			tw = t.words[i]
		}
		if w&^tw != 0 {
			return false
		}
	}
	return true
}

// Intersects reports whether s and t share at least one element.
func (s *Set) Intersects(t *Set) bool {
	if t == nil {
		return false
	}
	if s.sparse {
		for _, e := range s.elems {
			if t.Has(int(e)) {
				return true
			}
		}
		return false
	}
	if t.sparse {
		for _, e := range t.elems {
			if s.Has(int(e)) {
				return true
			}
		}
		return false
	}
	n := len(s.words)
	if len(t.words) < n {
		n = len(t.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&t.words[i] != 0 {
			return true
		}
	}
	return false
}

// Elems returns the elements of the set in increasing order.
func (s *Set) Elems() []int {
	out := make([]int, 0, s.Len())
	s.ForEach(func(i int) { out = append(out, i) })
	return out
}

// ForEach calls f for each element in increasing order.
func (s *Set) ForEach(f func(int)) {
	if s.sparse {
		for _, e := range s.elems {
			f(int(e))
		}
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			f(wi*wordBits + b)
			w &= w - 1
		}
	}
}

// String renders the set as "{1, 5, 9}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.ForEach(func(i int) {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", i)
	})
	b.WriteByte('}')
	return b.String()
}

// Words returns the number of 64-bit words the set spans: the backing
// length for dense sets, the span up to the largest element for sparse
// ones. It is the unit in which "bit-vector steps" are converted to
// machine operations when the experiment harness reports operation
// counts.
func (s *Set) Words() int {
	if s.sparse {
		if len(s.elems) == 0 {
			return 0
		}
		return int(s.elems[len(s.elems)-1])/wordBits + 1
	}
	return len(s.words)
}
