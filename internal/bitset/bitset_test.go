package bitset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAddHasRemove(t *testing.T) {
	s := New(10)
	if !s.Empty() {
		t.Fatal("new set not empty")
	}
	s.Add(3)
	s.Add(64)
	s.Add(200) // beyond initial capacity: must grow
	for _, i := range []int{3, 64, 200} {
		if !s.Has(i) {
			t.Errorf("Has(%d) = false, want true", i)
		}
	}
	for _, i := range []int{0, 2, 4, 63, 65, 199, 201, 1000} {
		if s.Has(i) {
			t.Errorf("Has(%d) = true, want false", i)
		}
	}
	if got := s.Len(); got != 3 {
		t.Errorf("Len = %d, want 3", got)
	}
	s.Remove(64)
	if s.Has(64) {
		t.Error("Remove(64) did not remove")
	}
	s.Remove(10_000) // out of range: no-op
	if got := s.Len(); got != 2 {
		t.Errorf("Len after remove = %d, want 2", got)
	}
}

func TestHasNegative(t *testing.T) {
	s := New(8)
	if s.Has(-1) {
		t.Error("Has(-1) = true")
	}
	s.Remove(-5) // must not panic
}

func TestAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Add(-1) did not panic")
		}
	}()
	New(1).Add(-1)
}

func TestUnionWith(t *testing.T) {
	s := FromSlice([]int{1, 2, 3})
	u := FromSlice([]int{3, 100})
	if !s.UnionWith(u) {
		t.Error("UnionWith reported no change")
	}
	if s.UnionWith(u) {
		t.Error("second UnionWith reported change")
	}
	want := []int{1, 2, 3, 100}
	if got := s.Elems(); !reflect.DeepEqual(got, want) {
		t.Errorf("Elems = %v, want %v", got, want)
	}
	if s.UnionWith(nil) {
		t.Error("UnionWith(nil) reported change")
	}
}

func TestIntersectAndDifference(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 64, 65})
	tt := FromSlice([]int{2, 64, 200})
	i := Intersect(s, tt)
	if got, want := i.Elems(), []int{2, 64}; !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	d := Difference(s, tt)
	if got, want := d.Elems(), []int{1, 3, 65}; !reflect.DeepEqual(got, want) {
		t.Errorf("Difference = %v, want %v", got, want)
	}
	s2 := s.Clone()
	s2.IntersectWith(nil)
	if !s2.Empty() {
		t.Error("IntersectWith(nil) should empty the set")
	}
	s3 := s.Clone()
	s3.DifferenceWith(nil)
	if !s3.Equal(s) {
		t.Error("DifferenceWith(nil) should be a no-op")
	}
}

func TestUnionDiffWith(t *testing.T) {
	// GMOD[p] ∪= GMOD[q] ∖ LOCAL[q]
	p := FromSlice([]int{1})
	q := FromSlice([]int{2, 3, 70})
	local := FromSlice([]int{3})
	if !p.UnionDiffWith(q, local) {
		t.Error("UnionDiffWith reported no change")
	}
	want := []int{1, 2, 70}
	if got := p.Elems(); !reflect.DeepEqual(got, want) {
		t.Errorf("after UnionDiffWith: %v, want %v", got, want)
	}
	if p.UnionDiffWith(q, local) {
		t.Error("repeat UnionDiffWith reported change")
	}
	// nil mask behaves like plain union.
	r := New(0)
	r.UnionDiffWith(q, nil)
	if !r.Equal(q) {
		t.Errorf("UnionDiffWith(q, nil) = %v, want %v", r, q)
	}
}

func TestEqualIgnoresCapacity(t *testing.T) {
	a := New(1000)
	b := New(1)
	a.Add(5)
	b.Add(5)
	if !a.Equal(b) || !b.Equal(a) {
		t.Error("sets with same elements but different capacity not Equal")
	}
	a.Add(999)
	if a.Equal(b) || b.Equal(a) {
		t.Error("unequal sets reported Equal")
	}
	var nilSet *Set
	if !New(10).Equal(nilSet) {
		t.Error("empty set should Equal nil")
	}
}

func TestSubsetIntersects(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := FromSlice([]int{1, 2, 3})
	if !a.SubsetOf(b) {
		t.Error("a ⊄ b")
	}
	if b.SubsetOf(a) {
		t.Error("b ⊂ a")
	}
	if !a.Intersects(b) {
		t.Error("a does not intersect b")
	}
	if a.Intersects(FromSlice([]int{99})) {
		t.Error("disjoint sets reported intersecting")
	}
	if a.Intersects(nil) {
		t.Error("Intersects(nil) = true")
	}
	if !New(4).SubsetOf(nil) {
		t.Error("empty not subset of nil")
	}
}

func TestString(t *testing.T) {
	if got, want := FromSlice([]int{5, 1}).String(), "{1, 5}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if got, want := New(3).String(), "{}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestForEachOrder(t *testing.T) {
	s := FromSlice([]int{300, 5, 70})
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if want := []int{5, 70, 300}; !reflect.DeepEqual(got, want) {
		t.Errorf("ForEach order = %v, want %v", got, want)
	}
}

// refSet is a map-based reference model for property testing.
type refSet map[int]bool

func randomPair(r *rand.Rand) (*Set, refSet) {
	s, m := New(0), refSet{}
	n := r.Intn(100)
	for i := 0; i < n; i++ {
		e := r.Intn(500)
		s.Add(e)
		m[e] = true
	}
	return s, m
}

func TestQuickUnionMatchesModel(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, ma := randomPair(r)
		b, mb := randomPair(r)
		u := Union(a, b)
		for e := 0; e < 520; e++ {
			if u.Has(e) != (ma[e] || mb[e]) {
				return false
			}
		}
		i := Intersect(a, b)
		for e := 0; e < 520; e++ {
			if i.Has(e) != (ma[e] && mb[e]) {
				return false
			}
		}
		d := Difference(a, b)
		for e := 0; e < 520; e++ {
			if d.Has(e) != (ma[e] && !mb[e]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUnionDiffIdentity(t *testing.T) {
	// s.UnionDiffWith(t, m) ≡ s.UnionWith(Difference(t, m))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s, _ := randomPair(r)
		tt, _ := randomPair(r)
		m, _ := randomPair(r)
		a := s.Clone()
		b := s.Clone()
		ca := a.UnionDiffWith(tt, m)
		cb := b.UnionWith(Difference(tt, m))
		return ca == cb && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickLatticeLaws(t *testing.T) {
	// Union/Intersect are commutative, associative, idempotent, and
	// absorb each other on random sets.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, _ := randomPair(r)
		b, _ := randomPair(r)
		c, _ := randomPair(r)
		if !Union(a, b).Equal(Union(b, a)) {
			return false
		}
		if !Intersect(a, b).Equal(Intersect(b, a)) {
			return false
		}
		if !Union(Union(a, b), c).Equal(Union(a, Union(b, c))) {
			return false
		}
		if !Union(a, a).Equal(a) || !Intersect(a, a).Equal(a) {
			return false
		}
		if !Union(a, Intersect(a, b)).Equal(a) {
			return false
		}
		if !Intersect(a, Union(a, b)).Equal(a) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]int{1})
	b := a.Clone()
	b.Add(2)
	if a.Has(2) {
		t.Error("Clone shares storage with original")
	}
}

func TestClearRetainsCapacity(t *testing.T) {
	s := FromSlice([]int{500})
	w := s.Words()
	s.Clear()
	if !s.Empty() {
		t.Error("Clear did not empty set")
	}
	if s.Words() != w {
		t.Error("Clear changed capacity")
	}
}
