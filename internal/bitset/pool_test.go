package bitset

import (
	"sync"
	"testing"
)

func TestGetScratchIsCleared(t *testing.T) {
	// Under the race detector sync.Pool drops entries at random to
	// expose unsynchronized reuse, so one Put/Get round trip is not
	// guaranteed to hand the same storage back; retry until a recycle
	// actually happens.
	retained := false
	for i := 0; i < 50 && !retained; i++ {
		s := GetScratch(200)
		s.Add(3)
		s.Add(150)
		PutScratch(s)
		u := GetScratch(10)
		if !u.Empty() {
			t.Errorf("recycled scratch not empty: %s", u)
		}
		// Capacity is retained across recycles.
		retained = u.Words() >= (200+63)/64
		PutScratch(u)
	}
	if !retained {
		t.Error("recycled scratch never retained its capacity")
	}
	PutScratch(nil) // must not panic
}

func TestCopyFrom(t *testing.T) {
	t.Run("grows", func(t *testing.T) {
		s := New(0)
		tt := FromSlice([]int{1, 70, 500})
		s.CopyFrom(tt)
		if !s.Equal(tt) {
			t.Errorf("CopyFrom = %s, want %s", s, tt)
		}
	})
	t.Run("clears-tail", func(t *testing.T) {
		s := FromSlice([]int{600})
		s.CopyFrom(FromSlice([]int{2}))
		if !s.Equal(FromSlice([]int{2})) {
			t.Errorf("stale tail survives CopyFrom: %s", s)
		}
	})
	t.Run("nil-clears", func(t *testing.T) {
		s := FromSlice([]int{5})
		s.CopyFrom(nil)
		if !s.Empty() {
			t.Errorf("CopyFrom(nil) = %s", s)
		}
	})
}

// TestScratchConcurrent hammers the pool from many goroutines under
// -race: scratch sets must never be visible to two users at once.
func TestScratchConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s := GetScratch(128)
				if !s.Empty() {
					t.Errorf("goroutine %d: dirty scratch", g)
					return
				}
				s.Add(g)
				s.Add(64 + i%64)
				if s.Len() != 2 {
					t.Errorf("goroutine %d: len = %d", g, s.Len())
					return
				}
				PutScratch(s)
			}
		}(g)
	}
	wg.Wait()
}
