// Package gofront is the Go-source frontend: it loads real Go
// packages with the standard library's parser and type checker and
// lowers them onto the ir.Program model, so the interprocedural
// MOD/USE/RMOD analyses, the modlint rules, and the serving layers run
// on real repositories exactly as they do on MiniPL.
//
// The lowering takes the conservative, Banning-compatible cut of Go's
// abstraction gap (the precision tier — Dyck-reachability alias
// resolution, generalized points-to graphs — is a separate backend per
// the roadmap):
//
//   - A parameter whose type can reach shared mutable storage
//     (pointer, slice, map, channel, interface, or any composite
//     containing one) lowers to a by-reference formal; everything else
//     (numbers, strings, value structs/arrays of them) lowers to a
//     by-value formal.
//   - A write that stays on the variable itself (x = v, valueStruct.f
//     = v, rebinding a slice header) is a local effect; a write that
//     crosses a reference hop (*p = v, s[i] = v, m[k] = v, ptr.f = v,
//     *s = append(*s, x), send on a channel) modifies the storage
//     reachable from the access path's root, resolved through a small
//     flow-insensitive alias pass over the function body.
//   - Closures lower to nested procedures (the lexical-nesting
//     machinery of Section 3.3/4 of the paper carries captured
//     variables for free). An immediately invoked closure gets a real
//     call site; a closure that escapes (stored, returned, passed)
//     gets a conservative "may run" call site in its creator.
//   - Constructs the model cannot represent — cgo, unsafe, reflection,
//     calls into unanalyzed packages with untrackable arguments —
//     degrade soundly to worst-case MOD/USE of the function's
//     reachable reference formals, address-taken locals, and package
//     globals, and are recorded as per-function Confidence notes.
//
// Effects that leave the package (I/O, writes to another package's
// state) are modeled by a synthetic package-level global named
// "$external", created lazily the first time a function calls out of
// the analyzed package; a function whose GMOD contains $external is
// never reported pure.
package gofront

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"sideeffect/internal/ir"
)

// LoweringVersion identifies the lowering semantics. It participates
// in every content-addressed cache key derived from Go sources, so a
// persisted result produced by an older lowering (coarser struct
// tracking, package-boundary degradation) can never be served for the
// same bytes after the frontend changed what those bytes mean.
const LoweringVersion = 2

// Confidence grades how faithfully one function was lowered.
type Confidence int

// Confidence levels.
const (
	// High means every construct in the function body is modeled
	// precisely by the conservative cut.
	High Confidence = iota
	// Degraded means at least one construct forced the worst-case
	// fallback; the facts are sound but over-approximate.
	Degraded
)

// String renders the confidence level.
func (c Confidence) String() string {
	if c == High {
		return "high"
	}
	return "degraded"
}

// MarshalJSON renders the confidence as its name.
func (c Confidence) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON parses the name form written by MarshalJSON, so notes
// round-trip through API clients.
func (c *Confidence) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"high"`:
		*c = High
	case `"degraded"`:
		*c = Degraded
	default:
		return fmt.Errorf("gofront: unknown confidence %s", b)
	}
	return nil
}

// Note is one function's lowering-confidence record.
type Note struct {
	// Proc is the ir procedure name ("Reset", "Set.Len", "F$fn1"; in
	// module mode the name is package-qualified, e.g.
	// "internal/core.Analyze").
	Proc string `json:"proc"`
	// Pkg is the module-relative package the function belongs to;
	// empty in single-package mode.
	Pkg string `json:"pkg,omitempty"`
	// File is the base name of the file declaring the function (the
	// module-relative path in module mode).
	File string `json:"file,omitempty"`
	// Confidence is High unless a degradation was recorded.
	Confidence Confidence `json:"confidence"`
	// Reasons lists the degradations, sorted and deduplicated; empty
	// for High confidence.
	Reasons []string `json:"reasons,omitempty"`
}

// Package is one lowered Go package, ready for analysis.
type Package struct {
	// Name is the Go package name; Dir the directory it was loaded
	// from ("" for in-memory sources); Path the display path used in
	// reports.
	Name string
	Dir  string
	Path string
	// Files lists the source file base names, sorted.
	Files []string
	// Hash is the content-addressed identity of the package: a SHA-256
	// over the language tag plus every (name, content) pair in file
	// order. Two loads of byte-identical sources share it.
	Hash string
	// Prog is the lowered program model. It is not pruned: the
	// synthetic $main is empty, and every top-level function keeps its
	// own summary.
	Prog *ir.Program
	// Notes holds one confidence record per lowered function, in
	// procedure ID order ($main excluded).
	Notes []Note
	// TypeErrors counts type-checker diagnostics that were tolerated
	// during loading (unresolved imports degrade, they do not fail).
	TypeErrors int
	// Module is true when this result is a whole-module lowering: one
	// shared program holding every module-local package, with
	// cross-package calls resolved and interface calls devirtualized.
	Module bool
	// Packages lists the module-relative package directories lowered
	// into the shared program, in topological (import) order. Empty in
	// single-package mode.
	Packages []string
	// Devirtualized counts the interface call sites resolved to the
	// closed set of module-local implementations instead of degrading.
	Devirtualized int
}

// Note returns the confidence record for the named procedure, or nil.
func (p *Package) Note(proc string) *Note {
	for i := range p.Notes {
		if p.Notes[i].Proc == proc {
			return &p.Notes[i]
		}
	}
	return nil
}

// Degraded returns the names of procedures lowered with degraded
// confidence, in procedure ID order.
func (p *Package) Degraded() []string {
	var out []string
	for _, n := range p.Notes {
		if n.Confidence == Degraded {
			out = append(out, n.Proc)
		}
	}
	return out
}

// DegradedByPackage counts degraded procedures per module-relative
// package. Single-package results report under the "" key.
func (p *Package) DegradedByPackage() map[string]int {
	out := map[string]int{}
	for _, n := range p.Notes {
		if n.Confidence == Degraded {
			out[n.Pkg]++
		}
	}
	return out
}

// DegradedRecord is the machine-readable form of one degraded
// function, emitted by the CLIs' -degraded=json mode so CI can diff
// precision regressions structurally instead of scraping stderr.
type DegradedRecord struct {
	Pkg     string   `json:"pkg,omitempty"`
	Proc    string   `json:"proc"`
	File    string   `json:"file,omitempty"`
	Reasons []string `json:"reasons"`
}

// DegradedRecords renders the degraded notes as records, in procedure
// ID order.
func (p *Package) DegradedRecords() []DegradedRecord {
	var out []DegradedRecord
	for _, n := range p.Notes {
		if n.Confidence != Degraded {
			continue
		}
		out = append(out, DegradedRecord{Pkg: n.Pkg, Proc: n.Proc, File: n.File, Reasons: n.Reasons})
	}
	return out
}

// DegradedJSON renders the degraded-function list of several analyzed
// packages as one deterministic JSON document:
//
//	{"degraded": [{"path": ..., "count": N, "functions": [...]}, ...]}
func DegradedJSON(pkgs []*Package) ([]byte, error) {
	type pkgRec struct {
		Path      string           `json:"path"`
		Count     int              `json:"count"`
		Functions []DegradedRecord `json:"functions,omitempty"`
	}
	doc := struct {
		Degraded []pkgRec `json:"degraded"`
	}{Degraded: []pkgRec{}}
	for _, p := range pkgs {
		recs := p.DegradedRecords()
		doc.Degraded = append(doc.Degraded, pkgRec{Path: p.Path, Count: len(recs), Functions: recs})
	}
	return json.MarshalIndent(doc, "", "  ")
}

// ConfidenceReport renders the per-function confidence table appended
// to analysis reports for Go packages.
func (p *Package) ConfidenceReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Lowering confidence (%s) ==\n", p.Path)
	w := len("procedure")
	for _, n := range p.Notes {
		if len(n.Proc) > w {
			w = len(n.Proc)
		}
	}
	fmt.Fprintf(&b, "%-*s  %-8s  %s\n", w, "procedure", "level", "notes")
	fmt.Fprintf(&b, "%s  %s  %s\n", strings.Repeat("-", w), "--------", "-----")
	for _, n := range p.Notes {
		reasons := "-"
		if len(n.Reasons) > 0 {
			reasons = strings.Join(n.Reasons, "; ")
		}
		fmt.Fprintf(&b, "%-*s  %-8s  %s\n", w, n.Proc, n.Confidence, reasons)
	}
	return b.String()
}

// sortNotes orders notes by procedure ID order as recorded and
// canonicalizes each note's reasons.
func sortNotes(notes []Note) {
	for i := range notes {
		rs := notes[i].Reasons
		sort.Strings(rs)
		notes[i].Reasons = dedup(rs)
	}
}

// dedup removes adjacent duplicates from a sorted slice.
func dedup(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
