package gofront

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sideeffect/internal/core"
	"sideeffect/internal/ir"
)

// analyze is the test harness: lower a single in-memory file and run
// the MOD solver over the result, so facts can be asserted without
// importing the public package (which would cycle).
func analyze(t *testing.T, src string) (*Package, *core.Result) {
	t.Helper()
	pkg, err := AnalyzeSource("test.go", src)
	if err != nil {
		t.Fatalf("AnalyzeSource: %v", err)
	}
	return pkg, core.Analyze(pkg.Prog, core.Mod, core.Options{})
}

// rmodOf reports whether proc's formal named f landed in RMOD.
func rmodOf(t *testing.T, pkg *Package, res *core.Result, proc, formal string) bool {
	t.Helper()
	for _, p := range pkg.Prog.Procs {
		if p.Name != proc {
			continue
		}
		for _, fm := range p.Formals {
			if fm.Name == formal {
				return res.RMOD.Of(fm)
			}
		}
		t.Fatalf("%s: no formal %q", proc, formal)
	}
	t.Fatalf("no procedure %q", proc)
	return false
}

func TestLowerCoreIdioms(t *testing.T) {
	pkg, res := analyze(t, `package p

var g int

func PtrWrite(p *int) { *p = 1 }
func PtrRead(p *int) int { return *p }
func SliceWrite(s []int) { s[0] = 1 }
func HeaderRebind(s []int) { s = nil; _ = s }
func GrowInPlace(s *[]int) { *s = append(*s, 1) }
func GlobalWrite() { g++ }
func Chain(p *int) { PtrWrite(p) }
`)
	for _, c := range []struct {
		proc, formal string
		want         bool
	}{
		{"PtrWrite", "p", true},
		{"PtrRead", "p", false},
		{"SliceWrite", "s", true},
		{"HeaderRebind", "s", false},
		{"GrowInPlace", "s", true},
		{"Chain", "p", true},
	} {
		if got := rmodOf(t, pkg, res, c.proc, c.formal); got != c.want {
			t.Errorf("RMOD(%s.%s) = %v, want %v", c.proc, c.formal, got, c.want)
		}
	}
	// The global write must be in GMOD(GlobalWrite).
	var gw *ir.Procedure
	var gv *ir.Variable
	for _, p := range pkg.Prog.Procs {
		if p.Name == "GlobalWrite" {
			gw = p
		}
	}
	for _, v := range pkg.Prog.Vars {
		if v.Kind == ir.Global && v.Name == "g" {
			gv = v
		}
	}
	if gw == nil || gv == nil {
		t.Fatal("GlobalWrite or g missing from lowered program")
	}
	if !res.GMOD[gw.ID].Has(gv.ID) {
		t.Errorf("GMOD(GlobalWrite) = %v, want it to contain g", res.GMOD[gw.ID])
	}
	if pkg.Degraded() != nil {
		t.Errorf("self-contained package degraded: %v", pkg.Degraded())
	}
}

func TestUnknownCallsDegradeSoundly(t *testing.T) {
	pkg, res := analyze(t, `package p

import "fmt"

func Log(p *int) { fmt.Println(p) }
func LogVal(p *int) { fmt.Println(*p) }
`)
	// Sound worst case: handing the pointer itself to unanalyzed code
	// must charge the formal as modified...
	if !rmodOf(t, pkg, res, "Log", "p") {
		t.Error("RMOD(Log.p) = false; unknown call must assume modification")
	}
	// ...while passing only the dereferenced value cannot expose the
	// pointee, so precision is kept even on a degraded function.
	if rmodOf(t, pkg, res, "LogVal", "p") {
		t.Error("RMOD(LogVal.p) = true; value argument cannot be modified")
	}
	d := pkg.Degraded()
	if len(d) != 2 || d[0] != "Log" || d[1] != "LogVal" {
		t.Errorf("Degraded() = %v, want [Log LogVal]", d)
	}
	n := pkg.Note("Log")
	if n == nil || n.Confidence != Degraded {
		t.Fatalf("note for Log = %+v, want degraded", n)
	}
	if len(n.Reasons) == 0 || !strings.Contains(n.Reasons[0], "fmt") {
		t.Errorf("degradation reasons = %v, want a mention of fmt", n.Reasons)
	}
}

func TestHashDistinguishesContent(t *testing.T) {
	h1 := Hash([]sourceFile{{name: "a.go", src: "package p\n"}})
	h2 := Hash([]sourceFile{{name: "a.go", src: "package q\n"}})
	h3 := Hash([]sourceFile{{name: "b.go", src: "package p\n"}})
	if h1 == h2 || h1 == h3 {
		t.Errorf("hash collisions: %s %s %s", h1, h2, h3)
	}
	if h1 != Hash([]sourceFile{{name: "a.go", src: "package p\n"}}) {
		t.Error("hash unstable for identical input")
	}
}

func TestExpandSkipsTestdataAndHidden(t *testing.T) {
	// The repo root's "..." walk must not descend into testdata (the
	// fixture corpus would otherwise be analyzed by every ./... run).
	dirs, _, err := Expand([]string{filepath.Join("..", "..") + string(filepath.Separator) + "..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, "testdata") {
			t.Errorf("Expand descended into %s", d)
		}
	}
	if len(dirs) == 0 {
		t.Error("Expand found no packages under the repo root")
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := LoadDir(filepath.Join(t.TempDir())); err == nil {
		t.Error("LoadDir on an empty directory: no error")
	}
	if _, err := AnalyzeSource("broken.go", "package p\nfunc {"); err == nil {
		t.Error("AnalyzeSource on unparseable source: no error")
	}
	if _, err := Load([]string{filepath.Join("does", "not", "exist")}); err == nil {
		t.Error("Load on a missing path: no error")
	}
}

// TestCorpusLowersClean lowers every fixture package and validates
// the IR through the solver — the frontend-side counterpart of the
// public golden test.
func TestCorpusLowersClean(t *testing.T) {
	root := filepath.Join("..", "..", "testdata", "gofront")
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	check := func(name string, pkg *Package, err error) {
		if err != nil {
			t.Errorf("%s: %v", name, err)
			return
		}
		if pkg.Prog == nil || pkg.Prog.NumProcs() < 2 {
			t.Errorf("%s: implausibly small program", name)
			return
		}
		if res := core.Analyze(pkg.Prog, core.Mod, core.Options{}); res == nil {
			t.Errorf("%s: solver rejected lowered IR", name)
		}
	}
	seen := 0
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "golden" {
			continue
		}
		if e.Name() == "mod" {
			// Whole-module fixtures: each subdirectory is its own module
			// and lowers through LoadModule instead of LoadDir.
			mods, err := os.ReadDir(filepath.Join(root, "mod"))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range mods {
				if !m.IsDir() {
					continue
				}
				pkg, err := LoadModule(filepath.Join(root, "mod", m.Name()), nil)
				check("mod/"+m.Name(), pkg, err)
			}
			continue
		}
		seen++
		pkg, err := LoadDir(filepath.Join(root, e.Name()))
		check(e.Name(), pkg, err)
	}
	if seen < 12 {
		t.Errorf("corpus has %d packages, want >= 12", seen)
	}
}
