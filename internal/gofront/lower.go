package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"
	"go/types"
	"strings"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/token"
)

// lowerer lowers one type-checked Go package onto an ir.Program.
type lowerer struct {
	path string
	fset *gotoken.FileSet
	info *types.Info
	tpkg *types.Package

	b *ir.Builder

	// globals maps package-level var objects to their ir globals.
	globals map[types.Object]*ir.Variable
	// external is the lazily created $external global standing for all
	// state outside the analyzed package (other packages' vars, I/O).
	external *ir.Variable
	// allGlobals lists every ir global in creation order (for the
	// worst-case escape effect).
	allGlobals []*ir.Variable
	// funcs maps package function/method objects to their procedures.
	funcs map[types.Object]*ir.Procedure
	// addrTaken records objects whose address is taken anywhere in the
	// package (computed in a single prepass over all files).
	addrTaken map[types.Object]bool
	// importBroken lists import paths that could not be resolved; a
	// selection into one degrades the using function.
	importBroken map[string]bool

	// shapes records Go-signature facts per procedure; litProcs the
	// procedure lowered for each closure literal; litRun whether a
	// may-run site was already charged for a literal.
	shapes   map[*ir.Procedure]funcShape
	litProcs map[*ast.FuncLit]*ir.Procedure
	litRun   map[*ast.FuncLit]bool

	notes   []Note
	noteIdx map[string]int // proc name → index in notes
	fileOf  map[*ir.Procedure]string
	tmpN    int // counter for fresh synthetic locals
}

func newLowerer(path string, fset *gotoken.FileSet, info *types.Info, tpkg *types.Package) *lowerer {
	return &lowerer{
		path:         path,
		fset:         fset,
		info:         info,
		tpkg:         tpkg,
		globals:      map[types.Object]*ir.Variable{},
		funcs:        map[types.Object]*ir.Procedure{},
		addrTaken:    map[types.Object]bool{},
		importBroken: map[string]bool{},
		shapes:       map[*ir.Procedure]funcShape{},
		litProcs:     map[*ast.FuncLit]*ir.Procedure{},
		litRun:       map[*ast.FuncLit]bool{},
		noteIdx:      map[string]int{},
		fileOf:       map[*ir.Procedure]string{},
	}
}

// pos converts a Go source position to the report position model.
func (lw *lowerer) pos(p gotoken.Pos) token.Pos {
	if !p.IsValid() {
		return token.Pos{}
	}
	pp := lw.fset.Position(p)
	return token.Pos{Line: pp.Line, Col: pp.Column}
}

// file returns the base file name declaring pos.
func (lw *lowerer) file(p gotoken.Pos) string {
	if !p.IsValid() {
		return ""
	}
	name := lw.fset.Position(p).Filename
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ext returns the $external global, creating it on first use.
func (lw *lowerer) ext() *ir.Variable {
	if lw.external == nil {
		lw.external = lw.b.Global("$external")
		lw.allGlobals = append(lw.allGlobals, lw.external)
	}
	return lw.external
}

// degrade records a degradation reason against proc.
func (lw *lowerer) degrade(proc *ir.Procedure, reason string) {
	i, ok := lw.noteIdx[proc.Name]
	if !ok {
		return // $main and synthetic procs carry no note
	}
	lw.notes[i].Confidence = Degraded
	lw.notes[i].Reasons = append(lw.notes[i].Reasons, reason)
}

// isRefType reports whether a value of type t can reach storage shared
// with the caller: pointers, slices, maps, channels, interfaces, type
// parameters, and composites containing one. Unknown types (type
// errors) classify as references, conservatively.
func isRefType(t types.Type) bool {
	return refType(t, 0)
}

func refType(t types.Type, depth int) bool {
	if t == nil || depth > 20 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Invalid || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Signature:
		// Func values carry no caller storage through the formal; the
		// effects of invoking an escaped closure are charged to its
		// creator via the may-run call site.
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refType(u.Elem(), depth+1)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refType(u.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		// *types.TypeParam and anything future: conservative.
		return true
	}
}

// lower drives the whole-package lowering: globals first, then one
// procedure per declared function/method, then bodies (so forward and
// mutual references resolve).
func (lw *lowerer) lower(files []*ast.File) (prog *ir.Program, notes []Note, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lowering panic: %v", r)
		}
	}()
	lw.b = ir.NewBuilder(lw.path)
	main := lw.b.Main()

	// Prepass: record every &lvalue root in the package, so locals are
	// known address-taken before any body is lowered.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == gotoken.AND {
				if id := rootIdent(u.X); id != nil {
					if obj := lw.objOf(id); obj != nil {
						lw.addrTaken[obj] = true
					}
				}
			}
			return true
		})
	}

	// Package-level vars become globals, in declaration order.
	type initSpec struct {
		names []types.Object
		exprs []ast.Expr
	}
	var inits []initSpec
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != gotoken.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				var objs []types.Object
				for _, name := range vs.Names {
					obj := lw.info.Defs[name]
					if name.Name == "_" || obj == nil {
						objs = append(objs, nil)
						continue
					}
					g := lw.b.Global(name.Name)
					g.Pos = lw.pos(name.Pos())
					lw.globals[obj] = g
					lw.allGlobals = append(lw.allGlobals, g)
					objs = append(objs, obj)
				}
				if len(vs.Values) > 0 {
					inits = append(inits, initSpec{names: objs, exprs: vs.Values})
				}
			}
		}
	}

	// Declare one procedure per function and method declaration.
	type bodyWork struct {
		decl *ast.FuncDecl
		proc *ir.Procedure
	}
	var work []bodyWork
	nameCount := map[string]int{}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				if ok { // body-less declaration (assembly, linkname)
					continue
				}
				continue
			}
			name := procName(fd)
			nameCount[name]++
			if nameCount[name] > 1 {
				name = fmt.Sprintf("%s#%d", name, nameCount[name])
			}
			proc := lw.b.Proc(name, nil)
			proc.Pos = lw.pos(fd.Pos())
			lw.fileOf[proc] = lw.file(fd.Pos())
			if obj := lw.info.Defs[fd.Name]; obj != nil {
				lw.funcs[obj] = proc
			}
			lw.noteIdx[name] = len(lw.notes)
			lw.notes = append(lw.notes, Note{Proc: name, File: lw.fileOf[proc], Confidence: High})
			work = append(work, bodyWork{decl: fd, proc: proc})
		}
	}

	// Declare every signature, then lower bodies in declaration order
	// (forward and mutual calls need final arities).
	states := make([]*procState, len(work))
	for i, w := range work {
		states[i] = lw.newProcState(w.proc, nil)
		states[i].declareSignature(w.decl.Recv, w.decl.Type)
	}
	for i, w := range work {
		states[i].lowerBody(w.decl.Body)
	}

	// Package-variable initializers run in $main: the initialized
	// globals are modified, the read variables used, and calls inside
	// initializer expressions contribute their external effects.
	for _, is := range inits {
		for _, obj := range is.names {
			if g := lw.globals[obj]; g != nil {
				lw.b.Mod(main, g)
			}
		}
		for _, e := range is.exprs {
			lw.initEffects(main, e)
		}
	}

	sortNotes(lw.notes)
	prog, err = lw.b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return prog, lw.notes, nil
}

// initEffects conservatively charges a package-variable initializer
// expression to $main: every referenced global is used, and any call
// is treated as external (initializers run before analysis scope).
func (lw *lowerer) initEffects(main *ir.Procedure, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if g := lw.globals[lw.objOf(x)]; g != nil {
				lw.b.Use(main, g)
			}
		case *ast.CallExpr:
			if !lw.isTypeConv(x) && builtinName(lw, x) == "" {
				lw.b.Mod(main, lw.ext())
				lw.b.Use(main, lw.ext())
			}
		case *ast.FuncLit:
			return false // too dynamic for init modeling; $external covers it
		}
		return true
	})
}

// procName names a function declaration: "F" for functions,
// "T.M" for methods (pointer receivers unwrap to the base type).
func procName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return "?." + fd.Name.Name
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func (lw *lowerer) objOf(id *ast.Ident) types.Object {
	if obj := lw.info.Uses[id]; obj != nil {
		return obj
	}
	return lw.info.Defs[id]
}

// rootIdent returns the base identifier of an lvalue path: the x of
// x, x.f, x[i], *x, and parenthesized forms; nil when the path is
// rooted in a call, literal, or other non-variable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isTypeConv reports whether a call expression is actually a type
// conversion (T(x)).
func (lw *lowerer) isTypeConv(call *ast.CallExpr) bool {
	if tv, ok := lw.info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(lw *lowerer, call *ast.CallExpr) string {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
			continue
		}
		break
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := lw.objOf(id); obj != nil {
		if _, ok := obj.(*types.Builtin); ok {
			return id.Name
		}
		return ""
	}
	// Unresolved (type errors): recognize by name so fuzzing inputs
	// with missing info still lower the common builtins sanely.
	switch id.Name {
	case "append", "len", "cap", "copy", "delete", "clear", "make", "new",
		"panic", "print", "println", "recover", "min", "max", "complex",
		"real", "imag", "close":
		return id.Name
	}
	return ""
}
