package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"sideeffect/internal/ir"
	"sideeffect/internal/lang/token"
)

// lowerUnit is one package's contribution to a lowering. Single-package
// mode lowers exactly one unit; module mode lowers every module-local
// package as a unit of one shared program, in import order.
type lowerUnit struct {
	// label is the module-relative package directory ("" in
	// single-package mode); it prefixes procedure and global names and
	// tags the unit's confidence notes.
	label string
	tpkg  *types.Package
	files []*ast.File
}

// prefix is the qualifier prepended to the unit's procedure and
// global names.
func (u *lowerUnit) prefix() string {
	if u.label == "" {
		return ""
	}
	return u.label + "."
}

// lowerer lowers one or more type-checked Go packages onto an
// ir.Program.
type lowerer struct {
	path string
	fset *gotoken.FileSet
	info *types.Info
	tpkg *types.Package

	// module is true for whole-module lowerings: cross-package calls
	// resolve through the shared funcs/globals maps and interface
	// calls devirtualize against the module's named types.
	module bool
	// fileRoot, when set, makes file() return module-relative paths
	// instead of base names.
	fileRoot string
	// analyzed holds every type-checker package being lowered into
	// this program; a variable belonging to none of them is external
	// state.
	analyzed map[*types.Package]bool
	// curLabel is the label of the unit whose bodies are being
	// lowered (tags closure notes created on the way).
	curLabel string

	b *ir.Builder

	// globals maps package-level var objects to their ir globals.
	globals map[types.Object]*ir.Variable
	// external is the lazily created $external global standing for all
	// state outside the analyzed packages (other packages' vars, I/O).
	external *ir.Variable
	// allGlobals lists every ir global in creation order (for the
	// worst-case escape effect).
	allGlobals []*ir.Variable
	// funcs maps package function/method objects to their procedures.
	funcs map[types.Object]*ir.Procedure
	// addrTaken records objects whose address is taken anywhere in the
	// program (computed in a single prepass over all files).
	addrTaken map[types.Object]bool
	// importBroken lists import paths that could not be resolved; a
	// selection into one degrades the using function.
	importBroken map[string]bool

	// shapes records Go-signature facts per procedure; litProcs the
	// procedure lowered for each closure literal; litRun whether a
	// may-run site was already charged for a literal.
	shapes   map[*ir.Procedure]funcShape
	litProcs map[*ast.FuncLit]*ir.Procedure
	litRun   map[*ast.FuncLit]bool

	// namedTypes lists the module's named (non-interface, non-generic)
	// types in deterministic order, the candidate set for interface
	// devirtualization; devirtMemo caches per (interface, method)
	// resolutions; devirt counts devirtualized call sites.
	namedTypes []*types.Named
	devirtMemo map[string][]*ir.Procedure
	devirt     int

	notes   []Note
	noteIdx map[string]int // proc name → index in notes
	fileOf  map[*ir.Procedure]string
	tmpN    int // counter for fresh synthetic locals
}

func newLowerer(path string, fset *gotoken.FileSet, info *types.Info, tpkg *types.Package) *lowerer {
	return &lowerer{
		path:         path,
		fset:         fset,
		info:         info,
		tpkg:         tpkg,
		globals:      map[types.Object]*ir.Variable{},
		funcs:        map[types.Object]*ir.Procedure{},
		addrTaken:    map[types.Object]bool{},
		importBroken: map[string]bool{},
		shapes:       map[*ir.Procedure]funcShape{},
		litProcs:     map[*ast.FuncLit]*ir.Procedure{},
		litRun:       map[*ast.FuncLit]bool{},
		devirtMemo:   map[string][]*ir.Procedure{},
		noteIdx:      map[string]int{},
		fileOf:       map[*ir.Procedure]string{},
	}
}

// pos converts a Go source position to the report position model.
func (lw *lowerer) pos(p gotoken.Pos) token.Pos {
	if !p.IsValid() {
		return token.Pos{}
	}
	pp := lw.fset.Position(p)
	return token.Pos{Line: pp.Line, Col: pp.Column}
}

// file returns the base file name declaring pos (the module-relative
// path when fileRoot is set).
func (lw *lowerer) file(p gotoken.Pos) string {
	if !p.IsValid() {
		return ""
	}
	name := lw.fset.Position(p).Filename
	if lw.fileRoot != "" {
		if rel, err := filepath.Rel(lw.fileRoot, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// ext returns the $external global, creating it on first use.
func (lw *lowerer) ext() *ir.Variable {
	if lw.external == nil {
		lw.external = lw.b.Global("$external")
		lw.allGlobals = append(lw.allGlobals, lw.external)
	}
	return lw.external
}

// mod records that proc modifies all of v. A ranked (struct-span)
// variable additionally records a whole-span star access, so the
// regular-section layer never claims a narrower effect than the
// variable-level fact: the parallelism verdicts trust sections alone
// for ranked variables.
func (lw *lowerer) mod(proc *ir.Procedure, v *ir.Variable) {
	if v.Rank() > 0 {
		lw.b.Access(proc, v, make([]ir.Sub, v.Rank()), true, token.Pos{})
		return
	}
	lw.b.Mod(proc, v)
}

// use is the read-side analog of mod.
func (lw *lowerer) use(proc *ir.Procedure, v *ir.Variable) {
	if v.Rank() > 0 {
		lw.b.Access(proc, v, make([]ir.Sub, v.Rank()), false, token.Pos{})
		return
	}
	lw.b.Use(proc, v)
}

// fieldDims returns the abstract shape of a variable of type t: a
// struct (or pointer-to-struct) variable becomes a rank-1 "field
// array" with one abstract location per field, so a write through p.F
// lowers to a constant-subscript access that the Section-6 regular
// sections refine and translate interprocedurally. Everything else is
// a scalar (nil dims).
func fieldDims(t types.Type) []int {
	if t == nil {
		return nil
	}
	u := t.Underlying()
	if p, ok := u.(*types.Pointer); ok {
		if p.Elem() == nil {
			return nil
		}
		u = p.Elem().Underlying()
	}
	s, ok := u.(*types.Struct)
	if !ok || s.NumFields() == 0 {
		return nil
	}
	return []int{s.NumFields()}
}

// degrade records a degradation reason against proc.
func (lw *lowerer) degrade(proc *ir.Procedure, reason string) {
	i, ok := lw.noteIdx[proc.Name]
	if !ok {
		return // $main and synthetic procs carry no note
	}
	lw.notes[i].Confidence = Degraded
	lw.notes[i].Reasons = append(lw.notes[i].Reasons, reason)
}

// isRefType reports whether a value of type t can reach storage shared
// with the caller: pointers, slices, maps, channels, interfaces, type
// parameters, and composites containing one. Unknown types (type
// errors) classify as references, conservatively.
func isRefType(t types.Type) bool {
	return refType(t, 0)
}

func refType(t types.Type, depth int) bool {
	if t == nil || depth > 20 {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() == types.Invalid || u.Kind() == types.UnsafePointer
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface:
		return true
	case *types.Signature:
		// Func values carry no caller storage through the formal; the
		// effects of invoking an escaped closure are charged to its
		// creator via the may-run call site.
		return false
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refType(u.Field(i).Type(), depth+1) {
				return true
			}
		}
		return false
	case *types.Array:
		return refType(u.Elem(), depth+1)
	case *types.Tuple:
		for i := 0; i < u.Len(); i++ {
			if refType(u.At(i).Type(), depth+1) {
				return true
			}
		}
		return false
	default:
		// *types.TypeParam and anything future: conservative.
		return true
	}
}

// lower drives a single-package lowering.
func (lw *lowerer) lower(files []*ast.File) (*ir.Program, []Note, error) {
	return lw.lowerUnits([]*lowerUnit{{tpkg: lw.tpkg, files: files}})
}

// lowerUnits drives the lowering of one or more packages into one
// shared program: globals of every unit first, then one procedure per
// declared function/method across all units, then every signature,
// then every body (so forward, mutual, and cross-package references
// resolve to real procedures).
func (lw *lowerer) lowerUnits(units []*lowerUnit) (prog *ir.Program, notes []Note, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("lowering panic: %v", r)
		}
	}()
	lw.b = ir.NewBuilder(lw.path)
	main := lw.b.Main()
	lw.analyzed = map[*types.Package]bool{}
	for _, u := range units {
		if u.tpkg != nil {
			lw.analyzed[u.tpkg] = true
		}
	}
	if lw.module {
		lw.collectNamedTypes(units)
	}

	// Prepass: record every &lvalue root in every package, so locals
	// are known address-taken before any body is lowered.
	for _, u := range units {
		for _, f := range u.files {
			ast.Inspect(f, func(n ast.Node) bool {
				if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == gotoken.AND {
					if id := rootIdent(ue.X); id != nil {
						if obj := lw.objOf(id); obj != nil {
							lw.addrTaken[obj] = true
						}
					}
				}
				return true
			})
		}
	}

	// Package-level vars become globals, in declaration order.
	type initSpec struct {
		names []types.Object
		exprs []ast.Expr
	}
	var inits []initSpec
	for _, u := range units {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != gotoken.VAR {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					var objs []types.Object
					for _, name := range vs.Names {
						obj := lw.info.Defs[name]
						if name.Name == "_" || obj == nil {
							objs = append(objs, nil)
							continue
						}
						g := lw.b.Global(u.prefix()+name.Name, fieldDims(obj.Type())...)
						g.Pos = lw.pos(name.Pos())
						lw.globals[obj] = g
						lw.allGlobals = append(lw.allGlobals, g)
						objs = append(objs, obj)
					}
					if len(vs.Values) > 0 {
						inits = append(inits, initSpec{names: objs, exprs: vs.Values})
					}
				}
			}
		}
	}

	// Declare one procedure per function and method declaration.
	type bodyWork struct {
		decl  *ast.FuncDecl
		proc  *ir.Procedure
		label string
	}
	var work []bodyWork
	nameCount := map[string]int{}
	for _, u := range units {
		for _, f := range u.files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					// Body-less declarations (assembly, linkname) and
					// non-function decls carry no effects of their own.
					continue
				}
				name := u.prefix() + procName(fd)
				nameCount[name]++
				if nameCount[name] > 1 {
					name = fmt.Sprintf("%s#%d", name, nameCount[name])
				}
				proc := lw.b.Proc(name, nil)
				proc.Pos = lw.pos(fd.Pos())
				lw.fileOf[proc] = lw.file(fd.Pos())
				if obj := lw.info.Defs[fd.Name]; obj != nil {
					lw.funcs[obj] = proc
				}
				lw.noteIdx[name] = len(lw.notes)
				lw.notes = append(lw.notes, Note{Proc: name, Pkg: u.label, File: lw.fileOf[proc], Confidence: High})
				work = append(work, bodyWork{decl: fd, proc: proc, label: u.label})
			}
		}
	}

	// Declare every signature, then lower bodies in declaration order
	// (forward, mutual, and cross-package calls need final arities).
	states := make([]*procState, len(work))
	for i, w := range work {
		states[i] = lw.newProcState(w.proc, nil)
		states[i].declareSignature(w.decl.Recv, w.decl.Type)
	}
	for i, w := range work {
		lw.curLabel = w.label
		states[i].lowerBody(w.decl.Body)
	}
	lw.curLabel = ""

	// Package-variable initializers run in $main: the initialized
	// globals are modified, the read variables used, and calls inside
	// initializer expressions contribute their external effects. Units
	// are processed in import order, matching Go's initialization
	// order across packages.
	for _, is := range inits {
		for _, obj := range is.names {
			if g := lw.globals[obj]; g != nil {
				lw.mod(main, g)
			}
		}
		for _, e := range is.exprs {
			lw.initEffects(main, e)
		}
	}

	sortNotes(lw.notes)
	prog, err = lw.b.Finish()
	if err != nil {
		return nil, nil, err
	}
	return prog, lw.notes, nil
}

// collectNamedTypes gathers the module's named, non-interface,
// non-generic types in deterministic order — the closed candidate set
// interface devirtualization enumerates.
func (lw *lowerer) collectNamedTypes(units []*lowerUnit) {
	var keys []string
	byKey := map[string]*types.Named{}
	for _, u := range units {
		if u.tpkg == nil {
			continue
		}
		scope := u.tpkg.Scope()
		for _, nm := range scope.Names() {
			tn, ok := scope.Lookup(nm).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || named.TypeParams().Len() > 0 {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			key := u.tpkg.Path() + "." + nm
			if _, dup := byKey[key]; !dup {
				byKey[key] = named
				keys = append(keys, key)
			}
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		lw.namedTypes = append(lw.namedTypes, byKey[k])
	}
}

// devirtTargets resolves an interface method call to the procedures of
// every module-local implementing type. closed is false — meaning the
// call must degrade — when devirtualization is off (single-package
// mode), when the interface type is defined outside the module (its
// implementations are not enumerable here), when no module type
// implements it, or when some implementation's method is not a lowered
// procedure (an embedded foreign method). The closed-world assumption
// — interface values hold module-defined types — is a documented limit
// of module mode.
func (lw *lowerer) devirtTargets(selinfo *types.Selection) (procs []*ir.Procedure, closed bool) {
	if !lw.module {
		return nil, false
	}
	recv := selinfo.Recv()
	if recv == nil {
		return nil, false
	}
	if _, isTP := recv.(*types.TypeParam); isTP {
		return nil, false // constraint dispatch: the witness type is the caller's
	}
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return nil, false
	}
	if named, ok := recv.(*types.Named); ok {
		pkg := named.Obj().Pkg()
		if pkg == nil || !lw.analyzed[pkg] {
			return nil, false // universe (error) or foreign interface
		}
	}
	m, ok := selinfo.Obj().(*types.Func)
	if !ok {
		return nil, false
	}
	key := types.TypeString(recv, nil) + "\x00" + m.Name()
	if got, hit := lw.devirtMemo[key]; hit {
		return got, got != nil
	}
	memo := func(ps []*ir.Procedure) ([]*ir.Procedure, bool) {
		lw.devirtMemo[key] = ps
		return ps, ps != nil
	}
	for _, named := range lw.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		msel := types.NewMethodSet(ptr).Lookup(m.Pkg(), m.Name())
		if msel == nil {
			return memo(nil)
		}
		proc, known := lw.methodProc(msel.Obj())
		if !known {
			return memo(nil)
		}
		procs = append(procs, proc)
	}
	if len(procs) == 0 {
		return memo(nil)
	}
	return memo(procs)
}

// methodProc resolves a function or method object to its lowered
// procedure, unwrapping generic instantiations to their origin.
func (lw *lowerer) methodProc(obj types.Object) (*ir.Procedure, bool) {
	if p, ok := lw.funcs[obj]; ok {
		return p, true
	}
	if f, ok := obj.(*types.Func); ok {
		if p, ok := lw.funcs[f.Origin()]; ok {
			return p, true
		}
	}
	return nil, false
}

// initEffects conservatively charges a package-variable initializer
// expression to $main: every referenced global is used, and any call
// is treated as external (initializers run before analysis scope).
func (lw *lowerer) initEffects(main *ir.Procedure, e ast.Expr) {
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			if g := lw.globals[lw.objOf(x)]; g != nil {
				lw.use(main, g)
			}
		case *ast.CallExpr:
			if !lw.isTypeConv(x) && builtinName(lw, x) == "" {
				lw.b.Mod(main, lw.ext())
				lw.b.Use(main, lw.ext())
			}
		case *ast.FuncLit:
			return false // too dynamic for init modeling; $external covers it
		}
		return true
	})
}

// procName names a function declaration: "F" for functions,
// "T.M" for methods (pointer receivers unwrap to the base type).
func procName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = x.X
		case *ast.IndexListExpr:
			t = x.X
		case *ast.Ident:
			return x.Name + "." + fd.Name.Name
		default:
			return "?." + fd.Name.Name
		}
	}
}

// objOf resolves an identifier to its object (definition or use).
func (lw *lowerer) objOf(id *ast.Ident) types.Object {
	if obj := lw.info.Uses[id]; obj != nil {
		return obj
	}
	return lw.info.Defs[id]
}

// rootIdent returns the base identifier of an lvalue path: the x of
// x, x.f, x[i], *x, and parenthesized forms; nil when the path is
// rooted in a call, literal, or other non-variable expression.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isTypeConv reports whether a call expression is actually a type
// conversion (T(x)).
func (lw *lowerer) isTypeConv(call *ast.CallExpr) bool {
	if tv, ok := lw.info.Types[call.Fun]; ok && tv.IsType() {
		return true
	}
	return false
}

// builtinName returns the name of the builtin a call invokes, or "".
func builtinName(lw *lowerer, call *ast.CallExpr) string {
	fun := call.Fun
	for {
		if p, ok := fun.(*ast.ParenExpr); ok {
			fun = p.X
			continue
		}
		break
	}
	id, ok := fun.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj := lw.objOf(id); obj != nil {
		if _, ok := obj.(*types.Builtin); ok {
			return id.Name
		}
		return ""
	}
	// Unresolved (type errors): recognize by name so fuzzing inputs
	// with missing info still lower the common builtins sanely.
	switch id.Name {
	case "append", "len", "cap", "copy", "delete", "clear", "make", "new",
		"panic", "print", "println", "recover", "min", "max", "complex",
		"real", "imag", "close":
		return id.Name
	}
	return ""
}
