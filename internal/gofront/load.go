package gofront

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// sourceFile is one named Go source text.
type sourceFile struct {
	name string // display / base name
	src  string
}

// Load expands the given package patterns ("./...", a directory, or a
// single .go file), loads each matched package, and lowers it. The
// result is sorted by display path and deterministic for a fixed file
// system state. A pattern matching no Go packages is an error; a
// package that fails to *parse* is an error; type errors are tolerated
// and degrade confidence instead.
func Load(patterns []string) ([]*Package, error) {
	dirs, singles, err := Expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := LoadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	for _, file := range singles {
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		p, err := analyzeFiles(file, filepath.Dir(file), []sourceFile{{name: filepath.Base(file), src: string(b)}})
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	if len(pkgs) == 0 {
		return nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// Expand resolves package patterns to package directories and
// single-file targets. "dir/..." walks dir recursively; a directory
// matches itself when it holds non-test .go files; a path ending in
// ".go" is a single-file package. Walks skip testdata, hidden, and
// underscore-prefixed directories, mirroring the go tool.
func Expand(patterns []string) (dirs, singles []string, err error) {
	seen := map[string]bool{}
	addDir := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case strings.HasSuffix(pat, ".go"):
			if _, err := os.Stat(pat); err != nil {
				return nil, nil, fmt.Errorf("gofront: %w", err)
			}
			singles = append(singles, pat)
		case strings.HasSuffix(pat, "..."):
			root := strings.TrimSuffix(pat, "...")
			root = strings.TrimSuffix(root, "/")
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				base := filepath.Base(path)
				if path != root && (base == "testdata" || strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					addDir(path)
				}
				return nil
			})
			if err != nil {
				return nil, nil, fmt.Errorf("gofront: %w", err)
			}
		default:
			fi, err := os.Stat(pat)
			if err != nil {
				return nil, nil, fmt.Errorf("gofront: %w", err)
			}
			if !fi.IsDir() {
				return nil, nil, fmt.Errorf("gofront: %s is not a directory, a .go file, or a ... pattern", pat)
			}
			if !hasGoFiles(pat) {
				return nil, nil, fmt.Errorf("gofront: no non-test .go files in %s", pat)
			}
			addDir(pat)
		}
	}
	sort.Strings(dirs)
	sort.Strings(singles)
	return dirs, singles, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if isSourceName(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceName reports whether name is an analyzable Go source file:
// .go, not a test file, not generated-looking hidden/underscore names.
func isSourceName(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// LoadDir loads and lowers the package in one directory.
func LoadDir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("gofront: %w", err)
	}
	var files []sourceFile
	for _, e := range ents {
		if e.IsDir() || !isSourceName(e.Name()) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		files = append(files, sourceFile{name: e.Name(), src: string(b)})
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("gofront: no non-test .go files in %s", dir)
	}
	return analyzeFiles(dir, dir, files)
}

// AnalyzeSource lowers a single in-memory Go file as its own package.
// name is the display name used in reports and positions.
func AnalyzeSource(name, src string) (*Package, error) {
	return analyzeFiles(name, "", []sourceFile{{name: name, src: src}})
}

// Hash computes the content-addressed package identity: language tag
// and lowering version, then each (name, content) pair in slice order.
func Hash(files []sourceFile) string {
	h := sha256.New()
	fmt.Fprintf(h, "lang=go\x00v%d\x00", LoweringVersion)
	for _, f := range files {
		fmt.Fprintf(h, "%s\x00%d\x00%s", f.name, len(f.src), f.src)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// analyzeFiles parses, type-checks (leniently), and lowers one
// package. Files must be sorted by name before hashing/lowering so two
// loads of the same directory are byte-identical.
func analyzeFiles(displayPath, dir string, files []sourceFile) (*Package, error) {
	sort.Slice(files, func(i, j int) bool { return files[i].name < files[j].name })

	fset := token.NewFileSet()
	var asts []*ast.File
	var parseErrs []string
	for _, f := range files {
		af, err := parser.ParseFile(fset, f.name, f.src, parser.SkipObjectResolution)
		if err != nil {
			parseErrs = append(parseErrs, err.Error())
			continue
		}
		asts = append(asts, af)
	}
	if len(asts) == 0 {
		return nil, fmt.Errorf("gofront: %s: %s", displayPath, strings.Join(parseErrs, "; "))
	}
	// Mixed package clauses in one directory (package x + package
	// x_test leftovers, or main + lib): keep the majority clause so
	// the type checker sees one package.
	asts = majorityPackage(asts)

	pkgName := asts[0].Name.Name
	typeErrs := 0
	imp := newLenientImporter(fset, dir)
	conf := types.Config{
		Importer:         imp,
		FakeImportC:      true,
		IgnoreFuncBodies: false,
		Error:            func(error) { typeErrs++ },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	// Check never fails fatally here: the Error hook swallows
	// diagnostics and the lowering degrades around missing info.
	tpkg, _ := conf.Check(pkgName, fset, asts, info)

	low := newLowerer(displayPath, fset, info, tpkg)
	low.importBroken = imp.failed
	prog, notes, err := low.lower(asts)
	if err != nil {
		return nil, fmt.Errorf("gofront: %s: %w", displayPath, err)
	}
	names := make([]string, len(files))
	for i, f := range files {
		names[i] = f.name
	}
	return &Package{
		Name:       pkgName,
		Dir:        dir,
		Path:       displayPath,
		Files:      names,
		Hash:       Hash(files),
		Prog:       prog,
		Notes:      notes,
		TypeErrors: typeErrs + len(parseErrs),
	}, nil
}

// majorityPackage keeps the files of the most common package clause
// (ties break to the lexically smaller name for determinism).
func majorityPackage(asts []*ast.File) []*ast.File {
	count := map[string]int{}
	for _, f := range asts {
		count[f.Name.Name]++
	}
	best := ""
	for name, n := range count {
		if best == "" || n > count[best] || n == count[best] && name < best {
			best = name
		}
	}
	var out []*ast.File
	for _, f := range asts {
		if f.Name.Name == best {
			out = append(out, f)
		}
	}
	return out
}

// lenientImporter resolves imports without failing the load: standard
// library packages come from the compiler's source importer,
// module-local packages are type-checked from source on demand, and
// anything unresolvable becomes an empty, incomplete package whose
// members the lowering treats as unknown (degrading confidence).
type lenientImporter struct {
	fset    *token.FileSet
	dir     string // directory of the package being loaded ("" = none)
	std     types.ImporterFrom
	modRoot string // module root directory ("" = none found)
	modPath string // module path from go.mod
	memo    map[string]*types.Package
	// failed records import paths that fell back to an incomplete
	// package, sorted on read.
	failed map[string]bool
}

func newLenientImporter(fset *token.FileSet, dir string) *lenientImporter {
	li := &lenientImporter{
		fset:   fset,
		dir:    dir,
		memo:   map[string]*types.Package{},
		failed: map[string]bool{},
	}
	if src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom); ok {
		li.std = src
	}
	li.modRoot, li.modPath = findModule(dir)
	return li
}

// findModule walks up from dir to the nearest go.mod and returns its
// directory and module path.
func findModule(dir string) (root, path string) {
	if dir == "" {
		return "", ""
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", ""
	}
	for d := abs; ; {
		b, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(b), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.Trim(strings.TrimSpace(rest), `"`)
				}
			}
			return d, ""
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", ""
		}
		d = parent
	}
}

func (li *lenientImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.dir, 0)
}

func (li *lenientImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := li.memo[path]; ok {
		return p, nil
	}
	if p := li.resolve(path, srcDir); p != nil {
		li.memo[path] = p
		return p, nil
	}
	// Incomplete stand-in: selections through it fail to type-check,
	// which the lowering maps to the unknown-call degradation.
	li.failed[path] = true
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	p := types.NewPackage(path, name)
	li.memo[path] = p
	return p, nil
}

func (li *lenientImporter) resolve(path, srcDir string) *types.Package {
	// Module-local import: type-check the subdirectory from source
	// with this same importer (Go imports are acyclic).
	if li.modPath != "" && (path == li.modPath || strings.HasPrefix(path, li.modPath+"/")) {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, li.modPath), "/")
		dir := filepath.Join(li.modRoot, filepath.FromSlash(sub))
		return li.checkDir(path, dir)
	}
	if li.std == nil {
		return nil
	}
	p, err := li.std.ImportFrom(path, srcDir, 0)
	if err != nil || p == nil {
		return nil
	}
	return p
}

// checkDir type-checks a module-local dependency just enough to hand
// back its exported type information.
func (li *lenientImporter) checkDir(path, dir string) *types.Package {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var asts []*ast.File
	names := []string{}
	for _, e := range ents {
		if e.IsDir() || !isSourceName(e.Name()) {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	for _, name := range names {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		af, err := parser.ParseFile(li.fset, filepath.Join(dir, name), string(b), parser.SkipObjectResolution)
		if err != nil {
			continue
		}
		asts = append(asts, af)
	}
	if len(asts) == 0 {
		return nil
	}
	conf := types.Config{Importer: li, FakeImportC: true, Error: func(error) {}}
	pkg, _ := conf.Check(path, li.fset, asts, nil)
	if pkg == nil {
		return nil
	}
	pkg.MarkComplete()
	return pkg
}
