package gofront

import (
	"os"
	"path/filepath"
	"testing"

	"sideeffect/internal/core"
)

// FuzzGoLower drives arbitrary source through the whole frontend. The
// contract under fuzzing: AnalyzeSource never panics (malformed input
// becomes an error), and whenever it succeeds the lowered program is
// well-formed enough for both solvers to complete.
func FuzzGoLower(f *testing.F) {
	// Seed with the fixture corpus — real accepted inputs mutate into
	// interesting near-valid ones. The walk picks up the whole-module
	// fixtures under mod/ too: individually they are still valid
	// sources whose cross-module imports exercise the degrade path.
	root := filepath.Join("..", "..", "testdata", "gofront")
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == "golden" {
				return filepath.SkipDir
			}
			return nil
		}
		if filepath.Ext(p) != ".go" {
			return nil
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		f.Add(string(b))
		return nil
	})
	if err != nil {
		f.Fatal(err)
	}
	// Constructs the corpus does not reach: unsafe, cgo, generics,
	// channels and select, goto/labels, interfaces, defer/recover,
	// anonymous structs, shadowing, and syntactically broken input —
	// plus interface-heavy and struct-field shapes aimed at the
	// devirtualization and field-sensitivity code paths.
	for _, seed := range []string{
		"package p\nimport \"unsafe\"\nfunc F(p unsafe.Pointer) uintptr { return uintptr(p) }\n",
		"package p\nimport \"C\"\nfunc F() { C.puts(nil) }\n",
		"package p\nfunc Map[K comparable, V any](m map[K]V, k K, v V) { m[k] = v }\n",
		"package p\nfunc F(ch chan int) { select { case ch <- 1: case x := <-ch: _ = x } }\n",
		"package p\nfunc F(n int) int {\nloop:\n\tfor i := 0; i < n; i++ { if i > 3 { break loop }; goto loop }\n\treturn n\n}\n",
		"package p\ntype I interface{ M(*int) }\nfunc F(i I, p *int) { i.M(p) }\n",
		"package p\nfunc F(p *int) { defer func() { recover() }(); *p = 1; panic(p) }\n",
		"package p\nfunc F() { x := struct{ a []int }{}; x.a = append(x.a, 1) }\n",
		"package p\nvar x int\nfunc F() { x := 1; { x := 2; _ = x }; _ = x }\n",
		"package p\nfunc F(",
		"package p\nfunc F(s ...[]*map[string]chan int) {}\n",
		"package p\ntype I interface{ M() }\ntype A struct{ n int }\nfunc (a *A) M() { a.n++ }\ntype B struct{}\nfunc (B) M() {}\nfunc F(i I) { i.M() }\nfunc G() { F(&A{}); F(B{}) }\n",
		"package p\ntype I interface{ M() }\ntype J interface{ I; N() }\ntype T struct{}\nfunc (T) M() {}\nfunc (T) N() {}\nfunc F(j J) { j.M(); j.N() }\n",
		"package p\ntype E interface{}\nfunc F(e E) E { return e }\n",
		"package p\ntype S struct{ A, B int }\nfunc F(s *S) { s.A = 1 }\nfunc G(s S) int { return s.B }\nvar Z S\nfunc H() { Z.A = Z.B }\n",
		"package p\ntype In struct{ X int }\ntype Out struct{ In; Y int }\nfunc F(o *Out) { o.X = 1; o.Y = 2 }\n",
		"package p\ntype S struct{ A [4]int }\nfunc F(s *S, i int) { s.A[i] = 1 }\n",
		"package p\ntype S struct{ P *S }\nfunc F(s *S) { s.P.P = s }\n",
		"package p\ntype T int\nfunc (t *T) M() { *t++ }\nfunc F() { var t T; m := t.M; m() }\n",
		"\xff\xfe not source at all",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pkg, err := AnalyzeSource("fuzz.go", src)
		if err != nil {
			return // rejected inputs just need to be rejected cleanly
		}
		if pkg.Prog == nil {
			t.Fatal("nil program with nil error")
		}
		// The IR must be accepted end to end by both solver kinds.
		if res := core.Analyze(pkg.Prog, core.Mod, core.Options{}); res == nil {
			t.Fatal("MOD solver returned nil on accepted IR")
		}
		if res := core.Analyze(pkg.Prog, core.Use, core.Options{}); res == nil {
			t.Fatal("USE solver returned nil on accepted IR")
		}
	})
}
