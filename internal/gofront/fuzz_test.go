package gofront

import (
	"os"
	"path/filepath"
	"testing"

	"sideeffect/internal/core"
)

// FuzzGoLower drives arbitrary source through the whole frontend. The
// contract under fuzzing: AnalyzeSource never panics (malformed input
// becomes an error), and whenever it succeeds the lowered program is
// well-formed enough for both solvers to complete.
func FuzzGoLower(f *testing.F) {
	// Seed with the fixture corpus — real accepted inputs mutate into
	// interesting near-valid ones.
	root := filepath.Join("..", "..", "testdata", "gofront")
	entries, err := os.ReadDir(root)
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "golden" {
			continue
		}
		files, err := os.ReadDir(filepath.Join(root, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		for _, fe := range files {
			b, err := os.ReadFile(filepath.Join(root, e.Name(), fe.Name()))
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(b))
		}
	}
	// Constructs the corpus does not reach: unsafe, cgo, generics,
	// channels and select, goto/labels, interfaces, defer/recover,
	// anonymous structs, shadowing, and syntactically broken input.
	for _, seed := range []string{
		"package p\nimport \"unsafe\"\nfunc F(p unsafe.Pointer) uintptr { return uintptr(p) }\n",
		"package p\nimport \"C\"\nfunc F() { C.puts(nil) }\n",
		"package p\nfunc Map[K comparable, V any](m map[K]V, k K, v V) { m[k] = v }\n",
		"package p\nfunc F(ch chan int) { select { case ch <- 1: case x := <-ch: _ = x } }\n",
		"package p\nfunc F(n int) int {\nloop:\n\tfor i := 0; i < n; i++ { if i > 3 { break loop }; goto loop }\n\treturn n\n}\n",
		"package p\ntype I interface{ M(*int) }\nfunc F(i I, p *int) { i.M(p) }\n",
		"package p\nfunc F(p *int) { defer func() { recover() }(); *p = 1; panic(p) }\n",
		"package p\nfunc F() { x := struct{ a []int }{}; x.a = append(x.a, 1) }\n",
		"package p\nvar x int\nfunc F() { x := 1; { x := 2; _ = x }; _ = x }\n",
		"package p\nfunc F(",
		"package p\nfunc F(s ...[]*map[string]chan int) {}\n",
		"\xff\xfe not source at all",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pkg, err := AnalyzeSource("fuzz.go", src)
		if err != nil {
			return // rejected inputs just need to be rejected cleanly
		}
		if pkg.Prog == nil {
			t.Fatal("nil program with nil error")
		}
		// The IR must be accepted end to end by both solver kinds.
		if res := core.Analyze(pkg.Prog, core.Mod, core.Options{}); res == nil {
			t.Fatal("MOD solver returned nil on accepted IR")
		}
		if res := core.Analyze(pkg.Prog, core.Use, core.Options{}); res == nil {
			t.Fatal("USE solver returned nil on accepted IR")
		}
	})
}
