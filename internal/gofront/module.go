package gofront

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// modUnit is one package directory participating in a whole-module
// load, before lowering.
type modUnit struct {
	label   string // module-relative dir ("internal/core"; module base for the root)
	impPath string // import path (modPath + "/" + label)
	dir     string // absolute directory
	files   []sourceFile
	asts    []*ast.File
	imports []string // module-local import paths, sorted
	tpkg    *types.Package
}

// LoadModule loads a whole Go module as ONE shared program: it finds
// the go.mod above root, expands the patterns to seed packages, pulls
// in their module-local import closure, type-checks every package in
// topological (import) order against one shared file set and type
// info, and lowers them together. Cross-package calls resolve to real
// procedures, package-qualified variable references resolve to the
// callee package's globals, and interface calls whose interface is
// defined inside the module devirtualize to the closed set of
// module-local implementations. Patterns default to root/... when
// empty; single-file patterns are rejected in module mode.
func LoadModule(root string, patterns []string) (*Package, error) {
	modRoot, modPath := findModule(root)
	if modRoot == "" {
		return nil, fmt.Errorf("gofront: no go.mod found at or above %s", root)
	}
	if modPath == "" {
		return nil, fmt.Errorf("gofront: go.mod in %s has no module path", modRoot)
	}
	if len(patterns) == 0 {
		patterns = []string{filepath.Join(root, "...")}
	}
	dirs, singles, err := Expand(patterns)
	if err != nil {
		return nil, err
	}
	if len(singles) > 0 {
		return nil, fmt.Errorf("gofront: single-file patterns (%s) are not valid in module mode", singles[0])
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}

	// Seed units, then close over module-local imports (BFS; Go import
	// graphs are acyclic, broken inputs fall back below).
	units := map[string]*modUnit{} // by import path
	var queue []string
	add := func(impPath string) error {
		if _, ok := units[impPath]; ok {
			return nil
		}
		dir := dirOfImport(modRoot, modPath, impPath)
		u, err := readModUnit(modRoot, modPath, impPath, dir)
		if err != nil {
			return err
		}
		if u == nil {
			return nil // no sources: importer degrades it later
		}
		units[impPath] = u
		queue = append(queue, impPath)
		return nil
	}
	for _, dir := range dirs {
		impPath, err := importOfDir(modRoot, modPath, dir)
		if err != nil {
			return nil, err
		}
		if err := add(impPath); err != nil {
			return nil, err
		}
	}
	if len(units) == 0 {
		return nil, fmt.Errorf("gofront: no Go packages match %v", patterns)
	}
	for i := 0; i < len(queue); i++ {
		for _, imp := range units[queue[i]].imports {
			if err := add(imp); err != nil {
				return nil, err
			}
		}
	}

	order := topoOrder(units)

	// One shared file set, importer, and type info across the module:
	// checking in import order and pre-registering each result keeps
	// one *types.Package (hence one types.Object per declaration) per
	// package, which is what lets the lowering key its shared funcs and
	// globals maps on object identity.
	fset := token.NewFileSet()
	typeErrs := 0
	imp := newLenientImporter(fset, modRoot)
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(error) { typeErrs++ },
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var lowUnits []*lowerUnit
	var allFiles []sourceFile
	pkgLabels := make([]string, 0, len(order))
	for _, impPath := range order {
		u := units[impPath]
		for _, f := range u.files {
			af, err := parser.ParseFile(fset, filepath.Join(u.dir, f.name), f.src, parser.SkipObjectResolution)
			if err != nil {
				typeErrs++
				continue
			}
			u.asts = append(u.asts, af)
		}
		if len(u.asts) == 0 {
			continue
		}
		u.asts = majorityPackage(u.asts)
		tpkg, _ := conf.Check(impPath, fset, u.asts, info)
		if tpkg == nil {
			continue
		}
		tpkg.MarkComplete()
		imp.memo[impPath] = tpkg
		u.tpkg = tpkg
		lowUnits = append(lowUnits, &lowerUnit{label: u.label, tpkg: tpkg, files: u.asts})
		pkgLabels = append(pkgLabels, u.label)
		for _, f := range u.files {
			rel := u.label + "/" + f.name
			allFiles = append(allFiles, sourceFile{name: rel, src: f.src})
		}
	}
	if len(lowUnits) == 0 {
		return nil, fmt.Errorf("gofront: no package in %v type-checked", patterns)
	}

	display := filepath.ToSlash(filepath.Clean(root))
	low := newLowerer(display, fset, info, lowUnits[0].tpkg)
	low.module = true
	low.fileRoot = modRoot
	low.importBroken = imp.failed
	prog, notes, err := low.lowerUnits(lowUnits)
	if err != nil {
		return nil, fmt.Errorf("gofront: %s: %w", display, err)
	}
	names := make([]string, len(allFiles))
	for i, f := range allFiles {
		names[i] = f.name
	}
	return &Package{
		Name:          path.Base(modPath),
		Dir:           modRoot,
		Path:          display,
		Files:         names,
		Hash:          hashModule(modPath, allFiles),
		Prog:          prog,
		Notes:         notes,
		TypeErrors:    typeErrs,
		Module:        true,
		Packages:      pkgLabels,
		Devirtualized: low.devirt,
	}, nil
}

// importOfDir maps a package directory inside the module to its
// import path.
func importOfDir(modRoot, modPath, dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", fmt.Errorf("gofront: %w", err)
	}
	rel, err := filepath.Rel(modRoot, abs)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("gofront: package %s is outside module %s", dir, modRoot)
	}
	if rel == "." {
		return modPath, nil
	}
	return modPath + "/" + filepath.ToSlash(rel), nil
}

// dirOfImport maps a module-local import path back to its directory.
func dirOfImport(modRoot, modPath, impPath string) string {
	sub := strings.TrimPrefix(strings.TrimPrefix(impPath, modPath), "/")
	return filepath.Join(modRoot, filepath.FromSlash(sub))
}

// readModUnit reads one package directory's analyzable sources and
// scans their module-local imports. Returns nil (no error) when the
// directory has no sources — the lenient importer will degrade
// references to it instead.
func readModUnit(modRoot, modPath, impPath, dir string) (*modUnit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil
	}
	u := &modUnit{impPath: impPath, dir: dir}
	if impPath == modPath {
		u.label = path.Base(modPath)
	} else {
		u.label = strings.TrimPrefix(impPath, modPath+"/")
	}
	for _, e := range ents {
		if e.IsDir() || !isSourceName(e.Name()) {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("gofront: %w", err)
		}
		u.files = append(u.files, sourceFile{name: e.Name(), src: string(b)})
	}
	if len(u.files) == 0 {
		return nil, nil
	}
	sort.Slice(u.files, func(i, j int) bool { return u.files[i].name < u.files[j].name })
	seen := map[string]bool{}
	for _, f := range u.files {
		for _, ip := range scanImports(f) {
			if (ip == modPath || strings.HasPrefix(ip, modPath+"/")) && !seen[ip] {
				seen[ip] = true
				u.imports = append(u.imports, ip)
			}
		}
	}
	sort.Strings(u.imports)
	return u, nil
}

// scanImports parses just the import clause of one source file.
func scanImports(f sourceFile) []string {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, f.name, f.src, parser.ImportsOnly)
	if err != nil || af == nil {
		return nil
	}
	var out []string
	for _, im := range af.Imports {
		if im.Path != nil {
			out = append(out, strings.Trim(im.Path.Value, `"`))
		}
	}
	return out
}

// topoOrder returns the units' import paths dependency-first (Kahn's
// algorithm with a sorted ready set, so the order is deterministic).
// Go import graphs are acyclic; if broken sources form a cycle the
// remainder is appended in path order, which only costs precision.
func topoOrder(units map[string]*modUnit) []string {
	paths := make([]string, 0, len(units))
	indeg := map[string]int{}
	for p := range units {
		paths = append(paths, p)
		indeg[p] = 0
	}
	sort.Strings(paths)
	dependents := map[string][]string{} // dep → importers
	for _, p := range paths {
		for _, d := range units[p].imports {
			if _, ok := units[d]; ok && d != p {
				dependents[d] = append(dependents[d], p)
				indeg[p]++
			}
		}
	}
	var ready []string
	for _, p := range paths {
		if indeg[p] == 0 {
			ready = append(ready, p)
		}
	}
	var order []string
	for len(ready) > 0 {
		sort.Strings(ready)
		p := ready[0]
		ready = ready[1:]
		order = append(order, p)
		for _, q := range dependents[p] {
			indeg[q]--
			if indeg[q] == 0 {
				ready = append(ready, q)
			}
		}
	}
	if len(order) < len(paths) { // cycle in broken input
		in := map[string]bool{}
		for _, p := range order {
			in[p] = true
		}
		for _, p := range paths {
			if !in[p] {
				order = append(order, p)
			}
		}
	}
	return order
}

// hashModule is the content-addressed identity of a whole-module
// lowering: the module tag and lowering version, the module path, then
// every (module-relative name, content) pair in package order.
func hashModule(modPath string, files []sourceFile) string {
	h := sha256.New()
	fmt.Fprintf(h, "lang=go-module\x00v%d\x00%s\x00", LoweringVersion, modPath)
	for _, f := range files {
		fmt.Fprintf(h, "%s\x00%d\x00%s", f.name, len(f.src), f.src)
	}
	return hex.EncodeToString(h.Sum(nil))
}
