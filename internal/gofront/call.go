package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"
	"go/types"

	"sideeffect/internal/ir"
)

// call lowers one call expression: type conversions, builtins, direct
// calls to package functions/methods/closures, and the conservative
// unknown-call fallback for everything else.
func (ps *procState) call(x *ast.CallExpr) {
	lw := ps.lw
	if lw.isTypeConv(x) {
		for _, a := range x.Args {
			ps.expr(a)
		}
		return
	}
	if name := builtinName(lw, x); name != "" {
		ps.builtin(name, x)
		return
	}
	switch fun := unparen(x.Fun).(type) {
	case *ast.Ident:
		obj := lw.objOf(fun)
		if proc, ok := lw.funcs[obj]; ok {
			ps.directCall(proc, nil, nil, x)
			return
		}
		if fb := ps.callBinding(obj); fb != nil {
			ps.useVar(fun)
			if !fb.tainted {
				called := false
				for _, lit := range fb.lits {
					if proc := lw.litProcs[lit]; proc != nil {
						ps.directCall(proc, nil, nil, x)
						called = true
					}
				}
				for _, proc := range fb.procs {
					ps.directCall(proc, nil, nil, x)
					called = true
				}
				if called {
					return
				}
			}
			ps.unknownCall(x, nil, "dynamic call")
			return
		}
		if obj == nil {
			ps.unknownCall(x, nil, "unresolved call")
			return
		}
		// A func-typed parameter or other untracked func value.
		ps.useVar(fun)
		ps.unknownCall(x, nil, "dynamic call")
	case *ast.SelectorExpr:
		ps.selectorCall(fun, x)
	case *ast.FuncLit:
		proc := ps.closureProc(fun)
		ps.directCall(proc, nil, nil, x)
	case *ast.IndexExpr, *ast.IndexListExpr:
		// Generic instantiation F[T](...) — resolve the base.
		var bx ast.Expr
		if ie, ok := fun.(*ast.IndexExpr); ok {
			bx = ie.X
		} else {
			bx = fun.(*ast.IndexListExpr).X
		}
		if id, ok := unparen(bx).(*ast.Ident); ok {
			if proc, ok := lw.funcs[lw.objOf(id)]; ok {
				ps.directCall(proc, nil, nil, x)
				return
			}
		}
		ps.expr(bx)
		ps.unknownCall(x, nil, "dynamic call")
	default:
		ps.expr(x.Fun)
		ps.unknownCall(x, nil, "dynamic call")
	}
}

// callBinding finds the func-value binding for obj on the lexical
// chain.
func (ps *procState) callBinding(obj types.Object) *funcBinding {
	if obj == nil {
		return nil
	}
	for s := ps; s != nil; s = s.parent {
		if fb, ok := s.funcs[obj]; ok {
			return fb
		}
	}
	return nil
}

// selectorCall lowers pkg.F(...), x.M(...), and promoted-method calls.
func (ps *procState) selectorCall(sel *ast.SelectorExpr, x *ast.CallExpr) {
	lw := ps.lw
	if path := ps.pkgNameOf(sel.X); path != "" {
		// A qualified call into another analyzed package resolves to
		// the real procedure (module mode lowers the whole import
		// graph into one program).
		if proc, known := lw.methodProc(lw.objOf(sel.Sel)); known {
			ps.directCall(proc, nil, nil, x)
			return
		}
		ps.degradingPkg(path)
		ps.unknownCall(x, nil, fmt.Sprintf("calls unanalyzed %q", path))
		return
	}
	if selinfo, ok := lw.info.Selections[sel]; ok && selinfo.Kind() == types.MethodVal {
		if proc, known := lw.methodProc(selinfo.Obj()); known {
			ps.expr(sel.X)
			ps.directCall(proc, sel.X, nil, x)
			return
		}
		// Interface dispatch: in module mode, a closed set of
		// module-local implementations devirtualizes to one may-run
		// site per implementation.
		if impls, closed := lw.devirtTargets(selinfo); closed {
			ps.expr(sel.X)
			lw.devirt++
			for _, proc := range impls {
				ps.directCall(proc, sel.X, nil, x)
			}
			return
		}
		// An open interface, or a method of an embedded foreign type:
		// the receiver's storage is reachable by the callee.
		ps.expr(sel.X)
		ps.unknownCall(x, sel.X, ps.dynamicReason(selinfo))
		return
	}
	// Method expression, foreign field of func type, or missing info.
	ps.expr(sel.X)
	ps.unknownCall(x, nil, "dynamic call")
}

// dynamicReason names the degradation for an unresolved method call:
// module mode distinguishes open interface dispatch (the closed-world
// enumeration failed) from other dynamic calls.
func (ps *procState) dynamicReason(selinfo *types.Selection) string {
	if ps.lw.module && selinfo != nil && selinfo.Recv() != nil {
		if _, isTP := selinfo.Recv().(*types.TypeParam); !isTP {
			if iface, ok := selinfo.Recv().Underlying().(*types.Interface); ok && iface.NumMethods() > 0 {
				return "open interface dispatch"
			}
		}
	}
	return "dynamic call"
}

// builtin lowers the builtin functions with storage effects.
func (ps *procState) builtin(name string, x *ast.CallExpr) {
	for _, a := range x.Args {
		ps.expr(a)
	}
	switch name {
	case "copy", "delete", "clear", "close":
		if len(x.Args) > 0 {
			ps.hopEffect(x.Args[0], true)
		}
	case "print", "println", "panic":
		ps.lw.b.Mod(ps.proc, ps.lw.ext())
		ps.lw.b.Use(ps.proc, ps.lw.ext())
	}
	// append, len, cap, make, new, min, max, recover, real, imag,
	// complex: pure value producers; effects happen only where the
	// result is assigned.
}

// directCall creates a real call site to a package procedure. recv is
// the receiver expression for method calls; recvVar a pre-resolved
// receiver variable (bound method values).
func (ps *procState) directCall(callee *ir.Procedure, recv ast.Expr, recvVar *ir.Variable, x *ast.CallExpr) {
	lw := ps.lw
	shape := lw.shapes[callee]
	formals := callee.Formals
	var actuals []ir.Actual
	i := 0
	if shape.recv {
		if i >= len(formals) {
			ps.unknownCall(x, recv, "signature mismatch")
			return
		}
		switch {
		case recvVar != nil:
			av := ir.Actual{Mode: formals[0].Kind, Var: recvVar}
			if av.Mode == ir.FormalRef {
				av.Var = ps.refActual(formals[0], recvVar)
			}
			actuals = append(actuals, av)
		case recv != nil:
			actuals = append(actuals, ps.actual(formals[0], recv))
		default:
			// Function value of method type without a receiver in
			// hand — should not happen; degrade.
			ps.unknownCall(x, nil, "signature mismatch")
			return
		}
		i = 1
	}
	fixed := len(formals) - i
	if shape.variadic {
		fixed--
	}
	args := x.Args
	if fixed < 0 || len(args) < fixed || (!shape.variadic && len(args) != fixed) {
		// Arity surprises (type errors, single-call-result spreading
		// f(g()) where g is multi-valued): fall back.
		for _, a := range args {
			ps.expr(a)
		}
		ps.unknownCall(x, recv, "signature mismatch")
		return
	}
	for k := 0; k < fixed; k++ {
		actuals = append(actuals, ps.actual(formals[i+k], args[k]))
	}
	if shape.variadic {
		vf := formals[len(formals)-1]
		rest := args[fixed:]
		if x.Ellipsis.IsValid() && len(rest) == 1 {
			actuals = append(actuals, ps.actual(vf, rest[0]))
		} else {
			// Elements are packed into a fresh slice: the callee can
			// modify the pack (invisible) but reads every element.
			var uses []*ir.Variable
			for _, a := range rest {
				ps.expr(a)
				uses = append(uses, ps.usesIn(a)...)
			}
			av := ir.Actual{Mode: vf.Kind, Uses: uses}
			if vf.Kind == ir.FormalRef {
				av.Var = ps.freshFor("vararg", vf)
			}
			actuals = append(actuals, av)
		}
	}
	cs := lw.b.Call(ps.proc, callee, actuals, lw.pos(x.Lparen))
	ps.sites = append(ps.sites, cs)
}

// actual builds one actual-parameter binding. Reference formals need a
// variable the caller can see: the root of the argument path, or a
// fresh temporary when the argument is a literal/call result (storage
// nothing else can reach).
func (ps *procState) actual(formal *ir.Variable, arg ast.Expr) ir.Actual {
	ps.expr(arg)
	uses := ps.usesIn(arg)
	a := ir.Actual{Mode: formal.Kind, Uses: uses}
	obj := ps.rootRef(stripAddr(arg))
	var v *ir.Variable
	if obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			v = ps.lookup(obj)
			if v == nil && isExternalVar(ps.lw, obj) && formal.Kind == ir.FormalRef {
				// Passing an unanalyzed package's variable by
				// reference: the callee's writes land outside the
				// analyzed program.
				ps.lw.b.Mod(ps.proc, ps.lw.ext())
				ps.lw.b.Use(ps.proc, ps.lw.ext())
			}
		}
	}
	if formal.Kind == ir.FormalRef {
		v = ps.refActual(formal, v)
	}
	a.Var = v
	return a
}

// stripAddr unwraps a top-level &: the storage passed by &x is x.
func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == gotoken.AND {
		return u.X
	}
	return e
}

// usesIn collects the tracked variables read to evaluate e, in source
// order (closure literals evaluate to values; their bodies don't run
// here). Ranked variables record a whole-span use access so the
// section layer sees the read (call-site Uses bypass the wrappers).
func (ps *procState) usesIn(e ast.Expr) []*ir.Variable {
	var out []*ir.Variable
	seen := map[*ir.Variable]bool{}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v := ps.lookup(ps.lw.objOf(id)); v != nil && !seen[v] {
			seen[v] = true
			if v.Rank() > 0 {
				ps.lw.use(ps.proc, v)
			}
			out = append(out, v)
		}
		return true
	})
	return out
}

// unknownCall applies the conservative external-call effect: every
// reference argument's reachable storage is read and written, the
// out-of-package world ($external) is read and written, and the
// function's confidence note records why.
func (ps *procState) unknownCall(x *ast.CallExpr, recv ast.Expr, reason string) {
	lw := ps.lw
	if recv != nil {
		ps.refArgEffect(recv)
	}
	for _, a := range x.Args {
		ps.expr(a)
		ps.refArgEffect(a)
	}
	lw.b.Mod(ps.proc, lw.ext())
	lw.b.Use(ps.proc, lw.ext())
	lw.degrade(ps.proc, reason)
}

// refArgEffect marks a reference-typed argument's reachable storage as
// modified and used by an unknown callee.
func (ps *procState) refArgEffect(a ast.Expr) {
	t := ps.typeOf(a)
	isAddr := false
	if u, ok := unparen(a).(*ast.UnaryExpr); ok && u.Op == gotoken.AND {
		isAddr = true
	}
	if t != nil && !isRefType(t) && !isAddr {
		return
	}
	obj := ps.rootRef(stripAddr(a))
	if obj == nil {
		return // literal/fresh storage: unreachable elsewhere
	}
	if _, ok := obj.(*types.PkgName); ok {
		return // pkg.X handled via $external already
	}
	if _, ok := obj.(*types.Func); ok {
		return
	}
	vars, escape := ps.targets(obj)
	if escape {
		ps.escapeMod()
	}
	for _, v := range vars {
		ps.lw.mod(ps.proc, v)
		ps.lw.use(ps.proc, v)
	}
}

// closureProc lowers a closure literal to a procedure nested in the
// current one (idempotently).
func (ps *procState) closureProc(lit *ast.FuncLit) *ir.Procedure {
	lw := ps.lw
	if proc, ok := lw.litProcs[lit]; ok {
		return proc
	}
	ps.closN++
	name := fmt.Sprintf("%s$fn%d", ps.proc.Name, ps.closN)
	proc := lw.b.Proc(name, ps.proc)
	proc.Pos = lw.pos(lit.Pos())
	lw.litProcs[lit] = proc
	lw.fileOf[proc] = lw.file(lit.Pos())
	lw.noteIdx[name] = len(lw.notes)
	lw.notes = append(lw.notes, Note{Proc: name, Pkg: lw.curLabel, File: lw.fileOf[proc], Confidence: High})
	// The closure's procState chains to ps so captured variables and
	// their aliases resolve through the ir lexical nesting.
	cps := lw.newProcState(proc, ps)
	cps.declareSignature(nil, lit.Type)
	cps.lowerBody(lit.Body)
	return proc
}

// mayRun charges an escaping closure's effects to its creator with a
// conservative "may run" call site: fresh capture stand-ins feed its
// reference formals.
func (ps *procState) mayRun(lit *ast.FuncLit, proc *ir.Procedure) {
	lw := ps.lw
	if lw.litRun[lit] {
		return
	}
	lw.litRun[lit] = true
	var actuals []ir.Actual
	for _, f := range proc.Formals {
		a := ir.Actual{Mode: f.Kind}
		if f.Kind == ir.FormalRef {
			a.Var = ps.freshFor("cap", f)
		}
		actuals = append(actuals, a)
	}
	cs := lw.b.Call(ps.proc, proc, actuals, lw.pos(lit.Pos()))
	ps.sites = append(ps.sites, cs)
}
