package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"
	"go/types"

	"sideeffect/internal/ir"
)

// ---------------------------------------------------------------------
// Prepass (walk A): declare every function-scoped variable in source
// order and collect the flow-insensitive alias edges, before any
// effect is recorded — so the worst-case escape set is complete from
// the first statement. Closure literals are skipped; each closure runs
// its own prepass when lowered.
// ---------------------------------------------------------------------

func (ps *procState) prepass(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			ps.preAssign(x.Lhs, x.Rhs, x.Tok == gotoken.DEFINE)
		case *ast.ValueSpec:
			var lhs []ast.Expr
			for _, name := range x.Names {
				lhs = append(lhs, name)
			}
			ps.preAssign(lhs, x.Values, true)
		case *ast.RangeStmt:
			ps.preRange(x)
		case *ast.TypeSwitchStmt:
			ps.preTypeSwitch(x)
		}
		return true
	})
}

// preAssign declares defined locals and records alias/function-value
// edges for one (multi-)assignment.
func (ps *procState) preAssign(lhs, rhs []ast.Expr, define bool) {
	lw := ps.lw
	for _, l := range lhs {
		id, ok := l.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if define {
			if obj := lw.info.Defs[id]; obj != nil {
				ps.declareLocal(obj, id)
			}
		}
	}
	if len(lhs) == len(rhs) {
		for i := range lhs {
			ps.preEdge(lhs[i], rhs[i], false)
		}
		return
	}
	// Tuple form: x, y := f() / m[k] / <-ch / v.(T).
	if len(rhs) == 1 {
		for _, l := range lhs {
			ps.preEdge(l, rhs[0], true)
		}
	}
}

// preEdge records what lhs may come to point into after being
// assigned rhs. tuple marks the multi-value unpacking forms.
func (ps *procState) preEdge(lhs, rhs ast.Expr, tuple bool) {
	lw := ps.lw
	id, ok := lhs.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := lw.objOf(id)
	if obj == nil {
		return
	}
	if t := obj.Type(); t != nil {
		if _, isFunc := t.Underlying().(*types.Signature); isFunc {
			ps.preFuncBind(obj, rhs)
			return
		}
		if !isRefType(t) {
			return
		}
	}
	add := func(o types.Object) {
		ps.edges[obj] = append(ps.edges[obj], aliasEdge{obj: o})
	}
	rhs = unparen(rhs)
	switch r := rhs.(type) {
	case *ast.Ident:
		if ro := lw.objOf(r); ro != nil && ro != obj {
			if _, ok := ro.(*types.Var); ok {
				add(ro)
			}
		} else if ro == nil {
			add(nil)
		}
	case *ast.UnaryExpr:
		if r.Op == gotoken.AND {
			if _, fresh := unparen(r.X).(*ast.CompositeLit); fresh {
				return // &T{...}: fresh storage
			}
			ps.rootEdge(add, r.X)
			return
		}
		if r.Op == gotoken.ARROW {
			add(nil) // received value: provenance unknown
			return
		}
	case *ast.CompositeLit, *ast.BasicLit, *ast.FuncLit:
		// Fresh (or valueless) storage; a composite literal embedding
		// existing pointers still only reaches what those point to,
		// which the element vars' own edges cover conservatively when
		// written through — accept the precision loss here.
		return
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.IndexListExpr,
		*ast.SliceExpr, *ast.StarExpr, *ast.TypeAssertExpr:
		ps.rootEdge(add, rhs)
		return
	case *ast.CallExpr:
		if lw.isTypeConv(r) {
			if len(r.Args) == 1 {
				ps.preEdge(lhs, r.Args[0], false)
			}
			return
		}
		switch builtinName(lw, r) {
		case "append":
			// append may return the same backing array: alias arg 0
			// (and a spread tail).
			if len(r.Args) > 0 {
				ps.rootEdge(add, r.Args[0])
				if r.Ellipsis.IsValid() && len(r.Args) > 1 {
					ps.rootEdge(add, r.Args[len(r.Args)-1])
				}
			}
			return
		case "make", "new", "len", "cap", "min", "max", "recover":
			return // fresh or non-reference results
		case "":
			add(nil) // real call: unknown provenance
			return
		default:
			return
		}
	default:
		if tuple {
			add(nil)
			return
		}
		return
	}
	_ = tuple
}

// rootEdge adds an edge to the root variable of an lvalue-ish path,
// or an unknown edge when the path has no variable root. Package-
// qualified roots resolve to the qualified variable (an analyzed
// package's global in module mode, external state otherwise).
func (ps *procState) rootEdge(add func(types.Object), e ast.Expr) {
	if o := ps.rootRef(e); o != nil {
		if _, ok := o.(*types.Var); ok {
			add(o)
		}
		return // const/func/pkg root reaches nothing trackable
	}
	add(nil)
}

// preFuncBind tracks what callables a func-typed variable can hold.
func (ps *procState) preFuncBind(obj types.Object, rhs ast.Expr) {
	fb := ps.funcs[obj]
	if fb == nil {
		fb = &funcBinding{}
		ps.funcs[obj] = fb
	}
	switch r := unparen(rhs).(type) {
	case *ast.FuncLit:
		fb.lits = append(fb.lits, r)
	case *ast.Ident:
		if p, ok := ps.lw.funcs[ps.lw.objOf(r)]; ok {
			fb.procs = append(fb.procs, p)
			return
		}
		fb.tainted = true
	default:
		fb.tainted = true
	}
}

func (ps *procState) preRange(x *ast.RangeStmt) {
	lw := ps.lw
	for _, e := range []ast.Expr{x.Key, x.Value} {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		if x.Tok == gotoken.DEFINE {
			if obj := lw.info.Defs[id]; obj != nil {
				ps.declareLocal(obj, id)
			}
		}
		// A reference-typed element aliases the ranged container.
		if obj := lw.objOf(id); obj != nil && obj.Type() != nil && isRefType(obj.Type()) {
			ps.rootEdge(func(o types.Object) {
				ps.edges[obj] = append(ps.edges[obj], aliasEdge{obj: o})
			}, x.X)
		}
	}
}

func (ps *procState) preTypeSwitch(x *ast.TypeSwitchStmt) {
	lw := ps.lw
	var src ast.Expr
	switch a := x.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				src = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := unparen(a.X).(*ast.TypeAssertExpr); ok {
			src = ta.X
		}
	}
	for _, cl := range x.Body.List {
		obj := lw.info.Implicits[cl]
		if obj == nil {
			continue
		}
		ps.declareLocal(obj, nil)
		if src != nil && obj.Type() != nil && isRefType(obj.Type()) {
			ps.rootEdge(func(o types.Object) {
				ps.edges[obj] = append(ps.edges[obj], aliasEdge{obj: o})
			}, src)
		}
	}
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// ---------------------------------------------------------------------
// Effects (walk B): statements.
// ---------------------------------------------------------------------

func (ps *procState) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	switch x := s.(type) {
	case *ast.BlockStmt:
		for _, t := range x.List {
			ps.stmt(t)
		}
	case *ast.ExprStmt:
		ps.expr(x.X)
	case *ast.AssignStmt:
		ps.assign(x)
	case *ast.IncDecStmt:
		ps.expr(x.X)
		ps.write(x.X)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok && gd.Tok == gotoken.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
						rhs = vs.Values[0]
					}
					if rhs != nil {
						ps.bindOrExpr(name, rhs)
						ps.write(name)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range x.Results {
			ps.expr(e)
		}
	case *ast.IfStmt:
		ps.stmt(x.Init)
		ps.expr(x.Cond)
		ps.stmt(x.Body)
		ps.stmt(x.Else)
	case *ast.ForStmt:
		ps.forLoop(x)
	case *ast.RangeStmt:
		ps.rangeLoop(x)
	case *ast.SwitchStmt:
		ps.stmt(x.Init)
		ps.expr(x.Tag)
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					ps.expr(e)
				}
				for _, t := range cc.Body {
					ps.stmt(t)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		ps.stmt(x.Init)
		if a, ok := x.Assign.(*ast.AssignStmt); ok {
			for _, e := range a.Rhs {
				ps.expr(e)
			}
		} else if e, ok := x.Assign.(*ast.ExprStmt); ok {
			ps.expr(e.X)
		}
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				for _, t := range cc.Body {
					ps.stmt(t)
				}
			}
		}
	case *ast.SelectStmt:
		for _, cl := range x.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				ps.stmt(cc.Comm)
				for _, t := range cc.Body {
					ps.stmt(t)
				}
			}
		}
	case *ast.SendStmt:
		ps.expr(x.Value)
		ps.expr(x.Chan)
		ps.hopEffect(x.Chan, true)
	case *ast.GoStmt:
		ps.call(x.Call)
	case *ast.DeferStmt:
		ps.call(x.Call)
	case *ast.LabeledStmt:
		ps.stmt(x.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

// assign handles =, :=, and the compound operators.
func (ps *procState) assign(x *ast.AssignStmt) {
	compound := x.Tok != gotoken.ASSIGN && x.Tok != gotoken.DEFINE
	if len(x.Lhs) == len(x.Rhs) {
		for i := range x.Rhs {
			ps.bindOrExpr(x.Lhs[i], x.Rhs[i])
		}
	} else {
		for _, e := range x.Rhs {
			ps.expr(e)
		}
	}
	for _, l := range x.Lhs {
		if compound {
			ps.expr(l)
		}
		ps.write(l)
	}
}

// bindOrExpr evaluates one rhs; when it is a closure literal (or named
// function) being bound to a tracked func variable, the closure is
// lowered without a may-run site — its calls create real sites.
func (ps *procState) bindOrExpr(lhs, rhs ast.Expr) {
	if id, ok := lhs.(*ast.Ident); ok {
		if fb := ps.funcs[ps.lw.objOf(id)]; fb != nil {
			switch r := unparen(rhs).(type) {
			case *ast.FuncLit:
				ps.closureProc(r)
				return
			case *ast.Ident:
				if _, known := ps.lw.funcs[ps.lw.objOf(r)]; known {
					return // named function value; sites appear at calls
				}
			}
		}
	}
	ps.expr(rhs)
}

// ---------------------------------------------------------------------
// Effects (walk B): expressions and lvalue writes.
// ---------------------------------------------------------------------

func (ps *procState) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.Ident:
		ps.useVar(x)
	case *ast.BasicLit:
	case *ast.BinaryExpr:
		ps.expr(x.X)
		ps.expr(x.Y)
	case *ast.UnaryExpr:
		ps.expr(x.X)
		if x.Op == gotoken.ARROW {
			// Receiving consumes channel state.
			ps.hopEffect(x.X, true)
		}
	case *ast.StarExpr:
		ps.expr(x.X)
		ps.hopEffect(x.X, false)
	case *ast.SelectorExpr:
		ps.selector(x, false)
	case *ast.IndexExpr:
		ps.expr(x.Index)
		ps.expr(x.X)
		if ps.indexHops(x.X) {
			ps.hopEffect(x.X, false)
		}
	case *ast.IndexListExpr:
		ps.expr(x.X)
	case *ast.SliceExpr:
		ps.expr(x.X)
		ps.expr(x.Low)
		ps.expr(x.High)
		ps.expr(x.Max)
	case *ast.CallExpr:
		ps.call(x)
	case *ast.FuncLit:
		proc := ps.closureProc(x)
		ps.mayRun(x, proc)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			ps.expr(el)
		}
	case *ast.KeyValueExpr:
		if _, ok := x.Key.(*ast.Ident); !ok {
			ps.expr(x.Key)
		}
		ps.expr(x.Value)
	case *ast.TypeAssertExpr:
		ps.expr(x.X)
	case *ast.ParenExpr:
		ps.expr(x.X)
	case *ast.Ellipsis:
		ps.expr(x.Elt)
	}
}

// selector handles x.f reads: package-qualified references, degrading
// packages (unsafe/cgo/broken imports), field reads through pointers.
func (ps *procState) selector(x *ast.SelectorExpr, callee bool) {
	lw := ps.lw
	if path := ps.pkgNameOf(x.X); path != "" {
		// Module mode resolves another analyzed package's global to its
		// shared-program variable; only then does the reference degrade
		// to external state.
		if g := lw.globals[lw.objOf(x.Sel)]; g != nil {
			if !callee {
				lw.use(ps.proc, g)
			}
			return
		}
		ps.degradingPkg(path)
		if !callee {
			if obj := lw.objOf(x.Sel); obj != nil {
				if _, isVar := obj.(*types.Var); isVar {
					lw.b.Use(ps.proc, lw.ext())
				}
			} else {
				lw.b.Use(ps.proc, lw.ext())
			}
		}
		return
	}
	ps.expr(x.X)
	if selinfo, ok := lw.info.Selections[x]; ok && !callee && selinfo.Kind() == types.MethodVal {
		// Method value escaping as data: whoever receives it may run
		// it against this receiver.
		ps.mayRunMethod(x, selinfo)
		return
	}
	if t := ps.typeOf(x.X); t != nil {
		if _, ok := t.Underlying().(*types.Pointer); ok && !callee {
			ps.hopEffect(x.X, false)
		}
	}
}

// mayRunMethod charges an escaping bound method value x.M: a may-run
// call site when M resolves to an analyzed method (directly, or via a
// closed interface devirtualized to every module-local
// implementation), otherwise the unknown-callee effect on the
// receiver's storage.
func (ps *procState) mayRunMethod(x *ast.SelectorExpr, selinfo *types.Selection) {
	lw := ps.lw
	if proc, known := lw.methodProc(selinfo.Obj()); known {
		ps.mayRunMethodSite(proc, x)
		return
	}
	if impls, closed := lw.devirtTargets(selinfo); closed {
		lw.devirt++
		for _, proc := range impls {
			ps.mayRunMethodSite(proc, x)
		}
		return
	}
	ps.refArgEffect(x.X)
	lw.b.Mod(ps.proc, lw.ext())
	lw.b.Use(ps.proc, lw.ext())
	lw.degrade(ps.proc, ps.dynamicReason(selinfo))
}

// mayRunMethodSite plants one may-run call site binding the receiver
// path's root as the receiver actual and stand-ins for the rest.
func (ps *procState) mayRunMethodSite(proc *ir.Procedure, x *ast.SelectorExpr) {
	lw := ps.lw
	var recvVar *ir.Variable
	if obj := ps.rootRef(x.X); obj != nil {
		if _, isPkg := obj.(*types.PkgName); !isPkg {
			recvVar = ps.lookup(obj)
		}
	}
	var actuals []ir.Actual
	for i, f := range proc.Formals {
		a := ir.Actual{Mode: f.Kind}
		if i == 0 {
			if f.Kind == ir.FormalRef {
				a.Var = ps.refActual(f, recvVar)
			} else {
				a.Var = recvVar
				if recvVar != nil {
					if recvVar.Rank() > 0 {
						lw.use(ps.proc, recvVar)
					}
					a.Uses = []*ir.Variable{recvVar}
				}
			}
		} else if f.Kind == ir.FormalRef {
			a.Var = ps.freshFor("cap", f)
		}
		actuals = append(actuals, a)
	}
	cs := lw.b.Call(ps.proc, proc, actuals, lw.pos(x.Pos()))
	ps.sites = append(ps.sites, cs)
}

// degradingPkg notes the packages whose mere use voids the model.
func (ps *procState) degradingPkg(path string) {
	lw := ps.lw
	switch path {
	case "unsafe":
		lw.degrade(ps.proc, "uses unsafe")
		ps.escapeMod()
	case "C":
		lw.degrade(ps.proc, "uses cgo")
		ps.escapeMod()
	case "reflect":
		lw.degrade(ps.proc, "uses reflection")
		ps.escapeMod()
	default:
		if lw.importBroken[path] {
			lw.degrade(ps.proc, fmt.Sprintf("unresolved import %q", path))
			ps.escapeMod()
		}
	}
}

// indexHops reports whether indexing base crosses a reference hop
// (slice, map, pointer-to-array) rather than staying inside a value
// array.
func (ps *procState) indexHops(base ast.Expr) bool {
	t := ps.typeOf(base)
	if t == nil {
		return true
	}
	switch t.Underlying().(type) {
	case *types.Array, *types.Basic: // value array, string
		return false
	default:
		return true
	}
}

// hopEffect records a read (or write, when mod) of the storage behind
// a reference hop rooted in path.
func (ps *procState) hopEffect(path ast.Expr, mod bool) {
	obj := ps.rootRef(path)
	if obj == nil {
		// No variable root (call result, literal): the storage may be
		// anything reachable — worst case.
		ps.escapeMod()
		return
	}
	if _, ok := obj.(*types.PkgName); ok {
		ps.lw.b.Use(ps.proc, ps.lw.ext())
		if mod {
			ps.lw.b.Mod(ps.proc, ps.lw.ext())
		}
		return
	}
	if mod {
		ps.modThrough(obj)
	} else {
		ps.useThrough(obj)
	}
}

// write records the effect of assigning to lvalue e: a direct write
// modifies the root variable itself (unless the root is a by-reference
// formal, whose direct binding is a caller-invisible copy); a write
// across a reference hop modifies the storage reachable from the root.
func (ps *procState) write(e ast.Expr) {
	root, hop, external, field := ps.writePath(e)
	if external {
		ps.lw.b.Mod(ps.proc, ps.lw.ext())
		return
	}
	if root == nil {
		if hop {
			ps.escapeMod()
		}
		return
	}
	obj := ps.lw.objOf(root)
	if hop {
		ps.useVar(root)
		ps.modThroughField(obj, field, e.Pos())
		return
	}
	if root.Name == "_" {
		return
	}
	if v := ps.lookup(obj); v != nil {
		if v.Kind != ir.FormalRef {
			if field >= 0 && v.Rank() == 1 && field < v.Dims[0] {
				ps.lw.b.Access(ps.proc, v,
					[]ir.Sub{{Kind: ir.SubConst, Const: field}}, true, ps.lw.pos(e.Pos()))
			} else {
				ps.lw.mod(ps.proc, v)
			}
		}
	} else if isExternalVar(ps.lw, obj) {
		ps.lw.b.Mod(ps.proc, ps.lw.ext())
	}
}

// writePath walks an lvalue to its root, deciding whether the path
// crosses a reference hop and whether it leaves the package. field is
// the struct-field index of the selection step adjacent to the root
// (-1 when the write is not attributable to a single field of the
// root's span): x.f = v or (*p).f = v keep the field; any indexing,
// slicing, assertion, or interior dereference between the field and
// the root widens back to the whole variable.
func (ps *procState) writePath(e ast.Expr) (root *ast.Ident, hop, external bool, field int) {
	field = -1
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, hop, false, field
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			if _, direct := unparen(x.X).(*ast.Ident); !direct {
				field = -1
			}
			hop = true
			e = x.X
		case *ast.SelectorExpr:
			if path := ps.pkgNameOf(x.X); path != "" {
				// A qualified write: module mode resolves the global,
				// otherwise it is external state.
				if ps.lw.globals[ps.lw.objOf(x.Sel)] != nil {
					return x.Sel, hop, false, field
				}
				ps.degradingPkg(path)
				return nil, hop, true, -1
			}
			if idx, ok := ps.fieldIndex(x); ok {
				field = idx
			} else {
				field = -1
			}
			if t := ps.typeOf(x.X); t == nil {
				hop = true
			} else if _, ok := t.Underlying().(*types.Pointer); ok {
				hop = true
			}
			e = x.X
		case *ast.IndexExpr:
			ps.expr(x.Index)
			if ps.indexHops(x.X) {
				hop = true
			}
			field = -1
			e = x.X
		case *ast.IndexListExpr:
			field = -1
			e = x.X
		case *ast.TypeAssertExpr:
			hop = true
			field = -1
			e = x.X
		case *ast.SliceExpr:
			hop = true
			field = -1
			e = x.X
		default:
			return nil, true, false, -1
		}
	}
}

// fieldIndex resolves a selector to a field index within the base's
// struct span. An embedded promotion writes through the first hop's
// field, which Index()[0] names.
func (ps *procState) fieldIndex(x *ast.SelectorExpr) (int, bool) {
	sel, ok := ps.lw.info.Selections[x]
	if !ok || sel.Kind() != types.FieldVal {
		return 0, false
	}
	idx := sel.Index()
	if len(idx) == 0 {
		return 0, false
	}
	return idx[0], true
}

// ---------------------------------------------------------------------
// Loops.
// ---------------------------------------------------------------------

// forLoop lowers a counted for loop; if its body produced call sites,
// the ⟨index, sites⟩ pair is recorded for the parallelizability rules.
func (ps *procState) forLoop(x *ast.ForStmt) {
	ps.stmt(x.Init)
	ps.expr(x.Cond)
	var index *ir.Variable
	if init, ok := x.Init.(*ast.AssignStmt); ok && len(init.Lhs) > 0 {
		if id, ok := init.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			index = ps.lookup(ps.lw.objOf(id))
		}
	}
	before := len(ps.sites)
	ps.stmt(x.Body)
	ps.stmt(x.Post)
	ps.recordLoop(index, before, x.For)
}

// rangeLoop lowers a range loop; uses the key as the loop index when
// it is a tracked scalar.
func (ps *procState) rangeLoop(x *ast.RangeStmt) {
	ps.expr(x.X)
	if t := ps.typeOf(x.X); t != nil {
		switch t.Underlying().(type) {
		case *types.Basic, *types.Array:
		default:
			ps.hopEffect(x.X, false)
		}
	}
	var index *ir.Variable
	for _, e := range []ast.Expr{x.Key, x.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if v := ps.lookup(ps.lw.objOf(id)); v != nil {
				ps.lw.mod(ps.proc, v)
				if index == nil {
					index = v
				}
			}
		}
	}
	before := len(ps.sites)
	ps.stmt(x.Body)
	ps.recordLoop(index, before, x.For)
}

func (ps *procState) recordLoop(index *ir.Variable, before int, pos gotoken.Pos) {
	if len(ps.sites) == before {
		return
	}
	if index == nil || index.Kind == ir.FormalRef || index.Rank() != 0 {
		ps.loopN++
		index = ps.lw.b.Local(ps.proc, fmt.Sprintf("$idx%d", ps.loopN))
	}
	sites := make([]*ir.CallSite, len(ps.sites)-before)
	copy(sites, ps.sites[before:])
	ps.lw.b.Loop(ps.proc, index, sites, ps.lw.pos(pos))
}
