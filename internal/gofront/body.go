package gofront

import (
	"fmt"
	"go/ast"
	gotoken "go/token"
	"go/types"

	"sideeffect/internal/ir"
)

// aliasEdge is one may-point-into fact collected by the prepass: the
// edge's owner may reach storage reachable from obj. A nil obj means
// the points-to set is unknown (worst case).
type aliasEdge struct {
	obj types.Object
}

// funcBinding tracks the callables a local func-typed variable was
// bound to; tainted means at least one binding was untrackable.
type funcBinding struct {
	lits    []*ast.FuncLit
	procs   []*ir.Procedure
	tainted bool
}

// funcShape records the Go-signature facts a call-site builder needs
// about a lowered procedure.
type funcShape struct {
	recv     bool
	variadic bool
}

// procState is the per-function lowering state. Closures chain to
// their creator through parent, mirroring the ir lexical nesting.
type procState struct {
	lw     *lowerer
	proc   *ir.Procedure
	parent *procState

	vars  map[types.Object]*ir.Variable
	names map[string]int
	edges map[types.Object][]aliasEdge
	funcs map[types.Object]*funcBinding

	refFormals []*ir.Variable
	addrLocals []*ir.Variable
	sites      []*ir.CallSite
	closN      int
	loopN      int
}

// newProcState starts the lowering state for one function (declared
// function, method, or closure). Closures chain to their creator via
// parent, mirroring the ir lexical nesting.
func (lw *lowerer) newProcState(proc *ir.Procedure, parent *procState) *procState {
	return &procState{
		lw:     lw,
		proc:   proc,
		parent: parent,
		vars:   map[types.Object]*ir.Variable{},
		names:  map[string]int{},
		edges:  map[types.Object][]aliasEdge{},
		funcs:  map[types.Object]*funcBinding{},
	}
}

// declareSignature declares proc's formals (receiver first for
// methods) and named-result locals. All signatures are declared before
// any body is lowered, so forward calls see the right arity.
func (ps *procState) declareSignature(recv *ast.FieldList, ftype *ast.FuncType) {
	lw := ps.lw
	shape := funcShape{}
	if recv != nil && len(recv.List) > 0 {
		shape.recv = true
		ps.formalField(recv.List[0])
	}
	if ftype != nil && ftype.Params != nil {
		fields := ftype.Params.List
		for i, f := range fields {
			if i == len(fields)-1 {
				if _, ok := f.Type.(*ast.Ellipsis); ok {
					shape.variadic = true
				}
			}
			ps.formalField(f)
		}
	}
	lw.shapes[ps.proc] = shape
	if ftype != nil && ftype.Results != nil {
		for _, f := range ftype.Results.List {
			for _, name := range f.Names {
				if name.Name == "_" {
					continue
				}
				ps.declareLocal(lw.info.Defs[name], name)
			}
		}
	}
}

// lowerBody runs the prepass then the effect walk over proc's body.
func (ps *procState) lowerBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	ps.prepass(body)
	for _, s := range body.List {
		ps.stmt(s)
	}
}

// formalField declares the formals of one parameter (or receiver)
// field, classified ref/val by type reachability.
func (ps *procState) formalField(f *ast.Field) {
	lw := ps.lw
	var t types.Type
	if tv, ok := lw.info.Types[f.Type]; ok {
		t = tv.Type
	}
	if ell, ok := f.Type.(*ast.Ellipsis); ok {
		// A variadic parameter is a slice inside the function.
		if et, ok := lw.info.Types[ell.Elt]; ok && et.Type != nil {
			t = types.NewSlice(et.Type)
		} else {
			t = nil
		}
	}
	declare := func(name string, obj types.Object) {
		ft := t
		if obj != nil && obj.Type() != nil {
			ft = obj.Type()
		}
		kind := ir.FormalVal
		if isRefType(ft) {
			kind = ir.FormalRef
		}
		dims := fieldDims(ft)
		v := lw.b.Formal(ps.proc, ps.unique(name), kind, len(dims))
		copy(v.Dims, dims)
		if obj != nil {
			ps.vars[obj] = v
			v.Pos = lw.pos(obj.Pos())
		}
		if kind == ir.FormalRef {
			ps.refFormals = append(ps.refFormals, v)
		}
	}
	if len(f.Names) == 0 {
		declare(fmt.Sprintf("$p%d", len(ps.proc.Formals)), nil)
		return
	}
	for _, name := range f.Names {
		if name.Name == "_" {
			declare(fmt.Sprintf("$p%d", len(ps.proc.Formals)), nil)
			continue
		}
		declare(name.Name, lw.info.Defs[name])
	}
}

// unique returns name, or name#2, #3... on collision within the proc.
func (ps *procState) unique(name string) string {
	ps.names[name]++
	if n := ps.names[name]; n > 1 {
		return fmt.Sprintf("%s#%d", name, n)
	}
	return name
}

// declareLocal declares an ir local for a function-scoped variable
// object.
func (ps *procState) declareLocal(obj types.Object, id *ast.Ident) *ir.Variable {
	if obj == nil {
		return nil
	}
	if _, ok := obj.(*types.Var); !ok {
		return nil // consts, types, funcs
	}
	if v, ok := ps.vars[obj]; ok {
		return v
	}
	v := ps.lw.b.Local(ps.proc, ps.unique(obj.Name()), fieldDims(obj.Type())...)
	v.Pos = ps.lw.pos(obj.Pos())
	ps.vars[obj] = v
	if ps.lw.addrTaken[obj] {
		ps.addrLocals = append(ps.addrLocals, v)
	}
	return v
}

// fresh declares a synthetic local (argument temporaries, capture
// stand-ins, synthetic loop indices).
func (ps *procState) fresh(prefix string, dims ...int) *ir.Variable {
	ps.lw.tmpN++
	return ps.lw.b.Local(ps.proc, fmt.Sprintf("$%s%d", prefix, ps.lw.tmpN), dims...)
}

// freshFor declares a synthetic local shaped like formal f, so the
// call-site binding passes ir.Validate's rank agreement.
func (ps *procState) freshFor(prefix string, f *ir.Variable) *ir.Variable {
	return ps.fresh(prefix, f.Dims...)
}

// refActual adapts v to bind reference formal f. A nil variable, or
// one whose shape disagrees with the formal (an interface receiver
// feeding a struct-shaped method formal after devirtualization, a
// struct value boxed into an interface parameter), is conservatively
// charged Mod+Use at the caller and replaced by a shape-matched fresh
// temporary: the callee's effects on the temporary are invisible, the
// caller-side charge covers them.
func (ps *procState) refActual(f *ir.Variable, v *ir.Variable) *ir.Variable {
	if v != nil && v.Rank() == f.Rank() {
		return v
	}
	if v != nil {
		ps.lw.mod(ps.proc, v)
		ps.lw.use(ps.proc, v)
	}
	return ps.freshFor("tmp", f)
}

// lookup resolves a variable object through the lexical chain, then
// the package globals. nil means the object is not package state
// (another package's var, a field, a const).
func (ps *procState) lookup(obj types.Object) *ir.Variable {
	if obj == nil {
		return nil
	}
	for s := ps; s != nil; s = s.parent {
		if v, ok := s.vars[obj]; ok {
			return v
		}
	}
	return ps.lw.globals[obj]
}

// edgesOf unions the alias edges recorded for obj anywhere on the
// lexical chain (a closure can alias its creator's variables).
func (ps *procState) edgesOf(obj types.Object) []aliasEdge {
	var out []aliasEdge
	for s := ps; s != nil; s = s.parent {
		out = append(out, s.edges[obj]...)
	}
	return out
}

// targets resolves the storage reachable from obj: the transitive
// alias closure, mapped to ir variables. escape reports that some
// member is untrackable, forcing the worst-case effect.
func (ps *procState) targets(obj types.Object) (vars []*ir.Variable, escape bool) {
	if obj == nil {
		return nil, true
	}
	seen := map[types.Object]bool{obj: true}
	queue := []types.Object{obj}
	for len(queue) > 0 {
		o := queue[0]
		queue = queue[1:]
		if v := ps.lookup(o); v != nil {
			vars = append(vars, v)
		} else if isExternalVar(ps.lw, o) {
			vars = append(vars, ps.lw.ext())
		} else {
			escape = true
		}
		for _, e := range ps.edgesOf(o) {
			if e.obj == nil {
				escape = true
				continue
			}
			if !seen[e.obj] {
				seen[e.obj] = true
				queue = append(queue, e.obj)
			}
		}
	}
	return vars, escape
}

// isExternalVar reports whether obj is a package-level variable of a
// package outside the analyzed set (reachable state, modeled by
// $external). In module mode every module-local package is analyzed,
// so only genuinely foreign (stdlib, unresolved) variables remain
// external.
func isExternalVar(lw *lowerer, obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Pkg() != nil && !lw.analyzed[v.Pkg()]
}

// escapeMod applies the worst-case effect: every global, every
// reference formal and address-taken local on the lexical chain is
// modified and used.
func (ps *procState) escapeMod() {
	lw := ps.lw
	touch := func(v *ir.Variable) {
		lw.mod(ps.proc, v)
		lw.use(ps.proc, v)
	}
	touch(lw.ext())
	for _, g := range lw.allGlobals {
		touch(g)
	}
	for s := ps; s != nil; s = s.parent {
		for _, v := range s.refFormals {
			touch(v)
		}
		for _, v := range s.addrLocals {
			touch(v)
		}
	}
}

// modThrough records a write through a reference hop rooted at obj.
func (ps *procState) modThrough(obj types.Object) {
	ps.modThroughField(obj, -1, gotoken.NoPos)
}

// modThroughField is modThrough refined to one field of the root's
// struct span: when the written path stays on a single field, each
// rank-1 target records a constant-subscript access (the Section-6
// regular sections carry the field interprocedurally) instead of a
// whole-variable write. Targets of other shapes, and the escape
// fallback, stay whole.
func (ps *procState) modThroughField(obj types.Object, field int, pos gotoken.Pos) {
	vars, escape := ps.targets(obj)
	if escape {
		ps.escapeMod()
	}
	for _, v := range vars {
		if field >= 0 && v.Rank() == 1 && field < v.Dims[0] {
			ps.lw.b.Access(ps.proc, v, []ir.Sub{{Kind: ir.SubConst, Const: field}}, true, ps.lw.pos(pos))
		} else {
			ps.lw.mod(ps.proc, v)
		}
	}
}

// useThrough records a read through a reference hop rooted at obj.
func (ps *procState) useThrough(obj types.Object) {
	vars, escape := ps.targets(obj)
	if escape {
		ps.escapeMod()
	}
	for _, v := range vars {
		ps.lw.use(ps.proc, v)
	}
}

// useVar records a read of an identifier.
func (ps *procState) useVar(id *ast.Ident) {
	obj := ps.lw.objOf(id)
	if v := ps.lookup(obj); v != nil {
		ps.lw.use(ps.proc, v)
	} else if isExternalVar(ps.lw, obj) {
		ps.lw.b.Use(ps.proc, ps.lw.ext())
	}
}

// rootRef resolves the base object of an access path like rootIdent,
// with one refinement: a path rooted in a package qualifier (pkg.V,
// pkg.V.f, *pkg.P) resolves to the qualified variable's object — which
// the shared globals map knows in module mode — rather than to the
// qualifier. Non-variable qualified members keep the qualifier's
// PkgName object so callers can apply the external-state fallback.
func (ps *procState) rootRef(e ast.Expr) types.Object {
	var lastSel *ast.SelectorExpr
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := ps.lw.objOf(x)
			if _, isPkg := obj.(*types.PkgName); isPkg && lastSel != nil {
				if sobj := ps.lw.objOf(lastSel.Sel); sobj != nil {
					if _, isVar := sobj.(*types.Var); isVar {
						return sobj
					}
				}
			}
			return obj
		case *ast.SelectorExpr:
			lastSel = x
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// typeOf returns the (possibly nil) type of an expression.
func (ps *procState) typeOf(e ast.Expr) types.Type {
	if tv, ok := ps.lw.info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// pkgNameOf returns the imported package path when e is a package
// qualifier identifier, else "".
func (ps *procState) pkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := ps.lw.objOf(id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}
