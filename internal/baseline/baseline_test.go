package baseline

import (
	"testing"

	"sideeffect/internal/binding"
	"sideeffect/internal/core"
	"sideeffect/internal/workload"
)

func TestRMODReachabilityChain(t *testing.T) {
	prog := workload.Chain(10)
	facts := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	out := RMODReachability(beta, facts)
	for n := range beta.Nodes {
		if !out[n] {
			t.Errorf("node %d (%s) false, want true", n, beta.Nodes[n])
		}
	}
	// USE problem: no seeds anywhere.
	factsU := core.ComputeFacts(prog, core.Use)
	outU := RMODReachability(beta, factsU)
	for n := range beta.Nodes {
		if outU[n] {
			t.Errorf("USE node %d true, want false", n)
		}
	}
}

func TestRMODReachabilitySelfSeed(t *testing.T) {
	prog := workload.PaperExample()
	facts := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	out := RMODReachability(beta, facts)
	// bot.c is seeded directly (empty path case).
	n := beta.NodeOf[prog.Var("bot.c").ID]
	if !out[n] {
		t.Error("directly seeded node not true")
	}
}

func TestBanningIterativePaperExample(t *testing.T) {
	prog := workload.PaperExample()
	facts := core.ComputeFacts(prog, core.Mod)
	res := BanningIterative(prog, facts)
	// Hand-computed GMOD sets (see core tests for the derivation).
	expect := map[string][]string{
		"bot":   {"bot.c"},
		"mid":   {"h", "mid.b"},
		"top":   {"h", "top.a"},
		"$main": {"g", "h"},
	}
	for name, want := range expect {
		p := prog.Proc(name)
		got := res.GMOD[p.ID]
		if got.Len() != len(want) {
			t.Errorf("GMOD(%s) = %v, want %v", name, got, want)
			continue
		}
		for _, w := range want {
			if !got.Has(prog.Var(w).ID) {
				t.Errorf("GMOD(%s) missing %s", name, w)
			}
		}
	}
	if res.Stats.Iterations == 0 || res.Stats.BitVecOps == 0 {
		t.Error("stats not counted")
	}
}

func TestSwiftDecomposedPaperExample(t *testing.T) {
	prog := workload.PaperExample()
	facts := core.ComputeFacts(prog, core.Mod)
	res := SwiftDecomposed(prog, facts)
	for _, n := range []string{"top.a", "mid.b", "bot.c"} {
		if !res.RMODOf(prog.Var(n)) {
			t.Errorf("RMOD(%s) = false", n)
		}
	}
	if res.RMODOf(prog.Var("g")) {
		t.Error("RMODOf(global) = true")
	}
	// IMOD+ and GMOD should match the Figure-1/Figure-2 pipeline.
	ref := core.Analyze(prog, core.Mod, core.Options{})
	for _, p := range prog.Procs {
		if !res.IMODPlus[p.ID].Equal(ref.IMODPlus[p.ID]) {
			t.Errorf("IMOD+(%s): swift %v, core %v", p.Name, res.IMODPlus[p.ID], ref.IMODPlus[p.ID])
		}
		if !res.GMOD[p.ID].Equal(ref.GMOD[p.ID]) {
			t.Errorf("GMOD(%s): swift %v, core %v", p.Name, res.GMOD[p.ID], ref.GMOD[p.ID])
		}
	}
}

func TestGMODReachabilityFanout(t *testing.T) {
	prog := workload.Fanout(5)
	facts := core.ComputeFacts(prog, core.Mod)
	beta := binding.Build(prog)
	rmod := core.SolveRMOD(beta, facts)
	imodPlus := core.ComputeIMODPlus(facts, rmod)
	out := GMODReachability(prog, imodPlus, facts)
	// main reaches every leaf's global.
	main := out[prog.Main.ID]
	for i := 0; i < 5; i++ {
		g := prog.Var("g" + string(rune('0'+i)))
		if !main.Has(g.ID) {
			t.Errorf("oracle GMOD(main) missing g%d", i)
		}
	}
	// Leaves see only their own effects.
	p0 := out[prog.Proc("p0").ID]
	if p0.Has(prog.Var("g1").ID) {
		t.Error("oracle GMOD(p0) contains g1")
	}
}

// TestIterativeCostGrowsWithChainDepth pins the complexity contrast
// the benchmarks measure: the worklist solvers need Θ(n) iterations on
// an n-chain, while Figure 1 performs O(Nβ+Eβ) boolean steps total.
func TestIterativeCostGrowsWithChainDepth(t *testing.T) {
	small := workload.Chain(10)
	large := workload.Chain(100)
	fs := core.ComputeFacts(small, core.Mod)
	fl := core.ComputeFacts(large, core.Mod)
	rs := SwiftDecomposed(small, fs)
	rl := SwiftDecomposed(large, fl)
	if rl.Stats.Iterations <= rs.Stats.Iterations {
		t.Errorf("iterations: chain(100)=%d ≤ chain(10)=%d",
			rl.Stats.Iterations, rs.Stats.Iterations)
	}
	// And the figure-1 solver's boolean work stays linear in β size.
	bs := binding.Build(small)
	bl := binding.Build(large)
	ss := core.SolveRMOD(bs, fs).Stats.BoolSteps
	sl := core.SolveRMOD(bl, fl).Stats.BoolSteps
	if sl > 12*ss { // 10× the size, small constant slack
		t.Errorf("figure-1 steps grew superlinearly: %d → %d", ss, sl)
	}
}

func TestBaselinesOnEmptyMain(t *testing.T) {
	prog := workload.Fanout(0) // just main, no procs
	facts := core.ComputeFacts(prog, core.Mod)
	ban := BanningIterative(prog, facts)
	if !ban.GMOD[prog.Main.ID].Empty() {
		t.Error("GMOD(main) of empty program not empty")
	}
	sw := SwiftDecomposed(prog, facts)
	if !sw.GMOD[prog.Main.ID].Empty() {
		t.Error("swift GMOD(main) of empty program not empty")
	}
	beta := binding.Build(prog)
	if len(RMODReachability(beta, facts)) != 0 {
		t.Error("β of empty program should have no nodes")
	}
}
